/// Device-initiated communication (§III-D / Lesson 20, simulated): compares
/// host-orchestrated exchanges, device-driven partitioned operations, and a
/// persistent kernel with a CPU proxy, across kernel-launch costs.
///
///   $ ./device_offload [device_workers iters launch_us]

#include <cstdio>
#include <cstdlib>

#include "workloads/device_comm.h"

int main(int argc, char** argv) {
  wl::DeviceParams p;
  p.device_threads = argc > 1 ? std::atoi(argv[1]) : 8;
  p.iters = argc > 2 ? std::atoi(argv[2]) : 8;
  p.kernel_launch_ns = argc > 3 ? std::atoi(argv[3]) * 1000ull : 8000;

  std::printf("simulated GPU exchange: %d device workers, %d iterations, %.0f us launch\n\n",
              p.device_threads, p.iters, static_cast<double>(p.kernel_launch_ns) * 1e-3);
  std::printf("%-20s %16s %12s\n", "mechanism", "us/iteration", "messages");

  for (auto mech : {wl::DeviceMech::kHostOrchestrated, wl::DeviceMech::kDevicePartitioned,
                    wl::DeviceMech::kPersistentProxy}) {
    p.mech = mech;
    const auto r = wl::run_device_comm(p);  // data verified inside
    std::printf("%-20s %16.2f %12lu\n", to_string(mech),
                static_cast<double>(r.elapsed_ns) / p.iters * 1e-3,
                static_cast<unsigned long>(r.messages));
  }

  std::printf("\npartitioned Pready/Parrived give the device a lightweight trigger (Lesson\n"
              "20), but Wait/restart still returns control to the CPU each iteration; a\n"
              "persistent kernel with a CPU proxy pays the launch exactly once.\n");
  return 0;
}
