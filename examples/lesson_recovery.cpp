/// Lesson: surviving a rank failure with revoke / shrink / agree.
///
/// A 3-rank ring runs an iterative halo exchange. Mid-run, the seeded fault
/// plan kills rank 2 (`rank_down@2:5`: sticky-dead at its 6th channel op).
/// The survivors notice — their traffic touching the dead rank fails fast
/// with kProcFailed — agree that the iteration was lost, revoke the poisoned
/// communicator, shrink it to the survivor set, and finish the remaining
/// iterations on the 2-rank ring. ULFM's MPI_Comm_revoke / _shrink /
/// _agree recovery loop (DESIGN.md §13), in miniature:
///
///   $ ./lesson_recovery
///
/// The recovery trajectory (kill -> agree -> revoke -> shrink -> finish) is
/// the same on every run; the exact death vtime can shift with host thread
/// scheduling because the ranks here free-run inside one world.run. The
/// phase-ordered golden twin in tests/tmpi/recovery_test.cpp is the
/// bit-exact-determinism version of this scenario.

#include <array>
#include <cstdio>
#include <cstdint>

#include "tmpi/tmpi.h"

namespace {

constexpr int kIters = 8;
constexpr int kHalo = 16;  // doubles per halo message

/// One halo exchange on `comm`: post both neighbour receives, then issue
/// both sends unconditionally (so survivor<->survivor traffic completes even
/// when a neighbour is dead), then wait all four. Tags encode direction and
/// iteration so the exchange stays well-defined on a 2-rank ring, where the
/// left and right neighbour are the same peer: send-to-right carries tag
/// 2*iter+1 (matched by the peer's recv-from-left), send-to-left tag 2*iter.
bool exchange(const tmpi::Comm& comm, int iter, std::array<double, kHalo>& mine) {
  const int n = comm.size();
  const int me = comm.rank();
  const int right = (me + 1) % n;
  const int left = (me + n - 1) % n;
  const tmpi::Tag to_right = 2 * iter + 1;
  const tmpi::Tag to_left = 2 * iter;

  std::array<double, kHalo> from_left{};
  std::array<double, kHalo> from_right{};
  std::array<tmpi::Request, 4> reqs;
  reqs[0] = tmpi::irecv(from_left.data(), kHalo, tmpi::kDouble, left, to_right, comm);
  reqs[1] = tmpi::irecv(from_right.data(), kHalo, tmpi::kDouble, right, to_left, comm);
  reqs[2] = tmpi::isend(mine.data(), kHalo, tmpi::kDouble, right, to_right, comm);
  reqs[3] = tmpi::isend(mine.data(), kHalo, tmpi::kDouble, left, to_left, comm);

  bool ok = true;
  for (auto& r : reqs) {
    if (r.wait().err != tmpi::Errc::kSuccess) ok = false;
  }
  if (ok) {
    for (int i = 0; i < kHalo; ++i) mine[i] = 0.5 * (from_left[i] + from_right[i]);
  }
  return ok;
}

}  // namespace

int main() {
  tmpi::WorldConfig wc;
  wc.nranks = 3;
  wc.ranks_per_node = 1;
  wc.num_vcis = 1;
  // The seeded failure: rank 2 drops dead partway through iteration 1.
  wc.fault_info.set("tmpi_fault_plan", "rank_down@2:5");
  // Real-time watchdog as a backstop: anything that still manages to block
  // on the dead rank is diagnosed and failed instead of hanging the demo.
  wc.overload_info.set("tmpi_watchdog_ns", 50'000'000);
  tmpi::World world(wc);

  // ULFM-style recovery needs errors returned, not thrown through the loop.
  tmpi::Comm(world.world_comm_impl(), 0).set_errhandler(tmpi::ErrorHandler::kErrorsReturn);

  std::array<int, 3> completed{};

  world.run([&](tmpi::Rank& rank) {
    const int self = rank.rank();
    tmpi::Comm comm = rank.world_comm();
    std::array<double, kHalo> halo{};
    halo.fill(static_cast<double>(self + 1));

    for (int it = 0; it < kIters; ++it) {
      const bool ok = exchange(comm, it, halo);

      // A dead rank's own operations fail too; once the liveness registry
      // names it, it leaves the computation.
      if (world.fabric().liveness().is_dead(self)) {
        std::printf("[rank %d] declared dead at vtime %lu ns; exiting\n", self,
                    static_cast<unsigned long>(world.fabric().liveness().death_time(self)));
        return;
      }

      // The per-iteration agreement is the recovery synchronization point:
      // it ANDs every live rank's verdict, so either all survivors see the
      // failure or none do — no split-brain on whether to shrink.
      std::uint32_t flag = ok ? 1u : 0u;
      if (comm.agree(&flag) != tmpi::Errc::kSuccess) return;

      if (flag == 0) {
        std::printf("[rank %d] iteration %d lost to a rank failure; "
                    "revoke + shrink (world %d -> survivors)\n",
                    self, it, comm.size());
        comm.revoke();  // idempotent: every survivor may call it
        comm = comm.shrink();
        comm.set_errhandler(tmpi::ErrorHandler::kErrorsReturn);
        continue;  // the lost iteration is retired, not replayed
      }
      ++completed[static_cast<std::size_t>(self)];
    }
    std::printf("[rank %d->%d/%d] finished %d/%d iterations at t=%lu ns\n", self,
                comm.rank(), comm.size(), completed[static_cast<std::size_t>(self)], kIters,
                static_cast<unsigned long>(rank.clock().now()));
  });

  const auto s = world.snapshot();
  std::printf("world: %d ranks -> %d survivors | proc_failures=%lu revokes=%lu shrinks=%lu\n",
              wc.nranks, wc.nranks - static_cast<int>(world.fabric().liveness().dead_ranks().size()),
              static_cast<unsigned long>(s.proc_failures), static_cast<unsigned long>(s.revokes),
              static_cast<unsigned long>(s.shrinks));

  const bool pass = world.fabric().liveness().is_dead(2) && s.revokes >= 1 && s.shrinks >= 1 &&
                    completed[0] > 0 && completed[0] == completed[1];
  std::printf("%s\n", pass ? "PASS: survivors completed the workload on the shrunken world"
                           : "FAIL: recovery did not complete");
  return pass ? 0 : 1;
}
