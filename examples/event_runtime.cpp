/// Legion-style event runtime (Fig. 5): task threads push events to remote
/// processes; one polling thread per process drains them with wildcard
/// receives. Shows why the polling pattern forces mechanism choices.
///
///   $ ./event_runtime [nranks task_threads events_per_thread]

#include <cstdio>
#include <cstdlib>

#include "workloads/event_runtime.h"

int main(int argc, char** argv) {
  wl::EventParams p;
  p.nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  p.task_threads = argc > 2 ? std::atoi(argv[2]) : 4;
  p.events_per_thread = argc > 3 ? std::atoi(argv[3]) : 255;
  if (p.events_per_thread % (p.nranks - 1) != 0) {
    p.events_per_thread -= p.events_per_thread % (p.nranks - 1);
  }

  std::printf("event runtime: %d processes, %d task threads + 1 polling thread each, "
              "%d events/thread\n\n",
              p.nranks, p.task_threads, p.events_per_thread);
  std::printf("%-16s %14s %16s\n", "mechanism", "events/ms", "ns/event at poller");

  double eps_ns = 0;
  double comms_ns = 0;
  for (auto mech : {wl::EventMech::kSerial, wl::EventMech::kComms, wl::EventMech::kTags,
                    wl::EventMech::kEndpoints, wl::EventMech::kEverywhere}) {
    p.mech = mech;
    const auto r = wl::run_event_runtime(p);
    const double ns_per_event =
        static_cast<double>(r.elapsed_ns) / (static_cast<double>(r.aux) / p.nranks);
    std::printf("%-16s %14.0f %16.0f\n", to_string(mech),
                static_cast<double>(r.aux) / (r.seconds() * 1e3), ns_per_event);
    if (mech == wl::EventMech::kComms) comms_ns = ns_per_event;
    if (mech == wl::EventMech::kEndpoints) eps_ns = ns_per_event;
  }

  std::printf("\npolling with per-thread comms is %.2fx slower than with a dedicated\n"
              "endpoint (paper cites 1.63x for Legion) — the polling thread must iterate\n"
              "the communicators and cannot keep one wildcard receive (Lesson 5)\n",
              comms_ns / eps_ns);
  return 0;
}
