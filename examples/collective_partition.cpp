/// Multithreaded allreduce, the VASP pattern (Fig. 7, Lessons 18-19): every
/// (rank, thread) holds a full-length partial vector; the global elementwise
/// sum must reach every thread.
///
///   $ ./collective_partition [nranks threads kib]

#include <cstdio>
#include <cstdlib>

#include "workloads/collective_workload.h"

int main(int argc, char** argv) {
  wl::CollParams p;
  p.nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  p.threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const int kib = argc > 3 ? std::atoi(argv[3]) : 128;
  p.elements = kib * 1024 / 8;
  p.elements -= p.elements % p.threads;
  p.iters = 2;

  std::printf("allreduce of %d KiB over %d processes x %d threads\n\n", kib, p.nranks,
              p.threads);
  std::printf("%-20s %14s %20s\n", "mechanism", "us/allreduce", "result copies/process");

  double single_us = 0;
  for (auto mech : {wl::CollMech::kSingleThread, wl::CollMech::kPerThreadComms,
                    wl::CollMech::kEndpoints, wl::CollMech::kPartitionedStyle}) {
    p.mech = mech;
    const auto r = wl::run_collective(p);  // exact-verified inside
    const double us = static_cast<double>(r.elapsed_ns) / p.iters * 1e-3;
    std::printf("%-20s %14.2f %17lu KiB\n", to_string(mech), us,
                static_cast<unsigned long>(r.result_buffer_bytes / 1024));
    if (mech == wl::CollMech::kSingleThread) single_us = us;
    if (mech == wl::CollMech::kPerThreadComms) {
      std::printf("  -> %.2fx over single-threaded (paper: VASP saw >2x)\n", single_us / us);
    }
  }

  std::printf("\nper-thread comms need the user-driven intranode step (Lesson 18); the\n"
              "endpoints one-step collective duplicates the result per endpoint\n"
              "(Lesson 19); the partitioned style keeps one buffer but serializes\n"
              "threads on the shared request (Lesson 14).\n");
  return 0;
}
