/// NWChem-style get-compute-update over RMA (Fig. 6): threads fetch remote
/// tiles with Get, multiply, and atomically Accumulate into the owner of the
/// result tile. Compares the Lesson 16 channel-mapping options.
///
///   $ ./rma_matmul [nranks threads nb bs]

#include <cstdio>
#include <cstdlib>

#include "workloads/sparse_matmul.h"

int main(int argc, char** argv) {
  wl::MatmulParams p;
  p.nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  p.threads = argc > 2 ? std::atoi(argv[2]) : 4;
  p.nb = argc > 3 ? std::atoi(argv[3]) : 6;
  p.bs = argc > 4 ? std::atoi(argv[4]) : 8;
  p.keep_mod = 2;  // ~half the (i,j,k) products, block-sparse style

  std::printf("block-sparse C += A*B over RMA: %d processes x %d threads, %dx%d blocks of "
              "%dx%d doubles\n\n",
              p.nranks, p.threads, p.nb, p.nb, p.bs, p.bs);
  std::printf("%-18s %12s %10s %12s\n", "mechanism", "ms (virtual)", "tasks", "atomics");

  for (auto mech :
       {wl::RmaMech::kStrictWindow, wl::RmaMech::kRelaxedHash, wl::RmaMech::kEndpointsWin}) {
    p.mech = mech;
    const auto r = wl::run_sparse_matmul(p);  // verifies against a serial reference
    std::printf("%-18s %12.3f %10lu %12lu\n", to_string(mech),
                static_cast<double>(r.elapsed_ns) * 1e-6, static_cast<unsigned long>(r.aux),
                static_cast<unsigned long>(r.net.atomic_ops));
  }

  std::printf("\nall three produced the exact serial-reference C. Strict ordering funnels\n"
              "each (origin,target) pair through one channel; accumulate_ordering=none\n"
              "spreads by a location hash (collisions remain); endpoint windows give every\n"
              "thread its own channel while the runtime keeps updates atomic (Lesson 16).\n");
  return 0;
}
