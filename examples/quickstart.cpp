/// Quickstart: the smallest complete tmpi + rankpoints program.
///
/// Builds a 2-node simulated world, exchanges a message both through raw
/// tmpi point-to-point and through the Rankpoints session abstraction, runs
/// a collective, and prints the virtual-time cost of each step.
///
///   $ ./quickstart
///
/// Everything below runs in-process: ranks are threads, the network is
/// simulated, and all times are virtual nanoseconds (deterministic).

#include <cstdio>
#include <numeric>
#include <vector>

#include "core/session.h"
#include "tmpi/tmpi.h"

int main() {
  // A world is `mpiexec -n 2` over a simulated fabric (one rank per node).
  tmpi::WorldConfig cfg;
  cfg.nranks = 2;
  cfg.num_vcis = 4;  // per-rank VCI pool (network channels)
  tmpi::World world(cfg);

  world.run([&](tmpi::Rank& rank) {
    tmpi::Comm comm = rank.world_comm();
    const int peer = 1 - rank.rank();

    // --- 1. Point-to-point -------------------------------------------------
    std::vector<double> data(8);
    if (rank.rank() == 0) {
      std::iota(data.begin(), data.end(), 1.0);
      tmpi::send(data.data(), 8, tmpi::kDouble, peer, /*tag=*/7, comm);
    } else {
      tmpi::Status st = tmpi::recv(data.data(), 8, tmpi::kDouble, peer, 7, comm);
      std::printf("[rank %d] received %d doubles from %d at t=%lu ns\n", rank.rank(),
                  st.count(sizeof(double)), st.source,
                  static_cast<unsigned long>(rank.clock().now()));
    }

    // --- 2. A collective ---------------------------------------------------
    double sum = 0.0;
    const double mine = rank.rank() + 1.0;
    tmpi::allreduce(&mine, &sum, 1, tmpi::kDouble, tmpi::Op::kSum, comm);
    if (rank.rank() == 0) {
      std::printf("[rank %d] allreduce sum = %g (expect 3)\n", rank.rank(), sum);
    }

    // --- 3. Multithreaded communication through Rankpoints ------------------
    // Four logically parallel streams per process, endpoints backend: each
    // thread drives its own stream with no shared channel.
    rp::SessionConfig scfg;
    scfg.backend = rp::Backend::kEndpoints;
    scfg.streams = 4;
    rp::Session session = rp::Session::create(rank, scfg);

    rank.parallel(4, [&](int tid) {
      rp::Channel ch = session.channel(tid);
      const rp::PeerAddr to{peer, tid};
      int out = 100 * rank.rank() + tid;
      int in = -1;
      tmpi::Request rr = ch.irecv(&in, sizeof(in), to);
      tmpi::Request sr = ch.isend(&out, sizeof(out), to);
      sr.wait();
      rr.wait();
    });
    if (rank.rank() == 0) {
      std::printf("[rank %d] 4 streams exchanged in parallel; t=%lu ns\n", rank.rank(),
                  static_cast<unsigned long>(rank.clock().now()));
    }
  });

  const auto stats = world.snapshot();
  std::printf("total: %lu messages, %lu bytes, %lu ns virtual makespan\n",
              static_cast<unsigned long>(stats.messages),
              static_cast<unsigned long>(stats.bytes),
              static_cast<unsigned long>(world.elapsed()));
  return 0;
}
