/// Stencil halo exchange — the hypre/Smilei/Pencil pattern of the paper's
/// Figs. 4 and Listings 1/3/4 — run under every mechanism and compared.
///
///   $ ./stencil_halo [px py tx ty iters]
///
/// Prints per-mechanism exchange time, object counts, and the planner's
/// parallelism analysis, demonstrating Lessons 1-3, 10, 12 and 14 end to
/// end on one workload.

#include <cstdio>
#include <cstdlib>

#include "core/planner.h"
#include "workloads/stencil.h"

int main(int argc, char** argv) {
  wl::StencilParams p;
  p.px = argc > 1 ? std::atoi(argv[1]) : 2;
  p.py = argc > 2 ? std::atoi(argv[2]) : 2;
  p.tx = argc > 3 ? std::atoi(argv[3]) : 4;
  p.ty = argc > 4 ? std::atoi(argv[4]) : 4;
  p.iters = argc > 5 ? std::atoi(argv[5]) : 4;
  p.halo_bytes = 1024;
  p.diagonals = true;  // 9-point
  p.num_vcis = p.tx * p.ty;

  std::printf("2D 9-pt stencil: %dx%d processes, %dx%d threads each, %d iterations\n\n", p.px,
              p.py, p.tx, p.ty, p.iters);
  std::printf("%-22s %14s %10s %14s\n", "mechanism", "us/iter", "objects", "checksum");

  std::uint64_t expect = 0;
  for (auto mech : {wl::StencilMech::kSerial, wl::StencilMech::kComms, wl::StencilMech::kTags,
                    wl::StencilMech::kEndpoints, wl::StencilMech::kPartitioned}) {
    p.mech = mech;
    const auto r = wl::run_stencil(p);
    std::printf("%-22s %14.2f %10d %14lx\n", to_string(mech),
                static_cast<double>(r.run.elapsed_ns) / p.iters * 1e-3, r.comms_used,
                static_cast<unsigned long>(r.run.checksum));
    if (expect == 0) expect = r.run.checksum;
    if (r.run.checksum != expect) {
      std::printf("  !! checksum mismatch\n");
      return 1;
    }
  }

  // The naive map of Lesson 2, for contrast.
  p.mech = wl::StencilMech::kComms;
  p.strategy = rp::PlanStrategy::kNaive;
  const auto naive = wl::run_stencil(p);
  std::printf("%-22s %14.2f %10d %14lx\n", "comms (naive map)",
              static_cast<double>(naive.run.elapsed_ns) / p.iters * 1e-3, naive.comms_used,
              static_cast<unsigned long>(naive.run.checksum));

  // Planner analysis: why the maps differ (Lessons 1-3).
  rp::StencilPlan mirrored(rp::Vec3{p.px, p.py, 1}, rp::Vec3{p.tx, p.ty, 1}, true,
                           rp::PlanStrategy::kMirrored);
  rp::StencilPlan naive_plan(rp::Vec3{p.px, p.py, 1}, rp::Vec3{p.tx, p.ty, 1}, true,
                             rp::PlanStrategy::kNaive);
  const auto mm = mirrored.analyze();
  const auto nm = naive_plan.analyze();
  std::printf("\nplanner: mirrored map %d comms, %.0f%% parallelism exposed\n",
              mirrored.num_comms(), mm.parallel_fraction() * 100);
  std::printf("planner: naive map    %d comms, %.0f%% parallelism exposed (Lesson 2)\n",
              naive_plan.num_comms(), nm.parallel_fraction() * 100);
  std::printf("\n3D 27-pt for a [4,4,4] thread grid (Lesson 3): %ld communicators vs %ld "
              "endpoints (%.1fx)\n",
              rp::paper_comms_27pt(4, 4, 4), rp::channels_27pt(4, 4, 4),
              static_cast<double>(rp::paper_comms_27pt(4, 4, 4)) /
                  static_cast<double>(rp::channels_27pt(4, 4, 4)));
  return 0;
}
