#include "workloads/stencil.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "tmpi/tmpi.h"

namespace wl {

namespace {

using rp::PlanStrategy;
using rp::StencilPlan;
using rp::Vec3;
using namespace tmpi;

struct Geometry {
  StencilParams p;
  std::vector<Vec3> dirs;

  [[nodiscard]] int nthreads() const { return p.tx * p.ty * p.tz; }
  [[nodiscard]] int nprocs() const { return p.px * p.py * p.pz; }
  [[nodiscard]] Vec3 proc_of(int rank) const {
    return Vec3{rank % p.px, (rank / p.px) % p.py, rank / (p.px * p.py)};
  }
  [[nodiscard]] int rank_of(Vec3 proc) const {
    return (proc.z * p.py + proc.y) * p.px + proc.x;
  }
  [[nodiscard]] Vec3 thr_of(int tid) const {
    return Vec3{tid % p.tx, (tid / p.tx) % p.ty, tid / (p.tx * p.ty)};
  }
  [[nodiscard]] int tid_of(Vec3 t) const { return (t.z * p.ty + t.y) * p.tx + t.x; }
  [[nodiscard]] int dir_id(Vec3 d) const {
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      if (dirs[i] == d) return static_cast<int>(i);
    }
    throw std::logic_error("unknown direction");
  }
  [[nodiscard]] static Vec3 opposite(Vec3 d) { return Vec3{-d.x, -d.y, -d.z}; }
};

/// One exchange a thread performs each iteration.
struct Exchange {
  Vec3 dir;          ///< from this thread toward the partner
  int dir_send = 0;  ///< dir id of the *send* direction of the inbound message
  int dir_out = 0;   ///< dir id of our outbound send
  int partner_rank = 0;
  int partner_tid = 0;
};

std::vector<Exchange> exchanges_for(const Geometry& g, const StencilPlan& plan, int rank,
                                    int tid) {
  std::vector<Exchange> out;
  const Vec3 proc = g.proc_of(rank);
  const Vec3 thr = g.thr_of(tid);
  for (const Vec3& d : g.dirs) {
    Vec3 pp;
    Vec3 pt;
    if (!plan.partner(proc, thr, d, &pp, &pt) || !plan.is_inter_process(thr, d)) continue;
    Exchange e;
    e.dir = d;
    e.dir_out = g.dir_id(d);
    // The inbound message along d was *sent* toward -d by the partner.
    e.dir_send = g.dir_id(Geometry::opposite(d));
    e.partner_rank = g.rank_of(pp);
    e.partner_tid = g.tid_of(pt);
    out.push_back(e);
  }
  return out;
}

void fill_pattern(std::byte* buf, std::size_t n, int rank, int tid, int salt) {
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::byte>(pattern_byte(static_cast<std::uint64_t>(rank),
                                                 static_cast<std::uint64_t>(tid),
                                                 static_cast<std::uint64_t>(salt), i));
  }
}

void verify_pattern(const std::byte* buf, std::size_t n, int rank, int tid, int salt,
                    std::uint64_t* checksum) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto expect = pattern_byte(static_cast<std::uint64_t>(rank),
                                     static_cast<std::uint64_t>(tid),
                                     static_cast<std::uint64_t>(salt), i);
    if (buf[i] != static_cast<std::byte>(expect)) {
      throw std::runtime_error("stencil halo data mismatch");
    }
    checksum_mix(checksum, expect + i);
  }
}

int salt_of(int dir_send, int iter) { return dir_send * 1024 + iter; }

/// The nonblocking-exchange body shared by kSerial/kComms/kTags/kEndpoints;
/// mechanism differences are factored into the comm/tag/rank selectors.
struct EagerSelectors {
  // (exchange) -> comm for the send / recv sides
  std::function<const Comm&(const Exchange&)> send_comm;
  std::function<const Comm&(const Exchange&)> recv_comm;
  // (exchange, my tid) -> wire tag for the send / the posted recv
  std::function<Tag(const Exchange&, int)> send_tag;
  std::function<Tag(const Exchange&, int)> recv_tag;
  // (exchange) -> destination/source rank in the respective comm
  std::function<int(const Exchange&)> dst_rank;
  std::function<int(const Exchange&)> src_rank;
};

std::uint64_t eager_thread_loop(const Geometry& g, const StencilPlan& plan, int rank, int tid,
                                const EagerSelectors& sel) {
  const std::size_t hb = g.p.halo_bytes;
  const auto exs = exchanges_for(g, plan, rank, tid);
  std::vector<std::vector<std::byte>> sbufs(exs.size(), std::vector<std::byte>(hb));
  std::vector<std::vector<std::byte>> rbufs(exs.size(), std::vector<std::byte>(hb));
  std::vector<Request> reqs(2 * exs.size());
  std::uint64_t checksum = 0;

  for (int iter = 0; iter < g.p.iters; ++iter) {
    for (std::size_t i = 0; i < exs.size(); ++i) {
      const Exchange& e = exs[i];
      reqs[i] = irecv(rbufs[i].data(), static_cast<int>(hb), kByte, sel.src_rank(e),
                      sel.recv_tag(e, tid), sel.recv_comm(e));
    }
    for (std::size_t i = 0; i < exs.size(); ++i) {
      const Exchange& e = exs[i];
      fill_pattern(sbufs[i].data(), hb, rank, tid, salt_of(e.dir_out, iter));
      reqs[exs.size() + i] = isend(sbufs[i].data(), static_cast<int>(hb), kByte,
                                   sel.dst_rank(e), sel.send_tag(e, tid), sel.send_comm(e));
    }
    wait_all(reqs.data(), reqs.size());
    for (std::size_t i = 0; i < exs.size(); ++i) {
      const Exchange& e = exs[i];
      verify_pattern(rbufs[i].data(), hb, e.partner_rank, e.partner_tid,
                     salt_of(e.dir_send, iter), &checksum);
    }
  }
  return checksum;
}

/// Listing 4: persistent partitioned operations at the process level — one
/// psend/precv per neighbor *process*, one partition per thread-exchange
/// (so diagonal halos crossing a single boundary ride in that boundary's
/// message). Completion happens in a single thread followed by a team
/// barrier (the Lesson 14 synchronization).
void run_partitioned(const Geometry& g, const StencilPlan& plan, Rank& rank, Comm& wcomm,
                     std::atomic<std::uint64_t>* checksum, std::atomic<int>* comms_used) {
  const int my = rank.rank();
  const Vec3 proc = g.proc_of(my);
  const std::size_t hb = g.p.halo_bytes;
  const int nthreads = g.nthreads();
  Info pinfo;
  pinfo.set("tmpi_part_vcis", g.p.part_vcis);

  // The process offset an exchange crosses (0,0,0 if intra-process).
  auto proc_offset = [&](Vec3 thr, Vec3 d) {
    Vec3 off{0, 0, 0};
    if (d.x == 1 && thr.x == g.p.tx - 1) off.x = 1;
    if (d.x == -1 && thr.x == 0) off.x = -1;
    if (d.y == 1 && thr.y == g.p.ty - 1) off.y = 1;
    if (d.y == -1 && thr.y == 0) off.y = -1;
    if (d.z == 1 && thr.z == g.p.tz - 1) off.z = 1;
    if (d.z == -1 && thr.z == 0) off.z = -1;
    return off;
  };
  auto offset_id = [](Vec3 off) {
    return ((off.z + 1) * 3 + (off.y + 1)) * 3 + (off.x + 1);
  };

  struct Lane {
    int tid = 0;          ///< local thread driving this partition
    int dir = 0;          ///< dir id of the local thread's exchange direction
    int sender_tid = 0;   ///< the *sending* thread (== tid on the send side)
    int sender_dir = 0;   ///< dir id of the send direction (canonical order key)
  };
  struct NbrOp {
    Vec3 off;  ///< neighbor process offset
    int nbr = 0;
    std::vector<Lane> out;  ///< partitions we send, ordered by (tid, dir)
    std::vector<Lane> in;   ///< partitions we receive, same order on the sender
    std::vector<std::byte> sstage;
    std::vector<std::byte> rstage;
    Request sreq;
    Request rreq;
  };

  std::vector<NbrOp> ops;
  for (const Vec3& off : g.dirs) {  // candidate neighbor offsets
    const Vec3 np{proc.x + off.x, proc.y + off.y, proc.z + off.z};
    if (np.x < 0 || np.x >= g.p.px || np.y < 0 || np.y >= g.p.py || np.z < 0 ||
        np.z >= g.p.pz) {
      continue;
    }
    NbrOp op;
    op.off = off;
    op.nbr = g.rank_of(np);
    // Enumerate exchanges in (tid, dir) order — this is simultaneously the
    // sender's and (computed from partner info) the receiver's canonical
    // partition order, so both sides index partitions identically.
    for (int tid = 0; tid < nthreads; ++tid) {
      const Vec3 thr = g.thr_of(tid);
      for (const Vec3& d : g.dirs) {
        if (!plan.partner(proc, thr, d, nullptr, nullptr)) continue;
        if (proc_offset(thr, d) == off) {
          op.out.push_back(Lane{tid, g.dir_id(d), tid, g.dir_id(d)});
        }
      }
    }
    // Incoming: our exchanges whose partner process sits at `off`; ordered
    // by the *sender's* (tid, dir).
    for (int tid = 0; tid < nthreads; ++tid) {
      const Vec3 thr = g.thr_of(tid);
      for (const Vec3& d : g.dirs) {
        Vec3 pp;
        Vec3 pt;
        if (!plan.partner(proc, thr, d, &pp, &pt)) continue;
        if (proc_offset(thr, d) == off) {
          op.in.push_back(
              Lane{tid, g.dir_id(d), g.tid_of(pt), g.dir_id(Geometry::opposite(d))});
        }
      }
    }
    std::sort(op.in.begin(), op.in.end(), [](const Lane& a, const Lane& b) {
      return a.sender_tid != b.sender_tid ? a.sender_tid < b.sender_tid
                                          : a.sender_dir < b.sender_dir;
    });
    if (op.out.empty() && op.in.empty()) continue;
    op.sstage.resize(op.out.size() * hb);
    op.rstage.resize(op.in.size() * hb);
    // Tags: the send direction's offset id; the matching receive names the
    // sender's offset as seen from the sender (= -off from our side).
    if (!op.out.empty()) {
      op.sreq = psend_init(op.sstage.data(), static_cast<int>(op.out.size()),
                           static_cast<int>(hb), kByte, op.nbr,
                           static_cast<Tag>(offset_id(op.off)), wcomm, pinfo);
    }
    if (!op.in.empty()) {
      op.rreq = precv_init(
          op.rstage.data(), static_cast<int>(op.in.size()), static_cast<int>(hb), kByte,
          op.nbr, static_cast<Tag>(offset_id(Vec3{-op.off.x, -op.off.y, -op.off.z})), wcomm,
          pinfo);
    }
    ops.push_back(std::move(op));
  }
  if (my == 0) comms_used->store(1);

  auto start_all = [&] {
    for (auto& op : ops) {
      if (op.sreq.valid()) start(op.sreq);
      if (op.rreq.valid()) start(op.rreq);
    }
  };
  start_all();

  for (int iter = 0; iter < g.p.iters; ++iter) {
    rank.parallel(nthreads, [&](int tid) {
      const Vec3 thr = g.thr_of(tid);
      std::uint64_t local = 0;
      for (auto& op : ops) {
        for (std::size_t k = 0; k < op.out.size(); ++k) {
          if (op.out[k].tid != tid) continue;
          fill_pattern(op.sstage.data() + k * hb, hb, my, tid,
                       salt_of(op.out[k].dir, iter));
          pready(static_cast<int>(k), op.sreq);
        }
      }
      for (auto& op : ops) {
        for (std::size_t k = 0; k < op.in.size(); ++k) {
          if (op.in[k].tid != tid) continue;
          await_partition(op.rreq, static_cast<int>(k));
          verify_pattern(op.rstage.data() + k * hb, hb, op.nbr, op.in[k].sender_tid,
                         salt_of(op.in[k].sender_dir, iter), &local);
        }
      }
      checksum->fetch_add(local);
      (void)thr;
    });
    // Listing 4's "omp single" block: one thread completes the requests; the
    // parallel() join above plays the implicit barrier.
    for (auto& op : ops) {
      if (op.sreq.valid()) op.sreq.wait();
      if (op.rreq.valid()) op.rreq.wait();
    }
    if (iter + 1 < g.p.iters) start_all();
  }
}

}  // namespace

const char* to_string(StencilMech m) {
  switch (m) {
    case StencilMech::kSerial: return "serial";
    case StencilMech::kComms: return "comms";
    case StencilMech::kTags: return "tags";
    case StencilMech::kEndpoints: return "endpoints";
    case StencilMech::kPartitioned: return "partitioned";
  }
  return "?";
}

StencilResult run_stencil(const StencilParams& p) {
  const bool three_d = p.pz > 1 || p.tz > 1;
  Geometry g{p, rp::stencil_dirs(three_d, p.diagonals)};
  const int nthreads = g.nthreads();
  // The plan doubles as the geometry oracle for every mechanism.
  StencilPlan plan(Vec3{p.px, p.py, p.pz}, Vec3{p.tx, p.ty, p.tz}, p.diagonals,
                   p.mech == StencilMech::kComms ? p.strategy : PlanStrategy::kMirrored);

  WorldConfig wc;
  wc.nranks = g.nprocs();
  wc.ranks_per_node = p.ranks_per_node;
  wc.num_vcis = (p.mech == StencilMech::kSerial) ? 1 : p.num_vcis;
  wc.cost = p.cost;
  World world(wc);

  std::atomic<std::uint64_t> checksum{0};
  std::atomic<int> comms_used{0};

  world.run([&](Rank& rank) {
    Comm wcomm = rank.world_comm();
    const int my = rank.rank();

    switch (p.mech) {
      case StencilMech::kSerial: {
        // "Original": everything on the world comm's single VCI; thread ids
        // ride in the tag purely for matching.
        EagerSelectors sel;
        sel.send_comm = [&](const Exchange&) -> const Comm& { return wcomm; };
        sel.recv_comm = sel.send_comm;
        sel.dst_rank = [](const Exchange& e) { return e.partner_rank; };
        sel.src_rank = sel.dst_rank;
        sel.send_tag = [&](const Exchange& e, int tid) {
          // 5 bits hold any of the 26 3D directions.
          return static_cast<Tag>(((tid * nthreads + e.partner_tid) << 5) | e.dir_out);
        };
        sel.recv_tag = [&](const Exchange& e, int tid) {
          return static_cast<Tag>(((e.partner_tid * nthreads + tid) << 5) | e.dir_send);
        };
        if (my == 0) comms_used.store(1);
        rank.parallel(nthreads, [&](int tid) {
          checksum.fetch_add(eager_thread_loop(g, plan, my, tid, sel));
        });
        break;
      }

      case StencilMech::kComms: {
        std::vector<Comm> table;
        table.reserve(static_cast<std::size_t>(plan.num_comms()));
        for (int i = 0; i < plan.num_comms(); ++i) table.push_back(wcomm.dup());
        if (my == 0) comms_used.store(plan.num_comms());
        rank.parallel(nthreads, [&](int tid) {
          const Vec3 proc = g.proc_of(my);
          const Vec3 thr = g.thr_of(tid);
          EagerSelectors s;
          s.send_comm = [&, proc, thr](const Exchange& e) -> const Comm& {
            return table[static_cast<std::size_t>(plan.comm_for_send(proc, thr, e.dir))];
          };
          s.recv_comm = [&, proc, thr](const Exchange& e) -> const Comm& {
            return table[static_cast<std::size_t>(plan.comm_for_recv(proc, thr, e.dir))];
          };
          s.dst_rank = [](const Exchange& e) { return e.partner_rank; };
          s.src_rank = s.dst_rank;
          s.send_tag = [&](const Exchange& e, int) { return static_cast<Tag>(e.dir_out); };
          s.recv_tag = [&](const Exchange& e, int) { return static_cast<Tag>(e.dir_send); };
          checksum.fetch_add(eager_thread_loop(g, plan, my, tid, s));
        });
        break;
      }

      case StencilMech::kTags: {
        Info info;
        info.set("mpi_assert_allow_overtaking", "true");
        info.set("mpi_assert_no_any_tag", "true");
        info.set("mpi_assert_no_any_source", "true");
        info.set("tmpi_num_vcis", nthreads);
        int bits = 1;
        while ((1 << bits) < nthreads) ++bits;
        info.set("tmpi_num_tag_bits_vci", bits);
        info.set("tmpi_place_tag_bits_local_vci", "MSB");
        info.set("tmpi_tag_vci_hash_type", "one-to-one");
        Comm tcomm = wcomm.dup_with_info(info);
        if (my == 0) comms_used.store(1);
        const int tb = world.config().tag_bits;
        EagerSelectors sel;
        sel.send_comm = [&](const Exchange&) -> const Comm& { return tcomm; };
        sel.recv_comm = sel.send_comm;
        sel.dst_rank = [](const Exchange& e) { return e.partner_rank; };
        sel.src_rank = sel.dst_rank;
        sel.send_tag = [&, tb, bits](const Exchange& e, int tid) {
          return static_cast<Tag>((static_cast<unsigned>(tid) << (tb - bits)) |
                                  (static_cast<unsigned>(e.partner_tid) << (tb - 2 * bits)) |
                                  static_cast<unsigned>(e.dir_out));
        };
        sel.recv_tag = [&, tb, bits](const Exchange& e, int tid) {
          return static_cast<Tag>((static_cast<unsigned>(e.partner_tid) << (tb - bits)) |
                                  (static_cast<unsigned>(tid) << (tb - 2 * bits)) |
                                  static_cast<unsigned>(e.dir_send));
        };
        rank.parallel(nthreads, [&](int tid) {
          checksum.fetch_add(eager_thread_loop(g, plan, my, tid, sel));
        });
        break;
      }

      case StencilMech::kEndpoints: {
        auto eps = wcomm.create_endpoints(nthreads);
        if (my == 0) comms_used.store(nthreads);
        rank.parallel(nthreads, [&](int tid) {
          const Comm& myep = eps[static_cast<std::size_t>(tid)];
          EagerSelectors s;
          s.send_comm = [&](const Exchange&) -> const Comm& { return myep; };
          s.recv_comm = s.send_comm;
          s.dst_rank = [&](const Exchange& e) {
            return e.partner_rank * nthreads + e.partner_tid;  // Listing 3 addressing
          };
          s.src_rank = s.dst_rank;
          s.send_tag = [&](const Exchange& e, int) { return static_cast<Tag>(e.dir_out); };
          s.recv_tag = [&](const Exchange& e, int) { return static_cast<Tag>(e.dir_send); };
          checksum.fetch_add(eager_thread_loop(g, plan, my, tid, s));
        });
        break;
      }

      case StencilMech::kPartitioned: {
        run_partitioned(g, plan, rank, wcomm, &checksum, &comms_used);
        break;
      }
    }
  });

  StencilResult out;
  out.run.elapsed_ns = world.elapsed();
  out.run.checksum = checksum.load();
  out.run.net = world.snapshot();
  out.run.messages = out.run.net.messages;
  out.run.bytes = out.run.net.bytes;
  out.comms_used = comms_used.load();
  if (p.mech == StencilMech::kComms) out.plan_conflicts = plan.analyze().conflict_pairs;
  return out;
}

}  // namespace wl
