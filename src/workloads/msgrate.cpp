#include "workloads/msgrate.h"

#include <vector>

#include "tmpi/tmpi.h"

namespace wl {

namespace {

/// One worker's half of a windowed ping stream (the osu_mbw_mr pattern):
/// `msgs` messages of `bytes` through `comm` to `peer` with `tag`, `window`
/// in flight, with a zero-byte acknowledgement per window (`ack_tag`,
/// reverse direction). The ack keeps the unexpected queue bounded by the
/// window, which also keeps virtual times independent of host scheduling.
void stream_send(const tmpi::Comm& comm, int peer, tmpi::Tag tag, tmpi::Tag ack_tag, int msgs,
                 int window, const std::vector<std::byte>& buf) {
  std::vector<tmpi::Request> reqs(static_cast<std::size_t>(window));
  int issued = 0;
  while (issued < msgs) {
    const int burst = std::min(window, msgs - issued);
    for (int i = 0; i < burst; ++i) {
      reqs[static_cast<std::size_t>(i)] =
          tmpi::isend(buf.data(), static_cast<int>(buf.size()), tmpi::kByte, peer, tag, comm);
    }
    tmpi::wait_all(reqs.data(), static_cast<std::size_t>(burst));
    tmpi::recv(nullptr, 0, tmpi::kByte, peer, ack_tag, comm);
    issued += burst;
  }
}

void stream_recv(const tmpi::Comm& comm, int peer, tmpi::Tag tag, tmpi::Tag ack_tag, int msgs,
                 int window, std::vector<std::byte>& buf) {
  std::vector<tmpi::Request> reqs(static_cast<std::size_t>(window));
  int done = 0;
  while (done < msgs) {
    const int burst = std::min(window, msgs - done);
    for (int i = 0; i < burst; ++i) {
      reqs[static_cast<std::size_t>(i)] =
          tmpi::irecv(buf.data(), static_cast<int>(buf.size()), tmpi::kByte, peer, tag, comm);
    }
    tmpi::wait_all(reqs.data(), static_cast<std::size_t>(burst));
    tmpi::send(nullptr, 0, tmpi::kByte, peer, ack_tag, comm);
    done += burst;
  }
}

}  // namespace

const char* to_string(MsgRateMode m) {
  switch (m) {
    case MsgRateMode::kEverywhere: return "everywhere";
    case MsgRateMode::kThreadsOriginal: return "threads-original";
    case MsgRateMode::kThreadsEndpoints: return "threads-endpoints";
    case MsgRateMode::kThreadsTags: return "threads-tags";
    case MsgRateMode::kThreadsTagsHash: return "threads-tags-hash";
    case MsgRateMode::kThreadsComms: return "threads-comms";
  }
  return "?";
}

RunResult run_msgrate(const MsgRateParams& p) {
  using namespace tmpi;
  const int W = p.workers;
  const int msgs = p.msgs_per_worker;
  const std::size_t bytes = p.msg_bytes;

  WorldConfig wc;
  wc.cost = p.cost;
  wc.overload_info = p.overload;
  if (p.mode == MsgRateMode::kEverywhere) {
    wc.nranks = 2 * W;
    wc.ranks_per_node = W;
    wc.num_vcis = 1;
  } else {
    wc.nranks = 2;
    wc.ranks_per_node = 1;
    // The VCI pool mirrors what a tuned MPICH would provide: one VCI for the
    // "original" mode, a pool of W for the logically-parallel modes.
    wc.num_vcis = (p.mode == MsgRateMode::kThreadsOriginal) ? 1 : W;
  }
  World world(wc);

  world.run([&](Rank& rank) {
    Comm wcomm = rank.world_comm();
    std::vector<std::byte> buf(bytes, std::byte{0x5A});

    switch (p.mode) {
      case MsgRateMode::kEverywhere: {
        // Rank i on node 0 pairs with rank i+W on node 1.
        if (rank.rank() < W) {
          stream_send(wcomm, rank.rank() + W, 1, 2, msgs, p.window, buf);
        } else {
          stream_recv(wcomm, rank.rank() - W, 1, 2, msgs, p.window, buf);
        }
        break;
      }
      case MsgRateMode::kThreadsOriginal: {
        rank.parallel(W, [&](int tid) {
          std::vector<std::byte> tbuf(bytes, std::byte{0x5A});
          if (rank.rank() == 0) {
            stream_send(wcomm, 1, static_cast<Tag>(tid), static_cast<Tag>(W + tid), msgs, p.window, tbuf);
          } else {
            stream_recv(wcomm, 0, static_cast<Tag>(tid), static_cast<Tag>(W + tid), msgs, p.window, tbuf);
          }
        });
        break;
      }
      case MsgRateMode::kThreadsEndpoints: {
        auto eps = wcomm.create_endpoints(W);
        rank.parallel(W, [&](int tid) {
          std::vector<std::byte> tbuf(bytes, std::byte{0x5A});
          const Comm& my = eps[static_cast<std::size_t>(tid)];
          if (rank.rank() == 0) {
            stream_send(my, /*peer ep=*/1 * W + tid, 1, 2, msgs, p.window, tbuf);
          } else {
            stream_recv(my, /*peer ep=*/0 * W + tid, 1, 2, msgs, p.window, tbuf);
          }
        });
        break;
      }
      case MsgRateMode::kThreadsTags:
      case MsgRateMode::kThreadsTagsHash: {
        // Thread-id field width sized to the worker count (Listing 2's
        // layout); two fields plus app bits must fit the tag.
        int bits = 1;
        while ((1 << bits) < W) ++bits;
        const int tb = world.config().tag_bits;
        TMPI_REQUIRE(2 * bits + 2 <= tb, Errc::kInvalidArg,
                     "too many workers for the tag width (Lesson 9)");
        Info info;
        info.set("mpi_assert_allow_overtaking", "true");
        info.set("mpi_assert_no_any_tag", "true");
        info.set("mpi_assert_no_any_source", "true");
        info.set("tmpi_num_vcis", W);
        if (p.mode == MsgRateMode::kThreadsTags) {
          // The Listing-2 mapping hints; without them the library falls back
          // to hashing whole tags into VCIs (Lesson 7's "tedious" delta).
          info.set("tmpi_num_tag_bits_vci", bits);
          info.set("tmpi_place_tag_bits_local_vci", "MSB");
          info.set("tmpi_tag_vci_hash_type", "one-to-one");
        }
        Comm tcomm = wcomm.dup_with_info(info);
        rank.parallel(W, [&](int tid) {
          std::vector<std::byte> tbuf(bytes, std::byte{0x5A});
          // src tid in the top bits, dst tid in the next field (Listing 2).
          const auto tag =
              static_cast<Tag>((static_cast<unsigned>(tid) << (tb - bits)) |
                               (static_cast<unsigned>(tid) << (tb - 2 * bits)) | 1u);
          if (rank.rank() == 0) {
            stream_send(tcomm, 1, tag, static_cast<Tag>(tag + 1), msgs, p.window, tbuf);
          } else {
            stream_recv(tcomm, 0, tag, static_cast<Tag>(tag + 1), msgs, p.window, tbuf);
          }
        });
        break;
      }
      case MsgRateMode::kThreadsComms: {
        std::vector<Comm> comms;
        comms.reserve(static_cast<std::size_t>(W));
        for (int i = 0; i < W; ++i) comms.push_back(wcomm.dup());
        rank.parallel(W, [&](int tid) {
          std::vector<std::byte> tbuf(bytes, std::byte{0x5A});
          const Comm& c = comms[static_cast<std::size_t>(tid)];
          if (rank.rank() == 0) {
            stream_send(c, 1, 1, 2, msgs, p.window, tbuf);
          } else {
            stream_recv(c, 0, 1, 2, msgs, p.window, tbuf);
          }
        });
        break;
      }
    }
  });

  RunResult r;
  r.elapsed_ns = world.elapsed();
  r.messages = static_cast<std::uint64_t>(W) * static_cast<std::uint64_t>(msgs);
  r.bytes = r.messages * bytes;
  r.net = world.snapshot();
  return r;
}

}  // namespace wl
