#include "workloads/collective_workload.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "net/contention_lock.h"
#include "tmpi/tmpi.h"

namespace wl {

namespace {

using namespace tmpi;

double contribution(int rank, int tid, int elem) {
  return static_cast<double>(pattern_byte(static_cast<std::uint64_t>(rank),
                                          static_cast<std::uint64_t>(tid), 0xC0DE,
                                          static_cast<std::uint64_t>(elem)) %
                             5) -
         2.0;
}

/// Exact expected result: sum over all (rank, thread) contributions.
std::vector<double> expected_result(int nranks, int threads, int elements) {
  std::vector<double> out(static_cast<std::size_t>(elements), 0.0);
  for (int r = 0; r < nranks; ++r) {
    for (int t = 0; t < threads; ++t) {
      for (int e = 0; e < elements; ++e) {
        out[static_cast<std::size_t>(e)] += contribution(r, t, e);
      }
    }
  }
  return out;
}

void verify(const double* got, const std::vector<double>& want) {
  for (std::size_t e = 0; e < want.size(); ++e) {
    if (got[e] != want[e]) throw std::runtime_error("collective result mismatch");
  }
}

/// Charge the shared-memory combine of `bytes` to the calling thread.
void charge_combine(std::size_t bytes, const net::CostModel& cm) {
  net::ThreadClock::get().advance(
      static_cast<net::Time>(static_cast<double>(bytes) / cm.shm_bandwidth_bytes_per_ns));
}

}  // namespace

const char* to_string(CollMech m) {
  switch (m) {
    case CollMech::kSingleThread: return "single-thread";
    case CollMech::kPerThreadComms: return "per-thread-comms";
    case CollMech::kEndpoints: return "endpoints";
    case CollMech::kPartitionedStyle: return "partitioned-style";
  }
  return "?";
}

RunResult run_collective(const CollParams& p) {
  TMPI_REQUIRE(p.elements % p.threads == 0, Errc::kInvalidArg,
               "elements must be divisible by threads");
  const int T = p.threads;
  const int N = p.elements;
  const int slice = N / T;
  const std::size_t bytes = static_cast<std::size_t>(N) * sizeof(double);

  WorldConfig wc;
  wc.nranks = p.nranks;
  wc.ranks_per_node = 1;
  wc.num_vcis = (p.mech == CollMech::kSingleThread) ? 1 : p.num_vcis;
  wc.cost = p.cost;
  World world(wc);

  const auto want = expected_result(p.nranks, T, N);
  std::atomic<std::uint64_t> result_bytes{0};

  world.run([&](Rank& rank) {
    const int my = rank.rank();
    Comm wcomm = rank.world_comm();
    const net::CostModel& cm = world.cost();

    // Per-thread contribution vectors.
    std::vector<std::vector<double>> contrib(static_cast<std::size_t>(T),
                                             std::vector<double>(static_cast<std::size_t>(N)));
    for (int t = 0; t < T; ++t) {
      for (int e = 0; e < N; ++e) {
        contrib[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)] =
            contribution(my, t, e);
      }
    }

    std::vector<double> local(static_cast<std::size_t>(N));   // pre-combined process vector
    std::vector<double> result(static_cast<std::size_t>(N));  // the single result buffer

    // The user-driven intranode portion: threads combine disjoint slices of
    // the T contribution vectors into `local` (Lesson 18's manual step).
    auto local_combine = [&] {
      rank.parallel(T, [&](int tid) {
        const int lo = tid * slice;
        for (int e = lo; e < lo + slice; ++e) {
          double s = 0.0;
          for (int t = 0; t < T; ++t) {
            s += contrib[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
          }
          local[static_cast<std::size_t>(e)] = s;
        }
        charge_combine(static_cast<std::size_t>(slice) * T * sizeof(double), cm);
      });
    };

    switch (p.mech) {
      case CollMech::kSingleThread: {
        for (int it = 0; it < p.iters; ++it) {
          local_combine();
          allreduce(local.data(), result.data(), N, kDouble, Op::kSum, wcomm);
        }
        if (my == 0) result_bytes.store(bytes);
        break;
      }

      case CollMech::kPerThreadComms: {
        std::vector<Comm> comms;
        comms.reserve(static_cast<std::size_t>(T));
        for (int t = 0; t < T; ++t) comms.push_back(wcomm.dup());
        for (int it = 0; it < p.iters; ++it) {
          local_combine();
          rank.parallel(T, [&](int tid) {
            const int lo = tid * slice;
            allreduce(local.data() + lo, result.data() + lo, slice, kDouble, Op::kSum,
                      comms[static_cast<std::size_t>(tid)]);
          });
        }
        if (my == 0) result_bytes.store(bytes);
        break;
      }

      case CollMech::kEndpoints: {
        auto eps = wcomm.create_endpoints(T);
        // Each endpoint needs its own full-size result buffer (Lesson 19).
        std::vector<std::vector<double>> ep_result(
            static_cast<std::size_t>(T), std::vector<double>(static_cast<std::size_t>(N)));
        for (int it = 0; it < p.iters; ++it) {
          rank.parallel(T, [&](int tid) {
            allreduce(contrib[static_cast<std::size_t>(tid)].data(),
                      ep_result[static_cast<std::size_t>(tid)].data(), N, kDouble, Op::kSum,
                      eps[static_cast<std::size_t>(tid)]);
          });
        }
        result = ep_result[0];
        if (my == 0) result_bytes.store(bytes * static_cast<std::size_t>(T));
        break;
      }

      case CollMech::kPartitionedStyle: {
        // Partitioned-collective concept: parallel per-slice transport into
        // one buffer, with every thread contribution passing through a
        // shared request (Lesson 14).
        std::vector<Comm> comms;
        comms.reserve(static_cast<std::size_t>(T));
        for (int t = 0; t < T; ++t) comms.push_back(wcomm.dup());
        net::ContentionLock shared_req;
        for (int it = 0; it < p.iters; ++it) {
          local_combine();
          rank.parallel(T, [&](int tid) {
            auto& clk = net::ThreadClock::get();
            {
              net::ContentionLock::Guard g(shared_req, clk, cm, &world.fabric().stats());
              clk.advance(cm.partition_flag_ns);  // Pready-equivalent
            }
            const int lo = tid * slice;
            allreduce(local.data() + lo, result.data() + lo, slice, kDouble, Op::kSum,
                      comms[static_cast<std::size_t>(tid)]);
            {
              net::ContentionLock::Guard g(shared_req, clk, cm, &world.fabric().stats());
              clk.advance(cm.partition_flag_ns);  // completion-poll equivalent
            }
          });
        }
        if (my == 0) result_bytes.store(bytes);
        break;
      }
    }

    verify(result.data(), want);
  });

  RunResult r;
  r.elapsed_ns = world.elapsed();
  r.checksum = 1;  // verified exactly above
  r.aux = static_cast<std::uint64_t>(p.iters);
  r.result_buffer_bytes = result_bytes.load();
  r.net = world.snapshot();
  r.messages = r.net.messages;
  r.bytes = r.net.bytes;
  return r;
}

}  // namespace wl
