#ifndef WL_EVENT_RUNTIME_H
#define WL_EVENT_RUNTIME_H

#include "net/cost_model.h"
#include "workloads/common.h"

/// \file event_runtime.h
/// A Legion/Realm-style event-based runtime (Fig. 5): every process runs
/// task threads that push small event messages to remote processes, and one
/// polling thread that drains incoming events — with wildcard receives,
/// because the sender set is dynamic.
///
/// Mechanisms:
///  - kSerial     — everything on one communicator / VCI ("Original").
///  - kComms      — a communicator per task-thread class. Task sends are
///                  parallel, but the polling thread must *iterate* over the
///                  communicators (Lesson 5): head-of-line blocking and
///                  per-comm sweep overhead slow event processing.
///  - kTags       — one comm with allow_overtaking only: sends spread over
///                  VCIs, but wildcard receives funnel through one channel.
///  - kEndpoints  — a dedicated endpoint per task thread plus one for the
///                  polling thread, which keeps its wildcard receives on its
///                  own matching engine (the design Fig. 5 advocates).
///  - kEverywhere — MPI everywhere: one rank per task thread, each draining
///                  its own queue (no shared polling thread).

namespace wl {

enum class EventMech {
  kSerial,
  kComms,
  kTags,
  kEndpoints,
  kEverywhere,
};

const char* to_string(EventMech m);

struct EventParams {
  EventMech mech = EventMech::kEndpoints;
  int nranks = 4;             ///< processes (nodes)
  int task_threads = 4;       ///< task threads per process
  int events_per_thread = 64; ///< events each task thread emits (divisible by nranks-1)
  std::size_t msg_bytes = 64;
  tmpi::net::Time process_ns = 500;   ///< polling-thread work per event
  tmpi::net::Time poll_step_ns = 120; ///< cost of checking one communicator in a sweep
  int num_vcis = 16;
  tmpi::net::CostModel cost{};
};

/// Returns results with aux = events processed; throws on payload mismatch.
RunResult run_event_runtime(const EventParams& p);

}  // namespace wl

#endif  // WL_EVENT_RUNTIME_H
