#ifndef WL_DEVICE_COMM_H
#define WL_DEVICE_COMM_H

#include "net/cost_model.h"
#include "workloads/common.h"

/// \file device_comm.h
/// §III-D / Lesson 20: communication in accelerated applications.
///
/// The paper does not measure GPUs (no study existed yet); it argues
/// structurally. We simulate the structure: a "device" is a thread team
/// whose (re)launch costs `kernel_launch_ns` — the system/runtime overhead
/// that limits accelerated applications — and whose workers each own a data
/// chunk exchanged with the peer process every iteration.
///
///  - kHostOrchestrated  — the status quo: control returns to the CPU every
///                         iteration (kernel relaunch), and the host thread
///                         issues all chunks' communication serially.
///  - kDevicePartitioned — Lesson 20's partitioned path: Psend/Precv are set
///                         up once on the CPU (off the critical path);
///                         device workers drive partitions with lightweight
///                         Pready/Parrived. But completion (MPI_Wait +
///                         restart) still returns to the CPU, so the kernel
///                         relaunches every iteration — the "repeated
///                         transfers of control" the paper warns about.
///  - kPersistentProxy   — the application-level alternative the paper
///                         sketches: one persistent kernel (a single launch)
///                         whose workers signal a CPU proxy through flags;
///                         the proxy issues the communication.
///
/// Payloads carry the usual verified pattern; all modes move identical data.

namespace wl {

enum class DeviceMech {
  kHostOrchestrated,
  kDevicePartitioned,
  kPersistentProxy,
};

const char* to_string(DeviceMech m);

struct DeviceParams {
  DeviceMech mech = DeviceMech::kDevicePartitioned;
  int device_threads = 8;         ///< device workers (thread blocks) per process
  int iters = 8;
  std::size_t chunk_bytes = 2048; ///< per-worker halo chunk
  tmpi::net::Time kernel_launch_ns = 8000;  ///< device (re)launch overhead
  tmpi::net::Time compute_ns = 2000;        ///< per-worker compute per iteration
  tmpi::net::Time flag_ns = 100;            ///< device->CPU flag signal cost
  tmpi::net::CostModel cost{};
};

/// Runs a pairwise exchange between 2 processes; throws on data mismatch.
RunResult run_device_comm(const DeviceParams& p);

}  // namespace wl

#endif  // WL_DEVICE_COMM_H
