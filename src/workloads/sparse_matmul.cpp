#include "workloads/sparse_matmul.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tmpi/tmpi.h"

namespace wl {

namespace {

using namespace tmpi;

/// Deterministic small-integer entry of A or B (exact in double arithmetic).
double entry(std::uint64_t matrix, int block, int elem) {
  return static_cast<double>(pattern_byte(matrix, static_cast<std::uint64_t>(block),
                                          0x5eedULL, static_cast<std::uint64_t>(elem)) %
                             7) -
         3.0;
}

bool keep_task(int i, int j, int k, int keep_mod) {
  const std::uint64_t h = pattern_byte(static_cast<std::uint64_t>(i),
                                       static_cast<std::uint64_t>(j),
                                       static_cast<std::uint64_t>(k), 0xD00D);
  return static_cast<int>(h % static_cast<std::uint64_t>(keep_mod)) == 0;
}

struct Layout {
  int nranks;
  int nb;
  int bs;

  [[nodiscard]] int blocks() const { return nb * nb; }
  [[nodiscard]] int block_id(int i, int j) const { return i * nb + j; }
  [[nodiscard]] int owner(int bid) const { return bid % nranks; }
  [[nodiscard]] int slot(int bid) const { return bid / nranks; }
  [[nodiscard]] int slots_per_rank() const { return (blocks() + nranks - 1) / nranks; }
  [[nodiscard]] std::size_t elems_per_rank() const {
    return static_cast<std::size_t>(slots_per_rank()) * static_cast<std::size_t>(bs) *
           static_cast<std::size_t>(bs);
  }
  /// Element displacement of a block within its owner's window.
  [[nodiscard]] std::size_t disp(int bid) const {
    return static_cast<std::size_t>(slot(bid)) * static_cast<std::size_t>(bs) *
           static_cast<std::size_t>(bs);
  }
};

void fill_local_blocks(const Layout& lay, int rank, std::uint64_t matrix,
                       std::vector<double>* buf) {
  buf->assign(lay.elems_per_rank(), 0.0);
  for (int bid = 0; bid < lay.blocks(); ++bid) {
    if (lay.owner(bid) != rank) continue;
    double* dst = buf->data() + lay.disp(bid);
    for (int e = 0; e < lay.bs * lay.bs; ++e) dst[e] = entry(matrix, bid, e);
  }
}

/// Serial reference: C = sum over kept (i,j,k) of A(i,k) * B(k,j).
std::vector<double> reference_c(const Layout& lay, int keep_mod) {
  std::vector<double> c(static_cast<std::size_t>(lay.blocks()) *
                            static_cast<std::size_t>(lay.bs) * static_cast<std::size_t>(lay.bs),
                        0.0);
  const int bs = lay.bs;
  std::vector<double> a(static_cast<std::size_t>(bs) * static_cast<std::size_t>(bs));
  std::vector<double> b(a.size());
  for (int i = 0; i < lay.nb; ++i) {
    for (int j = 0; j < lay.nb; ++j) {
      for (int k = 0; k < lay.nb; ++k) {
        if (!keep_task(i, j, k, keep_mod)) continue;
        const int abid = lay.block_id(i, k);
        const int bbid = lay.block_id(k, j);
        for (int e = 0; e < bs * bs; ++e) {
          a[static_cast<std::size_t>(e)] = entry(1, abid, e);
          b[static_cast<std::size_t>(e)] = entry(2, bbid, e);
        }
        double* cblk =
            c.data() + static_cast<std::size_t>(lay.block_id(i, j)) *
                           static_cast<std::size_t>(bs) * static_cast<std::size_t>(bs);
        for (int r = 0; r < bs; ++r) {
          for (int cc = 0; cc < bs; ++cc) {
            double s = 0.0;
            for (int m = 0; m < bs; ++m) {
              s += a[static_cast<std::size_t>(r * bs + m)] *
                   b[static_cast<std::size_t>(m * bs + cc)];
            }
            cblk[r * bs + cc] += s;
          }
        }
      }
    }
  }
  return c;
}

}  // namespace

const char* to_string(RmaMech m) {
  switch (m) {
    case RmaMech::kStrictWindow: return "strict-window";
    case RmaMech::kRelaxedHash: return "relaxed-hash";
    case RmaMech::kEndpointsWin: return "endpoints-window";
  }
  return "?";
}

RunResult run_sparse_matmul(const MatmulParams& p) {
  const Layout lay{p.nranks, p.nb, p.bs};
  const int T = p.threads;
  const int bs = p.bs;
  const std::size_t blk_elems = static_cast<std::size_t>(bs) * static_cast<std::size_t>(bs);

  WorldConfig wc;
  wc.nranks = p.nranks;
  wc.ranks_per_node = 1;
  wc.num_vcis = (p.mech == RmaMech::kStrictWindow) ? 1 : T;
  wc.cost = p.cost;
  World world(wc);

  // Per-rank local window memory, kept alive across the run.
  std::vector<std::vector<double>> amem(static_cast<std::size_t>(p.nranks));
  std::vector<std::vector<double>> bmem(static_cast<std::size_t>(p.nranks));
  std::vector<std::vector<double>> cmem(static_cast<std::size_t>(p.nranks));
  std::atomic<std::uint64_t> tasks_done{0};

  world.run([&](Rank& rank) {
    const int my = rank.rank();
    auto& a = amem[static_cast<std::size_t>(my)];
    auto& b = bmem[static_cast<std::size_t>(my)];
    auto& c = cmem[static_cast<std::size_t>(my)];
    fill_local_blocks(lay, my, 1, &a);
    fill_local_blocks(lay, my, 2, &b);
    c.assign(lay.elems_per_rank(), 0.0);

    Info winfo;
    if (p.mech == RmaMech::kRelaxedHash) {
      winfo.set("accumulate_ordering", "none");
      winfo.set("tmpi_num_vcis", T);
    }

    Comm wcomm = rank.world_comm();
    const std::size_t wbytes = lay.elems_per_rank() * sizeof(double);

    auto task_body = [&](Window& wa, Window& wb, Window& wc2, int tid,
                         auto&& target_of) {
      std::vector<double> ta(blk_elems);
      std::vector<double> tb(blk_elems);
      std::vector<double> tc(blk_elems);
      auto& clk = net::ThreadClock::get();
      for (int i = 0; i < lay.nb; ++i) {
        for (int j = 0; j < lay.nb; ++j) {
          for (int k = 0; k < lay.nb; ++k) {
            if (!keep_task(i, j, k, p.keep_mod)) continue;
            const int task = (i * lay.nb + j) * lay.nb + k;
            if (task % (p.nranks * T) != my * T + tid) continue;
            const int abid = lay.block_id(i, k);
            const int bbid = lay.block_id(k, j);
            const int cbid = lay.block_id(i, j);
            wa.get(ta.data(), static_cast<int>(blk_elems), kDouble, target_of(lay.owner(abid)),
                   lay.disp(abid));
            wb.get(tb.data(), static_cast<int>(blk_elems), kDouble, target_of(lay.owner(bbid)),
                   lay.disp(bbid));
            wa.flush_all();
            wb.flush_all();
            // Tile multiply (exact small-int arithmetic); charge virtual
            // compute time for 2*bs^3 flops.
            for (int r = 0; r < bs; ++r) {
              for (int cc = 0; cc < bs; ++cc) {
                double s = 0.0;
                for (int m = 0; m < bs; ++m) {
                  s += ta[static_cast<std::size_t>(r * bs + m)] *
                       tb[static_cast<std::size_t>(m * bs + cc)];
                }
                tc[static_cast<std::size_t>(r * bs + cc)] = s;
              }
            }
            clk.advance(static_cast<net::Time>(2.0 * bs * bs * bs / p.flops_per_ns));
            wc2.accumulate(tc.data(), static_cast<int>(blk_elems), kDouble,
                           target_of(lay.owner(cbid)), lay.disp(cbid), Op::kSum);
            wc2.flush_all();
            tasks_done.fetch_add(1);
          }
        }
      }
    };

    if (p.mech == RmaMech::kEndpointsWin) {
      auto eps = wcomm.create_endpoints(T);
      rank.parallel(T, [&](int tid) {
        // Window creation is collective over every endpoint; all endpoints
        // of a process expose the same local slab.
        const Comm& ep = eps[static_cast<std::size_t>(tid)];
        Window wa = Window::create(a.data(), wbytes, ep, winfo);
        Window wb = Window::create(b.data(), wbytes, ep, winfo);
        Window wc2 = Window::create(c.data(), wbytes, ep, winfo);
        // Spread target endpoints by thread id to use remote channels evenly.
        auto target_of = [&](int owner) { return owner * T + tid; };
        task_body(wa, wb, wc2, tid, target_of);
        wa.fence();
        wb.fence();
        wc2.fence();
      });
    } else {
      Window wa = Window::create(a.data(), wbytes, wcomm, winfo);
      Window wb = Window::create(b.data(), wbytes, wcomm, winfo);
      Window wc2 = Window::create(c.data(), wbytes, wcomm, winfo);
      rank.parallel(T, [&](int tid) {
        auto target_of = [&](int owner) { return owner; };
        task_body(wa, wb, wc2, tid, target_of);
        wa.flush_all();
        wb.flush_all();
        wc2.flush_all();
      });
      wa.fence();
      wb.fence();
      wc2.fence();
    }
  });

  // Verify against the serial reference.
  const auto ref = reference_c(lay, p.keep_mod);
  std::uint64_t checksum = 0;
  for (int bid = 0; bid < lay.blocks(); ++bid) {
    const double* got = cmem[static_cast<std::size_t>(lay.owner(bid))].data() + lay.disp(bid);
    const double* want = ref.data() + static_cast<std::size_t>(bid) * blk_elems;
    for (std::size_t e = 0; e < blk_elems; ++e) {
      if (got[e] != want[e]) {
        throw std::runtime_error("sparse matmul result mismatch");
      }
      checksum_mix(&checksum, static_cast<std::uint64_t>(std::llround(want[e])) + e);
    }
  }

  RunResult r;
  r.elapsed_ns = world.elapsed();
  r.checksum = checksum;
  r.aux = tasks_done.load();
  r.net = world.snapshot();
  r.messages = r.net.rma_ops;
  return r;
}

}  // namespace wl
