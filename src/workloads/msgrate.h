#ifndef WL_MSGRATE_H
#define WL_MSGRATE_H

#include "net/cost_model.h"
#include "tmpi/info.h"
#include "workloads/common.h"

/// \file msgrate.h
/// The Fig. 1(a) microbenchmark: message rate between two nodes as a
/// function of the number of workers, under the communication models the
/// paper compares.
///
///  - kEverywhere        — MPI everywhere: one single-threaded rank per
///                         worker (workers ranks per node).
///  - kThreadsOriginal   — MPI+threads, no logically parallel communication:
///                         one rank per node, all threads share one
///                         communicator and therefore one VCI.
///  - kThreadsEndpoints  — MPI+threads, one endpoint (and VCI) per thread.
///  - kThreadsTags       — MPI+threads, tags + hints (one-to-one VCI map).
///  - kThreadsComms      — MPI+threads, one duplicated communicator per
///                         thread (VCI pool sized to match).
///
/// The paper's expected shape: Everywhere, Endpoints, Tags, and Comms scale
/// with workers; Original stays flat (serialization on the single channel).

namespace wl {

enum class MsgRateMode {
  kEverywhere,
  kThreadsOriginal,
  kThreadsEndpoints,
  kThreadsTags,      ///< one-to-one tag-bit hints (optimal mapping, Lesson 7)
  kThreadsTagsHash,  ///< assertions only; the library hashes tags to VCIs
  kThreadsComms,
};

const char* to_string(MsgRateMode m);

struct MsgRateParams {
  MsgRateMode mode = MsgRateMode::kThreadsEndpoints;
  int workers = 4;            ///< sender threads (or ranks per node)
  int msgs_per_worker = 512;  ///< total messages each worker sends
  int window = 32;            ///< nonblocking messages in flight per worker
  std::size_t msg_bytes = 8;
  tmpi::net::CostModel cost{};
  /// Overload knobs (`tmpi_eager_credits`, `tmpi_unexpected_cap`,
  /// `tmpi_watchdog_ns`) forwarded to WorldConfig::overload_info; empty
  /// keeps the bit-exact default path (DESIGN.md §8).
  tmpi::Info overload{};
};

/// Run the benchmark on a fresh 2-node world; returns virtual-time results.
RunResult run_msgrate(const MsgRateParams& p);

}  // namespace wl

#endif  // WL_MSGRATE_H
