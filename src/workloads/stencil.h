#ifndef WL_STENCIL_H
#define WL_STENCIL_H

#include "core/planner.h"
#include "net/cost_model.h"
#include "workloads/common.h"

/// \file stencil.h
/// Stencil halo exchange (the hypre / Smilei / Pencil pattern of Figs. 4
/// and Listings 1, 3, 4) over a px*py[*pz] process grid with tx*ty[*tz]
/// threads per process, one patch per thread — 2D 5/9-point or 3D 7/27-point
/// (hypre's real pattern) — under every mechanism the paper compares:
///
///  - kSerial       — "MPI+threads (Original)": one communicator, tids in
///                    tags, a single VCI.
///  - kComms        — communicators from a planner-generated map (mirrored
///                    ideal, or the naive half-parallel map of Lesson 2).
///  - kTags         — MPI 4.0 assertions + tag-bit VCI hints (Listing 2).
///  - kEndpoints    — one endpoint per thread (Listing 3).
///  - kPartitioned  — persistent partitioned ops per direction, one
///                    partition per lane thread (Listing 4), including its
///                    end-of-iteration single-thread completion + barrier.
///
/// Each boundary thread exchanges `halo_bytes` with each inter-process
/// neighbor per iteration (diagonals included for the 9-point variant);
/// payloads carry a deterministic pattern verified on arrival.

namespace wl {

enum class StencilMech {
  kSerial,
  kComms,
  kTags,
  kEndpoints,
  kPartitioned,
};

const char* to_string(StencilMech m);

struct StencilParams {
  StencilMech mech = StencilMech::kEndpoints;
  rp::PlanStrategy strategy = rp::PlanStrategy::kMirrored;  ///< kComms only
  int px = 2, py = 2, pz = 1;  ///< process grid (pz > 1: 3D domain)
  int tx = 3, ty = 3, tz = 1;  ///< thread grid per process (tz > 1: 3D patches)
  int iters = 4;
  std::size_t halo_bytes = 512;
  bool diagonals = true;   ///< 9-point vs 5-point
  int num_vcis = 16;       ///< base VCI pool per rank
  int ranks_per_node = 1;  ///< >1 models MPI everywhere sharing a node's NIC
  int part_vcis = 1;      ///< kPartitioned: VCIs partitions spread over
  tmpi::net::CostModel cost{};
};

struct StencilResult {
  RunResult run;
  int comms_used = 0;  ///< communicators (or endpoints) the mechanism created
  long plan_conflicts = 0;  ///< planner conflicts (kComms only)
};

/// Run the halo exchange; throws on any data mismatch.
StencilResult run_stencil(const StencilParams& p);

}  // namespace wl

#endif  // WL_STENCIL_H
