#include "workloads/device_comm.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "tmpi/tmpi.h"

namespace wl {

namespace {

using namespace tmpi;

void fill_chunk(std::byte* buf, std::size_t n, int rank, int g, int iter) {
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::byte>(pattern_byte(static_cast<std::uint64_t>(rank),
                                                 static_cast<std::uint64_t>(g),
                                                 static_cast<std::uint64_t>(iter), i));
  }
}

void verify_chunk(const std::byte* buf, std::size_t n, int rank, int g, int iter,
                  std::uint64_t* checksum) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto expect = pattern_byte(static_cast<std::uint64_t>(rank),
                                     static_cast<std::uint64_t>(g),
                                     static_cast<std::uint64_t>(iter), i);
    if (buf[i] != static_cast<std::byte>(expect)) {
      throw std::runtime_error("device chunk mismatch");
    }
    checksum_mix(checksum, expect + i);
  }
}

}  // namespace

const char* to_string(DeviceMech m) {
  switch (m) {
    case DeviceMech::kHostOrchestrated: return "host-orchestrated";
    case DeviceMech::kDevicePartitioned: return "device-partitioned";
    case DeviceMech::kPersistentProxy: return "persistent-proxy";
  }
  return "?";
}

RunResult run_device_comm(const DeviceParams& p) {
  const int G = p.device_threads;
  const std::size_t cb = p.chunk_bytes;

  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;
  wc.num_vcis = (p.mech == DeviceMech::kHostOrchestrated) ? 1 : G;
  wc.cost = p.cost;
  World world(wc);

  std::atomic<std::uint64_t> checksum{0};

  world.run([&](Rank& rank) {
    Comm wcomm = rank.world_comm();
    const int my = rank.rank();
    const int peer = 1 - my;
    std::vector<std::byte> sstage(static_cast<std::size_t>(G) * cb);
    std::vector<std::byte> rstage(static_cast<std::size_t>(G) * cb);
    auto& clk = rank.clock();
    std::uint64_t local = 0;

    switch (p.mech) {
      case DeviceMech::kHostOrchestrated: {
        // Per iteration: run the kernel (launch + compute), return control
        // to the CPU, which then issues every chunk serially.
        std::vector<Request> reqs(static_cast<std::size_t>(2 * G));
        for (int iter = 0; iter < p.iters; ++iter) {
          clk.advance(p.kernel_launch_ns);
          // The kernel computes all workers' chunks concurrently on-device.
          clk.advance(p.compute_ns);
          for (int g = 0; g < G; ++g) {
            fill_chunk(sstage.data() + static_cast<std::size_t>(g) * cb, cb, my, g, iter);
          }
          for (int g = 0; g < G; ++g) {
            reqs[static_cast<std::size_t>(g)] =
                irecv(rstage.data() + static_cast<std::size_t>(g) * cb, static_cast<int>(cb),
                      kByte, peer, static_cast<Tag>(g), wcomm);
            reqs[static_cast<std::size_t>(G + g)] =
                isend(sstage.data() + static_cast<std::size_t>(g) * cb, static_cast<int>(cb),
                      kByte, peer, static_cast<Tag>(g), wcomm);
          }
          wait_all(reqs.data(), reqs.size());
          for (int g = 0; g < G; ++g) {
            verify_chunk(rstage.data() + static_cast<std::size_t>(g) * cb, cb, peer, g, iter,
                         &local);
          }
        }
        break;
      }

      case DeviceMech::kDevicePartitioned: {
        // Setup off the critical path (CPU, once): one partitioned send and
        // receive with a partition per device worker, spread over G VCIs.
        Info info;
        info.set("tmpi_part_vcis", G);
        Request sreq = psend_init(sstage.data(), G, static_cast<int>(cb), kByte, peer, 1,
                                  wcomm, info);
        Request rreq = precv_init(rstage.data(), G, static_cast<int>(cb), kByte, peer, 1,
                                  wcomm, info);
        start(sreq);
        start(rreq);
        for (int iter = 0; iter < p.iters; ++iter) {
          // The kernel must be relaunched every iteration: completion and
          // restart happen on the CPU (Lesson 20's limitation).
          clk.advance(p.kernel_launch_ns);
          rank.parallel(G, [&](int g) {
            auto& dclk = net::ThreadClock::get();
            dclk.advance(p.compute_ns);
            fill_chunk(sstage.data() + static_cast<std::size_t>(g) * cb, cb, my, g, iter);
            pready(g, sreq);                 // lightweight device-side trigger
            await_partition(rreq, g);        // lightweight device-side arrival check
            std::uint64_t cs = 0;
            verify_chunk(rstage.data() + static_cast<std::size_t>(g) * cb, cb, peer, g, iter,
                         &cs);
            checksum.fetch_add(cs);
          });
          sreq.wait();
          rreq.wait();
          if (iter + 1 < p.iters) {
            start(sreq);
            start(rreq);
          }
        }
        break;
      }

      case DeviceMech::kPersistentProxy: {
        // One launch; afterwards device workers hand chunks to a CPU proxy
        // through flags. The proxy communicates through per-worker endpoints
        // so remote channels stay parallel even though it is one thread.
        auto eps = wcomm.create_endpoints(G);
        clk.advance(p.kernel_launch_ns);  // single persistent launch
        std::vector<Request> reqs(static_cast<std::size_t>(2 * G));
        for (int iter = 0; iter < p.iters; ++iter) {
          // Device phase: compute + flag (the parallel-join models the
          // flag handshake with the proxy).
          rank.parallel(G, [&](int g) {
            auto& dclk = net::ThreadClock::get();
            dclk.advance(p.compute_ns + p.flag_ns);
            fill_chunk(sstage.data() + static_cast<std::size_t>(g) * cb, cb, my, g, iter);
          });
          // Proxy phase: the CPU thread issues every chunk, each through its
          // worker's endpoint.
          for (int g = 0; g < G; ++g) {
            const Comm& ep = eps[static_cast<std::size_t>(g)];
            const int peer_ep = peer * G + g;
            reqs[static_cast<std::size_t>(g)] =
                irecv(rstage.data() + static_cast<std::size_t>(g) * cb, static_cast<int>(cb),
                      kByte, peer_ep, 1, ep);
            reqs[static_cast<std::size_t>(G + g)] =
                isend(sstage.data() + static_cast<std::size_t>(g) * cb, static_cast<int>(cb),
                      kByte, peer_ep, 1, ep);
          }
          wait_all(reqs.data(), reqs.size());
          for (int g = 0; g < G; ++g) {
            verify_chunk(rstage.data() + static_cast<std::size_t>(g) * cb, cb, peer, g, iter,
                         &local);
          }
        }
        break;
      }
    }
    checksum.fetch_add(local);
  });

  RunResult r;
  r.elapsed_ns = world.elapsed();
  r.checksum = checksum.load();
  r.aux = static_cast<std::uint64_t>(p.iters) * static_cast<std::uint64_t>(G);
  r.net = world.snapshot();
  r.messages = r.net.messages;
  r.bytes = r.net.bytes;
  return r;
}

}  // namespace wl
