#include "workloads/event_runtime.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "tmpi/tmpi.h"

namespace wl {

namespace {

using namespace tmpi;

void fill_event(std::byte* buf, std::size_t n, int rank, int tid, int seq) {
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::byte>(pattern_byte(static_cast<std::uint64_t>(rank),
                                                 static_cast<std::uint64_t>(tid),
                                                 static_cast<std::uint64_t>(seq), i));
  }
}

void verify_event(const std::byte* buf, std::size_t n, int rank, int tid, int seq,
                  std::uint64_t* checksum) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto expect = pattern_byte(static_cast<std::uint64_t>(rank),
                                     static_cast<std::uint64_t>(tid),
                                     static_cast<std::uint64_t>(seq), i);
    if (buf[i] != static_cast<std::byte>(expect)) {
      throw std::runtime_error("event payload mismatch");
    }
    checksum_mix(checksum, expect + i);
  }
}

/// Emit this task thread's event stream, round-robin over remote ranks.
/// `send` issues one event: send(target_rank, tid, seq).
template <typename SendFn>
void emit_events(int nranks, int my, int events, const SendFn& send) {
  for (int j = 0; j < events; ++j) {
    const int target = (my + 1 + j % (nranks - 1)) % nranks;
    send(target, j);
  }
}

}  // namespace

const char* to_string(EventMech m) {
  switch (m) {
    case EventMech::kSerial: return "serial";
    case EventMech::kComms: return "comms";
    case EventMech::kTags: return "tags";
    case EventMech::kEndpoints: return "endpoints";
    case EventMech::kEverywhere: return "everywhere";
  }
  return "?";
}

RunResult run_event_runtime(const EventParams& p) {
  TMPI_REQUIRE(p.nranks >= 2, Errc::kInvalidArg, "event runtime needs >= 2 ranks");
  TMPI_REQUIRE(p.events_per_thread % (p.nranks - 1) == 0, Errc::kInvalidArg,
               "events_per_thread must divide evenly over peers");
  const int T = p.task_threads;
  const int E = p.events_per_thread;
  const std::size_t bytes = p.msg_bytes;

  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> processed{0};

  WorldConfig wc;
  wc.cost = p.cost;
  wc.ranks_per_node = 1;

  if (p.mech == EventMech::kEverywhere) {
    // One rank per task thread; each drains its own incoming queue.
    wc.nranks = p.nranks * T;
    wc.ranks_per_node = T;
    wc.num_vcis = 1;
    World world(wc);
    world.run([&](Rank& rank) {
      Comm comm = rank.world_comm();
      const int n = world.nranks();
      const int my = rank.rank();
      std::vector<std::byte> sbuf(bytes);
      std::vector<std::byte> rbuf(bytes);
      std::uint64_t local = 0;
      // Interleave sends and receives to avoid unbounded buffering.
      int sent = 0;
      int got = 0;
      while (sent < E || got < E) {
        if (sent < E) {
          const int target = (my + 1 + sent % (n - 1)) % n;
          fill_event(sbuf.data(), bytes, my, 0, sent);
          send(sbuf.data(), static_cast<int>(bytes), kByte, target, sent, comm);
          ++sent;
        }
        if (got < E) {
          const Status st =
              recv(rbuf.data(), static_cast<int>(bytes), kByte, kAnySource, kAnyTag, comm);
          verify_event(rbuf.data(), bytes, st.source, 0, st.tag, &local);
          net::ThreadClock::get().advance(p.process_ns);
          ++got;
        }
      }
      checksum.fetch_add(local);
      processed.fetch_add(static_cast<std::uint64_t>(E));
    });
    RunResult r;
    r.elapsed_ns = world.elapsed();
    r.messages = static_cast<std::uint64_t>(world.nranks()) * static_cast<std::uint64_t>(E);
    r.bytes = r.messages * bytes;
    r.checksum = checksum.load();
    r.aux = processed.load();
    r.net = world.snapshot();
    return r;
  }

  wc.nranks = p.nranks;
  wc.num_vcis = (p.mech == EventMech::kSerial) ? 1 : p.num_vcis;
  World world(wc);
  const std::uint64_t incoming = static_cast<std::uint64_t>(T) * static_cast<std::uint64_t>(E);

  world.run([&](Rank& rank) {
    Comm wcomm = rank.world_comm();
    const int my = rank.rank();

    switch (p.mech) {
      case EventMech::kSerial:
      case EventMech::kTags: {
        Comm comm = wcomm;
        if (p.mech == EventMech::kTags) {
          // Wildcards are required, so only overtaking can be asserted:
          // sends spread, receives serialize (Section II-A).
          Info info;
          info.set("mpi_assert_allow_overtaking", "true");
          info.set("tmpi_num_vcis", T);
          comm = wcomm.dup_with_info(info);
        }
        rank.parallel(T + 1, [&](int tid) {
          if (tid < T) {
            std::vector<std::byte> sbuf(bytes);
            emit_events(p.nranks, my, E, [&](int target, int seq) {
              fill_event(sbuf.data(), bytes, my, tid, seq);
              const auto tag = static_cast<Tag>((tid << 12) | seq);
              send(sbuf.data(), static_cast<int>(bytes), kByte, target, tag, comm);
            });
          } else {
            std::vector<std::byte> rbuf(bytes);
            std::uint64_t local = 0;
            for (std::uint64_t k = 0; k < incoming; ++k) {
              const Status st =
                  recv(rbuf.data(), static_cast<int>(bytes), kByte, kAnySource, kAnyTag, comm);
              verify_event(rbuf.data(), bytes, st.source, st.tag >> 12, st.tag & 0xFFF, &local);
              net::ThreadClock::get().advance(p.process_ns);
            }
            checksum.fetch_add(local);
            processed.fetch_add(incoming);
          }
        });
        break;
      }

      case EventMech::kComms: {
        // One communicator per task-thread class (Fig. 5 left).
        std::vector<Comm> comms;
        comms.reserve(static_cast<std::size_t>(T));
        for (int i = 0; i < T; ++i) comms.push_back(wcomm.dup());
        rank.parallel(T + 1, [&](int tid) {
          if (tid < T) {
            std::vector<std::byte> sbuf(bytes);
            const Comm& c = comms[static_cast<std::size_t>(tid)];
            emit_events(p.nranks, my, E, [&](int target, int seq) {
              fill_event(sbuf.data(), bytes, my, tid, seq);
              send(sbuf.data(), static_cast<int>(bytes), kByte, target, seq, c);
            });
          } else {
            // The polling thread iterates the task-thread communicators
            // (Lesson 5): one outstanding wildcard receive per comm, visited
            // round-robin; each visit charges a sweep step and blocks on
            // that comm's next event (head-of-line).
            std::vector<std::vector<std::byte>> rbufs(
                static_cast<std::size_t>(T), std::vector<std::byte>(bytes));
            std::vector<Request> reqs(static_cast<std::size_t>(T));
            for (int i = 0; i < T; ++i) {
              reqs[static_cast<std::size_t>(i)] =
                  irecv(rbufs[static_cast<std::size_t>(i)].data(), static_cast<int>(bytes),
                        kByte, kAnySource, kAnyTag, comms[static_cast<std::size_t>(i)]);
            }
            std::uint64_t local = 0;
            auto& clk = net::ThreadClock::get();
            for (std::uint64_t k = 0; k < incoming; ++k) {
              const int idx = static_cast<int>(k) % T;
              // One sweep over all T communicators to find the ready one —
              // the iteration overhead Lesson 5 describes grows with T.
              clk.advance(p.poll_step_ns * static_cast<net::Time>(T));
              const Status st = reqs[static_cast<std::size_t>(idx)].wait();
              verify_event(rbufs[static_cast<std::size_t>(idx)].data(), bytes, st.source, idx,
                           st.tag, &local);
              clk.advance(p.process_ns);
              if (k + static_cast<std::uint64_t>(T) < incoming) {
                reqs[static_cast<std::size_t>(idx)] =
                    irecv(rbufs[static_cast<std::size_t>(idx)].data(), static_cast<int>(bytes),
                          kByte, kAnySource, kAnyTag, comms[static_cast<std::size_t>(idx)]);
              }
            }
            checksum.fetch_add(local);
            processed.fetch_add(incoming);
          }
        });
        break;
      }

      case EventMech::kEndpoints: {
        // T task endpoints + 1 polling endpoint per process (Fig. 5 right).
        auto eps = wcomm.create_endpoints(T + 1);
        rank.parallel(T + 1, [&](int tid) {
          const Comm& my_ep = eps[static_cast<std::size_t>(tid)];
          if (tid < T) {
            std::vector<std::byte> sbuf(bytes);
            emit_events(p.nranks, my, E, [&](int target, int seq) {
              fill_event(sbuf.data(), bytes, my, tid, seq);
              const int polling_ep = target * (T + 1) + T;
              const auto tag = static_cast<Tag>((tid << 12) | seq);
              send(sbuf.data(), static_cast<int>(bytes), kByte, polling_ep, tag, my_ep);
            });
          } else {
            std::vector<std::byte> rbuf(bytes);
            std::uint64_t local = 0;
            for (std::uint64_t k = 0; k < incoming; ++k) {
              const Status st =
                  recv(rbuf.data(), static_cast<int>(bytes), kByte, kAnySource, kAnyTag, my_ep);
              const int src_rank = st.source / (T + 1);
              verify_event(rbuf.data(), bytes, src_rank, st.tag >> 12, st.tag & 0xFFF, &local);
              net::ThreadClock::get().advance(p.process_ns);
            }
            checksum.fetch_add(local);
            processed.fetch_add(incoming);
          }
        });
        break;
      }

      case EventMech::kEverywhere:
        break;  // handled above
    }
  });

  RunResult r;
  r.elapsed_ns = world.elapsed();
  r.messages = static_cast<std::uint64_t>(p.nranks) * incoming;
  r.bytes = r.messages * bytes;
  r.checksum = checksum.load();
  r.aux = processed.load();
  r.net = world.snapshot();
  return r;
}

}  // namespace wl
