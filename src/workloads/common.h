#ifndef WL_COMMON_H
#define WL_COMMON_H

#include <cstdint>

#include "net/stats.h"
#include "net/virtual_clock.h"

/// \file common.h
/// Shared result types for the workload kernels.

namespace wl {

namespace net = tmpi::net;

struct RunResult {
  net::Time elapsed_ns = 0;          ///< virtual makespan (max over rank clocks)
  std::uint64_t messages = 0;        ///< messages the workload sent
  std::uint64_t bytes = 0;           ///< payload bytes
  std::uint64_t checksum = 0;        ///< data-correctness fingerprint
  std::uint64_t aux = 0;             ///< workload-specific count (events, tiles, ...)
  std::uint64_t result_buffer_bytes = 0;  ///< per-process result memory (Lesson 19)
  tmpi::net::NetStatsSnapshot net{};

  [[nodiscard]] double seconds() const { return static_cast<double>(elapsed_ns) * 1e-9; }
  [[nodiscard]] double msg_rate() const {
    return elapsed_ns == 0 ? 0.0 : static_cast<double>(messages) / seconds();
  }
};

/// Deterministic per-element payload fingerprint (also the expected-value
/// generator on the receive side).
inline std::uint8_t pattern_byte(std::uint64_t rank, std::uint64_t tid, std::uint64_t salt,
                                 std::uint64_t i) {
  std::uint64_t x = rank * 0x9E3779B97F4A7C15ull + tid * 0xC2B2AE3D27D4EB4Full +
                    salt * 0x165667B19E3779F9ull + i;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return static_cast<std::uint8_t>(x);
}

/// Mix a value into a checksum accumulator (order-insensitive).
inline void checksum_mix(std::uint64_t* acc, std::uint64_t v) {
  v *= 0xFF51AFD7ED558CCDull;
  v ^= v >> 33;
  *acc += v;
}

}  // namespace wl

#endif  // WL_COMMON_H
