#ifndef WL_SPARSE_MATMUL_H
#define WL_SPARSE_MATMUL_H

#include "net/cost_model.h"
#include "workloads/common.h"

/// \file sparse_matmul.h
/// NWChem's get-compute-update block-sparse matrix multiplication over RMA
/// (Fig. 6): threads MPI_Get the A and B tiles a task needs, multiply, and
/// MPI_Accumulate into the owner of the C tile. All accumulates to one
/// process must stay atomic with respect to each other.
///
/// Mechanisms (the Lesson 16 design space):
///  - kStrictWindow  — one window, default accumulate ordering: atomics from
///                     one origin to one target serialize on one channel.
///  - kRelaxedHash   — `accumulate_ordering=none` + multiple window VCIs:
///                     operations spread by a target-location hash, but hash
///                     collisions still serialize independent updates.
///  - kEndpointsWin  — windows over an endpoints communicator: every thread
///                     issues through its own endpoint, parallel *and*
///                     atomic (the paper's case for endpoints).
///
/// Matrices hold small integers so double-precision sums are exact; the
/// final C is compared against a serial reference.

namespace wl {

enum class RmaMech {
  kStrictWindow,
  kRelaxedHash,
  kEndpointsWin,
};

const char* to_string(RmaMech m);

struct MatmulParams {
  RmaMech mech = RmaMech::kEndpointsWin;
  int nranks = 4;
  int threads = 4;
  int nb = 4;          ///< blocks per matrix dimension
  int bs = 8;          ///< block size (bs x bs doubles)
  int keep_mod = 2;    ///< keep a (i,j,k) task iff hash % keep_mod == 0
  double flops_per_ns = 8.0;  ///< virtual compute rate for the tile multiply
  tmpi::net::CostModel cost{};
};

/// Returns results with aux = tasks executed; throws if C mismatches the
/// serial reference.
RunResult run_sparse_matmul(const MatmulParams& p);

}  // namespace wl

#endif  // WL_SPARSE_MATMUL_H
