#ifndef WL_COLLECTIVE_WORKLOAD_H
#define WL_COLLECTIVE_WORKLOAD_H

#include "net/cost_model.h"
#include "workloads/common.h"

/// \file collective_workload.h
/// Multithreaded allreduce (the VASP pattern of Fig. 7 / Lessons 18-19).
/// Every (rank, thread) holds a full-length contribution vector; the global
/// result is the elementwise sum over all R*T contributions, needed by every
/// thread.
///
///  - kSingleThread    — threads pre-combine locally (parallel slices); one
///                       thread runs the internode allreduce. The baseline.
///  - kPerThreadComms  — the VASP approach: local pre-combine, then T threads
///                       allreduce disjoint slices in parallel on per-thread
///                       communicators. The user drives the intranode portion
///                       (Lesson 18); one result buffer per process.
///  - kEndpoints       — every thread joins ONE allreduce through its own
///                       endpoint; the library performs intranode+internode
///                       (one-step, Lesson 18) but each endpoint holds a full
///                       result copy (duplication, Lesson 19).
///  - kPartitionedStyle— the partitioned-collective concept: per-slice
///                       parallel transport with a single result buffer, but
///                       every thread's contribution passes through a shared
///                       request (Lesson 14 contention charge).
///
/// Contributions are small integers, so double sums are exact and verified.

namespace wl {

enum class CollMech {
  kSingleThread,
  kPerThreadComms,
  kEndpoints,
  kPartitionedStyle,
};

const char* to_string(CollMech m);

struct CollParams {
  CollMech mech = CollMech::kPerThreadComms;
  int nranks = 4;
  int threads = 4;
  int elements = 1 << 14;  ///< doubles per contribution (divisible by threads)
  int iters = 2;
  int num_vcis = 16;
  tmpi::net::CostModel cost{};
};

/// Returns results; result_buffer_bytes reports the per-process memory that
/// holds copies of the collective's result (Lesson 19).
RunResult run_collective(const CollParams& p);

}  // namespace wl

#endif  // WL_COLLECTIVE_WORKLOAD_H
