#include "core/session.h"

/// Partitioned backend: persistent partitioned channels only. The semantics
/// it cannot express throw Unsupported, mechanizing Lessons 14-15: no
/// dynamic patterns, no wildcards, no standalone sends — and every
/// contribution serializes on the shared request (charged by the runtime).
/// Partitions spread over `streams` dedicated VCIs, the unstudied mapping
/// the paper calls for evaluating (our E9 bench does).

namespace rp::detail {

namespace {

class PartitionedBackend final : public SessionBackend {
 public:
  PartitionedBackend(const tmpi::Rank& rank, const SessionConfig& cfg)
      : streams_(cfg.streams),
        bits_(stream_bits(cfg.streams)),
        total_bits_(rank.world().config().tag_bits),
        comm_(rank.world_comm().dup()) {
    if (cfg.need_wildcards) {
      throw Unsupported("partitioned receives cannot use wildcards (Lesson 15)");
    }
  }

  tmpi::Request isend(int, const void*, std::size_t, PeerAddr, int) override {
    throw Unsupported(
        "partitioned communication is persistent by definition; "
        "dynamic sends are not expressible (Lesson 15)");
  }

  tmpi::Request irecv(int, void*, std::size_t, PeerAddr, int) override {
    throw Unsupported("use persistent_recv: partitioned operations are persistent (Lesson 15)");
  }

  tmpi::Request irecv_any(int, void*, std::size_t) override {
    throw Unsupported("partitioned receives cannot use wildcards (Lesson 15)");
  }

  PeerAddr decode_source(int, const tmpi::Status&) const override {
    throw Unsupported("no wildcard receives on the partitioned backend (Lesson 15)");
  }

  // All traffic of this backend is partitioned: each pready() flows through
  // the unified transport (OpKind::kPartition), the same choke point as the
  // channel_isend/channel_irecv traffic of the other backends.
  tmpi::Request persistent_send(int stream, const void* buf, int partitions,
                                std::size_t part_bytes, PeerAddr to, int tag) override {
    tmpi::Info info;
    info.set("tmpi_part_vcis", streams_);
    const tmpi::Tag t = encode_tag(stream, to.stream, tag, bits_, total_bits_);
    return tmpi::psend_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte, to.rank,
                            t, comm_, info);
  }

  tmpi::Request persistent_recv(int stream, void* buf, int partitions, std::size_t part_bytes,
                                PeerAddr from, int tag) override {
    tmpi::Info info;
    info.set("tmpi_part_vcis", streams_);
    const tmpi::Tag t = encode_tag(from.stream, stream, tag, bits_, total_bits_);
    return tmpi::precv_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte,
                            from.rank, t, comm_, info);
  }

  tmpi::Comm coll_comm(int /*stream*/) override {
    throw Unsupported("partitioned collective APIs are TBD in MPI 4.0 (Table I)");
  }

  [[nodiscard]] Capabilities caps() const override {
    return capabilities(Backend::kPartitioned);
  }

  [[nodiscard]] UsabilityMetrics setup_cost() const override {
    UsabilityMetrics m;
    m.setup_objects = 1;  // the comm; persistent requests accounted per channel
    m.hint_count = 1;     // tmpi_part_vcis
    m.impl_specific_hints = 1;
    m.needs_mirroring = false;
    m.intuitive = false;
    return m;
  }

 private:
  int streams_;
  int bits_;
  int total_bits_;
  tmpi::Comm comm_;
};

}  // namespace

std::unique_ptr<SessionBackend> make_partitioned_backend(const tmpi::Rank& rank,
                                                         const SessionConfig& cfg) {
  return std::make_unique<PartitionedBackend>(rank, cfg);
}

}  // namespace rp::detail
