#include "core/session.h"

/// Communicators backend: a duplicated communicator per (source stream,
/// destination stream) pair, plus one per stream for collectives. Fully
/// parallel and standard, but quadratic in objects (Lesson 3), unable to
/// span a wildcard receive across streams (Lesson 5), and the user performs
/// the intranode portion of collectives (Lesson 18).

namespace rp::detail {

namespace {

class CommsBackend final : public SessionBackend {
 public:
  CommsBackend(const tmpi::Rank& rank, const SessionConfig& cfg) : streams_(cfg.streams) {
    const tmpi::Comm base = rank.world_comm();
    pair_comms_.reserve(static_cast<std::size_t>(streams_) * static_cast<std::size_t>(streams_));
    for (int i = 0; i < streams_ * streams_; ++i) pair_comms_.push_back(base.dup());
    stream_comms_.reserve(static_cast<std::size_t>(streams_));
    for (int i = 0; i < streams_; ++i) stream_comms_.push_back(base.dup());
  }

  tmpi::Request isend(int stream, const void* buf, std::size_t bytes, PeerAddr to,
                      int tag) override {
    return tmpi::detail::channel_isend(buf, static_cast<int>(bytes), tmpi::kByte, to.rank, tag,
                       pair_comm(stream, to.stream));
  }

  tmpi::Request irecv(int stream, void* buf, std::size_t cap, PeerAddr from, int tag) override {
    return tmpi::detail::channel_irecv(buf, static_cast<int>(cap), tmpi::kByte, from.rank, tag,
                       pair_comm(from.stream, stream));
  }

  tmpi::Request irecv_any(int /*stream*/, void* /*buf*/, std::size_t /*cap*/) override {
    throw Unsupported(
        "a single wildcard receive cannot span multiple communicators; "
        "the polling thread must iterate per-stream comms instead (Lesson 5)");
  }

  PeerAddr decode_source(int /*stream*/, const tmpi::Status& /*st*/) const override {
    throw Unsupported("no wildcard receives on the comms backend (Lesson 5)");
  }

  tmpi::Request persistent_send(int stream, const void* buf, int partitions,
                                std::size_t part_bytes, PeerAddr to, int tag) override {
    return tmpi::psend_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte, to.rank,
                            tag, pair_comm(stream, to.stream));
  }

  tmpi::Request persistent_recv(int stream, void* buf, int partitions, std::size_t part_bytes,
                                PeerAddr from, int tag) override {
    return tmpi::precv_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte,
                            from.rank, tag, pair_comm(from.stream, stream));
  }

  tmpi::Comm coll_comm(int stream) override {
    // Per-stream collective over a dedicated duplicate: each process's
    // threads get partial results and must combine intranode themselves
    // (Fig. 7 left, Lesson 18).
    return stream_comms_[static_cast<std::size_t>(stream)];
  }

  [[nodiscard]] Capabilities caps() const override { return capabilities(Backend::kComms); }

  [[nodiscard]] UsabilityMetrics setup_cost() const override {
    UsabilityMetrics m;
    m.setup_objects = streams_ * streams_ + streams_;
    m.hint_count = 0;
    m.impl_specific_hints = 0;
    m.needs_mirroring = true;  // pattern-specific plans are needed to do better
    m.intuitive = false;
    return m;
  }

 private:
  [[nodiscard]] tmpi::Comm& pair_comm(int src_stream, int dst_stream) {
    return pair_comms_[static_cast<std::size_t>(src_stream) *
                           static_cast<std::size_t>(streams_) +
                       static_cast<std::size_t>(dst_stream)];
  }

  int streams_;
  std::vector<tmpi::Comm> pair_comms_;
  std::vector<tmpi::Comm> stream_comms_;
};

}  // namespace

std::unique_ptr<SessionBackend> make_comms_backend(const tmpi::Rank& rank,
                                                   const SessionConfig& cfg) {
  return std::make_unique<CommsBackend>(rank, cfg);
}

}  // namespace rp::detail
