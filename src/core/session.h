#ifndef RP_SESSION_H
#define RP_SESSION_H

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/capabilities.h"
#include "tmpi/tmpi.h"

/// \file session.h
/// The Rankpoints session abstraction — the paper's §IV proposal, built.
///
/// Section IV argues for "an abstraction on top of MPI that allows users to
/// seamlessly expose communication independence in a user-friendly manner",
/// implemented over MPI 4.0 mechanisms (with implementation-specific hints
/// where needed) or over user-visible endpoints. rp::Session is exactly that
/// abstraction: the application addresses logically parallel *streams*
/// through (rank, stream) pairs, and a pluggable backend maps streams onto
/// one of the four designs:
///
///   kEndpoints   — one endpoint per stream (the natural fit),
///   kTags        — one hinted communicator, stream ids encoded in tag bits,
///   kComms       — streams x streams duplicated communicators,
///   kPartitioned — persistent partitioned channels only.
///
/// Backends differ in capability (wildcards, dynamic patterns, collectives);
/// unsupported operations throw rp::Unsupported — making the paper's
/// qualitative comparison mechanically checkable.

namespace rp {

/// Raised when a backend cannot express an operation (the semantic gaps of
/// Lessons 5, 15, 18).
class Unsupported : public std::runtime_error {
 public:
  explicit Unsupported(const std::string& what) : std::runtime_error(what) {}
};

/// Address of a logically parallel stream: process rank + stream index.
struct PeerAddr {
  int rank = 0;
  int stream = 0;

  friend bool operator==(const PeerAddr&, const PeerAddr&) = default;
};

struct SessionConfig {
  Backend backend = Backend::kEndpoints;
  int streams = 1;
  /// Preserve wildcard receives. The tags backend then degrades to
  /// serialized receives (overtaking-only hints); the comms and partitioned
  /// backends cannot honour it for a single buffer at all.
  bool need_wildcards = false;
};

namespace detail {

/// Internal backend interface. One instance per rank, shared by channels.
class SessionBackend {
 public:
  virtual ~SessionBackend() = default;

  virtual tmpi::Request isend(int stream, const void* buf, std::size_t bytes, PeerAddr to,
                              int tag) = 0;
  virtual tmpi::Request irecv(int stream, void* buf, std::size_t cap, PeerAddr from,
                              int tag) = 0;
  /// Wildcard receive on a stream (any peer, any tag).
  virtual tmpi::Request irecv_any(int stream, void* buf, std::size_t cap) = 0;
  /// Decode the sender of a wildcard receive.
  virtual PeerAddr decode_source(int stream, const tmpi::Status& st) const = 0;

  /// Persistent partitioned channel endpoints (usable on every backend; the
  /// partitioned backend offers nothing else).
  virtual tmpi::Request persistent_send(int stream, const void* buf, int partitions,
                                        std::size_t part_bytes, PeerAddr to, int tag) = 0;
  virtual tmpi::Request persistent_recv(int stream, void* buf, int partitions,
                                        std::size_t part_bytes, PeerAddr from, int tag) = 0;

  /// Communicator for per-stream collectives. Endpoints: the stream's
  /// endpoint handle of the shared comm (one-step collectives, Lesson 18);
  /// comms/tags: a dedicated per-stream duplicate (the user then performs the
  /// intranode combine); partitioned: throws (APIs TBD).
  virtual tmpi::Comm coll_comm(int stream) = 0;

  [[nodiscard]] virtual Capabilities caps() const = 0;
  /// Usability accounting: objects and hints this backend's setup consumed.
  [[nodiscard]] virtual UsabilityMetrics setup_cost() const = 0;
};

std::unique_ptr<SessionBackend> make_comms_backend(const tmpi::Rank& rank,
                                                   const SessionConfig& cfg);
std::unique_ptr<SessionBackend> make_tags_backend(const tmpi::Rank& rank,
                                                  const SessionConfig& cfg);
std::unique_ptr<SessionBackend> make_endpoints_backend(const tmpi::Rank& rank,
                                                       const SessionConfig& cfg);
std::unique_ptr<SessionBackend> make_partitioned_backend(const tmpi::Rank& rank,
                                                         const SessionConfig& cfg);

/// Stream id field width used by tag-encoding backends.
int stream_bits(int streams);

/// Encode (src_stream, dst_stream, user tag) into a wire tag, MSB placement
/// (Listing 2's layout). Throws tmpi::Error(kTagOverflow) when the user tag
/// no longer fits (Lesson 9).
tmpi::Tag encode_tag(int src_stream, int dst_stream, int user_tag, int bits, int total_bits);

}  // namespace detail

class Channel;

/// A per-rank session. Creation is collective over the world (every rank
/// calls with an identical config).
class Session {
 public:
  static Session create(const tmpi::Rank& rank, const SessionConfig& cfg);

  [[nodiscard]] Backend backend() const { return cfg_.backend; }
  [[nodiscard]] int streams() const { return cfg_.streams; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Capabilities caps() const { return backend_->caps(); }
  [[nodiscard]] UsabilityMetrics setup_cost() const { return backend_->setup_cost(); }

  /// Channel for a stream; distinct streams are safe to drive from distinct
  /// threads concurrently (that is the point).
  [[nodiscard]] Channel channel(int stream);

  [[nodiscard]] detail::SessionBackend& impl() const { return *backend_; }

 private:
  Session(std::shared_ptr<detail::SessionBackend> b, SessionConfig cfg, int rank, int size)
      : backend_(std::move(b)), cfg_(cfg), rank_(rank), size_(size) {}

  std::shared_ptr<detail::SessionBackend> backend_;
  SessionConfig cfg_{};
  int rank_ = 0;
  int size_ = 0;
};

/// Handle for one logically parallel stream.
class Channel {
 public:
  Channel(std::shared_ptr<detail::SessionBackend> b, int stream)
      : b_(std::move(b)), stream_(stream) {}

  [[nodiscard]] int stream() const { return stream_; }

  tmpi::Request isend(const void* buf, std::size_t bytes, PeerAddr to, int tag = 0) {
    return b_->isend(stream_, buf, bytes, to, tag);
  }
  tmpi::Request irecv(void* buf, std::size_t cap, PeerAddr from, int tag = 0) {
    return b_->irecv(stream_, buf, cap, from, tag);
  }
  tmpi::Request irecv_any(void* buf, std::size_t cap) {
    return b_->irecv_any(stream_, buf, cap);
  }
  [[nodiscard]] PeerAddr decode_source(const tmpi::Status& st) const {
    return b_->decode_source(stream_, st);
  }

  tmpi::Request persistent_send(const void* buf, int partitions, std::size_t part_bytes,
                                PeerAddr to, int tag = 0) {
    return b_->persistent_send(stream_, buf, partitions, part_bytes, to, tag);
  }
  tmpi::Request persistent_recv(void* buf, int partitions, std::size_t part_bytes, PeerAddr from,
                                int tag = 0) {
    return b_->persistent_recv(stream_, buf, partitions, part_bytes, from, tag);
  }

  [[nodiscard]] tmpi::Comm coll_comm() { return b_->coll_comm(stream_); }

 private:
  std::shared_ptr<detail::SessionBackend> b_;
  int stream_;
};

}  // namespace rp

#endif  // RP_SESSION_H
