#ifndef RP_PLANNER_H
#define RP_PLANNER_H

#include <array>
#include <cstdint>
#include <map>
#include <vector>

/// \file planner.h
/// Communicator-map planning for stencil communication patterns.
///
/// This module mechanizes Lessons 1-3 of the paper:
///  - the *mirrored* (ideal) communicator assignment that exposes all
///    available cross-thread communication parallelism while satisfying
///    MPI's matching constraint (sender and receiver of an exchange must
///    name the same communicator) — the generalization of Listing 1's
///    a/b mirroring to arbitrary 2D/3D stencils with diagonals;
///  - the *naive* assignment most users write first (communicator per
///    sender thread id), which is correct but exposes only about half the
///    parallelism (Lesson 2);
///  - the resource-count formulas of Lesson 3 (communicators required vs the
///    minimum number of parallel channels the pattern actually needs).

namespace rp {

struct Vec3 {
  int x = 0;
  int y = 0;
  int z = 0;

  friend bool operator==(const Vec3&, const Vec3&) = default;
  friend auto operator<=>(const Vec3&, const Vec3&) = default;
};

/// All 26 (3D) / 8 (2D, z frozen) unit directions. `diagonals=false` limits
/// to the 6 (4) axis directions.
std::vector<Vec3> stencil_dirs(bool three_d, bool diagonals);

// --- Lesson 3 closed-form counts --------------------------------------------

/// The paper's count of communicators needed to expose all parallelism of a
/// 3D 27-point stencil with an [x,y,z] thread grid:
///   2xy + 2yz + 2xz + 8(xy+yz+xz-1) + 4(xz+yz-z) + 4(xy+yz-y) + 4(xy+xz-x).
/// ([4,4,4] yields 808.)
long paper_comms_27pt(int x, int y, int z);

/// Minimum parallel channels the 27-point pattern needs: the number of
/// threads that communicate inter-node, xyz - (x-2)(y-2)(z-2).
/// ([4,4,4] yields 56 — endpoints need exactly this many.)
long channels_27pt(int x, int y, int z);

// --- Constructive plans -----------------------------------------------------

enum class PlanStrategy {
  kMirrored,  ///< ideal: boundary-parity mirrored assignment (Lesson 1)
  kNaive,     ///< communicator per sender thread id (Lesson 2)
};

/// A communicator assignment for a stencil halo exchange over a
/// `proc_grid` of processes, each running a `thread_grid` of threads, with
/// one patch per thread. 2D patterns use z == 1 grids.
///
/// The central guarantee (tested as a property): for every inter-process
/// exchange, `comm_for_send` on the sender equals `comm_for_recv` on the
/// receiver — MPI's matching constraint holds by construction.
class StencilPlan {
 public:
  StencilPlan(Vec3 proc_grid, Vec3 thread_grid, bool diagonals, PlanStrategy strategy);

  [[nodiscard]] Vec3 proc_grid() const { return pg_; }
  [[nodiscard]] Vec3 thread_grid() const { return tg_; }
  [[nodiscard]] PlanStrategy strategy() const { return strategy_; }
  [[nodiscard]] bool diagonals() const { return diagonals_; }

  /// Number of distinct communicators the plan uses.
  [[nodiscard]] int num_comms() const { return num_comms_; }

  /// Communicator for the send from thread `thr` of process `proc` toward
  /// direction `dir`. Returns -1 when the exchange stays inside the process
  /// (shared memory) or leaves the domain.
  [[nodiscard]] int comm_for_send(Vec3 proc, Vec3 thr, Vec3 dir) const;

  /// Communicator for the receive posted by thread `thr` of process `proc`
  /// for the message arriving from direction `dir` (pointing toward the
  /// sender). Returns -1 when no such exchange exists.
  [[nodiscard]] int comm_for_recv(Vec3 proc, Vec3 thr, Vec3 dir) const;

  /// Partner of an exchange: the (process, thread) that thread `thr` of
  /// `proc` exchanges with toward `dir`; false if none (domain edge or
  /// intra-process).
  [[nodiscard]] bool partner(Vec3 proc, Vec3 thr, Vec3 dir, Vec3* pproc, Vec3* pthr) const;

  /// True if the exchange toward `dir` crosses a process boundary.
  [[nodiscard]] bool is_inter_process(Vec3 thr, Vec3 dir) const;

  struct Metrics {
    long inter_ops = 0;        ///< inter-process sends across one process, all dirs
    long conflict_pairs = 0;   ///< pairs of distinct-thread concurrent ops sharing a comm
    long total_pairs = 0;      ///< all distinct-thread pairs of concurrent ops
    double parallel_fraction() const {
      return total_pairs == 0 ? 1.0
                              : 1.0 - static_cast<double>(conflict_pairs) /
                                          static_cast<double>(total_pairs);
    }
  };

  /// Parallelism analysis over every process: counts pairs of operations
  /// issued by *different* threads of one process (sends and receives alike)
  /// that are forced onto the same communicator and therefore serialize.
  /// The mirrored plan yields zero conflicts; the naive plan roughly half
  /// (Lesson 2's "only half of the available parallelism").
  [[nodiscard]] Metrics analyze() const;

 private:
  /// Symmetric key of an exchange: both endpoints derive the same key.
  using Key = std::array<int, 10>;
  [[nodiscard]] bool exchange_key(Vec3 proc, Vec3 thr, Vec3 dir, Key* key) const;
  [[nodiscard]] int linear_tid(Vec3 thr) const;

  Vec3 pg_;
  Vec3 tg_;
  bool diagonals_;
  PlanStrategy strategy_;
  std::map<Key, int> comm_of_key_;  // mirrored strategy
  int num_comms_ = 0;
};

// --- Placement --------------------------------------------------------------

/// Longest-processing-time assignment of weighted streams onto `nbins`
/// equal channels: streams are placed heaviest-first onto the currently
/// lightest bin, with deterministic tie-breaks (weight desc, index asc for
/// streams; lowest index for bins). Returns one bin index per stream, in
/// the input order. This is the oracle placement the adaptive-mapping bench
/// measures against, and the same greedy the runtime rebalancer applies to
/// its per-window weights (DESIGN.md §15). `nbins <= 0` yields all zeros.
std::vector<int> lpt_assignment(const std::vector<std::uint64_t>& weights, int nbins);

}  // namespace rp

#endif  // RP_PLANNER_H
