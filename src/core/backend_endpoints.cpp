#include "core/session.h"

/// Endpoints backend: one endpoint per stream; (rank, stream) maps directly
/// to an endpoint rank. Every Session operation is expressible (Lessons
/// 10-12, 16, 18); the only costs are non-standardization and per-endpoint
/// collective buffers (Lessons 17, 19).

namespace rp::detail {

namespace {

class EndpointsBackend final : public SessionBackend {
 public:
  EndpointsBackend(const tmpi::Rank& rank, const SessionConfig& cfg)
      : streams_(cfg.streams), handles_(rank.world_comm().create_endpoints(cfg.streams)) {}

  tmpi::Request isend(int stream, const void* buf, std::size_t bytes, PeerAddr to,
                      int tag) override {
    return tmpi::detail::channel_isend(buf, static_cast<int>(bytes), tmpi::kByte, ep_rank(to), tag,
                       handles_[static_cast<std::size_t>(stream)]);
  }

  tmpi::Request irecv(int stream, void* buf, std::size_t cap, PeerAddr from, int tag) override {
    return tmpi::detail::channel_irecv(buf, static_cast<int>(cap), tmpi::kByte, ep_rank(from), tag,
                       handles_[static_cast<std::size_t>(stream)]);
  }

  tmpi::Request irecv_any(int stream, void* buf, std::size_t cap) override {
    // Wildcards are confined to this endpoint's stream — matching stays
    // correct while the polling thread keeps its own channel (Fig. 5).
    return tmpi::detail::channel_irecv(buf, static_cast<int>(cap), tmpi::kByte, tmpi::kAnySource, tmpi::kAnyTag,
                       handles_[static_cast<std::size_t>(stream)]);
  }

  PeerAddr decode_source(int /*stream*/, const tmpi::Status& st) const override {
    return PeerAddr{st.source / streams_, st.source % streams_};
  }

  tmpi::Request persistent_send(int stream, const void* buf, int partitions,
                                std::size_t part_bytes, PeerAddr to, int tag) override {
    return tmpi::psend_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte,
                            ep_rank(to), tag, handles_[static_cast<std::size_t>(stream)]);
  }

  tmpi::Request persistent_recv(int stream, void* buf, int partitions, std::size_t part_bytes,
                                PeerAddr from, int tag) override {
    return tmpi::precv_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte,
                            ep_rank(from), tag, handles_[static_cast<std::size_t>(stream)]);
  }

  tmpi::Comm coll_comm(int stream) override {
    // All endpoints join one collective: the library performs both the
    // internode and intranode portions (Lesson 18).
    return handles_[static_cast<std::size_t>(stream)];
  }

  [[nodiscard]] Capabilities caps() const override {
    return capabilities(Backend::kEndpoints);
  }

  [[nodiscard]] UsabilityMetrics setup_cost() const override {
    UsabilityMetrics m;
    m.setup_objects = streams_;
    m.hint_count = 0;
    m.impl_specific_hints = 0;
    m.needs_mirroring = false;
    m.intuitive = true;
    return m;
  }

 private:
  [[nodiscard]] int ep_rank(PeerAddr a) const { return a.rank * streams_ + a.stream; }

  int streams_;
  std::vector<tmpi::Comm> handles_;
};

}  // namespace

std::unique_ptr<SessionBackend> make_endpoints_backend(const tmpi::Rank& rank,
                                                       const SessionConfig& cfg) {
  return std::make_unique<EndpointsBackend>(rank, cfg);
}

}  // namespace rp::detail
