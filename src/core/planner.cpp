#include "core/planner.h"

#include <algorithm>

namespace rp {

namespace {

int axis(const Vec3& v, int i) { return i == 0 ? v.x : (i == 1 ? v.y : v.z); }
void set_axis(Vec3& v, int i, int val) { (i == 0 ? v.x : (i == 1 ? v.y : v.z)) = val; }

}  // namespace

std::vector<Vec3> stencil_dirs(bool three_d, bool diagonals) {
  std::vector<Vec3> out;
  const int zlo = three_d ? -1 : 0;
  const int zhi = three_d ? 1 : 0;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = zlo; dz <= zhi; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
        if (!diagonals && nonzero > 1) continue;
        out.push_back(Vec3{dx, dy, dz});
      }
    }
  }
  return out;
}

long paper_comms_27pt(int x, int y, int z) {
  const long xy = static_cast<long>(x) * y;
  const long yz = static_cast<long>(y) * z;
  const long xz = static_cast<long>(x) * z;
  return 2 * xy + 2 * yz + 2 * xz + 8 * (xy + yz + xz - 1) + 4 * (xz + yz - z) +
         4 * (xy + yz - y) + 4 * (xy + xz - x);
}

long channels_27pt(int x, int y, int z) {
  const long total = static_cast<long>(x) * y * z;
  const long ix = std::max(0, x - 2);
  const long iy = std::max(0, y - 2);
  const long iz = std::max(0, z - 2);
  return total - ix * iy * iz;
}

StencilPlan::StencilPlan(Vec3 proc_grid, Vec3 thread_grid, bool diagonals,
                         PlanStrategy strategy)
    : pg_(proc_grid), tg_(thread_grid), diagonals_(diagonals), strategy_(strategy) {
  if (strategy_ == PlanStrategy::kNaive) {
    num_comms_ = tg_.x * tg_.y * tg_.z;
    return;
  }
  // Enumerate every inter-process exchange to build the key -> comm table.
  const bool three_d = tg_.z > 1 || pg_.z > 1;
  const auto dirs = stencil_dirs(three_d, diagonals_);
  for (int px = 0; px < pg_.x; ++px) {
    for (int py = 0; py < pg_.y; ++py) {
      for (int pz = 0; pz < pg_.z; ++pz) {
        for (int tx = 0; tx < tg_.x; ++tx) {
          for (int ty = 0; ty < tg_.y; ++ty) {
            for (int tz = 0; tz < tg_.z; ++tz) {
              for (const Vec3& d : dirs) {
                Key key{};
                if (exchange_key(Vec3{px, py, pz}, Vec3{tx, ty, tz}, d, &key)) {
                  auto [it, inserted] = comm_of_key_.emplace(key, num_comms_);
                  if (inserted) ++num_comms_;
                }
              }
            }
          }
        }
      }
    }
  }
}

int StencilPlan::linear_tid(Vec3 thr) const {
  return (thr.z * tg_.y + thr.y) * tg_.x + thr.x;
}

bool StencilPlan::is_inter_process(Vec3 thr, Vec3 dir) const {
  for (int a = 0; a < 3; ++a) {
    const int d = axis(dir, a);
    const int t = axis(thr, a);
    const int tdim = axis(tg_, a);
    if ((d == 1 && t == tdim - 1) || (d == -1 && t == 0)) return true;
  }
  return false;
}

bool StencilPlan::partner(Vec3 proc, Vec3 thr, Vec3 dir, Vec3* pproc, Vec3* pthr) const {
  Vec3 pp = proc;
  Vec3 pt = thr;
  for (int a = 0; a < 3; ++a) {
    const int d = axis(dir, a);
    if (d == 0) continue;
    const int t = axis(thr, a);
    const int tdim = axis(tg_, a);
    if (d == 1 && t == tdim - 1) {
      set_axis(pp, a, axis(proc, a) + 1);
      set_axis(pt, a, 0);
    } else if (d == -1 && t == 0) {
      set_axis(pp, a, axis(proc, a) - 1);
      set_axis(pt, a, tdim - 1);
    } else {
      set_axis(pt, a, t + d);
    }
  }
  for (int a = 0; a < 3; ++a) {
    if (axis(pp, a) < 0 || axis(pp, a) >= axis(pg_, a)) return false;  // domain edge
  }
  if (pproc != nullptr) *pproc = pp;
  if (pthr != nullptr) *pthr = pt;
  return true;
}

bool StencilPlan::exchange_key(Vec3 proc, Vec3 thr, Vec3 dir, Key* key) const {
  // Validity + partner-process offsets.
  Vec3 off{0, 0, 0};
  for (int a = 0; a < 3; ++a) {
    const int d = axis(dir, a);
    if (d == 0) continue;
    const int t = axis(thr, a);
    const int tdim = axis(tg_, a);
    if (d == 1 && t == tdim - 1) {
      set_axis(off, a, 1);
    } else if (d == -1 && t == 0) {
      set_axis(off, a, -1);
    }
  }
  if (off == Vec3{0, 0, 0}) return false;  // intra-process: shared memory path
  for (int a = 0; a < 3; ++a) {
    const int np = axis(proc, a) + axis(off, a);
    if (np < 0 || np >= axis(pg_, a)) return false;  // leaves the domain
  }

  // Canonical sign: flip so the first nonzero direction component is +1.
  // Both endpoints of an exchange (dir and -dir) agree on the flipped form.
  int flip = 1;
  for (int a = 0; a < 3; ++a) {
    const int d = axis(dir, a);
    if (d != 0) {
      flip = d;
      break;
    }
  }

  Key k{};
  for (int a = 0; a < 3; ++a) k[static_cast<std::size_t>(a)] = axis(dir, a) * flip + 1;
  for (int a = 0; a < 3; ++a) {
    const int d = axis(dir, a);
    const int o = axis(off, a);
    int enc;
    if (o != 0) {
      // Boundary axis: mirrored assignment keys on the boundary's parity
      // (Listing 1's a/b sets), canonical in the exchange direction.
      const int b = std::min(axis(proc, a), axis(proc, a) + o);
      enc = 1000 + (o * flip + 1) * 10 + (b & 1);
    } else if (d != 0) {
      // Lane shifted within the thread grid: key on the lower coordinate.
      enc = 500 + axis(thr, a) + (d < 0 ? d : 0);
    } else {
      enc = axis(thr, a);  // frozen lane coordinate
    }
    k[static_cast<std::size_t>(3 + a)] = enc;
  }
  *key = k;
  return true;
}

int StencilPlan::comm_for_send(Vec3 proc, Vec3 thr, Vec3 dir) const {
  if (!partner(proc, thr, dir, nullptr, nullptr) || !is_inter_process(thr, dir)) return -1;
  if (strategy_ == PlanStrategy::kNaive) return linear_tid(thr);
  Key key{};
  if (!exchange_key(proc, thr, dir, &key)) return -1;
  const auto it = comm_of_key_.find(key);
  return it == comm_of_key_.end() ? -1 : it->second;
}

int StencilPlan::comm_for_recv(Vec3 proc, Vec3 thr, Vec3 dir) const {
  Vec3 pproc;
  Vec3 pthr;
  if (!partner(proc, thr, dir, &pproc, &pthr) || !is_inter_process(thr, dir)) return -1;
  if (strategy_ == PlanStrategy::kNaive) return linear_tid(pthr);  // sender's tid
  Key key{};
  if (!exchange_key(proc, thr, dir, &key)) return -1;
  const auto it = comm_of_key_.find(key);
  return it == comm_of_key_.end() ? -1 : it->second;
}

StencilPlan::Metrics StencilPlan::analyze() const {
  Metrics m;
  const bool three_d = tg_.z > 1 || pg_.z > 1;
  const auto dirs = stencil_dirs(three_d, diagonals_);
  for (int px = 0; px < pg_.x; ++px) {
    for (int py = 0; py < pg_.y; ++py) {
      for (int pz = 0; pz < pg_.z; ++pz) {
        const Vec3 proc{px, py, pz};
        std::vector<std::pair<int, int>> ops;  // (tid, comm)
        for (int tx = 0; tx < tg_.x; ++tx) {
          for (int ty = 0; ty < tg_.y; ++ty) {
            for (int tz = 0; tz < tg_.z; ++tz) {
              const Vec3 thr{tx, ty, tz};
              const int tid = linear_tid(thr);
              for (const Vec3& d : dirs) {
                const int cs = comm_for_send(proc, thr, d);
                if (cs >= 0) {
                  ops.emplace_back(tid, cs);
                  ++m.inter_ops;
                }
                const int cr = comm_for_recv(proc, thr, d);
                if (cr >= 0) ops.emplace_back(tid, cr);
              }
            }
          }
        }
        for (std::size_t i = 0; i < ops.size(); ++i) {
          for (std::size_t j = i + 1; j < ops.size(); ++j) {
            if (ops[i].first == ops[j].first) continue;  // same thread: serial anyway
            ++m.total_pairs;
            if (ops[i].second == ops[j].second) ++m.conflict_pairs;
          }
        }
      }
    }
  }
  return m;
}

std::vector<int> lpt_assignment(const std::vector<std::uint64_t>& weights, int nbins) {
  std::vector<int> out(weights.size(), 0);
  if (nbins <= 1) return out;
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&weights](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<std::uint64_t> bin_load(static_cast<std::size_t>(nbins), 0);
  for (const std::size_t i : order) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < bin_load.size(); ++b) {
      if (bin_load[b] < bin_load[best]) best = b;
    }
    bin_load[best] += weights[i];
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace rp
