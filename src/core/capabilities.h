#ifndef RP_CAPABILITIES_H
#define RP_CAPABILITIES_H

#include <string>
#include <vector>

/// \file capabilities.h
/// Capability and usability introspection for the four designs the paper
/// compares. Table I and the Lessons' qualitative claims are generated from
/// this matrix (bench_table1_summary), so the paper's summary is reproduced
/// from code rather than transcribed.

namespace rp {

enum class Backend {
  kComms,        ///< existing mechanism: multiple communicators
  kTags,         ///< existing mechanism: tags + MPI 4.0 / impl-specific hints
  kEndpoints,    ///< user-visible endpoints (MPI Rankpoints)
  kPartitioned,  ///< MPI 4.0 partitioned communication
};

const char* to_string(Backend b);

struct Capabilities {
  Backend backend{};

  // Scope (Table I rows).
  bool pt2p = false;
  bool rma = false;               ///< windows / endpoints; partitioned RMA is TBD
  bool rma_defined = true;        ///< false: "TBD" in MPI 4.0
  bool collectives = false;
  bool collectives_defined = true;
  bool one_step_collectives = false;  ///< library does intranode part (Lesson 18)

  // Pattern applicability.
  bool wildcards = false;          ///< ANY_SOURCE/ANY_TAG usable (Lessons 5, 15)
  bool dynamic_patterns = false;   ///< destinations not known a priori
  bool atomics_parallel = false;   ///< parallel atomics within one window (Lesson 16)

  // Mapping & portability.
  bool portable_mapping = false;   ///< optimal VCI mapping w/o impl hints (Lessons 8, 12)
  bool standardized = false;       ///< in MPI 4.0 today
  bool overloads_existing = false; ///< repurposes comm/tag/window semantics (Lesson 4)

  // Independence.
  bool full_thread_independence = false;  ///< no shared request/sync (Lesson 14)
  bool duplicates_coll_buffers = false;   ///< per-endpoint result copies (Lesson 19)

  std::string summary;  ///< one-line Table-I-style description
};

[[nodiscard]] Capabilities capabilities(Backend b);
[[nodiscard]] std::vector<Backend> all_backends();

/// Usability of a backend for a concrete pattern, quantified the way
/// Section III discusses it (setup cost, hint burden, portability).
struct UsabilityMetrics {
  int setup_objects = 0;      ///< comms/endpoints/requests created per process
  int hint_count = 0;         ///< info keys required for optimal mapping
  int impl_specific_hints = 0;///< of those, implementation-specific ones
  bool needs_mirroring = false;  ///< Lesson 1's assignment complexity
  bool intuitive = false;        ///< Lessons 2, 6, 10
};

/// Usability for a 3D 27-point stencil with an [x,y,z] thread grid (the
/// hypre running example of Lessons 1-3 and 12).
[[nodiscard]] UsabilityMetrics stencil27_usability(Backend b, int x, int y, int z);

}  // namespace rp

#endif  // RP_CAPABILITIES_H
