#include "core/session.h"

#include <bit>

namespace rp {

namespace detail {

int stream_bits(int streams) {
  const auto u = static_cast<unsigned>(std::max(1, streams - 1));
  return std::max(1, static_cast<int>(std::bit_width(u)));
}

tmpi::Tag encode_tag(int src_stream, int dst_stream, int user_tag, int bits, int total_bits) {
  const int app_bits = total_bits - 2 * bits;
  TMPI_REQUIRE(app_bits >= 1, tmpi::Errc::kTagOverflow,
               "stream id bits leave no application tag space (Lesson 9)");
  TMPI_REQUIRE(user_tag >= 0 && user_tag < (1 << app_bits), tmpi::Errc::kTagOverflow,
               "application tag does not fit beside stream id bits (Lesson 9)");
  return static_cast<tmpi::Tag>((static_cast<unsigned>(src_stream) << (total_bits - bits)) |
                                (static_cast<unsigned>(dst_stream) << app_bits) |
                                static_cast<unsigned>(user_tag));
}

}  // namespace detail

Session Session::create(const tmpi::Rank& rank, const SessionConfig& cfg) {
  TMPI_REQUIRE(cfg.streams >= 1, tmpi::Errc::kInvalidArg, "streams must be >= 1");
  std::shared_ptr<detail::SessionBackend> b;
  switch (cfg.backend) {
    case Backend::kComms: b = detail::make_comms_backend(rank, cfg); break;
    case Backend::kTags: b = detail::make_tags_backend(rank, cfg); break;
    case Backend::kEndpoints: b = detail::make_endpoints_backend(rank, cfg); break;
    case Backend::kPartitioned: b = detail::make_partitioned_backend(rank, cfg); break;
  }
  return Session(std::move(b), cfg, rank.rank(), rank.size());
}

Channel Session::channel(int stream) {
  TMPI_REQUIRE(stream >= 0 && stream < cfg_.streams, tmpi::Errc::kInvalidArg,
               "stream out of range");
  return Channel(backend_, stream);
}

}  // namespace rp
