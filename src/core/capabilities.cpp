#include "core/capabilities.h"

#include "core/planner.h"

namespace rp {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kComms: return "communicators";
    case Backend::kTags: return "tags+hints";
    case Backend::kEndpoints: return "endpoints";
    case Backend::kPartitioned: return "partitioned";
  }
  return "?";
}

Capabilities capabilities(Backend b) {
  Capabilities c;
  c.backend = b;
  switch (b) {
    case Backend::kComms:
      c.pt2p = true;
      c.rma = true;  // windows are the existing RMA mechanism
      c.collectives = true;
      c.one_step_collectives = false;  // user performs the intranode step (Lesson 18)
      c.wildcards = true;              // but the polling thread must iterate comms (Lesson 5)
      c.dynamic_patterns = false;      // matching semantics pin sender/receiver comms (Lesson 5)
      c.atomics_parallel = false;      // single window constrains atomics (Lesson 16)
      c.portable_mapping = false;      // mapping mismatch needs impl hints (Lessons 4, 8)
      c.standardized = true;
      c.overloads_existing = true;     // Lesson 4
      c.full_thread_independence = true;
      c.summary = "Communicators or tags; user-driven intranode collectives";
      break;
    case Backend::kTags:
      c.pt2p = true;
      c.rma = false;  // tags do not apply to RMA
      c.collectives = false;  // collectives have no tags
      c.wildcards = false;    // parallelism requires no_any_tag/no_any_source
      c.dynamic_patterns = true;  // any peer addressable if tags encode tids
      c.atomics_parallel = false;
      c.portable_mapping = false;  // optimal mapping needs impl-specific hints (Lessons 7-8)
      c.standardized = true;       // the MPI 4.0 assertions are standard
      c.overloads_existing = true; // tag bits double as parallelism info (Lesson 9)
      c.full_thread_independence = true;
      c.summary = "Tags with MPI 4.0 assertions + impl-specific mapping hints";
      break;
    case Backend::kEndpoints:
      c.pt2p = true;
      c.rma = true;
      c.collectives = true;
      c.one_step_collectives = true;  // Lesson 18
      c.wildcards = true;             // per-endpoint wildcards (Fig. 5)
      c.dynamic_patterns = true;      // address new endpoints anytime (Lesson 11)
      c.atomics_parallel = true;      // multiple endpoints in one window (Lesson 16)
      c.portable_mapping = true;      // parallelism is baked into the API (Lesson 12)
      c.standardized = false;         // proposal suspended
      c.overloads_existing = false;   // Lesson 11
      c.full_thread_independence = true;
      c.duplicates_coll_buffers = true;  // Lesson 19
      c.summary = "Endpoints for all operation types";
      break;
    case Backend::kPartitioned:
      c.pt2p = true;
      c.rma = false;
      c.rma_defined = false;  // "Partitioned RMA APIs (TBD)"
      c.collectives = false;
      c.collectives_defined = false;  // "Partitioned collective APIs (TBD)"
      c.one_step_collectives = true;  // by design, once defined (Lesson 18)
      c.wildcards = false;            // Lesson 15
      c.dynamic_patterns = false;     // persistent by definition (Lesson 15)
      c.atomics_parallel = false;
      c.portable_mapping = true;  // standardized semantics (Lesson 13)
      c.standardized = true;
      c.overloads_existing = false;  // Lesson 13
      c.full_thread_independence = false;  // shared request (Lesson 14)
      c.summary = "Partitioned pt2p APIs; RMA/collective partitioned APIs TBD";
      break;
  }
  return c;
}

std::vector<Backend> all_backends() {
  return {Backend::kComms, Backend::kTags, Backend::kEndpoints, Backend::kPartitioned};
}

UsabilityMetrics stencil27_usability(Backend b, int x, int y, int z) {
  UsabilityMetrics m;
  const long channels = channels_27pt(x, y, z);
  switch (b) {
    case Backend::kComms:
      m.setup_objects = static_cast<int>(paper_comms_27pt(x, y, z));
      m.hint_count = 0;
      m.impl_specific_hints = 0;
      m.needs_mirroring = true;  // Lesson 1
      m.intuitive = false;       // Lesson 2
      break;
    case Backend::kTags:
      m.setup_objects = 1;  // one comm dup'd with hints (Listing 2)
      m.hint_count = 6;     // 2 assertions + 4 mapping hints
      m.impl_specific_hints = 4;  // num_vcis, tag bits, placement, hash type
      m.needs_mirroring = false;
      m.intuitive = true;  // Lesson 6
      break;
    case Backend::kEndpoints:
      m.setup_objects = static_cast<int>(channels);  // one endpoint per communicating thread
      m.hint_count = 0;
      m.impl_specific_hints = 0;
      m.needs_mirroring = false;
      m.intuitive = true;  // Lesson 10
      break;
    case Backend::kPartitioned:
      m.setup_objects = 26 * 2;  // one persistent send+recv per face/edge/corner direction
      m.hint_count = 0;
      m.impl_specific_hints = 0;
      m.needs_mirroring = false;
      m.intuitive = false;  // new semantics; jury out (Lesson 13)
      break;
  }
  return m;
}

}  // namespace rp
