#include "core/session.h"

/// Tags backend: one communicator duplicated with the MPI 4.0 assertions plus
/// MPICH-style mapping hints; stream ids live in the tag's MSBs (Listing 2).
/// Intuitive and low-churn for existing THREAD_MULTIPLE codes (Lesson 6), but
/// optimal mapping requires implementation-specific hints (Lessons 7-8) and
/// the tag space shrinks (Lesson 9). Collectives are out of scope for tags.

namespace rp::detail {

namespace {

class TagsBackend final : public SessionBackend {
 public:
  TagsBackend(const tmpi::Rank& rank, const SessionConfig& cfg)
      : streams_(cfg.streams),
        bits_(stream_bits(cfg.streams)),
        total_bits_(rank.world().config().tag_bits),
        wildcards_(cfg.need_wildcards) {
    tmpi::Info info;
    info.set("mpi_assert_allow_overtaking", "true");
    ++hints_;
    info.set("tmpi_num_vcis", streams_);
    ++hints_;
    ++impl_hints_;
    if (!wildcards_) {
      info.set("mpi_assert_no_any_tag", "true");
      info.set("mpi_assert_no_any_source", "true");
      hints_ += 2;
      info.set("tmpi_num_tag_bits_vci", bits_);
      info.set("tmpi_place_tag_bits_local_vci", "MSB");
      info.set("tmpi_tag_vci_hash_type", "one-to-one");
      hints_ += 3;
      impl_hints_ += 3;
    }
    comm_ = rank.world_comm().dup_with_info(info);
  }

  tmpi::Request isend(int stream, const void* buf, std::size_t bytes, PeerAddr to,
                      int tag) override {
    const tmpi::Tag t = encode_tag(stream, to.stream, tag, bits_, total_bits_);
    return tmpi::detail::channel_isend(buf, static_cast<int>(bytes), tmpi::kByte, to.rank, t, comm_);
  }

  tmpi::Request irecv(int stream, void* buf, std::size_t cap, PeerAddr from, int tag) override {
    const tmpi::Tag t = encode_tag(from.stream, stream, tag, bits_, total_bits_);
    return tmpi::detail::channel_irecv(buf, static_cast<int>(cap), tmpi::kByte, from.rank, t, comm_);
  }

  tmpi::Request irecv_any(int stream, void* buf, std::size_t cap) override {
    if (!wildcards_) {
      throw Unsupported(
          "tags backend was configured without wildcards "
          "(mpi_assert_no_any_tag/no_any_source are set); "
          "recreate the session with need_wildcards");
    }
    (void)stream;  // receives serialize on the comm's first VCI regardless
    return tmpi::detail::channel_irecv(buf, static_cast<int>(cap), tmpi::kByte, tmpi::kAnySource, tmpi::kAnyTag,
                       comm_);
  }

  PeerAddr decode_source(int /*stream*/, const tmpi::Status& st) const override {
    const int src_stream =
        static_cast<int>((static_cast<unsigned>(st.tag) >> (total_bits_ - bits_)) &
                         ((1u << bits_) - 1u));
    return PeerAddr{st.source, src_stream};
  }

  tmpi::Request persistent_send(int stream, const void* buf, int partitions,
                                std::size_t part_bytes, PeerAddr to, int tag) override {
    const tmpi::Tag t = encode_tag(stream, to.stream, tag, bits_, total_bits_);
    return tmpi::psend_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte, to.rank,
                            t, comm_);
  }

  tmpi::Request persistent_recv(int stream, void* buf, int partitions, std::size_t part_bytes,
                                PeerAddr from, int tag) override {
    const tmpi::Tag t = encode_tag(from.stream, stream, tag, bits_, total_bits_);
    return tmpi::precv_init(buf, partitions, static_cast<int>(part_bytes), tmpi::kByte,
                            from.rank, t, comm_);
  }

  tmpi::Comm coll_comm(int /*stream*/) override {
    throw Unsupported("collectives have no tags: use the comms or endpoints backend (Table I)");
  }

  [[nodiscard]] Capabilities caps() const override { return capabilities(Backend::kTags); }

  [[nodiscard]] UsabilityMetrics setup_cost() const override {
    UsabilityMetrics m;
    m.setup_objects = 1;
    m.hint_count = hints_;
    m.impl_specific_hints = impl_hints_;
    m.needs_mirroring = false;
    m.intuitive = true;
    return m;
  }

 private:
  int streams_;
  int bits_;
  int total_bits_;
  bool wildcards_;
  int hints_ = 0;
  int impl_hints_ = 0;
  tmpi::Comm comm_;
};

}  // namespace

std::unique_ptr<SessionBackend> make_tags_backend(const tmpi::Rank& rank,
                                                  const SessionConfig& cfg) {
  return std::make_unique<TagsBackend>(rank, cfg);
}

}  // namespace rp::detail
