#ifndef TMPI_MATCHING_H
#define TMPI_MATCHING_H

#include <atomic>
#include <cstddef>
#include <cstring>
#include <list>
#include <memory>
#include <vector>

#include "net/cost_model.h"
#include "net/stats.h"
#include "net/virtual_clock.h"
#include "tmpi/error.h"
#include "tmpi/request.h"
#include "tmpi/types.h"

/// \file matching.h
/// Per-VCI message matching engine.
///
/// Each VCI owns one MatchingEngine — MPICH's "distinct matching engine per
/// communication channel" design the paper builds on. Matching follows MPI
/// semantics *within* an engine: messages are matched against posted receives
/// in arrival/post order (non-overtaking), with ANY_SOURCE / ANY_TAG
/// wildcards. Messages routed to different VCIs are unordered relative to
/// each other — that unordering is precisely what "logically parallel
/// communication" exposes.
///
/// The engine is externally synchronized: its owning Vci guards it with a
/// ContentionLock so that software serialization (n threads funneling into
/// one VCI) is charged to virtual time where it actually occurs.

namespace tmpi::detail {

/// A message as it arrives at a target VCI.
struct Envelope {
  int ctx_id = 0;  ///< communicator matching context
  int src = 0;     ///< comm rank of the sender
  Tag tag = 0;

  std::size_t bytes = 0;
  std::vector<std::byte> payload;  ///< owned data (eager protocol)

  // Rendezvous protocol (bytes > eager threshold): the payload stays in the
  // sender's buffer until the match; completion costs are precomputed by the
  // sender so the engine needs no fabric access.
  bool rendezvous = false;
  const std::byte* rndv_src = nullptr;
  std::shared_ptr<ReqState> send_req;  ///< completed at match (rendezvous only)
  net::Time rndv_extra_ns = 0;         ///< CTS round trip + payload wire time

  net::Time copy_ns = 0;     ///< receive-side copy-out cost
  net::Time ready_time = 0;  ///< virtual time the arrival finished processing

  /// Eager-credit cell this message holds one unit of (flow control,
  /// DESIGN.md §8). Released when the engine consumes the envelope — at
  /// match, truncation, or cap rejection — and survives failover migration
  /// because the pointer travels with the queue entry. Null when flow
  /// control is off or the message is rendezvous.
  std::atomic<int>* eager_credit = nullptr;
};

/// A receive posted to a VCI and not yet matched.
struct PostedRecv {
  int ctx_id = 0;
  int src = kAnySource;  ///< comm rank or kAnySource
  Tag tag = kAnyTag;     ///< tag or kAnyTag

  std::byte* buf = nullptr;
  std::size_t capacity = 0;
  std::shared_ptr<ReqState> req;
  net::Time post_time = 0;
};

class MatchingEngine {
 public:
  /// Process an arriving message. `clk` is an *arrival* clock positioned at
  /// the message's wire-arrival time (the caller thread's own clock is not
  /// affected — matching work belongs to the target side).
  ///
  /// Matches the earliest-posted compatible receive, completing it (and the
  /// sender's request, for rendezvous); otherwise enqueues the message on the
  /// unexpected queue.
  ///
  /// `unexpected_cap` > 0 bounds the unexpected queue (DESIGN.md §8): a
  /// message that would have to enqueue while the queue is at the cap is
  /// rejected — its eager credit is released and the function returns false
  /// so the transport can surface kResourceExhausted. 0 means unbounded.
  bool deposit(Envelope env, net::VirtualClock& clk, const net::CostModel& cm,
               net::NetStats* stats, std::size_t unexpected_cap = 0);

  /// Post a receive from the owning rank's thread (its own clock). Matches
  /// the earliest-arrived compatible unexpected message, completing the
  /// request immediately; otherwise enqueues on the posted queue.
  void post_recv(PostedRecv pr, net::VirtualClock& clk, const net::CostModel& cm,
                 net::NetStats* stats);

  /// Probe: report whether an unexpected message matches (ctx, src, tag)
  /// without consuming it. Fills `st` on success.
  bool probe_unexpected(int ctx_id, int src, Tag tag, net::VirtualClock& clk,
                        const net::CostModel& cm, net::NetStats* stats, Status* st) const;

  /// Failover queue migration (DESIGN.md §7): merge every queued receive and
  /// unexpected message out of `from` into this engine, interleaved by
  /// virtual enqueue time (ready_time / post_time) so the merged engine
  /// matches in the order a single channel would have. Ties keep this
  /// engine's entries first. Caller holds both VCIs' ContentionLocks.
  /// Best-effort: an in-flight deposit that resolved its VCI before the
  /// redirect was published can still land in `from` afterwards —
  /// deterministic tests phase-order traffic around the failover, and the
  /// stress suite injects no ctx-down events.
  void absorb(MatchingEngine& from);

  [[nodiscard]] std::size_t posted_depth() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_depth() const { return unexpected_.size(); }

 private:
  static bool matches(const PostedRecv& pr, const Envelope& env) {
    return pr.ctx_id == env.ctx_id && (pr.src == kAnySource || pr.src == env.src) &&
           (pr.tag == kAnyTag || pr.tag == env.tag);
  }

  /// Deliver `env` into `pr`, completing requests. `match_time` is the
  /// virtual time at which the match happened.
  static void deliver(Envelope& env, PostedRecv& pr, net::Time match_time);

  std::list<Envelope> unexpected_;
  std::list<PostedRecv> posted_;
};

}  // namespace tmpi::detail

#endif  // TMPI_MATCHING_H
