#ifndef TMPI_MATCHING_H
#define TMPI_MATCHING_H

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "net/cost_model.h"
#include "net/slab_pool.h"
#include "net/stats.h"
#include "net/virtual_clock.h"
#include "tmpi/error.h"
#include "tmpi/request.h"
#include "tmpi/types.h"

/// \file matching.h
/// Per-VCI message matching engine, with a hint-gated O(1) fast path.
///
/// Each VCI owns one MatchingEngine — MPICH's "distinct matching engine per
/// communication channel" design the paper builds on. Matching follows MPI
/// semantics *within* an engine: messages are matched against posted receives
/// in arrival/post order (non-overtaking), with ANY_SOURCE / ANY_TAG
/// wildcards. Messages routed to different VCIs are unordered relative to
/// each other — that unordering is precisely what "logically parallel
/// communication" exposes.
///
/// Thread context: every entry point takes the caller's clock and charges
/// explicitly — the engine never touches ThreadClock. Under the parallel
/// execution mode (DESIGN.md §12) deposit() runs on scheduler worker
/// threads with an arrival clock, serialized per engine by the VCI lock and
/// by the scheduler's per-context shard order, so match order (and the
/// virtual time it charges) is identical to serial inline delivery.
///
/// ## The fast path (DESIGN.md §10)
///
/// The MPI-4.0 assert hints (`mpi_assert_no_any_source` +
/// `mpi_assert_no_any_tag`, Lesson 7) promise a communicator will never use
/// wildcards, which lets the engine index its queues by exact (ctx, src,
/// tag) key. Both queues live in ONE storage, a MatchQueue: a pooled,
/// intrusively linked list in insertion order (the wildcard-correct ground
/// truth), with an open-addressed hash index overlaid on hint-qualified
/// entries and a Fenwick tree counting live entries by insertion order.
///
/// A bucket lookup finds the earliest exact-key entry in O(1) host time and
/// then charges virtual time for the *list-equivalent* probe count — the
/// entry's 1-based position in insertion order (Fenwick prefix sum, O(log
/// n)); a miss charges the full queue length, exactly what the scan would
/// have cost. Virtual time is therefore bit-identical in list and bucket
/// modes for every workload — the fast path accelerates the harness, not
/// the simulated machine — which is what lets the golden parity suite pin
/// both modes to the same numbers.
///
/// Correctness of the shortcut: a concrete-key query's compatible set is
/// exactly its bucket (equal keys) plus same-ctx wildcard entries. Wildcard
/// *posts* latch the engine (below) and hinted contexts can never issue them
/// (route_recv raises kWildcardViolation), so when a bucket is consulted the
/// compatible set is the bucket alone, and its FIFO head is the
/// earliest-in-order compatible entry — the same entry the scan would pick.
///
/// ## Mode latch
///
/// The engine starts in bucket mode (policy kAuto/kBucket) and latches to
/// list mode the first time a wildcard receive is posted: indexes are
/// dropped, position tracking stops, and every subsequent operation takes
/// the ordered-list scan. The latch is sticky — engines mixing hinted and
/// wildcard traffic stay on the always-correct path. Policy kList starts
/// latched (seed behaviour, the bench baseline).
///
/// The engine is externally synchronized: its owning Vci guards it with a
/// ContentionLock so that software serialization (n threads funneling into
/// one VCI) is charged to virtual time where it actually occurs.

namespace tmpi::detail {

/// Queue indexing discipline, selected per world (tmpi_match_mode /
/// TMPI_MATCH_MODE: "auto" | "list" | "bucket").
enum class MatchPolicy {
  kAuto,    ///< index entries from no-wildcard-hinted communicators
  kList,    ///< never index: ordered-scan only (seed behaviour)
  kBucket,  ///< index every concrete-key entry, latch on any wildcard post
};

/// Exact matching key. Wildcards never appear in an *indexed* key.
struct MatchKey {
  int ctx_id = 0;
  int src = 0;
  Tag tag = 0;
  friend bool operator==(const MatchKey&, const MatchKey&) = default;
};

/// 64-bit mix of a MatchKey; values 0 and 1 are reserved by the hash table
/// (empty / tombstone).
[[nodiscard]] inline std::uint64_t hash_match_key(const MatchKey& k) {
  std::uint64_t h =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.ctx_id)) << 32) |
      static_cast<std::uint32_t>(k.src);
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tag)) *
       0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  if (h < 2) h = 0x9e3779b97f4a7c15ULL;
  return h;
}

/// A message as it arrives at a target VCI.
struct Envelope {
  int ctx_id = 0;    ///< communicator matching context
  int src = 0;       ///< comm rank of the sender
  int src_world = -1;  ///< world rank of the sender (-1 = unknown; rank-failure
                       ///< purge only, never consulted for matching)
  Tag tag = 0;

  std::size_t bytes = 0;
  net::PooledBuf payload;  ///< owned data (eager protocol), slab-recycled

  /// Sending operation's trace span (0 = untraced). Travels with the
  /// envelope through retransmits, failover absorption, and purges so the
  /// matched receive can record the cross-rank causal edge (kMatch,
  /// DESIGN.md §14). Carrying the id is free when tracing is off.
  std::uint64_t trace_span = 0;

  /// Sender-side routing verdict: the communicator asserted no wildcards (or
  /// this is collective traffic, which never uses them), so this envelope
  /// may be indexed by exact key. Consistent per ctx_id by construction.
  bool fastpath = false;

  // Rendezvous protocol (bytes > eager threshold): the payload stays in the
  // sender's buffer until the match; completion costs are precomputed by the
  // sender so the engine needs no fabric access.
  bool rendezvous = false;
  const std::byte* rndv_src = nullptr;
  std::shared_ptr<ReqState> send_req;  ///< completed at match (rendezvous only)
  net::Time rndv_extra_ns = 0;         ///< CTS round trip + payload wire time

  net::Time copy_ns = 0;     ///< receive-side copy-out cost
  net::Time ready_time = 0;  ///< virtual time the arrival finished processing

  /// Eager-credit cell this message holds one unit of (flow control,
  /// DESIGN.md §8). Released when the engine consumes the envelope — at
  /// match, truncation, or cap rejection — and survives failover migration
  /// because the pointer travels with the queue entry. Null when flow
  /// control is off or the message is rendezvous.
  std::atomic<int>* eager_credit = nullptr;
};

/// A receive posted to a VCI and not yet matched.
struct PostedRecv {
  int ctx_id = 0;
  int src = kAnySource;  ///< comm rank or kAnySource
  int src_world = -1;    ///< world rank of the awaited sender (-1 = wildcard or
                         ///< unknown; rank-failure purge only)
  Tag tag = kAnyTag;     ///< tag or kAnyTag

  std::byte* buf = nullptr;
  std::size_t capacity = 0;
  std::shared_ptr<ReqState> req;
  net::Time post_time = 0;
  bool fastpath = false;  ///< posted through a no-wildcard-hinted communicator
};

/// Insertion-ordered queue with an optional exact-key index overlay.
///
/// Storage is one intrusive doubly linked list of pool-recycled nodes, in
/// insertion order — every scan walks it exactly like the seed's std::list,
/// so fallback behaviour (and virtual-time charges) cannot drift. Indexed
/// nodes additionally hang off an open-addressed hash table (linear probing,
/// tombstones) as per-key FIFO chains, and a windowed Fenwick tree over
/// insertion sequence numbers answers "how many live entries precede this
/// one" in O(log n) — the list-equivalent probe count a bucket hit charges.
///
/// Externally synchronized, like the engine that owns it.
template <class T>
class MatchQueue {
 public:
  static constexpr std::int32_t kUnindexed = -1;

  struct Node {
    explicit Node(T&& it) : item(std::move(it)) {}
    T item;
    MatchKey key{};
    std::uint64_t hash = 0;
    std::uint64_t seq = 0;     ///< insertion sequence (windowed; see renumber())
    Node* prev = nullptr;      ///< global insertion-order list
    Node* next = nullptr;
    Node* knext = nullptr;     ///< next node with the same key (bucket FIFO)
    std::int32_t slot = kUnindexed;  ///< hash-table slot, or kUnindexed
  };

  MatchQueue() = default;
  MatchQueue(const MatchQueue&) = delete;
  MatchQueue& operator=(const MatchQueue&) = delete;

  ~MatchQueue() {
    clear();
    for (void* c : chunks_) ::operator delete(c);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] Node* head() const { return head_; }

  /// Append an entry; `indexed` additionally files it under its exact key.
  Node* push_back(T&& item, const MatchKey& key, bool indexed) {
    Node* n = create_node(std::move(item));
    n->key = key;
    n->hash = hash_match_key(key);
    link_back(n);
    if (positions_enabled_) assign_seq(n);
    if (indexed) index_append(n);
    return n;
  }

  /// Head of the FIFO chain for `key`, or null when no indexed entry with
  /// that key exists. O(1) expected.
  [[nodiscard]] Node* find_bucket(const MatchKey& key) const {
    if (table_.empty()) return nullptr;
    const std::uint64_t h = hash_match_key(key);
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      const Slot& s = table_[i];
      if (s.h == 0) return nullptr;
      if (s.h == h && s.head != nullptr && s.head->key == key) return s.head;
    }
  }

  /// 1-based position of `n` in insertion order among live entries — the
  /// number of probes a front-to-back scan stopping at `n` would make.
  /// Requires position tracking (never called after a latch).
  [[nodiscard]] std::uint64_t position(const Node* n) const {
    return fen_prefix(n->seq - base_);
  }

  /// Remove and destroy an entry (unindexing it first if needed).
  void erase(Node* n) {
    if (n->slot != kUnindexed) unindex(n);
    if (positions_enabled_) fen_add(n->seq - base_, -1);
    unlink(n);
    destroy_node(n);
  }

  /// Discard the index overlay, leaving the ordered list untouched (the
  /// bucket→list drain: O(n), once, on the first wildcard post).
  void drop_index() {
    for (Node* n = head_; n != nullptr; n = n->next) {
      n->slot = kUnindexed;
      n->knext = nullptr;
    }
    std::vector<Slot>().swap(table_);
    table_used_ = 0;
    table_live_ = 0;
  }

  /// Rebuild the index over entries selected by `pred(item)`, in list order
  /// (preserves per-key FIFO). Index must be empty (drop_index() first).
  template <class Pred>
  void reindex(Pred pred) {
    for (Node* n = head_; n != nullptr; n = n->next) {
      if (pred(n->item)) index_append(n);
    }
  }

  /// Enable/disable the Fenwick position tracker. Disabling frees it;
  /// enabling renumbers existing entries.
  void set_positions_enabled(bool on) {
    if (on == positions_enabled_) return;
    positions_enabled_ = on;
    if (on) {
      renumber();
    } else {
      std::vector<std::int32_t>().swap(fen_);
      base_ = 0;
      next_seq_ = 0;
    }
  }

  /// Failover merge (seed semantics, DESIGN.md §7): move every entry of
  /// `from` into this queue, each landing before the first entry with a
  /// strictly later enqueue time — ties keep existing entries first. Items
  /// are moved into nodes from this queue's pool; `from` is left empty.
  /// Both indexes must have been dropped by the caller.
  template <class TimeFn>
  void absorb(MatchQueue& from, TimeFn enqueue_time) {
    Node* f = from.head_;
    while (f != nullptr) {
      Node* fnext = f->next;
      const net::Time t = enqueue_time(f->item);
      Node* pos = head_;
      while (pos != nullptr && enqueue_time(pos->item) <= t) pos = pos->next;
      Node* n = create_node(std::move(f->item));
      n->key = f->key;
      n->hash = f->hash;
      insert_before(pos, n);
      from.destroy_node(f);
      f = fnext;
    }
    from.head_ = from.tail_ = nullptr;
    from.size_ = 0;
    if (from.positions_enabled_) from.renumber();
    if (positions_enabled_) renumber();
  }

  /// Context-filtered variant of absorb() (adaptive rebalance, DESIGN.md
  /// §15): move only the entries selected by `pred(item)` out of `from`,
  /// merged by enqueue time with the same tie rule as absorb(); unselected
  /// entries keep their positions in `from`. Returns the number moved.
  /// Both indexes must have been dropped by the caller — unlike absorb(),
  /// `from` keeps live entries, so *both* queues need reindexing after.
  template <class TimeFn, class Pred>
  std::size_t absorb_if(MatchQueue& from, TimeFn enqueue_time, Pred pred) {
    std::size_t moved = 0;
    Node* f = from.head_;
    while (f != nullptr) {
      Node* fnext = f->next;
      if (pred(f->item)) {
        const net::Time t = enqueue_time(f->item);
        Node* pos = head_;
        while (pos != nullptr && enqueue_time(pos->item) <= t) pos = pos->next;
        Node* n = create_node(std::move(f->item));
        n->key = f->key;
        n->hash = f->hash;
        insert_before(pos, n);
        from.unlink(f);
        from.destroy_node(f);
        ++moved;
      }
      f = fnext;
    }
    if (moved != 0) {
      if (from.positions_enabled_) from.renumber();
      if (positions_enabled_) renumber();
    }
    return moved;
  }

  /// Destroy every entry (releasing pooled payloads etc.); keeps the node
  /// chunks for reuse.
  void clear() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next;
      destroy_node(n);
      n = nx;
    }
    head_ = tail_ = nullptr;
    size_ = 0;
    std::vector<Slot>().swap(table_);
    table_used_ = 0;
    table_live_ = 0;
    fen_.clear();
    base_ = 0;
    next_seq_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t h = 0;  ///< 0 empty, 1 tombstone, else node hash
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  // --- node pool -----------------------------------------------------------

  static constexpr std::size_t kChunkNodes = 32;

  Node* create_node(T&& item) {
    if (free_ == nullptr) refill();
    void* p = free_;
    free_ = *static_cast<void**>(p);
    return new (p) Node(std::move(item));
  }

  void destroy_node(Node* n) {
    n->~Node();
    *reinterpret_cast<void**>(n) = free_;
    free_ = n;
  }

  void refill() {
    auto* chunk = static_cast<std::byte*>(::operator new(kChunkNodes * sizeof(Node)));
    chunks_.push_back(chunk);
    for (std::size_t i = 0; i < kChunkNodes; ++i) {
      void* b = chunk + i * sizeof(Node);
      *static_cast<void**>(b) = free_;
      free_ = b;
    }
  }

  // --- insertion-order list ------------------------------------------------

  void link_back(Node* n) {
    n->prev = tail_;
    n->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++size_;
  }

  void insert_before(Node* pos, Node* n) {
    if (pos == nullptr) {
      link_back(n);
      return;
    }
    n->next = pos;
    n->prev = pos->prev;
    if (pos->prev != nullptr) {
      pos->prev->next = n;
    } else {
      head_ = n;
    }
    pos->prev = n;
    ++size_;
  }

  void unlink(Node* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
    --size_;
  }

  // --- exact-key hash index ------------------------------------------------

  void index_append(Node* n) {
    if (table_.empty() || (table_used_ + 1) * 4 >= table_.size() * 3) {
      rebuild_table();
    }
    raw_index_append(n);
  }

  /// Insert into a table guaranteed to have room. Appends to an existing
  /// key chain or claims a tombstone/empty slot for a new one.
  void raw_index_append(Node* n) {
    const std::size_t mask = table_.size() - 1;
    std::size_t place = table_.size();  // sentinel: none found yet
    for (std::size_t i = n->hash & mask;; i = (i + 1) & mask) {
      Slot& s = table_[i];
      if (s.h == 0) {
        if (place == table_.size()) place = i;
        break;
      }
      if (s.h == 1) {
        if (place == table_.size()) place = i;
      } else if (s.h == n->hash && s.head->key == n->key) {
        s.tail->knext = n;
        s.tail = n;
        n->slot = static_cast<std::int32_t>(i);
        n->knext = nullptr;
        return;
      }
    }
    Slot& s = table_[place];
    if (s.h == 0) ++table_used_;  // tombstone reuse keeps used_ flat
    s.h = n->hash;
    s.head = s.tail = n;
    n->slot = static_cast<std::int32_t>(place);
    n->knext = nullptr;
    ++table_live_;
  }

  /// Re-seat every indexed node in a fresh table sized for the live count
  /// (also purges tombstones). Rare: only on growth or tombstone pileup;
  /// steady-state traffic reuses tombstoned slots in place.
  void rebuild_table() {
    std::vector<Node*> indexed;
    indexed.reserve(table_live_);
    for (Node* n = head_; n != nullptr; n = n->next) {
      if (n->slot != kUnindexed) {
        indexed.push_back(n);
        n->slot = kUnindexed;
        n->knext = nullptr;
      }
    }
    const std::size_t cap =
        std::max<std::size_t>(64, std::bit_ceil((indexed.size() + 1) * 2));
    table_.assign(cap, Slot{});
    table_used_ = 0;
    table_live_ = 0;
    for (Node* n : indexed) raw_index_append(n);
  }

  void unindex(Node* n) {
    Slot& s = table_[static_cast<std::size_t>(n->slot)];
    if (s.head == n) {
      s.head = n->knext;
      if (s.head == nullptr) {
        s.h = 1;  // tombstone: probe chains crossing this slot stay intact
        s.tail = nullptr;
        --table_live_;
      }
    } else {
      Node* p = s.head;
      while (p->knext != n) p = p->knext;
      p->knext = n->knext;
      if (s.tail == n) s.tail = p;
    }
    n->slot = kUnindexed;
    n->knext = nullptr;
  }

  // --- windowed Fenwick position tracker -----------------------------------
  //
  // Sequence numbers are dense per window [base_, base_ + fen_.size());
  // when the window fills, renumber() re-lays live entries at 0..size-1 and
  // re-sizes the window to >= 2x the live count, so the slack between
  // renumbers is at least the live count — amortized O(1) maintenance, and
  // no allocation at all once the window size stabilizes.

  void assign_seq(Node* n) {
    if (next_seq_ - base_ >= fen_.size()) {
      // n is already linked at the tail, so the renumber sweep assigned and
      // counted its seq — assigning again here would double-count it.
      renumber();
      return;
    }
    n->seq = next_seq_++;
    fen_add(n->seq - base_, 1);
  }

  void renumber() {
    const std::size_t cap = std::max<std::size_t>(
        64, std::bit_ceil(size_ == 0 ? std::size_t{1} : size_ * 2));
    if (fen_.size() == cap) {
      std::fill(fen_.begin(), fen_.end(), 0);
    } else {
      fen_.assign(cap, 0);
    }
    base_ = 0;
    next_seq_ = 0;
    for (Node* n = head_; n != nullptr; n = n->next) {
      n->seq = next_seq_++;
      fen_add(n->seq, 1);
    }
  }

  void fen_add(std::uint64_t idx, std::int32_t delta) {
    for (std::size_t i = idx + 1; i <= fen_.size(); i += i & (~i + 1)) {
      fen_[i - 1] += delta;
    }
  }

  [[nodiscard]] std::uint64_t fen_prefix(std::uint64_t idx) const {
    std::uint64_t sum = 0;
    for (std::size_t i = idx + 1; i > 0; i -= i & (~i + 1)) {
      sum += static_cast<std::uint64_t>(fen_[i - 1]);
    }
    return sum;
  }

  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;

  void* free_ = nullptr;        ///< node freelist (link in first word)
  std::vector<void*> chunks_;   ///< owned chunk allocations

  std::vector<Slot> table_;     ///< power-of-two open-addressed index
  std::size_t table_used_ = 0;  ///< occupied + tombstoned slots
  std::size_t table_live_ = 0;  ///< occupied slots (distinct live keys)

  bool positions_enabled_ = true;
  std::vector<std::int32_t> fen_;
  std::uint64_t base_ = 0;
  std::uint64_t next_seq_ = 0;
};

class MatchingEngine {
 public:
  /// Select the indexing policy and (optionally) the owning channel's
  /// counter block for bucket/fallback telemetry. Called once at VCI
  /// construction, before any traffic.
  void configure(MatchPolicy policy, net::ChannelStats* ch);

  /// Process an arriving message. `clk` is an *arrival* clock positioned at
  /// the message's wire-arrival time (the caller thread's own clock is not
  /// affected — matching work belongs to the target side).
  ///
  /// Matches the earliest-posted compatible receive, completing it (and the
  /// sender's request, for rendezvous); otherwise enqueues the message on the
  /// unexpected queue.
  ///
  /// `unexpected_cap` > 0 bounds the unexpected queue (DESIGN.md §8): a
  /// message that would have to enqueue while the queue is at the cap is
  /// rejected — its eager credit is released and the function returns false
  /// so the transport can surface kResourceExhausted. 0 means unbounded.
  bool deposit(Envelope&& env, net::VirtualClock& clk, const net::CostModel& cm,
               net::NetStats* stats, std::size_t unexpected_cap = 0);

  /// Post a receive from the owning rank's thread (its own clock). Matches
  /// the earliest-arrived compatible unexpected message, completing the
  /// request immediately; otherwise enqueues on the posted queue. A wildcard
  /// receive latches the engine to list mode first (sticky).
  void post_recv(PostedRecv pr, net::VirtualClock& clk, const net::CostModel& cm,
                 net::NetStats* stats);

  /// Probe: report whether an unexpected message matches (ctx, src, tag)
  /// without consuming it. Fills `st` on success. `fastpath` carries the
  /// probing communicator's no-wildcard hint; probes never latch (the
  /// ordered list answers wildcard probes correctly in any mode).
  bool probe_unexpected(int ctx_id, int src, Tag tag, bool fastpath,
                        net::VirtualClock& clk, const net::CostModel& cm,
                        net::NetStats* stats, Status* st) const;

  /// Failover queue migration (DESIGN.md §7): merge every queued receive and
  /// unexpected message out of `from` into this engine, interleaved by
  /// virtual enqueue time (ready_time / post_time) so the merged engine
  /// matches in the order a single channel would have. Ties keep this
  /// engine's entries first. Indexed entries are re-indexed after the merge
  /// (unless a latch — either engine's — forces list mode). Caller holds
  /// both VCIs' ContentionLocks.
  /// Best-effort: an in-flight deposit that resolved its VCI before the
  /// redirect was published can still land in `from` afterwards —
  /// deterministic tests phase-order traffic around the failover, and the
  /// stress suite injects no ctx-down events.
  void absorb(MatchingEngine& from);

  /// Context-filtered queue migration (adaptive rebalance, DESIGN.md §15):
  /// move only the entries whose matching context is one of the three given
  /// ids out of `from`, interleaved by enqueue time exactly like absorb().
  /// Entries for other contexts keep their order in `from`. Returns the
  /// number of entries moved. Caller holds both VCIs' ContentionLocks; the
  /// same best-effort caveat as absorb() applies to racing deposits.
  std::size_t absorb_ctx(MatchingEngine& from, int ctx_a, int ctx_b, int ctx_c);

  /// Cross-match sweep after an absorb/absorb_ctx merge. A deposit that
  /// re-routed to the destination channel before the matching posted receive
  /// was swept over (or vice versa) leaves a compatible posted/unexpected
  /// pair coexisting in one engine — a state the deposit/post hot paths can
  /// never create and therefore never look for. Pair them up in queue order
  /// and deliver at max(`now`, post time, ready time); returns the number of
  /// pairs delivered. Caller holds the owning VCI's lock.
  std::size_t rematch(net::Time now);

  /// Drop every queued entry, releasing pooled payloads and node storage
  /// back to their owners. VciPool's destructor drains all engines this way
  /// before any Vci (and its slab pool) is destroyed, so cross-VCI payload
  /// migration from failover cannot dangle.
  void clear();

  /// Rank-failure purge (DESIGN.md §13): drop every queued entry pinned to
  /// dead `world_rank`. Unexpected messages from it release their credits and
  /// fail the rendezvous sender's request; posted receives awaiting it fail
  /// with kProcFailed at max(post/ready time, `death_time`). Wildcard posts
  /// (src_world == -1) stay — another sender can still satisfy them. Caller
  /// holds the owning VCI's lock. Returns the number of entries purged.
  std::size_t purge_rank(int world_rank, net::Time death_time);

  [[nodiscard]] std::size_t posted_depth() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_depth() const { return unexpected_.size(); }

  /// True while exact-key lookups are in use (not latched, policy allows).
  [[nodiscard]] bool bucket_mode() const {
    return !latched_ && policy_ != MatchPolicy::kList;
  }
  [[nodiscard]] bool latched() const { return latched_; }
  [[nodiscard]] MatchPolicy policy() const { return policy_; }

 private:
  static bool matches(const PostedRecv& pr, const Envelope& env) {
    return pr.ctx_id == env.ctx_id && (pr.src == kAnySource || pr.src == env.src) &&
           (pr.tag == kAnyTag || pr.tag == env.tag);
  }

  /// Should an entry with this shape be filed in the exact-key index?
  [[nodiscard]] bool index_entry(int src, Tag tag, bool fastpath) const {
    if (latched_ || src == kAnySource || tag == kAnyTag) return false;
    return policy_ == MatchPolicy::kBucket ||
           (policy_ == MatchPolicy::kAuto && fastpath);
  }

  /// May a query with this shape be answered from the index? Mirrors
  /// index_entry so a qualified query's compatible entries are all indexed.
  [[nodiscard]] bool use_bucket(int src, Tag tag, bool fastpath) const {
    return index_entry(src, tag, fastpath);
  }

  /// Sticky bucket→list drain: first wildcard post drops both indexes and
  /// stops position tracking; the ordered list (which always held every
  /// entry) simply continues as the only structure.
  void latch();

  void count_bucket(net::NetStats* stats, bool hit) const;
  void count_fallback(net::NetStats* stats) const;

  /// Append to the unexpected queue (cap-checked), charging insert cost.
  bool enqueue_unexpected(Envelope&& env, bool indexed, net::VirtualClock& clk,
                          const net::CostModel& cm, net::NetStats* stats,
                          std::size_t unexpected_cap);

  /// Deliver `env` into `pr`, completing requests. `match_time` is the
  /// virtual time at which the match happened.
  static void deliver(Envelope& env, PostedRecv& pr, net::Time match_time);

  MatchQueue<Envelope> unexpected_;
  MatchQueue<PostedRecv> posted_;
  MatchPolicy policy_ = MatchPolicy::kAuto;
  bool latched_ = false;
  net::ChannelStats* ch_ = nullptr;
};

}  // namespace tmpi::detail

#endif  // TMPI_MATCHING_H
