#include "tmpi/rma.h"

#include <array>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include "tmpi/collectives.h"
#include "tmpi/error.h"
#include "tmpi/matching.h"
#include "tmpi/transport.h"
#include "tmpi/world.h"

namespace tmpi {

namespace detail {

/// Memory-side exclusion unit: guards the actual memory update (atomicity is
/// real, via the mutex). Timing-wise the serialization that matters — and
/// that Lesson 16 studies — happens at the *channel* (VCI / hardware
/// context) level on the origin side, which stays deterministic; per-stripe
/// apply time is charged as a fixed cost on the arrival path.
struct Stripe {
  std::mutex mu;
};

struct WindowImpl {
  static constexpr int kStripes = 64;
  static constexpr std::size_t kStripeBytes = 256;

  World* world = nullptr;
  Info info;
  AccumulateOrdering ordering = AccumulateOrdering::kStrict;
  bool endpoints = false;
  std::vector<int> win_vcis;  ///< pool indices (regular windows)
  std::uint64_t seq_no = 0;

  struct Target {
    int world_rank = 0;
    int ep_vci = -1;
    std::byte* base = nullptr;
    std::size_t bytes = 0;
  };
  std::vector<Target> targets;  ///< per comm rank

  /// Memory-side serialization, per owning *process* (endpoints of one
  /// process share memory and therefore stripes).
  std::map<int, std::unique_ptr<std::array<Stripe, kStripes>>> stripes;

  [[nodiscard]] Stripe& stripe(int owner_world_rank, std::size_t disp) {
    auto& set = *stripes.at(owner_world_rank);
    return set[(disp / kStripeBytes) % kStripes];
  }
};

namespace {

std::uint32_t mix2(std::uint32_t a, std::uint32_t b) {
  std::uint32_t x = a * 0x9E3779B9u ^ (b + 0x85EBCA6Bu);
  x ^= x >> 15;
  x *= 0xC2B2AE35u;
  x ^= x >> 13;
  return x;
}

/// Per-thread outstanding-completion horizon per window (advanced by ops,
/// consumed by flush), and the completion of the thread's most recent
/// operation (consumed by the request-returning variants).
thread_local std::unordered_map<const WindowImpl*, net::Time> tl_outstanding;
thread_local net::Time tl_last_op_done = 0;

std::shared_ptr<void> build_window(CommImpl& c, CommImpl::Pending& p) {
  auto w = std::make_shared<WindowImpl>();
  w->world = c.world;
  w->info = p.args[0].info;
  w->ordering = w->info.get_string("accumulate_ordering", "strict") == "none"
                    ? AccumulateOrdering::kNone
                    : AccumulateOrdering::kStrict;
  w->endpoints = c.is_endpoints;
  w->seq_no = c.world->next_comm_seq();

  const int n = c.size();
  w->targets.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& t = w->targets[static_cast<std::size_t>(r)];
    t.world_rank = c.eps.world_rank_of(r);
    t.ep_vci = c.eps.vci_of(r);
    t.base = static_cast<std::byte*>(p.args[static_cast<std::size_t>(r)].base);
    t.bytes = p.args[static_cast<std::size_t>(r)].bytes;
    if (w->stripes.find(t.world_rank) == w->stripes.end()) {
      w->stripes.emplace(t.world_rank,
                         std::make_unique<std::array<Stripe, WindowImpl::kStripes>>());
    }
  }

  if (!w->endpoints) {
    const int requested = std::max(1, w->info.get_int("tmpi_num_vcis", 1));
    const int base_pool = c.world->config().num_vcis;
    const int pool_size = std::max(base_pool, requested);
    // Initial pools already cover [0, num_vcis); only grow when the window
    // asks for more (same laziness gate as configure_policy).
    if (pool_size > base_pool) {
      for (const auto& t : w->targets) {
        c.world->rank_state(t.world_rank).vcis.ensure(pool_size);
      }
    }
    w->win_vcis.resize(static_cast<std::size_t>(requested));
    for (int i = 0; i < requested; ++i) {
      w->win_vcis[static_cast<std::size_t>(i)] =
          static_cast<int>((w->seq_no + static_cast<std::uint64_t>(i)) %
                           static_cast<std::uint64_t>(pool_size));
    }
  }
  return w;
}

/// Channel (VCI pool index on the *origin's* rank) for an RMA op.
int rma_local_vci(const WindowImpl& w, const CommImpl& c, int origin_rank, int target_rank,
                  std::size_t disp, bool atomic) {
  if (w.endpoints) return c.eps.vci_of(origin_rank);
  const auto n = static_cast<std::uint32_t>(w.win_vcis.size());
  std::uint32_t h;
  if (atomic && w.ordering == AccumulateOrdering::kStrict) {
    // Same-(origin,target) atomics must stay ordered: one channel per pair.
    h = mix2(static_cast<std::uint32_t>(origin_rank), static_cast<std::uint32_t>(target_rank));
  } else {
    // Unordered: spread by target location; collisions still serialize
    // independent operations (Lesson 16).
    h = mix2(mix2(static_cast<std::uint32_t>(origin_rank),
                  static_cast<std::uint32_t>(target_rank)),
             static_cast<std::uint32_t>(disp / WindowImpl::kStripeBytes));
  }
  return w.win_vcis[h % n];
}

struct IssueResult {
  net::Time arrival = 0;  ///< op arrived at the target NIC
  std::byte* target_ptr = nullptr;
  int owner_world_rank = 0;
  Errc err = Errc::kSuccess;  ///< non-success only under errors-return (§8)
  // Tracing context (§9): the span opened at issue, closed by note_outstanding.
  std::uint64_t span = 0;
  int local_vci = 0;
  int origin_world_rank = 0;
};

/// Origin-side issue through the unified transport: issue cost + injection
/// through the chosen VCI + arrival, then receive-side occupancy at the
/// target's channel (duplex context): RMA traffic through one window channel
/// competes with the target's own use of it — the collision effect Lesson 16
/// describes. `payload_bytes` is what travels origin->target.
IssueResult rma_issue(const Window& win_handle, const WindowImpl& w, const CommImpl& c,
                      int target, std::size_t disp, std::size_t len, std::size_t payload_bytes,
                      bool atomic) {
  World& world = *w.world;

  const int origin_rank = win_handle.rank();
  const auto& t = w.targets.at(static_cast<std::size_t>(target));
  TMPI_REQUIRE(disp + len <= t.bytes, Errc::kInvalidArg, "RMA access beyond window bounds");

  const int lvci = rma_local_vci(w, c, origin_rank, target, disp, atomic);

  detail::OpDesc op;
  op.kind = detail::OpKind::kRmaOp;
  op.atomic = atomic;
  op.bytes = payload_bytes;
  op.src_world_rank = c.world_rank_of(origin_rank);
  op.dst_world_rank = t.world_rank;
  op.local_vci = lvci;
  op.remote_vci = w.endpoints ? c.eps.vci_of(target) : lvci;

  net::TraceRecorder* tr = world.tracer();
  IssueResult r;
  r.local_vci = lvci;
  r.origin_world_rank = op.src_world_rank;
  if (tr != nullptr) {
    r.span = tr->begin_span();
    op.span = r.span;
    net::TraceEvent ev;
    ev.ts = net::ThreadClock::get().now();
    ev.kind = net::TraceEv::kPost;
    ev.op = net::TraceOp::kRma;
    ev.span = r.span;
    ev.name = "Rma";
    ev.rank = op.src_world_rank;
    ev.vci = lvci;
    ev.peer = t.world_rank;
    ev.value = payload_bytes;
    tr->record(ev);
  }

  const detail::InjectResult ir = world.transport().inject(op);
  // A dead endpoint (DESIGN.md §13) surfaces like a timeout but with
  // TMPI_ERR_PROC_FAILED and a completion pinned to max(now, death time) so
  // both execution modes observe the same clock. The target memory is never
  // touched; inject() already counted the proc_failure.
  if (ir.proc_failed) {
    auto& clk = net::ThreadClock::get();
    const net::Time death = world.fabric().liveness().death_time(ir.dead_rank);
    if (death > clk.now()) clk.advance_to(death);
    if (tr != nullptr) {
      net::TraceEvent ev;
      ev.ts = clk.now();
      ev.kind = net::TraceEv::kError;
      ev.op = net::TraceOp::kRma;
      ev.span = r.span;
      ev.name = "Rma";
      ev.rank = op.src_world_rank;
      ev.vci = lvci;
      ev.peer = t.world_rank;
      ev.value = static_cast<std::uint64_t>(errc_to_int(Errc::kProcFailed));
      tr->record(ev);
    }
    if (c.errhandler == ErrorHandler::kErrorsReturn) {
      r.err = Errc::kProcFailed;
      return r;
    }
    fail(Errc::kProcFailed, "RMA target process failed");
  }
  // RMA ops are synchronous at the issue site; a retransmission budget
  // exhausted here surfaces immediately as TMPI_ERR_TIMEOUT (DESIGN.md §7).
  // On an errors-return communicator (§8) the code comes back to the caller
  // and the target memory is not touched; otherwise it throws, as before.
  if (ir.timed_out) {
    if (tr != nullptr) {
      net::TraceEvent ev;
      ev.ts = net::ThreadClock::get().now();
      ev.kind = net::TraceEv::kError;
      ev.op = net::TraceOp::kRma;
      ev.span = r.span;
      ev.name = "Rma";
      ev.rank = op.src_world_rank;
      ev.vci = lvci;
      ev.peer = t.world_rank;
      ev.value = static_cast<std::uint64_t>(errc_to_int(Errc::kTimeout));
      tr->record(ev);
    }
    if (c.errhandler == ErrorHandler::kErrorsReturn) {
      r.err = Errc::kTimeout;
      return r;
    }
    fail(Errc::kTimeout, "RMA operation timed out after exhausting retransmissions");
  }

  r.owner_world_rank = t.world_rank;
  r.target_ptr = t.base + disp;
  r.arrival = world.transport().occupy_rx(op, ir.arrival);
  return r;
}

void note_outstanding(const WindowImpl* w, const IssueResult& r, net::Time done) {
  auto& slot = tl_outstanding[w];
  slot = std::max(slot, done);
  tl_last_op_done = done;
  // Close the RMA span at the op's logical completion horizon (§9). RMA
  // requests from rput/rget are pre-completed and carry no span of their own.
  if (net::TraceRecorder* tr = w->world->tracer()) {
    net::TraceEvent ev;
    ev.ts = done;
    ev.kind = net::TraceEv::kComplete;
    ev.op = net::TraceOp::kRma;
    ev.span = r.span;
    ev.name = "Rma";
    ev.rank = r.origin_world_rank;
    ev.vci = r.local_vci;
    ev.peer = r.owner_world_rank;
    tr->record(ev);
  }
}

}  // namespace

}  // namespace detail

namespace detail {
namespace {
// Install the window-construction hook once, before main (single-threaded):
// assigning it per Window::create would race when threads create endpoint
// windows concurrently.
const bool g_window_hook_installed = [] {
  CommImpl::build_window_hook = &build_window;
  return true;
}();
}  // namespace
}  // namespace detail

Window Window::create(void* base, std::size_t bytes, const Comm& comm, const Info& info) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(detail::g_window_hook_installed, Errc::kInternal, "window hook unset");
  detail::DeriveArgs a;
  a.base = base;
  a.bytes = bytes;
  a.info = info;
  std::uint64_t seq = 0;
  auto& p = comm.impl()->derive_join(detail::DeriveOp::kWindow, comm.rank(), std::move(a), &seq);
  auto impl = std::static_pointer_cast<detail::WindowImpl>(p.extra_result);
  comm.impl()->derive_consume(seq);
  return Window(std::move(impl), comm);
}

AccumulateOrdering Window::ordering() const { return impl_->ordering; }
const std::vector<int>& Window::vcis() const { return impl_->win_vcis; }

Errc Window::put(const void* origin, int count, Datatype dt, int target, std::size_t disp) {
  const std::size_t len = dt.extent(count);
  auto r = detail::rma_issue(*this, *impl_, *comm_.impl(), target, disp * dt.size(), len, len,
                             /*atomic=*/false);
  if (r.err != Errc::kSuccess) return r.err;
  {
    detail::Stripe& st = impl_->stripe(r.owner_world_rank, disp * dt.size());
    std::scoped_lock lk(st.mu);
    if (len > 0) std::memcpy(r.target_ptr, origin, len);
  }
  detail::note_outstanding(impl_.get(), r, r.arrival);
  return Errc::kSuccess;
}

Errc Window::get(void* origin, int count, Datatype dt, int target, std::size_t disp) {
  const std::size_t len = dt.extent(count);
  // The request header travels out; the payload travels back.
  auto r = detail::rma_issue(*this, *impl_, *comm_.impl(), target, disp * dt.size(), len, 0,
                             /*atomic=*/false);
  if (r.err != Errc::kSuccess) return r.err;
  {
    detail::Stripe& st = impl_->stripe(r.owner_world_rank, disp * dt.size());
    std::scoped_lock lk(st.mu);
    if (len > 0) std::memcpy(origin, r.target_ptr, len);
  }
  const int my_node = impl_->world->node_of(comm_.world_rank_of(comm_.rank()));
  const net::Time done =
      r.arrival + impl_->world->fabric().transfer_time(
                      impl_->world->node_of(r.owner_world_rank), my_node, len);
  detail::note_outstanding(impl_.get(), r, done);
  return Errc::kSuccess;
}

Errc Window::accumulate(const void* origin, int count, Datatype dt, int target, std::size_t disp,
                        Op op) {
  const std::size_t len = dt.extent(count);
  auto r = detail::rma_issue(*this, *impl_, *comm_.impl(), target, disp * dt.size(), len, len,
                             /*atomic=*/true);
  if (r.err != Errc::kSuccess) return r.err;
  const net::CostModel& cm = impl_->world->cost();
  {
    detail::Stripe& st = impl_->stripe(r.owner_world_rank, disp * dt.size());
    std::scoped_lock lk(st.mu);
    reduce_apply(op, dt, r.target_ptr, origin, count);
  }
  detail::note_outstanding(impl_.get(), r, r.arrival + cm.atomic_apply_ns);
  return Errc::kSuccess;
}

Errc Window::get_accumulate(const void* origin, void* result, int count, Datatype dt, int target,
                            std::size_t disp, Op op) {
  const std::size_t len = dt.extent(count);
  auto r = detail::rma_issue(*this, *impl_, *comm_.impl(), target, disp * dt.size(), len, len,
                             /*atomic=*/true);
  if (r.err != Errc::kSuccess) return r.err;
  const net::CostModel& cm = impl_->world->cost();
  const net::Time applied = r.arrival + cm.atomic_apply_ns;
  {
    detail::Stripe& st = impl_->stripe(r.owner_world_rank, disp * dt.size());
    std::scoped_lock lk(st.mu);
    if (len > 0) std::memcpy(result, r.target_ptr, len);
    reduce_apply(op, dt, r.target_ptr, origin, count);
  }
  const int my_node = impl_->world->node_of(comm_.world_rank_of(comm_.rank()));
  const net::Time done =
      applied + impl_->world->fabric().transfer_time(
                    impl_->world->node_of(r.owner_world_rank), my_node, len);
  detail::note_outstanding(impl_.get(), r, done);
  net::ThreadClock::get().advance_to(done);  // fetch-result is synchronous
  return Errc::kSuccess;
}

namespace {

/// A request already satisfied at virtual time `done`.
tmpi::Request completed_request(tmpi::net::Time done) {
  auto st = tmpi::detail::make_req_state();
  st->finish(done);
  return tmpi::Request(st);
}

/// A request already failed with `code` (errors-return path: wait()/test()
/// report Status::err instead of throwing).
tmpi::Request errored_request(tmpi::Errc code) {
  auto st = tmpi::detail::make_req_state();
  st->errors_return = true;
  tmpi::Status s;
  st->finish_error(tmpi::net::ThreadClock::get().now(), s, code);
  return tmpi::Request(st);
}

}  // namespace

Request Window::rput(const void* origin, int count, Datatype dt, int target, std::size_t disp) {
  const Errc e = put(origin, count, dt, target, disp);
  if (e != Errc::kSuccess) return errored_request(e);
  return completed_request(detail::tl_last_op_done);
}

Request Window::rget(void* origin, int count, Datatype dt, int target, std::size_t disp) {
  const Errc e = get(origin, count, dt, target, disp);
  if (e != Errc::kSuccess) return errored_request(e);
  return completed_request(detail::tl_last_op_done);
}

Request Window::raccumulate(const void* origin, int count, Datatype dt, int target,
                            std::size_t disp, Op op) {
  const Errc e = accumulate(origin, count, dt, target, disp, op);
  if (e != Errc::kSuccess) return errored_request(e);
  return completed_request(detail::tl_last_op_done);
}

void Window::flush(int /*target*/) {
  // Timing is tracked per window (not per target): flush == flush_all.
  flush_all();
}

void Window::flush_all() {
  auto it = detail::tl_outstanding.find(impl_.get());
  if (it == detail::tl_outstanding.end()) return;
  net::ThreadClock::get().advance_to(it->second);
  detail::tl_outstanding.erase(it);
}

Errc Window::fence() {
  flush_all();
  return barrier(comm_);
}

}  // namespace tmpi
