#ifndef TMPI_INFO_H
#define TMPI_INFO_H

#include <map>
#include <optional>
#include <string>

/// \file info.h
/// MPI_Info-style hint dictionary.
///
/// Keys the runtime understands (all optional):
///   Standard MPI 4.0 assertions:
///     "mpi_assert_allow_overtaking"  = "true"|"false"
///     "mpi_assert_no_any_tag"        = "true"|"false"
///     "mpi_assert_no_any_source"     = "true"|"false"
///     "accumulate_ordering"          = "none" | anything-else (strict)
///   Implementation-specific mapping hints (MPICH-style; the paper's Lesson 7
///   and 8 study exactly this implementation-specificity — "mpich_"-prefixed
///   spellings are accepted as aliases):
///     "tmpi_num_vcis"                 = integer: VCIs for this comm/window
///     "tmpi_num_tag_bits_vci"         = integer: tag bits encoding a thread id
///     "tmpi_place_tag_bits_local_vci" = "MSB" (only supported placement)
///     "tmpi_tag_vci_hash_type"        = "one-to-one" | "hash"
///     "tmpi_coll_algorithm"           = "hier" | "flat"
///     "tmpi_part_vcis"                = integer: VCIs to spread partitions on

namespace tmpi {

class Info {
 public:
  Info() = default;

  Info& set(const std::string& key, const std::string& value) {
    kv_[key] = value;
    return *this;
  }
  Info& set(const std::string& key, int value) { return set(key, std::to_string(value)); }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    // Accept "mpich_" spellings for the tmpi_* mapping hints.
    if (auto it = kv_.find(key); it != kv_.end()) return it->second;
    if (key.rfind("tmpi_", 0) == 0) {
      if (auto it = kv_.find("mpich_" + key.substr(5)); it != kv_.end()) return it->second;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool dflt = false) const {
    auto v = get(key);
    if (!v) return dflt;
    return *v == "true" || *v == "1" || *v == "yes";
  }

  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    auto v = get(key);
    if (!v) return dflt;
    return std::stoi(*v);
  }

  [[nodiscard]] std::string get_string(const std::string& key, const std::string& dflt) const {
    auto v = get(key);
    return v ? *v : dflt;
  }

  [[nodiscard]] bool has(const std::string& key) const { return get(key).has_value(); }
  [[nodiscard]] std::size_t size() const { return kv_.size(); }
  [[nodiscard]] const std::map<std::string, std::string>& entries() const { return kv_; }

  /// Merge: entries in `other` override ours (MPI_Comm_dup_with_info style).
  [[nodiscard]] Info merged_with(const Info& other) const {
    Info out = *this;
    for (const auto& [k, v] : other.kv_) out.kv_[k] = v;
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace tmpi

#endif  // TMPI_INFO_H
