#ifndef TMPI_P2P_H
#define TMPI_P2P_H

#include "tmpi/comm.h"
#include "tmpi/datatype.h"
#include "tmpi/request.h"
#include "tmpi/status.h"

/// \file p2p.h
/// Point-to-point operations.
///
/// Semantics follow MPI: matching by (communicator, rank, tag) with
/// non-overtaking order *within* a VCI; wildcards kAnySource / kAnyTag on
/// receives (unless the comm's hints assert otherwise — enforced loudly);
/// eager protocol below the cost model's threshold, rendezvous above it
/// (sender completes at the match).
///
/// On an endpoints communicator, ranks are endpoints: `dst`/`src` address
/// endpoint ranks and each handle issues through its dedicated VCI.

namespace tmpi {

/// Nonblocking send of `count` elements of `dt` from `buf`.
Request isend(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm);

/// Nonblocking receive into `buf` (capacity `count` elements).
Request irecv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm);

/// Blocking send (isend + wait). Returns kSuccess, or — on an errors-return
/// communicator (DESIGN.md §8) — the failure code (kTimeout,
/// kResourceExhausted) instead of throwing.
Errc send(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm);

/// Blocking receive; returns the matched Status.
Status recv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm);

/// Nonblocking probe: true if a matching message has arrived but not been
/// received; fills `st` without consuming the message. Wildcards follow the
/// comm's assertions, like irecv.
bool iprobe(int src, Tag tag, const Comm& comm, Status* st = nullptr);

/// Blocking probe: waits (real time, without spinning in virtual time)
/// until a matching message is available and returns its Status.
Status probe(int src, Tag tag, const Comm& comm);

/// Combined exchange (deadlock-free pairwise).
Status sendrecv(const void* sbuf, int scount, Datatype sdt, int dst, Tag stag,  //
                void* rbuf, int rcount, Datatype rdt, int src, Tag rtag, const Comm& comm);

namespace detail {
/// Internal variant that skips user-tag validation and addresses an explicit
/// matching context (used by collectives and the runtime itself).
Request isend_on_ctx(const void* buf, std::size_t bytes, int ctx_id, int dst, Tag tag,
                     const Comm& comm);
Request irecv_on_ctx(void* buf, std::size_t bytes, int ctx_id, int src, Tag tag,
                     const Comm& comm);

/// Issue an operation that completes an existing request state (persistent
/// operations reuse their state across starts). The state must be freshly
/// reset (complete == false).
void isend_reusing(const std::shared_ptr<ReqState>& req, const void* buf, std::size_t bytes,
                   int ctx_id, int dst, Tag tag, const Comm& comm);
void irecv_reusing(const std::shared_ptr<ReqState>& req, void* buf, std::size_t capacity,
                   int ctx_id, int src, Tag tag, const Comm& comm);

/// Entry points for the rp::Channel session backends: identical semantics to
/// isend/irecv, but the traffic is tallied separately (NetStats channel_ops)
/// so transport telemetry can attribute it. All of it flows through the same
/// Transport choke point as user traffic.
Request channel_isend(const void* buf, int count, Datatype dt, int dst, Tag tag,
                      const Comm& comm);
Request channel_irecv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm);
}  // namespace detail

}  // namespace tmpi

#endif  // TMPI_P2P_H
