#ifndef TMPI_PROFILER_H
#define TMPI_PROFILER_H

#include <iosfwd>
#include <vector>

#include "net/metrics.h"
#include "net/stats.h"
#include "net/trace.h"

/// \file profiler.h
/// Consumers of the trace stream (DESIGN.md §9): per-op latency percentiles,
/// machine-readable metrics dumps, and the PMPI-style tool hook interface.
///
/// Everything here reads the recorder; nothing feeds back into virtual time,
/// so attaching a profiler or tool cannot perturb the simulated schedule.

namespace tmpi {

class World;

/// PMPI-style tool callback interface: subclass, override what you need, and
/// attach to a world whose tracing is enabled. Callbacks run synchronously on
/// whichever thread records the event — implementations must be thread-safe
/// and must not call back into the runtime. on_event() fires for every event
/// in addition to the kind-specific hook.
class ToolHooks {
 public:
  virtual ~ToolHooks() = default;

  virtual void on_event(const net::TraceEvent& /*ev*/) {}
  virtual void on_post(const net::TraceEvent& /*ev*/) {}
  virtual void on_complete(const net::TraceEvent& /*ev*/) {}
  virtual void on_error(const net::TraceEvent& /*ev*/) {}
  virtual void on_instant(const net::TraceEvent& /*ev*/) {}
  virtual void on_gauge(const net::TraceEvent& /*ev*/) {}
  /// One closed metrics window (DESIGN.md §14). Fires only when the world
  /// runs a sampler (`tmpi_metrics_window_ns` > 0), under the sampler lock.
  virtual void on_window(const net::MetricsWindow& /*win*/) {}
};

/// Subscribe `hooks` to every event `w` records. Returns false (and attaches
/// nothing) when the world's tracing is disabled. Attach/detach only while no
/// thread is inside the runtime; `hooks` must outlive the subscription.
bool attach_tool(World& w, ToolHooks* hooks);
void detach_tool(World& w);

/// Pair kPost/kComplete/kError events by span and aggregate post->finish
/// latency percentiles per operation family (nearest-rank p50/p90/p99).
/// Re-posted spans (persistent/partitioned restarts) measure each activation
/// against its most recent post.
[[nodiscard]] std::vector<net::OpLatency> compute_op_latency(const net::TraceRecorder& rec);

/// Machine-readable metrics dumps consumed by CI and bench tooling: the
/// per-op percentile rows plus recorder totals, as JSON / CSV.
void write_metrics_json(const net::TraceRecorder& rec, std::ostream& os);
void write_metrics_csv(const net::TraceRecorder& rec, std::ostream& os);

}  // namespace tmpi

#endif  // TMPI_PROFILER_H
