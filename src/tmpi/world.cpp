#include "tmpi/world.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <thread>

#include "net/pdes.h"
#include "tmpi/profiler.h"
#include "tmpi/rebalancer.h"
#include "tmpi/transport.h"

namespace tmpi {

World::World(WorldConfig cfg) : cfg_(std::move(cfg)), states_(cfg_.nranks) {
  TMPI_REQUIRE(cfg_.nranks >= 1, Errc::kInvalidArg, "nranks must be >= 1");
  TMPI_REQUIRE(cfg_.ranks_per_node >= 1, Errc::kInvalidArg, "ranks_per_node must be >= 1");
  TMPI_REQUIRE(cfg_.num_vcis >= 1, Errc::kInvalidArg, "num_vcis must be >= 1");
  // Bound the initial pool against VciPool's hard per-rank capacity here,
  // with a proper error code, instead of letting append_locked() surface the
  // problem mid-run.
  TMPI_REQUIRE(cfg_.num_vcis <= detail::VciPool::kCapacity, Errc::kInvalidArg,
               "num_vcis exceeds the per-rank VCI capacity (" +
                   std::to_string(detail::VciPool::kCapacity) + ")");
  TMPI_REQUIRE(cfg_.tag_bits >= 4 && cfg_.tag_bits <= 30, Errc::kInvalidArg,
               "tag_bits must be in [4,30]");

  const int nodes = (cfg_.nranks + cfg_.ranks_per_node - 1) / cfg_.ranks_per_node;
  fabric_ = std::make_unique<net::Fabric>(nodes, cfg_.cost, cfg_.nranks, cfg_.ranks_per_node,
                                          cfg_.num_vcis);
  transport_ = std::make_unique<detail::Transport>(*this);

  // Fault layer (DESIGN.md §7): Info hints first, TMPI_FAULT_* env on top.
  // The injector exists only when the plan can actually fire, so a fault-free
  // world pays nothing.
  net::FaultPlan plan;
  try {
    for (const auto& [k, v] : cfg_.fault_info.entries()) plan.set(k, v);
    plan = net::FaultPlan::from_env(std::move(plan));
  } catch (const std::invalid_argument& e) {
    // Malformed fault specs are never silently ignored (DESIGN.md §7): the
    // parser names the offending token/key and World construction surfaces
    // it as the runtime's own invalid-argument error.
    fail(Errc::kInvalidArg, e.what());
  }
  if (plan.enabled()) fault_injector_ = std::make_unique<net::FaultInjector>(std::move(plan));

  // Overload layer (DESIGN.md §8): same Info-then-env layering as faults.
  // All knobs default to 0 (= off), keeping the zero-config path bit-exact.
  for (const auto& [k, v] : cfg_.overload_info.entries()) overload_.set(k, v);
  overload_ = OverloadConfig::from_env(overload_);
  TMPI_REQUIRE(overload_.eager_credits >= 0, Errc::kInvalidArg, "tmpi_eager_credits must be >= 0");
  TMPI_REQUIRE(overload_.unexpected_cap >= 0, Errc::kInvalidArg, "tmpi_unexpected_cap must be >= 0");

  // Tracing layer (DESIGN.md §9): same Info-then-env layering. The recorder
  // exists only when enabled, so the default path pays one pointer test.
  net::TraceConfig tc;
  for (const auto& [k, v] : cfg_.trace_info.entries()) tc.set(k, v);
  tc = net::TraceConfig::from_env(std::move(tc));
  if (tc.enabled) tracer_ = std::make_unique<net::TraceRecorder>(std::move(tc));

  // Flight recorder (DESIGN.md §14): always on by default — a small bounded
  // ring that costs no virtual time and is dumped only post-mortem. The same
  // trace_info Info carries its keys; TMPI_FLIGHTREC* env overlays.
  net::FlightRecConfig frc;
  for (const auto& [k, v] : cfg_.trace_info.entries()) frc.set(k, v);
  frc = net::FlightRecConfig::from_env(std::move(frc));
  if (frc.enabled) {
    flightrec_ = std::make_unique<net::FlightRecorder>(std::move(frc));
    net::FlightRecorder::set_active(flightrec_.get());
  }

  // Metrics time-series (DESIGN.md §14): off unless a window width is set,
  // keeping the default fast path at one relaxed load per op.
  net::MetricsConfig mc;
  for (const auto& [k, v] : cfg_.trace_info.entries()) mc.set(k, v);
  mc = net::MetricsConfig::from_env(std::move(mc));
  if (mc.window_ns > 0) {
    metrics_ = std::make_unique<net::MetricsSampler>(&fabric_->stats(), std::move(mc));
  }

  // Adaptive VCI rebalancing (DESIGN.md §15): same Info-then-env layering.
  // The policy engine exists only when enabled, so the default (static
  // mapping) path stays bit-exact — routing and the transport test one null
  // pointer per op.
  RebalanceConfig rc;
  for (const auto& [k, v] : cfg_.rebalance_info.entries()) rc.set(k, v);
  rc = RebalanceConfig::from_env(rc);
  TMPI_REQUIRE(rc.imbalance_threshold >= 1.0, Errc::kInvalidArg,
               "tmpi_imbalance_threshold must be >= 1.0");
  if (rc.enabled()) rebalancer_ = std::make_unique<detail::Rebalancer>(*this, rc);

  // Matching fast path (DESIGN.md §10): config string, env on top. Any mode
  // is safe anywhere — bucket lookups charge list-equivalent virtual time —
  // so this is a benchmarking/bisection knob, not a correctness choice.
  std::string mm = cfg_.match_mode;
  if (const char* e = std::getenv("TMPI_MATCH_MODE"); e != nullptr && *e != '\0') mm = e;
  if (mm == "list") {
    match_policy_ = detail::MatchPolicy::kList;
  } else if (mm == "bucket") {
    match_policy_ = detail::MatchPolicy::kBucket;
  } else {
    TMPI_REQUIRE(mm.empty() || mm == "auto", Errc::kInvalidArg,
                 "tmpi match_mode must be auto|list|bucket");
    match_policy_ = detail::MatchPolicy::kAuto;
  }

  // Execution engine (DESIGN.md §12): config string, env on top. Parallel
  // mode defers remote-side deliveries to a sharded worker pool; serial is
  // the seed's inline fast path and the default.
  std::string em = cfg_.exec_mode;
  if (const char* e = std::getenv("TMPI_EXEC_MODE"); e != nullptr && *e != '\0') em = e;
  TMPI_REQUIRE(em.empty() || em == "serial" || em == "parallel", Errc::kInvalidArg,
               "tmpi exec_mode must be serial|parallel");
  if (em == "parallel") {
    // Two configurations need a delivery's outcome synchronously at the
    // inject site and therefore stay on the inline path even under
    // "parallel" (§12): bounded unexpected queues (deliver() reports cap
    // rejection to the sender) and scheduled ctx-down events (failover
    // redirects make the destination channel a function of delivery-time
    // state, not of the sender's program order).
    // Adaptive rebalancing epochs are needs_sync events too: a deferred
    // delivery could race a cutover and land on a channel the migration
    // already swept, so deliveries stay inline while the policy engine is
    // live (§15).
    bool needs_sync = overload_.unexpected_cap > 0 || rebalancer_ != nullptr;
    if (fault_injector_ != nullptr) {
      for (const auto& ev : fault_injector_->plan().events) {
        // ctx_down: failover redirects make the destination channel a
        // function of delivery-time state. rank_down: death is declared at an
        // exact index of the rank's aggregate op stream, and deferred
        // deliveries would decouple that stream from program order.
        if (ev.ctx_down || ev.rank_down) needs_sync = true;
      }
    }
    if (!needs_sync) {
      net::PdesScheduler::Config pc;
      pc.lookahead_ns = fabric_->min_channel_latency_ns();
      pdes_ = std::make_unique<net::PdesScheduler>(pc);
    }
  }

  // Rank states are built lazily on first rank_state() touch (DESIGN.md
  // §11); a 10k-rank world where only a few ranks communicate pays only for
  // those.

  // COMM_WORLD.
  world_comm_ = std::make_shared<detail::CommImpl>();
  world_comm_->world = this;
  const int base = alloc_ctx_ids();
  world_comm_->ctx_id = base;
  world_comm_->coll_ctx_id = base + 1;
  world_comm_->part_ctx_id = base + 2;
  world_comm_->seq_no = next_comm_seq();
  world_comm_->eps.assign_identity(cfg_.nranks);
  detail::configure_policy(*world_comm_);
  world_comm_->finalize_structure();
  register_comm(world_comm_);

  // Started last: the watchdog's monitor thread may touch rank state and
  // stats, so everything it reads exists before the thread runs.
  if (overload_.watchdog_ns > 0) {
    watchdog_ = std::make_unique<detail::ProgressWatchdog>(*this, overload_.watchdog_ns);
  }
}

World::~World() {
  // Stop the parallel engine first: quiescing drains every queued delivery
  // (whose envelopes reference VCI slab pools) and joins the worker pool
  // while all rank state the events touch is still alive.
  if (pdes_ != nullptr) pdes_->shutdown();
  // Close the final (partial) metrics window so the per-window deltas
  // telescope to exactly the cumulative counters, then export. An empty path
  // samples without ever touching the filesystem.
  if (metrics_ != nullptr) {
    metrics_->flush(elapsed());
    if (!metrics_->config().path.empty()) {
      const std::string& stem = metrics_->config().path;
      if (std::ofstream out(stem + ".timeseries.json"); out) metrics_->write_json(out);
      if (std::ofstream out(stem + ".prom"); out) metrics_->write_prometheus(out);
    }
  }
  // Export the trace on teardown (the watchdog thread is still alive here
  // and may record concurrently — the recorder's buffer mutexes make the
  // export safe). An empty path records without ever touching the
  // filesystem; successive Worlds overwrite, last one wins.
  if (tracer_ != nullptr && !tracer_->config().path.empty()) {
    const std::string& path = tracer_->config().path;
    if (std::ofstream out(path); out) tracer_->write_chrome_trace(out);
    std::string stem = path;
    if (const auto pos = stem.rfind(".json"); pos != std::string::npos && pos == stem.size() - 5) {
      stem.erase(pos);
    }
    if (std::ofstream out(stem + ".metrics.json"); out) write_metrics_json(*tracer_, out);
    if (std::ofstream out(stem + ".metrics.csv"); out) write_metrics_csv(*tracer_, out);
  }
  // A wrapped trace ring silently truncates journeys; say so once, with the
  // count, so a validator failure downstream is not a mystery.
  if (tracer_ != nullptr && tracer_->dropped() > 0) {
    std::fprintf(stderr,
                 "tmpi: trace ring wrapped, %llu event(s) dropped; raise "
                 "tmpi_trace_buffer_events for complete journeys\n",
                 static_cast<unsigned long long>(tracer_->dropped()));
  }
}

net::NetStatsSnapshot World::snapshot() const {
  // Global safe point: counters must reflect every delivery enqueued so far,
  // exactly as they would after the same ops in serial mode.
  if (pdes_ != nullptr) pdes_->quiesce();
  net::NetStatsSnapshot s = fabric_->stats().snapshot();
  if (tracer_ != nullptr) s.op_latency = compute_op_latency(*tracer_);
  return s;
}

int World::alloc_ctx_ids() { return next_ctx_.fetch_add(3, std::memory_order_relaxed); }

void World::register_comm(const std::shared_ptr<detail::CommImpl>& c) {
  if (rebalancer_ != nullptr) rebalancer_->track(c);
}

void World::on_rank_failure(int rank, net::Time t) {
  // Death is sticky: only the first declaration propagates. mark_dead also
  // fires the liveness wakers (shrink/agree joins, partitioned awaits).
  if (!fabric_->liveness().mark_dead(rank, t)) return;

  net::NetStats* stats = &fabric_->stats();
  if (tracer_ != nullptr || flightrec_ != nullptr) {
    net::TraceEvent e;
    e.ts = t;
    e.kind = net::TraceEv::kRankDown;
    e.rank = rank;
    e.value = static_cast<std::uint64_t>(rank);
    if (tracer_ != nullptr) tracer_->record(e);
    if (flightrec_ != nullptr) flightrec_->record(e);
  }
  // A rank death is exactly the post-mortem the black box exists for: dump
  // the last events now, while the context that led here is still in the
  // ring (first catastrophe wins; later dumps are no-ops).
  if (flightrec_ != nullptr) {
    flightrec_->dump("rank " + std::to_string(rank) + " down at t=" + std::to_string(t));
  }

  // The dead rank's NIC contexts go down with it (materialized ones only; an
  // idle channel has nothing to mark).
  if (detail::RankState* dead = states_.get(rank)) {
    const int n = dead->vcis.size();
    for (int i = 0; i < n; ++i) {
      if (detail::Vci* v = dead->vcis.peek(i)) v->ctx().mark_down();
    }
  }

  // Purge every materialized matching engine of traffic pinned to the dead
  // rank: unexpected messages it sent release their flow-control credits and
  // fail rendezvous senders; posted receives awaiting it fail with
  // kProcFailed at max(post time, death time). A throwaway clock absorbs the
  // lock charge and stats are not counted — the purge is a control action,
  // not simulated traffic. The phantom deposit afterwards wakes blocking
  // probes so their loops re-check liveness.
  for (int r = 0; r < cfg_.nranks; ++r) {
    detail::RankState* st = states_.get(r);
    if (st == nullptr) continue;
    const int nv = st->vcis.size();
    for (int i = 0; i < nv; ++i) {
      detail::Vci* v = st->vcis.peek(i);
      if (v == nullptr) continue;
      std::size_t purged = 0;
      {
        net::VirtualClock pclk(t);
        net::ContentionLock::Guard g(v->lock(), pclk, cost(), nullptr, nullptr);
        purged = v->engine().purge_rank(rank, t);
      }
      for (std::size_t k = 0; k < purged; ++k) {
        stats->add_proc_failure();
        if (v->chstats() != nullptr) v->chstats()->add_proc_failure();
      }
      v->note_deposit();
    }
  }
}

detail::RankState& World::materialize_rank_state(int r) {
  return states_.get_or_create(r, [this](int rank) {
    const int node = node_of(rank);
    // First context reservation of this rank's initial pool on its node's
    // NIC: pools are laid out rank-major, matching the order the eager
    // implementation acquired contexts in (see net/nic.h).
    const int ctx_seq_base = (rank % cfg_.ranks_per_node) * cfg_.num_vcis;
    return new detail::RankState(rank, node, *fabric_, cfg_.num_vcis, ctx_seq_base,
                                 overload_.eager_credits, match_policy_);
  });
}

void World::run(const std::function<void(Rank&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg_.nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < cfg_.nranks; ++r) {
    threads.emplace_back([&, r] {
      detail::RankState& st = rank_state(r);
      net::ScopedClockBind bind(&st.clock);
      Rank rank(*this, st);
      try {
        fn(rank);
      } catch (...) {
        std::scoped_lock lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Global safe point at the run boundary: every delivery the program
  // enqueued is processed before control returns, so a subsequent run() (or
  // elapsed()/snapshot()) observes exactly the serial engine's state.
  if (pdes_ != nullptr) pdes_->quiesce();
  if (first_error) std::rethrow_exception(first_error);
}

net::Time World::elapsed() const {
  net::Time t = 0;
  for (int r = 0; r < cfg_.nranks; ++r) {
    if (const detail::RankState* st = states_.get(r)) t = std::max(t, st->clock.now());
  }
  return t;
}

void Rank::parallel(int nthreads, const std::function<void(int)>& fn) const {
  TMPI_REQUIRE(nthreads >= 1, Errc::kInvalidArg, "nthreads must be >= 1");
  auto& parent_clk = net::ThreadClock::get();
  const net::Time start = parent_clk.now();

  std::vector<net::VirtualClock> clocks(static_cast<std::size_t>(nthreads),
                                        net::VirtualClock(start));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      net::ScopedClockBind bind(&clocks[static_cast<std::size_t>(t)]);
      try {
        fn(t);
      } catch (...) {
        std::scoped_lock lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);

  net::Time end = start;
  for (const auto& c : clocks) end = std::max(end, c.now());
  parent_clk.advance_to(end);
  parent_clk.advance(w_->cost().thread_sync_ns);
}

}  // namespace tmpi
