#ifndef TMPI_PERSISTENT_H
#define TMPI_PERSISTENT_H

#include "tmpi/comm.h"
#include "tmpi/datatype.h"
#include "tmpi/request.h"

/// \file persistent.h
/// Persistent point-to-point operations (MPI_Send_init / MPI_Recv_init).
///
/// A persistent request freezes the argument list of a send or receive;
/// start() (shared with partitioned requests) activates one instance, and
/// wait() completes it, after which the request can be started again.
/// Persistent operations are the historical ancestor of partitioned
/// communication (§II-C): one message per start, no partitions, no shared-
/// request multithreading semantics.

namespace tmpi {

/// Create an inactive persistent send of `count` elements of `dt`.
Request send_init(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm);

/// Create an inactive persistent receive.
Request recv_init(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm);

}  // namespace tmpi

#endif  // TMPI_PERSISTENT_H
