#ifndef TMPI_WATCHDOG_H
#define TMPI_WATCHDOG_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/virtual_clock.h"
#include "tmpi/types.h"

/// \file watchdog.h
/// Overload-hardening layer (DESIGN.md §8): configuration knobs plus the
/// progress watchdog.
///
/// The paper's Lesson 3 — communication resources are finite — implies two
/// failure shapes this layer makes survivable and observable instead of
/// silent: *overload* (unbounded unexpected queues / in-flight eager data)
/// and *stall* (an application blocked forever on a message that cannot
/// arrive). Flow control handles the first; the watchdog diagnoses the
/// second with a wait-for-graph cycle check across ranks.

namespace tmpi {

class World;

/// Knobs for the overload layer. All default to 0 (= off): the zero-config
/// transport path is bit-exact with previous releases. Configure through
/// WorldConfig::overload_info (`tmpi_*` Info keys) or the same names
/// uppercased as environment variables (env wins).
struct OverloadConfig {
  /// Per-(rank, VCI) budget of in-flight eager messages *destined to* that
  /// channel. A sender that cannot take a credit degrades the message to
  /// rendezvous (backpressure, not loss). 0 = unbounded.
  int eager_credits = 0;
  /// Hard cap on a matching engine's unexpected-queue depth. A message that
  /// would exceed it is rejected and the send completes with
  /// Errc::kResourceExhausted. 0 = unbounded.
  int unexpected_cap = 0;
  /// Virtual-time stall budget: a blocking operation stuck past this with no
  /// transport progress anywhere is failed with Errc::kTimeout and a
  /// diagnostic report (deadlock cycle when one exists). 0 = watchdog off.
  net::Time watchdog_ns = 0;

  [[nodiscard]] bool enabled() const {
    return eager_credits > 0 || unexpected_cap > 0 || watchdog_ns > 0;
  }

  /// Apply one Info entry; returns false for keys this layer does not own.
  bool set(const std::string& key, const std::string& value);
  /// Overlay TMPI_EAGER_CREDITS / TMPI_UNEXPECTED_CAP / TMPI_WATCHDOG_NS
  /// environment variables onto `base` (env wins), mirroring FaultPlan.
  static OverloadConfig from_env(OverloadConfig base);
};

namespace detail {

struct ReqState;

/// Deadlock / stall detector. Runs a real-time monitor thread that watches a
/// registry of blocked operations against a transport-progress epoch: when
/// the epoch freezes for several consecutive scans while operations are
/// registered, it builds a rank-level wait-for graph and fails the members
/// of any cycle (or, after a longer grace period, every blocked op) with
/// Errc::kTimeout at the deterministic virtual time block_vtime +
/// watchdog_ns, printing a report that names each stuck (rank, vci, op,
/// tag). Exists only when watchdog_ns > 0, so the default path never pays
/// for it.
///
/// Parallel execution (DESIGN.md §12): before diagnosing a frozen epoch the
/// monitor checks the world's event scheduler — deliveries still queued are
/// progress in flight, not a stall, so it drains them (each processed
/// delivery bumps the epoch via note_progress and may complete the very
/// request being waited on) and rearms instead of reporting a deadlock.
class ProgressWatchdog {
 public:
  /// One blocked operation, registered for the duration of its wait.
  struct BlockedOp {
    std::shared_ptr<ReqState> req;  ///< request to fail on a trip
    int rank = -1;                  ///< world rank doing the waiting
    int vci = 0;                    ///< channel carrying the operation
    int peer = -1;                  ///< world rank waited on (-1 = unknown/wildcard)
    Tag tag = 0;
    const char* opname = "op";
    net::Time block_vtime = 0;  ///< waiter's virtual time when it blocked
    /// Extra wakeup for waiters not sleeping on the request cv (e.g. the
    /// partitioned channel cv). Must take only its own lock.
    std::function<void()> wake;
  };

  ProgressWatchdog(World& w, net::Time budget_ns);
  ~ProgressWatchdog();

  ProgressWatchdog(const ProgressWatchdog&) = delete;
  ProgressWatchdog& operator=(const ProgressWatchdog&) = delete;

  /// Register a blocked operation; returns a token for deregister().
  std::uint64_t register_blocked(BlockedOp op);
  void deregister(std::uint64_t token);

  /// Called by the transport on every inject/deliver/post_recv: any real
  /// traffic movement resets the stall detector.
  void note_progress() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] net::Time budget_ns() const { return budget_ns_; }
  [[nodiscard]] std::uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  /// Diagnostic reports emitted so far (also printed to stderr).
  [[nodiscard]] std::vector<std::string> reports() const;

 private:
  void scan_loop();
  /// Caller holds mu_. Fails cycle members (or everything when
  /// `force_stall`). Returns true if it tripped.
  bool analyze_locked(bool force_stall);
  /// Caller holds mu_. Fails every blocked op whose named peer is a dead
  /// rank (DESIGN.md §13) with Errc::kProcFailed — no frozen-epoch grace:
  /// a dead peer can never make progress, so waiting the budget out only
  /// delays recovery. Returns the number of operations failed.
  std::size_t fail_dead_peers_locked();

  World* w_;
  net::Time budget_ns_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> trips_{0};

  mutable std::mutex mu_;
  std::map<std::uint64_t, BlockedOp> blocked_;
  std::uint64_t next_token_ = 1;
  std::vector<std::string> reports_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;  // last: joins in ~ProgressWatchdog before members die
};

/// RAII registration around a blocking wait. Construct *before* taking any
/// lock the wait sleeps under (registration takes the watchdog's registry
/// mutex and must not nest inside request/channel locks); destruction after
/// the wait deregisters. Null watchdog = no-op, so the default path costs a
/// pointer test.
class BlockedScope {
 public:
  BlockedScope(ProgressWatchdog* wd, ProgressWatchdog::BlockedOp op) : wd_(wd) {
    if (wd_ != nullptr) token_ = wd_->register_blocked(std::move(op));
  }
  ~BlockedScope() {
    if (wd_ != nullptr) wd_->deregister(token_);
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  ProgressWatchdog* wd_;
  std::uint64_t token_ = 0;
};

}  // namespace detail

}  // namespace tmpi

#endif  // TMPI_WATCHDOG_H
