#include "tmpi/partitioned.h"

#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include "net/contention_lock.h"
#include "tmpi/error.h"
#include "tmpi/transport.h"
#include "tmpi/watchdog.h"
#include "tmpi/world.h"

namespace tmpi {

namespace detail {

struct PendingPart {
  int partition = 0;
  net::Time arrival = 0;
  std::vector<std::byte> data;
};

struct PartSendState;
struct PartRecvState;

/// Rendezvous point of one (src, dst, tag) partitioned channel. Matching
/// happens here exactly once per channel — not per message (Section II-C).
struct PartChannel {
  std::mutex mu;  // guards all fields below (real correctness)
  std::condition_variable cv;  // signalled on every partition delivery
  PartSendState* send = nullptr;
  PartRecvState* recv = nullptr;
  std::deque<PendingPart> pending;  // partitions sent before the recv started
};

struct PartStateBase : ReqState {
  std::shared_ptr<CommImpl> comm;
  std::shared_ptr<PartChannel> chan;
  int my_rank = 0;
  int peer = 0;
  Tag tag = 0;
  int partitions = 0;
  std::size_t part_bytes = 0;
  bool active = false;
  /// The shared request lock every pready/parrived serializes on (Lesson 14).
  net::ContentionLock shared_lock;
  std::vector<int> vcis;  ///< local VCI pool indices used round-robin
};

struct PartSendState : PartStateBase {
  const std::byte* buf = nullptr;
  std::vector<char> ready;
  int ready_count = 0;
  net::Time max_done = 0;

  void on_start() override;

  ~PartSendState() override {
    // Deregister: the channel outlives the request and must not dangle.
    if (chan) {
      std::scoped_lock lk(chan->mu);
      if (chan->send == this) chan->send = nullptr;
    }
  }
};

struct PartRecvState : PartStateBase {
  std::byte* buf = nullptr;
  std::vector<char> arrived;
  std::vector<net::Time> arrive_time;
  int arrived_count = 0;
  net::Time max_arrival = 0;

  void on_start() override;

  ~PartRecvState() override {
    if (chan) {
      std::scoped_lock lk(chan->mu);
      if (chan->recv == this) chan->recv = nullptr;
    }
  }
};

namespace {

std::shared_ptr<PartChannel> channel_for(CommImpl& c, const PartKey& key) {
  std::scoped_lock lk(c.part_mu);
  auto& slot = c.channels[key];
  if (!slot) slot = std::make_shared<PartChannel>();
  return slot;
}

/// Resolve the local VCIs a partitioned op will use: the comm's default
/// channel, or `tmpi_part_vcis` dedicated channels.
std::vector<int> part_vcis(const Comm& comm, const Info& info, int peer, Tag tag, bool sender) {
  World& w = comm.world();
  const int k = info.get_int("tmpi_part_vcis", 1);
  TMPI_REQUIRE(k >= 1, Errc::kInvalidArg, "tmpi_part_vcis must be >= 1");
  const int my_wr = comm.world_rank_of(comm.rank());
  if (k == 1) {
    const detail::Route r = sender ? detail::route_send(*comm.impl(), comm.rank(), peer, tag)
                                   : detail::Route{detail::route_recv(*comm.impl(), comm.rank(),
                                                                      peer, tag),
                                                   0};
    return {r.local};
  }
  std::vector<int> out(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) out[static_cast<std::size_t>(i)] = w.rank_state(my_wr).vcis.add();
  return out;
}

/// Deliver one partition into an active receive. Caller holds chan->mu.
void deliver_partition(PartRecvState& rs, int partition, const std::byte* data,
                       net::Time arrival, const net::CostModel& cm) {
  TMPI_REQUIRE(partition >= 0 && partition < rs.partitions, Errc::kPartitionState,
               "partition index out of range");
  TMPI_REQUIRE(rs.arrived[static_cast<std::size_t>(partition)] == 0, Errc::kPartitionState,
               "partition delivered twice");
  const std::size_t off = static_cast<std::size_t>(partition) * rs.part_bytes;
  if (rs.part_bytes > 0) std::memcpy(rs.buf + off, data, rs.part_bytes);
  const net::Time done =
      arrival + static_cast<net::Time>(static_cast<double>(rs.part_bytes) /
                                       cm.shm_bandwidth_bytes_per_ns);
  rs.arrived[static_cast<std::size_t>(partition)] = 1;
  rs.arrive_time[static_cast<std::size_t>(partition)] = done;
  rs.arrived_count++;
  rs.max_arrival = std::max(rs.max_arrival, done);
  if (rs.arrived_count == rs.partitions) {
    Status st;
    st.source = rs.peer;
    st.tag = rs.tag;
    st.bytes = rs.part_bytes * static_cast<std::size_t>(rs.partitions);
    rs.finish(rs.max_arrival, st);
  }
}

template <typename T>
std::shared_ptr<T> part_cast(Request& req, ReqKind kind, const char* what) {
  TMPI_REQUIRE(req.valid(), Errc::kInvalidArg, "invalid request");
  auto s = std::dynamic_pointer_cast<T>(req.shared_state());
  TMPI_REQUIRE(s != nullptr && s->kind == kind, Errc::kInvalidArg, what);
  return s;
}

/// Open a fresh trace span for a partitioned request (§9). Used at init and
/// on every restart; a restart gets its own span so per-iteration latency is
/// visible. No-op when tracing is off or the caller has no bound clock (the
/// restart path can run from World teardown helpers).
void trace_part_post(World& w, PartStateBase& s) {
  net::TraceRecorder* tr = w.tracer();
  if (tr == nullptr || !net::ThreadClock::bound()) return;
  s.tracer = tr;
  s.trace_span = tr->begin_span();
  s.trace_op = net::TraceOp::kPartition;
  net::TraceEvent ev;
  ev.ts = net::ThreadClock::get().now();
  ev.kind = net::TraceEv::kPost;
  ev.op = net::TraceOp::kPartition;
  ev.span = s.trace_span;
  ev.name = s.wd_op;
  ev.rank = s.wd_rank;
  ev.vci = s.wd_vci;
  ev.peer = s.wd_peer;
  ev.tag = s.tag;
  ev.value = s.part_bytes * static_cast<std::size_t>(s.partitions);
  tr->record(ev);
}

}  // namespace
}  // namespace detail

Request psend_init(const void* buf, int partitions, int count, Datatype dt, int dst, Tag tag,
                   const Comm& comm, const Info& info) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(partitions >= 1, Errc::kInvalidArg, "partitions must be >= 1");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  TMPI_REQUIRE(dst >= 0 && dst < comm.size(), Errc::kInvalidArg, "rank out of range");
  World& w = comm.world();
  TMPI_REQUIRE(tag >= 0 && tag <= w.tag_ub(), Errc::kTagOverflow, "tag exceeds tag_ub");

  auto s = std::make_shared<detail::PartSendState>();
  s->kind = detail::ReqKind::kPartSend;
  s->comm = comm.impl_shared();
  s->my_rank = comm.rank();
  s->peer = dst;
  s->tag = tag;
  s->partitions = partitions;
  s->part_bytes = dt.extent(count);
  s->buf = static_cast<const std::byte*>(buf);
  s->ready.assign(static_cast<std::size_t>(partitions), 0);
  s->vcis = detail::part_vcis(comm, info, dst, tag, /*sender=*/true);

  s->errors_return = comm.impl()->errhandler == ErrorHandler::kErrorsReturn;
  s->wd = w.watchdog();
  s->wd_rank = comm.world_rank_of(comm.rank());
  s->wd_vci = s->vcis[0];
  s->wd_peer = comm.world_rank_of(dst);
  s->wd_tag = tag;
  s->wd_op = "PartSend";
  detail::trace_part_post(w, *s);

  const detail::PartKey key{comm.rank(), dst, tag};
  s->chan = detail::channel_for(*comm.impl(), key);
  {
    std::scoped_lock lk(s->chan->mu);
    TMPI_REQUIRE(s->chan->send == nullptr || !s->chan->send->active, Errc::kPartitionState,
                 "partitioned send already registered on this (src,dst,tag)");
    s->chan->send = s.get();
  }
  return Request(s);
}

Request precv_init(void* buf, int partitions, int count, Datatype dt, int src, Tag tag,
                   const Comm& comm, const Info& info) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(partitions >= 1, Errc::kInvalidArg, "partitions must be >= 1");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  // Partitioned receives have no wildcard form in MPI 4.0 (Lesson 15).
  TMPI_REQUIRE(src >= 0 && src < comm.size(), Errc::kInvalidArg,
               "partitioned receives cannot use wildcards");
  World& w = comm.world();
  TMPI_REQUIRE(tag >= 0 && tag <= w.tag_ub(), Errc::kTagOverflow, "tag exceeds tag_ub");

  auto s = std::make_shared<detail::PartRecvState>();
  s->kind = detail::ReqKind::kPartRecv;
  s->comm = comm.impl_shared();
  s->my_rank = comm.rank();
  s->peer = src;
  s->tag = tag;
  s->partitions = partitions;
  s->part_bytes = dt.extent(count);
  s->buf = static_cast<std::byte*>(buf);
  s->arrived.assign(static_cast<std::size_t>(partitions), 0);
  s->arrive_time.assign(static_cast<std::size_t>(partitions), 0);
  s->vcis = detail::part_vcis(comm, info, src, tag, /*sender=*/false);

  s->errors_return = comm.impl()->errhandler == ErrorHandler::kErrorsReturn;
  s->wd = w.watchdog();
  s->wd_rank = comm.world_rank_of(comm.rank());
  s->wd_vci = s->vcis[0];
  s->wd_peer = comm.world_rank_of(src);
  s->wd_tag = tag;
  s->wd_op = "PartRecv";
  detail::trace_part_post(w, *s);

  const detail::PartKey key{src, comm.rank(), tag};
  s->chan = detail::channel_for(*comm.impl(), key);
  {
    std::scoped_lock lk(s->chan->mu);
    TMPI_REQUIRE(s->chan->recv == nullptr || !s->chan->recv->active, Errc::kPartitionState,
                 "partitioned recv already registered on this (src,dst,tag)");
    s->chan->recv = s.get();
  }
  return Request(s);
}

void detail::PartSendState::on_start() {
  std::scoped_lock clk_lk(chan->mu);
  TMPI_REQUIRE(!active || ready_count == partitions, Errc::kPartitionState,
               "start on an incomplete active partitioned send");
  {
    std::scoped_lock st_lk(mu);
    active = true;
    complete = false;
    ready.assign(static_cast<std::size_t>(partitions), 0);
    ready_count = 0;
    max_done = 0;
  }
  detail::trace_part_post(*comm->world, *this);
}

void detail::PartRecvState::on_start() {
  const net::CostModel& cm = comm->world->cost();
  std::scoped_lock clk_lk(chan->mu);
  TMPI_REQUIRE(!active || arrived_count == partitions, Errc::kPartitionState,
               "start on an incomplete active partitioned recv");
  {
    std::scoped_lock st_lk(mu);
    active = true;
    complete = false;
  }
  arrived.assign(static_cast<std::size_t>(partitions), 0);
  arrive_time.assign(static_cast<std::size_t>(partitions), 0);
  arrived_count = 0;
  max_arrival = 0;
  detail::trace_part_post(*comm->world, *this);
  // Drain partitions that arrived before this start.
  while (!chan->pending.empty() && arrived_count < partitions) {
    detail::PendingPart p = std::move(chan->pending.front());
    chan->pending.pop_front();
    detail::deliver_partition(*this, p.partition, p.data.data(), p.arrival, cm);
  }
  chan->cv.notify_all();
}

Errc pready(int partition, Request& req) {
  auto s = detail::part_cast<detail::PartSendState>(req, detail::ReqKind::kPartSend,
                                                    "pready on a non-partitioned-send request");
  World& w = *s->comm->world;
  const net::CostModel& cm = w.cost();
  auto& clk = net::ThreadClock::get();
  net::NetStats* stats = &w.fabric().stats();

  TMPI_REQUIRE(partition >= 0 && partition < s->partitions, Errc::kInvalidArg,
               "partition index out of range");

  // Lesson 14: every contribution serializes on the shared request.
  net::ContentionLock::Guard req_guard(s->shared_lock, clk, cm, stats);
  stats->add_part_lock();
  clk.advance(cm.partition_flag_ns);

  TMPI_REQUIRE(s->active, Errc::kPartitionState, "pready on an inactive request");
  TMPI_REQUIRE(s->ready[static_cast<std::size_t>(partition)] == 0, Errc::kPartitionState,
               "pready called twice for one partition");

  // Transfer the partition through this request's channel set.
  detail::OpDesc op;
  op.kind = detail::OpKind::kPartition;
  op.bytes = s->part_bytes;
  op.src_world_rank = s->comm->world_rank_of(s->my_rank);
  op.dst_world_rank = s->comm->world_rank_of(s->peer);
  op.local_vci = s->vcis[static_cast<std::size_t>(partition) % s->vcis.size()];
  op.span = s->trace_span;
  op.tag = s->tag;

  const detail::InjectResult ir = w.transport().inject(op);
  if (ir.proc_failed) {
    // The receiving rank is dead (DESIGN.md §13): fail the whole partitioned
    // send with TMPI_ERR_PROC_FAILED, pinned to max(now, death time) so both
    // execution modes agree. try_finish: an earlier pready may have failed it.
    Status st;
    st.source = s->my_rank;
    st.tag = s->tag;
    st.bytes = 0;
    const net::Time death = w.fabric().liveness().death_time(ir.dead_rank);
    std::scoped_lock lk(s->chan->mu);
    s->try_finish_error(std::max(clk.now(), death), st, Errc::kProcFailed);
    s->chan->cv.notify_all();
    return Errc::kProcFailed;
  }
  if (ir.timed_out) {
    // The partition never reached the wire (DESIGN.md §7): fail the whole
    // partitioned send with TMPI_ERR_TIMEOUT rather than silently complete a
    // partial transfer. The partition stays un-ready.
    Status st;
    st.source = s->my_rank;
    st.tag = s->tag;
    st.bytes = 0;
    std::scoped_lock lk(s->chan->mu);
    s->finish_error(clk.now(), st, Errc::kTimeout);
    s->chan->cv.notify_all();
    return Errc::kTimeout;
  }
  const net::Time inject_done = ir.inject_done;
  net::Time arrival = ir.arrival;

  const std::byte* src_ptr = s->buf + static_cast<std::size_t>(partition) * s->part_bytes;
  {
    std::scoped_lock lk(s->chan->mu);
    detail::PartRecvState* r = s->chan->recv;
    if (r != nullptr) {
      // Receive-side occupancy at the receiver's channel for this partition.
      op.remote_vci = r->vcis[static_cast<std::size_t>(partition) % r->vcis.size()];
      arrival = w.transport().occupy_rx(op, arrival);
    }
    if (r != nullptr && r->active) {
      TMPI_REQUIRE(r->partitions == s->partitions && r->part_bytes == s->part_bytes,
                   Errc::kPartitionState,
                   "send/recv partitioning mismatch (unsupported, see DESIGN.md)");
    }
    const bool deliver_now =
        r != nullptr && r->active && r->arrived[static_cast<std::size_t>(partition)] == 0;
    if (deliver_now) {
      detail::deliver_partition(*r, partition, src_ptr, arrival, cm);
    } else {
      // Receive not started (or already holds this slot from a previous
      // iteration): park the partition; the next start() drains it.
      detail::PendingPart p;
      p.partition = partition;
      p.arrival = arrival;
      p.data.assign(src_ptr, src_ptr + s->part_bytes);
      s->chan->pending.push_back(std::move(p));
    }
    s->ready[static_cast<std::size_t>(partition)] = 1;
    s->ready_count++;
    s->max_done = std::max(s->max_done, inject_done);
    if (s->ready_count == s->partitions) s->finish(s->max_done);
    s->chan->cv.notify_all();
  }
  return Errc::kSuccess;
}

bool parrived(Request& req, int partition) {
  auto r = detail::part_cast<detail::PartRecvState>(req, detail::ReqKind::kPartRecv,
                                                    "parrived on a non-partitioned-recv request");
  World& w = *r->comm->world;
  const net::CostModel& cm = w.cost();
  auto& clk = net::ThreadClock::get();

  TMPI_REQUIRE(partition >= 0 && partition < r->partitions, Errc::kInvalidArg,
               "partition index out of range");

  // Lesson 14: polling also serializes on the shared request.
  net::ContentionLock::Guard req_guard(r->shared_lock, clk, cm, &w.fabric().stats());
  w.fabric().stats().add_part_lock();
  clk.advance(cm.partition_flag_ns);

  std::scoped_lock lk(r->chan->mu);
  TMPI_REQUIRE(r->active, Errc::kPartitionState, "parrived on an inactive request");
  if (r->arrived[static_cast<std::size_t>(partition)] != 0) {
    clk.advance_to(r->arrive_time[static_cast<std::size_t>(partition)]);
    return true;
  }
  return false;
}

Errc await_partition(Request& req, int partition) {
  auto r = detail::part_cast<detail::PartRecvState>(
      req, detail::ReqKind::kPartRecv, "await_partition on a non-partitioned-recv request");
  World& w = *r->comm->world;
  const net::CostModel& cm = w.cost();
  auto& clk = net::ThreadClock::get();

  TMPI_REQUIRE(partition >= 0 && partition < r->partitions, Errc::kInvalidArg,
               "partition index out of range");

  // Watchdog registration (DESIGN.md §8) — before the channel lock, and with
  // a wake hook on the channel cv this wait sleeps on (not the request cv).
  detail::ProgressWatchdog::BlockedOp bop;
  if (r->wd != nullptr) {
    bop.req = r;
    bop.rank = r->wd_rank;
    bop.vci = r->wd_vci;
    bop.peer = r->wd_peer;
    bop.tag = r->wd_tag;
    bop.opname = r->wd_op;
    bop.block_vtime = clk.now();
    std::shared_ptr<detail::PartChannel> chan = r->chan;
    bop.wake = [chan] {
      std::scoped_lock wk(chan->mu);
      chan->cv.notify_all();
    };
  }
  detail::BlockedScope watchdog_reg(r->wd, std::move(bop));
  // Death waker (DESIGN.md §13): a rank_down declared while this thread
  // sleeps on the channel cv must wake it so the dead-peer predicate below
  // re-evaluates. Registered before the wait, removed on every exit path.
  net::Liveness& live = w.fabric().liveness();
  const int peer_wr = r->wd_peer;
  const std::uint64_t waker = live.add_waker([chan = r->chan] {
    std::scoped_lock wk(chan->mu);
    chan->cv.notify_all();
  });
  struct WakerGuard {
    net::Liveness& l;
    std::uint64_t id;
    ~WakerGuard() { l.remove_waker(id); }
  } waker_guard{live, waker};
  {
    std::unique_lock lk(r->chan->mu);
    TMPI_REQUIRE(r->active, Errc::kPartitionState, "await_partition on an inactive request");
    r->chan->cv.wait(lk, [&] {
      if (r->arrived[static_cast<std::size_t>(partition)] != 0) return true;
      if (live.any_dead() && live.is_dead(peer_wr)) return true;
      std::scoped_lock st_lk(r->mu);  // chan->mu -> req->mu, same as delivery
      return r->errored;
    });
    if (r->arrived[static_cast<std::size_t>(partition)] == 0) {
      // The request failed (fault path, watchdog trip, or dead peer) and
      // this partition will never arrive.
      Errc code = Errc::kTimeout;
      net::Time t = 0;
      if (live.any_dead() && live.is_dead(peer_wr)) {
        // The sender died: fail the whole receive at max(now, death time) —
        // identical in both execution modes. try_finish: the transport-side
        // purge may have beaten us to it.
        Status st;
        st.source = r->peer;
        st.tag = r->tag;
        st.bytes = 0;
        const net::Time death = live.death_time(peer_wr);
        if (r->try_finish_error(std::max(clk.now(), death), st, Errc::kProcFailed)) {
          w.fabric().stats().add_proc_failure();
        }
      }
      {
        std::scoped_lock st_lk(r->mu);
        code = r->err;
        t = r->complete_time;
      }
      clk.advance_to(t);
      if (r->errors_return) return code;
      lk.unlock();
      fail(code, "partitioned operation failed while awaiting a partition");
    }
  }
  // One polling round on the shared request (Lesson 14), then catch up to
  // the partition's arrival.
  net::ContentionLock::Guard req_guard(r->shared_lock, clk, cm, &w.fabric().stats());
  w.fabric().stats().add_part_lock();
  clk.advance(cm.partition_flag_ns);
  std::scoped_lock lk(r->chan->mu);
  clk.advance_to(r->arrive_time[static_cast<std::size_t>(partition)]);
  return Errc::kSuccess;
}

}  // namespace tmpi
