#ifndef TMPI_REQUEST_H
#define TMPI_REQUEST_H

#include <condition_variable>
#include <memory>
#include <mutex>

#include "net/trace.h"
#include "net/virtual_clock.h"
#include "tmpi/error.h"
#include "tmpi/status.h"

/// \file request.h
/// Nonblocking operation handles.
///
/// A Request owns shared completion state. Completion is a real-time event
/// (condition variable) carrying a *virtual* completion timestamp; waiting
/// threads advance their virtual clock to that timestamp.

namespace tmpi {

namespace detail {

class ProgressWatchdog;

enum class ReqKind { kNone, kSend, kRecv, kPartSend, kPartRecv, kPersistSend, kPersistRecv };

struct ReqState {
  virtual ~ReqState() = default;

  /// Activate this request if it is persistent/partitioned (MPI_Start).
  /// The default rejects: plain nonblocking requests are not startable.
  virtual void on_start();

  std::mutex mu;
  std::condition_variable cv;
  bool complete = false;
  bool errored = false;          ///< e.g. truncation or timeout; wait() throws
  Errc err = Errc::kTruncate;    ///< which error wait()/test() raise (if errored)
  net::Time complete_time = 0;
  Status status;
  ReqKind kind = ReqKind::kNone;

  // Overload layer metadata (DESIGN.md §8), stamped at issue time.
  bool errors_return = false;  ///< comm handler: wait()/test() report Status::err, don't throw
  ProgressWatchdog* wd = nullptr;  ///< world's watchdog; null when it is off
  int wd_rank = -1;                ///< issuing world rank
  int wd_vci = 0;                  ///< local VCI carrying the operation
  int wd_peer = -1;                ///< world rank waited on (-1 = unknown/wildcard)
  Tag wd_tag = 0;
  const char* wd_op = "op";

  // Tracing metadata (DESIGN.md §9), stamped at issue time alongside wd_*.
  // The finish paths record the span's kComplete/kError edge here, which
  // covers every completion uniformly: eager and rendezvous p2p on both
  // sides, partitioned transfers, persistent restarts, and watchdog trips.
  net::TraceRecorder* tracer = nullptr;  ///< world's recorder; null = off
  std::uint64_t trace_span = 0;
  net::TraceOp trace_op = net::TraceOp::kNone;

  /// Record this request's span end. Runs outside the request lock and never
  /// touches a clock, so it cannot perturb completion timing.
  void trace_finish(net::Time t, bool error, Errc code) {
    if (tracer == nullptr) return;
    net::TraceEvent ev;
    ev.ts = t;
    ev.kind = error ? net::TraceEv::kError : net::TraceEv::kComplete;
    ev.op = trace_op;
    ev.span = trace_span;
    ev.name = wd_op;
    ev.rank = wd_rank;
    ev.vci = wd_vci;
    ev.peer = wd_peer;
    ev.tag = wd_tag;
    if (error) ev.value = static_cast<std::uint64_t>(errc_to_int(code));
    tracer->record(ev);
  }

  /// Mark complete at virtual time `t` and wake waiters.
  void finish(net::Time t) {
    {
      std::scoped_lock lk(mu);
      complete = true;
      complete_time = t;
    }
    cv.notify_all();
    trace_finish(t, false, Errc::kSuccess);
  }

  void finish(net::Time t, const Status& st) {
    {
      std::scoped_lock lk(mu);
      complete = true;
      complete_time = t;
      status = st;
    }
    cv.notify_all();
    trace_finish(t, false, Errc::kSuccess);
  }

  /// Mark complete *and errored* (truncation, TMPI_ERR_TIMEOUT) atomically:
  /// all flags are published under one lock acquisition and one notify, so no
  /// waiter can observe `complete` without `errored` and report success for a
  /// failed operation.
  void finish_error(net::Time t, const Status& st, Errc code = Errc::kTruncate) {
    {
      std::scoped_lock lk(mu);
      errored = true;
      err = code;
      complete = true;
      complete_time = t;
      status = st;
      status.err = code;
    }
    cv.notify_all();
    trace_finish(t, true, code);
  }

  /// finish_error that loses gracefully against a racing real completion
  /// (used by the watchdog, which runs concurrently with the transport):
  /// returns false without touching anything if the request already
  /// completed.
  bool try_finish_error(net::Time t, const Status& st, Errc code) {
    {
      std::scoped_lock lk(mu);
      if (complete) return false;
      errored = true;
      err = code;
      complete = true;
      complete_time = t;
      status = st;
      status.err = code;
    }
    cv.notify_all();
    trace_finish(t, true, code);
    return true;
  }
};

/// Allocate a plain ReqState via the process-wide request-block recycler
/// (DESIGN.md §10): the object and its shared_ptr control block come out of
/// one size-classed freelist node, so steady-state p2p traffic performs no
/// heap allocation per request. Persistent/partitioned subclasses keep
/// make_shared — they are reused across starts, not churned per message.
[[nodiscard]] std::shared_ptr<ReqState> make_req_state();

}  // namespace detail

class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::ReqState> s) : s_(std::move(s)) {}

  [[nodiscard]] bool valid() const { return s_ != nullptr; }

  /// Block until complete; advances the calling thread's virtual clock to the
  /// operation's virtual completion time and returns its Status.
  Status wait();

  /// Nonblocking completion check; on success behaves like wait().
  bool test(Status* st = nullptr);

  [[nodiscard]] detail::ReqState* state() const { return s_.get(); }
  [[nodiscard]] const std::shared_ptr<detail::ReqState>& shared_state() const { return s_; }

 private:
  std::shared_ptr<detail::ReqState> s_;
};

/// Activate a persistent or partitioned request (MPI_Start).
void start(Request& req);
void startall(Request* reqs, std::size_t n);

/// Wait for all requests (invalid entries are skipped).
void wait_all(Request* reqs, std::size_t n);
inline void wait_all(std::initializer_list<Request*> reqs) {
  for (Request* r : reqs)
    if (r != nullptr && r->valid()) r->wait();
}

}  // namespace tmpi

#endif  // TMPI_REQUEST_H
