#include "tmpi/profiler.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <ostream>
#include <string>

#include "tmpi/world.h"

namespace tmpi {

bool attach_tool(World& w, ToolHooks* hooks) {
  net::TraceRecorder* tr = w.tracer();
  if (tr == nullptr || hooks == nullptr) return false;
  tr->set_sink([hooks](const net::TraceEvent& ev) {
    hooks->on_event(ev);
    switch (ev.kind) {
      case net::TraceEv::kPost: hooks->on_post(ev); break;
      case net::TraceEv::kComplete: hooks->on_complete(ev); break;
      case net::TraceEv::kError: hooks->on_error(ev); break;
      case net::TraceEv::kUnexpectedDepth:
      case net::TraceEv::kCtxBacklog: hooks->on_gauge(ev); break;
      default: hooks->on_instant(ev); break;
    }
  });
  if (net::MetricsSampler* ms = w.metrics()) {
    ms->set_hook([hooks](const net::MetricsWindow& win) { hooks->on_window(win); });
  }
  return true;
}

void detach_tool(World& w) {
  if (net::TraceRecorder* tr = w.tracer()) tr->set_sink(nullptr);
  if (net::MetricsSampler* ms = w.metrics()) ms->set_hook(nullptr);
}

namespace {

net::Time nearest_rank(const std::vector<net::Time>& sorted, double q) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size()) + 0.999999);
  if (idx == 0) idx = 1;
  if (idx > sorted.size()) idx = sorted.size();
  return sorted[idx - 1];
}

}  // namespace

std::vector<net::OpLatency> compute_op_latency(const net::TraceRecorder& rec) {
  const std::vector<net::TraceEvent> evs = rec.merged();

  // Walk the time-ordered stream: each span's most recent post is the start
  // of its current activation (partitioned/persistent requests re-post).
  struct Open {
    net::Time ts = 0;
    net::TraceOp op = net::TraceOp::kNone;
  };
  std::map<std::uint64_t, Open> open;
  std::map<std::string, std::vector<net::Time>> latencies;
  std::map<std::string, std::uint64_t> errors;

  for (const net::TraceEvent& ev : evs) {
    if (ev.span == 0) continue;
    if (ev.kind == net::TraceEv::kPost) {
      open[ev.span] = {ev.ts, ev.op};
    } else if (ev.kind == net::TraceEv::kComplete || ev.kind == net::TraceEv::kError) {
      const auto it = open.find(ev.span);
      if (it == open.end()) continue;  // post fell off the ring
      const net::TraceOp fam = ev.op != net::TraceOp::kNone ? ev.op : it->second.op;
      const std::string key = net::to_string(fam);
      if (ev.kind == net::TraceEv::kError) {
        ++errors[key];
      } else if (ev.ts >= it->second.ts) {
        latencies[key].push_back(ev.ts - it->second.ts);
      }
    }
  }

  std::vector<net::OpLatency> out;
  for (auto& [key, lat] : latencies) {
    std::sort(lat.begin(), lat.end());
    net::OpLatency row;
    row.op = key;
    row.count = lat.size();
    row.errors = errors.count(key) != 0 ? errors[key] : 0;
    row.p50 = nearest_rank(lat, 0.50);
    row.p90 = nearest_rank(lat, 0.90);
    row.p99 = nearest_rank(lat, 0.99);
    out.push_back(std::move(row));
  }
  // Families that only ever errored still get a row (count 0).
  for (const auto& [key, n] : errors) {
    if (latencies.count(key) != 0) continue;
    net::OpLatency row;
    row.op = key;
    row.errors = n;
    out.push_back(std::move(row));
  }
  return out;
}

void write_metrics_json(const net::TraceRecorder& rec, std::ostream& os) {
  const std::vector<net::OpLatency> rows = compute_op_latency(rec);
  os << "{\"events_recorded\":" << rec.recorded() << ",\"events_dropped\":" << rec.dropped()
     << ",\"threads\":[";
  // Per-thread ring accounting: a journey that validates as incomplete is
  // usually one thread's ring wrapping, not a recorder-wide loss.
  const std::vector<net::TraceRecorder::ThreadStats> threads = rec.thread_stats();
  for (std::size_t i = 0; i < threads.size(); ++i) {
    os << (i == 0 ? "" : ",") << "{\"recorded\":" << threads[i].recorded
       << ",\"dropped\":" << threads[i].dropped << "}";
  }
  os << "],\"ops\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const net::OpLatency& r = rows[i];
    os << (i == 0 ? "" : ",") << "\n{\"op\":\"" << r.op << "\",\"count\":" << r.count
       << ",\"errors\":" << r.errors << ",\"p50_ns\":" << r.p50 << ",\"p90_ns\":" << r.p90
       << ",\"p99_ns\":" << r.p99 << "}";
  }
  os << "\n]}\n";
}

void write_metrics_csv(const net::TraceRecorder& rec, std::ostream& os) {
  os << "op,count,errors,p50_ns,p90_ns,p99_ns\n";
  for (const net::OpLatency& r : compute_op_latency(rec)) {
    os << r.op << "," << r.count << "," << r.errors << "," << r.p50 << "," << r.p90 << ","
       << r.p99 << "\n";
  }
  os << "thread,recorded,dropped\n";
  const std::vector<net::TraceRecorder::ThreadStats> threads = rec.thread_stats();
  for (std::size_t i = 0; i < threads.size(); ++i) {
    os << i << "," << threads[i].recorded << "," << threads[i].dropped << "\n";
  }
}

}  // namespace tmpi
