#ifndef TMPI_TRANSPORT_H
#define TMPI_TRANSPORT_H

#include <atomic>
#include <cstddef>

#include "net/stats.h"
#include "net/virtual_clock.h"
#include "tmpi/matching.h"

/// \file transport.h
/// The unified transport layer: every message in the runtime — eager and
/// rendezvous point-to-point, RMA, partitioned transfers, and the collective
/// fragments built on p2p — flows through this one module.
///
/// The sender-side pipeline (ContentionLock acquisition, HwContext injection
/// occupancy, fabric transfer time) and the receiver-side pipeline (arrival
/// clock, receive occupancy, matching-engine deposit, blocking-probe wakeup)
/// used to be hand-rolled in four places; centralizing them gives future
/// features (async progress, fault injection, tracing, batching) a single
/// choke point, and lets per-VCI telemetry observe *all* traffic.
///
/// Virtual-time discipline: the charge order in inject()/deliver() is exactly
/// the order the pre-refactor call sites used — lock, then context occupancy,
/// then wire time on the sender; receive occupancy, then lock, then deposit
/// on the arrival clock. tests/tmpi/transport_test.cpp pins completion times
/// to golden values recorded before the refactor (DESIGN.md §6).
///
/// Fault layer (DESIGN.md §7): when the World carries an active FaultPlan,
/// every transport entry point consults its FaultInjector. Injected losses
/// trigger retransmission with exponential backoff (and eventually
/// TMPI_ERR_TIMEOUT); a hardware context marked down fails the stream over to
/// a fallback VCI. With no plan active the injector pointer is null and the
/// pre-fault charge sequence runs unchanged, bit-exactly.
///
/// Parallel execution (DESIGN.md §12): when the World carries a
/// PdesScheduler, deliver() defers the remote-side pipeline to the
/// scheduler's shard for the destination hardware context instead of running
/// it inline, and every entry point that touches receiver-visible state
/// (inject, post_recv, probe, occupy_rx, try_reserve_eager) first drains the
/// shard it is about to touch — the safe points that keep parallel virtual
/// time bit-identical to serial. With no scheduler the inline path runs
/// unchanged.

namespace tmpi {
class World;
}

namespace tmpi::detail {

/// What kind of operation a descriptor represents; selects the global-stats
/// tallies (message vs RMA counters) and the wire-size rule.
enum class OpKind {
  kEagerP2p,       ///< payload travels with the envelope
  kRendezvousP2p,  ///< empty RTS travels; payload charged at the match
  kRmaOp,          ///< one-sided; bypasses the matching engine
  kPartition,      ///< one partition of a partitioned transfer
  kCollFragment,   ///< p2p fragment issued by a collective algorithm
};

/// One operation through the transport: kind, size, and the (world rank, VCI
/// pool index) route on both ends.
struct OpDesc {
  OpKind kind = OpKind::kEagerP2p;
  bool rendezvous = false;  ///< true iff only the RTS header travels now
  bool atomic = false;      ///< RMA accumulate-class op (kRmaOp only)
  std::size_t bytes = 0;    ///< logical payload size
  int src_world_rank = 0;
  int dst_world_rank = 0;
  int local_vci = 0;   ///< pool index on the source rank
  int remote_vci = 0;  ///< pool index on the destination rank
  // Tracing context (DESIGN.md §9); ignored when the world has no recorder.
  std::uint64_t span = 0;    ///< owning trace span (0 = untraced op)
  std::int32_t tag = -1;     ///< message tag for trace labels (-1 = none)
};

/// Sender-side outcome of inject().
struct InjectResult {
  net::Time inject_done = 0;  ///< descriptor left the local NIC context
  net::Time arrival = 0;      ///< wire payload reached the remote NIC
  bool timed_out = false;     ///< retransmission budget exhausted; the op
                              ///< failed with TMPI_ERR_TIMEOUT and nothing
                              ///< arrives (`arrival` is meaningless)
  bool proc_failed = false;   ///< src or dst rank is dead (DESIGN.md §13);
                              ///< the op must fail with TMPI_ERR_PROC_FAILED
                              ///< and nothing arrives
  int dead_rank = -1;         ///< the dead world rank (proc_failed only)
  int attempts = 1;           ///< transmit attempts (1 = no retransmission)
  int vci_used = 0;           ///< local VCI that carried the op (!= the
                              ///< requested VCI after a failover)
};

/// The choke point. Owned by World; stateless beyond the back-pointer, so
/// concurrent use from all rank threads is safe.
class Transport {
 public:
  explicit Transport(World& w) : w_(&w) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Sender side: charge the issue cost (RMA), acquire the local VCI's lock,
  /// occupy its hardware context, tally the op, and compute the wire arrival
  /// time. Advances the calling thread's clock. Under an active FaultPlan,
  /// lost transmissions are retried with exponential backoff here; callers
  /// must check InjectResult::timed_out before scheduling delivery.
  InjectResult inject(const OpDesc& op);

  /// Receiver side of two-sided traffic, on an arrival clock: receive
  /// occupancy at the remote VCI's context, lock, matching-engine deposit,
  /// and the blocking-probe wakeup. Does not touch the caller's clock.
  ///
  /// Returns false when the destination's unexpected-queue cap rejected the
  /// message (DESIGN.md §8) — the sender must fail its request with
  /// Errc::kResourceExhausted. Always true with the cap unconfigured.
  ///
  /// Takes the envelope by rvalue: the payload is a pool-owned buffer that
  /// must move, never copy, from the send path into the matching engine.
  ///
  /// In parallel execution mode the pipeline is queued on the destination
  /// context's scheduler shard and true is returned immediately — the
  /// scheduler only exists when the unexpected cap is off, so deferred
  /// deliveries can never be rejected.
  [[nodiscard]] bool deliver(const OpDesc& op, Envelope&& env, net::Time arrival);

  /// Flow-control grant for one eager message (DESIGN.md §8).
  struct EagerGrant {
    bool granted = true;             ///< false: budget exhausted, degrade to rendezvous
    std::atomic<int>* slot = nullptr;  ///< credit cell to release (null: no credit taken)
  };

  /// Try to take one eager credit on the destination channel. With flow
  /// control off (eager_credits == 0) this grants immediately without
  /// touching any counter — the zero-config fast path. A denial bumps the
  /// destination channel's credit-stall counters.
  EagerGrant try_reserve_eager(int dst_world_rank, int remote_vci);

  /// Receive-side context occupancy only (RMA and partitioned traffic, which
  /// bypass the matching engine). Returns the adjusted arrival time.
  net::Time occupy_rx(const OpDesc& op, net::Time arrival);

  /// Post a receive on `local_vci` of `world_rank`, charging the caller.
  void post_recv(int world_rank, int local_vci, PostedRecv pr);

  /// Probe the unexpected queue of `local_vci` of `world_rank` (nonblocking).
  /// `fastpath` carries the probing communicator's no-wildcard hint (§10).
  /// `src_world` is the world rank behind comm-rank `src` (-1 for wildcard):
  /// trace events record the world rank so attribution survives shrink().
  bool probe(int world_rank, int local_vci, int ctx_id, int src, Tag tag, Status* st,
             bool fastpath = false, int src_world = -1);

  /// Fabric-wide telemetry, including the per-VCI channel counters.
  [[nodiscard]] net::NetStatsSnapshot snapshot() const;

 private:
  /// The synchronous remote-side pipeline — deliver()'s body. Runs inline in
  /// serial mode and on a scheduler worker (with no bound ThreadClock; all
  /// times flow through `arrival`) in parallel mode.
  bool deliver_now(const OpDesc& op, Envelope&& env, net::Time arrival);

  class DeliveryEvent;  ///< scheduler wrapper around deliver_now (transport.cpp)

  World* w_;
};

}  // namespace tmpi::detail

#endif  // TMPI_TRANSPORT_H
