#include "tmpi/comm.h"

#include <algorithm>
#include <numeric>

#include "net/liveness.h"
#include "tmpi/error.h"
#include "tmpi/request.h"
#include "tmpi/world.h"

namespace tmpi {

const char* to_string(VciPolicyKind k) {
  switch (k) {
    case VciPolicyKind::kSingle: return "single";
    case VciPolicyKind::kSendHashRecvSerial: return "send-hash/recv-serial";
    case VciPolicyKind::kTagHash: return "tag-hash";
    case VciPolicyKind::kTagBitsOneToOne: return "tag-bits-one-to-one";
    case VciPolicyKind::kEndpoint: return "endpoint";
  }
  return "?";
}

namespace detail {

std::shared_ptr<void> (*CommImpl::build_window_hook)(CommImpl&, CommImpl::Pending&) = nullptr;

namespace {

/// Deterministic tag hash shared by sender and receiver.
std::uint32_t mix_tag(Tag tag) {
  auto x = static_cast<std::uint32_t>(tag);
  x *= 2654435761u;
  x ^= x >> 16;
  return x;
}

int tid_field(Tag tag, int field /*0 = src (MSB), 1 = dst*/, int bits, int total_bits) {
  const int shift = total_bits - bits * (field + 1);
  const Tag mask = static_cast<Tag>((1 << bits) - 1);
  return static_cast<int>((tag >> shift) & mask);
}

/// The VCI a kSingle communicator routes through right now: the adaptive
/// override when the Rebalancer installed one (DESIGN.md §15), else the
/// static hash. With `tmpi_adaptive` off the remap pointer is always null,
/// so the static path is one pointer test — no virtual time, no atomics.
int single_vci(const CommImpl& c) {
  if (VciRemap* r = c.remap.get()) {
    r->route_ops.fetch_add(1, std::memory_order_relaxed);
    const int v = r->vci.load(std::memory_order_acquire);
    if (v >= 0) return v;
  }
  return c.comm_vcis[0];
}

}  // namespace

void CommImpl::finalize_structure() {
  // Error-handler hint (DESIGN.md §8). Parsed here rather than in
  // configure_policy so endpoints communicators (which skip policy
  // configuration) honour it too.
  const std::string eh = info.get_string("tmpi_errhandler", "fatal");
  TMPI_REQUIRE(eh == "fatal" || eh == "return", Errc::kInvalidArg,
               "tmpi_errhandler must be 'fatal' or 'return'");
  errhandler = eh == "return" ? ErrorHandler::kErrorsReturn : ErrorHandler::kErrorsAreFatal;

  const int n = size();
  coll_active = std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(n));
  coll_seq = std::make_unique<std::uint64_t[]>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    coll_active[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    coll_seq[static_cast<std::size_t>(i)] = 0;
  }
  derive_seq.assign(static_cast<std::size_t>(n), 0);
  ft_seq.assign(static_cast<std::size_t>(n), 0);

  leaders.clear();
  if (eps.regular() && eps.stride() == 1 && n > 0) {
    // Contiguous world-rank span: node/leader lookups are arithmetic (see
    // node_of_comm_rank / leader_of_comm_rank), and the leader of node `nd`
    // is its first comm rank, max(0, nd * ranks_per_node - base). Only the
    // O(#nodes) leader list is materialized.
    topo_computed = true;
    node_of_rank.clear();
    leader_of_rank.clear();
    const int rpn = world->config().ranks_per_node;
    const int first_node = world->node_of(eps.base());
    const int last_node = world->node_of(eps.base() + n - 1);
    for (int nd = first_node; nd <= last_node; ++nd) {
      leaders.push_back(std::max(0, nd * rpn - eps.base()));
    }
  } else {
    topo_computed = false;
    node_of_rank.resize(static_cast<std::size_t>(n));
    leader_of_rank.resize(static_cast<std::size_t>(n));
    std::map<int, int> node_leader;  // node -> first comm rank seen
    for (int r = 0; r < n; ++r) {
      const int nd = world->node_of(eps.world_rank_of(r));
      node_of_rank[static_cast<std::size_t>(r)] = nd;
      auto [it, inserted] = node_leader.emplace(nd, r);
      if (inserted) leaders.push_back(r);
      leader_of_rank[static_cast<std::size_t>(r)] = it->second;
    }
    std::sort(leaders.begin(), leaders.end());
  }
}

int CommImpl::node_of_comm_rank(int r) const {
  if (topo_computed) return world->node_of(eps.base() + r);
  return node_of_rank.at(static_cast<std::size_t>(r));
}

int CommImpl::leader_of_comm_rank(int r) const {
  if (topo_computed) {
    const int rpn = world->config().ranks_per_node;
    const int nd = world->node_of(eps.base() + r);
    return std::max(0, nd * rpn - eps.base());
  }
  return leader_of_rank.at(static_cast<std::size_t>(r));
}

CommImpl::Pending& CommImpl::derive_join(DeriveOp op, int my_rank, DeriveArgs args,
                                         std::uint64_t* seq_out) {
  std::unique_lock lk(derive_mu);
  const std::uint64_t seq = derive_seq.at(static_cast<std::size_t>(my_rank))++;
  *seq_out = seq;
  Pending& p = pending[seq];
  if (p.args.empty()) {
    p.op = op;
    p.args.resize(static_cast<std::size_t>(size()));
  }
  if (p.poisoned || p.op != op) {
    // Poison the slot so every participant (including ones already waiting)
    // throws instead of deadlocking. The slot itself is deliberately leaked:
    // ranks that never arrive can't be distinguished from ones still on the
    // way, so reclaiming it could dangle a waiter's reference. This is an
    // error path (program misuse) with a bounded, per-mistake cost.
    p.poisoned = true;
    derive_cv.notify_all();
    fail(Errc::kInvalidArg,
         "mismatched collective derivation (ranks called different operations)");
  }
  p.args[static_cast<std::size_t>(my_rank)] = std::move(args);
  p.arrived++;
  if (p.arrived == size()) {
    build_derivation(p);
    p.built = true;
    derive_cv.notify_all();
  } else {
    derive_cv.wait(lk, [&] { return p.built || p.poisoned; });
    TMPI_REQUIRE(!p.poisoned, Errc::kInvalidArg,
                 "mismatched collective derivation (ranks called different operations)");
  }
  return p;
}

void CommImpl::derive_consume(std::uint64_t seq) {
  std::scoped_lock lk(derive_mu);
  Pending& p = pending.at(seq);
  if (++p.read == size()) pending.erase(seq);
}

void CommImpl::build_derivation(Pending& p) {
  // Runs under derive_mu in the last-arriving rank's thread.
  const int n = size();
  switch (p.op) {
    case DeriveOp::kDup: {
      auto child = std::make_shared<CommImpl>();
      child->world = world;
      const int base = world->alloc_ctx_ids();
      child->ctx_id = base;
      child->coll_ctx_id = base + 1;
      child->part_ctx_id = base + 2;
      child->seq_no = world->next_comm_seq();
      // All ranks passed the same info by MPI convention; merge rank 0's over
      // the parent's.
      child->info = info.merged_with(p.args[0].info);
      child->eps = eps;
      // Duplicating an endpoints communicator yields another endpoints
      // communicator: the handles keep their dedicated VCIs and ranks.
      child->is_endpoints = is_endpoints;
      if (is_endpoints) {
        child->policy = VciPolicyKind::kEndpoint;
      } else {
        configure_policy(*child);
      }
      child->finalize_structure();
      world->register_comm(child);
      p.result_impl.assign(static_cast<std::size_t>(n), child);
      p.result_rank.resize(static_cast<std::size_t>(n));
      std::iota(p.result_rank.begin(), p.result_rank.end(), 0);
      break;
    }
    case DeriveOp::kSplit: {
      // Group parent ranks by color; order within a group by (key, rank).
      std::map<int, std::vector<int>> groups;  // color -> parent ranks
      for (int r = 0; r < n; ++r) {
        if (p.args[static_cast<std::size_t>(r)].color >= 0) {
          groups[p.args[static_cast<std::size_t>(r)].color].push_back(r);
        }
      }
      p.result_impl.assign(static_cast<std::size_t>(n), nullptr);
      p.result_rank.assign(static_cast<std::size_t>(n), -1);
      for (auto& [color, members] : groups) {
        std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
          return p.args[static_cast<std::size_t>(a)].key < p.args[static_cast<std::size_t>(b)].key;
        });
        auto child = std::make_shared<CommImpl>();
        child->world = world;
        const int base = world->alloc_ctx_ids();
        child->ctx_id = base;
        child->coll_ctx_id = base + 1;
        child->part_ctx_id = base + 2;
        child->seq_no = world->next_comm_seq();
        child->info = info.merged_with(p.args[static_cast<std::size_t>(members[0])].info);
        for (int pr : members) {
          child->eps.push_back(eps.at(pr));
        }
        child->is_endpoints = is_endpoints;
        if (is_endpoints) {
          child->policy = VciPolicyKind::kEndpoint;
        } else {
          configure_policy(*child);
        }
        child->finalize_structure();
        world->register_comm(child);
        for (std::size_t i = 0; i < members.size(); ++i) {
          p.result_impl[static_cast<std::size_t>(members[i])] = child;
          p.result_rank[static_cast<std::size_t>(members[i])] = static_cast<int>(i);
        }
      }
      break;
    }
    case DeriveOp::kEndpoints: {
      auto child = std::make_shared<CommImpl>();
      child->world = world;
      const int base = world->alloc_ctx_ids();
      child->ctx_id = base;
      child->coll_ctx_id = base + 1;
      child->part_ctx_id = base + 2;
      child->seq_no = world->next_comm_seq();
      child->info = info.merged_with(p.args[0].info);
      child->is_endpoints = true;
      child->policy = VciPolicyKind::kEndpoint;
      p.ep_result.resize(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        const int wr = eps.world_rank_of(r);
        const int nep = p.args[static_cast<std::size_t>(r)].num_ep;
        TMPI_REQUIRE(nep >= 0, Errc::kInvalidArg, "negative endpoint count");
        for (int e = 0; e < nep; ++e) {
          const int vci = world->rank_state(wr).vcis.add();
          const int ep_rank = static_cast<int>(child->eps.size());
          child->eps.push_back(EpEntry{wr, vci});
          p.ep_result[static_cast<std::size_t>(r)].emplace_back(child, ep_rank);
        }
      }
      child->finalize_structure();
      break;
    }
    case DeriveOp::kWindow:
      // Window construction is performed by rma.cpp via build_window_hook.
      TMPI_REQUIRE(build_window_hook != nullptr, Errc::kInternal, "window hook unset");
      p.extra_result = build_window_hook(*this, p);
      break;
  }
}

std::uint64_t CommImpl::register_fragment(std::shared_ptr<ReqState> r) {
  std::unique_lock lk(frag_mu);
  const std::uint64_t id = next_frag++;
  frags.emplace(id, r);
  const bool rv = revoked.load(std::memory_order_acquire);
  const net::Time rt = revoke_time;
  lk.unlock();
  if (rv) {
    // Revoke raced this registration: its poisoning sweep may have missed
    // the entry, so fail the fragment here — its peers already bailed out
    // and a wait on it would hang forever. Failing at max(now, revoke_time)
    // matches what the sweep would have charged, keeping the waiter's clock
    // independent of which side won the race.
    Status st;
    st.source = -1;
    const net::Time now = net::ThreadClock::bound() ? net::ThreadClock::get().now() : 0;
    r->try_finish_error(std::max(now, rt), st, Errc::kProcFailed);
  }
  return id;
}

void CommImpl::deregister_fragment(std::uint64_t id) {
  std::scoped_lock lk(frag_mu);
  frags.erase(id);
}

bool CommImpl::revoke_at(net::Time t) {
  // Copy under the lock, fail outside: try_finish_error takes request locks
  // and wakes waiters, which must never nest inside frag_mu.
  bool first = false;
  net::Time rt = t;
  std::vector<std::shared_ptr<ReqState>> to_fail;
  {
    std::scoped_lock lk(frag_mu);
    first = !revoked.exchange(true, std::memory_order_acq_rel);
    if (first) revoke_time = t;
    rt = revoke_time;
    to_fail.reserve(frags.size());
    for (const auto& [id, r] : frags) to_fail.push_back(r);
  }
  Status st;
  st.source = -1;
  for (const auto& r : to_fail) r->try_finish_error(rt, st, Errc::kProcFailed);
  return first;
}

CommImpl::FtPending& CommImpl::ft_join(FtOp op, int my_rank, std::uint32_t flag) {
  net::Liveness& live = world->fabric().liveness();
  // Death waker: a rank_down declared while this thread waits must wake it
  // so the survivor-quorum predicate below re-evaluates. mark_dead invokes
  // wakers outside the registry lock, so taking ft_mu here cannot deadlock.
  const std::uint64_t waker = live.add_waker([this] {
    std::scoped_lock wk(ft_mu);
    ft_cv.notify_all();
  });
  struct WakerGuard {
    net::Liveness& l;
    std::uint64_t id;
    ~WakerGuard() { l.remove_waker(id); }
  } waker_guard{live, waker};

  std::unique_lock lk(ft_mu);
  const std::uint64_t seq = ft_seq.at(static_cast<std::size_t>(my_rank))++;
  FtPending& p = ft_pending[seq];
  if (p.arrived_flag.empty()) {
    p.op = op;
    p.arrived_flag.assign(static_cast<std::size_t>(size()), 0);
    p.flags.assign(static_cast<std::size_t>(size()), ~0u);
  }
  if (p.poisoned || p.op != op) {
    p.poisoned = true;
    ft_cv.notify_all();
    fail(Errc::kInvalidArg,
         "mismatched fault-tolerant rendezvous (ranks mixed shrink and agree)");
  }
  p.arrived_flag[static_cast<std::size_t>(my_rank)] = 1;
  p.flags[static_cast<std::size_t>(my_rank)] = flag;
  for (;;) {
    TMPI_REQUIRE(!p.poisoned, Errc::kInvalidArg,
                 "mismatched fault-tolerant rendezvous (ranks mixed shrink and agree)");
    if (p.built) break;
    // Quorum check against the *current* survivor set: death is sticky, so
    // the required set only shrinks, and whichever thread observes the last
    // needed arrival (or death) builds.
    bool all = true;
    const int n = size();
    for (int r = 0; r < n; ++r) {
      if (p.arrived_flag[static_cast<std::size_t>(r)] == 0 &&
          !live.is_dead(eps.world_rank_of(r))) {
        all = false;
        break;
      }
    }
    if (all) {
      build_ft(p);
      p.built = true;
      ft_cv.notify_all();
      break;
    }
    ft_cv.wait(lk);
  }
  return p;
}

void CommImpl::build_ft(FtPending& p) {
  // Runs under ft_mu in whichever thread completed the quorum.
  net::Liveness& live = world->fabric().liveness();
  const int n = size();
  if (p.op == FtOp::kAgree) {
    std::uint32_t v = ~0u;
    for (int r = 0; r < n; ++r) {
      if (p.arrived_flag[static_cast<std::size_t>(r)] != 0 &&
          !live.is_dead(eps.world_rank_of(r))) {
        v &= p.flags[static_cast<std::size_t>(r)];
      }
    }
    p.agree_value = v;
    return;
  }
  // kShrink: a fresh, un-revoked communicator over the survivors, in parent
  // rank order (same construction as a split with one color group).
  auto child = std::make_shared<CommImpl>();
  child->world = world;
  const int base = world->alloc_ctx_ids();
  child->ctx_id = base;
  child->coll_ctx_id = base + 1;
  child->part_ctx_id = base + 2;
  child->seq_no = world->next_comm_seq();
  child->info = info;
  p.child_rank.assign(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    if (live.is_dead(eps.world_rank_of(r))) continue;
    p.child_rank[static_cast<std::size_t>(r)] = child->eps.size();
    child->eps.push_back(eps.at(r));
  }
  child->is_endpoints = is_endpoints;
  if (is_endpoints) {
    child->policy = VciPolicyKind::kEndpoint;
  } else {
    configure_policy(*child);
  }
  child->finalize_structure();
  world->register_comm(child);
  p.child = child;
  world->fabric().stats().add_shrink();
}

void configure_policy(CommImpl& c) {
  World& w = *c.world;
  c.allow_overtaking = c.info.get_bool("mpi_assert_allow_overtaking");
  c.no_any_tag = c.info.get_bool("mpi_assert_no_any_tag");
  c.no_any_source = c.info.get_bool("mpi_assert_no_any_source");

  const int requested = c.info.get_int("tmpi_num_vcis", 0);
  const int base_pool = w.config().num_vcis;
  const int pool_size = std::max(base_pool, std::max(requested, 1));
  const int nvcis = std::max(requested, 1);

  // Ensure every member rank's pool covers the indices this comm uses. The
  // world's initial pools already span [0, num_vcis), so the loop only runs
  // when this comm requests *more* channels than that — materializing every
  // member's RankState for a no-op ensure would defeat lazy construction
  // (DESIGN.md §11).
  if (pool_size > base_pool) {
    const int n = c.eps.size();
    for (int i = 0; i < n; ++i) {
      w.rank_state(c.eps.world_rank_of(i)).vcis.ensure(pool_size);
    }
  }

  c.comm_vcis.resize(static_cast<std::size_t>(nvcis));
  for (int i = 0; i < nvcis; ++i) {
    c.comm_vcis[static_cast<std::size_t>(i)] =
        static_cast<int>((c.seq_no + static_cast<std::uint64_t>(i)) %
                         static_cast<std::uint64_t>(pool_size));
  }

  c.tag_bits_vci = c.info.get_int("tmpi_num_tag_bits_vci", 0);
  const std::string hash_type = c.info.get_string("tmpi_tag_vci_hash_type", "hash");
  const bool no_wildcards = c.no_any_tag && c.no_any_source;

  if (nvcis <= 1) {
    c.policy = VciPolicyKind::kSingle;
  } else if (c.allow_overtaking && no_wildcards && hash_type == "one-to-one" &&
             c.tag_bits_vci > 0) {
    c.policy = VciPolicyKind::kTagBitsOneToOne;
  } else if (c.allow_overtaking && no_wildcards) {
    c.policy = VciPolicyKind::kTagHash;
  } else if (c.allow_overtaking) {
    c.policy = VciPolicyKind::kSendHashRecvSerial;
  } else {
    // Multiple VCIs cannot be exploited without relaxed ordering: MPI's
    // non-overtaking guarantee forces a single channel (Section II-A).
    c.policy = VciPolicyKind::kSingle;
  }
}

Route route_send(const CommImpl& c, int src_rank, int dst_rank, Tag tag) {
  switch (c.policy) {
    case VciPolicyKind::kSingle: {
      const int v = single_vci(c);
      return Route{v, v};
    }
    case VciPolicyKind::kSendHashRecvSerial: {
      const auto n = static_cast<std::uint32_t>(c.comm_vcis.size());
      return Route{c.comm_vcis[mix_tag(tag) % n], c.comm_vcis[0]};
    }
    case VciPolicyKind::kTagHash: {
      const auto n = static_cast<std::uint32_t>(c.comm_vcis.size());
      const int v = c.comm_vcis[mix_tag(tag) % n];
      return Route{v, v};
    }
    case VciPolicyKind::kTagBitsOneToOne: {
      const int total = c.world->config().tag_bits;
      const auto n = static_cast<int>(c.comm_vcis.size());
      const int src_tid = tid_field(tag, 0, c.tag_bits_vci, total);
      const int dst_tid = tid_field(tag, 1, c.tag_bits_vci, total);
      return Route{c.comm_vcis[static_cast<std::size_t>(src_tid % n)],
                   c.comm_vcis[static_cast<std::size_t>(dst_tid % n)]};
    }
    case VciPolicyKind::kEndpoint:
      return Route{c.eps.vci_of(src_rank), c.eps.vci_of(dst_rank)};
  }
  fail(Errc::kInternal, "unknown policy");
}

int route_recv(const CommImpl& c, int my_rank, int src, Tag tag) {
  if (c.no_any_tag) {
    TMPI_REQUIRE(tag != kAnyTag, Errc::kWildcardViolation,
                 "ANY_TAG on a comm asserting mpi_assert_no_any_tag");
  }
  if (c.no_any_source) {
    TMPI_REQUIRE(src != kAnySource, Errc::kWildcardViolation,
                 "ANY_SOURCE on a comm asserting mpi_assert_no_any_source");
  }
  switch (c.policy) {
    case VciPolicyKind::kSingle:
      // Receives funnel through the comm's single VCI (the adaptive override
      // when one is installed): wildcards are possible, so the library
      // cannot spread matching (Section II-A).
      return single_vci(c);
    case VciPolicyKind::kSendHashRecvSerial:
      // Receives funnel through the comm's first VCI: wildcards are possible,
      // so the library cannot spread matching (Section II-A).
      return c.comm_vcis[0];
    case VciPolicyKind::kTagHash: {
      const auto n = static_cast<std::uint32_t>(c.comm_vcis.size());
      return c.comm_vcis[mix_tag(tag) % n];
    }
    case VciPolicyKind::kTagBitsOneToOne: {
      const int total = c.world->config().tag_bits;
      const auto n = static_cast<int>(c.comm_vcis.size());
      const int dst_tid = tid_field(tag, 1, c.tag_bits_vci, total);
      return c.comm_vcis[static_cast<std::size_t>(dst_tid % n)];
    }
    case VciPolicyKind::kEndpoint:
      return c.eps.vci_of(my_rank);
  }
  fail(Errc::kInternal, "unknown policy");
}

}  // namespace detail

Comm Comm::dup() const { return dup_with_info(Info{}); }

Comm Comm::dup_with_info(const Info& info) const {
  detail::DeriveArgs a;
  a.info = info;
  std::uint64_t seq = 0;
  auto& p = impl_->derive_join(detail::DeriveOp::kDup, rank_, std::move(a), &seq);
  Comm out(p.result_impl[static_cast<std::size_t>(rank_)],
           p.result_rank[static_cast<std::size_t>(rank_)]);
  impl_->derive_consume(seq);
  return out;
}

Comm Comm::split(int color, int key) const {
  detail::DeriveArgs a;
  a.color = color;
  a.key = key;
  std::uint64_t seq = 0;
  auto& p = impl_->derive_join(detail::DeriveOp::kSplit, rank_, std::move(a), &seq);
  Comm out(p.result_impl[static_cast<std::size_t>(rank_)],
           p.result_rank[static_cast<std::size_t>(rank_)]);
  impl_->derive_consume(seq);
  return out;
}

void Comm::revoke() const {
  const net::Time t = net::ThreadClock::bound() ? net::ThreadClock::get().now() : 0;
  if (impl_->revoke_at(t)) {
    world().fabric().stats().add_revoke();
    // A revoke is a recovery action: capture the events that provoked it in
    // the black box before the survivors rebuild (first dump wins).
    if (net::FlightRecorder* fr = world().flightrec()) {
      net::TraceEvent ev;
      ev.ts = t;
      ev.kind = net::TraceEv::kRankDown;
      ev.name = "Revoke";
      ev.rank = impl_->world_rank_of(rank_);
      ev.value = static_cast<std::uint64_t>(impl_->ctx_id);
      fr->record(ev);
      fr->dump("communicator revoked");
    }
  }
}

Comm Comm::shrink() const {
  auto& p = impl_->ft_join(detail::CommImpl::FtOp::kShrink, rank_, 0);
  const int nr = p.child_rank[static_cast<std::size_t>(rank_)];
  if (nr < 0) return Comm{};  // the caller's own rank was declared dead
  return Comm(p.child, nr);
}

Errc Comm::agree(std::uint32_t* flag) const {
  TMPI_REQUIRE(flag != nullptr, Errc::kInvalidArg, "agree flag must be non-null");
  auto& p = impl_->ft_join(detail::CommImpl::FtOp::kAgree, rank_, *flag);
  *flag = p.agree_value;
  return Errc::kSuccess;
}

std::vector<Comm> Comm::create_endpoints(int my_num_ep, const Info& info) const {
  TMPI_REQUIRE(my_num_ep >= 0, Errc::kInvalidArg, "negative endpoint count");
  detail::DeriveArgs a;
  a.num_ep = my_num_ep;
  a.info = info;
  std::uint64_t seq = 0;
  auto& p = impl_->derive_join(detail::DeriveOp::kEndpoints, rank_, std::move(a), &seq);
  std::vector<Comm> out;
  out.reserve(p.ep_result[static_cast<std::size_t>(rank_)].size());
  for (const auto& [impl, ep_rank] : p.ep_result[static_cast<std::size_t>(rank_)]) {
    out.emplace_back(impl, ep_rank);
  }
  impl_->derive_consume(seq);
  return out;
}

}  // namespace tmpi
