#ifndef TMPI_DATATYPE_H
#define TMPI_DATATYPE_H

#include <cstddef>
#include <cstdint>

#include "tmpi/types.h"

/// \file datatype.h
/// Predefined element datatypes and reduction application.
///
/// tmpi supports the fixed-size element types the reproduced workloads need;
/// user buffers are `count` contiguous elements of a Datatype.

namespace tmpi {

enum class TypeId : std::uint8_t {
  kByte,
  kChar,
  kInt32,
  kInt64,
  kUint64,
  kFloat,
  kDouble,
};

class Datatype {
 public:
  constexpr Datatype(TypeId id, std::size_t size) : id_(id), size_(size) {}

  [[nodiscard]] constexpr TypeId id() const { return id_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr std::size_t extent(int count) const {
    return size_ * static_cast<std::size_t>(count);
  }

  friend constexpr bool operator==(const Datatype& a, const Datatype& b) {
    return a.id_ == b.id_;
  }

 private:
  TypeId id_;
  std::size_t size_;
};

inline constexpr Datatype kByte{TypeId::kByte, 1};
inline constexpr Datatype kChar{TypeId::kChar, 1};
inline constexpr Datatype kInt32{TypeId::kInt32, 4};
inline constexpr Datatype kInt64{TypeId::kInt64, 8};
inline constexpr Datatype kUint64{TypeId::kUint64, 8};
inline constexpr Datatype kFloat{TypeId::kFloat, 4};
inline constexpr Datatype kDouble{TypeId::kDouble, 8};

const char* to_string(TypeId id);

/// Apply `inout[i] = inout[i] OP in[i]` elementwise for `count` elements.
/// kReplace overwrites, kNoOp leaves inout untouched.
void reduce_apply(Op op, Datatype dt, void* inout, const void* in, int count);

}  // namespace tmpi

#endif  // TMPI_DATATYPE_H
