#include "tmpi/transport.h"

#include <algorithm>

#include "net/fault.h"
#include "net/flightrec.h"
#include "net/liveness.h"
#include "net/metrics.h"
#include "net/pdes.h"
#include "net/slab_pool.h"
#include "tmpi/rebalancer.h"
#include "tmpi/world.h"

namespace tmpi::detail {

namespace {

/// Recording fan-out (DESIGN.md §14): the opt-in tracer and the always-on
/// flight recorder consume the same event stream from the choke points.
/// Neither touches a virtual clock, so recording can never shift times.
struct Sinks {
  net::TraceRecorder* tr = nullptr;
  net::FlightRecorder* fr = nullptr;
  explicit Sinks(World& w) : tr(w.tracer()), fr(w.flightrec()) {}
  [[nodiscard]] bool on() const { return tr != nullptr || fr != nullptr; }
  void record(const net::TraceEvent& e) const {
    if (tr != nullptr) tr->record(e);
    if (fr != nullptr) fr->record(e);
  }
};

/// Safe point (DESIGN.md §12): before the caller touches `v`'s hardware
/// context or matching engine, process every delivery queued for that
/// context so the state observed is exactly what serial inline processing
/// would have left. One atomic load when the shard is idle; no-op in serial
/// mode.
void pdes_drain_channel(World& w, int node, Vci& v) {
  if (net::PdesScheduler* ps = w.pdes()) {
    ps->drain(net::PdesScheduler::shard_key(node, v.ctx().id()));
  }
}

/// Global-stats tallies for one injected op. Shared by the fast and fault
/// paths so the two stay in agreement.
void tally_op(const OpDesc& op, net::NetStats* stats) {
  if (op.kind == OpKind::kRmaOp) {
    stats->add_rma(op.atomic);
  } else {
    stats->add_message(op.bytes);
    if (op.rendezvous) stats->add_rendezvous();
  }
}

/// Trace family of an op kind: collective fragments are p2p sends on the
/// wire (the collective span itself is recorded by coll_entry).
net::TraceOp trace_family(OpKind k) {
  switch (k) {
    case OpKind::kRmaOp: return net::TraceOp::kRma;
    case OpKind::kPartition: return net::TraceOp::kPartition;
    default: return net::TraceOp::kSend;
  }
}

/// Sender-side event skeleton for `op` on channel (src rank, vci).
net::TraceEvent trace_tx(const OpDesc& op, net::TraceEv kind, net::Time ts, int vci) {
  net::TraceEvent e;
  e.ts = ts;
  e.kind = kind;
  e.span = op.span;
  e.op = trace_family(op.kind);
  e.rank = op.src_world_rank;
  e.vci = vci;
  e.peer = op.dst_world_rank;
  e.tag = op.tag;
  e.value = op.bytes;
  return e;
}

/// Receiver-side event skeleton on channel (dst rank, vci).
net::TraceEvent trace_rx(const OpDesc& op, net::TraceEv kind, net::Time ts, int vci) {
  net::TraceEvent e;
  e.ts = ts;
  e.kind = kind;
  e.span = op.span;
  e.op = trace_family(op.kind);
  e.rank = op.dst_world_rank;
  e.vci = vci;
  e.peer = op.src_world_rank;
  e.tag = op.tag;
  e.value = op.bytes;
  return e;
}

/// Graceful degradation (DESIGN.md §7): fail `rank`'s `vci` stream over to a
/// fallback channel and migrate its queued matching state. No-op when the
/// stream is already redirected or the pool has no healthy fallback (the
/// stream then keeps using the degraded context — there is nowhere to go).
void fail_over_stream(World& w, int rank, int vci, net::VirtualClock& clk) {
  RankState& st = w.rank_state(rank);
  const int to = st.vcis.fail_over(vci);
  if (to < 0) return;
  net::NetStats* stats = &w.fabric().stats();
  const net::CostModel& cm = w.cost();
  Vci& from = st.vcis.at(vci);
  Vci& dst = st.vcis.at(to);
  // Migrate queued receives and unexpected messages under both VCI locks,
  // ordered by pool index so concurrent failovers cannot deadlock.
  Vci& first = vci < to ? from : dst;
  Vci& second = vci < to ? dst : from;
  net::ContentionLock::Guard g1(first.lock(), clk, cm, stats, first.chstats());
  net::ContentionLock::Guard g2(second.lock(), clk, cm, stats, second.chstats());
  dst.engine().absorb(from.engine());
  // A deposit that raced the redirect onto `to` before the merge moved the
  // matching posted receive over leaves a compatible pair stranded in the
  // destination engine; pair them while both locks are held.
  dst.engine().rematch(clk.now());
  stats->add_failover();
  if (from.chstats() != nullptr) from.chstats()->add_failover();
  if (const Sinks snk(w); snk.on()) {
    net::TraceEvent e;
    e.ts = clk.now();
    e.kind = net::TraceEv::kFailover;
    e.rank = rank;
    e.vci = vci;
    e.value = static_cast<std::uint64_t>(to);  // fallback channel
    snk.record(e);
  }
}

/// Count one op on channel (rank, vci), fire any due ctx-down event, and
/// return the VCI actually carrying the stream after redirects. Fault path
/// only (`fi` non-null). `clk` absorbs the failover's lock charges.
int fault_route(World& w, net::FaultInjector& fi, int rank, int vci, net::VirtualClock& clk,
                std::uint64_t* opidx_out = nullptr) {
  const std::uint64_t opidx = fi.channel_op(rank, vci);
  if (opidx_out != nullptr) *opidx_out = opidx;
  if (fi.plan().has_rank_down()) {
    // Event-driven liveness (DESIGN.md §13): every counted channel op doubles
    // as a heartbeat, and the op just counted may be the one that pushes
    // `rank` past its rank_down trigger. No VCI lock is held here, so the
    // failure propagation (queue purges, context down-marking) is safe.
    net::Liveness& live = w.fabric().liveness();
    if (!live.is_dead(rank)) live.beat(rank, clk.now());
    if (fi.rank_down_due(rank)) w.on_rank_failure(rank, clk.now());
  }
  if (fi.context_down_due(rank, vci, opidx)) fail_over_stream(w, rank, vci, clk);
  return w.rank_state(rank).vcis.resolve(vci);
}

}  // namespace

InjectResult Transport::inject(const OpDesc& op) {
  World& w = *w_;
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  auto& clk = net::ThreadClock::get();
  if (ProgressWatchdog* wd = w.watchdog()) wd->note_progress();

  // One-sided ops pay their software issue cost before touching the channel.
  if (op.kind == OpKind::kRmaOp) clk.advance(cm.rma_issue_ns);

  RankState& me = w.rank_state(op.src_world_rank);
  RankState& peer = w.rank_state(op.dst_world_rank);
  const std::size_t wire_bytes = op.rendezvous ? 0 : op.bytes;

  InjectResult r;
  r.vci_used = op.local_vci;
  const Sinks snk(w);

  net::FaultInjector* fi = w.fault_injector();
  if (fi == nullptr) {
    // Fast path — no FaultPlan active. Charge order identical to the
    // pre-fault transport; the golden suite pins it bit-exactly. Recording
    // reads clocks but never advances them, so tracing cannot shift times.
    Vci& lv = me.vcis.at(op.local_vci);
    pdes_drain_channel(w, me.node, lv);
    {
      net::ContentionLock::Guard g(lv.lock(), clk, cm, stats, lv.chstats());
      if (snk.on()) snk.record(trace_tx(op, net::TraceEv::kLockAcquired, clk.now(), op.local_vci));
      const net::Time t0 = clk.now();
      r.inject_done = lv.ctx().inject(clk, cm, lv.chstats());
      if (snk.on()) {
        net::TraceEvent e = trace_tx(op, net::TraceEv::kInject, t0, op.local_vci);
        e.dur = r.inject_done > t0 ? r.inject_done - t0 : 0;
        snk.record(e);
        // Injection latency (queueing behind earlier ops + tx occupancy) as
        // a per-channel gauge — the VCI occupancy timeline of DESIGN.md §9.
        net::TraceEvent gc = trace_tx(op, net::TraceEv::kCtxBacklog, t0, op.local_vci);
        gc.value = e.dur;
        snk.record(gc);
      }
    }
    tally_op(op, stats);
    r.arrival = r.inject_done + w.fabric().transfer_time(me.node, peer.node, wire_bytes);
    if (net::MetricsSampler* ms = w.metrics()) ms->maybe_sample(r.inject_done);
    if (Rebalancer* rb = w.rebalancer()) rb->maybe_rebalance(r.inject_done);
    return r;
  }

  // Fault path. Count this op on the sender's channel, honour a pending
  // ctx-down event, resolve any redirect, then transmit — retrying lost
  // attempts with exponential backoff until delivery or budget exhaustion.
  std::uint64_t opidx = 0;
  const int lvci = fault_route(w, *fi, op.src_world_rank, op.local_vci, clk, &opidx);
  r.vci_used = lvci;
  Vci& lv = me.vcis.at(lvci);

  // Rank-failure fast-fail (DESIGN.md §13): an op touching a dead rank never
  // reaches the wire. The op above still counted — death is part of the
  // channel's deterministic stream — and the caller fails the request with
  // kProcFailed at max(now, death time).
  {
    net::Liveness& live = w.fabric().liveness();
    if (live.any_dead()) {
      const int dead = live.is_dead(op.dst_world_rank)   ? op.dst_world_rank
                       : live.is_dead(op.src_world_rank) ? op.src_world_rank
                                                         : -1;
      if (dead >= 0) {
        r.proc_failed = true;
        r.dead_rank = dead;
        r.inject_done = clk.now();
        r.arrival = 0;
        stats->add_proc_failure();
        if (lv.chstats() != nullptr) lv.chstats()->add_proc_failure();
        if (snk.on()) {
          net::TraceEvent e = trace_tx(op, net::TraceEv::kRankDown, clk.now(), lvci);
          e.value = static_cast<std::uint64_t>(dead);
          snk.record(e);
        }
        return r;
      }
    }
  }
  pdes_drain_channel(w, me.node, lv);

  net::Time backoff = cm.retrans_backoff_ns;
  net::Time waited = 0;
  const int max_attempts = std::max(1, fi->plan().max_retries + 1);

  for (int attempt = 0;; ++attempt) {
    {
      net::ContentionLock::Guard g(lv.lock(), clk, cm, stats, lv.chstats());
      if (snk.on()) snk.record(trace_tx(op, net::TraceEv::kLockAcquired, clk.now(), lvci));
      const net::Time t0 = clk.now();
      r.inject_done = lv.ctx().inject(clk, cm, lv.chstats());
      if (snk.on()) {
        net::TraceEvent e = trace_tx(op, net::TraceEv::kInject, t0, lvci);
        e.dur = r.inject_done > t0 ? r.inject_done - t0 : 0;
        snk.record(e);
      }
    }
    r.attempts = attempt + 1;
    if (attempt == 0) tally_op(op, stats);

    const net::FaultVerdict v = fi->verdict(op.src_world_rank, lvci, opidx, attempt);
    if (v.action == net::FaultAction::kDeliver || v.action == net::FaultAction::kDelay) {
      if (v.action == net::FaultAction::kDelay) {
        stats->add_delay();
        if (lv.chstats() != nullptr) lv.chstats()->add_delay();
        if (snk.on()) {
          net::TraceEvent e = trace_tx(op, net::TraceEv::kDelay, r.inject_done, lvci);
          e.value = v.delay_ns;
          snk.record(e);
        }
      }
      r.arrival =
          r.inject_done + w.fabric().transfer_time(me.node, peer.node, wire_bytes) + v.delay_ns;
      if (net::MetricsSampler* ms = w.metrics()) ms->maybe_sample(r.inject_done);
      if (Rebalancer* rb = w.rebalancer()) rb->maybe_rebalance(r.inject_done);
      return r;
    }

    // The attempt was lost: a clean drop, or a corruption the receiver's
    // checksum discards (same timing as a drop, tallied separately).
    if (v.action == net::FaultAction::kDrop) {
      stats->add_drop();
      if (lv.chstats() != nullptr) lv.chstats()->add_drop();
      if (snk.on()) snk.record(trace_tx(op, net::TraceEv::kDrop, r.inject_done, lvci));
    } else {
      stats->add_corrupt();
      if (lv.chstats() != nullptr) lv.chstats()->add_corrupt();
      if (snk.on()) snk.record(trace_tx(op, net::TraceEv::kCorrupt, r.inject_done, lvci));
    }

    const bool budget_left =
        attempt + 1 < max_attempts &&
        (fi->plan().timeout_ns == 0 || waited + backoff <= fi->plan().timeout_ns);
    if (!budget_left) {
      stats->add_timeout();
      if (lv.chstats() != nullptr) lv.chstats()->add_timeout();
      if (snk.on()) snk.record(trace_tx(op, net::TraceEv::kTimeout, clk.now(), lvci));
      r.timed_out = true;
      r.arrival = 0;
      return r;
    }

    // Ack timer expires: wait the backoff in virtual time, then retransmit.
    clk.advance(backoff);
    waited += backoff;
    backoff = std::min(backoff * 2, cm.retrans_backoff_max_ns);
    stats->add_retransmit();
    if (lv.chstats() != nullptr) lv.chstats()->add_retransmit();
    if (snk.on()) snk.record(trace_tx(op, net::TraceEv::kRetransmit, clk.now(), lvci));
  }
}

/// Parallel-mode wrapper around deliver_now: everything the remote-side
/// pipeline needs is captured at enqueue time, so the event can run on any
/// scheduler thread (no bound ThreadClock — all times flow through
/// `arrival_`).
class Transport::DeliveryEvent final : public net::PdesEvent {
 public:
  DeliveryEvent(Transport* t, const OpDesc& op, Envelope&& env, net::Time arrival)
      : t_(t), op_(op), env_(std::move(env)), arrival_(arrival) {}

  void run() override {
    // The scheduler exists only when the unexpected cap is off, so the
    // deposit cannot be rejected; the sender already consumed `true`.
    (void)t_->deliver_now(op_, std::move(env_), arrival_);
  }

  // Parallel mode creates one DeliveryEvent per message; recycling them
  // through a slab keeps steady-state traffic heap-free (the allocation
  // budget alloc_steady_state_test pins in both execution modes). The class
  // is final, so the sized deallocation always sees sizeof(DeliveryEvent).
  static void* operator new(std::size_t n) {
    const int cls = net::SlabPool::class_for(n);
    return cls < 0 ? ::operator new(n) : static_cast<void*>(pool().get(cls));
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    const int cls = net::SlabPool::class_for(n);
    if (cls < 0) {
      ::operator delete(p);
    } else {
      pool().put(static_cast<std::byte*>(p), cls);
    }
  }

 private:
  static net::SlabPool& pool() {
    // Function-local static: shared by every World in the process, destroyed
    // after all of them (events never outlive their scheduler's shutdown).
    static net::SlabPool p;
    return p;
  }

  Transport* t_;
  OpDesc op_;
  Envelope env_;
  net::Time arrival_;
};

bool Transport::deliver(const OpDesc& op, Envelope&& env, net::Time arrival) {
  if (net::PdesScheduler* ps = w_->pdes()) {
    // Defer the remote-side pipeline to the destination context's shard. No
    // redirect resolution here: the scheduler is gated off whenever the
    // fault plan schedules ctx-down events, so op.remote_vci is the channel
    // that will carry the delivery (probabilistic drop/corrupt/delay
    // verdicts are decided sender-side, in inject()).
    RankState& peer = w_->rank_state(op.dst_world_rank);
    Vci& rv = peer.vcis.at(op.remote_vci);
    ps->enqueue(net::PdesScheduler::shard_key(peer.node, rv.ctx().id()),
                std::make_unique<DeliveryEvent>(this, op, std::move(env), arrival));
    return true;
  }
  return deliver_now(op, std::move(env), arrival);
}

bool Transport::deliver_now(const OpDesc& op, Envelope&& env, net::Time arrival) {
  World& w = *w_;
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  if (ProgressWatchdog* wd = w.watchdog()) wd->note_progress();

  // Arrival processing at the target VCI, on an arrival clock — the sender's
  // own virtual time is not consumed by remote-side matching. The receive
  // work occupies the target VCI's (duplex) hardware context, so inbound
  // traffic competes with the channel owner's own sends — the serialization
  // a shared communicator causes (Lessons 1-2).
  net::VirtualClock aclk(arrival);
  int rvci = op.remote_vci;
  if (net::FaultInjector* fi = w.fault_injector()) {
    rvci = fault_route(w, *fi, op.dst_world_rank, op.remote_vci, aclk);
  }
  {
    // The destination died while this message was on the wire (possibly on
    // this very delivery's op count): blackhole it. Credits go back — the
    // channel no longer flow-controls anything — and a rendezvous sender
    // learns the peer is gone instead of waiting forever for a CTS.
    net::Liveness& live = w.fabric().liveness();
    if (live.any_dead() && live.is_dead(op.dst_world_rank)) {
      if (env.eager_credit != nullptr) {
        env.eager_credit->fetch_add(1, std::memory_order_relaxed);
        env.eager_credit = nullptr;
      }
      if (env.send_req) {
        Status st;
        st.source = env.src;
        st.tag = env.tag;
        st.bytes = 0;
        env.send_req->try_finish_error(
            std::max(arrival, live.death_time(op.dst_world_rank)), st, Errc::kProcFailed);
      }
      stats->add_proc_failure();
      return true;
    }
  }
  const std::size_t cap = static_cast<std::size_t>(w.overload().unexpected_cap);
  VciPool& dst_pool = w.rank_state(op.dst_world_rank).vcis;
  // Adaptive remap consult (DESIGN.md §15): land the message on the channel
  // the communicator is mapped to *now*, not the one the sender routed
  // against. Null rebalancer (the default) keeps the op.remote_vci path and
  // its charge order bit-exact.
  Rebalancer* rb = w.rebalancer();
  if (rb != nullptr) {
    rvci = rb->current_vci(env.ctx_id, rvci);
    if (w.fault_injector() != nullptr) rvci = dst_pool.resolve(rvci);
  }
  const Sinks snk(w);
  bool accepted = true;
  std::size_t depth = 0;
  net::Time rx_done = arrival;
  net::Time dep_start = arrival;
  net::Time dep_done = arrival;
  Vci* rvp = nullptr;
  for (;;) {
    Vci& v = dst_pool.at(rvci);
    rvp = &v;
    v.ctx().receive(aclk, cm, v.chstats());
    rx_done = aclk.now();
    bool retry = false;
    {
      net::ContentionLock::Guard g(v.lock(), aclk, cm, stats, v.chstats());
      if (rb != nullptr) {
        // A rebalance epoch raced this delivery and already swept the old
        // channel: re-target so the deposit cannot strand behind the cutover.
        int latest = rb->current_vci(env.ctx_id, rvci);
        if (w.fault_injector() != nullptr) latest = dst_pool.resolve(latest);
        if (latest != rvci) {
          rvci = latest;
          retry = true;
        }
      }
      if (!retry) {
        dep_start = aclk.now();
        accepted = v.engine().deposit(std::move(env), aclk, cm, stats, cap);
        depth = v.engine().unexpected_depth();
        dep_done = aclk.now();
      }
    }
    if (!retry) break;
  }
  Vci& rv = *rvp;
  if (snk.on()) {
    // Receiver-side occupancy timeline: rx context busy, then the deposit
    // under the VCI lock, then the resulting unexpected-queue depth gauge.
    net::TraceEvent rx = trace_rx(op, net::TraceEv::kRxOccupy, arrival, rvci);
    rx.dur = rx_done > arrival ? rx_done - arrival : 0;
    snk.record(rx);
    net::TraceEvent dep = trace_rx(op, net::TraceEv::kDeposit, dep_start, rvci);
    dep.dur = dep_done > dep_start ? dep_done - dep_start : 0;
    snk.record(dep);
    net::TraceEvent gq = trace_rx(op, net::TraceEv::kUnexpectedDepth, dep_done, rvci);
    gq.value = depth;
    snk.record(gq);
    if (!accepted) snk.record(trace_rx(op, net::TraceEv::kOverflow, dep_done, rvci));
  }
  if (w.overload().enabled()) {
    stats->note_unexpected_depth(depth);
    if (rv.chstats() != nullptr) rv.chstats()->note_unexpected_depth(depth);
  }
  if (net::MetricsSampler* ms = w.metrics()) ms->maybe_sample(dep_done);
  if (rb != nullptr) rb->maybe_rebalance(dep_done);
  if (!accepted) {
    stats->add_overflow();
    if (rv.chstats() != nullptr) rv.chstats()->add_overflow();
    return false;
  }
  if (rv.chstats() != nullptr) rv.chstats()->add_deposit();
  rv.note_deposit();
  return true;
}

Transport::EagerGrant Transport::try_reserve_eager(int dst_world_rank, int remote_vci) {
  World& w = *w_;
  if (w.overload().eager_credits <= 0) return {};  // flow control off: free grant
  RankState& st = w.rank_state(dst_world_rank);
  VciPool& pool = st.vcis;
  int vci = remote_vci;
  if (w.fault_injector() != nullptr) vci = pool.resolve(remote_vci);
  Vci& v = pool.at(vci);
  // Queued deliveries can match posted receives and release credits; observe
  // the budget the serial engine would have shown at this point.
  pdes_drain_channel(w, st.node, v);
  std::atomic<int>& cell = v.eager_credits();
  int have = cell.load(std::memory_order_relaxed);
  while (have > 0) {
    if (cell.compare_exchange_weak(have, have - 1, std::memory_order_acq_rel)) {
      return {true, &cell};
    }
  }
  net::NetStats* stats = &w.fabric().stats();
  stats->add_credit_stall();
  if (v.chstats() != nullptr) v.chstats()->add_credit_stall();
  if (const Sinks snk(w); snk.on()) {
    net::TraceEvent e;
    e.ts = net::ThreadClock::bound() ? net::ThreadClock::get().now() : 0;
    e.kind = net::TraceEv::kCreditStall;
    e.op = net::TraceOp::kSend;
    e.rank = dst_world_rank;  // the stalled destination channel
    e.vci = vci;
    snk.record(e);
  }
  return {false, nullptr};
}

net::Time Transport::occupy_rx(const OpDesc& op, net::Time arrival) {
  World& w = *w_;
  net::VirtualClock aclk(arrival);
  int rvci = op.remote_vci;
  if (net::FaultInjector* fi = w.fault_injector()) {
    rvci = fault_route(w, *fi, op.dst_world_rank, op.remote_vci, aclk);
  }
  RankState& dst = w.rank_state(op.dst_world_rank);
  Vci& rv = dst.vcis.at(rvci);
  pdes_drain_channel(w, dst.node, rv);
  rv.ctx().receive(aclk, w.cost(), rv.chstats());
  if (const Sinks snk(w); snk.on()) {
    net::TraceEvent e = trace_rx(op, net::TraceEv::kRxOccupy, arrival, rvci);
    e.dur = aclk.now() > arrival ? aclk.now() - arrival : 0;
    snk.record(e);
  }
  return aclk.now();
}

void Transport::post_recv(int world_rank, int local_vci, PostedRecv pr) {
  World& w = *w_;
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  auto& clk = net::ThreadClock::get();
  if (ProgressWatchdog* wd = w.watchdog()) wd->note_progress();
  int vci = local_vci;
  if (net::FaultInjector* fi = w.fault_injector()) {
    vci = fault_route(w, *fi, world_rank, local_vci, clk);
  }
  RankState& st = w.rank_state(world_rank);
  // Adaptive remap consult (DESIGN.md §15): a receive must be posted to the
  // channel its communicator maps to right now, with an under-lock re-check
  // against the migrating epoch (same protocol as deliver_now).
  Rebalancer* rb = w.rebalancer();
  const int ctx_id = pr.ctx_id;
  if (rb != nullptr) {
    vci = rb->current_vci(ctx_id, vci);
    if (w.fault_injector() != nullptr) vci = st.vcis.resolve(vci);
  }
  const std::uint64_t span = pr.req != nullptr ? pr.req->trace_span : 0;
  const Tag tag = pr.tag;
  const int src_world = pr.src_world;
  for (;;) {
    Vci& v = st.vcis.at(vci);
    pdes_drain_channel(w, st.node, v);
    net::ContentionLock::Guard g(v.lock(), clk, cm, stats, v.chstats());
    if (rb != nullptr) {
      int latest = rb->current_vci(ctx_id, vci);
      if (w.fault_injector() != nullptr) latest = st.vcis.resolve(latest);
      if (latest != vci) {
        vci = latest;
        continue;
      }
    }
    v.engine().post_recv(std::move(pr), clk, cm, stats);
    // Close the purge-vs-post race (DESIGN.md §13): if the named source died
    // concurrently, the death-time purge may have walked this engine before
    // the entry above landed. Death is sticky, so a re-purge under the same
    // channel lock is exact — the entry fails with kProcFailed at max(post
    // time, death time), identical to what the purge itself would have
    // produced. Wildcard posts (src_world < 0) are never failed by rank death.
    if (src_world >= 0) {
      net::Liveness& live = w.fabric().liveness();
      if (live.any_dead() && live.is_dead(src_world)) {
        const std::size_t purged =
            v.engine().purge_rank(src_world, live.death_time(src_world));
        for (std::size_t i = 0; i < purged; ++i) {
          stats->add_proc_failure();
          if (v.chstats() != nullptr) v.chstats()->add_proc_failure();
        }
      }
    }
    break;
  }
  if (const Sinks snk(w); snk.on()) {
    net::TraceEvent e;
    e.ts = clk.now();
    e.kind = net::TraceEv::kPostRecv;
    e.op = net::TraceOp::kRecv;
    e.span = span;
    e.rank = world_rank;
    e.vci = vci;
    e.tag = tag;
    snk.record(e);
  }
}

bool Transport::probe(int world_rank, int local_vci, int ctx_id, int src, Tag tag, Status* st,
                      bool fastpath, int src_world) {
  World& w = *w_;
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  auto& clk = net::ThreadClock::get();
  int vci = local_vci;
  // Probes follow a redirect but do not advance the channel's op stream —
  // polling loops must not perturb the fault schedule.
  if (w.fault_injector() != nullptr) vci = w.rank_state(world_rank).vcis.resolve(local_vci);
  RankState& rst = w.rank_state(world_rank);
  Vci& v = rst.vcis.at(vci);
  pdes_drain_channel(w, rst.node, v);
  net::ContentionLock::Guard g(v.lock(), clk, cm, stats, v.chstats());
  const bool found =
      v.engine().probe_unexpected(ctx_id, src, tag, fastpath, clk, cm, stats, st);
  // Only successful probes are recorded: polling loops spin here and would
  // otherwise flood the ring with identical misses.
  if (found) {
    if (const Sinks snk(w); snk.on()) {
      net::TraceEvent e;
      e.ts = clk.now();
      e.kind = net::TraceEv::kProbe;
      e.op = net::TraceOp::kProbe;
      e.rank = world_rank;
      e.vci = vci;
      // World-rank attribution: `src` is a communicator rank, which goes
      // stale after shrink(); callers pass the translated world rank so the
      // trace names the same peer before and after recovery.
      e.peer = src_world;
      e.tag = tag;
      snk.record(e);
    }
  }
  return found;
}

net::NetStatsSnapshot Transport::snapshot() const {
  if (net::PdesScheduler* ps = w_->pdes()) ps->quiesce();  // global safe point
  return w_->fabric().stats().snapshot();
}

}  // namespace tmpi::detail
