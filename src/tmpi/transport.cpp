#include "tmpi/transport.h"

#include "tmpi/world.h"

namespace tmpi::detail {

InjectResult Transport::inject(const OpDesc& op) {
  World& w = *w_;
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  auto& clk = net::ThreadClock::get();

  // One-sided ops pay their software issue cost before touching the channel.
  if (op.kind == OpKind::kRmaOp) clk.advance(cm.rma_issue_ns);

  RankState& me = w.rank_state(op.src_world_rank);
  RankState& peer = w.rank_state(op.dst_world_rank);

  // Inject through the local VCI: lock (software serialization) + hardware
  // context occupancy.
  Vci& lv = me.vcis.at(op.local_vci);
  InjectResult r;
  {
    net::ContentionLock::Guard g(lv.lock(), clk, cm, stats, lv.chstats());
    r.inject_done = lv.ctx().inject(clk, cm, lv.chstats());
  }

  if (op.kind == OpKind::kRmaOp) {
    stats->add_rma(op.atomic);
  } else {
    stats->add_message(op.bytes);
    if (op.rendezvous) stats->add_rendezvous();
  }

  // Rendezvous: only the RTS header travels now; CTS + payload costs apply
  // after the match (carried in the envelope's rndv_extra_ns).
  const std::size_t wire_bytes = op.rendezvous ? 0 : op.bytes;
  r.arrival = r.inject_done + w.fabric().transfer_time(me.node, peer.node, wire_bytes);
  return r;
}

void Transport::deliver(const OpDesc& op, Envelope env, net::Time arrival) {
  World& w = *w_;
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();

  // Arrival processing at the target VCI, on an arrival clock — the sender's
  // own virtual time is not consumed by remote-side matching. The receive
  // work occupies the target VCI's (duplex) hardware context, so inbound
  // traffic competes with the channel owner's own sends — the serialization
  // a shared communicator causes (Lessons 1-2).
  Vci& rv = w.rank_state(op.dst_world_rank).vcis.at(op.remote_vci);
  net::VirtualClock aclk(arrival);
  rv.ctx().receive(aclk, cm, rv.chstats());
  {
    net::ContentionLock::Guard g(rv.lock(), aclk, cm, stats, rv.chstats());
    rv.engine().deposit(std::move(env), aclk, cm, stats);
  }
  if (rv.chstats() != nullptr) rv.chstats()->add_deposit();
  rv.note_deposit();
}

net::Time Transport::occupy_rx(const OpDesc& op, net::Time arrival) {
  Vci& rv = w_->rank_state(op.dst_world_rank).vcis.at(op.remote_vci);
  net::VirtualClock aclk(arrival);
  rv.ctx().receive(aclk, w_->cost(), rv.chstats());
  return aclk.now();
}

void Transport::post_recv(int world_rank, int local_vci, PostedRecv pr) {
  const net::CostModel& cm = w_->cost();
  net::NetStats* stats = &w_->fabric().stats();
  auto& clk = net::ThreadClock::get();
  Vci& v = w_->rank_state(world_rank).vcis.at(local_vci);
  net::ContentionLock::Guard g(v.lock(), clk, cm, stats, v.chstats());
  v.engine().post_recv(std::move(pr), clk, cm, stats);
}

bool Transport::probe(int world_rank, int local_vci, int ctx_id, int src, Tag tag, Status* st) {
  const net::CostModel& cm = w_->cost();
  net::NetStats* stats = &w_->fabric().stats();
  auto& clk = net::ThreadClock::get();
  Vci& v = w_->rank_state(world_rank).vcis.at(local_vci);
  net::ContentionLock::Guard g(v.lock(), clk, cm, stats, v.chstats());
  return v.engine().probe_unexpected(ctx_id, src, tag, clk, cm, stats, st);
}

net::NetStatsSnapshot Transport::snapshot() const { return w_->fabric().stats().snapshot(); }

}  // namespace tmpi::detail
