#include "tmpi/p2p.h"

#include <cstring>

#include "tmpi/error.h"
#include "tmpi/matching.h"
#include "tmpi/world.h"

namespace tmpi {

namespace {

using detail::Envelope;
using detail::PostedRecv;
using detail::ReqKind;
using detail::ReqState;
using detail::Route;

void validate_rank(const Comm& comm, int r, bool allow_any) {
  if (allow_any && r == kAnySource) return;
  TMPI_REQUIRE(r >= 0 && r < comm.size(), Errc::kInvalidArg, "rank out of range");
}

/// Common send path. `ctx_id` selects the matching context (user pt2p or an
/// internal one); `tag` is already validated by the caller. A non-null `req`
/// is completed instead of a fresh state (persistent sends).
Request isend_impl(const void* buf, std::size_t bytes, int ctx_id, int dst, Tag tag,
                   const Comm& comm, std::shared_ptr<ReqState> req = nullptr) {
  World& w = comm.world();
  const detail::CommImpl& c = *comm.impl();
  const Route route = detail::route_send(c, comm.rank(), dst, tag);

  const int my_wr = c.world_rank_of(comm.rank());
  const int dst_wr = c.world_rank_of(dst);
  detail::RankState& me = w.rank_state(my_wr);
  detail::RankState& peer = w.rank_state(dst_wr);
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  auto& clk = net::ThreadClock::get();

  if (!req) {
    req = std::make_shared<ReqState>();
    req->kind = ReqKind::kSend;
  }

  const bool rndv = bytes > cm.eager_threshold_bytes;
  const int src_node = me.node;
  const int dst_node = peer.node;

  // Inject through the local VCI: lock (software serialization) + hardware
  // context occupancy.
  detail::Vci& lv = me.vcis.at(route.local);
  net::Time inject_done = 0;
  {
    net::ContentionLock::Guard g(lv.lock(), clk, cm, stats);
    inject_done = lv.ctx().inject(clk, cm);
  }
  stats->add_message(bytes);

  Envelope env;
  env.ctx_id = ctx_id;
  env.src = comm.rank();
  env.tag = tag;
  env.bytes = bytes;
  net::Time arrival = 0;
  if (rndv) {
    stats->add_rendezvous();
    env.rendezvous = true;
    env.rndv_src = static_cast<const std::byte*>(buf);
    env.send_req = req;
    // RTS header travels empty; CTS + payload costs apply after the match.
    arrival = inject_done + w.fabric().transfer_time(src_node, dst_node, 0);
    env.rndv_extra_ns = w.fabric().transfer_time(src_node, dst_node, 0) +
                        w.fabric().transfer_time(src_node, dst_node, bytes);
  } else {
    env.payload.resize(bytes);
    if (bytes > 0) std::memcpy(env.payload.data(), buf, bytes);
    arrival = inject_done + w.fabric().transfer_time(src_node, dst_node, bytes);
    env.copy_ns = static_cast<net::Time>(static_cast<double>(bytes) /
                                         cm.shm_bandwidth_bytes_per_ns);
    // Eager: the send buffer is reusable once the message left the NIC.
    req->finish(inject_done);
  }

  // Arrival processing at the target VCI, on an arrival clock — the sender's
  // own virtual time is not consumed by remote-side matching. The receive
  // work occupies the target VCI's (duplex) hardware context, so inbound
  // traffic competes with the channel owner's own sends — the serialization
  // a shared communicator causes (Lessons 1-2).
  detail::Vci& rv = peer.vcis.at(route.remote);
  net::VirtualClock aclk(arrival);
  rv.ctx().receive(aclk, cm);
  {
    net::ContentionLock::Guard g(rv.lock(), aclk, cm, stats);
    rv.engine().deposit(std::move(env), aclk, cm, stats);
  }
  rv.note_deposit();
  return Request(req);
}

Request irecv_impl(void* buf, std::size_t capacity, int ctx_id, int src, Tag tag,
                   const Comm& comm, std::shared_ptr<ReqState> req = nullptr) {
  World& w = comm.world();
  const detail::CommImpl& c = *comm.impl();
  const int lvci = detail::route_recv(c, comm.rank(), src, tag);

  const int my_wr = c.world_rank_of(comm.rank());
  detail::RankState& me = w.rank_state(my_wr);
  const net::CostModel& cm = w.cost();
  net::NetStats* stats = &w.fabric().stats();
  auto& clk = net::ThreadClock::get();

  if (!req) {
    req = std::make_shared<ReqState>();
    req->kind = ReqKind::kRecv;
  }

  PostedRecv pr;
  pr.ctx_id = ctx_id;
  pr.src = src;
  pr.tag = tag;
  pr.buf = static_cast<std::byte*>(buf);
  pr.capacity = capacity;
  pr.req = req;

  detail::Vci& v = me.vcis.at(lvci);
  {
    net::ContentionLock::Guard g(v.lock(), clk, cm, stats);
    v.engine().post_recv(std::move(pr), clk, cm, stats);
  }
  return Request(req);
}

}  // namespace

Request isend(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  validate_rank(comm, dst, /*allow_any=*/false);
  World& w = comm.world();
  TMPI_REQUIRE(tag >= 0 && tag <= w.tag_ub(), Errc::kTagOverflow,
               "send tag exceeds tag_ub (Lesson 9)");
  detail::CallGuard guard(w.rank_state(comm.world_rank_of(comm.rank())), w.config().level);
  return isend_impl(buf, dt.extent(count), comm.impl()->ctx_id, dst, tag, comm);
}

Request irecv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  validate_rank(comm, src, /*allow_any=*/true);
  World& w = comm.world();
  TMPI_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= w.tag_ub()), Errc::kTagOverflow,
               "recv tag exceeds tag_ub (Lesson 9)");
  detail::CallGuard guard(w.rank_state(comm.world_rank_of(comm.rank())), w.config().level);
  return irecv_impl(buf, dt.extent(count), comm.impl()->ctx_id, src, tag, comm);
}

void send(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm) {
  isend(buf, count, dt, dst, tag, comm).wait();
}

Status recv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm) {
  return irecv(buf, count, dt, src, tag, comm).wait();
}

bool iprobe(int src, Tag tag, const Comm& comm, Status* st) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  validate_rank(comm, src, /*allow_any=*/true);
  World& w = comm.world();
  TMPI_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= w.tag_ub()), Errc::kTagOverflow,
               "probe tag exceeds tag_ub");
  const detail::CommImpl& c = *comm.impl();
  const int lvci = detail::route_recv(c, comm.rank(), src, tag);
  detail::RankState& me = w.rank_state(c.world_rank_of(comm.rank()));
  const net::CostModel& cm = w.cost();
  auto& clk = net::ThreadClock::get();
  detail::Vci& v = me.vcis.at(lvci);
  net::ContentionLock::Guard g(v.lock(), clk, cm, &w.fabric().stats());
  return v.engine().probe_unexpected(c.ctx_id, src, tag, clk, cm, &w.fabric().stats(), st);
}

Status probe(int src, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  const detail::CommImpl& c = *comm.impl();
  World& w = comm.world();
  const int lvci = detail::route_recv(c, comm.rank(), src, tag);
  detail::Vci& v = w.rank_state(c.world_rank_of(comm.rank())).vcis.at(lvci);
  Status st;
  for (;;) {
    const std::uint64_t seen = v.deposit_count();
    if (iprobe(src, tag, comm, &st)) return st;
    // Sleep until another message lands on this channel; no virtual-time
    // charge accumulates while waiting.
    v.wait_deposit_change(seen);
  }
}

Status sendrecv(const void* sbuf, int scount, Datatype sdt, int dst, Tag stag,  //
                void* rbuf, int rcount, Datatype rdt, int src, Tag rtag, const Comm& comm) {
  Request rr = irecv(rbuf, rcount, rdt, src, rtag, comm);
  Request sr = isend(sbuf, scount, sdt, dst, stag, comm);
  sr.wait();
  return rr.wait();
}

namespace detail {

Request isend_on_ctx(const void* buf, std::size_t bytes, int ctx_id, int dst, Tag tag,
                     const Comm& comm) {
  return isend_impl(buf, bytes, ctx_id, dst, tag, comm);
}

Request irecv_on_ctx(void* buf, std::size_t bytes, int ctx_id, int src, Tag tag,
                     const Comm& comm) {
  return irecv_impl(buf, bytes, ctx_id, src, tag, comm);
}

void isend_reusing(const std::shared_ptr<ReqState>& req, const void* buf, std::size_t bytes,
                   int ctx_id, int dst, Tag tag, const Comm& comm) {
  (void)isend_impl(buf, bytes, ctx_id, dst, tag, comm, req);
}

void irecv_reusing(const std::shared_ptr<ReqState>& req, void* buf, std::size_t capacity,
                   int ctx_id, int src, Tag tag, const Comm& comm) {
  (void)irecv_impl(buf, capacity, ctx_id, src, tag, comm, req);
}

}  // namespace detail

}  // namespace tmpi
