#include "tmpi/p2p.h"

#include <algorithm>
#include <cstring>

#include "net/liveness.h"
#include "tmpi/error.h"
#include "tmpi/matching.h"
#include "tmpi/transport.h"
#include "tmpi/world.h"

namespace tmpi {

namespace {

using detail::Envelope;
using detail::OpDesc;
using detail::OpKind;
using detail::PostedRecv;
using detail::ReqKind;
using detail::ReqState;
using detail::Route;

void validate_rank(const Comm& comm, int r, bool allow_any) {
  if (allow_any && r == kAnySource) return;
  TMPI_REQUIRE(r >= 0 && r < comm.size(), Errc::kInvalidArg, "rank out of range");
}

/// May traffic on `ctx_id` take the exact-key matching fast path (DESIGN.md
/// §10)? Either the communicator asserted both no-wildcard hints (Lesson 7)
/// — route_recv then rejects any wildcard — or this is internal collective
/// traffic, which never uses wildcards by construction.
bool fastpath_ctx(const detail::CommImpl& c, int ctx_id) {
  return ctx_id == c.coll_ctx_id || (c.no_any_source && c.no_any_tag);
}

/// A revoked communicator fails all new user point-to-point traffic
/// immediately with TMPI_ERR_PROC_FAILED (DESIGN.md §13), mirroring ULFM.
/// Internal contexts (collective fragments, shrink/agree) bypass this via
/// isend_on_ctx/irecv_on_ctx so recovery itself can still communicate.
Request fail_revoked(const Comm& comm, ReqKind kind, int peer, Tag tag) {
  auto req = detail::make_req_state();
  req->kind = kind;
  req->errors_return = comm.impl()->errhandler == ErrorHandler::kErrorsReturn;
  comm.world().fabric().stats().add_proc_failure();
  Status st;
  st.source = peer;
  st.tag = tag;
  st.bytes = 0;
  req->finish_error(net::ThreadClock::get().now(), st, Errc::kProcFailed);
  return Request(req);
}

/// Common send path. `ctx_id` selects the matching context (user pt2p or an
/// internal one); `tag` is already validated by the caller. A non-null `req`
/// is completed instead of a fresh state (persistent sends).
Request isend_impl(const void* buf, std::size_t bytes, int ctx_id, int dst, Tag tag,
                   const Comm& comm, std::shared_ptr<ReqState> req = nullptr) {
  World& w = comm.world();
  const detail::CommImpl& c = *comm.impl();
  const Route route = detail::route_send(c, comm.rank(), dst, tag);
  const net::CostModel& cm = w.cost();

  if (!req) {
    req = detail::make_req_state();
    req->kind = ReqKind::kSend;
  }

  const int src_wr = c.world_rank_of(comm.rank());
  const int dst_wr = c.world_rank_of(dst);

  // Tracing (DESIGN.md §9): open the op span before any phase decision so
  // the credit/rendezvous edge and every transport event nest under it.
  // Persistent sends get a fresh span per restart.
  net::TraceRecorder* tr = w.tracer();
  if (tr != nullptr) {
    req->tracer = tr;
    req->trace_span = tr->begin_span();
    req->trace_op = net::TraceOp::kSend;
    net::TraceEvent ev;
    ev.ts = net::ThreadClock::get().now();
    ev.kind = net::TraceEv::kPost;
    ev.op = net::TraceOp::kSend;
    ev.span = req->trace_span;
    ev.parent = net::ScopedTraceParent::current();
    ev.name = "Send";
    ev.rank = src_wr;
    ev.vci = route.local;
    ev.peer = dst_wr;
    ev.tag = tag;
    ev.value = bytes;
    tr->record(ev);
  }

  bool rndv = bytes > cm.eager_threshold_bytes;
  std::atomic<int>* credit = nullptr;
  if (!rndv) {
    const detail::Transport::EagerGrant grant = w.transport().try_reserve_eager(dst_wr, route.remote);
    if (grant.granted) {
      credit = grant.slot;
    } else {
      // Backpressure (DESIGN.md §8): the destination channel's eager credits
      // are spent, so the message degrades to rendezvous — the payload stays
      // in the sender's buffer until the receiver matches, instead of
      // growing the unexpected queue.
      rndv = true;
      net::ThreadClock::get().advance(cm.credit_stall_ns);
    }
  }
  if (tr != nullptr) {
    net::TraceEvent ev;
    ev.ts = net::ThreadClock::get().now();
    ev.kind = net::TraceEv::kCreditDecision;
    ev.op = net::TraceOp::kSend;
    ev.span = req->trace_span;
    ev.rank = src_wr;
    ev.vci = route.local;
    ev.peer = dst_wr;
    ev.tag = tag;
    ev.value = rndv ? 0 : 1;  // 1 = eager granted, 0 = rendezvous
    tr->record(ev);
  }

  // Error/watchdog metadata (DESIGN.md §8). Collective fragments keep the
  // throwing behaviour regardless of the comm's handler so the collective
  // entry wrapper can catch and translate; the watchdog covers both.
  req->errors_return =
      ctx_id == c.ctx_id && c.errhandler == ErrorHandler::kErrorsReturn;
  req->wd = w.watchdog();
  req->wd_rank = src_wr;
  req->wd_vci = route.local;
  req->wd_peer = dst_wr;
  req->wd_tag = tag;
  req->wd_op = "Send";

  OpDesc op;
  op.kind = ctx_id == c.coll_ctx_id ? OpKind::kCollFragment
                                    : (rndv ? OpKind::kRendezvousP2p : OpKind::kEagerP2p);
  op.rendezvous = rndv;
  op.bytes = bytes;
  op.src_world_rank = src_wr;
  op.dst_world_rank = dst_wr;
  op.local_vci = route.local;
  op.remote_vci = route.remote;
  op.span = req->trace_span;
  op.tag = tag;

  const detail::InjectResult ir = w.transport().inject(op);
  if (ir.proc_failed) {
    // Dead endpoint (DESIGN.md §13): nothing reached the wire. The completion
    // is pinned to max(now, death time) so serial and parallel execution
    // observe the same clock regardless of when the verdict landed.
    if (credit != nullptr) credit->fetch_add(1, std::memory_order_relaxed);
    Status st;
    st.source = comm.rank();
    st.tag = tag;
    st.bytes = 0;
    const net::Time death = w.fabric().liveness().death_time(ir.dead_rank);
    req->finish_error(std::max(net::ThreadClock::get().now(), death), st,
                      Errc::kProcFailed);
    return Request(req);
  }
  if (ir.timed_out) {
    // Retransmission budget exhausted (DESIGN.md §7): nothing reached the
    // wire. The request fails with TMPI_ERR_TIMEOUT; under errors-are-fatal
    // wait()/test() throw, under errors-return they report Status::err.
    if (credit != nullptr) credit->fetch_add(1, std::memory_order_relaxed);
    Status st;
    st.source = comm.rank();
    st.tag = tag;
    st.bytes = 0;
    req->finish_error(net::ThreadClock::get().now(), st, Errc::kTimeout);
    return Request(req);
  }
  const int src_node = w.rank_state(op.src_world_rank).node;
  const int dst_node = w.rank_state(op.dst_world_rank).node;

  Envelope env;
  env.ctx_id = ctx_id;
  env.src = comm.rank();
  env.src_world = src_wr;
  env.tag = tag;
  env.bytes = bytes;
  env.trace_span = req->trace_span;  // the causal edge the match will record
  env.fastpath = fastpath_ctx(c, ctx_id);
  if (rndv) {
    env.rendezvous = true;
    env.rndv_src = static_cast<const std::byte*>(buf);
    env.send_req = req;
    // CTS + payload costs apply after the match.
    env.rndv_extra_ns = w.fabric().transfer_time(src_node, dst_node, 0) +
                        w.fabric().transfer_time(src_node, dst_node, bytes);
  } else {
    // Slab-recycled staging block (DESIGN.md §10): acquired from the sending
    // channel's pool, released wherever the envelope is consumed.
    env.payload.acquire(w.rank_state(src_wr).vcis.at(route.local).payload_pool(), bytes);
    if (bytes > 0) std::memcpy(env.payload.data(), buf, bytes);
    env.copy_ns = static_cast<net::Time>(static_cast<double>(bytes) /
                                         cm.shm_bandwidth_bytes_per_ns);
    env.eager_credit = credit;  // released when the engine consumes the message
  }

  if (!w.transport().deliver(op, std::move(env), ir.arrival)) {
    // The destination's unexpected-queue cap rejected the message
    // (DESIGN.md §8); its eager credit was released inside the engine.
    Status st;
    st.source = comm.rank();
    st.tag = tag;
    st.bytes = 0;
    req->finish_error(net::ThreadClock::get().now(), st, Errc::kResourceExhausted);
    return Request(req);
  }
  // Eager: the send buffer is reusable once the message left the NIC. The
  // completion timestamp is still inject_done — delivery order only decides
  // whether the send succeeded at all (cap rejection above).
  if (!rndv) req->finish(ir.inject_done);
  return Request(req);
}

Request irecv_impl(void* buf, std::size_t capacity, int ctx_id, int src, Tag tag,
                   const Comm& comm, std::shared_ptr<ReqState> req = nullptr) {
  World& w = comm.world();
  const detail::CommImpl& c = *comm.impl();
  const int lvci = detail::route_recv(c, comm.rank(), src, tag);

  if (!req) {
    req = detail::make_req_state();
    req->kind = ReqKind::kRecv;
  }

  req->errors_return =
      ctx_id == c.ctx_id && c.errhandler == ErrorHandler::kErrorsReturn;
  req->wd = w.watchdog();
  req->wd_rank = c.world_rank_of(comm.rank());
  req->wd_vci = lvci;
  req->wd_peer = src == kAnySource ? -1 : c.world_rank_of(src);
  req->wd_tag = tag;
  req->wd_op = "Recv";

  if (net::TraceRecorder* tr = w.tracer()) {
    req->tracer = tr;
    req->trace_span = tr->begin_span();
    req->trace_op = net::TraceOp::kRecv;
    net::TraceEvent ev;
    ev.ts = net::ThreadClock::get().now();
    ev.kind = net::TraceEv::kPost;
    ev.op = net::TraceOp::kRecv;
    ev.span = req->trace_span;
    ev.parent = net::ScopedTraceParent::current();
    ev.name = "Recv";
    ev.rank = req->wd_rank;
    ev.vci = lvci;
    ev.peer = req->wd_peer;
    ev.tag = tag;
    ev.value = capacity;
    tr->record(ev);
  }

  PostedRecv pr;
  pr.ctx_id = ctx_id;
  pr.src = src;
  pr.src_world = src == kAnySource ? -1 : c.world_rank_of(src);
  pr.tag = tag;
  pr.buf = static_cast<std::byte*>(buf);
  pr.capacity = capacity;
  pr.req = req;
  pr.fastpath = fastpath_ctx(c, ctx_id);

  w.transport().post_recv(c.world_rank_of(comm.rank()), lvci, std::move(pr));
  return Request(req);
}

}  // namespace

Request isend(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  validate_rank(comm, dst, /*allow_any=*/false);
  World& w = comm.world();
  TMPI_REQUIRE(tag >= 0 && tag <= w.tag_ub(), Errc::kTagOverflow,
               "send tag exceeds tag_ub (Lesson 9)");
  detail::CallGuard guard(w.rank_state(comm.world_rank_of(comm.rank())), w.config().level);
  if (comm.impl()->revoked.load(std::memory_order_acquire)) {
    return fail_revoked(comm, ReqKind::kSend, comm.rank(), tag);
  }
  return isend_impl(buf, dt.extent(count), comm.impl()->ctx_id, dst, tag, comm);
}

Request irecv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  validate_rank(comm, src, /*allow_any=*/true);
  World& w = comm.world();
  TMPI_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= w.tag_ub()), Errc::kTagOverflow,
               "recv tag exceeds tag_ub (Lesson 9)");
  detail::CallGuard guard(w.rank_state(comm.world_rank_of(comm.rank())), w.config().level);
  if (comm.impl()->revoked.load(std::memory_order_acquire)) {
    return fail_revoked(comm, ReqKind::kRecv, src, tag);
  }
  return irecv_impl(buf, dt.extent(count), comm.impl()->ctx_id, src, tag, comm);
}

Errc send(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm) {
  return isend(buf, count, dt, dst, tag, comm).wait().err;
}

Status recv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm) {
  return irecv(buf, count, dt, src, tag, comm).wait();
}

bool iprobe(int src, Tag tag, const Comm& comm, Status* st) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  validate_rank(comm, src, /*allow_any=*/true);
  World& w = comm.world();
  TMPI_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= w.tag_ub()), Errc::kTagOverflow,
               "probe tag exceeds tag_ub");
  const detail::CommImpl& c = *comm.impl();
  const int lvci = detail::route_recv(c, comm.rank(), src, tag);
  return w.transport().probe(c.world_rank_of(comm.rank()), lvci, c.ctx_id, src, tag, st,
                             fastpath_ctx(c, c.ctx_id),
                             src == kAnySource ? -1 : c.world_rank_of(src));
}

Status probe(int src, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  const detail::CommImpl& c = *comm.impl();
  World& w = comm.world();
  detail::VciPool& pool = w.rank_state(c.world_rank_of(comm.rank())).vcis;
  Status st;
  for (;;) {
    // Re-route and re-resolve each round: a failover (or an adaptive
    // rebalance, DESIGN.md §15) mid-wait moves deposits — and their wakeups —
    // to another channel. route_recv is pure, so with a static mapping the
    // recompute changes nothing.
    const int lvci = detail::route_recv(c, comm.rank(), src, tag);
    detail::Vci& v = pool.at(pool.resolve(lvci));
    const std::uint64_t seen = v.deposit_count();
    if (iprobe(src, tag, comm, &st)) return st;
    // A named peer that died can never deposit again (its pending traffic
    // was purged, DESIGN.md §13): fail fast instead of sleeping forever.
    if (src != kAnySource) {
      net::Liveness& live = w.fabric().liveness();
      const int src_wr = c.world_rank_of(src);
      if (live.any_dead() && live.is_dead(src_wr)) {
        auto& clk = net::ThreadClock::get();
        const net::Time death = live.death_time(src_wr);
        if (death > clk.now()) clk.advance_to(death);
        w.fabric().stats().add_proc_failure();
        if (c.errhandler == ErrorHandler::kErrorsReturn) {
          st.source = src;
          st.tag = tag;
          st.bytes = 0;
          st.err = Errc::kProcFailed;
          return st;
        }
        fail(Errc::kProcFailed, "probe peer process failed");
      }
    }
    // Sleep until another message lands on this channel; no virtual-time
    // charge accumulates while waiting.
    v.wait_deposit_change(seen);
  }
}

Status sendrecv(const void* sbuf, int scount, Datatype sdt, int dst, Tag stag,  //
                void* rbuf, int rcount, Datatype rdt, int src, Tag rtag, const Comm& comm) {
  Request rr = irecv(rbuf, rcount, rdt, src, rtag, comm);
  Request sr = isend(sbuf, scount, sdt, dst, stag, comm);
  sr.wait();
  return rr.wait();
}

namespace detail {

Request isend_on_ctx(const void* buf, std::size_t bytes, int ctx_id, int dst, Tag tag,
                     const Comm& comm) {
  return isend_impl(buf, bytes, ctx_id, dst, tag, comm);
}

Request irecv_on_ctx(void* buf, std::size_t bytes, int ctx_id, int src, Tag tag,
                     const Comm& comm) {
  return irecv_impl(buf, bytes, ctx_id, src, tag, comm);
}

void isend_reusing(const std::shared_ptr<ReqState>& req, const void* buf, std::size_t bytes,
                   int ctx_id, int dst, Tag tag, const Comm& comm) {
  (void)isend_impl(buf, bytes, ctx_id, dst, tag, comm, req);
}

void irecv_reusing(const std::shared_ptr<ReqState>& req, void* buf, std::size_t capacity,
                   int ctx_id, int src, Tag tag, const Comm& comm) {
  (void)irecv_impl(buf, capacity, ctx_id, src, tag, comm, req);
}

Request channel_isend(const void* buf, int count, Datatype dt, int dst, Tag tag,
                      const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  comm.world().fabric().stats().add_channel_op();
  return isend(buf, count, dt, dst, tag, comm);
}

Request channel_irecv(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  comm.world().fabric().stats().add_channel_op();
  return irecv(buf, count, dt, src, tag, comm);
}

}  // namespace detail

}  // namespace tmpi
