#ifndef TMPI_TMPI_H
#define TMPI_TMPI_H

/// \file tmpi.h
/// Umbrella header for the tmpi runtime — a from-scratch MPI-subset
/// implementation over a simulated fabric, built to reproduce the design
/// space of "Lessons Learned on MPI+Threads Communication" (SC 2022):
/// communicators/tags/windows with MPI 4.0 Info hints, user-visible
/// endpoints, and partitioned communication, all mapped onto VCIs.

#include "tmpi/collectives.h"
#include "tmpi/comm.h"
#include "tmpi/datatype.h"
#include "tmpi/error.h"
#include "tmpi/info.h"
#include "tmpi/p2p.h"
#include "tmpi/partitioned.h"
#include "tmpi/persistent.h"
#include "tmpi/request.h"
#include "tmpi/rma.h"
#include "tmpi/status.h"
#include "tmpi/types.h"
#include "tmpi/world.h"

#endif  // TMPI_TMPI_H
