#include "tmpi/matching.h"

namespace tmpi::detail {

namespace {

/// Return an envelope's flow-control credit to its channel (DESIGN.md §8).
/// Idempotent per envelope: the pointer is nulled once released.
void release_credit(Envelope& env) {
  if (env.eager_credit != nullptr) {
    env.eager_credit->fetch_add(1, std::memory_order_relaxed);
    env.eager_credit = nullptr;
  }
}

}  // namespace

void MatchingEngine::deliver(Envelope& env, PostedRecv& pr, net::Time match_time) {
  release_credit(env);
  Status st;
  st.source = env.src;
  st.tag = env.tag;
  st.bytes = env.bytes;

  if (env.bytes > pr.capacity) {
    // Truncation: surface the error through the receive request. errored and
    // complete are published together (one lock, one notify) so a waiter can
    // never observe completion without the error. The sender is not at
    // fault: its request completes normally on both protocols.
    st.bytes = 0;
    pr.req->finish_error(match_time, st);
    if (env.rendezvous && env.send_req) env.send_req->finish(match_time);
    return;
  }

  if (env.rendezvous) {
    if (env.bytes > 0 && env.rndv_src != nullptr) {
      std::memcpy(pr.buf, env.rndv_src, env.bytes);
    }
    const net::Time done = match_time + env.rndv_extra_ns;
    pr.req->finish(done, st);
    if (env.send_req) env.send_req->finish(done);
  } else {
    if (env.bytes > 0) std::memcpy(pr.buf, env.payload.data(), env.bytes);
    pr.req->finish(match_time + env.copy_ns, st);
  }
}

bool MatchingEngine::deposit(Envelope env, net::VirtualClock& clk, const net::CostModel& cm,
                             net::NetStats* stats, std::size_t unexpected_cap) {
  std::uint64_t probes = 0;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    ++probes;
    clk.advance(cm.match_probe_ns);
    if (matches(*it, env)) {
      if (stats != nullptr) stats->add_match_probes(probes);
      const net::Time match_time = std::max(clk.now(), it->post_time);
      deliver(env, *it, match_time);
      posted_.erase(it);
      return true;
    }
  }
  if (stats != nullptr) stats->add_match_probes(probes);
  if (unexpected_cap > 0 && unexpected_.size() >= unexpected_cap) {
    // Hard cap (DESIGN.md §8): the message is rejected, not queued. No
    // insert cost is charged — the NIC refused the work.
    release_credit(env);
    return false;
  }
  if (stats != nullptr) stats->add_unexpected();
  clk.advance(cm.match_insert_ns);
  env.ready_time = clk.now();
  unexpected_.push_back(std::move(env));
  return true;
}

bool MatchingEngine::probe_unexpected(int ctx_id, int src, Tag tag, net::VirtualClock& clk,
                                      const net::CostModel& cm, net::NetStats* stats,
                                      Status* st) const {
  PostedRecv probe;
  probe.ctx_id = ctx_id;
  probe.src = src;
  probe.tag = tag;
  std::uint64_t probes = 0;
  for (const Envelope& env : unexpected_) {
    ++probes;
    clk.advance(cm.match_probe_ns);
    if (matches(probe, env)) {
      if (stats != nullptr) stats->add_match_probes(probes);
      if (st != nullptr) {
        st->source = env.src;
        st->tag = env.tag;
        st->bytes = env.bytes;
      }
      clk.advance_to(env.ready_time);
      return true;
    }
  }
  if (stats != nullptr) stats->add_match_probes(probes);
  return false;
}

void MatchingEngine::post_recv(PostedRecv pr, net::VirtualClock& clk, const net::CostModel& cm,
                               net::NetStats* stats) {
  std::uint64_t probes = 0;
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    ++probes;
    clk.advance(cm.match_probe_ns);
    if (matches(pr, *it)) {
      if (stats != nullptr) stats->add_match_probes(probes);
      const net::Time match_time = std::max(clk.now(), it->ready_time);
      pr.post_time = clk.now();
      deliver(*it, pr, match_time);
      unexpected_.erase(it);
      return;
    }
  }
  if (stats != nullptr) stats->add_match_probes(probes);
  clk.advance(cm.match_insert_ns);
  pr.post_time = clk.now();
  posted_.push_back(std::move(pr));
}

void MatchingEngine::absorb(MatchingEngine& from) {
  // Per-element scan-splice rather than std::list::merge: the queues are not
  // guaranteed internally sorted (arrival clocks of different senders are
  // independent), and merge's behaviour is undefined on unsorted input. Each
  // migrated entry lands before the first entry of this engine with a
  // strictly later enqueue time, so post-failover matching order is what a
  // single channel observing both histories would have produced.
  auto merge_by = [](auto& dst, auto& src, auto enqueue_time) {
    while (!src.empty()) {
      const net::Time t = enqueue_time(src.front());
      auto pos = dst.begin();
      while (pos != dst.end() && enqueue_time(*pos) <= t) ++pos;
      dst.splice(pos, src, src.begin());
    }
  };
  merge_by(unexpected_, from.unexpected_,
           [](const Envelope& e) { return e.ready_time; });
  merge_by(posted_, from.posted_, [](const PostedRecv& p) { return p.post_time; });
}

}  // namespace tmpi::detail
