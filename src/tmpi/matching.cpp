#include "tmpi/matching.h"

namespace tmpi::detail {

namespace {

/// Return an envelope's flow-control credit to its channel (DESIGN.md §8).
/// Idempotent per envelope: the pointer is nulled once released.
void release_credit(Envelope& env) {
  if (env.eager_credit != nullptr) {
    env.eager_credit->fetch_add(1, std::memory_order_relaxed);
    env.eager_credit = nullptr;
  }
}

}  // namespace

void MatchingEngine::configure(MatchPolicy policy, net::ChannelStats* ch) {
  policy_ = policy;
  ch_ = ch;
  latched_ = policy == MatchPolicy::kList;
  const bool positions = !latched_;
  posted_.set_positions_enabled(positions);
  unexpected_.set_positions_enabled(positions);
}

void MatchingEngine::latch() {
  if (latched_) return;
  latched_ = true;
  posted_.drop_index();
  unexpected_.drop_index();
  posted_.set_positions_enabled(false);
  unexpected_.set_positions_enabled(false);
}

void MatchingEngine::count_bucket(net::NetStats* stats, bool hit) const {
  if (stats != nullptr) {
    hit ? stats->add_bucket_hit() : stats->add_bucket_miss();
  }
  if (ch_ != nullptr) {
    hit ? ch_->add_bucket_hit() : ch_->add_bucket_miss();
  }
}

void MatchingEngine::count_fallback(net::NetStats* stats) const {
  if (stats != nullptr) stats->add_wildcard_fallback();
  if (ch_ != nullptr) ch_->add_wildcard_fallback();
}

void MatchingEngine::deliver(Envelope& env, PostedRecv& pr, net::Time match_time) {
  release_credit(env);
  // The cross-rank causal edge (DESIGN.md §14): the receive's span adopts
  // the send's span as parent at the moment of the match. Recorded through
  // the receive request's recorder — the engine itself has no tracer — and
  // charges no virtual time.
  if (pr.req->tracer != nullptr) {
    net::TraceEvent ev;
    ev.ts = match_time;
    ev.kind = net::TraceEv::kMatch;
    ev.op = pr.req->trace_op;
    ev.span = pr.req->trace_span;
    ev.parent = env.trace_span;
    ev.rank = pr.req->wd_rank;
    ev.vci = pr.req->wd_vci;
    ev.peer = env.src_world;
    ev.tag = static_cast<std::int32_t>(env.tag);
    ev.value = env.bytes;
    pr.req->tracer->record(ev);
  }
  Status st;
  st.source = env.src;
  st.tag = env.tag;
  st.bytes = env.bytes;

  if (env.bytes > pr.capacity) {
    // Truncation: surface the error through the receive request. errored and
    // complete are published together (one lock, one notify) so a waiter can
    // never observe completion without the error. The sender is not at
    // fault: its request completes normally on both protocols.
    st.bytes = 0;
    pr.req->finish_error(match_time, st);
    if (env.rendezvous && env.send_req) env.send_req->finish(match_time);
    return;
  }

  if (env.rendezvous) {
    if (env.bytes > 0 && env.rndv_src != nullptr) {
      std::memcpy(pr.buf, env.rndv_src, env.bytes);
    }
    const net::Time done = match_time + env.rndv_extra_ns;
    pr.req->finish(done, st);
    if (env.send_req) env.send_req->finish(done);
  } else {
    if (env.bytes > 0) std::memcpy(pr.buf, env.payload.data(), env.bytes);
    pr.req->finish(match_time + env.copy_ns, st);
  }
}

bool MatchingEngine::enqueue_unexpected(Envelope&& env, bool indexed,
                                        net::VirtualClock& clk, const net::CostModel& cm,
                                        net::NetStats* stats, std::size_t unexpected_cap) {
  if (unexpected_cap > 0 && unexpected_.size() >= unexpected_cap) {
    // Hard cap (DESIGN.md §8): the message is rejected, not queued. No
    // insert cost is charged — the NIC refused the work.
    release_credit(env);
    return false;
  }
  if (stats != nullptr) stats->add_unexpected();
  clk.advance(cm.match_insert_ns);
  env.ready_time = clk.now();
  const MatchKey key{env.ctx_id, env.src, env.tag};
  unexpected_.push_back(std::move(env), key, indexed);
  return true;
}

bool MatchingEngine::deposit(Envelope&& env, net::VirtualClock& clk,
                             const net::CostModel& cm, net::NetStats* stats,
                             std::size_t unexpected_cap) {
  if (use_bucket(env.src, env.tag, env.fastpath)) {
    // Exact-key fast path: the bucket FIFO head is the earliest compatible
    // posted receive (no wildcard can be pending — a wildcard post would
    // have latched). Virtual time is charged for the probe count the
    // ordered scan would have made: the match's 1-based insertion-order
    // position, or the full queue length on a miss.
    const MatchKey key{env.ctx_id, env.src, env.tag};
    if (auto* n = posted_.find_bucket(key)) {
      const std::uint64_t probes = posted_.position(n);
      clk.advance(probes * cm.match_probe_ns);
      count_bucket(stats, true);
      if (stats != nullptr) stats->add_match_probes(probes);
      const net::Time match_time = std::max(clk.now(), n->item.post_time);
      deliver(env, n->item, match_time);
      posted_.erase(n);
      return true;
    }
    const std::uint64_t probes = posted_.size();
    clk.advance(probes * cm.match_probe_ns);
    count_bucket(stats, false);
    if (stats != nullptr) stats->add_match_probes(probes);
    return enqueue_unexpected(std::move(env), /*indexed=*/true, clk, cm, stats,
                              unexpected_cap);
  }

  count_fallback(stats);
  std::uint64_t probes = 0;
  for (auto* it = posted_.head(); it != nullptr; it = it->next) {
    ++probes;
    clk.advance(cm.match_probe_ns);
    if (matches(it->item, env)) {
      if (stats != nullptr) stats->add_match_probes(probes);
      const net::Time match_time = std::max(clk.now(), it->item.post_time);
      deliver(env, it->item, match_time);
      posted_.erase(it);
      return true;
    }
  }
  if (stats != nullptr) stats->add_match_probes(probes);
  return enqueue_unexpected(std::move(env),
                            index_entry(env.src, env.tag, env.fastpath), clk, cm,
                            stats, unexpected_cap);
}

bool MatchingEngine::probe_unexpected(int ctx_id, int src, Tag tag, bool fastpath,
                                      net::VirtualClock& clk, const net::CostModel& cm,
                                      net::NetStats* stats, Status* st) const {
  if (use_bucket(src, tag, fastpath)) {
    const MatchKey key{ctx_id, src, tag};
    if (const auto* n = unexpected_.find_bucket(key)) {
      const std::uint64_t probes = unexpected_.position(n);
      clk.advance(probes * cm.match_probe_ns);
      count_bucket(stats, true);
      if (stats != nullptr) stats->add_match_probes(probes);
      if (st != nullptr) {
        st->source = n->item.src;
        st->tag = n->item.tag;
        st->bytes = n->item.bytes;
      }
      clk.advance_to(n->item.ready_time);
      return true;
    }
    const std::uint64_t probes = unexpected_.size();
    clk.advance(probes * cm.match_probe_ns);
    count_bucket(stats, false);
    if (stats != nullptr) stats->add_match_probes(probes);
    return false;
  }

  count_fallback(stats);
  PostedRecv probe;
  probe.ctx_id = ctx_id;
  probe.src = src;
  probe.tag = tag;
  std::uint64_t probes = 0;
  for (const auto* it = unexpected_.head(); it != nullptr; it = it->next) {
    ++probes;
    clk.advance(cm.match_probe_ns);
    if (matches(probe, it->item)) {
      if (stats != nullptr) stats->add_match_probes(probes);
      if (st != nullptr) {
        st->source = it->item.src;
        st->tag = it->item.tag;
        st->bytes = it->item.bytes;
      }
      clk.advance_to(it->item.ready_time);
      return true;
    }
  }
  if (stats != nullptr) stats->add_match_probes(probes);
  return false;
}

void MatchingEngine::post_recv(PostedRecv pr, net::VirtualClock& clk,
                               const net::CostModel& cm, net::NetStats* stats) {
  if (pr.src == kAnySource || pr.tag == kAnyTag) latch();

  if (use_bucket(pr.src, pr.tag, pr.fastpath)) {
    const MatchKey key{pr.ctx_id, pr.src, pr.tag};
    if (auto* n = unexpected_.find_bucket(key)) {
      const std::uint64_t probes = unexpected_.position(n);
      clk.advance(probes * cm.match_probe_ns);
      count_bucket(stats, true);
      if (stats != nullptr) stats->add_match_probes(probes);
      const net::Time match_time = std::max(clk.now(), n->item.ready_time);
      pr.post_time = clk.now();
      deliver(n->item, pr, match_time);
      unexpected_.erase(n);
      return;
    }
    const std::uint64_t probes = unexpected_.size();
    clk.advance(probes * cm.match_probe_ns);
    count_bucket(stats, false);
    if (stats != nullptr) stats->add_match_probes(probes);
    clk.advance(cm.match_insert_ns);
    pr.post_time = clk.now();
    posted_.push_back(std::move(pr), key, /*indexed=*/true);
    return;
  }

  count_fallback(stats);
  std::uint64_t probes = 0;
  for (auto* it = unexpected_.head(); it != nullptr; it = it->next) {
    ++probes;
    clk.advance(cm.match_probe_ns);
    if (matches(pr, it->item)) {
      if (stats != nullptr) stats->add_match_probes(probes);
      const net::Time match_time = std::max(clk.now(), it->item.ready_time);
      pr.post_time = clk.now();
      deliver(it->item, pr, match_time);
      unexpected_.erase(it);
      return;
    }
  }
  if (stats != nullptr) stats->add_match_probes(probes);
  clk.advance(cm.match_insert_ns);
  pr.post_time = clk.now();
  const MatchKey key{pr.ctx_id, pr.src, pr.tag};
  const bool indexed = index_entry(pr.src, pr.tag, pr.fastpath);
  posted_.push_back(std::move(pr), key, indexed);
}

void MatchingEngine::absorb(MatchingEngine& from) {
  // A latched (or list-policy) source engine may hold entries that were
  // posted as wildcards; the merged engine must stay on the ordered path.
  if (from.latched_) latch();

  // Strip both overlays, merge the ordered lists with seed semantics, then
  // re-index whatever still qualifies. Failover is the cold path; the O(n)
  // rebuild keeps every hot-path invariant local to one queue.
  posted_.drop_index();
  unexpected_.drop_index();
  from.posted_.drop_index();
  from.unexpected_.drop_index();

  unexpected_.absorb(from.unexpected_, [](const Envelope& e) { return e.ready_time; });
  posted_.absorb(from.posted_, [](const PostedRecv& p) { return p.post_time; });

  if (!latched_) {
    unexpected_.reindex(
        [this](const Envelope& e) { return index_entry(e.src, e.tag, e.fastpath); });
    posted_.reindex(
        [this](const PostedRecv& p) { return index_entry(p.src, p.tag, p.fastpath); });
  }
}

std::size_t MatchingEngine::absorb_ctx(MatchingEngine& from, int ctx_a, int ctx_b,
                                       int ctx_c) {
  // Same mode discipline as absorb(): a latched source may hold wildcard
  // posts on the migrating contexts, so the merged engine must stay on the
  // ordered path.
  if (from.latched_) latch();

  posted_.drop_index();
  unexpected_.drop_index();
  from.posted_.drop_index();
  from.unexpected_.drop_index();

  const auto wants = [ctx_a, ctx_b, ctx_c](int ctx) {
    return ctx == ctx_a || ctx == ctx_b || ctx == ctx_c;
  };
  std::size_t moved = unexpected_.absorb_if(
      from.unexpected_, [](const Envelope& e) { return e.ready_time; },
      [&wants](const Envelope& e) { return wants(e.ctx_id); });
  moved += posted_.absorb_if(
      from.posted_, [](const PostedRecv& p) { return p.post_time; },
      [&wants](const PostedRecv& p) { return wants(p.ctx_id); });

  // Unlike failover, `from` keeps its other contexts' entries — both engines
  // need their index overlays rebuilt.
  if (!latched_) {
    unexpected_.reindex(
        [this](const Envelope& e) { return index_entry(e.src, e.tag, e.fastpath); });
    posted_.reindex(
        [this](const PostedRecv& p) { return index_entry(p.src, p.tag, p.fastpath); });
  }
  if (!from.latched_) {
    from.unexpected_.reindex(
        [&from](const Envelope& e) { return from.index_entry(e.src, e.tag, e.fastpath); });
    from.posted_.reindex(
        [&from](const PostedRecv& p) { return from.index_entry(p.src, p.tag, p.fastpath); });
  }
  return moved;
}

std::size_t MatchingEngine::rematch(net::Time now) {
  std::size_t paired = 0;
  for (auto* p = posted_.head(); p != nullptr;) {
    auto* pnext = p->next;
    for (auto* u = unexpected_.head(); u != nullptr; u = u->next) {
      if (!matches(p->item, u->item)) continue;
      const net::Time match_time =
          std::max({now, p->item.post_time, u->item.ready_time});
      deliver(u->item, p->item, match_time);
      unexpected_.erase(u);
      posted_.erase(p);
      ++paired;
      break;
    }
    p = pnext;
  }
  return paired;
}

void MatchingEngine::clear() {
  posted_.clear();
  unexpected_.clear();
}

std::size_t MatchingEngine::purge_rank(int world_rank, net::Time death_time) {
  std::size_t purged = 0;
  for (auto* n = unexpected_.head(); n != nullptr;) {
    auto* next = n->next;
    if (n->item.src_world == world_rank) {
      release_credit(n->item);
      if (n->item.rendezvous && n->item.send_req) {
        // The payload will never be pulled out of the dead-bound sender; its
        // request learns the peer is gone instead of waiting for a CTS.
        Status st;
        st.source = n->item.src;
        st.tag = n->item.tag;
        st.bytes = 0;
        n->item.send_req->try_finish_error(std::max(n->item.ready_time, death_time), st,
                                           Errc::kProcFailed);
      }
      unexpected_.erase(n);
      ++purged;
    }
    n = next;
  }
  for (auto* n = posted_.head(); n != nullptr;) {
    auto* next = n->next;
    if (n->item.src_world == world_rank) {
      Status st;
      st.source = n->item.src;
      st.tag = n->item.tag;
      st.bytes = 0;
      if (n->item.req) {
        n->item.req->try_finish_error(std::max(n->item.post_time, death_time), st,
                                      Errc::kProcFailed);
      }
      posted_.erase(n);
      ++purged;
    }
    n = next;
  }
  return purged;
}

}  // namespace tmpi::detail
