#ifndef TMPI_PARTITIONED_H
#define TMPI_PARTITIONED_H

#include "tmpi/comm.h"
#include "tmpi/datatype.h"
#include "tmpi/info.h"
#include "tmpi/request.h"

/// \file partitioned.h
/// MPI 4.0 partitioned point-to-point communication.
///
/// One persistent message, `partitions` equal data partitions, one *shared*
/// request. Threads contribute partitions with pready() and poll arrival with
/// parrived(); both go through the request's shared lock — the structural
/// contention/synchronization point Lesson 14 identifies. Matching happens
/// once per channel (at initialization), reproducing the O(1) matching-cost
/// advantage partitioned communication was introduced for.
///
/// Deviations from MPI 4.0 (documented in DESIGN.md): send- and receive-side
/// partition counts must be equal; receives cannot use wildcards (as in the
/// standard, where partitioned receives have no wildcard form).
///
/// Info keys on *_init: `tmpi_part_vcis` = N spreads partitions round-robin
/// over N dedicated VCIs (the "partitions could map to distinct network
/// resources" extension the paper says is unstudied; our E9 bench studies it).

namespace tmpi {

/// Create a persistent partitioned send of `partitions` partitions, each of
/// `count` elements of `dt`, to `dst` with `tag`.
Request psend_init(const void* buf, int partitions, int count, Datatype dt, int dst, Tag tag,
                   const Comm& comm, const Info& info = {});

/// Create the matching persistent partitioned receive.
Request precv_init(void* buf, int partitions, int count, Datatype dt, int src, Tag tag,
                   const Comm& comm, const Info& info = {});

/// (start()/startall() live in request.h: partitioned requests activate via
/// MPI_Start like persistent ones; all partitions become not-ready.)

/// Mark partition `partition` of an active partitioned send ready; the
/// partition's data is transferred. Callable concurrently from many threads.
/// Returns kSuccess, or kTimeout when the partition never reached the wire
/// (DESIGN.md §7/§8) — the whole request is failed in that case.
Errc pready(int partition, Request& req);

/// Check whether partition `partition` of an active partitioned receive has
/// arrived. Callable concurrently from many threads. On success the caller's
/// virtual clock advances to the partition's arrival time.
bool parrived(Request& req, int partition);

/// Extension: block until the partition arrives (equivalent to a parrived
/// poll loop, but deterministic in virtual time — it charges one shared-lock
/// round instead of a host-scheduling-dependent number of polls). If the
/// request fails while waiting (fault path, watchdog trip), returns the
/// failure code on an errors-return communicator and throws otherwise.
Errc await_partition(Request& req, int partition);

}  // namespace tmpi

#endif  // TMPI_PARTITIONED_H
