#ifndef TMPI_COLLECTIVES_H
#define TMPI_COLLECTIVES_H

#include "tmpi/comm.h"
#include "tmpi/datatype.h"

/// \file collectives.h
/// Collective operations.
///
/// MPI requires collectives on one communicator to be issued serially per
/// rank; violating this throws Errc::kConcurrentCollective (the constraint
/// that forces the per-thread-communicator pattern of Fig. 7). On an
/// endpoints communicator every endpoint participates as a rank, so all
/// threads of a process can join a *single* collective through their own
/// endpoints — the library then performs both the internode and intranode
/// portions (Lesson 18).
///
/// The default "hier" algorithm is node-aware (intranode shared-memory step,
/// internode step between node leaders); `tmpi_coll_algorithm=flat` selects
/// topology-oblivious algorithms for ablation.
///
/// Every collective returns Errc (MPI-style). On the default
/// errors-are-fatal handler failures throw, so the return value is always
/// kSuccess and existing call sites may ignore it; on an errors-return
/// communicator (DESIGN.md §8) a failure — kTimeout under injected loss,
/// kResourceExhausted at a channel cap — comes back as the return code.

namespace tmpi {

Errc barrier(const Comm& comm);
Errc bcast(void* buf, int count, Datatype dt, int root, const Comm& comm);
Errc reduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, int root,
            const Comm& comm);
Errc allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, const Comm& comm);

/// Gather `scount` elements from every rank into rank-order blocks of `rbuf`
/// at the root (`rbuf` significant only at root).
Errc gather(const void* sbuf, int scount, Datatype dt, void* rbuf, int root, const Comm& comm);

/// Scatter rank-order blocks of `sbuf` (significant only at root), `rcount`
/// elements to each rank.
Errc scatter(const void* sbuf, void* rbuf, int rcount, Datatype dt, int root, const Comm& comm);

/// All ranks receive every rank's `scount`-element block, rank-ordered.
Errc allgather(const void* sbuf, int scount, Datatype dt, void* rbuf, const Comm& comm);

/// Personalized all-to-all exchange of `scount`-element blocks.
Errc alltoall(const void* sbuf, int scount, Datatype dt, void* rbuf, const Comm& comm);

/// Elementwise reduction of size*rcount elements; rank r receives block r.
Errc reduce_scatter_block(const void* sbuf, void* rbuf, int rcount, Datatype dt, Op op,
                          const Comm& comm);

/// Inclusive prefix reduction: rank r receives op over ranks 0..r.
Errc scan(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, const Comm& comm);

/// Exclusive prefix reduction: rank r receives op over ranks 0..r-1
/// (rank 0's rbuf is left untouched, as in MPI).
Errc exscan(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, const Comm& comm);

/// Variable-count gather: rank r contributes counts[r] elements; the root
/// receives them at displs[r] (element offsets). counts/displs significant
/// only at the root, except counts[comm.rank()] which every rank must pass
/// consistently via `scount`.
Errc gatherv(const void* sbuf, int scount, Datatype dt, void* rbuf, const int* counts,
             const int* displs, int root, const Comm& comm);

/// Variable-count scatter (inverse of gatherv).
Errc scatterv(const void* sbuf, const int* counts, const int* displs, void* rbuf, int rcount,
              Datatype dt, int root, const Comm& comm);

/// Variable-count allgather: counts/displs are significant (and identical)
/// on every rank.
Errc allgatherv(const void* sbuf, int scount, Datatype dt, void* rbuf, const int* counts,
                const int* displs, const Comm& comm);

/// Variable-count personalized all-to-all: rank r sends scounts[d] elements
/// from sdispls[d] to each d, and receives rcounts[s] at rdispls[s] from
/// each s. All arrays are per-rank local views (as in MPI_Alltoallv).
Errc alltoallv(const void* sbuf, const int* scounts, const int* sdispls, void* rbuf,
               const int* rcounts, const int* rdispls, Datatype dt, const Comm& comm);

}  // namespace tmpi

#endif  // TMPI_COLLECTIVES_H
