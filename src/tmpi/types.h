#ifndef TMPI_TYPES_H
#define TMPI_TYPES_H

#include <cstdint>

/// \file types.h
/// Fundamental constants and enums of the tmpi runtime.

namespace tmpi {

/// Message tag. Application-visible tags are bounded by the world's
/// configured tag width (Lesson 9 studies this bound); internal protocol
/// tags may use the full signed range.
using Tag = std::int32_t;

inline constexpr int kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// MPI threading support levels.
enum class ThreadLevel {
  kSingle,      ///< only one thread exists
  kFunneled,    ///< only the main thread makes tmpi calls
  kSerialized,  ///< any thread, but never concurrently
  kMultiple,    ///< fully concurrent calls
};

/// Reduction operators for collectives and RMA accumulates.
enum class Op {
  kSum,
  kProd,
  kMax,
  kMin,
  kReplace,  ///< RMA only: overwrite (MPI_REPLACE)
  kNoOp,     ///< RMA only: read without update (MPI_NO_OP)
};

/// RMA accumulate ordering (per MPI's `accumulate_ordering` info key).
enum class AccumulateOrdering {
  kStrict,  ///< same-origin same-target-location atomics execute in order
  kNone,    ///< no ordering: atomics may map to parallel channels
};

const char* to_string(ThreadLevel level);
const char* to_string(Op op);

}  // namespace tmpi

#endif  // TMPI_TYPES_H
