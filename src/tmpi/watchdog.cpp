#include "tmpi/watchdog.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include "net/pdes.h"
#include "net/stats.h"
#include "tmpi/request.h"
#include "tmpi/world.h"

namespace tmpi {

bool OverloadConfig::set(const std::string& key, const std::string& value) {
  if (key == "tmpi_eager_credits") {
    eager_credits = std::stoi(value);
  } else if (key == "tmpi_unexpected_cap") {
    unexpected_cap = std::stoi(value);
  } else if (key == "tmpi_watchdog_ns") {
    watchdog_ns = static_cast<net::Time>(std::stoll(value));
  } else {
    return false;
  }
  return true;
}

OverloadConfig OverloadConfig::from_env(OverloadConfig base) {
  static constexpr const char* kKeys[] = {"tmpi_eager_credits", "tmpi_unexpected_cap",
                                          "tmpi_watchdog_ns"};
  for (const char* key : kKeys) {
    std::string env_name(key);
    std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    if (const char* v = std::getenv(env_name.c_str()); v != nullptr && *v != '\0') {
      base.set(key, v);
    }
  }
  return base;
}

namespace detail {

namespace {

/// Consecutive frozen-epoch scans before the cycle check runs. One scan can
/// catch a thread between two operations; several in a row with registered
/// waiters means nothing is moving.
constexpr int kCycleScans = 3;
/// Frozen scans before a cycle-less stall (e.g. a recv nobody will ever
/// send to) is failed anyway.
constexpr int kStallScans = 12;
constexpr auto kPollInterval = std::chrono::milliseconds(20);

}  // namespace

ProgressWatchdog::ProgressWatchdog(World& w, net::Time budget_ns)
    : w_(&w), budget_ns_(budget_ns) {
  thread_ = std::thread([this] { scan_loop(); });
}

ProgressWatchdog::~ProgressWatchdog() {
  {
    std::scoped_lock lk(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

std::uint64_t ProgressWatchdog::register_blocked(BlockedOp op) {
  std::scoped_lock lk(mu_);
  // A thread reaching a new wait was running a moment ago: that is progress
  // as far as the stall detector is concerned.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t token = next_token_++;
  blocked_.emplace(token, std::move(op));
  return token;
}

void ProgressWatchdog::deregister(std::uint64_t token) {
  std::scoped_lock lk(mu_);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  blocked_.erase(token);  // may be gone already if the watchdog failed it
}

std::vector<std::string> ProgressWatchdog::reports() const {
  std::scoped_lock lk(mu_);
  return reports_;
}

void ProgressWatchdog::scan_loop() {
  std::uint64_t last_epoch = epoch_.load(std::memory_order_relaxed);
  int frozen = 0;
  for (;;) {
    {
      std::unique_lock lk(stop_mu_);
      stop_cv_.wait_for(lk, kPollInterval, [&] { return stop_; });
      if (stop_) return;
    }
    const std::uint64_t ep = epoch_.load(std::memory_order_acquire);
    // Parallel execution (DESIGN.md §12): deliveries still queued in the
    // scheduler are progress in flight, not a stall — a rank blocked on a
    // message whose event has not yet run must not be diagnosed as
    // deadlocked. Help drain them here (processing bumps the epoch via
    // note_progress and may complete the very requests being waited on),
    // then rearm the detector.
    if (net::PdesScheduler* ps = w_->pdes(); ps != nullptr && ps->pending() > 0) {
      ps->quiesce();
      last_epoch = epoch_.load(std::memory_order_acquire);
      frozen = 0;
      continue;
    }
    std::scoped_lock lk(mu_);
    // Dead peers fail fast (DESIGN.md §13): no frozen-epoch grace — death is
    // declared at an exact virtual time and is sticky, so an op blocked on a
    // dead rank can be failed the moment the scan sees it.
    if (!blocked_.empty() && w_->fabric().liveness().any_dead()) {
      if (fail_dead_peers_locked() > 0) {
        last_epoch = epoch_.load(std::memory_order_acquire);
        frozen = 0;
        continue;
      }
    }
    if (blocked_.empty() || ep != last_epoch) {
      last_epoch = ep;
      frozen = 0;
      continue;
    }
    ++frozen;
    if (frozen < kCycleScans) continue;
    if (analyze_locked(frozen >= kStallScans)) frozen = 0;
  }
}

std::size_t ProgressWatchdog::fail_dead_peers_locked() {
  net::Liveness& live = w_->fabric().liveness();
  net::NetStats& stats = w_->fabric().stats();
  net::TraceRecorder* tr = w_->tracer();
  net::FlightRecorder* fr = w_->flightrec();
  std::ostringstream report;
  std::vector<std::uint64_t> failed_tokens;
  for (const auto& [token, op] : blocked_) {
    if (op.peer < 0 || !live.is_dead(op.peer)) continue;
    const net::Time death = live.death_time(op.peer);
    report << "  rank " << op.rank << " vci " << op.vci << ": " << op.opname << " tag " << op.tag
           << " waiting on dead rank " << op.peer << " (declared dead at vtime " << death
           << ", last heartbeat " << live.last_beat(op.peer) << ")\n";
    Status st;
    st.source = op.peer;
    st.tag = op.tag;
    st.bytes = 0;
    // Deterministic failure time: the later of the wait's start and the
    // peer's death — independent of when the real-time scan noticed.
    if (op.req != nullptr &&
        op.req->try_finish_error(std::max(op.block_vtime, death), st, Errc::kProcFailed)) {
      trips_.fetch_add(1, std::memory_order_relaxed);
      stats.add_proc_failure();
      stats.channel(op.rank, op.vci).add_proc_failure();
      if (tr != nullptr || fr != nullptr) {
        net::TraceEvent ev;
        ev.ts = std::max(op.block_vtime, death);
        ev.kind = net::TraceEv::kWatchdogTrip;
        ev.name = op.opname;
        ev.rank = op.rank;
        ev.vci = op.vci;
        ev.peer = op.peer;
        ev.tag = op.tag;
        ev.value = static_cast<std::uint64_t>(op.peer);
        if (tr != nullptr) tr->record(ev);
        if (fr != nullptr) fr->record(ev);
      }
    }
    if (op.wake) op.wake();
    failed_tokens.push_back(token);
  }
  if (failed_tokens.empty()) return 0;
  for (const std::uint64_t t : failed_tokens) blocked_.erase(t);
  std::ostringstream head;
  head << "tmpi watchdog: " << failed_tokens.size()
       << " operation(s) blocked on failed process(es):\n"
       << report.str();
  const std::string text = head.str();
  std::fputs(text.c_str(), stderr);
  reports_.push_back(text);
  // The trip is the post-mortem moment: dump the black box while the events
  // that led here are still in the ring.
  if (fr != nullptr) fr->dump("watchdog: operations blocked on failed process");
  return failed_tokens.size();
}

bool ProgressWatchdog::analyze_locked(bool force_stall) {
  // Rank-level wait-for graph: rank R -> rank P for each of R's blocked ops
  // whose peer P is itself blocked. Wildcard waits (peer < 0) contribute no
  // edge — an ANY_SOURCE recv cannot prove a deadlock.
  std::map<int, std::vector<const BlockedOp*>> by_rank;
  for (const auto& [token, op] : blocked_) by_rank[op.rank].push_back(&op);

  std::vector<int> path;
  std::set<int> on_path;
  std::set<int> done;
  std::vector<int> cycle;
  // NOLINTNEXTLINE(misc-no-recursion): depth bounded by the rank count
  std::function<bool(int)> dfs = [&](int r) -> bool {
    path.push_back(r);
    on_path.insert(r);
    for (const BlockedOp* op : by_rank[r]) {
      const int p = op->peer;
      if (p < 0 || p == r || by_rank.find(p) == by_rank.end() || done.count(p) != 0) continue;
      if (on_path.count(p) != 0) {
        cycle.assign(std::find(path.begin(), path.end(), p), path.end());
        return true;
      }
      if (dfs(p)) return true;
    }
    path.pop_back();
    on_path.erase(r);
    done.insert(r);
    return false;
  };
  for (const auto& [r, ops] : by_rank) {
    if (done.count(r) == 0 && dfs(r)) break;
  }

  if (cycle.empty() && !force_stall) return false;

  std::set<int> to_fail(cycle.begin(), cycle.end());
  if (cycle.empty()) {
    for (const auto& [r, ops] : by_rank) to_fail.insert(r);
  }

  std::ostringstream report;
  if (!cycle.empty()) {
    report << "tmpi watchdog: deadlock cycle detected (stall budget " << budget_ns_
           << " virtual ns):\n";
  } else {
    report << "tmpi watchdog: progress stall, no wait-for cycle (stall budget " << budget_ns_
           << " virtual ns):\n";
  }

  net::NetStats& stats = w_->fabric().stats();
  net::TraceRecorder* tr = w_->tracer();
  net::FlightRecorder* fr = w_->flightrec();
  std::set<std::pair<int, int>> stuck_channels;
  std::vector<std::uint64_t> failed_tokens;
  for (const auto& [token, op] : blocked_) {
    if (to_fail.count(op.rank) == 0) continue;
    report << "  rank " << op.rank << " vci " << op.vci << ": " << op.opname << " tag " << op.tag
           << " waiting on "
           << (op.peer >= 0 ? "rank " + std::to_string(op.peer) : std::string("any source"))
           << "\n";
    stuck_channels.emplace(op.rank, op.vci);
    Status st;
    st.source = op.peer;
    st.tag = op.tag;
    st.bytes = 0;
    // Deterministic virtual failure time: the waiter's blocking time plus
    // the configured budget — independent of real-time scan jitter.
    if (op.req != nullptr &&
        op.req->try_finish_error(op.block_vtime + budget_ns_, st, Errc::kTimeout)) {
      trips_.fetch_add(1, std::memory_order_relaxed);
      stats.add_watchdog_trip();
      stats.channel(op.rank, op.vci).add_watchdog_trip();
      if (tr != nullptr || fr != nullptr) {
        net::TraceEvent ev;
        ev.ts = op.block_vtime + budget_ns_;
        ev.kind = net::TraceEv::kWatchdogTrip;
        ev.name = op.opname;
        ev.rank = op.rank;
        ev.vci = op.vci;
        ev.peer = op.peer;
        ev.tag = op.tag;
        if (tr != nullptr) tr->record(ev);
        if (fr != nullptr) fr->record(ev);
      }
    }
    if (op.wake) op.wake();
    failed_tokens.push_back(token);
  }
  if (!cycle.empty()) stats.add_deadlock();
  for (const std::uint64_t t : failed_tokens) blocked_.erase(t);

  // Trace-aware reporting (DESIGN.md §9/§14): attach the last few events
  // each stuck channel saw — usually enough to tell a lost message from a
  // never-posted receive without opening the full trace. With tracing off,
  // the always-on flight recorder supplies the same history.
  if (tr != nullptr || fr != nullptr) {
    constexpr std::size_t kTailEvents = 8;
    for (const auto& [rank, vci] : stuck_channels) {
      const std::vector<net::TraceEvent> tail =
          tr != nullptr ? tr->tail(rank, vci, kTailEvents) : fr->tail(rank, vci, kTailEvents);
      report << "  recent trace events for rank " << rank << " vci " << vci << ":\n";
      if (tail.empty()) report << "    (none recorded)\n";
      for (const net::TraceEvent& ev : tail) {
        report << "    " << net::format_trace_event(ev) << "\n";
      }
    }
  }

  const std::string text = report.str();
  std::fputs(text.c_str(), stderr);
  reports_.push_back(text);
  if (fr != nullptr) {
    fr->dump(cycle.empty() ? "watchdog: progress stall" : "watchdog: deadlock cycle");
  }
  return true;
}

}  // namespace detail

}  // namespace tmpi
