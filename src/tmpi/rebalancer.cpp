#include "tmpi/rebalancer.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "net/contention_lock.h"
#include "tmpi/vci.h"
#include "tmpi/world.h"

namespace tmpi {

namespace {

bool parse_bool(const std::string& v) {
  return v == "1" || v == "on" || v == "true" || v == "yes";
}

}  // namespace

bool RebalanceConfig::set(const std::string& key, const std::string& value) {
  if (key == "tmpi_adaptive") {
    adaptive = parse_bool(value);
    return true;
  }
  if (key == "tmpi_rebalance_window_ns") {
    window_ns = static_cast<net::Time>(std::stoull(value));
    return true;
  }
  if (key == "tmpi_imbalance_threshold") {
    imbalance_threshold = std::stod(value);
    return true;
  }
  return false;
}

RebalanceConfig RebalanceConfig::from_env(RebalanceConfig base) {
  if (const char* v = std::getenv("TMPI_ADAPTIVE")) base.set("tmpi_adaptive", v);
  if (const char* v = std::getenv("TMPI_REBALANCE_WINDOW_NS")) {
    base.set("tmpi_rebalance_window_ns", v);
  }
  if (const char* v = std::getenv("TMPI_IMBALANCE_THRESHOLD")) {
    base.set("tmpi_imbalance_threshold", v);
  }
  return base;
}

namespace detail {

Rebalancer::Rebalancer(World& w, RebalanceConfig cfg)
    : w_(&w), cfg_(cfg), next_epoch_(cfg.window_ns) {}

void Rebalancer::track(const std::shared_ptr<CommImpl>& c) {
  if (c == nullptr || c->is_endpoints || c->policy != VciPolicyKind::kSingle) return;
  auto remap = std::make_shared<VciRemap>();
  c->remap = remap;
  {
    std::scoped_lock lk(ctx_mu_);
    ctx_map_[c->ctx_id] = remap;
    ctx_map_[c->coll_ctx_id] = remap;
  }
  std::scoped_lock lk(mu_);
  comms_.push_back(Tracked{c, std::move(remap), 0});
}

int Rebalancer::current_vci(int ctx_id, int fallback) const {
  std::scoped_lock lk(ctx_mu_);
  const auto it = ctx_map_.find(ctx_id);
  if (it == ctx_map_.end()) return fallback;
  const int v = it->second->vci.load(std::memory_order_acquire);
  return v >= 0 ? v : fallback;
}

bool Rebalancer::vci_usable(int idx) const {
  if (idx < 0 || idx >= w_->config().num_vcis) return false;
  const int n = w_->nranks();
  for (int r = 0; r < n; ++r) {
    RankState* rs = w_->rank_state_if_materialized(r);
    if (rs == nullptr) continue;
    VciPool& pool = rs->vcis;
    if (idx >= pool.size()) continue;
    if (pool.resolve(idx) != idx) return false;  // failed over on this rank
    if (Vci* v = pool.peek(idx)) {
      if (v->ctx().is_down()) return false;  // down, single-VCI degraded mode
    }
  }
  return true;
}

std::uint64_t Rebalancer::migrate_comm(CommImpl& c, VciRemap& remap, int from, int to,
                                       net::Time now) {
  // Publish the cutover first: every route computed from here on lands on
  // the new channel, and any deposit/post that raced the flip re-checks the
  // mapping under the VCI lock and retries, so nothing settles on the old
  // channel after the sweep below.
  remap.vci.store(to, std::memory_order_release);

  std::uint64_t moved = 0;
  const int nmember = c.size();
  for (int i = 0; i < nmember; ++i) {
    RankState* rs = w_->rank_state_if_materialized(c.world_rank_of(i));
    if (rs == nullptr) continue;  // never touched: no queues to move
    VciPool& pool = rs->vcis;
    // Follow fail-over redirect chains on both endpoints: a migration must
    // drain the channel actually carrying the stream and must never
    // resurrect a context that sticky-down already parked.
    const int fi = pool.resolve(from);
    const int ti = pool.resolve(to);
    if (fi == ti) continue;
    Vci* src = fi < pool.size() ? pool.peek(fi) : nullptr;
    if (src == nullptr) continue;  // idle channel body: nothing queued
    Vci& dst = pool.at(ti);
    std::uint64_t rank_moved = 0;
    {
      Vci& first = fi < ti ? *src : dst;
      Vci& second = fi < ti ? dst : *src;
      net::VirtualClock mclk(now);
      net::ContentionLock::Guard g1(first.lock(), mclk, w_->cost(), nullptr, nullptr);
      net::ContentionLock::Guard g2(second.lock(), mclk, w_->cost(), nullptr, nullptr);
      rank_moved = dst.engine().absorb_ctx(src->engine(), c.ctx_id, c.coll_ctx_id,
                                           c.part_ctx_id);
      // A deposit that re-routed to `to` before this sweep moved the
      // matching posted receive over (or the mirror case) left a compatible
      // pair stranded in the destination engine; pair them now, while both
      // locks are held, or the receive never completes.
      if (rank_moved > 0) dst.engine().rematch(now);
    }
    // Phantom wakeups (the rank-failure discipline): probes blocked on the
    // old channel re-route through route_recv and land on the new mapping;
    // probes already waiting on the new channel re-evaluate against the
    // absorbed unexpected entries.
    src->note_deposit();
    if (rank_moved > 0) dst.note_deposit();
    moved += rank_moved;
  }
  return moved;
}

void Rebalancer::rebalance(net::Time now) {
  std::scoped_lock lk(mu_);
  if (now < next_epoch_.load(std::memory_order_relaxed)) return;  // raced a closer
  next_epoch_.store(((now / cfg_.window_ns) + 1) * cfg_.window_ns,
                    std::memory_order_relaxed);

  // Policy input: per-channel load deltas over the closed window, from the
  // same ChannelStats registry the metrics sampler reads.
  net::NetStatsSnapshot cur = w_->snapshot();
  const net::NetStatsSnapshot delta = cur - prev_;
  prev_ = std::move(cur);

  const int span = w_->config().num_vcis;
  if (span <= 1) return;  // nowhere to move anything
  std::vector<double> load(static_cast<std::size_t>(span), 0.0);
  for (const auto& ch : delta.channels) {
    if (ch.vci < 0 || ch.vci >= span) continue;  // endpoint VCIs spread already
    load[static_cast<std::size_t>(ch.vci)] += static_cast<double>(
        ch.injections + ch.rx_ops + ch.credit_stalls + ch.bucket_misses);
  }
  double total = 0.0;
  double maxload = 0.0;
  for (const double l : load) {
    total += l;
    maxload = std::max(maxload, l);
  }
  const double mean = total / static_cast<double>(span);
  const double imbalance = mean > 0.0 ? maxload / mean : 0.0;
  last_imbalance_.store(imbalance, std::memory_order_relaxed);

  // Per-comm weights are an EWMA (this window's ops plus 7/8 of the
  // previous estimate), pruned of dead comms. The slow decay matters for
  // phased traffic: comms drain their backlogs in bursts, so any single
  // window sees only a sliver of the true distribution — a fast-forgetting
  // weight ranks whatever burst last above the comms that dominate the
  // phase and re-derives a different packing every epoch. With most of the
  // history retained the weights converge on per-phase totals and the
  // repack reaches a fixed point, while a genuine shift still climbs the
  // ranking within a few windows because fresh ops add at full strength.
  struct Item {
    std::shared_ptr<CommImpl> comm;
    std::shared_ptr<VciRemap> remap;
    std::uint64_t weight = 0;
  };
  std::vector<Item> items;
  for (auto it = comms_.begin(); it != comms_.end();) {
    std::shared_ptr<CommImpl> c = it->comm.lock();
    if (c == nullptr) {
      it = comms_.erase(it);
      continue;
    }
    const std::uint64_t ops = it->remap->route_ops.load(std::memory_order_relaxed);
    const std::uint64_t window = ops - it->last_route_ops;
    it->last_route_ops = ops;
    it->ewma = window + it->ewma - it->ewma / 8;
    if (it->ewma > 0) items.push_back(Item{std::move(c), it->remap, it->ewma});
    ++it;
  }
  if (imbalance < cfg_.imbalance_threshold || items.empty()) return;

  std::vector<int> bins;
  for (int v = 0; v < span; ++v) {
    if (vci_usable(v)) bins.push_back(v);
  }
  if (bins.size() < 2) return;  // fail-over left nowhere worth moving to

  // Longest-processing-time repack of the active communicators over the
  // usable channels, with deterministic tie-breaks (weight desc, seq asc).
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.comm->seq_no < b.comm->seq_no;
  });
  std::vector<double> bin_load(bins.size(), 0.0);
  std::uint64_t moved = 0;
  bool flipped = false;
  for (const Item& item : items) {
    const int mapped = item.remap->vci.load(std::memory_order_relaxed);
    const int effective = mapped >= 0 ? mapped : item.comm->comm_vcis[0];
    const double w = static_cast<double>(item.weight);
    std::size_t best = 0;
    for (std::size_t b = 1; b < bins.size(); ++b) {
      if (bin_load[b] < bin_load[best]) best = b;
    }
    // Hysteresis: staying put is free, migrating sweeps queues on every rank
    // and (worse) couples the comm's traffic to a new channel's busy horizon
    // mid-stream — a pure LPT re-derivation would keep shuffling the light
    // comms between near-tied bins every epoch as the EWMA weights drift.
    // Migrate only when BOTH hold: the current channel carries at least 1.5x
    // the load of the best alternative, and moving shortens this comm's
    // completion by more than half its own weight. Two hot comms stacked on
    // one channel clear both bars immediately (the best alternative is near
    // empty relative to the stack); a light comm riding a busy-but-typical
    // channel, or steady-state weight drift between near-tied bins, never
    // does. Both bars are ratios of packed loads, deliberately independent
    // of the total — lingering weight from a finished traffic phase must not
    // raise the bar for unstacking the phase that is bursting right now.
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b] != effective) continue;
      const bool overloaded = bin_load[b] > 1.5 * bin_load[best];
      const bool worth = bin_load[b] > bin_load[best] + w / 2.0;
      if (!overloaded || !worth) best = b;
      break;
    }
    bin_load[best] += w;
    if (effective == bins[best]) continue;
    moved += migrate_comm(*item.comm, *item.remap, effective, bins[best], now);
    flipped = true;
  }
  if (!flipped) return;
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  migrated_.fetch_add(moved, std::memory_order_relaxed);
  net::NetStats& stats = w_->fabric().stats();
  stats.add_rebalance();
  stats.add_migrated(moved);
}

}  // namespace detail
}  // namespace tmpi
