#include "tmpi/collectives.h"

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "net/trace.h"
#include "tmpi/error.h"
#include "tmpi/p2p.h"
#include "tmpi/request.h"
#include "tmpi/world.h"

namespace tmpi {

namespace {

using detail::CommImpl;

/// Serial-per-communicator enforcement + per-rank collective sequencing.
class CollGuard {
 public:
  explicit CollGuard(const Comm& comm)
      : c_(*comm.impl()), rank_(static_cast<std::size_t>(comm.rank())) {
    const int prev = c_.coll_active[rank_].exchange(1, std::memory_order_acq_rel);
    if (prev != 0) {
      // The flag stays set: it belongs to the collective already in flight.
      fail(Errc::kConcurrentCollective,
           "collectives on one communicator must be issued serially per rank "
           "(use distinct communicators, endpoints, or partitions)");
    }
    seq_ = c_.coll_seq[rank_]++;
  }
  ~CollGuard() { c_.coll_active[rank_].store(0, std::memory_order_release); }
  CollGuard(const CollGuard&) = delete;
  CollGuard& operator=(const CollGuard&) = delete;

  /// Internal tag for phase/round `phase` of this collective instance.
  [[nodiscard]] Tag tag(int phase) const {
    return static_cast<Tag>(((seq_ & 0xFFFFFu) << 6) | static_cast<std::uint64_t>(phase & 0x3F));
  }

 private:
  CommImpl& c_;
  std::size_t rank_;
  std::uint64_t seq_ = 0;
};

/// RAII registration of collective fragments for revoke poisoning
/// (DESIGN.md §13). Register before the wait: a revoke fired at any point in
/// between fails the request with kProcFailed instead of leaving the waiter
/// blocked on a peer that already abandoned the collective.
class FragScope {
 public:
  FragScope(const Comm& comm, const Request& r)
      : c_(comm.impl()), id_(c_->register_fragment(r.shared_state())) {}
  ~FragScope() { c_->deregister_fragment(id_); }
  FragScope(const FragScope&) = delete;
  FragScope& operator=(const FragScope&) = delete;

 private:
  CommImpl* c_;
  std::uint64_t id_;
};

/// FragScope over a growing request vector (gather/scatter fan-out sites).
class FragSet {
 public:
  explicit FragSet(const Comm& comm) : c_(comm.impl()) {}
  ~FragSet() {
    for (const std::uint64_t id : ids_) c_->deregister_fragment(id);
  }
  FragSet(const FragSet&) = delete;
  FragSet& operator=(const FragSet&) = delete;

  void add(const Request& r) { ids_.push_back(c_->register_fragment(r.shared_state())); }

 private:
  CommImpl* c_;
  std::vector<std::uint64_t> ids_;
};

void coll_send(const void* buf, std::size_t bytes, int dst, Tag tag, const Comm& comm) {
  Request r = detail::isend_on_ctx(buf, bytes, comm.impl()->coll_ctx_id, dst, tag, comm);
  FragScope fs(comm, r);
  r.wait();
}

Request coll_irecv(void* buf, std::size_t bytes, int src, Tag tag, const Comm& comm) {
  return detail::irecv_on_ctx(buf, bytes, comm.impl()->coll_ctx_id, src, tag, comm);
}

void coll_recv(void* buf, std::size_t bytes, int src, Tag tag, const Comm& comm) {
  Request r = coll_irecv(buf, bytes, src, tag, comm);
  FragScope fs(comm, r);
  r.wait();
}

void coll_sendrecv(const void* sbuf, std::size_t sbytes, int dst, void* rbuf, std::size_t rbytes,
                   int src, Tag tag, const Comm& comm) {
  Request rr = coll_irecv(rbuf, rbytes, src, tag, comm);
  FragScope fr(comm, rr);
  Request sr = detail::isend_on_ctx(sbuf, sbytes, comm.impl()->coll_ctx_id, dst, tag, comm);
  FragScope fs(comm, sr);
  sr.wait();
  rr.wait();
}

/// Binomial-tree broadcast over an arbitrary subgroup given by position.
/// `ranks[pos]` is the caller. Root is position `root_pos`.
void subgroup_bcast(void* buf, std::size_t bytes, const std::vector<int>& ranks, int pos,
                    int root_pos, Tag tag, const Comm& comm) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) return;
  const int vr = (pos - root_pos + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      const int src_pos = ((vr - mask) + root_pos) % n;
      coll_recv(buf, bytes, ranks[static_cast<std::size_t>(src_pos)], tag, comm);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int dst_pos = ((vr + mask) % n + root_pos) % n;
      coll_send(buf, bytes, ranks[static_cast<std::size_t>(dst_pos)], tag, comm);
    }
    mask >>= 1;
  }
}

/// Binomial-tree reduction over a subgroup; result lands in `acc` at
/// position `root_pos`. `acc` must hold the caller's contribution on entry.
void subgroup_reduce(void* acc, int count, Datatype dt, Op op, const std::vector<int>& ranks,
                     int pos, int root_pos, Tag tag, const Comm& comm) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) return;
  const std::size_t bytes = dt.extent(count);
  std::vector<std::byte> scratch(bytes);
  const int vr = (pos - root_pos + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      const int peer_vr = vr | mask;
      if (peer_vr < n) {
        const int src_pos = (peer_vr + root_pos) % n;
        coll_recv(scratch.data(), bytes, ranks[static_cast<std::size_t>(src_pos)], tag, comm);
        reduce_apply(op, dt, acc, scratch.data(), count);
      }
    } else {
      const int dst_pos = ((vr & ~mask) + root_pos) % n;
      coll_send(acc, bytes, ranks[static_cast<std::size_t>(dst_pos)], tag, comm);
      return;
    }
    mask <<= 1;
  }
}

std::vector<int> all_ranks(const Comm& comm) {
  std::vector<int> r(static_cast<std::size_t>(comm.size()));
  for (int i = 0; i < comm.size(); ++i) r[static_cast<std::size_t>(i)] = i;
  return r;
}

/// Comm ranks on the caller's node, ascending (used by "hier" algorithms).
std::vector<int> node_ranks(const Comm& comm) {
  const CommImpl& c = *comm.impl();
  const int my_node = c.node_of_comm_rank(comm.rank());
  std::vector<int> out;
  for (int r = 0; r < comm.size(); ++r) {
    if (c.node_of_comm_rank(r) == my_node) out.push_back(r);
  }
  return out;
}

int position_of(const std::vector<int>& ranks, int rank) {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (ranks[i] == rank) return static_cast<int>(i);
  }
  fail(Errc::kInternal, "rank not in subgroup");
}

bool use_hier(const Comm& comm) {
  return comm.impl()->info.get_string("tmpi_coll_algorithm", "hier") == "hier" &&
         comm.impl()->leaders.size() > 1;
}

/// Collective entry wrapper (DESIGN.md §8). Under errors-are-fatal failures
/// propagate as exceptions, unchanged. Under errors-return, a recoverable
/// failure thrown by an internal fragment — fragment requests always throw,
/// they are stamped fatal regardless of the comm's handler — is translated
/// to the collective's return code.
/// Tracing (DESIGN.md §9): one span per collective call, wrapping all the
/// p2p fragments the algorithm issues. `name` must be a string literal (the
/// recorder stores the pointer, not a copy).
struct CollTraceScope {
  net::TraceRecorder* tr = nullptr;
  net::TraceEvent ev;
  std::optional<net::ScopedTraceParent> parent_scope;

  CollTraceScope(const Comm& comm, const char* name) {
    tr = comm.world().tracer();
    if (tr == nullptr) return;
    ev.ts = net::ThreadClock::get().now();
    ev.kind = net::TraceEv::kPost;
    ev.op = net::TraceOp::kColl;
    ev.span = tr->begin_span();
    ev.parent = net::ScopedTraceParent::current();  // hier algorithms nest
    ev.name = name;
    ev.rank = comm.world_rank_of(comm.rank());
    ev.vci = 0;
    tr->record(ev);
    // Every p2p fragment posted inside this call parents to the collective's
    // span (DESIGN.md §14) — the thread-local scope is read back by
    // isend/irecv when they open their fragment spans.
    parent_scope.emplace(ev.span);
  }

  void close(Errc code) {
    if (tr == nullptr) return;
    ev.ts = net::ThreadClock::get().now();
    ev.kind = code == Errc::kSuccess ? net::TraceEv::kComplete : net::TraceEv::kError;
    ev.value = code == Errc::kSuccess ? 0 : static_cast<std::uint64_t>(errc_to_int(code));
    tr->record(ev);
    tr = nullptr;
  }
};

template <typename Fn>
Errc coll_entry(const Comm& comm, const char* name, Fn&& fn) {
  CollTraceScope scope(comm, name);
  CommImpl& ci = *comm.impl();
  // A revoked communicator (DESIGN.md §13) fails new collectives at the
  // door, before any fragment flows — survivors that were not yet in the
  // collective observe the same kProcFailed the blocked ones got.
  if (ci.revoked.load(std::memory_order_acquire)) {
    scope.close(Errc::kProcFailed);
    if (ci.errhandler == ErrorHandler::kErrorsReturn) return Errc::kProcFailed;
    fail(Errc::kProcFailed, "collective on a revoked communicator");
  }
  try {
    fn();
  } catch (const Error& e) {
    if (e.code() == Errc::kProcFailed) {
      // Auto-revoke: one fragment hit a dead rank, so this collective can
      // never complete anywhere. Latching the revoke poisons the sibling
      // fragments still blocked on other ranks — every survivor uniformly
      // observes kProcFailed instead of a split-brain hang.
      if (ci.revoke_at(net::ThreadClock::get().now())) {
        comm.world().fabric().stats().add_revoke();
      }
    }
    scope.close(e.code());
    if (ci.errhandler == ErrorHandler::kErrorsReturn) return e.code();
    throw;
  }
  scope.close(Errc::kSuccess);
  return Errc::kSuccess;
}

}  // namespace

Errc barrier(const Comm& comm) {
  return coll_entry(comm, "barrier", [&] {
    CollGuard g(comm);
    const int n = comm.size();
    const int me = comm.rank();
    char dummy = 0;
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
      const int dst = (me + k) % n;
      const int src = (me - k + n) % n;
      char in = 0;
      coll_sendrecv(&dummy, 1, dst, &in, 1, src, g.tag(round), comm);
    }
  });
}

Errc bcast(void* buf, int count, Datatype dt, int root, const Comm& comm) {
  TMPI_REQUIRE(root >= 0 && root < comm.size(), Errc::kInvalidArg, "bcast root out of range");
  return coll_entry(comm, "bcast", [&] {
    CollGuard g(comm);
    subgroup_bcast(buf, dt.extent(count), all_ranks(comm), comm.rank(), root, g.tag(0), comm);
  });
}

Errc reduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, int root,
            const Comm& comm) {
  TMPI_REQUIRE(root >= 0 && root < comm.size(), Errc::kInvalidArg, "reduce root out of range");
  return coll_entry(comm, "reduce", [&] {
    CollGuard g(comm);
    const std::size_t bytes = dt.extent(count);
    std::vector<std::byte> acc(bytes);
    if (bytes > 0) std::memcpy(acc.data(), sbuf, bytes);
    subgroup_reduce(acc.data(), count, dt, op, all_ranks(comm), comm.rank(), root, g.tag(0),
                    comm);
    if (comm.rank() == root && bytes > 0) std::memcpy(rbuf, acc.data(), bytes);
  });
}

Errc allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, const Comm& comm) {
  return coll_entry(comm, "allreduce", [&] {
    CollGuard g(comm);
    const std::size_t bytes = dt.extent(count);
    if (bytes > 0 && rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);

    if (!use_hier(comm)) {
      const auto ranks = all_ranks(comm);
      subgroup_reduce(rbuf, count, dt, op, ranks, comm.rank(), 0, g.tag(0), comm);
      subgroup_bcast(rbuf, bytes, ranks, comm.rank(), 0, g.tag(1), comm);
      return;
    }

    // Hierarchical: intranode reduce to the node leader (shared-memory
    // paths), internode allreduce among leaders, intranode bcast.
    const CommImpl& c = *comm.impl();
    const auto members = node_ranks(comm);
    const int my_pos = position_of(members, comm.rank());
    const int leader = c.leader_of_comm_rank(comm.rank());
    const int leader_pos = position_of(members, leader);

    subgroup_reduce(rbuf, count, dt, op, members, my_pos, leader_pos, g.tag(0), comm);
    if (comm.rank() == leader) {
      const auto& leaders = c.leaders;
      const int lp = position_of(leaders, comm.rank());
      subgroup_reduce(rbuf, count, dt, op, leaders, lp, 0, g.tag(1), comm);
      subgroup_bcast(rbuf, bytes, leaders, lp, 0, g.tag(2), comm);
    }
    subgroup_bcast(rbuf, bytes, members, my_pos, leader_pos, g.tag(3), comm);
  });
}

Errc gather(const void* sbuf, int scount, Datatype dt, void* rbuf, int root, const Comm& comm) {
  TMPI_REQUIRE(root >= 0 && root < comm.size(), Errc::kInvalidArg, "gather root out of range");
  return coll_entry(comm, "gather", [&] {
    CollGuard g(comm);
    const std::size_t block = dt.extent(scount);
    const int n = comm.size();
    if (comm.rank() == root) {
      auto* out = static_cast<std::byte*>(rbuf);
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(n - 1));
      FragSet frags(comm);
      for (int r = 0; r < n; ++r) {
        if (r == root) {
          if (block > 0) std::memcpy(out + static_cast<std::size_t>(r) * block, sbuf, block);
        } else {
          reqs.push_back(detail::irecv_on_ctx(out + static_cast<std::size_t>(r) * block, block,
                                              comm.impl()->coll_ctx_id, r, g.tag(0), comm));
          frags.add(reqs.back());
        }
      }
      wait_all(reqs.data(), reqs.size());
    } else {
      coll_send(sbuf, block, root, g.tag(0), comm);
    }
  });
}

Errc scatter(const void* sbuf, void* rbuf, int rcount, Datatype dt, int root, const Comm& comm) {
  TMPI_REQUIRE(root >= 0 && root < comm.size(), Errc::kInvalidArg, "scatter root out of range");
  return coll_entry(comm, "scatter", [&] {
    CollGuard g(comm);
    const std::size_t block = dt.extent(rcount);
    const int n = comm.size();
    if (comm.rank() == root) {
      const auto* in = static_cast<const std::byte*>(sbuf);
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(n - 1));
      FragSet frags(comm);
      for (int r = 0; r < n; ++r) {
        if (r == root) {
          if (block > 0) std::memcpy(rbuf, in + static_cast<std::size_t>(r) * block, block);
        } else {
          reqs.push_back(detail::isend_on_ctx(in + static_cast<std::size_t>(r) * block, block,
                                              comm.impl()->coll_ctx_id, r, g.tag(0), comm));
          frags.add(reqs.back());
        }
      }
      wait_all(reqs.data(), reqs.size());
    } else {
      coll_recv(rbuf, block, root, g.tag(0), comm);
    }
  });
}

Errc allgather(const void* sbuf, int scount, Datatype dt, void* rbuf, const Comm& comm) {
  return coll_entry(comm, "allgather", [&] {
    CollGuard g(comm);
    const std::size_t block = dt.extent(scount);
    const int n = comm.size();
    const int me = comm.rank();
    auto* out = static_cast<std::byte*>(rbuf);
    if (block > 0) std::memcpy(out + static_cast<std::size_t>(me) * block, sbuf, block);
    // Ring: in step s we forward the block we received in step s-1.
    const int right = (me + 1) % n;
    const int left = (me - 1 + n) % n;
    for (int s = 0; s < n - 1; ++s) {
      const int send_block = (me - s + n) % n;
      const int recv_block = (me - s - 1 + n) % n;
      coll_sendrecv(out + static_cast<std::size_t>(send_block) * block, block, right,
                    out + static_cast<std::size_t>(recv_block) * block, block, left,
                    g.tag(s % 60), comm);
    }
  });
}

Errc alltoall(const void* sbuf, int scount, Datatype dt, void* rbuf, const Comm& comm) {
  return coll_entry(comm, "alltoall", [&] {
    CollGuard g(comm);
    const std::size_t block = dt.extent(scount);
    const int n = comm.size();
    const int me = comm.rank();
    const auto* in = static_cast<const std::byte*>(sbuf);
    auto* out = static_cast<std::byte*>(rbuf);
    if (block > 0) {
      std::memcpy(out + static_cast<std::size_t>(me) * block,
                  in + static_cast<std::size_t>(me) * block, block);
    }
    for (int s = 1; s < n; ++s) {
      const int dst = (me + s) % n;
      const int src = (me - s + n) % n;
      coll_sendrecv(in + static_cast<std::size_t>(dst) * block, block, dst,
                    out + static_cast<std::size_t>(src) * block, block, src, g.tag(s % 60),
                    comm);
    }
  });
}

Errc scan(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, const Comm& comm) {
  return coll_entry(comm, "scan", [&] {
    CollGuard g(comm);
    const std::size_t bytes = dt.extent(count);
    const int me = comm.rank();
    const int n = comm.size();
    if (bytes > 0 && rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    // Linear chain: rank r-1 forwards its inclusive prefix to rank r. Simple
    // and exact for non-commutative-safe ordering.
    std::vector<std::byte> incoming(bytes);
    if (me > 0) {
      coll_recv(incoming.data(), bytes, me - 1, g.tag(0), comm);
      // prefix(0..me) = prefix(0..me-1) op mine, applied in rank order.
      std::vector<std::byte> mine(bytes);
      if (bytes > 0) std::memcpy(mine.data(), rbuf, bytes);
      if (bytes > 0) std::memcpy(rbuf, incoming.data(), bytes);
      reduce_apply(op, dt, rbuf, mine.data(), count);
    }
    if (me + 1 < n) coll_send(rbuf, bytes, me + 1, g.tag(0), comm);
  });
}

Errc exscan(const void* sbuf, void* rbuf, int count, Datatype dt, Op op, const Comm& comm) {
  return coll_entry(comm, "exscan", [&] {
    CollGuard g(comm);
    const std::size_t bytes = dt.extent(count);
    const int me = comm.rank();
    const int n = comm.size();
    // Chain the *inclusive* prefix forward; each rank keeps what it received
    // (the exclusive prefix) and forwards received-op-mine.
    std::vector<std::byte> prefix(bytes);
    if (me > 0) {
      coll_recv(prefix.data(), bytes, me - 1, g.tag(0), comm);
      if (bytes > 0) std::memcpy(rbuf, prefix.data(), bytes);
    }
    if (me + 1 < n) {
      std::vector<std::byte> forward(bytes);
      if (me == 0) {
        if (bytes > 0) std::memcpy(forward.data(), sbuf, bytes);
      } else {
        forward = prefix;
        reduce_apply(op, dt, forward.data(), sbuf, count);
      }
      coll_send(forward.data(), bytes, me + 1, g.tag(0), comm);
    }
  });
}

Errc gatherv(const void* sbuf, int scount, Datatype dt, void* rbuf, const int* counts,
             const int* displs, int root, const Comm& comm) {
  TMPI_REQUIRE(root >= 0 && root < comm.size(), Errc::kInvalidArg, "gatherv root out of range");
  return coll_entry(comm, "gatherv", [&] {
    CollGuard g(comm);
    const int n = comm.size();
    if (comm.rank() == root) {
      auto* out = static_cast<std::byte*>(rbuf);
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(n - 1));
      FragSet frags(comm);
      for (int r = 0; r < n; ++r) {
        std::byte* dst = out + static_cast<std::size_t>(displs[r]) * dt.size();
        const std::size_t bytes = dt.extent(counts[r]);
        if (r == root) {
          TMPI_REQUIRE(counts[r] == scount, Errc::kInvalidArg, "gatherv root count mismatch");
          if (bytes > 0) std::memcpy(dst, sbuf, bytes);
        } else {
          reqs.push_back(
              detail::irecv_on_ctx(dst, bytes, comm.impl()->coll_ctx_id, r, g.tag(0), comm));
          frags.add(reqs.back());
        }
      }
      wait_all(reqs.data(), reqs.size());
    } else {
      coll_send(sbuf, dt.extent(scount), root, g.tag(0), comm);
    }
  });
}

Errc scatterv(const void* sbuf, const int* counts, const int* displs, void* rbuf, int rcount,
              Datatype dt, int root, const Comm& comm) {
  TMPI_REQUIRE(root >= 0 && root < comm.size(), Errc::kInvalidArg,
               "scatterv root out of range");
  return coll_entry(comm, "scatterv", [&] {
    CollGuard g(comm);
    const int n = comm.size();
    if (comm.rank() == root) {
      const auto* in = static_cast<const std::byte*>(sbuf);
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(n - 1));
      FragSet frags(comm);
      for (int r = 0; r < n; ++r) {
        const std::byte* src = in + static_cast<std::size_t>(displs[r]) * dt.size();
        const std::size_t bytes = dt.extent(counts[r]);
        if (r == root) {
          TMPI_REQUIRE(counts[r] == rcount, Errc::kInvalidArg, "scatterv root count mismatch");
          if (bytes > 0) std::memcpy(rbuf, src, bytes);
        } else {
          reqs.push_back(
              detail::isend_on_ctx(src, bytes, comm.impl()->coll_ctx_id, r, g.tag(0), comm));
          frags.add(reqs.back());
        }
      }
      wait_all(reqs.data(), reqs.size());
    } else {
      coll_recv(rbuf, dt.extent(rcount), root, g.tag(0), comm);
    }
  });
}

Errc allgatherv(const void* sbuf, int scount, Datatype dt, void* rbuf, const int* counts,
                const int* displs, const Comm& comm) {
  return coll_entry(comm, "allgatherv", [&] {
    CollGuard g(comm);
    const int n = comm.size();
    const int me = comm.rank();
    auto* out = static_cast<std::byte*>(rbuf);
    TMPI_REQUIRE(counts[me] == scount, Errc::kInvalidArg, "allgatherv own count mismatch");
    if (dt.extent(scount) > 0) {
      std::memcpy(out + static_cast<std::size_t>(displs[me]) * dt.size(), sbuf,
                  dt.extent(scount));
    }
    // Ring with per-step variable block sizes.
    const int right = (me + 1) % n;
    const int left = (me - 1 + n) % n;
    for (int s = 0; s < n - 1; ++s) {
      const int send_block = (me - s + n) % n;
      const int recv_block = (me - s - 1 + n) % n;
      coll_sendrecv(out + static_cast<std::size_t>(displs[send_block]) * dt.size(),
                    dt.extent(counts[send_block]), right,
                    out + static_cast<std::size_t>(displs[recv_block]) * dt.size(),
                    dt.extent(counts[recv_block]), left, g.tag(s % 60), comm);
    }
  });
}

Errc alltoallv(const void* sbuf, const int* scounts, const int* sdispls, void* rbuf,
               const int* rcounts, const int* rdispls, Datatype dt, const Comm& comm) {
  return coll_entry(comm, "alltoallv", [&] {
    CollGuard g(comm);
    const int n = comm.size();
    const int me = comm.rank();
    const auto* in = static_cast<const std::byte*>(sbuf);
    auto* out = static_cast<std::byte*>(rbuf);
    TMPI_REQUIRE(scounts[me] == rcounts[me], Errc::kInvalidArg,
                 "alltoallv self count mismatch");
    if (dt.extent(scounts[me]) > 0) {
      std::memcpy(out + static_cast<std::size_t>(rdispls[me]) * dt.size(),
                  in + static_cast<std::size_t>(sdispls[me]) * dt.size(),
                  dt.extent(scounts[me]));
    }
    for (int s = 1; s < n; ++s) {
      const int dst = (me + s) % n;
      const int src = (me - s + n) % n;
      coll_sendrecv(in + static_cast<std::size_t>(sdispls[dst]) * dt.size(),
                    dt.extent(scounts[dst]), dst,
                    out + static_cast<std::size_t>(rdispls[src]) * dt.size(),
                    dt.extent(rcounts[src]), src, g.tag(s % 60), comm);
    }
  });
}

Errc reduce_scatter_block(const void* sbuf, void* rbuf, int rcount, Datatype dt, Op op,
                          const Comm& comm) {
  const int n = comm.size();
  const std::size_t block = dt.extent(rcount);
  std::vector<std::byte> full(block * static_cast<std::size_t>(n));
  // reduce + scatter keeps this simple and correct for any size; each stage
  // already honours the comm's error handler, so just propagate the codes.
  const Errc e = reduce(sbuf, full.data(), rcount * n, dt, op, 0, comm);
  if (e != Errc::kSuccess) return e;
  return scatter(full.data(), rbuf, rcount, dt, 0, comm);
}

}  // namespace tmpi
