#ifndef TMPI_VCI_H
#define TMPI_VCI_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "net/contention_lock.h"
#include "net/nic.h"
#include "net/slab_pool.h"
#include "tmpi/matching.h"

/// \file vci.h
/// Virtual Communication Interfaces.
///
/// A VCI is a software communication channel: one matching engine plus one
/// lock, mapped onto a NIC hardware context (dedicated while the NIC's pool
/// lasts, shared afterwards). Operations routed to distinct VCIs proceed in
/// parallel; operations funneled through one VCI serialize on its lock and
/// its hardware context — the two regimes whose gap is the subject of the
/// reproduced paper.

namespace tmpi::detail {

class Vci {
 public:
  Vci(net::Nic& nic, net::ChannelStats* ch, MatchPolicy policy = MatchPolicy::kAuto)
      : ctx_(&nic.acquire_context()), chstats_(ch) {
    engine_.configure(policy, ch);
  }

  Vci(const Vci&) = delete;
  Vci& operator=(const Vci&) = delete;

  [[nodiscard]] net::HwContext& ctx() { return *ctx_; }
  [[nodiscard]] net::ContentionLock& lock() { return lock_; }
  [[nodiscard]] MatchingEngine& engine() { return engine_; }
  /// Per-channel telemetry block (owned by the fabric's NetStats registry).
  [[nodiscard]] net::ChannelStats* chstats() const { return chstats_; }

  /// Slab recycler for eager payloads *sent through* this channel
  /// (DESIGN.md §10). Declared before engine_ so the engine's queued
  /// envelopes release their blocks while the pool is still alive; for
  /// cross-VCI lifetimes (failover migration) VciPool's destructor drains
  /// all engines before destroying any Vci.
  [[nodiscard]] net::SlabPool& payload_pool() { return payload_pool_; }

  /// Deposit event counter + wakeup, used by blocking probe: a prober waits
  /// until the count changes instead of charging per-poll costs.
  void note_deposit() {
    {
      // The counter must change under the waiters' mutex, or a prober that
      // just evaluated its predicate could sleep through this notification
      // (lost wakeup) and hang until an unrelated later deposit.
      std::scoped_lock lk(deposit_mu_);
      deposits_.fetch_add(1, std::memory_order_release);
    }
    deposit_cv_.notify_all();
  }
  [[nodiscard]] std::uint64_t deposit_count() const {
    return deposits_.load(std::memory_order_acquire);
  }
  /// Block (real time) until deposit_count() != `seen`.
  void wait_deposit_change(std::uint64_t seen) {
    std::unique_lock lk(deposit_mu_);
    deposit_cv_.wait(lk, [&] { return deposit_count() != seen; });
  }

  /// Fault layer (DESIGN.md §7): when this VCI's hardware context is marked
  /// down, traffic is redirected to a fallback VCI. -1 means "no redirect".
  [[nodiscard]] int redirect() const { return redirect_.load(std::memory_order_acquire); }
  void set_redirect(int to) { redirect_.store(to, std::memory_order_release); }

  /// Eager-credit budget for traffic *destined to* this channel (flow
  /// control, DESIGN.md §8). Senders CAS it down through
  /// Transport::try_reserve_eager; the matching engine releases through
  /// Envelope::eager_credit. Stays 0 when flow control is off.
  [[nodiscard]] std::atomic<int>& eager_credits() { return eager_credits_; }

 private:
  net::HwContext* ctx_;
  net::ChannelStats* chstats_;
  net::SlabPool payload_pool_;  // before engine_: teardown order (see accessor)
  net::ContentionLock lock_;
  MatchingEngine engine_;
  std::atomic<int> eager_credits_{0};
  std::atomic<int> redirect_{-1};
  std::atomic<std::uint64_t> deposits_{0};
  std::mutex deposit_mu_;
  std::condition_variable deposit_cv_;
};

/// Per-rank pool of VCIs. Grows on demand (endpoint creation, comm hints);
/// never shrinks. Index stability: references stay valid forever.
///
/// `at()`/`size()` are lock-free: every message on every channel resolves its
/// VCI here, so a mutex acquisition per message would be pure overhead on the
/// hot path. Slots live in fixed-size blocks behind an atomic pointer table,
/// so growth never moves an existing Vci.
///
/// Publication order (the invariant that makes reader-side relaxed loads
/// safe): a writer, under `writer_mu_`, (1) allocates/stores the block
/// pointer, (2) fully constructs the Vci into its slot, and only then
/// (3) release-stores the new count into `size_`. A reader acquire-loads
/// `size_` first; any index below that count therefore happens-after the
/// slot's construction, so the subsequent relaxed block/slot loads are safe.
/// Indices >= size() are never handed out.
class VciPool {
 public:
  /// `eager_credits` seeds every channel's flow-control budget (0 = off);
  /// `policy` selects the matching-engine indexing discipline (§10).
  VciPool(net::Nic& nic, int owner_rank, int initial, int eager_credits = 0,
          MatchPolicy policy = MatchPolicy::kAuto)
      : nic_(&nic),
        owner_rank_(owner_rank),
        eager_credits_default_(eager_credits),
        match_policy_(policy) {
    ensure(initial);
  }

  VciPool(const VciPool&) = delete;
  VciPool& operator=(const VciPool&) = delete;

  ~VciPool() {
    // Drain every engine before destroying any Vci: failover migration can
    // leave one engine holding payload blocks owned by another VCI's slab
    // pool, so all pools must still be alive while queues release.
    const int n = size_.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) at(i).engine().clear();
    for (auto& b : blocks_) delete b.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Vci& at(int i) {
    const int n = size_.load(std::memory_order_acquire);
    if (i < 0 || i >= n) throw std::out_of_range("VciPool::at");
    Block* b = blocks_[static_cast<std::size_t>(i) >> kBlockBits].load(std::memory_order_relaxed);
    return *b->slots[static_cast<std::size_t>(i) & (kBlockSize - 1)];
  }

  [[nodiscard]] int size() const { return size_.load(std::memory_order_acquire); }

  /// Grow to at least `n` VCIs; returns the new size.
  int ensure(int n) {
    std::scoped_lock lk(writer_mu_);
    while (size_.load(std::memory_order_relaxed) < n) append_locked();
    return size_.load(std::memory_order_relaxed);
  }

  /// Append one VCI; returns its index.
  int add() {
    std::scoped_lock lk(writer_mu_);
    return append_locked();
  }

  /// One recorded graceful-degradation event (DESIGN.md §7).
  struct FailoverEvent {
    int from;  ///< VCI whose hardware context went down
    int to;    ///< fallback VCI that absorbed its stream
  };

  /// Follow the redirect chain from `i` to the VCI actually carrying its
  /// traffic. Chains are short (one hop unless fallbacks also die), so the
  /// loop is bounded by the number of failovers.
  [[nodiscard]] int resolve(int i) {
    for (;;) {
      const int next = at(i).redirect();
      if (next < 0) return i;
      i = next;
    }
  }

  /// Graceful degradation: mark VCI `i`'s hardware context down and redirect
  /// its stream to the next VCI (by index, wrapping) whose context is still
  /// up. Returns the fallback index if this call performed the transition, or
  /// -1 if `i` was already redirected / no fallback exists (single-VCI pool:
  /// the stream keeps using the degraded context — there is nowhere to go).
  int fail_over(int i) {
    std::scoped_lock lk(writer_mu_);
    Vci& v = at(i);
    v.ctx().mark_down();
    if (v.redirect() >= 0) return -1;  // already failed over
    const int n = size_.load(std::memory_order_relaxed);
    for (int step = 1; step < n; ++step) {
      const int cand = (i + step) % n;
      if (!at(cand).ctx().is_down()) {
        v.set_redirect(cand);
        failover_log_.push_back({i, cand});
        return cand;
      }
    }
    return -1;
  }

  /// Copy of the recorded failover events (tests/telemetry).
  [[nodiscard]] std::vector<FailoverEvent> failover_log() {
    std::scoped_lock lk(writer_mu_);
    return failover_log_;
  }

 private:
  static constexpr int kBlockBits = 6;
  static constexpr int kBlockSize = 1 << kBlockBits;
  static constexpr int kMaxBlocks = 1024;  // 65536 VCIs per rank; plenty

  struct Block {
    std::array<std::unique_ptr<Vci>, kBlockSize> slots;
  };

  /// Caller holds writer_mu_. Returns the new slot's index.
  int append_locked() {
    const int idx = size_.load(std::memory_order_relaxed);
    const auto blk = static_cast<std::size_t>(idx) >> kBlockBits;
    if (blk >= kMaxBlocks) throw std::length_error("VciPool: too many VCIs");
    Block* b = blocks_[blk].load(std::memory_order_relaxed);
    if (b == nullptr) {
      b = new Block();
      blocks_[blk].store(b, std::memory_order_relaxed);
    }
    auto& slot = b->slots[static_cast<std::size_t>(idx) & (kBlockSize - 1)];
    slot = std::make_unique<Vci>(*nic_, &nic_->stats()->channel(owner_rank_, idx),
                                 match_policy_);
    slot->eager_credits().store(eager_credits_default_, std::memory_order_relaxed);
    size_.store(idx + 1, std::memory_order_release);  // publish (see class comment)
    return idx;
  }

  net::Nic* nic_;
  int owner_rank_;
  int eager_credits_default_;
  MatchPolicy match_policy_;
  std::mutex writer_mu_;
  std::array<std::atomic<Block*>, kMaxBlocks> blocks_{};
  std::atomic<int> size_{0};
  std::vector<FailoverEvent> failover_log_;
};

}  // namespace tmpi::detail

#endif  // TMPI_VCI_H
