#ifndef TMPI_VCI_H
#define TMPI_VCI_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/contention_lock.h"
#include "net/fabric.h"
#include "net/nic.h"
#include "net/slab_pool.h"
#include "tmpi/error.h"
#include "tmpi/matching.h"

/// \file vci.h
/// Virtual Communication Interfaces.
///
/// A VCI is a software communication channel: one matching engine plus one
/// lock, mapped onto a NIC hardware context (dedicated while the NIC's pool
/// lasts, shared afterwards). Operations routed to distinct VCIs proceed in
/// parallel; operations funneled through one VCI serialize on its lock and
/// its hardware context — the two regimes whose gap is the subject of the
/// reproduced paper.
///
/// A Vci is split into a compact always-present *descriptor* (a few atomics
/// plus the context reservation number — what routing, flow control and
/// failover redirection read) and a lazily built *body* holding the heavy
/// state (matching engine, slab pool, deposit mutex/condvar). Idle channels
/// therefore cost tens of bytes, which is what lets a world carry millions of
/// logical (rank, VCI) channels (DESIGN.md §11).

namespace tmpi::detail {

class Vci {
 public:
  /// Heavy per-channel state, built on first touch by VciPool::at().
  struct Body {
    net::HwContext* ctx = nullptr;
    net::ChannelStats* chstats = nullptr;
    /// Slab recycler for eager payloads *sent through* this channel
    /// (DESIGN.md §10). Declared before engine so the engine's queued
    /// envelopes release their blocks while the pool is still alive; for
    /// cross-VCI lifetimes (failover migration) VciPool's destructor drains
    /// all engines before destroying any body.
    net::SlabPool payload_pool;
    net::ContentionLock lock;
    MatchingEngine engine;
    std::atomic<std::uint64_t> deposits{0};
    std::mutex deposit_mu;
    std::condition_variable deposit_cv;
  };

  Vci() = default;
  ~Vci() { delete body_.load(std::memory_order_relaxed); }

  Vci(const Vci&) = delete;
  Vci& operator=(const Vci&) = delete;

  [[nodiscard]] net::HwContext& ctx() { return *body().ctx; }
  [[nodiscard]] net::ContentionLock& lock() { return body().lock; }
  [[nodiscard]] MatchingEngine& engine() { return body().engine; }
  /// Per-channel telemetry block (owned by the fabric's NetStats registry).
  [[nodiscard]] net::ChannelStats* chstats() const { return body().chstats; }
  [[nodiscard]] net::SlabPool& payload_pool() { return body().payload_pool; }

  /// Deposit event counter + wakeup, used by blocking probe: a prober waits
  /// until the count changes instead of charging per-poll costs.
  void note_deposit() {
    Body& b = body();
    {
      // The counter must change under the waiters' mutex, or a prober that
      // just evaluated its predicate could sleep through this notification
      // (lost wakeup) and hang until an unrelated later deposit.
      std::scoped_lock lk(b.deposit_mu);
      b.deposits.fetch_add(1, std::memory_order_release);
    }
    b.deposit_cv.notify_all();
  }
  [[nodiscard]] std::uint64_t deposit_count() const {
    return body().deposits.load(std::memory_order_acquire);
  }
  /// Block (real time) until deposit_count() != `seen`.
  void wait_deposit_change(std::uint64_t seen) {
    Body& b = body();
    std::unique_lock lk(b.deposit_mu);
    b.deposit_cv.wait(lk, [&] { return deposit_count() != seen; });
  }

  /// Fault layer (DESIGN.md §7): when this VCI's hardware context is marked
  /// down, traffic is redirected to a fallback VCI. -1 means "no redirect".
  [[nodiscard]] int redirect() const { return redirect_.load(std::memory_order_acquire); }
  void set_redirect(int to) { redirect_.store(to, std::memory_order_release); }

  /// Eager-credit budget for traffic *destined to* this channel (flow
  /// control, DESIGN.md §8). Senders CAS it down through
  /// Transport::try_reserve_eager; the matching engine releases through
  /// Envelope::eager_credit. Stays 0 when flow control is off. Lives on the
  /// descriptor so a credit probe never forces body materialization.
  [[nodiscard]] std::atomic<int>& eager_credits() { return eager_credits_; }

  /// True once the heavy body has been built (telemetry/tests).
  [[nodiscard]] bool materialized() const {
    return body_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  friend class VciPool;

  /// Callers reach a Vci through VciPool::at(), which guarantees the body is
  /// published (acquire) before the reference is handed out.
  [[nodiscard]] Body& body() const { return *body_.load(std::memory_order_acquire); }

  std::atomic<Body*> body_{nullptr};
  std::atomic<int> eager_credits_{0};
  std::atomic<int> redirect_{-1};
  int ctx_seq_ = 0;  ///< NIC context reservation (set once at slot creation)
};

/// Per-rank pool of VCIs. Grows on demand (endpoint creation, comm hints);
/// never shrinks. Index stability: references stay valid forever.
///
/// `at()`/`size()` are lock-free on the warm path: every message on every
/// channel resolves its VCI here, so a mutex acquisition per message would be
/// pure overhead on the hot path. Slots live in fixed-size blocks behind an
/// atomic pointer table, so growth never moves an existing Vci.
///
/// Two publication layers keep readers lock-free (DESIGN.md §11):
///
/// 1. Slot publication — a writer, under `writer_mu_`, (1) allocates/stores
///    the block pointer, (2) fully initializes the slot's descriptor, and
///    only then (3) release-stores the new count into `size_`. A reader
///    acquire-loads `size_` first; any index below that count therefore
///    happens-after the descriptor's initialization, so the subsequent
///    relaxed block/slot loads are safe. Indices >= size() are never handed
///    out.
/// 2. Body publication — the heavy body is built on first at() touch: the
///    builder, under `body_mu_`, double-checks, fully constructs the Body,
///    and release-stores its pointer; readers acquire-load it and only fall
///    into the slow path on null. First touch is the only time a mutex is
///    taken.
class VciPool {
 public:
  static constexpr int kBlockBits = 6;
  static constexpr int kBlockSize = 1 << kBlockBits;
  static constexpr int kMaxBlocks = 1024;
  /// Hard per-rank channel capacity (65536); WorldConfig::num_vcis is bounded
  /// against this at World construction.
  static constexpr int kCapacity = kBlockSize * kMaxBlocks;

  /// `initial` slots get context reservations [ctx_seq_base, ctx_seq_base +
  /// initial) on `node`'s NIC (pre-reserved at NIC construction); slots added
  /// later reserve from the NIC at creation time, preserving the eager
  /// acquisition order. `eager_credits` seeds every channel's flow-control
  /// budget (0 = off); `policy` selects the matching-engine indexing
  /// discipline (§10).
  VciPool(net::Fabric& fabric, int node, int owner_rank, int initial, int ctx_seq_base,
          int eager_credits = 0, MatchPolicy policy = MatchPolicy::kAuto)
      : fabric_(&fabric),
        node_(node),
        owner_rank_(owner_rank),
        initial_(initial),
        ctx_seq_base_(ctx_seq_base),
        eager_credits_default_(eager_credits),
        match_policy_(policy) {
    ensure(initial);
  }

  VciPool(const VciPool&) = delete;
  VciPool& operator=(const VciPool&) = delete;

  ~VciPool() {
    // Drain every materialized engine before destroying any body: failover
    // migration can leave one engine holding payload blocks owned by another
    // VCI's slab pool, so all pools must still be alive while queues release.
    const int n = size_.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      Vci::Body* b = slot(i).body_.load(std::memory_order_relaxed);
      if (b != nullptr) b->engine.clear();
    }
    for (auto& blk : blocks_) delete blk.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Vci& at(int i) {
    const int n = size_.load(std::memory_order_acquire);
    if (i < 0 || i >= n) {
      fail(Errc::kInvalidArg,
           "VciPool::at: index " + std::to_string(i) + " out of range [0, " +
               std::to_string(n) + ")");
    }
    Vci& v = slot(i);
    if (v.body_.load(std::memory_order_acquire) == nullptr) materialize(v, i);
    return v;
  }

  [[nodiscard]] int size() const { return size_.load(std::memory_order_acquire); }

  /// The VCI at `i` only if its heavy body is already built, else null.
  /// Rank-failure propagation (DESIGN.md §13) walks materialized channels
  /// without forcing idle ones into existence. The index must be < size().
  [[nodiscard]] Vci* peek(int i) const {
    Vci& v = slot(i);
    return v.body_.load(std::memory_order_acquire) != nullptr ? &v : nullptr;
  }

  /// Grow to at least `n` VCIs; returns the new size.
  int ensure(int n) {
    std::scoped_lock lk(writer_mu_);
    while (size_.load(std::memory_order_relaxed) < n) append_locked();
    return size_.load(std::memory_order_relaxed);
  }

  /// Append one VCI; returns its index.
  int add() {
    std::scoped_lock lk(writer_mu_);
    return append_locked();
  }

  /// One recorded graceful-degradation event (DESIGN.md §7).
  struct FailoverEvent {
    int from;  ///< VCI whose hardware context went down
    int to;    ///< fallback VCI that absorbed its stream
  };

  /// Follow the redirect chain from `i` to the VCI actually carrying its
  /// traffic. Chains are short (one hop unless fallbacks also die), so the
  /// loop is bounded by the number of failovers. Reads the descriptor only —
  /// never materializes a body.
  [[nodiscard]] int resolve(int i) {
    for (;;) {
      const int next = descriptor(i).redirect();
      if (next < 0) return i;
      i = next;
    }
  }

  /// Graceful degradation: mark VCI `i`'s hardware context down and redirect
  /// its stream to the next VCI (by index, wrapping) whose context is still
  /// up. Returns the fallback index if this call performed the transition, or
  /// -1 if `i` was already redirected / no fallback exists (single-VCI pool:
  /// the stream keeps using the degraded context — there is nowhere to go).
  int fail_over(int i) {
    std::scoped_lock lk(writer_mu_);
    Vci& v = at(i);
    v.ctx().mark_down();
    if (v.redirect() >= 0) return -1;  // already failed over
    const int n = size_.load(std::memory_order_relaxed);
    for (int step = 1; step < n; ++step) {
      const int cand = (i + step) % n;
      if (!at(cand).ctx().is_down()) {
        v.set_redirect(cand);
        failover_log_.push_back({i, cand});
        return cand;
      }
    }
    return -1;
  }

  /// Copy of the recorded failover events (tests/telemetry).
  [[nodiscard]] std::vector<FailoverEvent> failover_log() {
    std::scoped_lock lk(writer_mu_);
    return failover_log_;
  }

  /// Channels whose heavy body has been built (lazy-materialization
  /// telemetry; takes no lock, so counts published slots only).
  [[nodiscard]] int materialized() const {
    const int n = size_.load(std::memory_order_acquire);
    int count = 0;
    for (int i = 0; i < n; ++i) {
      if (slot(i).body_.load(std::memory_order_acquire) != nullptr) ++count;
    }
    return count;
  }

 private:
  struct Block {
    std::array<Vci, kBlockSize> slots;
  };

  /// Published slot without body materialization (internal fast access; the
  /// index must be < size()).
  [[nodiscard]] Vci& slot(int i) const {
    Block* b = blocks_[static_cast<std::size_t>(i) >> kBlockBits].load(std::memory_order_relaxed);
    return b->slots[static_cast<std::size_t>(i) & (kBlockSize - 1)];
  }

  /// Bounds-checked descriptor access that never builds the body.
  [[nodiscard]] Vci& descriptor(int i) const {
    const int n = size_.load(std::memory_order_acquire);
    if (i < 0 || i >= n) {
      fail(Errc::kInvalidArg,
           "VciPool::at: index " + std::to_string(i) + " out of range [0, " +
               std::to_string(n) + ")");
    }
    return slot(i);
  }

  /// First-touch slow path: build the heavy body under `body_mu_` and publish
  /// it with release so concurrent at() callers see it fully constructed.
  /// `body_mu_` is distinct from `writer_mu_` because fail_over() holds
  /// `writer_mu_` while touching slots through at().
  void materialize(Vci& v, int idx) {
    std::scoped_lock lk(body_mu_);
    if (v.body_.load(std::memory_order_relaxed) != nullptr) return;  // lost the race
    net::Nic& nic = fabric_->nic(node_);
    auto body = std::make_unique<Vci::Body>();
    body->ctx = &nic.context_for(v.ctx_seq_);
    body->chstats = &nic.stats()->channel(owner_rank_, idx);
    body->engine.configure(match_policy_, body->chstats);
    v.body_.store(body.release(), std::memory_order_release);  // publish
  }

  /// Caller holds writer_mu_. Returns the new slot's index.
  int append_locked() {
    const int idx = size_.load(std::memory_order_relaxed);
    const auto blk = static_cast<std::size_t>(idx) >> kBlockBits;
    if (blk >= kMaxBlocks) {
      fail(Errc::kInvalidArg,
           "VciPool: per-rank VCI capacity exceeded (" + std::to_string(kCapacity) + ")");
    }
    Block* b = blocks_[blk].load(std::memory_order_relaxed);
    if (b == nullptr) {
      b = new Block();
      blocks_[blk].store(b, std::memory_order_relaxed);
    }
    Vci& v = b->slots[static_cast<std::size_t>(idx) & (kBlockSize - 1)];
    // Initial slots use the sequence range the NIC pre-reserved for this
    // rank's pool; growth slots reserve now, at the same program point the
    // eager scheme called acquire_context().
    v.ctx_seq_ = idx < initial_ ? ctx_seq_base_ + idx : fabric_->nic(node_).reserve_seq();
    v.eager_credits_.store(eager_credits_default_, std::memory_order_relaxed);
    size_.store(idx + 1, std::memory_order_release);  // publish (see class comment)
    return idx;
  }

  net::Fabric* fabric_;
  int node_;
  int owner_rank_;
  int initial_;
  int ctx_seq_base_;
  int eager_credits_default_;
  MatchPolicy match_policy_;
  std::mutex writer_mu_;
  std::mutex body_mu_;
  std::array<std::atomic<Block*>, kMaxBlocks> blocks_{};
  std::atomic<int> size_{0};
  std::vector<FailoverEvent> failover_log_;
};

}  // namespace tmpi::detail

#endif  // TMPI_VCI_H
