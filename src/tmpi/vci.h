#ifndef TMPI_VCI_H
#define TMPI_VCI_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/contention_lock.h"
#include "net/nic.h"
#include "tmpi/matching.h"

/// \file vci.h
/// Virtual Communication Interfaces.
///
/// A VCI is a software communication channel: one matching engine plus one
/// lock, mapped onto a NIC hardware context (dedicated while the NIC's pool
/// lasts, shared afterwards). Operations routed to distinct VCIs proceed in
/// parallel; operations funneled through one VCI serialize on its lock and
/// its hardware context — the two regimes whose gap is the subject of the
/// reproduced paper.

namespace tmpi::detail {

class Vci {
 public:
  explicit Vci(net::Nic& nic) : ctx_(&nic.acquire_context()) {}

  Vci(const Vci&) = delete;
  Vci& operator=(const Vci&) = delete;

  [[nodiscard]] net::HwContext& ctx() { return *ctx_; }
  [[nodiscard]] net::ContentionLock& lock() { return lock_; }
  [[nodiscard]] MatchingEngine& engine() { return engine_; }

  /// Deposit event counter + wakeup, used by blocking probe: a prober waits
  /// until the count changes instead of charging per-poll costs.
  void note_deposit() {
    {
      // The counter must change under the waiters' mutex, or a prober that
      // just evaluated its predicate could sleep through this notification
      // (lost wakeup) and hang until an unrelated later deposit.
      std::scoped_lock lk(deposit_mu_);
      deposits_.fetch_add(1, std::memory_order_release);
    }
    deposit_cv_.notify_all();
  }
  [[nodiscard]] std::uint64_t deposit_count() const {
    return deposits_.load(std::memory_order_acquire);
  }
  /// Block (real time) until deposit_count() != `seen`.
  void wait_deposit_change(std::uint64_t seen) {
    std::unique_lock lk(deposit_mu_);
    deposit_cv_.wait(lk, [&] { return deposit_count() != seen; });
  }

 private:
  net::HwContext* ctx_;
  net::ContentionLock lock_;
  MatchingEngine engine_;
  std::atomic<std::uint64_t> deposits_{0};
  std::mutex deposit_mu_;
  std::condition_variable deposit_cv_;
};

/// Per-rank pool of VCIs. Grows on demand (endpoint creation, comm hints);
/// never shrinks. Index stability: references stay valid forever.
class VciPool {
 public:
  VciPool(net::Nic& nic, int initial) : nic_(&nic) {
    for (int i = 0; i < initial; ++i) vcis_.push_back(std::make_unique<Vci>(*nic_));
  }

  VciPool(const VciPool&) = delete;
  VciPool& operator=(const VciPool&) = delete;

  [[nodiscard]] Vci& at(int i) {
    std::scoped_lock lk(mu_);
    return *vcis_.at(static_cast<std::size_t>(i));
  }

  [[nodiscard]] int size() const {
    std::scoped_lock lk(mu_);
    return static_cast<int>(vcis_.size());
  }

  /// Grow to at least `n` VCIs; returns the new size.
  int ensure(int n) {
    std::scoped_lock lk(mu_);
    while (static_cast<int>(vcis_.size()) < n) vcis_.push_back(std::make_unique<Vci>(*nic_));
    return static_cast<int>(vcis_.size());
  }

  /// Append one VCI; returns its index.
  int add() {
    std::scoped_lock lk(mu_);
    vcis_.push_back(std::make_unique<Vci>(*nic_));
    return static_cast<int>(vcis_.size()) - 1;
  }

 private:
  net::Nic* nic_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Vci>> vcis_;
};

}  // namespace tmpi::detail

#endif  // TMPI_VCI_H
