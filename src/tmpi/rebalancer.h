#ifndef TMPI_REBALANCER_H
#define TMPI_REBALANCER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stats.h"
#include "net/virtual_clock.h"
#include "tmpi/comm.h"
#include "tmpi/info.h"

/// \file rebalancer.h
/// Adaptive VCI rebalancing (DESIGN.md §15).
///
/// The paper leaves communicator→VCI mapping static and user-chosen; the
/// Fig. 4 ideal-vs-naive gap is the price of guessing wrong. This policy
/// engine closes ROADMAP item 3: it periodically (every
/// `tmpi_rebalance_window_ns` of *virtual* time, piggybacked on the
/// transport choke points the MetricsSampler already hooks) snapshots
/// per-(rank, VCI) load from the ChannelStats registry, detects hot/cold
/// channels via a configurable max/mean imbalance threshold, and migrates
/// single-VCI communicators between channels online — moving their posted
/// and unexpected queues with the context-filtered MatchingEngine::absorb
/// under the fail-over dual-lock discipline, so in-flight sends and
/// receives observe a single cutover per epoch.
///
/// OFF by default. With `tmpi_adaptive=off` no Rebalancer is constructed,
/// no VciRemap is installed on any communicator, and every hot path stays
/// on the null-pointer fast test — virtual clocks, stats, and payloads are
/// bit-identical to a build without this subsystem (pinned by the
/// rebalance twin-parity suite).

namespace tmpi {

class World;

/// Resolved adaptive-mapping knobs. Follows the OverloadConfig/MetricsConfig
/// layering: Info hints (`WorldConfig::rebalance_info`) first, then the same
/// names uppercased as environment variables overlay them.
struct RebalanceConfig {
  /// Master switch (`tmpi_adaptive`): accepts 1/0, on/off, true/false.
  bool adaptive = false;
  /// Epoch length in virtual ns (`tmpi_rebalance_window_ns`). The policy
  /// runs at most once per window; 0 disables even when adaptive is on.
  net::Time window_ns = 500000;
  /// Max/mean channel-load ratio that triggers a repack
  /// (`tmpi_imbalance_threshold`). Loads below the threshold leave the
  /// current mapping untouched — migration is not free.
  double imbalance_threshold = 2.0;

  [[nodiscard]] bool enabled() const { return adaptive && window_ns > 0; }

  /// Apply one `tmpi_*` key; returns false if the key is not ours.
  bool set(const std::string& key, const std::string& value);

  /// Overlay TMPI_ADAPTIVE / TMPI_REBALANCE_WINDOW_NS /
  /// TMPI_IMBALANCE_THRESHOLD over `base`.
  [[nodiscard]] static RebalanceConfig from_env(RebalanceConfig base);
};

namespace detail {

/// The telemetry-driven mapping policy engine. One per World, constructed
/// only when the resolved RebalanceConfig is enabled; the transport and the
/// routing layer treat a null engine as "static mapping" with zero cost.
class Rebalancer {
 public:
  Rebalancer(World& w, RebalanceConfig cfg);

  [[nodiscard]] const RebalanceConfig& config() const { return cfg_; }

  /// Register a communicator with the policy engine. Only non-endpoints
  /// kSingle-policy communicators (the comm-per-stream pattern whose static
  /// placement the paper shows going wrong) get a VciRemap installed and
  /// become migratable; other policies already spread their traffic by
  /// tag/endpoint and are left alone. Called from every comm creation path
  /// before the new communicator is published to its member ranks.
  void track(const std::shared_ptr<CommImpl>& c);

  /// Hot-path epoch check: one relaxed load while `now` is inside the
  /// current window. Called from the transport choke points (inject /
  /// deliver) with no VCI lock held.
  void maybe_rebalance(net::Time now) {
    if (now < next_epoch_.load(std::memory_order_relaxed)) return;
    rebalance(now);
  }

  /// The VCI a message or receive on `ctx_id` must land on right now, or
  /// `fallback` when the context belongs to an untracked communicator. The
  /// transport re-checks this under the target VCI's lock and retries on a
  /// mismatch, which is what makes the cutover race-free against the
  /// migrating epoch (see deliver_now / post_recv).
  [[nodiscard]] int current_vci(int ctx_id, int fallback) const;

  /// Epochs that actually migrated at least one communicator.
  [[nodiscard]] std::uint64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }
  /// Matching-engine entries moved across channels so far.
  [[nodiscard]] std::uint64_t migrated_entries() const {
    return migrated_.load(std::memory_order_relaxed);
  }
  /// Max/mean channel load of the last closed window (policy input signal).
  [[nodiscard]] double last_imbalance() const {
    return last_imbalance_.load(std::memory_order_relaxed);
  }

 private:
  struct Tracked {
    std::weak_ptr<CommImpl> comm;
    std::shared_ptr<VciRemap> remap;  ///< shared with the CommImpl
    std::uint64_t last_route_ops = 0; ///< telescoped per-window weight base
    std::uint64_t ewma = 0;           ///< decayed load: window + ewma/2
  };

  /// Close the window that `now` crossed into: snapshot channel loads,
  /// compute the imbalance, and repack/migrate when it exceeds the
  /// threshold. Serialized on mu_; late crossers return immediately.
  void rebalance(net::Time now);

  /// True when pool index `idx` can carry new traffic on every materialized
  /// rank: inside the base pool, not redirected by fail-over, and its
  /// hardware context (when built) is not down. A down context must never
  /// be resurrected by a rebalance — traffic targeted at it follows the
  /// redirect chain exactly as fail-over left it.
  [[nodiscard]] bool vci_usable(int idx) const;

  /// Flip `c`'s mapping from pool index `from` to `to` and migrate its
  /// queued entries on every materialized member rank, following redirect
  /// chains on both endpoints and taking the two VCI locks in pool-index
  /// order (the fail_over_stream discipline). Returns entries moved.
  std::uint64_t migrate_comm(CommImpl& c, VciRemap& remap, int from, int to, net::Time now);

  World* w_;
  RebalanceConfig cfg_;
  std::atomic<net::Time> next_epoch_;
  std::atomic<std::uint64_t> rebalances_{0};
  std::atomic<std::uint64_t> migrated_{0};
  std::atomic<double> last_imbalance_{0.0};

  /// Epoch + tracked-set mutex. Lock order: mu_ before VCI locks; the
  /// depositor side holds a VCI lock and only ever takes ctx_mu_, so the
  /// two orders cannot form a cycle.
  std::mutex mu_;
  std::vector<Tracked> comms_;
  net::NetStatsSnapshot prev_;  ///< telescoped channel-load base (under mu_)

  /// ctx id -> remap cell for the transport's under-lock re-check. Values
  /// are shared_ptr so a looked-up cell can never dangle; entries for dead
  /// communicators are harmless (their contexts carry no traffic) and are
  /// bounded by comm-creation count.
  mutable std::mutex ctx_mu_;
  std::unordered_map<int, std::shared_ptr<VciRemap>> ctx_map_;
};

}  // namespace detail
}  // namespace tmpi

#endif  // TMPI_REBALANCER_H
