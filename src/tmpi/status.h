#ifndef TMPI_STATUS_H
#define TMPI_STATUS_H

#include <cstddef>

#include "tmpi/error.h"
#include "tmpi/types.h"

/// \file status.h
/// Completion status of a receive.

namespace tmpi {

struct Status {
  int source = kAnySource;  ///< comm rank of the sender
  Tag tag = kAnyTag;        ///< matched tag
  std::size_t bytes = 0;    ///< received payload size
  Errc err = Errc::kSuccess;  ///< per-op error code under errors-return (DESIGN.md §8)

  /// Element count for a datatype of the given size.
  [[nodiscard]] int count(std::size_t elem_size) const {
    return elem_size == 0 ? 0 : static_cast<int>(bytes / elem_size);
  }
};

}  // namespace tmpi

#endif  // TMPI_STATUS_H
