#include "tmpi/persistent.h"

#include <memory>

#include "tmpi/error.h"
#include "tmpi/p2p.h"
#include "tmpi/world.h"

namespace tmpi {

namespace detail {

struct PersistState : ReqState {
  bool is_send = false;
  const void* sbuf = nullptr;
  void* rbuf = nullptr;
  std::size_t bytes = 0;
  int peer = 0;
  Tag tag = 0;
  Comm comm;
  bool active = false;
  std::weak_ptr<PersistState> self;  ///< set at creation, used to re-post

  void on_start() override {
    {
      std::scoped_lock lk(mu);
      TMPI_REQUIRE(!active || complete, Errc::kPartitionState,
                   "start on an incomplete active persistent request");
      complete = false;
      errored = false;
    }
    active = true;
    auto sp = std::static_pointer_cast<ReqState>(self.lock());
    TMPI_REQUIRE(sp != nullptr, Errc::kInternal, "persistent state expired");
    if (is_send) {
      isend_reusing(sp, sbuf, bytes, comm.impl()->ctx_id, peer, tag, comm);
    } else {
      irecv_reusing(sp, rbuf, bytes, comm.impl()->ctx_id, peer, tag, comm);
    }
  }
};

}  // namespace detail

Request send_init(const void* buf, int count, Datatype dt, int dst, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  TMPI_REQUIRE(dst >= 0 && dst < comm.size(), Errc::kInvalidArg, "rank out of range");
  World& w = comm.world();
  TMPI_REQUIRE(tag >= 0 && tag <= w.tag_ub(), Errc::kTagOverflow, "tag exceeds tag_ub");

  auto s = std::make_shared<detail::PersistState>();
  s->kind = detail::ReqKind::kPersistSend;
  s->is_send = true;
  s->sbuf = buf;
  s->bytes = dt.extent(count);
  s->peer = dst;
  s->tag = tag;
  s->comm = comm;
  s->self = s;
  // Created inactive and "complete" so the first start() passes its check.
  s->complete = true;
  return Request(s);
}

Request recv_init(void* buf, int count, Datatype dt, int src, Tag tag, const Comm& comm) {
  TMPI_REQUIRE(comm.valid(), Errc::kInvalidArg, "invalid comm");
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count");
  TMPI_REQUIRE(src == kAnySource || (src >= 0 && src < comm.size()), Errc::kInvalidArg,
               "rank out of range");
  World& w = comm.world();
  TMPI_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= w.tag_ub()), Errc::kTagOverflow,
               "tag exceeds tag_ub");

  auto s = std::make_shared<detail::PersistState>();
  s->kind = detail::ReqKind::kPersistRecv;
  s->is_send = false;
  s->rbuf = buf;
  s->bytes = dt.extent(count);
  s->peer = src;
  s->tag = tag;
  s->comm = comm;
  s->self = s;
  s->complete = true;
  return Request(s);
}

}  // namespace tmpi
