#include "tmpi/datatype.h"

#include <algorithm>
#include <cstring>

#include "tmpi/error.h"

namespace tmpi {

const char* to_string(TypeId id) {
  switch (id) {
    case TypeId::kByte: return "byte";
    case TypeId::kChar: return "char";
    case TypeId::kInt32: return "int32";
    case TypeId::kInt64: return "int64";
    case TypeId::kUint64: return "uint64";
    case TypeId::kFloat: return "float";
    case TypeId::kDouble: return "double";
  }
  return "?";
}

const char* to_string(ThreadLevel level) {
  switch (level) {
    case ThreadLevel::kSingle: return "THREAD_SINGLE";
    case ThreadLevel::kFunneled: return "THREAD_FUNNELED";
    case ThreadLevel::kSerialized: return "THREAD_SERIALIZED";
    case ThreadLevel::kMultiple: return "THREAD_MULTIPLE";
  }
  return "?";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kSum: return "sum";
    case Op::kProd: return "prod";
    case Op::kMax: return "max";
    case Op::kMin: return "min";
    case Op::kReplace: return "replace";
    case Op::kNoOp: return "no_op";
  }
  return "?";
}

namespace {

template <typename T>
void apply_typed(Op op, T* inout, const T* in, int count) {
  switch (op) {
    case Op::kSum:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(inout[i] + in[i]);
      break;
    case Op::kProd:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(inout[i] * in[i]);
      break;
    case Op::kMax:
      for (int i = 0; i < count; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
    case Op::kMin:
      for (int i = 0; i < count; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case Op::kReplace:
      std::memcpy(inout, in, sizeof(T) * static_cast<std::size_t>(count));
      break;
    case Op::kNoOp:
      break;
  }
}

}  // namespace

void reduce_apply(Op op, Datatype dt, void* inout, const void* in, int count) {
  TMPI_REQUIRE(count >= 0, Errc::kInvalidArg, "negative count in reduce_apply");
  switch (dt.id()) {
    case TypeId::kByte:
    case TypeId::kChar:
      if (op == Op::kReplace) {
        std::memcpy(inout, in, static_cast<std::size_t>(count));
      } else if (op != Op::kNoOp) {
        apply_typed(op, static_cast<std::uint8_t*>(inout), static_cast<const std::uint8_t*>(in),
                    count);
      }
      break;
    case TypeId::kInt32:
      apply_typed(op, static_cast<std::int32_t*>(inout), static_cast<const std::int32_t*>(in),
                  count);
      break;
    case TypeId::kInt64:
      apply_typed(op, static_cast<std::int64_t*>(inout), static_cast<const std::int64_t*>(in),
                  count);
      break;
    case TypeId::kUint64:
      apply_typed(op, static_cast<std::uint64_t*>(inout), static_cast<const std::uint64_t*>(in),
                  count);
      break;
    case TypeId::kFloat:
      apply_typed(op, static_cast<float*>(inout), static_cast<const float*>(in), count);
      break;
    case TypeId::kDouble:
      apply_typed(op, static_cast<double*>(inout), static_cast<const double*>(in), count);
      break;
  }
}

const char* to_string(Errc code) {
  switch (code) {
    case Errc::kSuccess: return "success";
    case Errc::kInvalidArg: return "invalid argument";
    case Errc::kTagOverflow: return "tag overflow";
    case Errc::kWildcardViolation: return "wildcard violates comm assertion";
    case Errc::kConcurrentCollective: return "concurrent collectives on one communicator";
    case Errc::kThreadLevel: return "thread level violation";
    case Errc::kTruncate: return "message truncated";
    case Errc::kPartitionState: return "partitioned operation state error";
    case Errc::kTimeout: return "operation timed out";
    case Errc::kResourceExhausted: return "channel resources exhausted";
    case Errc::kProcFailed: return "process failed";
    case Errc::kInternal: return "internal error";
  }
  return "?";
}

const char* to_string(ErrorHandler handler) {
  switch (handler) {
    case ErrorHandler::kErrorsAreFatal: return "errors-are-fatal";
    case ErrorHandler::kErrorsReturn: return "errors-return";
  }
  return "?";
}

Errc errc_from_int(int value) {
  TMPI_REQUIRE(value >= 0 && value < kErrcCount, Errc::kInvalidArg,
               "errc_from_int: value out of range");
  return static_cast<Errc>(value);
}

}  // namespace tmpi
