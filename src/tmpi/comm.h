#ifndef TMPI_COMM_H
#define TMPI_COMM_H

#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/virtual_clock.h"
#include "tmpi/error.h"
#include "tmpi/info.h"
#include "tmpi/types.h"

/// \file comm.h
/// Communicators, including the user-visible endpoints extension.
///
/// A Comm is a per-rank *handle* onto a shared CommImpl. For an endpoints
/// communicator (the paper's Mechanism 3 / proposed MPI Rankpoints), each
/// handle carries a distinct rank and a dedicated VCI: messages between
/// different endpoints are unordered, i.e. logically parallel.
///
/// The VCI routing policy of a communicator is derived from its Info hints at
/// creation time, mirroring MPICH's behaviour that the paper studies:
///
/// | hints                                                        | policy |
/// |--------------------------------------------------------------|--------|
/// | none                                                         | single VCI (assigned by hashing the context id into the global pool) |
/// | allow_overtaking                                             | sends spread by tag hash; receives serialized on VCI 0 (wildcards possible) |
/// | allow_overtaking + no_any_tag + no_any_source                | both sides spread by tag hash |
/// | ... + tag-bit hints (one-to-one)                             | sender-tid bits pick the local VCI, receiver-tid bits the remote VCI |
/// | endpoints communicator                                       | per-endpoint dedicated VCI |

namespace tmpi {

class World;
class Comm;

enum class VciPolicyKind {
  kSingle,             ///< one VCI for everything on this comm
  kSendHashRecvSerial, ///< overtaking allowed, wildcards possible
  kTagHash,            ///< overtaking + no wildcards: hash tag on both sides
  kTagBitsOneToOne,    ///< explicit tid bits in the tag (Listing 2)
  kEndpoint,           ///< per-endpoint VCI (Listing 3)
};

const char* to_string(VciPolicyKind k);

namespace detail {

struct PartChannel;
struct ReqState;

/// Key identifying a partitioned channel within a communicator.
struct PartKey {
  int src = 0;
  int dst = 0;
  Tag tag = 0;
  auto operator<=>(const PartKey&) const = default;
};

/// One comm rank: which world rank owns it and (for endpoints comms) the
/// dedicated VCI pool index on that rank.
struct EpEntry {
  int world_rank = 0;
  int vci = -1;  ///< pool index on the owning rank; -1: use the comm policy
};

/// Compact endpoint map (DESIGN.md §11). Most communicators map comm rank i
/// to world rank `base + stride * i` with no per-endpoint VCI — COMM_WORLD,
/// dups, and regular splits — so storing O(nranks) EpEntry would make every
/// communicator cost as much as the world it spans. The regular form stores
/// just (base, stride, size); push_back auto-detects regularity and falls
/// back to the dense vector on the first irregular entry or explicit VCI
/// (endpoints communicators).
class EpMap {
 public:
  /// Reset to the identity mapping over `n` ranks (COMM_WORLD).
  void assign_identity(int n) {
    regular_ = true;
    base_ = 0;
    stride_ = 1;
    n_ = n;
    dense_.clear();
  }

  [[nodiscard]] int size() const {
    return regular_ ? n_ : static_cast<int>(dense_.size());
  }
  [[nodiscard]] bool regular() const { return regular_; }
  [[nodiscard]] int base() const { return base_; }
  [[nodiscard]] int stride() const { return stride_; }

  [[nodiscard]] int world_rank_of(int i) const {
    check(i);
    return regular_ ? base_ + stride_ * i : dense_[static_cast<std::size_t>(i)].world_rank;
  }
  [[nodiscard]] int vci_of(int i) const {
    check(i);
    return regular_ ? -1 : dense_[static_cast<std::size_t>(i)].vci;
  }
  [[nodiscard]] EpEntry at(int i) const { return EpEntry{world_rank_of(i), vci_of(i)}; }

  void push_back(EpEntry e) {
    if (regular_) {
      if (e.vci == -1) {
        if (n_ == 0) {
          base_ = e.world_rank;
          stride_ = 1;  // provisional until a second entry fixes it
          n_ = 1;
          return;
        }
        if (n_ == 1) {
          stride_ = e.world_rank - base_;
          n_ = 2;
          return;
        }
        if (e.world_rank == base_ + stride_ * n_) {
          ++n_;
          return;
        }
      }
      densify();
    }
    dense_.push_back(e);
  }

 private:
  void check(int i) const {
    TMPI_REQUIRE(i >= 0 && i < size(), Errc::kInvalidArg, "comm rank out of range");
  }

  void densify() {
    dense_.reserve(static_cast<std::size_t>(n_) + 1);
    for (int i = 0; i < n_; ++i) dense_.push_back(EpEntry{base_ + stride_ * i, -1});
    regular_ = false;
    n_ = 0;
  }

  bool regular_ = true;
  int base_ = 0;
  int stride_ = 1;
  int n_ = 0;
  std::vector<EpEntry> dense_;  ///< irregular fallback (endpoints comms)
};

enum class DeriveOp { kDup, kSplit, kEndpoints, kWindow };

/// Adaptive mapping override installed by the Rebalancer (DESIGN.md §15) on
/// single-VCI communicators. `vci` >= 0 replaces `comm_vcis[0]` in both
/// route_send and route_recv; -1 means "use the static map". `route_ops`
/// counts routing decisions so the policy engine can attribute per-window
/// load to communicators when deciding what to migrate. Never installed when
/// `tmpi_adaptive` is off, so the static hot path stays a null-pointer test.
struct VciRemap {
  std::atomic<int> vci{-1};
  std::atomic<std::uint64_t> route_ops{0};
};

/// Per-rank arguments to a collective derivation (dup/split/endpoints/window).
struct DeriveArgs {
  int color = 0;
  int key = 0;
  int num_ep = 0;
  Info info;
  void* base = nullptr;     // window creation
  std::size_t bytes = 0;    // window creation
};

struct CommImpl {
  World* world = nullptr;
  int ctx_id = 0;       ///< point-to-point matching context
  int coll_ctx_id = 0;  ///< collective matching context
  int part_ctx_id = 0;  ///< partitioned matching context
  std::uint64_t seq_no = 0;  ///< creation sequence (for VCI hashing)
  Info info;

  EpMap eps;  ///< comm rank -> (world rank, endpoint VCI); compact when regular
  bool is_endpoints = false;

  VciPolicyKind policy = VciPolicyKind::kSingle;
  std::vector<int> comm_vcis;  ///< pool indices (valid on every member rank)
  /// Adaptive-mapping cell, shared with the World's Rebalancer; null unless
  /// `tmpi_adaptive` is on and this comm is an eligible kSingle communicator.
  std::shared_ptr<VciRemap> remap;
  int tag_bits_vci = 0;        ///< tid field width for kTagBitsOneToOne
  bool allow_overtaking = false;
  bool no_any_tag = false;
  bool no_any_source = false;

  /// How recoverable failures (kTimeout, kResourceExhausted) surface on this
  /// communicator (DESIGN.md §8). Parsed from the `tmpi_errhandler` info key
  /// in finalize_structure, so every creation path — world, dup, split,
  /// endpoints — honours it; mutable later via Comm::set_errhandler.
  ErrorHandler errhandler = ErrorHandler::kErrorsAreFatal;

  /// Collective serialization guard and per-rank collective sequence numbers
  /// (all ranks observe the same sequence because collectives are serial per
  /// communicator — enforced via coll_active).
  std::unique_ptr<std::atomic<int>[]> coll_active;
  std::unique_ptr<std::uint64_t[]> coll_seq;

  /// Node topology for hierarchical collectives. For regular stride-1
  /// endpoint maps the per-rank tables are pure arithmetic (computed on
  /// demand through node_of_comm_rank / leader_of_comm_rank); the dense
  /// vectors below are the irregular fallback. `leaders` is always
  /// materialized — it is O(#nodes), not O(comm size).
  bool topo_computed = false;
  std::vector<int> node_of_rank;   ///< comm rank -> node (dense fallback)
  std::vector<int> leader_of_rank; ///< comm rank -> leader comm rank (dense fallback)
  std::vector<int> leaders;        ///< distinct leaders, ascending

  [[nodiscard]] int node_of_comm_rank(int r) const;
  [[nodiscard]] int leader_of_comm_rank(int r) const;

  // ---- Collective derivation rendezvous -----------------------------------
  struct Pending {
    DeriveOp op{};
    int arrived = 0;
    int read = 0;
    bool built = false;
    bool poisoned = false;  ///< ranks called mismatched operations
    std::vector<DeriveArgs> args;
    std::vector<std::shared_ptr<CommImpl>> result_impl;  // per parent rank
    std::vector<int> result_rank;                        // per parent rank
    std::vector<std::vector<std::pair<std::shared_ptr<CommImpl>, int>>> ep_result;
    std::shared_ptr<void> extra_result;  // WindowImpl for kWindow
  };
  std::mutex derive_mu;
  std::condition_variable derive_cv;
  std::map<std::uint64_t, Pending> pending;
  std::vector<std::uint64_t> derive_seq;  ///< per comm rank

  /// Join the derivation numbered by this rank's next sequence value; blocks
  /// until all ranks arrived and the result is built (the last arrival builds
  /// via `build`). Returns the pending slot; the caller must consume its
  /// result via `consume_pending`.
  Pending& derive_join(DeriveOp op, int my_rank, DeriveArgs args, std::uint64_t* seq_out);

  /// Mark the slot consumed by one rank; erases it after the last consumer.
  void derive_consume(std::uint64_t seq);

  /// Build the result of a fully-arrived derivation (runs in the last
  /// arriving rank's thread, under derive_mu).
  void build_derivation(Pending& p);

  /// Hook installed by the RMA module: builds a WindowImpl from gathered
  /// per-rank (base, bytes) arguments. Kept as a hook so comm.cpp does not
  /// depend on the RMA layer.
  static std::shared_ptr<void> (*build_window_hook)(CommImpl&, Pending&);

  // ---- Rank-failure recovery (DESIGN.md §13) ------------------------------
  /// Latched by Comm::revoke() (user) or the collective entry wrapper (auto,
  /// on a caught kProcFailed): new user point-to-point traffic and new
  /// collectives on this communicator fail immediately with kProcFailed.
  /// Internal contexts (fragments of an already-running recovery) bypass it.
  std::atomic<bool> revoked{false};
  /// Virtual time of the first revocation (guarded by frag_mu). Fragments
  /// whose registration races the revoke fail at max(now, revoke_time) — the
  /// same clock a pre-registered fragment observes — so either interleaving
  /// of the race leaves the waiter on an identical virtual time.
  net::Time revoke_time = 0;

  /// In-flight collective fragment requests. Revocation poisons every entry
  /// with kProcFailed so survivors blocked mid-collective observe the
  /// failure uniformly instead of waiting on a peer that already bailed out.
  std::mutex frag_mu;
  std::map<std::uint64_t, std::shared_ptr<ReqState>> frags;
  std::uint64_t next_frag = 1;

  /// Register / unregister one fragment for poisoning. A registration that
  /// races an in-progress revoke fails the request immediately.
  std::uint64_t register_fragment(std::shared_ptr<ReqState> r);
  void deregister_fragment(std::uint64_t id);

  /// Latch `revoked` and fail every registered fragment with kProcFailed at
  /// virtual time `t`. Returns true on the first (counting) call.
  bool revoke_at(net::Time t);

  // ---- Fault-tolerant rendezvous (shrink / agree) -------------------------
  /// Like the derivation rendezvous above, but quorum is the *survivor* set:
  /// dead ranks never arrive, so completion waits for every live member and
  /// re-evaluates on each death notification (liveness waker). Slots are
  /// deliberately retained after completion — a rank declared dead mid-join
  /// may still read its (empty) result later, and recovery events are rare
  /// enough that the bounded leak beats a dangling reference.
  enum class FtOp { kShrink, kAgree };
  struct FtPending {
    FtOp op = FtOp::kShrink;
    bool built = false;
    bool poisoned = false;  ///< ranks mixed shrink and agree on one slot
    std::vector<char> arrived_flag;    ///< per parent comm rank
    std::vector<std::uint32_t> flags;  ///< agree contributions
    std::uint32_t agree_value = ~0u;
    std::shared_ptr<CommImpl> child;   ///< shrink result
    std::vector<int> child_rank;       ///< per parent rank; -1 = dead
  };
  std::mutex ft_mu;
  std::condition_variable ft_cv;
  std::map<std::uint64_t, FtPending> ft_pending;
  std::vector<std::uint64_t> ft_seq;  ///< per comm rank

  /// Join this rank's next fault-tolerant rendezvous; blocks until every
  /// surviving member arrived, then the last arrival builds the result
  /// (survivor communicator or agreed flag). Works on revoked communicators.
  FtPending& ft_join(FtOp op, int my_rank, std::uint32_t flag);

  /// Build the result of a fully-arrived ft rendezvous (under ft_mu).
  void build_ft(FtPending& p);

  // ---- Partitioned channels ------------------------------------------------
  std::mutex part_mu;
  std::map<PartKey, std::shared_ptr<PartChannel>> channels;

  [[nodiscard]] int size() const { return eps.size(); }
  [[nodiscard]] int world_rank_of(int comm_rank) const {
    return eps.world_rank_of(comm_rank);
  }

  /// Populate node topology and collective guards; call once eps are final.
  void finalize_structure();
};

/// VCI route of a message: pool index on the sender's rank and on the
/// receiver's rank.
struct Route {
  int local = 0;
  int remote = 0;
};

/// Compute the sender-side route. Throws on tag/hint violations.
Route route_send(const CommImpl& c, int src_rank, int dst_rank, Tag tag);

/// Compute the VCI a receive must be posted to. Throws kWildcardViolation if
/// a wildcard is used where the comm's hints (or policy) forbid it.
int route_recv(const CommImpl& c, int my_rank, int src, Tag tag);

/// Derive the VCI policy of a freshly created comm from its merged info, and
/// allocate/ensure the VCIs it uses on every member rank.
void configure_policy(CommImpl& c);

}  // namespace detail

/// Per-rank communicator handle (cheap to copy).
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<detail::CommImpl> impl, int rank)
      : impl_(std::move(impl)), rank_(rank) {}

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return impl_->size(); }
  [[nodiscard]] World& world() const { return *impl_->world; }
  [[nodiscard]] const Info& info() const { return impl_->info; }
  [[nodiscard]] bool is_endpoints() const { return impl_->is_endpoints; }
  [[nodiscard]] VciPolicyKind policy() const { return impl_->policy; }
  [[nodiscard]] const std::vector<int>& vcis() const { return impl_->comm_vcis; }
  [[nodiscard]] int world_rank_of(int comm_rank) const { return impl_->world_rank_of(comm_rank); }

  /// MPI_Comm_set_errhandler / MPI_Comm_get_errhandler (DESIGN.md §8).
  /// Affects every handle onto this communicator; not retroactive for
  /// already-issued operations.
  [[nodiscard]] ErrorHandler errhandler() const { return impl_->errhandler; }
  void set_errhandler(ErrorHandler h) const { impl_->errhandler = h; }

  /// MPI_Comm_dup: collective over all ranks of this comm.
  [[nodiscard]] Comm dup() const;

  /// MPI_Comm_dup_with_info: dup with hints merged over the parent's.
  [[nodiscard]] Comm dup_with_info(const Info& info) const;

  /// MPI_Comm_split: collective; returns this rank's color group, ordered by
  /// (key, parent rank).
  [[nodiscard]] Comm split(int color, int key) const;

  /// MPI_Comm_create_endpoints (the suspended proposal / MPI Rankpoints).
  /// Collective; returns `my_num_ep` handles, each addressable as a distinct
  /// rank of the new communicator and backed by a dedicated VCI.
  [[nodiscard]] std::vector<Comm> create_endpoints(int my_num_ep, const Info& info = {}) const;

  // ---- ULFM-style recovery (DESIGN.md §13) --------------------------------

  /// MPIX_Comm_revoke: latch this communicator as revoked. New user p2p and
  /// collectives fail with TMPI_ERR_PROC_FAILED; fragments of collectives
  /// already in flight are poisoned so blocked survivors observe the same
  /// code. Not collective — any single rank may revoke; the latch is sticky.
  void revoke() const;

  /// Has revoke() (explicit or automatic) fired on this communicator?
  [[nodiscard]] bool is_revoked() const {
    return impl_->revoked.load(std::memory_order_acquire);
  }

  /// MPIX_Comm_shrink: collective over the *surviving* members; returns a
  /// fresh, un-revoked communicator containing them in parent rank order.
  /// A caller whose rank was itself declared dead receives an invalid Comm.
  [[nodiscard]] Comm shrink() const;

  /// MPIX_Comm_agree: fault-tolerant consensus — bitwise AND of `*flag`
  /// across surviving members; every survivor returns the same value. Works
  /// on revoked communicators (it is the tool for deciding what to do next).
  Errc agree(std::uint32_t* flag) const;

  [[nodiscard]] detail::CommImpl* impl() const { return impl_.get(); }
  [[nodiscard]] const std::shared_ptr<detail::CommImpl>& impl_shared() const { return impl_; }

 private:
  std::shared_ptr<detail::CommImpl> impl_;
  int rank_ = -1;
};

}  // namespace tmpi

#endif  // TMPI_COMM_H
