#ifndef TMPI_WORLD_H
#define TMPI_WORLD_H

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/fault.h"
#include "net/flightrec.h"
#include "net/metrics.h"
#include "net/trace.h"
#include "tmpi/comm.h"
#include "tmpi/error.h"
#include "tmpi/info.h"
#include "tmpi/types.h"
#include "tmpi/vci.h"
#include "tmpi/watchdog.h"

/// \file world.h
/// The simulated MPI world: ranks, nodes, VCI pools, and the run harness.
///
/// A World plays the role of `mpiexec -n nranks` over a simulated fabric.
/// Ranks execute as OS threads within this process; each rank owns a VCI
/// pool whose VCIs map onto its node's NIC hardware contexts. The user
/// function receives a Rank handle and may spawn thread teams with
/// Rank::parallel — the MPI+threads model under study.

namespace tmpi {

namespace net {
class PdesScheduler;
}

class Rank;

struct WorldConfig {
  int nranks = 2;
  int ranks_per_node = 1;
  /// Base per-rank VCI pool size. 1 reproduces a classic THREAD_MULTIPLE
  /// library with a single global channel ("MPI+threads (Original)");
  /// larger pools let comms/tags/endpoints spread across channels.
  int num_vcis = 1;
  /// User tag width in bits; tag_ub = 2^tag_bits - 1 (Lesson 9).
  int tag_bits = 23;
  ThreadLevel level = ThreadLevel::kMultiple;
  net::CostModel cost{};
  /// Fault-injection hints (`tmpi_fault_*` keys; see net/fault.h for the key
  /// reference and plan grammar). TMPI_FAULT_* environment variables overlay
  /// these. Leave empty for a fault-free world — the transport then skips the
  /// fault layer entirely (pay-for-what-you-use).
  Info fault_info{};
  /// Overload-hardening hints (`tmpi_eager_credits`, `tmpi_unexpected_cap`,
  /// `tmpi_watchdog_ns`; see tmpi/watchdog.h). The same names uppercased as
  /// environment variables overlay these. Leave empty for the unbounded,
  /// watchdog-free configuration — bit-exact with previous releases.
  Info overload_info{};
  /// Adaptive VCI rebalancing hints (`tmpi_adaptive`,
  /// `tmpi_rebalance_window_ns`, `tmpi_imbalance_threshold`; see
  /// tmpi/rebalancer.h). The same names uppercased as environment variables
  /// overlay these. Leave empty (or `tmpi_adaptive=off`) for the static
  /// mapping — bit-exact with previous releases (DESIGN.md §15).
  Info rebalance_info{};
  /// Tracing hints (`tmpi_trace`, `tmpi_trace_path`,
  /// `tmpi_trace_buffer_events`; see net/trace.h). TMPI_TRACE* environment
  /// variables overlay these. Leave empty (or `tmpi_trace=0`) for the
  /// recorder-free configuration — bit-exact, one null-pointer test per op.
  ///
  /// The same Info also carries the flight-recorder keys (`tmpi_flightrec`,
  /// `tmpi_flightrec_path`, `tmpi_flightrec_events`; see net/flightrec.h) and
  /// the metrics-sampler keys (`tmpi_metrics_window_ns`, `tmpi_metrics_path`;
  /// see net/metrics.h) — all observability knobs ride together.
  Info trace_info{};
  /// Matching-engine indexing discipline (DESIGN.md §10): "auto" buckets
  /// entries from no-wildcard-hinted communicators, "bucket" indexes every
  /// concrete-key entry, "list" forces the seed's ordered scan. Virtual time
  /// is identical in all three (the fast path charges list-equivalent probe
  /// costs); the knob exists for benchmarking and bisection. TMPI_MATCH_MODE
  /// overrides.
  std::string match_mode = "auto";
  /// Execution engine (DESIGN.md §12): "serial" processes every remote-side
  /// delivery inline on the sending thread (the seed's bit-exact fast path);
  /// "parallel" defers deliveries to a sharded worker pool that drains
  /// independent channels concurrently, with safe-point drains keeping the
  /// virtual clocks and stats bit-identical to serial. TMPI_EXEC_MODE
  /// overrides. Worlds whose configuration requires synchronous delivery
  /// (bounded unexpected queues, scheduled ctx-down failover events) fall
  /// back to serial processing even under "parallel" — documented in §12.
  std::string exec_mode = "serial";
};

namespace detail {

class Transport;
class Rebalancer;

struct RankState {
  int rank;
  int node;
  net::VirtualClock clock;
  VciPool vcis;
  std::atomic<int> active_calls{0};

  /// `ctx_seq_base` is the first NIC context reservation of this rank's
  /// initial pool (pre-reserved at NIC construction; see net/nic.h).
  RankState(int r, int nd, net::Fabric& fabric, int nvcis, int ctx_seq_base,
            int eager_credits = 0, MatchPolicy match_policy = MatchPolicy::kAuto)
      : rank(r), node(nd), vcis(fabric, nd, r, nvcis, ctx_seq_base, eager_credits, match_policy) {}
};

/// Lazily populated rank-state table (DESIGN.md §11). Slots are atomic
/// pointers published with release after full construction; readers
/// acquire-load and fall into the striped-mutex slow path only on null, so a
/// warm rank lookup is one atomic load. Entries live until the table dies.
class RankTable {
 public:
  explicit RankTable(int n)
      : n_(n < 0 ? 0 : n),
        slots_(std::make_unique<std::atomic<RankState*>[]>(static_cast<std::size_t>(n_))) {
    for (int i = 0; i < n_; ++i) slots_[static_cast<std::size_t>(i)].store(nullptr, std::memory_order_relaxed);
  }

  RankTable(const RankTable&) = delete;
  RankTable& operator=(const RankTable&) = delete;

  ~RankTable() {
    for (int i = 0; i < n_; ++i) delete slots_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }

  [[nodiscard]] int size() const { return n_; }

  /// The state for `r`, or null if it has not been materialized (the caller
  /// checks bounds).
  [[nodiscard]] RankState* get(int r) const {
    return slots_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  /// Double-checked materialization: `build(r)` runs at most once per rank,
  /// under the rank's stripe mutex, and its result is release-published.
  template <typename Build>
  RankState& get_or_create(int r, Build&& build) {
    auto& slot = slots_[static_cast<std::size_t>(r)];
    std::scoped_lock lk(mu_[static_cast<std::size_t>(r) & (kStripes - 1)]);
    RankState* st = slot.load(std::memory_order_relaxed);
    if (st == nullptr) {
      st = build(r);
      slot.store(st, std::memory_order_release);  // publish fully constructed
    }
    return *st;
  }

  /// Ranks materialized so far (telemetry).
  [[nodiscard]] int materialized() const {
    int count = 0;
    for (int i = 0; i < n_; ++i) {
      if (get(i) != nullptr) ++count;
    }
    return count;
  }

 private:
  static constexpr std::size_t kStripes = 64;  // power of two

  int n_;
  std::unique_ptr<std::atomic<RankState*>[]> slots_;
  std::array<std::mutex, kStripes> mu_;
};

/// RAII thread-level enforcement: counts concurrent runtime calls per rank
/// and rejects concurrency when the world was initialized below
/// THREAD_MULTIPLE.
class CallGuard {
 public:
  CallGuard(RankState& st, ThreadLevel level) : st_(st) {
    const int prev = st_.active_calls.fetch_add(1, std::memory_order_acq_rel);
    if (prev > 0 && level != ThreadLevel::kMultiple) {
      st_.active_calls.fetch_sub(1, std::memory_order_acq_rel);
      fail(Errc::kThreadLevel, "concurrent runtime calls require THREAD_MULTIPLE");
    }
  }
  ~CallGuard() { st_.active_calls.fetch_sub(1, std::memory_order_acq_rel); }
  CallGuard(const CallGuard&) = delete;
  CallGuard& operator=(const CallGuard&) = delete;

 private:
  RankState& st_;
};

}  // namespace detail

class World {
 public:
  explicit World(WorldConfig cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Execute `fn` once per rank, each on its own OS thread with a bound
  /// virtual clock. Rethrows the first exception any rank threw. May be
  /// called repeatedly; virtual clocks persist across calls.
  void run(const std::function<void(Rank&)>& fn);

  [[nodiscard]] int nranks() const { return cfg_.nranks; }
  [[nodiscard]] int num_nodes() const { return fabric_->num_nodes(); }
  [[nodiscard]] int node_of(int world_rank) const {
    return world_rank / cfg_.ranks_per_node;
  }
  [[nodiscard]] Tag tag_ub() const {
    return static_cast<Tag>((1u << cfg_.tag_bits) - 1u);
  }
  [[nodiscard]] const WorldConfig& config() const { return cfg_; }

  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const net::Fabric& fabric() const { return *fabric_; }
  [[nodiscard]] const net::CostModel& cost() const { return fabric_->cost(); }
  /// The unified message pipeline all runtime traffic flows through.
  [[nodiscard]] detail::Transport& transport() { return *transport_; }
  /// Fault layer (DESIGN.md §7): null when no FaultPlan is active, which
  /// keeps the transport on its zero-overhead fast path.
  [[nodiscard]] net::FaultInjector* fault_injector() const { return fault_injector_.get(); }
  /// Overload layer (DESIGN.md §8): resolved flow-control/watchdog knobs.
  [[nodiscard]] const OverloadConfig& overload() const { return overload_; }
  /// Progress watchdog; null unless `tmpi_watchdog_ns` > 0.
  [[nodiscard]] detail::ProgressWatchdog* watchdog() const { return watchdog_.get(); }
  /// Tracing layer (DESIGN.md §9): null unless `tmpi_trace` is on, which
  /// keeps the transport on its untraced fast path.
  [[nodiscard]] net::TraceRecorder* tracer() const { return tracer_.get(); }
  /// Black-box flight recorder (DESIGN.md §14): always on by default — a
  /// small bounded ring dumped post-mortem by watchdog trips, rank failures,
  /// revokes, and fatal errors. Null only when `tmpi_flightrec=0`.
  [[nodiscard]] net::FlightRecorder* flightrec() const { return flightrec_.get(); }
  /// Metrics time-series sampler (DESIGN.md §14): null unless
  /// `tmpi_metrics_window_ns` > 0, which keeps the transport fast path at one
  /// relaxed load per op.
  [[nodiscard]] net::MetricsSampler* metrics() const { return metrics_.get(); }
  /// Resolved matching-engine indexing discipline (DESIGN.md §10).
  [[nodiscard]] detail::MatchPolicy match_policy() const { return match_policy_; }
  /// Adaptive mapping policy engine (DESIGN.md §15): null unless the
  /// resolved `tmpi_adaptive` knob is on, which keeps routing and the
  /// transport on their static null-pointer fast paths.
  [[nodiscard]] detail::Rebalancer* rebalancer() const { return rebalancer_.get(); }
  /// Hand a freshly created communicator to the policy engine (no-op when
  /// adaptive mapping is off). Every creation path — world, dup, split,
  /// endpoints, shrink — calls this before publishing the communicator.
  void register_comm(const std::shared_ptr<detail::CommImpl>& c);
  /// Parallel discrete-event scheduler (DESIGN.md §12): null in serial
  /// execution mode — and in parallel mode when the configuration requires
  /// synchronous delivery (bounded unexpected queues, scheduled ctx-down
  /// events) — which keeps the transport on its inline fast path.
  [[nodiscard]] net::PdesScheduler* pdes() const { return pdes_.get(); }
  /// Fabric-wide telemetry; with tracing enabled the snapshot also carries
  /// per-op latency percentiles computed from the trace (§9).
  [[nodiscard]] net::NetStatsSnapshot snapshot() const;

  /// Max virtual time across rank clocks (call after run()).
  [[nodiscard]] net::Time elapsed() const;

  // --- runtime internals ---
  /// This rank's state, materialized on first touch (lock-free when warm).
  [[nodiscard]] detail::RankState& rank_state(int r) {
    TMPI_REQUIRE(r >= 0 && r < cfg_.nranks, Errc::kInvalidArg, "rank out of range");
    detail::RankState* st = states_.get(r);
    return st != nullptr ? *st : materialize_rank_state(r);
  }
  /// Ranks whose state has been built (lazy-materialization telemetry).
  [[nodiscard]] int ranks_materialized() const { return states_.materialized(); }
  /// This rank's state if already materialized, else null. Never builds one —
  /// rank-failure propagation walks only live state (DESIGN.md §13).
  [[nodiscard]] detail::RankState* rank_state_if_materialized(int r) const {
    return r >= 0 && r < cfg_.nranks ? states_.get(r) : nullptr;
  }
  /// Rank-failure propagation (DESIGN.md §13): declare `rank` dead at virtual
  /// time `t` (sticky; repeated calls are no-ops), mark its NIC contexts
  /// down, purge every materialized matching engine of traffic pinned to it,
  /// and wake blocked probes and recovery waits. Called from the transport's
  /// fault path with no VCI lock held.
  void on_rank_failure(int rank, net::Time t);
  /// Allocate a block of 3 context ids (pt2p, coll, part) for a new comm;
  /// returns the base id.
  int alloc_ctx_ids();
  [[nodiscard]] std::uint64_t next_comm_seq() {
    return comm_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] const std::shared_ptr<detail::CommImpl>& world_comm_impl() const {
    return world_comm_;
  }

 private:
  detail::RankState& materialize_rank_state(int r);

  WorldConfig cfg_;
  OverloadConfig overload_;
  detail::MatchPolicy match_policy_ = detail::MatchPolicy::kAuto;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<detail::Transport> transport_;
  std::unique_ptr<net::FaultInjector> fault_injector_;
  std::unique_ptr<net::TraceRecorder> tracer_;
  /// Observability siblings of the tracer (DESIGN.md §14). Declared here —
  /// before states_ and long before watchdog_ — so the watchdog's monitor
  /// thread (destroyed first) can never outlive the recorders it dumps.
  std::unique_ptr<net::FlightRecorder> flightrec_;
  std::unique_ptr<net::MetricsSampler> metrics_;
  /// Adaptive mapping engine (DESIGN.md §15); null when `tmpi_adaptive` is
  /// off. Declared before states_ so tracked communicator cells outlive any
  /// rank state that might still route through them during teardown.
  std::unique_ptr<detail::Rebalancer> rebalancer_;
  /// Parallel-mode event scheduler. Declared before states_ so queued events
  /// (which reference VCI bodies) are destroyed only after ~World's body has
  /// already shut the pool down and drained every shard.
  std::unique_ptr<net::PdesScheduler> pdes_;
  detail::RankTable states_{0};
  std::shared_ptr<detail::CommImpl> world_comm_;
  std::atomic<int> next_ctx_{0};
  std::atomic<std::uint64_t> comm_seq_{0};
  /// Declared last: destroyed first, so the monitor thread joins while every
  /// rank state and stats block it might touch is still alive.
  std::unique_ptr<detail::ProgressWatchdog> watchdog_;
};

/// Per-rank execution handle passed to the World::run callback.
class Rank {
 public:
  Rank(World& w, detail::RankState& st) : w_(&w), st_(&st) {}

  [[nodiscard]] int rank() const { return st_->rank; }
  [[nodiscard]] int size() const { return w_->nranks(); }
  [[nodiscard]] int node() const { return st_->node; }
  [[nodiscard]] World& world() const { return *w_; }
  [[nodiscard]] net::VirtualClock& clock() const { return st_->clock; }

  /// COMM_WORLD handle for this rank.
  [[nodiscard]] Comm world_comm() const { return Comm(w_->world_comm_impl(), st_->rank); }

  /// Fork-join thread team (the OpenMP parallel region of the paper's
  /// listings). Each worker gets tid in [0, nthreads) and a virtual clock
  /// starting at the caller's current time; on join the caller's clock
  /// advances to the slowest worker plus a synchronization charge.
  void parallel(int nthreads, const std::function<void(int)>& fn) const;

  [[nodiscard]] detail::RankState& state() const { return *st_; }

 private:
  World* w_;
  detail::RankState* st_;
};

}  // namespace tmpi

#endif  // TMPI_WORLD_H
