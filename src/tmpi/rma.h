#ifndef TMPI_RMA_H
#define TMPI_RMA_H

#include <memory>
#include <vector>

#include "tmpi/comm.h"
#include "tmpi/datatype.h"
#include "tmpi/info.h"
#include "tmpi/request.h"

/// \file rma.h
/// One-sided (RMA) communication.
///
/// A Window is created collectively over a communicator; each rank exposes a
/// memory region. Operations address `(target_rank, disp)` where `disp` is an
/// *element* displacement in units of the operation's datatype.
///
/// Channel mapping (the Lesson 16 design space):
///   - regular window, `accumulate_ordering` strict (default): atomics from
///     one origin to one target funnel through a single hashed channel so
///     program order is preserved;
///   - `accumulate_ordering=none`: atomics spread by a hash of the target
///     location — parallel, but hash collisions still serialize some
///     independent operations;
///   - window on an *endpoints* communicator: each endpoint issues through
///     its dedicated VCI — full parallelism with atomicity kept intact
///     (the paper's NWChem argument for endpoints).
///
/// Completion model: operations are applied at issue; `flush*` advances the
/// caller's virtual clock to the completion of its outstanding operations.
/// As in MPI, reading results of a `get` (or the target of a `put`) is only
/// valid after a flush/fence.
///
/// Error model (DESIGN.md §8): on a communicator with the errors-return
/// handler, a failed issue (retransmission budget exhausted → kTimeout)
/// surfaces as the operation's return code and the target memory is left
/// untouched; under errors-are-fatal the operation throws, as before.

namespace tmpi {

namespace detail {
struct WindowImpl;
}

class Window {
 public:
  Window() = default;

  /// Collective over `comm` (over every endpoint handle for an endpoints
  /// comm). Exposes `bytes` of memory at `base` for this rank.
  ///
  /// Info keys: `accumulate_ordering` ("none" relaxes ordering),
  /// `tmpi_num_vcis` (channel count for regular windows).
  static Window create(void* base, std::size_t bytes, const Comm& comm, const Info& info = {});

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  [[nodiscard]] int rank() const { return comm_.rank(); }
  [[nodiscard]] int size() const { return comm_.size(); }
  [[nodiscard]] AccumulateOrdering ordering() const;
  [[nodiscard]] const std::vector<int>& vcis() const;
  [[nodiscard]] const Comm& comm() const { return comm_; }

  /// Nonatomic write of `count` elements to (target, disp).
  Errc put(const void* origin, int count, Datatype dt, int target, std::size_t disp);

  /// Nonatomic read of `count` elements from (target, disp).
  Errc get(void* origin, int count, Datatype dt, int target, std::size_t disp);

  /// Atomic elementwise update (MPI_Accumulate).
  Errc accumulate(const void* origin, int count, Datatype dt, int target, std::size_t disp,
                  Op op);

  /// Atomic fetch-and-op (MPI_Get_accumulate / MPI_Fetch_and_op): `result`
  /// receives the pre-update target contents. Completes synchronously (the
  /// caller's clock advances to the round trip's end).
  Errc get_accumulate(const void* origin, void* result, int count, Datatype dt, int target,
                      std::size_t disp, Op op);

  /// Request-returning variants (MPI_Rput / MPI_Rget / MPI_Raccumulate):
  /// the returned request completes at the operation's virtual completion,
  /// letting callers overlap specific operations instead of flushing all.
  Request rput(const void* origin, int count, Datatype dt, int target, std::size_t disp);
  Request rget(void* origin, int count, Datatype dt, int target, std::size_t disp);
  Request raccumulate(const void* origin, int count, Datatype dt, int target, std::size_t disp,
                      Op op);

  /// Complete this thread's outstanding operations to `target`. Advancing a
  /// clock cannot fail, so flushes stay void even under errors-return.
  void flush(int target);
  /// Complete all of this thread's outstanding operations on the window.
  void flush_all();
  /// Collective: barrier + flush_all (MPI_Win_fence flavour). Under
  /// errors-return, propagates the barrier's code.
  Errc fence();

 private:
  Window(std::shared_ptr<detail::WindowImpl> impl, Comm comm)
      : impl_(std::move(impl)), comm_(std::move(comm)) {}

  std::shared_ptr<detail::WindowImpl> impl_;
  Comm comm_;
};

}  // namespace tmpi

#endif  // TMPI_RMA_H
