#ifndef TMPI_ERROR_H
#define TMPI_ERROR_H

#include <stdexcept>
#include <string>

/// \file error.h
/// Error reporting. Misuse of the runtime (invalid arguments, violated
/// hints, concurrent collectives on one communicator, tag overflow) throws
/// tmpi::Error with a specific code — behaviour a real MPI leaves undefined
/// is surfaced loudly here so the comparison experiments can *count* misuse.
///
/// Recoverable communication failures (retransmission timeout, exhausted
/// channel resources) additionally honour the owning communicator's error
/// handler (DESIGN.md §8): under kErrorsAreFatal they throw like misuse
/// does; under kErrorsReturn they come back as a Status::err / Errc return
/// value so the workload can degrade instead of dying.

namespace tmpi {

enum class Errc {
  kSuccess,              ///< not an error: the Status::err of a clean completion
  kInvalidArg,
  kTagOverflow,          ///< tag exceeds the configured tag_ub (Lesson 9)
  kWildcardViolation,    ///< wildcard used on a comm asserting no-wildcards
  kConcurrentCollective, ///< two collectives in flight on one (comm, rank)
  kThreadLevel,          ///< call pattern exceeds the requested thread level
  kTruncate,             ///< receive buffer smaller than the matched message
  kPartitionState,       ///< partitioned op used while inactive / double-ready
  kTimeout,              ///< retransmission budget exhausted under injected loss
  kResourceExhausted,    ///< bounded channel resources exhausted (DESIGN.md §8)
  kProcFailed,           ///< peer process declared dead / comm revoked (DESIGN.md §13)
  kInternal,
};

/// Number of Errc enumerators; kept in lockstep with the enum so the
/// round-trip helpers and the to_string exhaustiveness test can iterate.
inline constexpr int kErrcCount = static_cast<int>(Errc::kInternal) + 1;

/// MPI-style spellings (DESIGN.md §7-§8).
inline constexpr Errc TMPI_SUCCESS = Errc::kSuccess;
inline constexpr Errc TMPI_ERR_ARG = Errc::kInvalidArg;
inline constexpr Errc TMPI_ERR_TAG = Errc::kTagOverflow;
inline constexpr Errc TMPI_ERR_WILDCARD = Errc::kWildcardViolation;
inline constexpr Errc TMPI_ERR_COLL = Errc::kConcurrentCollective;
inline constexpr Errc TMPI_ERR_THREAD_LEVEL = Errc::kThreadLevel;
inline constexpr Errc TMPI_ERR_TRUNCATE = Errc::kTruncate;
inline constexpr Errc TMPI_ERR_PART_STATE = Errc::kPartitionState;
inline constexpr Errc TMPI_ERR_TIMEOUT = Errc::kTimeout;
inline constexpr Errc TMPI_ERR_RESOURCE_EXHAUSTED = Errc::kResourceExhausted;
inline constexpr Errc TMPI_ERR_PROC_FAILED = Errc::kProcFailed;
inline constexpr Errc TMPI_ERR_INTERNAL = Errc::kInternal;

/// MPI_Error_class-style integer round trip: every Errc maps to a stable
/// small int and back.
[[nodiscard]] constexpr int errc_to_int(Errc code) { return static_cast<int>(code); }
[[nodiscard]] Errc errc_from_int(int value);  ///< throws kInvalidArg when out of range

/// Per-communicator error handler (MPI_ERRORS_ARE_FATAL / MPI_ERRORS_RETURN).
/// Selected via the `tmpi_errhandler` Info key ("fatal" | "return") or
/// Comm::set_errhandler; inherited by derived communicators through their
/// merged Info, like every other hint.
enum class ErrorHandler {
  kErrorsAreFatal,  ///< recoverable failures throw tmpi::Error (default)
  kErrorsReturn,    ///< recoverable failures surface as Status::err / Errc
};

const char* to_string(Errc code);
const char* to_string(ErrorHandler handler);

class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what), code_(code) {}

  [[nodiscard]] Errc code() const { return code_; }

 private:
  Errc code_;
};

[[noreturn]] inline void fail(Errc code, const std::string& what) { throw Error(code, what); }

/// Precondition check used across the runtime.
#define TMPI_REQUIRE(cond, code, what)            \
  do {                                            \
    if (!(cond)) ::tmpi::fail((code), (what));    \
  } while (0)

}  // namespace tmpi

#endif  // TMPI_ERROR_H
