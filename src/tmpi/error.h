#ifndef TMPI_ERROR_H
#define TMPI_ERROR_H

#include <stdexcept>
#include <string>

/// \file error.h
/// Error reporting. Misuse of the runtime (invalid arguments, violated
/// hints, concurrent collectives on one communicator, tag overflow) throws
/// tmpi::Error with a specific code — behaviour a real MPI leaves undefined
/// is surfaced loudly here so the comparison experiments can *count* misuse.

namespace tmpi {

enum class Errc {
  kInvalidArg,
  kTagOverflow,          ///< tag exceeds the configured tag_ub (Lesson 9)
  kWildcardViolation,    ///< wildcard used on a comm asserting no-wildcards
  kConcurrentCollective, ///< two collectives in flight on one (comm, rank)
  kThreadLevel,          ///< call pattern exceeds the requested thread level
  kTruncate,             ///< receive buffer smaller than the matched message
  kPartitionState,       ///< partitioned op used while inactive / double-ready
  kTimeout,              ///< retransmission budget exhausted under injected loss
  kInternal,
};

/// MPI-style spelling of the fault-recovery error (DESIGN.md §7).
inline constexpr Errc TMPI_ERR_TIMEOUT = Errc::kTimeout;

const char* to_string(Errc code);

class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what), code_(code) {}

  [[nodiscard]] Errc code() const { return code_; }

 private:
  Errc code_;
};

[[noreturn]] inline void fail(Errc code, const std::string& what) { throw Error(code, what); }

/// Precondition check used across the runtime.
#define TMPI_REQUIRE(cond, code, what)            \
  do {                                            \
    if (!(cond)) ::tmpi::fail((code), (what));    \
  } while (0)

}  // namespace tmpi

#endif  // TMPI_ERROR_H
