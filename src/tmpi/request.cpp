#include "tmpi/request.h"

#include <cstddef>
#include <mutex>
#include <new>
#include <vector>

#include "net/flightrec.h"
#include "net/spin.h"
#include "net/virtual_clock.h"
#include "tmpi/error.h"
#include "tmpi/watchdog.h"

namespace tmpi {

void detail::ReqState::on_start() {
  fail(Errc::kInvalidArg, "start on a request that is not persistent or partitioned");
}

namespace detail {
namespace {

/// Process-wide recycler for request nodes (DESIGN.md §10). make_req_state
/// uses allocate_shared, so the ReqState and its shared_ptr control block are
/// one allocation — this pool hands that node out of a size-classed freelist,
/// making steady-state p2p traffic allocation-free per request. Classes are
/// 64-byte granules up to 1 KiB; larger or array requests fall through to the
/// plain heap. Every carved block is recorded and freed in the destructor so
/// leak checkers stay quiet.
class ReqBlockPool {
 public:
  static ReqBlockPool& instance() {
    static ReqBlockPool pool;
    return pool;
  }

  void* get(std::size_t bytes) {
    const std::size_t cls = class_for(bytes);
    if (cls >= kClasses) return ::operator new(bytes);
    Class& k = classes_[cls];
    {
      std::lock_guard<net::SpinLock> g(k.mu);
      if (k.free != nullptr) {
        void* p = k.free;
        k.free = *static_cast<void**>(p);
        return p;
      }
    }
    void* p = ::operator new((cls + 1) * kGranule);
    std::lock_guard<net::SpinLock> g(blocks_mu_);
    blocks_.push_back(p);
    return p;
  }

  void put(void* p, std::size_t bytes) {
    const std::size_t cls = class_for(bytes);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    Class& k = classes_[cls];
    std::lock_guard<net::SpinLock> g(k.mu);
    *static_cast<void**>(p) = k.free;
    k.free = p;
  }

 private:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 16;  // up to 1 KiB

  static std::size_t class_for(std::size_t bytes) {
    return (bytes + kGranule - 1) / kGranule - 1;  // bytes >= 1 always
  }

  struct Class {
    net::SpinLock mu;
    void* free = nullptr;
  };

  ReqBlockPool() = default;
  ~ReqBlockPool() {
    for (void* p : blocks_) ::operator delete(p);
  }

  Class classes_[kClasses];
  net::SpinLock blocks_mu_;
  std::vector<void*> blocks_;
};

/// Minimal allocator over ReqBlockPool for allocate_shared. Stateless; all
/// instances are interchangeable.
template <typename T>
struct ReqPoolAllocator {
  using value_type = T;

  ReqPoolAllocator() noexcept = default;
  template <typename U>
  ReqPoolAllocator(const ReqPoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(ReqBlockPool::instance().get(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ReqBlockPool::instance().put(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const ReqPoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const ReqPoolAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace

std::shared_ptr<ReqState> make_req_state() {
  return std::allocate_shared<ReqState>(ReqPoolAllocator<ReqState>{});
}

}  // namespace detail

void start(Request& req) {
  TMPI_REQUIRE(req.valid(), Errc::kInvalidArg, "invalid request");
  req.state()->on_start();
}

void startall(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) start(reqs[i]);
}

namespace {

[[noreturn]] void raise_request_error(Errc code) {
  // The black box exists for this moment: an operation is about to take the
  // process down, so dump the last events before the stack unwinds
  // (best-effort; no-op without an active recorder, first dump wins).
  net::FlightRecorder::dump_active("fatal: " + std::string(to_string(code)));
  switch (code) {
    case Errc::kTimeout:
      fail(code, "operation timed out after exhausting retransmissions");
    case Errc::kResourceExhausted:
      fail(code, "destination channel rejected the message at its unexpected-queue cap");
    case Errc::kProcFailed:
      fail(code, "peer process failed or communicator revoked");
    default:
      fail(code, "receive buffer smaller than matched message");
  }
}

/// Registration handle for the progress watchdog. No-op (one pointer test)
/// unless the world runs a watchdog. Must be constructed before the wait
/// takes s->mu: registration acquires the watchdog's registry mutex, which
/// must never nest inside a request lock (the watchdog takes them in the
/// opposite order when failing a blocked op).
detail::BlockedScope make_blocked_scope(const std::shared_ptr<detail::ReqState>& s) {
  detail::ProgressWatchdog::BlockedOp op;
  if (s->wd != nullptr) {
    op.req = s;
    op.rank = s->wd_rank;
    op.vci = s->wd_vci;
    op.peer = s->wd_peer;
    op.tag = s->wd_tag;
    op.opname = s->wd_op;
    op.block_vtime = net::ThreadClock::get().now();
  }
  return detail::BlockedScope(s->wd, std::move(op));
}

}  // namespace

Status Request::wait() {
  TMPI_REQUIRE(valid(), Errc::kInvalidArg, "wait on invalid request");
  auto& clk = net::ThreadClock::get();
  detail::BlockedScope watchdog_reg = make_blocked_scope(s_);
  std::unique_lock lk(s_->mu);
  s_->cv.wait(lk, [&] { return s_->complete; });
  clk.advance_to(s_->complete_time);
  if (s_->errored) {
    if (s_->errors_return) return s_->status;  // status.err carries the code
    const Errc code = s_->err;
    lk.unlock();
    raise_request_error(code);
  }
  return s_->status;
}

bool Request::test(Status* st) {
  TMPI_REQUIRE(valid(), Errc::kInvalidArg, "test on invalid request");
  auto& clk = net::ThreadClock::get();
  std::unique_lock lk(s_->mu);
  if (!s_->complete) return false;
  clk.advance_to(s_->complete_time);
  if (s_->errored) {
    if (s_->errors_return) {
      if (st != nullptr) *st = s_->status;
      return true;
    }
    const Errc code = s_->err;
    lk.unlock();
    raise_request_error(code);
  }
  if (st != nullptr) *st = s_->status;
  return true;
}

void wait_all(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (reqs[i].valid()) reqs[i].wait();
  }
}

}  // namespace tmpi
