#include "tmpi/request.h"

#include "net/virtual_clock.h"
#include "tmpi/error.h"

namespace tmpi {

void detail::ReqState::on_start() {
  fail(Errc::kInvalidArg, "start on a request that is not persistent or partitioned");
}

void start(Request& req) {
  TMPI_REQUIRE(req.valid(), Errc::kInvalidArg, "invalid request");
  req.state()->on_start();
}

void startall(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) start(reqs[i]);
}

namespace {

[[noreturn]] void raise_request_error(Errc code) {
  fail(code, code == Errc::kTimeout
                 ? "operation timed out after exhausting retransmissions"
                 : "receive buffer smaller than matched message");
}

}  // namespace

Status Request::wait() {
  TMPI_REQUIRE(valid(), Errc::kInvalidArg, "wait on invalid request");
  auto& clk = net::ThreadClock::get();
  std::unique_lock lk(s_->mu);
  s_->cv.wait(lk, [&] { return s_->complete; });
  clk.advance_to(s_->complete_time);
  if (s_->errored) {
    const Errc code = s_->err;
    lk.unlock();
    raise_request_error(code);
  }
  return s_->status;
}

bool Request::test(Status* st) {
  TMPI_REQUIRE(valid(), Errc::kInvalidArg, "test on invalid request");
  auto& clk = net::ThreadClock::get();
  std::unique_lock lk(s_->mu);
  if (!s_->complete) return false;
  clk.advance_to(s_->complete_time);
  if (s_->errored) {
    const Errc code = s_->err;
    lk.unlock();
    raise_request_error(code);
  }
  if (st != nullptr) *st = s_->status;
  return true;
}

void wait_all(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (reqs[i].valid()) reqs[i].wait();
  }
}

}  // namespace tmpi
