#include "tmpi/request.h"

#include "net/virtual_clock.h"
#include "tmpi/error.h"
#include "tmpi/watchdog.h"

namespace tmpi {

void detail::ReqState::on_start() {
  fail(Errc::kInvalidArg, "start on a request that is not persistent or partitioned");
}

void start(Request& req) {
  TMPI_REQUIRE(req.valid(), Errc::kInvalidArg, "invalid request");
  req.state()->on_start();
}

void startall(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) start(reqs[i]);
}

namespace {

[[noreturn]] void raise_request_error(Errc code) {
  switch (code) {
    case Errc::kTimeout:
      fail(code, "operation timed out after exhausting retransmissions");
    case Errc::kResourceExhausted:
      fail(code, "destination channel rejected the message at its unexpected-queue cap");
    default:
      fail(code, "receive buffer smaller than matched message");
  }
}

/// Registration handle for the progress watchdog. No-op (one pointer test)
/// unless the world runs a watchdog. Must be constructed before the wait
/// takes s->mu: registration acquires the watchdog's registry mutex, which
/// must never nest inside a request lock (the watchdog takes them in the
/// opposite order when failing a blocked op).
detail::BlockedScope make_blocked_scope(const std::shared_ptr<detail::ReqState>& s) {
  detail::ProgressWatchdog::BlockedOp op;
  if (s->wd != nullptr) {
    op.req = s;
    op.rank = s->wd_rank;
    op.vci = s->wd_vci;
    op.peer = s->wd_peer;
    op.tag = s->wd_tag;
    op.opname = s->wd_op;
    op.block_vtime = net::ThreadClock::get().now();
  }
  return detail::BlockedScope(s->wd, std::move(op));
}

}  // namespace

Status Request::wait() {
  TMPI_REQUIRE(valid(), Errc::kInvalidArg, "wait on invalid request");
  auto& clk = net::ThreadClock::get();
  detail::BlockedScope watchdog_reg = make_blocked_scope(s_);
  std::unique_lock lk(s_->mu);
  s_->cv.wait(lk, [&] { return s_->complete; });
  clk.advance_to(s_->complete_time);
  if (s_->errored) {
    if (s_->errors_return) return s_->status;  // status.err carries the code
    const Errc code = s_->err;
    lk.unlock();
    raise_request_error(code);
  }
  return s_->status;
}

bool Request::test(Status* st) {
  TMPI_REQUIRE(valid(), Errc::kInvalidArg, "test on invalid request");
  auto& clk = net::ThreadClock::get();
  std::unique_lock lk(s_->mu);
  if (!s_->complete) return false;
  clk.advance_to(s_->complete_time);
  if (s_->errored) {
    if (s_->errors_return) {
      if (st != nullptr) *st = s_->status;
      return true;
    }
    const Errc code = s_->err;
    lk.unlock();
    raise_request_error(code);
  }
  if (st != nullptr) *st = s_->status;
  return true;
}

void wait_all(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (reqs[i].valid()) reqs[i].wait();
  }
}

}  // namespace tmpi
