#ifndef TMPI_NET_TRACE_H
#define TMPI_NET_TRACE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/virtual_clock.h"

/// \file trace.h
/// Virtual-time tracing at the transport choke point (DESIGN.md §9).
///
/// Every operation through the runtime — p2p, RMA, partitioned, collectives —
/// becomes a *span* (an id allocated at post time) whose phase edges the
/// transport records as it charges virtual time: post, credit/rendezvous
/// decision, lock acquisition, context injection, receive occupancy, matching
/// deposit, completion or error. Fault, failover, watchdog and credit-stall
/// occurrences are instant events; unexpected-queue depth and per-injection
/// context backlog are sampled gauges.
///
/// Recording discipline: the recorder NEVER touches a virtual clock and never
/// blocks on anything but its own per-thread buffer mutex, so an enabled
/// trace observes exactly the virtual times the untraced run would produce —
/// the golden parity suite pins this bit-exactly. Disabled tracing is a null
/// `World::tracer()` pointer: the transport pays one pointer test.
///
/// Storage is one fixed-capacity ring buffer per recording thread
/// (`tmpi_trace_buffer_events` events each). When a ring wraps, the oldest
/// events are overwritten and counted as dropped — bounded memory, never a
/// stall. `merged()` yields the global stream sorted by virtual time.
///
/// Exporters: Chrome `trace_event` JSON (`write_chrome_trace`; one "process"
/// per rank, one "thread" per VCI, so chrome://tracing / Perfetto render the
/// per-VCI occupancy timeline the paper draws by hand) and the metrics
/// JSON/CSV dumps in tmpi/profiler.h.
///
/// Knobs (Info keys on WorldConfig::trace_info; the same names uppercased as
/// environment variables overlay them, env wins — the fault/overload
/// pattern):
///   tmpi_trace               bool  enable recording (default off)
///   tmpi_trace_path          str   Chrome-trace output path, written when the
///                                  World is destroyed; the metrics dumps go
///                                  to <path minus .json>.metrics.{json,csv}.
///                                  Empty = record but never write files.
///   tmpi_trace_buffer_events u64   per-thread ring capacity (default 16384)

namespace tmpi::net {

/// Event taxonomy (DESIGN.md §9). Phase edges carry the span id of the
/// operation they belong to; instants and gauges may carry span 0.
enum class TraceEv : std::uint8_t {
  // Span phase edges.
  kPost,            ///< operation posted (span begins)
  kCreditDecision,  ///< eager-credit verdict (value: 1 granted, 0 degraded)
  kLockAcquired,    ///< VCI contention lock held, after the lock charge
  kInject,          ///< tx context occupancy (duration event)
  kRxOccupy,        ///< rx context occupancy at the target (duration event)
  kDeposit,         ///< matching-engine deposit (duration event)
  kPostRecv,        ///< receive posted into the matching engine
  kProbe,           ///< unexpected-queue probe
  kMatch,           ///< envelope matched a posted receive (parent = send span)
  kComplete,        ///< operation completed (span ends)
  kError,           ///< operation failed (span ends; value = errc int)
  // Instants (fault/overload occurrences, DESIGN.md §7/§8).
  kDrop,            ///< injected clean loss
  kCorrupt,         ///< checksum-detected corruption
  kDelay,           ///< injected extra latency (value = delay ns)
  kRetransmit,      ///< retransmission after a loss
  kTimeout,         ///< retransmission budget exhausted
  kFailover,        ///< stream failed over (value = fallback VCI)
  kCreditStall,     ///< eager send denied a credit
  kOverflow,        ///< deposit rejected at the unexpected-queue cap
  kWatchdogTrip,    ///< watchdog failed a blocked op
  kRankDown,        ///< a rank was declared dead (value = dead world rank)
  // Sampled gauges (value = sample).
  kUnexpectedDepth,  ///< unexpected-queue depth after a deposit
  kCtxBacklog,       ///< ns the tx context was already busy at injection
};
[[nodiscard]] const char* to_string(TraceEv ev);

/// Operation family a span belongs to; the percentile aggregation key.
enum class TraceOp : std::uint8_t { kNone, kSend, kRecv, kRma, kPartition, kColl, kProbe };
[[nodiscard]] const char* to_string(TraceOp op);

/// One recorded event. Plain data; ~80 bytes.
struct TraceEvent {
  Time ts = 0;                ///< virtual timestamp (ns)
  Time dur = 0;               ///< duration for kInject/kRxOccupy/kDeposit
  std::uint64_t span = 0;     ///< owning operation span (0 = none)
  std::uint64_t parent = 0;   ///< causal parent span (0 = root). kPost events
                              ///< inherit the enclosing collective's span;
                              ///< kMatch events carry the matched send's span
                              ///< — the cross-rank journey edge.
  std::uint64_t value = 0;    ///< bytes / gauge sample / errc, per kind
  std::uint64_t seq = 0;      ///< global record order (sort tiebreak)
  const char* name = nullptr;  ///< op label (string literal); null = family
  std::int32_t rank = -1;     ///< world rank owning the track
  std::int32_t vci = -1;      ///< VCI within the rank (-1 = rank-level)
  std::int32_t peer = -1;     ///< remote world rank (-1 = none)
  std::int32_t tag = -1;      ///< message tag (-1 = none)
  TraceEv kind = TraceEv::kPost;
  TraceOp op = TraceOp::kNone;
};

/// Resolved tracing knobs. Mirrors OverloadConfig/FaultPlan: Info keys first,
/// TMPI_TRACE* environment overlay on top (env wins).
struct TraceConfig {
  bool enabled = false;
  std::string path = "tmpi_trace.json";
  std::size_t buffer_events = 16384;

  /// Apply one Info entry; returns false for keys this layer does not own.
  bool set(const std::string& key, const std::string& value);
  /// Overlay TMPI_TRACE / TMPI_TRACE_PATH / TMPI_TRACE_BUFFER_EVENTS.
  static TraceConfig from_env(TraceConfig base);
};

/// Thread-local ring-buffer event recorder. One per World when tracing is
/// enabled; shared by every thread that touches the transport.
///
/// record() is safe from any thread; each thread writes its own ring under a
/// per-ring mutex that only the exporters and the watchdog's tail reader ever
/// contend on. Span ids come from an atomic counter; `seq` gives a total
/// order for same-timestamp events.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig cfg);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] const TraceConfig& config() const { return cfg_; }

  /// Allocate a fresh span id (>= 1).
  [[nodiscard]] std::uint64_t begin_span() {
    return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Append one event to the calling thread's ring (assigns `seq`).
  void record(TraceEvent ev);

  /// Subscribe a callback invoked synchronously for every record() (the
  /// PMPI-style hook bridge, tmpi/profiler.h). Pass nullptr to detach.
  /// Attach/detach only while no thread is inside the runtime; the callback
  /// itself must be thread-safe — record() runs on every rank thread.
  void set_sink(std::function<void(const TraceEvent&)> sink);

  /// Events recorded / overwritten-by-wrap, summed over all rings.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Per-thread ring accounting (one entry per recording thread, registry
  /// order). Surfaced by the metrics exporters so a wrapped ring is visible
  /// per thread, not just as a global sum.
  struct ThreadStats {
    std::uint64_t recorded = 0;  ///< events this thread ever wrote
    std::uint64_t dropped = 0;   ///< events its ring overwrote
  };
  [[nodiscard]] std::vector<ThreadStats> thread_stats() const;

  /// All retained events, sorted by (ts, seq).
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// The last `n` retained events on channel (rank, vci), oldest first.
  /// Events with vci < 0 match any vci of the rank. Safe concurrently with
  /// recording (the watchdog calls this from its monitor thread).
  [[nodiscard]] std::vector<TraceEvent> tail(int rank, int vci, std::size_t n) const;

  /// Serialize the merged stream as Chrome `trace_event` JSON: one "process"
  /// per rank, one "thread" per VCI, async spans per operation, counter
  /// tracks for the gauges, and flow arrows (`ph:"s"`/`"f"`) from each send's
  /// kPost to the matched receive's kMatch when both endpoints survived the
  /// rings. A non-empty `note` lands in `otherData.note` (the flight
  /// recorder stamps its dump reason there).
  void write_chrome_trace(std::ostream& os, const std::string& note = {}) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::thread::id owner;
    std::vector<TraceEvent> ring;  ///< grows to capacity, then wraps
    std::uint64_t count = 0;       ///< total events ever written
  };

  ThreadBuffer& local();

  TraceConfig cfg_;
  std::size_t cap_;
  std::uint64_t id_;  ///< process-unique recorder id (thread-cache key)
  std::atomic<std::uint64_t> next_span_{0};
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::function<void(const TraceEvent&)> sink_;
  std::atomic<bool> has_sink_{false};
};

/// Thread-local causal-parent scope. A collective entry installs its span
/// here for the duration of the call; every fragment posted inside the scope
/// (isend/irecv at the p2p layer) stamps `TraceEvent::parent` with it, so the
/// Chrome trace links fragments to the collective that issued them. Nests
/// (save/restore) because hierarchical algorithms compose collectives.
class ScopedTraceParent {
 public:
  explicit ScopedTraceParent(std::uint64_t span) : prev_(current_) { current_ = span; }
  ~ScopedTraceParent() { current_ = prev_; }
  ScopedTraceParent(const ScopedTraceParent&) = delete;
  ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

  /// The innermost enclosing parent span, 0 outside any scope.
  [[nodiscard]] static std::uint64_t current() { return current_; }

 private:
  std::uint64_t prev_;
  inline static thread_local std::uint64_t current_ = 0;
};

/// One-line human rendering ("[t=140] rank 0 vci 1 inject Send tag 7 ...");
/// used by the watchdog report's trace history.
[[nodiscard]] std::string format_trace_event(const TraceEvent& ev);

/// Validate that `text` is a well-formed Chrome trace: JSON parses, the root
/// object carries a `traceEvents` array, every event has the required fields
/// for its phase, and per-(pid, tid) track timestamps are monotonically
/// non-decreasing. On failure returns false and stores a diagnostic in
/// `*error` (may be null). Shared by tests and tools/trace_validate.
[[nodiscard]] bool validate_chrome_trace_json(const std::string& text, std::string* error);

/// Syntax-only JSON check (used for the metrics dump round trip).
[[nodiscard]] bool validate_json_text(const std::string& text, std::string* error);

/// Causal-link integrity over an in-memory event stream: every non-zero
/// parent edge resolves to a kPost event's span, the parent graph is
/// acyclic, and a child event never precedes its parent's post in virtual
/// time. Parents whose posts were overwritten by a ring wrap are tolerated
/// only when `dropped > 0` was reported — pass `strict = true` to reject
/// any unresolved edge (the golden-journey tests run strict).
[[nodiscard]] bool validate_trace_links(const std::vector<TraceEvent>& events, bool strict,
                                        std::string* error);

/// The same link checks over an exported Chrome trace (`trace_validate
/// --links`): parents are read back from the `args.parent` the exporter
/// writes on `b` (post) and `match` events. Unresolved edges are tolerated
/// when `otherData.dropped > 0` (a wrapped ring legitimately loses posts).
[[nodiscard]] bool validate_trace_links_json(const std::string& text, std::string* error);

}  // namespace tmpi::net

#endif  // TMPI_NET_TRACE_H
