#include "net/flightrec.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace tmpi::net {

bool FlightRecConfig::set(const std::string& key, const std::string& value) {
  if (key == "tmpi_flightrec") {
    enabled = value == "1" || value == "true" || value == "yes" || value == "on";
  } else if (key == "tmpi_flightrec_path") {
    path = value;
  } else if (key == "tmpi_flightrec_events") {
    buffer_events = static_cast<std::size_t>(std::stoull(value));
  } else {
    return false;
  }
  return true;
}

FlightRecConfig FlightRecConfig::from_env(FlightRecConfig base) {
  static constexpr const char* kKeys[] = {"tmpi_flightrec", "tmpi_flightrec_path",
                                          "tmpi_flightrec_events"};
  for (const char* key : kKeys) {
    std::string env_name(key);
    std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    if (const char* v = std::getenv(env_name.c_str()); v != nullptr && *v != '\0') {
      base.set(key, v);
    }
  }
  return base;
}

namespace {

/// Config for the internal TraceRecorder: never writes its own file (the
/// flight recorder owns the dump), ring capacity from the flightrec knob.
TraceConfig ring_config(const FlightRecConfig& cfg) {
  TraceConfig tc;
  tc.enabled = true;
  tc.path.clear();
  tc.buffer_events = std::max<std::size_t>(cfg.buffer_events, 64);
  return tc;
}

/// The fatal-path slot. A plain mutex (not atomics) because registration
/// happens once per World and dump_active only on the way down.
std::mutex g_active_mu;
FlightRecorder* g_active = nullptr;

}  // namespace

FlightRecorder::FlightRecorder(FlightRecConfig cfg)
    : cfg_(std::move(cfg)), rec_(ring_config(cfg_)) {}

FlightRecorder::~FlightRecorder() {
  std::scoped_lock lk(g_active_mu);
  if (g_active == this) g_active = nullptr;
}

void FlightRecorder::write(std::ostream& os, const std::string& reason) const {
  rec_.write_chrome_trace(os, reason);
}

bool FlightRecorder::dump(const std::string& reason) {
  if (cfg_.path.empty()) return false;
  bool expected = false;
  if (!dumped_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return false;
  }
  std::ofstream os(cfg_.path);
  if (!os) return false;
  write(os, reason);
  return true;
}

void FlightRecorder::set_active(FlightRecorder* fr) {
  std::scoped_lock lk(g_active_mu);
  g_active = fr;
}

void FlightRecorder::dump_active(const std::string& reason) {
  std::scoped_lock lk(g_active_mu);
  if (g_active != nullptr) g_active->dump(reason);
}

}  // namespace tmpi::net
