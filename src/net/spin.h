#ifndef TMPI_NET_SPIN_H
#define TMPI_NET_SPIN_H

#include <atomic>

/// \file spin.h
/// Tiny host-side spinning primitives for the hot-path pools (DESIGN.md §10).
///
/// These guard *host* data structures (freelists) whose critical sections are
/// a handful of pointer writes; they charge no virtual time and appear in no
/// statistics. Virtual-time lock costs stay in ContentionLock.

namespace tmpi::net {

/// Polite busy-wait hint for spin loops.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Minimal test-and-test-and-set spinlock. Critical sections under it must
/// be O(1) pointer surgery — never user code, never anything that blocks.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace tmpi::net

#endif  // TMPI_NET_SPIN_H
