#ifndef TMPI_NET_FAULT_H
#define TMPI_NET_FAULT_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/virtual_clock.h"

/// \file fault.h
/// Deterministic fault injection for the transport choke point.
///
/// A FaultPlan programs per-(rank, VCI) drop / corrupt / delay / context-down
/// behaviour, either probabilistically (seeded rates applied through a
/// counter-based hash, so identical seeds replay identical fault sequences)
/// or as explicit scheduled events ("drop the 3rd operation on rank 0's
/// VCI 1"). The FaultInjector evaluates the plan inside Transport::inject()
/// and deliver(); it never sleeps or consults real time, so every injected
/// fault — and every recovery action it provokes (retransmission backoff,
/// TMPI_ERR_TIMEOUT, VCI failover) — is reproducible in virtual time.
///
/// Plan grammar (the `tmpi_fault_plan` Info key / TMPI_FAULT_PLAN env var):
///   plan    := event (';' event)*
///   event   := action '@' rank ':' vci ':' op
///            | 'rank_down' '@' rank [':' op]
///   action  := 'drop' | 'corrupt' | 'delay' | 'down'
/// `op` is the zero-based index of the operation in the channel's stream
/// (inject / deliver / post_recv touches, in order; probes don't count).
/// drop/corrupt/delay events fire on the first transmit attempt of that
/// operation; 'down' marks the channel's hardware context down when the
/// stream reaches op index `op`, triggering failover (DESIGN.md §7).
/// 'rank_down' declares the whole rank sticky-dead — every VCI and NIC
/// context it owns — once the rank's aggregate operation stream (summed
/// across its channels) reaches index `op` (default 0: dead on first touch).
/// Death is observed through the fabric's Liveness registry and propagated
/// as Errc::kProcFailed (DESIGN.md §13); a dead rank never recovers.
/// Malformed event tokens throw std::invalid_argument naming the offending
/// token; World construction surfaces that as Errc::kInvalidArg.
///
/// Scalar keys (Info key, env var = upper-cased key):
///   tmpi_fault_seed          u64   hash seed for the probabilistic rates
///   tmpi_fault_drop_rate     [0,1] per-attempt probability of a clean loss
///   tmpi_fault_corrupt_rate  [0,1] per-attempt probability of a checksum-
///                                  detected corruption (discarded like a
///                                  drop, counted separately)
///   tmpi_fault_delay_rate    [0,1] per-attempt probability of extra latency
///   tmpi_fault_delay_ns      u64   the extra latency an injected delay adds
///   tmpi_fault_max_retries   int   retransmissions before TMPI_ERR_TIMEOUT
///   tmpi_fault_timeout_ns    u64   cumulative-backoff budget (0 = retries
///                                  bound only)
///   tmpi_fault_plan          str   scheduled events, grammar above
/// An empty plan (all rates zero, no events) disables the layer entirely:
/// the transport takes its pre-fault fast path, bit-exactly.

namespace tmpi::net {

/// What the injector decided for one transmit attempt.
enum class FaultAction {
  kDeliver,  ///< no fault: the message proceeds normally
  kDrop,     ///< clean loss on the wire; sender's ack timer will expire
  kCorrupt,  ///< payload damaged; receiver checksum discards it (== a drop
             ///< on the timing path, tallied separately)
  kDelay,    ///< message arrives late by `delay_ns`
};

struct FaultVerdict {
  FaultAction action = FaultAction::kDeliver;
  Time delay_ns = 0;  ///< extra arrival latency (kDelay only)
};

/// Programmable fault schedule. Value type; parsed from Info keys and/or
/// TMPI_FAULT_* environment variables (env wins).
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  double delay_rate = 0.0;
  Time delay_ns = 2000;
  int max_retries = 8;
  Time timeout_ns = 0;  ///< 0 = bound by max_retries only

  struct Event {
    FaultAction action = FaultAction::kDrop;
    bool ctx_down = false;   ///< 'down' events are not per-attempt verdicts
    bool rank_down = false;  ///< 'rank_down' events kill the whole rank
    int rank = 0;
    int vci = 0;  ///< -1 for rank_down events (rank-wide, not per-channel)
    std::uint64_t op = 0;
  };
  std::vector<Event> events;

  /// Any rank_down event present? Worlds with one fall back to the serial
  /// execution engine, like ctx_down plans (DESIGN.md §12).
  [[nodiscard]] bool has_rank_down() const {
    for (const Event& e : events) {
      if (e.rank_down) return true;
    }
    return false;
  }

  /// True when any fault can actually fire. A disabled plan keeps the
  /// transport on its zero-overhead fast path.
  [[nodiscard]] bool enabled() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || delay_rate > 0.0 || !events.empty();
  }

  /// Apply one `tmpi_fault_*` key; returns false for unrecognized keys
  /// (callers pass whole Info dictionaries through).
  bool set(const std::string& key, const std::string& value);

  /// Parse the scheduled-event grammar, appending to `events`. Malformed
  /// tokens throw std::invalid_argument.
  void parse_plan(const std::string& grammar);

  /// Overlay TMPI_FAULT_* environment variables onto `base`.
  static FaultPlan from_env(FaultPlan base);
  static FaultPlan from_env() { return from_env(FaultPlan{}); }
};

/// Evaluates a FaultPlan at the transport choke point. Thread-safe; all
/// decisions are pure functions of (seed, rank, vci, op index, attempt), so
/// any execution that orders a channel's operations the same way sees the
/// same faults.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Count one transport operation through channel (rank, vci) and return
  /// its zero-based index in that channel's stream. Also advances the rank's
  /// aggregate stream (the rank_down trigger counter).
  std::uint64_t channel_op(int rank, int vci);

  /// The verdict for transmit attempt `attempt` (0 = first transmission) of
  /// operation `op` on channel (rank, vci). Scheduled drop/corrupt/delay
  /// events apply to attempt 0 only — retransmissions of a scheduled fault
  /// go through clean unless a probabilistic rate also fires.
  [[nodiscard]] FaultVerdict verdict(int rank, int vci, std::uint64_t op, int attempt) const;

  /// True exactly once per scheduled 'down' event, when channel (rank, vci)
  /// reaches op index `op`. The caller is expected to fail the stream over.
  bool context_down_due(int rank, int vci, std::uint64_t op);

  /// True exactly once per scheduled 'rank_down' event, when `rank`'s
  /// aggregate operation stream (advanced by channel_op) has reached the
  /// event's op index. The caller is expected to declare the rank dead in
  /// the fabric's Liveness registry and propagate (DESIGN.md §13).
  bool rank_down_due(int rank);

 private:
  FaultPlan plan_;
  std::mutex mu_;
  std::map<std::pair<int, int>, std::uint64_t> op_counts_;
  std::map<int, std::uint64_t> rank_op_counts_;
  std::vector<bool> down_fired_ = std::vector<bool>(plan_.events.size(), false);
};

}  // namespace tmpi::net

#endif  // TMPI_NET_FAULT_H
