#ifndef TMPI_NET_METRICS_H
#define TMPI_NET_METRICS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "net/stats.h"
#include "net/virtual_clock.h"

/// \file metrics.h
/// Virtual-time-driven metrics time-series (DESIGN.md §14).
///
/// `NetStats` is cumulative-only; the adaptive-VCI policy engine and the
/// service-SLO bench (ROADMAP items 3/4) need *rates*: what each channel did
/// in the last window, not since boot. The sampler cuts the cumulative
/// counters into fixed virtual-time windows: the transport calls
/// `maybe_sample(now)` from its choke points (one relaxed load on the hot
/// path), and the first call at or past a window boundary snapshots the
/// registry and stores the delta against the previous snapshot. Deltas
/// telescope — summed over all windows plus the final `flush()`, every
/// counter equals the cumulative `NetStats` value, which the twin tests pin.
///
/// The sampler only *reads* stats and clocks; windows never perturb virtual
/// time, so an enabled sampler is bit-exact with a disabled one. (Which
/// thread crosses a boundary first is host-racy, so window *contents* may
/// vary run to run; every virtual-time observable stays deterministic.)
///
/// Exporters: JSON (`<stem>.timeseries.json`) and Prometheus text
/// exposition (`<stem>.prom`), both written at World teardown; in-process
/// consumers get every closed window through `ToolHooks::on_window`.
///
/// Knobs (Info keys on WorldConfig::trace_info; uppercased env overlays,
/// env wins):
///   tmpi_metrics_window_ns  u64  window length in virtual ns (0 = off)
///   tmpi_metrics_path       str  export stem (default "tmpi_metrics_ts";
///                                writes <stem>.timeseries.json + <stem>.prom;
///                                empty = sample but never write files)

namespace tmpi::net {

/// Resolved sampler knobs; Info keys first, env overlay on top.
struct MetricsConfig {
  Time window_ns = 0;  ///< 0 = sampler off
  std::string path = "tmpi_metrics_ts";

  /// Apply one Info entry; returns false for keys this layer does not own.
  bool set(const std::string& key, const std::string& value);
  /// Overlay TMPI_METRICS_WINDOW_NS / TMPI_METRICS_PATH.
  static MetricsConfig from_env(MetricsConfig base);
};

/// One closed window: the counter deltas accumulated in [start, end).
/// `unexpected_hwm` and `op_latency` keep NetStatsSnapshot's pass-through
/// semantics (high-water mark / percentiles as of the window's close).
struct MetricsWindow {
  Time start = 0;
  Time end = 0;
  NetStatsSnapshot delta;
};

/// The windowed sampler. One per World when `tmpi_metrics_window_ns` > 0.
class MetricsSampler {
 public:
  MetricsSampler(NetStats* stats, MetricsConfig cfg);

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  [[nodiscard]] const MetricsConfig& config() const { return cfg_; }

  /// Hot-path probe: close windows up to `now` if a boundary was crossed.
  /// One relaxed atomic load when it wasn't.
  void maybe_sample(Time now) {
    if (now < next_edge_.load(std::memory_order_relaxed)) return;
    sample_locked(now);
  }

  /// Close the final (possibly partial) window at `now`. Called at World
  /// teardown so the window deltas telescope exactly to the cumulative
  /// counters.
  void flush(Time now);

  /// Copy of every closed window, oldest first.
  [[nodiscard]] std::vector<MetricsWindow> windows() const;

  /// Per-window callback (the ToolHooks bridge). Attach/detach only while
  /// no thread is inside the runtime; invoked under the sampler lock.
  void set_hook(std::function<void(const MetricsWindow&)> hook);

  /// JSON time-series: {"window_ns":..,"windows":[{start,end,counters,
  /// channels:[{rank,vci,...}]},...]}.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition: cumulative counters (the telescoped sum of
  /// all windows) as `tmpi_*_total`, per-channel series labelled
  /// {rank,vci}, plus the window count as a gauge.
  void write_prometheus(std::ostream& os) const;

 private:
  void sample_locked(Time now);

  NetStats* stats_;
  MetricsConfig cfg_;
  std::atomic<Time> next_edge_;
  mutable std::mutex mu_;
  Time prev_edge_ = 0;
  NetStatsSnapshot prev_;
  std::vector<MetricsWindow> windows_;
  std::function<void(const MetricsWindow&)> hook_;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_METRICS_H
