#ifndef TMPI_NET_COST_MODEL_H
#define TMPI_NET_COST_MODEL_H

#include <cstddef>
#include <string>

#include "net/virtual_clock.h"

/// \file cost_model.h
/// The virtual-time cost model of the simulated fabric.
///
/// The model captures the resources whose behaviour drives every performance
/// argument in the paper:
///   - per-message injection overhead at a NIC hardware context (the
///     message-rate limiter near the strong-scaling limit),
///   - serialization at a hardware context (a context is a work queue +
///     doorbell: one message enters at a time),
///   - a bounded pool of hardware contexts per NIC (Omni-Path exposes 160;
///     oversubscription causes contention — Lesson 3),
///   - lock costs for software serialization (a single VCI shared by n
///     threads, or the shared request of a partitioned operation — Lesson 14),
///   - wire latency and per-context bandwidth,
///   - message-matching costs proportional to queue search depth.

namespace tmpi::net {

struct CostModel {
  // --- NIC hardware context costs -----------------------------------------
  /// Per-message injection overhead at a hardware context (doorbell ring +
  /// descriptor write). The context is busy for this long per message.
  Time ctx_inject_ns = 120;
  /// Per-message receive-side overhead at the target's hardware context
  /// (completion-queue entry processing). Contexts are duplex-serial:
  /// transmit and receive work share the queue, so inbound traffic through a
  /// channel competes with the owning thread's sends.
  Time ctx_rx_ns = 60;
  /// Extra injection cost per *additional* VCI mapped onto the same hardware
  /// context (cache-line bouncing on the shared queue; Lesson 3).
  Time ctx_share_penalty_ns = 90;
  /// Bounded pool size per NIC. Mapping more VCIs than this onto one NIC
  /// forces sharing. Default is effectively unbounded.
  int max_hw_contexts = 1 << 20;

  // --- Wire ----------------------------------------------------------------
  /// One-way network latency between distinct nodes.
  Time wire_latency_ns = 900;
  /// Per-context network bandwidth in bytes per virtual nanosecond
  /// (12.5 B/ns == 100 Gb/s).
  double bandwidth_bytes_per_ns = 12.5;
  /// Intra-node (shared-memory) latency and bandwidth.
  Time shm_latency_ns = 150;
  double shm_bandwidth_bytes_per_ns = 40.0;

  // --- Software serialization ----------------------------------------------
  /// Cost of acquiring an uncontended lock (VCI lock, request lock).
  Time lock_uncontended_ns = 20;
  /// Additional cost per concurrent waiter observed at acquisition time.
  Time lock_contended_ns = 150;
  /// Cost charged per participant of a thread-team join/barrier (the
  /// synchronization partitioned communication forces — Lesson 14).
  Time thread_sync_ns = 300;

  // --- Matching ------------------------------------------------------------
  /// Cost per queue element inspected while matching.
  Time match_probe_ns = 12;
  /// Cost of enqueuing a posted receive or unexpected message.
  Time match_insert_ns = 30;

  // --- RMA -----------------------------------------------------------------
  /// Origin-side cost of issuing an RMA operation.
  Time rma_issue_ns = 100;
  /// Target-side cost of applying an atomic update (MPI_Accumulate et al.).
  Time atomic_apply_ns = 80;

  // --- Partitioned ---------------------------------------------------------
  /// Cost of a Pready / Parrived flag operation excluding locking.
  Time partition_flag_ns = 25;

  // --- Fault recovery (DESIGN.md §7) ---------------------------------------
  /// Ack-timeout the sender waits before the first retransmission of a
  /// dropped (or checksum-discarded) message; doubles on every further
  /// attempt (exponential backoff).
  Time retrans_backoff_ns = 400;
  /// Cap on a single backoff interval.
  Time retrans_backoff_max_ns = 25600;

  // --- Overload (DESIGN.md §8) ---------------------------------------------
  /// Sender-side cost of discovering the destination channel's eager credits
  /// are spent and falling back to rendezvous (one cache-line read of the
  /// remote credit counter plus protocol switch). Only ever charged when
  /// flow control is enabled, so the zero-config path is unaffected.
  Time credit_stall_ns = 60;

  // --- Protocol ------------------------------------------------------------
  /// Messages larger than this use the rendezvous protocol: the sender's
  /// completion additionally waits for the match plus one wire round trip.
  std::size_t eager_threshold_bytes = 64 * 1024;

  /// Human-readable preset name (for reports).
  std::string name = "default";

  /// Transfer time for a payload between distinct nodes.
  [[nodiscard]] Time wire_time(std::size_t bytes) const {
    return wire_latency_ns + static_cast<Time>(static_cast<double>(bytes) / bandwidth_bytes_per_ns);
  }

  /// Transfer time for a payload within a node (shared memory path).
  [[nodiscard]] Time shm_time(std::size_t bytes) const {
    return shm_latency_ns +
           static_cast<Time>(static_cast<double>(bytes) / shm_bandwidth_bytes_per_ns);
  }

  // --- Presets ---------------------------------------------------------------
  /// Omni-Path-like fabric: 160 hardware contexts per NIC (the bounded pool
  /// the paper's Lesson 3 discusses), 100 Gb/s class.
  static CostModel omnipath();
  /// InfiniBand-like fabric: effectively unbounded contexts, 200 Gb/s class.
  static CostModel infiniband();
  /// A fabric with aggressive per-message overheads; useful in tests to make
  /// serialization effects pronounced.
  static CostModel slow_serial();
};

}  // namespace tmpi::net

#endif  // TMPI_NET_COST_MODEL_H
