#include "net/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

namespace tmpi::net {

const char* to_string(TraceEv ev) {
  switch (ev) {
    case TraceEv::kPost: return "post";
    case TraceEv::kCreditDecision: return "credit_decision";
    case TraceEv::kLockAcquired: return "lock_acquired";
    case TraceEv::kInject: return "inject";
    case TraceEv::kRxOccupy: return "rx_occupy";
    case TraceEv::kDeposit: return "deposit";
    case TraceEv::kPostRecv: return "post_recv";
    case TraceEv::kProbe: return "probe";
    case TraceEv::kMatch: return "match";
    case TraceEv::kComplete: return "complete";
    case TraceEv::kError: return "error";
    case TraceEv::kDrop: return "drop";
    case TraceEv::kCorrupt: return "corrupt";
    case TraceEv::kDelay: return "delay";
    case TraceEv::kRetransmit: return "retransmit";
    case TraceEv::kTimeout: return "timeout";
    case TraceEv::kFailover: return "failover";
    case TraceEv::kCreditStall: return "credit_stall";
    case TraceEv::kOverflow: return "overflow";
    case TraceEv::kWatchdogTrip: return "watchdog_trip";
    case TraceEv::kRankDown: return "rank_down";
    case TraceEv::kUnexpectedDepth: return "unexpected_depth";
    case TraceEv::kCtxBacklog: return "ctx_backlog";
  }
  return "unknown";
}

const char* to_string(TraceOp op) {
  switch (op) {
    case TraceOp::kNone: return "None";
    case TraceOp::kSend: return "Send";
    case TraceOp::kRecv: return "Recv";
    case TraceOp::kRma: return "Rma";
    case TraceOp::kPartition: return "Partition";
    case TraceOp::kColl: return "Coll";
    case TraceOp::kProbe: return "Probe";
  }
  return "unknown";
}

bool TraceConfig::set(const std::string& key, const std::string& value) {
  if (key == "tmpi_trace") {
    enabled = value == "1" || value == "true" || value == "yes" || value == "on";
  } else if (key == "tmpi_trace_path") {
    path = value;
  } else if (key == "tmpi_trace_buffer_events") {
    buffer_events = static_cast<std::size_t>(std::stoull(value));
  } else {
    return false;
  }
  return true;
}

TraceConfig TraceConfig::from_env(TraceConfig base) {
  static constexpr const char* kKeys[] = {"tmpi_trace", "tmpi_trace_path",
                                          "tmpi_trace_buffer_events"};
  for (const char* key : kKeys) {
    std::string env_name(key);
    std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    if (const char* v = std::getenv(env_name.c_str()); v != nullptr && *v != '\0') {
      base.set(key, v);
    }
  }
  return base;
}

namespace {

/// Process-wide recorder id source, plus the per-thread (recorder id ->
/// buffer) cache. The id keys the cache instead of the recorder address:
/// a later World allocated at a freed recorder's address must not inherit a
/// stale buffer pointer.
std::atomic<std::uint64_t> g_recorder_ids{0};

/// Two cache ways: a thread routinely records into two recorders at once
/// (the opt-in tracer and the always-on flight recorder); a single-entry
/// cache would thrash through the registry mutex on every event.
struct TlCacheEntry {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
struct TlCache {
  TlCacheEntry way[2];
};
thread_local TlCache tl_cache;

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig cfg)
    : cfg_(std::move(cfg)),
      cap_(std::max<std::size_t>(cfg_.buffer_events, 4)),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed) + 1) {}

TraceRecorder::ThreadBuffer& TraceRecorder::local() {
  for (const TlCacheEntry& c : tl_cache.way) {
    if (c.recorder_id == id_ && c.buffer != nullptr) {
      return *static_cast<ThreadBuffer*>(c.buffer);
    }
  }
  std::scoped_lock lk(reg_mu_);
  const std::thread::id me = std::this_thread::get_id();
  for (auto& b : buffers_) {
    if (b->owner == me) {
      tl_cache.way[1] = tl_cache.way[0];
      tl_cache.way[0] = {id_, b.get()};
      return *b;
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& b = *buffers_.back();
  b.owner = me;
  // Full capacity up front: record() must never allocate after ring
  // creation, or the always-on flight recorder would leak heap traffic
  // into allocation-free steady states (alloc_steady_state_test pins it).
  b.ring.reserve(cap_);
  tl_cache.way[1] = tl_cache.way[0];
  tl_cache.way[0] = {id_, &b};
  return b;
}

void TraceRecorder::record(TraceEvent ev) {
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer& b = local();
  {
    std::scoped_lock lk(b.mu);
    if (b.ring.size() < cap_) {
      b.ring.push_back(ev);
    } else {
      b.ring[static_cast<std::size_t>(b.count % cap_)] = ev;
    }
    ++b.count;
  }
  if (has_sink_.load(std::memory_order_acquire)) sink_(ev);
}

void TraceRecorder::set_sink(std::function<void(const TraceEvent&)> sink) {
  has_sink_.store(false, std::memory_order_release);
  sink_ = std::move(sink);
  if (sink_) has_sink_.store(true, std::memory_order_release);
}

std::uint64_t TraceRecorder::recorded() const {
  std::scoped_lock lk(reg_mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::scoped_lock blk(b->mu);
    n += b->count;
  }
  return n;
}

std::uint64_t TraceRecorder::dropped() const {
  std::scoped_lock lk(reg_mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::scoped_lock blk(b->mu);
    if (b->count > b->ring.size()) n += b->count - b->ring.size();
  }
  return n;
}

std::vector<TraceRecorder::ThreadStats> TraceRecorder::thread_stats() const {
  std::scoped_lock lk(reg_mu_);
  std::vector<ThreadStats> out;
  out.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    std::scoped_lock blk(b->mu);
    ThreadStats ts;
    ts.recorded = b->count;
    if (b->count > b->ring.size()) ts.dropped = b->count - b->ring.size();
    out.push_back(ts);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::vector<TraceEvent> out;
  {
    std::scoped_lock lk(reg_mu_);
    for (const auto& b : buffers_) {
      std::scoped_lock blk(b->mu);
      out.insert(out.end(), b->ring.begin(), b->ring.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
  });
  return out;
}

std::vector<TraceEvent> TraceRecorder::tail(int rank, int vci, std::size_t n) const {
  std::vector<TraceEvent> all = merged();
  std::vector<TraceEvent> hits;
  for (const TraceEvent& ev : all) {
    if (ev.rank == rank && (ev.vci == vci || ev.vci < 0)) hits.push_back(ev);
  }
  if (hits.size() > n) hits.erase(hits.begin(), hits.end() - static_cast<std::ptrdiff_t>(n));
  return hits;
}

std::string format_trace_event(const TraceEvent& ev) {
  std::ostringstream os;
  os << "[t=" << ev.ts << "] rank " << ev.rank << " vci " << ev.vci << " " << to_string(ev.kind);
  if (ev.op != TraceOp::kNone) os << " " << (ev.name != nullptr ? ev.name : to_string(ev.op));
  if (ev.span != 0) os << " span " << ev.span;
  if (ev.tag >= 0) os << " tag " << ev.tag;
  if (ev.peer >= 0) os << " peer " << ev.peer;
  if (ev.dur != 0) os << " dur " << ev.dur;
  if (ev.value != 0) os << " value " << ev.value;
  return os.str();
}

namespace {

void json_escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF] << "0123456789abcdef"[c & 0xF];
    } else {
      os << c;
    }
  }
}

/// Chrome trace timestamps are microseconds; keep nanosecond resolution as a
/// fixed-point decimal so virtual times stay exact.
void write_us(std::ostream& os, Time ns) {
  os << ns / 1000 << "." << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10) << static_cast<char>('0' + ns % 10);
}

const char* event_name(const TraceEvent& ev) {
  if (ev.name != nullptr) return ev.name;
  if (ev.op != TraceOp::kNone) return to_string(ev.op);
  return to_string(ev.kind);
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& os, const std::string& note) const {
  const std::vector<TraceEvent> evs = merged();

  // Track discovery: one Chrome "process" per rank, one "thread" per VCI.
  // Rank-level events (vci < 0) land on a synthetic tid one past the last
  // real VCI so they do not pollute a channel's occupancy row. Ranks here
  // are always *world* ranks — spans recorded after a shrink() keep their
  // original attribution, so a journey spanning a recovery stays on one
  // process row.
  std::map<int, int> max_vci;
  for (const TraceEvent& ev : evs) {
    if (ev.rank < 0) continue;
    auto [it, inserted] = max_vci.emplace(ev.rank, ev.vci < 0 ? 0 : ev.vci);
    if (!inserted && ev.vci > it->second) it->second = ev.vci;
  }

  // Flow arrows: a kMatch whose parent (the send's span) still has its kPost
  // in the retained stream becomes a Chrome flow — `s` co-located with the
  // parent post, `f` at the match. Both ends must exist or the arrow is
  // dropped (a wrapped ring loses posts; the viewer must not dangle).
  std::map<std::uint64_t, std::size_t> post_at;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (evs[i].kind == TraceEv::kPost && evs[i].span != 0) post_at.emplace(evs[i].span, i);
  }
  std::map<std::size_t, std::vector<std::uint64_t>> flows_from;
  std::set<std::uint64_t> flow_ok;
  for (const TraceEvent& ev : evs) {
    if (ev.kind != TraceEv::kMatch || ev.parent == 0) continue;
    const auto it = post_at.find(ev.parent);
    if (it == post_at.end()) continue;
    flows_from[it->second].push_back(ev.span);
    flow_ok.insert(ev.span);
  }

  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"recorded\":" << recorded()
     << ",\"dropped\":" << dropped();
  if (!note.empty()) {
    os << ",\"note\":\"";
    json_escape(os, note.c_str());
    os << "\"";
  }
  os << "},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (const auto& [rank, mv] : max_vci) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << rank << ",\"tid\":0,\"ts\":0,"
       << "\"name\":\"process_name\",\"args\":{\"name\":\"rank " << rank << "\"}}";
    for (int v = 0; v <= mv + 1; ++v) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << rank << ",\"tid\":" << v << ",\"ts\":0,"
         << "\"name\":\"thread_name\",\"args\":{\"name\":\""
         << (v <= mv ? "vci " + std::to_string(v) : std::string("rank events")) << "\"}}";
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << rank << ",\"tid\":" << v << ",\"ts\":0,"
         << "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << v << "}}";
    }
  }

  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& ev = evs[i];
    const int pid = ev.rank < 0 ? 0 : ev.rank;
    const int tid = ev.vci >= 0 ? ev.vci : (max_vci.count(pid) != 0 ? max_vci[pid] + 1 : 0);
    sep();
    switch (ev.kind) {
      case TraceEv::kInject:
      case TraceEv::kRxOccupy:
      case TraceEv::kDeposit:
        os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
        write_us(os, ev.ts);
        os << ",\"dur\":";
        write_us(os, ev.dur);
        os << ",\"cat\":\"transport\",\"name\":\"" << to_string(ev.kind) << " ";
        json_escape(os, event_name(ev));
        os << "\",\"args\":{\"span\":" << ev.span << ",\"bytes\":" << ev.value
           << ",\"tag\":" << ev.tag << ",\"peer\":" << ev.peer << "}}";
        break;
      case TraceEv::kPost: {
        os << "{\"ph\":\"b\",\"cat\":\"op\",\"id\":" << ev.span << ",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"ts\":";
        write_us(os, ev.ts);
        os << ",\"name\":\"";
        json_escape(os, event_name(ev));
        os << "\",\"args\":{\"span\":" << ev.span << ",\"parent\":" << ev.parent
           << ",\"bytes\":" << ev.value << ",\"tag\":" << ev.tag << ",\"peer\":" << ev.peer
           << "}}";
        // Flow starts co-located with the post (same ts/pid/tid keeps the
        // track monotone); id is the matched receive's span.
        const auto fit = flows_from.find(i);
        if (fit != flows_from.end()) {
          for (const std::uint64_t flow : fit->second) {
            sep();
            os << "{\"ph\":\"s\",\"cat\":\"journey\",\"id\":" << flow << ",\"pid\":" << pid
               << ",\"tid\":" << tid << ",\"ts\":";
            write_us(os, ev.ts);
            os << ",\"name\":\"journey\"}";
          }
        }
        break;
      }
      case TraceEv::kMatch:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
        write_us(os, ev.ts);
        os << ",\"name\":\"match\",\"args\":{\"span\":" << ev.span << ",\"parent\":" << ev.parent
           << ",\"bytes\":" << ev.value << ",\"tag\":" << ev.tag << ",\"peer\":" << ev.peer
           << "}}";
        if (flow_ok.count(ev.span) != 0) {
          sep();
          os << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"journey\",\"id\":" << ev.span
             << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
          write_us(os, ev.ts);
          os << ",\"name\":\"journey\"}";
        }
        break;
      case TraceEv::kComplete:
      case TraceEv::kError:
        os << "{\"ph\":\"e\",\"cat\":\"op\",\"id\":" << ev.span << ",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"ts\":";
        write_us(os, ev.ts);
        os << ",\"name\":\"";
        json_escape(os, event_name(ev));
        os << "\",\"args\":{\"ok\":" << (ev.kind == TraceEv::kComplete ? "true" : "false")
           << ",\"errc\":" << ev.value << "}}";
        break;
      case TraceEv::kUnexpectedDepth:
      case TraceEv::kCtxBacklog:
        os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
        write_us(os, ev.ts);
        os << ",\"name\":\"" << to_string(ev.kind) << "\",\"args\":{\"value\":" << ev.value
           << "}}";
        break;
      default:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
        write_us(os, ev.ts);
        os << ",\"name\":\"" << to_string(ev.kind)
           << "\",\"args\":{\"span\":" << ev.span << ",\"value\":" << ev.value
           << ",\"tag\":" << ev.tag << ",\"peer\":" << ev.peer << "}}";
        break;
    }
  }
  os << "\n]}\n";
}

// ---------------------------------------------------------------------------
// Minimal JSON parser + Chrome-trace schema checks (the checked-in validator
// used by tests and tools/trace_validate; no external dependencies).

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParser {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str);
      case 't':
        if (end - p >= 4 && std::string_view(p, 4) == "true") {
          out->kind = JsonValue::Kind::kBool;
          out->b = true;
          p += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::string_view(p, 5) == "false") {
          out->kind = JsonValue::Kind::kBool;
          out->b = false;
          p += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::string_view(p, 4) == "null") {
          out->kind = JsonValue::Kind::kNull;
          p += 4;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string* out) {
    ++p;  // opening quote
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("bad escape");
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end - p < 5) return fail("bad \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(p[i])) == 0) {
                return fail("bad \\u escape");
              }
            }
            out->push_back('?');  // placeholder; validation only
            p += 4;
            break;
          }
          default: return fail("bad escape");
        }
        ++p;
      } else if (static_cast<unsigned char>(*p) < 0x20) {
        return fail("raw control character in string");
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_number(JsonValue* out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) != 0 || *p == '.' ||
                       *p == 'e' || *p == 'E' || *p == '+' || *p == '-')) {
      ++p;
    }
    if (p == start) return fail("expected a value");
    char* parsed_end = nullptr;
    out->num = std::strtod(std::string(start, p).c_str(), &parsed_end);
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++p;  // '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++p;  // '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      skip_ws();
      if (p >= end || *p != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':' after key");
      ++p;
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }
};

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  JsonParser ps{text.data(), text.data() + text.size(), {}};
  if (!ps.parse_value(out, 0)) {
    if (error != nullptr) {
      *error = ps.err + " (at offset " + std::to_string(ps.p - text.data()) + ")";
    }
    return false;
  }
  ps.skip_ws();
  if (ps.p != ps.end) {
    if (error != nullptr) *error = "trailing content after JSON value";
    return false;
  }
  return true;
}

bool schema_fail(std::string* error, std::size_t index, const std::string& what) {
  if (error != nullptr) *error = "traceEvents[" + std::to_string(index) + "]: " + what;
  return false;
}

}  // namespace

bool validate_json_text(const std::string& text, std::string* error) {
  JsonValue root;
  return parse_json(text, &root, error);
}

bool validate_chrome_trace_json(const std::string& text, std::string* error) {
  JsonValue root;
  if (!parse_json(text, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "root is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }

  // Per-(pid, tid) virtual timestamps must be monotonically non-decreasing
  // in stream order — the exporter writes the merged, time-sorted stream.
  std::map<std::pair<double, double>, double> last_ts;
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const JsonValue& ev = events->arr[i];
    if (ev.kind != JsonValue::Kind::kObject) return schema_fail(error, i, "not an object");
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->str.size() != 1) {
      return schema_fail(error, i, "missing ph");
    }
    const JsonValue* pid = ev.find("pid");
    const JsonValue* tid = ev.find("tid");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* name = ev.find("name");
    if (pid == nullptr || pid->kind != JsonValue::Kind::kNumber) {
      return schema_fail(error, i, "missing pid");
    }
    if (tid == nullptr || tid->kind != JsonValue::Kind::kNumber) {
      return schema_fail(error, i, "missing tid");
    }
    if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber || ts->num < 0) {
      return schema_fail(error, i, "missing or negative ts");
    }
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->str.empty()) {
      return schema_fail(error, i, "missing name");
    }
    const char phc = ph->str[0];
    if (phc == 'M') continue;  // metadata: no timeline position
    if (phc == 'X') {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber || dur->num < 0) {
        return schema_fail(error, i, "X event missing or negative dur");
      }
    }
    if ((phc == 'b' || phc == 'e') && ev.find("id") == nullptr) {
      return schema_fail(error, i, "async event missing id");
    }
    if ((phc == 's' || phc == 'f') && ev.find("id") == nullptr) {
      return schema_fail(error, i, "flow event missing id");
    }
    auto [it, inserted] = last_ts.emplace(std::make_pair(pid->num, tid->num), ts->num);
    if (!inserted) {
      if (ts->num < it->second) {
        return schema_fail(error, i, "timestamp not monotonic on its (pid, tid) track");
      }
      it->second = ts->num;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Causal-link integrity (DESIGN.md §14). Shared core over (span, parent, ts)
// triples extracted either from in-memory TraceEvents or from an exported
// Chrome trace's args.

namespace {

struct LinkNode {
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  double ts = 0;
  bool is_post = false;  ///< defines the span (link targets must be posts)
};

bool check_links(const std::vector<LinkNode>& nodes, bool strict, std::string* error) {
  const auto set_err = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  // Span definitions: the first kPost per span anchors its timestamp.
  std::map<std::uint64_t, double> post_ts;
  for (const LinkNode& n : nodes) {
    if (n.is_post && n.span != 0) post_ts.emplace(n.span, n.ts);
  }
  // Every non-root edge resolves, and a child never precedes its parent's
  // post in virtual time (the "journey virtual-time monotone" invariant —
  // arrival, retransmit, and match times all sit at or after the send post).
  std::map<std::uint64_t, std::set<std::uint64_t>> edges;  // child span -> parents
  for (const LinkNode& n : nodes) {
    if (n.parent == 0) continue;
    const auto it = post_ts.find(n.parent);
    if (it == post_ts.end()) {
      if (strict) {
        return set_err("span " + std::to_string(n.span) + ": parent " +
                       std::to_string(n.parent) + " has no post event (unresolved edge)");
      }
      continue;  // tolerated: the parent's post was overwritten by a ring wrap
    }
    if (n.ts < it->second) {
      return set_err("span " + std::to_string(n.span) + ": ts precedes parent " +
                     std::to_string(n.parent) + "'s post (journey not monotone)");
    }
    if (n.span != 0) edges[n.span].insert(n.parent);
  }
  // No cycles along parent edges (colored DFS over the span graph).
  std::map<std::uint64_t, int> color;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<std::uint64_t, std::set<std::uint64_t>::const_iterator>> stack;
  for (const auto& [root, unused] : edges) {
    if (color[root] != 0) continue;
    color[root] = 1;
    stack.emplace_back(root, edges[root].begin());
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      const auto eit = edges.find(node);
      if (eit == edges.end() || it == eit->second.end()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::uint64_t next = *it++;
      if (edges.count(next) == 0) continue;
      if (color[next] == 1) {
        return set_err("span " + std::to_string(node) + " -> " + std::to_string(next) +
                       ": parent edges form a cycle");
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.emplace_back(next, edges[next].begin());
      }
    }
  }
  return true;
}

}  // namespace

bool validate_trace_links(const std::vector<TraceEvent>& events, bool strict,
                          std::string* error) {
  std::vector<LinkNode> nodes;
  nodes.reserve(events.size());
  for (const TraceEvent& ev : events) {
    LinkNode n;
    n.span = ev.span;
    n.parent = ev.parent;
    n.ts = static_cast<double>(ev.ts);
    n.is_post = ev.kind == TraceEv::kPost;
    nodes.push_back(n);
  }
  return check_links(nodes, strict, error);
}

bool validate_trace_links_json(const std::string& text, std::string* error) {
  JsonValue root;
  if (!parse_json(text, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "root is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }
  bool dropped = false;
  if (const JsonValue* other = root.find("otherData"); other != nullptr) {
    if (const JsonValue* d = other->find("dropped");
        d != nullptr && d->kind == JsonValue::Kind::kNumber && d->num > 0) {
      dropped = true;
    }
  }
  std::vector<LinkNode> nodes;
  for (const JsonValue& ev : events->arr) {
    if (ev.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = ev.find("ph");
    const JsonValue* args = ev.find("args");
    const JsonValue* ts = ev.find("ts");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || args == nullptr ||
        ts == nullptr) {
      continue;
    }
    const JsonValue* span = args->find("span");
    const JsonValue* parent = args->find("parent");
    if (span == nullptr || span->kind != JsonValue::Kind::kNumber) continue;
    LinkNode n;
    n.span = static_cast<std::uint64_t>(span->num);
    if (parent != nullptr && parent->kind == JsonValue::Kind::kNumber) {
      n.parent = static_cast<std::uint64_t>(parent->num);
    }
    n.ts = ts->num;
    n.is_post = ph->str == "b";
    nodes.push_back(n);
  }
  return check_links(nodes, !dropped, error);
}

}  // namespace tmpi::net
