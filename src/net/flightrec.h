#ifndef TMPI_NET_FLIGHTREC_H
#define TMPI_NET_FLIGHTREC_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/trace.h"

/// \file flightrec.h
/// Always-on black-box flight recorder (DESIGN.md §14).
///
/// The tracer (trace.h) is opt-in: when a run deadlocks or a rank dies with
/// tracing off, the final seconds are gone. The flight recorder closes that
/// gap: a small always-on ring (a few thousand events, the same per-thread
/// ring machinery as the tracer, zero virtual-time charge) that the
/// transport feeds with the same event stream it would trace. Nobody reads
/// it until something goes wrong — a watchdog trip, a deadlock report, a
/// `kProcFailed`/revoke, or a fatal error handler — at which point it is
/// dumped post-mortem as `flightrec.json`: a valid Chrome trace naming the
/// last N events per (rank, vci), with the dump reason in `otherData.note`.
///
/// Knobs (Info keys on WorldConfig::trace_info; uppercased env overlays,
/// env wins — the trace/fault/overload pattern):
///   tmpi_flightrec         bool  enable (default ON; "0" opts out)
///   tmpi_flightrec_path    str   dump path (default "flightrec.json")
///   tmpi_flightrec_events  u64   per-thread ring capacity (default 2048)
///
/// Dump-on-fatal: `fail()` (error.h) cannot see any World, so the active
/// recorder registers itself in a process-wide slot; `dump_active()` is
/// best-effort and a no-op when no World is alive.

namespace tmpi::net {

/// Resolved flight-recorder knobs; Info keys first, env overlay on top.
struct FlightRecConfig {
  bool enabled = true;
  std::string path = "flightrec.json";
  std::size_t buffer_events = 2048;

  /// Apply one Info entry; returns false for keys this layer does not own.
  bool set(const std::string& key, const std::string& value);
  /// Overlay TMPI_FLIGHTREC / TMPI_FLIGHTREC_PATH / TMPI_FLIGHTREC_EVENTS.
  static FlightRecConfig from_env(FlightRecConfig base);
};

/// The black box. Wraps a small TraceRecorder (per-thread rings, wrap =
/// forget the oldest) and adds the post-mortem dump. record() costs one
/// ring write; it never touches a virtual clock, so an enabled flight
/// recorder — the default — is bit-exact with a disabled one.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecConfig cfg);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] const FlightRecConfig& config() const { return cfg_; }

  /// Append one event to the calling thread's ring.
  void record(const TraceEvent& ev) { rec_.record(ev); }

  [[nodiscard]] std::uint64_t recorded() const { return rec_.recorded(); }

  /// The last `n` retained events on channel (rank, vci), oldest first —
  /// the watchdog report's per-channel history when tracing is off.
  [[nodiscard]] std::vector<TraceEvent> tail(int rank, int vci, std::size_t n) const {
    return rec_.tail(rank, vci, n);
  }

  /// Write the post-mortem to `config().path` with `reason` stamped in
  /// `otherData.note`. First caller wins (one catastrophe, one black box);
  /// later calls are no-ops. Returns true when this call wrote the file.
  bool dump(const std::string& reason);

  /// Serialize to a stream without the first-dump latch (tests, tools).
  void write(std::ostream& os, const std::string& reason) const;

  /// Process-wide active-recorder slot for fatal-path dumps. The World
  /// registers its recorder on construction and clears it on destruction.
  static void set_active(FlightRecorder* fr);
  /// Dump the active recorder, if any (called by the fatal error path).
  static void dump_active(const std::string& reason);

 private:
  FlightRecConfig cfg_;
  TraceRecorder rec_;
  std::atomic<bool> dumped_{false};
};

}  // namespace tmpi::net

#endif  // TMPI_NET_FLIGHTREC_H
