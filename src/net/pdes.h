#ifndef TMPI_NET_PDES_H
#define TMPI_NET_PDES_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/virtual_clock.h"

/// \file pdes.h
/// Conservative parallel discrete-event scheduler (DESIGN.md §12).
///
/// In serial execution mode the transport processes every remote-side
/// delivery inline, on the sending thread — correct and bit-exact, but the
/// sender pays the receiver's host-side work (remote VCI lock, context
/// occupancy, matching-engine deposit, request wakeup) for every message.
/// In parallel mode (`tmpi_exec_mode=parallel`) deliveries are instead
/// captured as events and drained by a worker pool, sharded by the physical
/// resource they touch.
///
/// Correctness rests on three rules:
///
/// 1. *Sharding by physical context.* Every event lands in the shard of its
///    destination (node, hardware-context id). All state a delivery mutates —
///    the duplex context's busy horizon, the VCI's matching engine, the
///    channel counters — hangs off that context, so per-shard FIFO order is
///    exactly the serial processing order for a single-writer channel.
///
/// 2. *Ticket-ordered delivery barrier.* Events carry a per-shard ticket
///    assigned at enqueue; processing asserts tickets strictly in order
///    (enforced, not hoped: a violation aborts). Workers may interleave
///    *across* shards freely — that is the parallelism — but never within
///    one.
///
/// 3. *Safe points.* Before a rank thread touches state a pending delivery
///    could also touch (injecting on a context, posting or probing a
///    matching engine, occupying a receive context), the transport drains
///    that shard. Cross-VCI dependencies — collectives, RMA fences, watchdog
///    epochs, failover absorb() — therefore always observe a quiesced shard,
///    and the virtual clocks they compute are identical to serial execution.
///    World::run()/snapshot() quiesce every shard.
///
/// The lookahead is derived from the cost model's minimum channel latency
/// (min of shm and wire): no event can carry an arrival earlier than its
/// sender's inject time plus that bound, so a drained shard can never
/// receive an event "from the past" of work already processed at a safe
/// point. It is recorded for diagnostics and asserted in tests; the safe-
/// point protocol above is what the bit-exactness proof leans on.
///
/// Worker threads run with no bound ThreadClock: a delivery executes
/// entirely on its own arrival clock (see transport.cpp), never on a rank's.

namespace tmpi::net {

/// One deferred unit of work. Implementations capture everything they need
/// at enqueue time and must be runnable on any thread.
class PdesEvent {
 public:
  virtual ~PdesEvent() = default;
  virtual void run() = 0;
};

class PdesScheduler {
 public:
  struct Config {
    /// Worker pool size; 0 = auto (hardware concurrency, clamped to [1, 8]).
    /// The TMPI_PDES_WORKERS environment variable overrides either way.
    int num_workers = 0;
    /// Conservative lookahead bound (min channel latency), for diagnostics.
    Time lookahead_ns = 0;
  };

  explicit PdesScheduler(Config cfg);
  ~PdesScheduler();

  PdesScheduler(const PdesScheduler&) = delete;
  PdesScheduler& operator=(const PdesScheduler&) = delete;

  /// Shard key for a delivery touching hardware context `ctx_id` on `node`.
  [[nodiscard]] static std::uint64_t shard_key(int node, int ctx_id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
           static_cast<std::uint32_t>(ctx_id);
  }

  /// Queue `ev` on `key`'s shard. Thread-safe; wakes a parked worker.
  void enqueue(std::uint64_t key, std::unique_ptr<PdesEvent> ev);

  /// Safe point: process `key`'s shard until it is empty AND no event is in
  /// flight. The calling thread helps (it may process events itself), so a
  /// drain makes progress even with zero workers. O(1) when the shard is
  /// idle — one atomic load.
  void drain(std::uint64_t key);

  /// Process every shard to empty (global safe point).
  void quiesce();

  /// Quiesce, then stop and join the worker pool. Idempotent; called by the
  /// owner before any state a queued event references is torn down.
  void shutdown();

  /// Events enqueued but not yet fully processed, across all shards.
  [[nodiscard]] std::uint64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }
  /// Events processed so far (telemetry/tests).
  [[nodiscard]] std::uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Time lookahead_ns() const { return lookahead_ns_; }
  [[nodiscard]] int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Item {
    std::unique_ptr<PdesEvent> ev;
    std::uint64_t ticket = 0;
  };

  /// Grow-only power-of-two FIFO ring of Items. A std::deque allocates (and
  /// frees) map blocks as the queue churns, which shows up in the parallel
  /// engine's steady-state allocation budget (alloc_steady_state_test); the
  /// ring reaches its high-water capacity once and then recycles in place.
  class ItemRing {
   public:
    [[nodiscard]] bool empty() const { return count_ == 0; }
    void push_back(Item&& it) {
      if (count_ == buf_.size()) grow();
      buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(it);
      ++count_;
    }
    Item pop_front() {
      Item it = std::move(buf_[head_]);
      head_ = (head_ + 1) & (buf_.size() - 1);
      --count_;
      return it;
    }

   private:
    void grow() {
      const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
      std::vector<Item> nb(cap);
      for (std::size_t i = 0; i < count_; ++i) {
        nb[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
      }
      buf_ = std::move(nb);
      head_ = 0;
    }

    std::vector<Item> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  /// One event-queue shard. `q_mu` guards the queue (brief, so enqueue never
  /// waits behind event processing); `proc_mu` is the delivery barrier — it
  /// is held across pop+run, so holders observe strict ticket order and a
  /// drain that acquires it with an empty queue knows nothing is in flight.
  struct Shard {
    std::mutex proc_mu;
    std::mutex q_mu;
    ItemRing q;
    std::uint64_t next_ticket = 0;       ///< assigned at enqueue (under q_mu)
    std::uint64_t processed_ticket = 0;  ///< checked at run (under proc_mu)
    /// Enqueued-but-not-fully-processed count: the drain fast path.
    std::atomic<std::uint64_t> in_flight{0};
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) {
    // splitmix64 finalizer, same mixing discipline as the stats registry.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return shards_[static_cast<std::size_t>(key) & (kShards - 1)];
  }

  /// Process `s` until empty; returns the number of events run.
  std::uint64_t run_shard(Shard& s);

  void worker_loop();

  static constexpr std::size_t kShards = 64;

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> processed_{0};
  Time lookahead_ns_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<int> sleepers_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::vector<std::thread> workers_;  // last: loops touch every member above
};

}  // namespace tmpi::net

#endif  // TMPI_NET_PDES_H
