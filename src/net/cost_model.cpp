#include "net/cost_model.h"

namespace tmpi::net {

CostModel CostModel::omnipath() {
  CostModel cm;
  cm.name = "omnipath";
  cm.max_hw_contexts = 160;
  cm.ctx_inject_ns = 130;
  cm.ctx_share_penalty_ns = 110;
  cm.wire_latency_ns = 1100;
  cm.bandwidth_bytes_per_ns = 12.5;  // 100 Gb/s
  return cm;
}

CostModel CostModel::infiniband() {
  CostModel cm;
  cm.name = "infiniband";
  cm.max_hw_contexts = 1 << 20;
  cm.ctx_inject_ns = 110;
  cm.wire_latency_ns = 800;
  cm.bandwidth_bytes_per_ns = 25.0;  // 200 Gb/s
  return cm;
}

CostModel CostModel::slow_serial() {
  CostModel cm;
  cm.name = "slow_serial";
  cm.ctx_inject_ns = 1000;
  cm.lock_contended_ns = 800;
  cm.wire_latency_ns = 2000;
  cm.bandwidth_bytes_per_ns = 5.0;
  return cm;
}

}  // namespace tmpi::net
