#include "net/virtual_clock.h"

#include <cstdio>
#include <cstdlib>

namespace tmpi::net {

namespace {
thread_local VirtualClock* g_thread_clock = nullptr;
}  // namespace

VirtualClock* ThreadClock::bind(VirtualClock* clock) {
  VirtualClock* prev = g_thread_clock;
  g_thread_clock = clock;
  return prev;
}

VirtualClock& ThreadClock::get() {
  if (g_thread_clock == nullptr) {
    std::fputs("tmpi: thread has no bound VirtualClock\n", stderr);
    std::abort();
  }
  return *g_thread_clock;
}

bool ThreadClock::bound() { return g_thread_clock != nullptr; }

}  // namespace tmpi::net
