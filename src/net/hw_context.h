#ifndef TMPI_NET_HW_CONTEXT_H
#define TMPI_NET_HW_CONTEXT_H

#include <atomic>
#include <cstddef>
#include <mutex>

#include "net/cost_model.h"
#include "net/stats.h"
#include "net/virtual_clock.h"

/// \file hw_context.h
/// A simulated NIC hardware context (work queue + doorbell register).
///
/// A hardware context serializes message injection: one descriptor enters the
/// queue at a time. Independent contexts inject in parallel — this is the
/// network parallelism that VCIs map to. When more VCIs than contexts exist
/// (bounded pools, Lesson 3), several VCIs share one context and pay a
/// sharing penalty on every injection in addition to serializing with each
/// other.

namespace tmpi::net {

class HwContext {
 public:
  HwContext(int id, NetStats* stats) : id_(id), stats_(stats) {}

  HwContext(const HwContext&) = delete;
  HwContext& operator=(const HwContext&) = delete;

  [[nodiscard]] int id() const { return id_; }

  /// Register one more VCI as mapped onto this context.
  void add_sharer() { sharers_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] int sharers() const { return sharers_.load(std::memory_order_relaxed); }

  /// Fault layer (DESIGN.md §7): a context marked down no longer carries
  /// traffic reliably; VciPool::fail_over redirects the affected stream to a
  /// fallback VCI. The flag is sticky — simulated hardware does not recover.
  void mark_down() { down_.store(true, std::memory_order_release); }
  [[nodiscard]] bool is_down() const { return down_.load(std::memory_order_acquire); }

  /// Occupy the context for `base_cost` of work (plus the sharing penalty if
  /// >1 VCI maps here). Advances the caller's virtual clock past the busy
  /// horizon and returns the completion time. The context is duplex-serial:
  /// transmit and receive work funnel through the same queue. When the
  /// occupying VCI passes its `ch` counter block, the charge is also
  /// attributed to that channel.
  Time occupy(VirtualClock& clk, const CostModel& cm, Time base_cost,
              ChannelStats* ch = nullptr) {
    const int nsh = sharers();
    const bool shared = nsh > 1;
    Time cost = base_cost;
    if (shared) cost += cm.ctx_share_penalty_ns * static_cast<Time>(nsh - 1);

    std::unique_lock lk(mu_);
    const Time start = std::max(clk.now(), busy_until_);
    busy_until_ = start + cost;
    const Time done = busy_until_;
    lk.unlock();

    clk.advance_to(done);
    if (stats_ != nullptr) stats_->add_injection(shared, cost);
    if (ch != nullptr) ch->add_busy(cost);
    return done;
  }

  /// Inject one message descriptor (transmit-side occupancy).
  Time inject(VirtualClock& clk, const CostModel& cm, ChannelStats* ch = nullptr) {
    if (ch != nullptr) ch->add_injection();
    return occupy(clk, cm, cm.ctx_inject_ns, ch);
  }

  /// Process one arriving message (receive-side occupancy).
  Time receive(VirtualClock& clk, const CostModel& cm, ChannelStats* ch = nullptr) {
    if (ch != nullptr) ch->add_rx();
    return occupy(clk, cm, cm.ctx_rx_ns, ch);
  }

  /// Busy horizon (for tests/diagnostics; racy by nature).
  [[nodiscard]] Time busy_until() const {
    std::scoped_lock lk(mu_);
    return busy_until_;
  }

 private:
  int id_;
  NetStats* stats_;
  std::atomic<int> sharers_{0};
  std::atomic<bool> down_{false};
  mutable std::mutex mu_;
  Time busy_until_ = 0;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_HW_CONTEXT_H
