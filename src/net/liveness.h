#ifndef TMPI_NET_LIVENESS_H
#define TMPI_NET_LIVENESS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "net/virtual_clock.h"

/// \file liveness.h
/// Rank liveness registry for the fault fabric (DESIGN.md §13).
///
/// A `rank_down` fault event declares a whole rank dead at a deterministic
/// point in its operation stream. The registry is the single source of truth
/// every layer consults: the transport fast-fails injections touching a dead
/// rank, the watchdog converts blocked-on-dead waits into kProcFailed, and
/// the recovery collectives (shrink/agree) compute their survivor sets here.
///
/// Liveness is heartbeat-shaped but event-driven: instead of periodic probe
/// messages (whose timing would perturb the virtual clock), every faulted
/// channel operation doubles as a heartbeat (`beat()`), and death is declared
/// by the fault plan at an exact op index. The fast path is one relaxed
/// atomic load — a world with no failures never takes the mutex.

namespace tmpi::net {

class Liveness {
 public:
  Liveness() = default;
  Liveness(const Liveness&) = delete;
  Liveness& operator=(const Liveness&) = delete;

  /// Any rank dead at all? One relaxed load; the gate in front of every
  /// per-rank query on the hot path.
  [[nodiscard]] bool any_dead() const {
    return dead_count_.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] bool is_dead(int rank) const {
    if (!any_dead()) return false;
    std::scoped_lock lk(mu_);
    for (const auto& d : dead_) {
      if (d.first == rank) return true;
    }
    return false;
  }

  /// Virtual time the rank was declared dead (0 if alive).
  [[nodiscard]] Time death_time(int rank) const {
    if (!any_dead()) return 0;
    std::scoped_lock lk(mu_);
    for (const auto& d : dead_) {
      if (d.first == rank) return d.second;
    }
    return 0;
  }

  /// Sorted-by-declaration-order snapshot of (rank, death vtime).
  [[nodiscard]] std::vector<std::pair<int, Time>> dead_ranks() const {
    std::scoped_lock lk(mu_);
    return dead_;
  }

  /// Declare `rank` dead at virtual time `t`. Returns false if it already
  /// was (death is sticky and fires exactly once). Wakes every registered
  /// waker so blocked recovery waits (agree/shrink, partitioned awaits) can
  /// re-evaluate their survivor sets.
  ///
  /// The recorded death time is clamped to the rank's last heartbeat: a
  /// rank_down trigger can fire on a clock that lags the rank's observed
  /// channel activity (deliveries beat on the arrival clock, sends on the
  /// thread clock), and a rank cannot die before it was provably alive.
  bool mark_dead(int rank, Time t) {
    std::vector<std::function<void()>> to_wake;
    {
      std::scoped_lock lk(mu_);
      for (const auto& d : dead_) {
        if (d.first == rank) return false;
      }
      for (const auto& b : beats_) {
        if (b.first == rank && b.second > t) t = b.second;
      }
      dead_.emplace_back(rank, t);
      dead_count_.store(static_cast<int>(dead_.size()), std::memory_order_release);
      to_wake.reserve(wakers_.size());
      for (const auto& w : wakers_) to_wake.push_back(w.second);
    }
    // Outside the registry lock: wakers take their own (cv) locks.
    for (const auto& fn : to_wake) fn();
    return true;
  }

  /// Event-driven heartbeat: the fault layer records the last virtual time
  /// it saw a channel operation from `rank`. Diagnostic only (watchdog
  /// reports); kept O(live-set) under the same mutex, fault path only.
  void beat(int rank, Time t) {
    std::scoped_lock lk(mu_);
    for (auto& b : beats_) {
      if (b.first == rank) {
        if (t > b.second) b.second = t;
        return;
      }
    }
    beats_.emplace_back(rank, t);
  }

  /// Last heartbeat seen from `rank` (0 if never heard).
  [[nodiscard]] Time last_beat(int rank) const {
    std::scoped_lock lk(mu_);
    for (const auto& b : beats_) {
      if (b.first == rank) return b.second;
    }
    return 0;
  }

  /// Register a callback invoked on every death declaration. Returns a token
  /// for remove_waker. Wakers must be cheap and lock only their own cv mutex.
  std::uint64_t add_waker(std::function<void()> fn) {
    std::scoped_lock lk(mu_);
    const std::uint64_t id = next_waker_++;
    wakers_.emplace_back(id, std::move(fn));
    return id;
  }

  void remove_waker(std::uint64_t id) {
    std::scoped_lock lk(mu_);
    for (std::size_t i = 0; i < wakers_.size(); ++i) {
      if (wakers_[i].first == id) {
        wakers_.erase(wakers_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

 private:
  mutable std::mutex mu_;
  std::atomic<int> dead_count_{0};
  std::vector<std::pair<int, Time>> dead_;   ///< declaration order
  std::vector<std::pair<int, Time>> beats_;  ///< (rank, last-heard vtime)
  std::vector<std::pair<std::uint64_t, std::function<void()>>> wakers_;
  std::uint64_t next_waker_ = 1;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_LIVENESS_H
