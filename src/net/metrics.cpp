#include "net/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <ostream>

namespace tmpi::net {

bool MetricsConfig::set(const std::string& key, const std::string& value) {
  if (key == "tmpi_metrics_window_ns") {
    window_ns = static_cast<Time>(std::stoull(value));
  } else if (key == "tmpi_metrics_path") {
    path = value;
  } else {
    return false;
  }
  return true;
}

MetricsConfig MetricsConfig::from_env(MetricsConfig base) {
  static constexpr const char* kKeys[] = {"tmpi_metrics_window_ns", "tmpi_metrics_path"};
  for (const char* key : kKeys) {
    std::string env_name(key);
    std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    if (const char* v = std::getenv(env_name.c_str()); v != nullptr && *v != '\0') {
      base.set(key, v);
    }
  }
  return base;
}

MetricsSampler::MetricsSampler(NetStats* stats, MetricsConfig cfg)
    : stats_(stats), cfg_(std::move(cfg)), next_edge_(cfg_.window_ns) {}

void MetricsSampler::sample_locked(Time now) {
  std::scoped_lock lk(mu_);
  const Time w = cfg_.window_ns;
  if (w == 0 || now < next_edge_.load(std::memory_order_relaxed)) return;  // lost the race
  // Close one window ending at the last boundary at or before `now`; a long
  // quiet stretch yields one wide window, not a run of empty ones.
  const Time end = (now / w) * w;
  const NetStatsSnapshot snap = stats_->snapshot();
  MetricsWindow win;
  win.start = prev_edge_;
  win.end = end;
  win.delta = snap - prev_;
  prev_ = snap;
  prev_edge_ = end;
  next_edge_.store(end + w, std::memory_order_relaxed);
  windows_.push_back(win);
  if (hook_) hook_(windows_.back());
}

void MetricsSampler::flush(Time now) {
  std::scoped_lock lk(mu_);
  const NetStatsSnapshot snap = stats_->snapshot();
  MetricsWindow win;
  win.start = prev_edge_;
  win.end = std::max(now, prev_edge_);
  win.delta = snap - prev_;
  prev_ = snap;
  prev_edge_ = win.end;
  next_edge_.store(std::numeric_limits<Time>::max(), std::memory_order_relaxed);
  windows_.push_back(win);
  if (hook_) hook_(windows_.back());
}

std::vector<MetricsWindow> MetricsSampler::windows() const {
  std::scoped_lock lk(mu_);
  return windows_;
}

void MetricsSampler::set_hook(std::function<void(const MetricsWindow&)> hook) {
  std::scoped_lock lk(mu_);
  hook_ = std::move(hook);
}

namespace {

/// Max/mean channel load over one window's delta, the hot/cold-channel
/// signal the adaptive rebalancer thresholds on (DESIGN.md §15). Load is
/// context occupations (tx + rx); 0.0 when the window carried no traffic.
double vci_imbalance(const NetStatsSnapshot& d) {
  double total = 0.0;
  double maxload = 0.0;
  std::size_t n = 0;
  for (const ChannelStatsSnapshot& c : d.channels) {
    const double l = static_cast<double>(c.injections + c.rx_ops);
    total += l;
    maxload = std::max(maxload, l);
    ++n;
  }
  if (n == 0 || total <= 0.0) return 0.0;
  return maxload / (total / static_cast<double>(n));
}

void write_channel_json(std::ostream& os, const ChannelStatsSnapshot& c) {
  os << "{\"rank\":" << c.rank << ",\"vci\":" << c.vci << ",\"injections\":" << c.injections
     << ",\"rx_ops\":" << c.rx_ops << ",\"deposits\":" << c.deposits
     << ",\"busy_ns\":" << c.busy_ns << ",\"drops\":" << c.drops
     << ",\"retransmits\":" << c.retransmits << ",\"credit_stalls\":" << c.credit_stalls
     << ",\"overflows\":" << c.overflows << ",\"unexpected_hwm\":" << c.unexpected_hwm << "}";
}

}  // namespace

void MetricsSampler::write_json(std::ostream& os) const {
  const std::vector<MetricsWindow> wins = windows();
  os << "{\"window_ns\":" << cfg_.window_ns << ",\"windows\":[";
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const MetricsWindow& w = wins[i];
    const NetStatsSnapshot& d = w.delta;
    os << (i == 0 ? "\n" : ",\n");
    os << "{\"start\":" << w.start << ",\"end\":" << w.end << ",\"messages\":" << d.messages
       << ",\"bytes\":" << d.bytes << ",\"injections\":" << d.injections
       << ",\"match_probes\":" << d.match_probes
       << ",\"unexpected_messages\":" << d.unexpected_messages
       << ",\"rendezvous_messages\":" << d.rendezvous_messages << ",\"rma_ops\":" << d.rma_ops
       << ",\"drops\":" << d.drops << ",\"retransmits\":" << d.retransmits
       << ",\"timeouts\":" << d.timeouts << ",\"failovers\":" << d.failovers
       << ",\"credit_stalls\":" << d.credit_stalls << ",\"overflows\":" << d.overflows
       << ",\"proc_failures\":" << d.proc_failures
       << ",\"unexpected_hwm\":" << d.unexpected_hwm
       << ",\"rebalances\":" << d.rebalances
       << ",\"migrated_entries\":" << d.migrated_entries
       << ",\"vci_imbalance\":" << vci_imbalance(d) << ",\"op_latency\":[";
    for (std::size_t j = 0; j < d.op_latency.size(); ++j) {
      const OpLatency& l = d.op_latency[j];
      if (j != 0) os << ",";
      os << "{\"op\":\"" << l.op << "\",\"count\":" << l.count << ",\"errors\":" << l.errors
         << ",\"p50_ns\":" << l.p50 << ",\"p90_ns\":" << l.p90 << ",\"p99_ns\":" << l.p99
         << "}";
    }
    os << "],\"channels\":[";
    for (std::size_t j = 0; j < d.channels.size(); ++j) {
      if (j != 0) os << ",";
      write_channel_json(os, d.channels[j]);
    }
    os << "]}";
  }
  os << "\n]}\n";
}

void MetricsSampler::write_prometheus(std::ostream& os) const {
  // The cumulative state is the telescoped sum of every closed window —
  // exactly what a Prometheus counter is. Scraping happens post-mortem
  // (the file is written at teardown), but the format keeps the door open
  // for a live endpoint later.
  NetStatsSnapshot total;
  std::size_t nwin = 0;
  double last_imb = 0.0;
  {
    std::scoped_lock lk(mu_);
    total = prev_;
    nwin = windows_.size();
    if (!windows_.empty()) last_imb = vci_imbalance(windows_.back().delta);
  }
  const auto counter = [&os](const char* name, std::uint64_t v) {
    os << "# TYPE tmpi_" << name << "_total counter\n"
       << "tmpi_" << name << "_total " << v << "\n";
  };
  counter("messages", total.messages);
  counter("bytes", total.bytes);
  counter("injections", total.injections);
  counter("unexpected_messages", total.unexpected_messages);
  counter("rendezvous_messages", total.rendezvous_messages);
  counter("retransmits", total.retransmits);
  counter("credit_stalls", total.credit_stalls);
  counter("overflows", total.overflows);
  counter("proc_failures", total.proc_failures);
  counter("rebalances", total.rebalances);
  counter("migrated_entries", total.migrated_entries);
  os << "# TYPE tmpi_metrics_windows gauge\n"
     << "tmpi_metrics_windows " << nwin << "\n";
  os << "# TYPE tmpi_vci_imbalance gauge\n"
     << "tmpi_vci_imbalance " << last_imb << "\n";
  os << "# TYPE tmpi_channel_injections_total counter\n";
  for (const ChannelStatsSnapshot& c : total.channels) {
    os << "tmpi_channel_injections_total{rank=\"" << c.rank << "\",vci=\"" << c.vci << "\"} "
       << c.injections << "\n";
  }
  os << "# TYPE tmpi_channel_deposits_total counter\n";
  for (const ChannelStatsSnapshot& c : total.channels) {
    os << "tmpi_channel_deposits_total{rank=\"" << c.rank << "\",vci=\"" << c.vci << "\"} "
       << c.deposits << "\n";
  }
  os << "# TYPE tmpi_channel_credit_stalls_total counter\n";
  for (const ChannelStatsSnapshot& c : total.channels) {
    os << "tmpi_channel_credit_stalls_total{rank=\"" << c.rank << "\",vci=\"" << c.vci
       << "\"} " << c.credit_stalls << "\n";
  }
  os << "# TYPE tmpi_channel_unexpected_hwm gauge\n";
  for (const ChannelStatsSnapshot& c : total.channels) {
    os << "tmpi_channel_unexpected_hwm{rank=\"" << c.rank << "\",vci=\"" << c.vci << "\"} "
       << c.unexpected_hwm << "\n";
  }
}

}  // namespace tmpi::net
