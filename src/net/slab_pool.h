#ifndef TMPI_NET_SLAB_POOL_H
#define TMPI_NET_SLAB_POOL_H

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "net/spin.h"

/// \file slab_pool.h
/// Size-classed slab recycler for eager payloads (DESIGN.md §10).
///
/// Every eager message used to heap-allocate a fresh std::vector<std::byte>
/// and free it at the match — so message-rate benches measured the allocator,
/// not the communication design. SlabPool keeps power-of-two blocks
/// (2^6..2^17 bytes) on per-class freelists; steady-state traffic recycles
/// blocks without touching the heap.
///
/// Blocks are acquired on the *sender's* thread and released on the
/// *receiver's* (or wherever the envelope dies — failover can migrate it to
/// another VCI), so each class is guarded by a SpinLock; the critical
/// section is two pointer writes. PooledBuf carries its owning pool, which
/// must outlive the buffer — VciPool's destructor drains every matching
/// engine before destroying any Vci (and its pool) for exactly this reason.
///
/// The pool charges no virtual time: allocation is host-side harness
/// overhead the simulation never modelled (CostModel has no malloc cost),
/// which is what keeps pooling bit-exact.

namespace tmpi::net {

class SlabPool {
 public:
  static constexpr int kMinShift = 6;   ///< smallest class: 64 B
  static constexpr int kMaxShift = 17;  ///< largest class: 128 KiB (> eager threshold)
  static constexpr int kClasses = kMaxShift - kMinShift + 1;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// All outstanding blocks must be back on the freelists by now (the VCI
  /// teardown order guarantees it); chunks are freed wholesale.
  ~SlabPool() {
    for (void* c : chunks_) ::operator delete(c);
  }

  /// Smallest class covering `bytes`, or -1 for oversized requests (heap
  /// fallback; only reachable above the 128 KiB class, i.e. never on the
  /// eager path with default cost models).
  [[nodiscard]] static int class_for(std::size_t bytes) {
    const int shift = bytes <= (std::size_t{1} << kMinShift)
                          ? kMinShift
                          : std::bit_width(bytes - 1);
    return shift > kMaxShift ? -1 : shift - kMinShift;
  }

  [[nodiscard]] static std::size_t class_bytes(int cls) {
    return std::size_t{1} << (cls + kMinShift);
  }

  /// Pop a block of class `cls`, refilling from the heap if the freelist is
  /// dry. Returns uninitialized storage of class_bytes(cls).
  [[nodiscard]] std::byte* get(int cls) {
    Class& k = classes_[static_cast<std::size_t>(cls)];
    k.mu.lock();
    if (k.free == nullptr) {
      refill_locked(cls, k);
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    void* p = k.free;
    k.free = *static_cast<void**>(p);
    k.mu.unlock();
    return static_cast<std::byte*>(p);
  }

  /// Return a block obtained from get() with the same class.
  void put(std::byte* p, int cls) {
    Class& k = classes_[static_cast<std::size_t>(cls)];
    k.mu.lock();
    *reinterpret_cast<void**>(p) = k.free;
    k.free = p;
    k.mu.unlock();
  }

  [[nodiscard]] std::uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Class {
    SpinLock mu;
    void* free = nullptr;
  };

  /// Carve a fresh chunk into blocks and push them on the class freelist.
  /// Chunk size targets ~256 KiB so small classes refill rarely while the
  /// largest class still batches a couple of blocks. Called with k.mu held;
  /// chunks_ has its own lock because two classes can refill concurrently.
  void refill_locked(int cls, Class& k) {
    const std::size_t bytes = class_bytes(cls);
    const std::size_t count = std::max<std::size_t>(2, (std::size_t{1} << 18) / bytes);
    auto* chunk = static_cast<std::byte*>(::operator new(count * bytes));
    chunks_mu_.lock();
    chunks_.push_back(chunk);
    chunks_mu_.unlock();
    for (std::size_t i = 0; i < count; ++i) {
      std::byte* b = chunk + i * bytes;
      *reinterpret_cast<void**>(b) = k.free;
      k.free = b;
    }
  }

  std::array<Class, kClasses> classes_{};
  std::vector<void*> chunks_;
  SpinLock chunks_mu_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Move-only payload buffer: a slab block when pool-acquired, a plain heap
/// allocation as fallback (oversized requests, or tests that build envelopes
/// with resize() and no pool at hand). Carries its owning pool so release
/// works from whichever thread — and whichever VCI, after failover — the
/// envelope dies on.
class PooledBuf {
 public:
  PooledBuf() = default;
  PooledBuf(const PooledBuf&) = delete;
  PooledBuf& operator=(const PooledBuf&) = delete;

  PooledBuf(PooledBuf&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        cls_(std::exchange(o.cls_, kHeap)),
        pool_(std::exchange(o.pool_, nullptr)) {}

  PooledBuf& operator=(PooledBuf&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      cls_ = std::exchange(o.cls_, kHeap);
      pool_ = std::exchange(o.pool_, nullptr);
    }
    return *this;
  }

  ~PooledBuf() { release(); }

  /// Take a block of >= n bytes from `pool` (heap fallback when n exceeds
  /// the largest class). Replaces any current contents.
  void acquire(SlabPool& pool, std::size_t n) {
    release();
    if (n == 0) return;
    const int cls = SlabPool::class_for(n);
    if (cls < 0) {
      data_ = static_cast<std::byte*>(::operator new(n));
    } else {
      data_ = pool.get(cls);
      cls_ = cls;
      pool_ = &pool;
    }
    size_ = n;
  }

  /// Plain-heap sizing, kept std::vector-compatible for envelope builders
  /// that have no pool (unit tests, oracle fuzzers). Contents are not
  /// preserved on growth; shrinking just adjusts size().
  void resize(std::size_t n) {
    if (n <= capacity()) {
      size_ = n;
      return;
    }
    release();
    if (n > 0) data_ = static_cast<std::byte*>(::operator new(n));
    size_ = n;
  }

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

  /// Free or recycle the storage immediately (also run by the destructor).
  void release() {
    if (data_ != nullptr) {
      if (pool_ != nullptr) {
        pool_->put(data_, cls_);
      } else {
        ::operator delete(data_);
      }
    }
    data_ = nullptr;
    size_ = 0;
    cls_ = kHeap;
    pool_ = nullptr;
  }

 private:
  static constexpr int kHeap = -1;

  [[nodiscard]] std::size_t capacity() const {
    if (data_ == nullptr) return 0;
    return pool_ != nullptr ? SlabPool::class_bytes(cls_) : size_;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  int cls_ = kHeap;
  SlabPool* pool_ = nullptr;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_SLAB_POOL_H
