#ifndef TMPI_NET_CONTENTION_LOCK_H
#define TMPI_NET_CONTENTION_LOCK_H

#include <atomic>
#include <mutex>

#include "net/cost_model.h"
#include "net/spin.h"
#include "net/stats.h"
#include "net/virtual_clock.h"

/// \file contention_lock.h
/// A mutex that charges virtual time for acquisition.
///
/// Software serialization — threads funneling through one VCI, or sharing a
/// partitioned operation's request (Lesson 14) — costs real applications
/// dearly. This lock makes that cost visible in virtual time: an uncontended
/// acquisition charges `lock_uncontended_ns`; each concurrent waiter observed
/// at acquisition adds `lock_contended_ns`.
///
/// Deliberately NOT modelled here: cross-holder virtual-time serialization.
/// Events execute in host order, not virtual-time order, so propagating one
/// holder's clock to the next would let an event "from the virtual future"
/// (e.g. a barrier message from a rank that finished early) stall an earlier
/// local operation that a faithful execution would have processed first.
/// Channel *throughput* serialization lives in HwContext's busy horizon,
/// where the sharing actors' clocks stay coupled and the horizon is exact.

namespace tmpi::net {

class ContentionLock {
 public:
  ContentionLock() = default;
  ContentionLock(const ContentionLock&) = delete;
  ContentionLock& operator=(const ContentionLock&) = delete;

  /// Acquire, charging the calling thread's clock. Pair with unlock().
  ///
  /// The clock charge is the deterministic `lock_uncontended_ns`; observed
  /// contention is *counted* (stats) but not clock-charged, because the
  /// number of host-thread collisions is a scheduling artifact, not a
  /// property of the simulated execution.
  void lock(VirtualClock& clk, const CostModel& cm, NetStats* stats,
            ChannelStats* ch = nullptr) {
    const int waiters = queued_.fetch_add(1, std::memory_order_acq_rel);
    // Host fast path (DESIGN.md §10): the paper's sweet spot is one thread
    // per VCI, where the lock is uncontended on every acquisition — take it
    // with try_lock, then spin briefly, and only park on the kernel futex
    // when a real collision persists. Virtual-time charges and statistics
    // are identical on every path, so this cannot perturb the simulation.
    if (!mu_.try_lock()) {
      bool acquired = false;
      for (int i = 0; i < kSpinIterations; ++i) {
        cpu_relax();
        if (mu_.try_lock()) {
          acquired = true;
          break;
        }
      }
      if (!acquired) mu_.lock();
    }
    const bool contended = waiters > 0;
    clk.advance(cm.lock_uncontended_ns);
    if (stats != nullptr) stats->add_lock(contended);
    if (ch != nullptr) ch->add_lock(contended);
  }

  void unlock(VirtualClock& /*clk*/) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    mu_.unlock();
  }

  /// RAII guard.
  class Guard {
   public:
    Guard(ContentionLock& l, VirtualClock& clk, const CostModel& cm, NetStats* stats,
          ChannelStats* ch = nullptr)
        : l_(l), clk_(clk) {
      l_.lock(clk_, cm, stats, ch);
    }
    ~Guard() { l_.unlock(clk_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ContentionLock& l_;
    VirtualClock& clk_;
  };

 private:
  /// Spin budget before parking. Critical sections under this lock are short
  /// (matching-engine surgery), so a brief spin usually wins the handoff.
  static constexpr int kSpinIterations = 64;

  std::mutex mu_;
  std::atomic<int> queued_{0};
};

}  // namespace tmpi::net

#endif  // TMPI_NET_CONTENTION_LOCK_H
