#ifndef TMPI_NET_FABRIC_H
#define TMPI_NET_FABRIC_H

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "net/cost_model.h"
#include "net/liveness.h"
#include "net/nic.h"
#include "net/stats.h"
#include "net/virtual_clock.h"

/// \file fabric.h
/// The simulated cluster fabric: one NIC per node plus transfer-time rules.
///
/// NICs are built lazily on first touch (DESIGN.md §11): a datacenter-shaped
/// world has thousands of nodes but a workload typically drives a handful.
/// Publication follows the standard double-checked pattern — the writer,
/// under `nic_mu_`, fully constructs the Nic and release-stores its pointer;
/// readers acquire-load the slot and only fall into the slow path on null —
/// so `nic()` stays lock-free once a node is warm.

namespace tmpi::net {

class Fabric {
 public:
  /// `nranks`/`ranks_per_node`/`vcis_per_rank` describe the world's initial
  /// per-rank VCI pools; each node's NIC pre-reserves that many context
  /// sequence numbers at materialization so lazily built VCIs get the same
  /// context assignment (and sharing penalties) the eager scheme produced.
  /// Leave them defaulted for a bare fabric (direct construction in tests).
  Fabric(int num_nodes, CostModel cm, int nranks = 0, int ranks_per_node = 1,
         int vcis_per_rank = 0)
      : num_nodes_(num_nodes),
        cm_(std::move(cm)),
        nranks_(nranks),
        ranks_per_node_(ranks_per_node < 1 ? 1 : ranks_per_node),
        vcis_per_rank_(vcis_per_rank),
        nics_(std::make_unique<std::atomic<Nic*>[]>(
            static_cast<std::size_t>(num_nodes_ < 0 ? 0 : num_nodes_))) {
    for (int n = 0; n < num_nodes_; ++n) {
      nics_[static_cast<std::size_t>(n)].store(nullptr, std::memory_order_relaxed);
    }
  }

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  ~Fabric() {
    for (int n = 0; n < num_nodes_; ++n) {
      delete nics_[static_cast<std::size_t>(n)].load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  [[nodiscard]] Nic& nic(int node) {
    if (node < 0 || node >= num_nodes_) throw std::out_of_range("Fabric::nic");
    Nic* n = nics_[static_cast<std::size_t>(node)].load(std::memory_order_acquire);
    return n != nullptr ? *n : materialize_nic(node);
  }
  [[nodiscard]] const Nic& nic(int node) const {
    // Materializing on a const path is fine: lazy construction is a cache,
    // not an observable mutation (all derived counters are reservation-based).
    return const_cast<Fabric*>(this)->nic(node);
  }

  /// Nodes whose NIC has been built so far (lazy-materialization telemetry).
  [[nodiscard]] int nics_materialized() const {
    int count = 0;
    for (int n = 0; n < num_nodes_; ++n) {
      if (nics_[static_cast<std::size_t>(n)].load(std::memory_order_acquire) != nullptr) ++count;
    }
    return count;
  }

  [[nodiscard]] const CostModel& cost() const { return cm_; }
  [[nodiscard]] NetStats& stats() { return stats_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }

  /// Rank liveness registry (DESIGN.md §13): which ranks the fabric has
  /// declared dead, and when.
  [[nodiscard]] Liveness& liveness() { return liveness_; }
  [[nodiscard]] const Liveness& liveness() const { return liveness_; }

  /// Virtual transfer time of a payload from `src_node` to `dst_node`
  /// (shared-memory path within a node, wire otherwise).
  [[nodiscard]] Time transfer_time(int src_node, int dst_node, std::size_t bytes) const {
    return src_node == dst_node ? cm_.shm_time(bytes) : cm_.wire_time(bytes);
  }

  /// Smallest virtual latency any channel can add to a message: the lower
  /// bound of every transfer_time(). This is the conservative lookahead of
  /// the parallel execution mode (DESIGN.md §12) — a delivery's arrival is
  /// always at least this far past its sender's inject completion, so an
  /// event queued behind a safe point can never predate work already drained.
  [[nodiscard]] Time min_channel_latency_ns() const {
    return cm_.shm_latency_ns < cm_.wire_latency_ns ? cm_.shm_latency_ns
                                                    : cm_.wire_latency_ns;
  }

 private:
  Nic& materialize_nic(int node) {
    std::scoped_lock lk(nic_mu_);
    auto& slot = nics_[static_cast<std::size_t>(node)];
    Nic* n = slot.load(std::memory_order_relaxed);
    if (n == nullptr) {
      // Ranks living on this node times the initial pool size = how many
      // context sequence numbers the eager scheme would have consumed here
      // before any growth (endpoints, comm hints) happened.
      int ranks_on_node = nranks_ - node * ranks_per_node_;
      if (ranks_on_node > ranks_per_node_) ranks_on_node = ranks_per_node_;
      if (ranks_on_node < 0) ranks_on_node = 0;
      n = new Nic(node, &cm_, &stats_, ranks_on_node * vcis_per_rank_);
      slot.store(n, std::memory_order_release);  // publish fully constructed
    }
    return *n;
  }

  int num_nodes_;
  CostModel cm_;
  NetStats stats_;
  Liveness liveness_;
  int nranks_;
  int ranks_per_node_;
  int vcis_per_rank_;
  mutable std::mutex nic_mu_;
  std::unique_ptr<std::atomic<Nic*>[]> nics_;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_FABRIC_H
