#ifndef TMPI_NET_FABRIC_H
#define TMPI_NET_FABRIC_H

#include <memory>
#include <vector>

#include "net/cost_model.h"
#include "net/nic.h"
#include "net/stats.h"
#include "net/virtual_clock.h"

/// \file fabric.h
/// The simulated cluster fabric: one NIC per node plus transfer-time rules.

namespace tmpi::net {

class Fabric {
 public:
  Fabric(int num_nodes, CostModel cm) : cm_(std::move(cm)) {
    nics_.reserve(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n) {
      nics_.push_back(std::make_unique<Nic>(n, &cm_, &stats_));
    }
  }

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] int num_nodes() const { return static_cast<int>(nics_.size()); }
  [[nodiscard]] Nic& nic(int node) { return *nics_.at(static_cast<std::size_t>(node)); }
  [[nodiscard]] const Nic& nic(int node) const {
    return *nics_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] const CostModel& cost() const { return cm_; }
  [[nodiscard]] NetStats& stats() { return stats_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }

  /// Virtual transfer time of a payload from `src_node` to `dst_node`
  /// (shared-memory path within a node, wire otherwise).
  [[nodiscard]] Time transfer_time(int src_node, int dst_node, std::size_t bytes) const {
    return src_node == dst_node ? cm_.shm_time(bytes) : cm_.wire_time(bytes);
  }

 private:
  CostModel cm_;
  NetStats stats_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_FABRIC_H
