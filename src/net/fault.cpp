#include "net/fault.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace tmpi::net {

namespace {

/// splitmix64 finalizer: the stateless hash behind the probabilistic rates.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, rank, vci, op, attempt). Counter-based
/// (no stream state), so a channel's fault sequence depends only on the order
/// of its own operations — the determinism contract of DESIGN.md §7.
double u01(std::uint64_t seed, int rank, int vci, std::uint64_t op, int attempt) {
  std::uint64_t h = mix64(seed ^ 0xC0FFEEull);
  h = mix64(h ^ static_cast<std::uint64_t>(rank));
  h = mix64(h ^ (static_cast<std::uint64_t>(vci) << 20));
  h = mix64(h ^ op);
  h = mix64(h ^ (static_cast<std::uint64_t>(attempt) << 40));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultAction action_from(const std::string& name, const std::string& tok) {
  if (name == "drop") return FaultAction::kDrop;
  if (name == "corrupt") return FaultAction::kCorrupt;
  if (name == "delay") return FaultAction::kDelay;
  throw std::invalid_argument("FaultPlan: bad event token '" + tok + "': unknown action '" +
                              name + "' (want drop|corrupt|delay|down|rank_down)");
}

/// Strict unsigned-decimal field parse; every malformed field names the whole
/// offending token so the error is actionable from an env var or Info dump.
std::uint64_t parse_field(const std::string& tok, const std::string& field, const char* what) {
  if (field.empty()) {
    throw std::invalid_argument("FaultPlan: bad event token '" + tok + "': empty " + what +
                                " field");
  }
  for (const char c : field) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("FaultPlan: bad event token '" + tok + "': non-numeric " +
                                  what + " field '" + field + "'");
    }
  }
  try {
    return std::stoull(field);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad event token '" + tok + "': " + what +
                                " field '" + field + "' out of range");
  }
}

}  // namespace

void FaultPlan::parse_plan(const std::string& grammar) {
  std::size_t pos = 0;
  while (pos < grammar.size()) {
    std::size_t end = grammar.find(';', pos);
    if (end == std::string::npos) end = grammar.size();
    const std::string tok = grammar.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;

    const std::size_t at = tok.find('@');
    if (at == std::string::npos || at == 0) {
      throw std::invalid_argument("FaultPlan: bad event token '" + tok +
                                  "' (want action@rank:vci:op or rank_down@rank[:op])");
    }
    Event e;
    const std::string action = tok.substr(0, at);
    const std::string rest = tok.substr(at + 1);
    if (action == "rank_down") {
      // rank_down@rank[:op] — rank-wide, no per-channel vci field.
      e.rank_down = true;
      e.vci = -1;
      const std::size_t c1 = rest.find(':');
      if (c1 != std::string::npos && rest.find(':', c1 + 1) != std::string::npos) {
        throw std::invalid_argument("FaultPlan: bad event token '" + tok +
                                    "' (want rank_down@rank[:op])");
      }
      e.rank = static_cast<int>(parse_field(tok, rest.substr(0, c1), "rank"));
      e.op = c1 == std::string::npos ? 0 : parse_field(tok, rest.substr(c1 + 1), "op");
    } else {
      const std::size_t c1 = rest.find(':');
      const std::size_t c2 = c1 == std::string::npos ? std::string::npos : rest.find(':', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos ||
          rest.find(':', c2 + 1) != std::string::npos) {
        throw std::invalid_argument("FaultPlan: bad event token '" + tok +
                                    "' (want action@rank:vci:op)");
      }
      if (action == "down") {
        e.ctx_down = true;
      } else {
        e.action = action_from(action, tok);
      }
      e.rank = static_cast<int>(parse_field(tok, rest.substr(0, c1), "rank"));
      e.vci = static_cast<int>(parse_field(tok, rest.substr(c1 + 1, c2 - c1 - 1), "vci"));
      e.op = parse_field(tok, rest.substr(c2 + 1), "op");
    }
    events.push_back(e);
  }
}

bool FaultPlan::set(const std::string& key, const std::string& value) {
  // Scalar keys get the same never-silently-ignore treatment as the event
  // grammar: a malformed value names itself instead of aborting the process
  // deep inside std::sto*.
  const auto bad = [&](const char* why) -> std::invalid_argument {
    return std::invalid_argument("FaultPlan: bad value '" + value + "' for key '" + key + "': " +
                                 why);
  };
  const auto as_u64 = [&]() -> std::uint64_t {
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(value, &used);
      if (used != value.size()) throw bad("trailing garbage");
      return v;
    } catch (const std::invalid_argument&) {
      throw bad("not an unsigned integer");
    } catch (const std::out_of_range&) {
      throw bad("out of range");
    }
  };
  const auto as_double = [&]() -> double {
    try {
      std::size_t used = 0;
      const double v = std::stod(value, &used);
      if (used != value.size()) throw bad("trailing garbage");
      return v;
    } catch (const std::invalid_argument&) {
      throw bad("not a number");
    } catch (const std::out_of_range&) {
      throw bad("out of range");
    }
  };
  if (key == "tmpi_fault_seed") {
    seed = as_u64();
  } else if (key == "tmpi_fault_drop_rate") {
    drop_rate = as_double();
  } else if (key == "tmpi_fault_corrupt_rate") {
    corrupt_rate = as_double();
  } else if (key == "tmpi_fault_delay_rate") {
    delay_rate = as_double();
  } else if (key == "tmpi_fault_delay_ns") {
    delay_ns = static_cast<Time>(as_u64());
  } else if (key == "tmpi_fault_max_retries") {
    max_retries = static_cast<int>(as_u64());
  } else if (key == "tmpi_fault_timeout_ns") {
    timeout_ns = static_cast<Time>(as_u64());
  } else if (key == "tmpi_fault_plan") {
    parse_plan(value);
  } else {
    return false;
  }
  return true;
}

FaultPlan FaultPlan::from_env(FaultPlan base) {
  static constexpr const char* kKeys[] = {
      "tmpi_fault_seed",       "tmpi_fault_drop_rate",   "tmpi_fault_corrupt_rate",
      "tmpi_fault_delay_rate", "tmpi_fault_delay_ns",    "tmpi_fault_max_retries",
      "tmpi_fault_timeout_ns", "tmpi_fault_plan",
  };
  for (const char* key : kKeys) {
    std::string env_name(key);
    for (char& c : env_name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (const char* v = std::getenv(env_name.c_str()); v != nullptr) {
      base.set(key, v);
    }
  }
  return base;
}

std::uint64_t FaultInjector::channel_op(int rank, int vci) {
  std::scoped_lock lk(mu_);
  rank_op_counts_[rank]++;
  return op_counts_[{rank, vci}]++;
}

FaultVerdict FaultInjector::verdict(int rank, int vci, std::uint64_t op, int attempt) const {
  FaultVerdict v;
  if (attempt == 0) {
    for (const FaultPlan::Event& e : plan_.events) {
      if (!e.ctx_down && e.rank == rank && e.vci == vci && e.op == op) {
        v.action = e.action;
        if (v.action == FaultAction::kDelay) v.delay_ns = plan_.delay_ns;
        return v;
      }
    }
  }
  const double u = u01(plan_.seed, rank, vci, op, attempt);
  if (u < plan_.drop_rate) {
    v.action = FaultAction::kDrop;
  } else if (u < plan_.drop_rate + plan_.corrupt_rate) {
    v.action = FaultAction::kCorrupt;
  } else if (u < plan_.drop_rate + plan_.corrupt_rate + plan_.delay_rate) {
    v.action = FaultAction::kDelay;
    v.delay_ns = plan_.delay_ns;
  }
  return v;
}

bool FaultInjector::context_down_due(int rank, int vci, std::uint64_t op) {
  bool due = false;
  std::scoped_lock lk(mu_);
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultPlan::Event& e = plan_.events[i];
    if (e.ctx_down && !down_fired_[i] && e.rank == rank && e.vci == vci && op >= e.op) {
      down_fired_[i] = true;
      due = true;
    }
  }
  return due;
}

bool FaultInjector::rank_down_due(int rank) {
  bool due = false;
  std::scoped_lock lk(mu_);
  const auto it = rank_op_counts_.find(rank);
  if (it == rank_op_counts_.end() || it->second == 0) return false;
  const std::uint64_t last_op = it->second - 1;  // index of the op just counted
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultPlan::Event& e = plan_.events[i];
    if (e.rank_down && !down_fired_[i] && e.rank == rank && last_op >= e.op) {
      down_fired_[i] = true;
      due = true;
    }
  }
  return due;
}

}  // namespace tmpi::net
