#include "net/pdes.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace tmpi::net {

namespace {

int resolve_workers(int configured) {
  int n = configured;
  if (const char* e = std::getenv("TMPI_PDES_WORKERS"); e && *e) {
    n = std::atoi(e);
  }
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 2 : static_cast<int>(hw);
    if (n > 8) n = 8;
  }
  if (n < 1) n = 1;
  return n;
}

}  // namespace

PdesScheduler::PdesScheduler(Config cfg) : lookahead_ns_(cfg.lookahead_ns) {
  const int n = resolve_workers(cfg.num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PdesScheduler::~PdesScheduler() { shutdown(); }

void PdesScheduler::enqueue(std::uint64_t key, std::unique_ptr<PdesEvent> ev) {
  Shard& s = shard_of(key);
  {
    std::scoped_lock lk(s.q_mu);
    const std::uint64_t ticket = s.next_ticket++;
    s.q.push_back(Item{std::move(ev), ticket});
  }
  s.in_flight.fetch_add(1, std::memory_order_release);
  pending_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    // Lock/unlock pairs the notify with the sleeper's predicate re-check, so
    // a worker that just observed an empty queue cannot miss this wakeup.
    { std::scoped_lock lk(wake_mu_); }
    wake_cv_.notify_one();
  }
}

std::uint64_t PdesScheduler::run_shard(Shard& s) {
  // proc_mu is the delivery barrier: held across pop+run so shard order is
  // strictly the enqueue (ticket) order and so a drain that acquires it with
  // an empty queue knows no event is mid-flight.
  std::scoped_lock barrier(s.proc_mu);
  std::uint64_t ran = 0;
  for (;;) {
    Item item;
    {
      std::scoped_lock lk(s.q_mu);
      if (s.q.empty()) break;
      item = s.q.pop_front();
    }
    if (item.ticket != s.processed_ticket) {
      // A shard processed out of order would silently break the bit-exact
      // parity guarantee; fail loudly instead of producing wrong clocks.
      std::fprintf(stderr,
                   "tmpi pdes: delivery barrier violated (ticket %llu, expected %llu)\n",
                   static_cast<unsigned long long>(item.ticket),
                   static_cast<unsigned long long>(s.processed_ticket));
      std::abort();
    }
    item.ev->run();
    item.ev.reset();
    ++s.processed_ticket;
    ++ran;
    s.in_flight.fetch_sub(1, std::memory_order_release);
    pending_.fetch_sub(1, std::memory_order_release);
  }
  if (ran != 0) processed_.fetch_add(ran, std::memory_order_relaxed);
  return ran;
}

void PdesScheduler::drain(std::uint64_t key) {
  Shard& s = shard_of(key);
  // Fast path: nothing queued and nothing mid-run. in_flight is decremented
  // only after an event's side effects complete under proc_mu, so a zero read
  // here means the shard is quiet; any effects we later depend on are behind
  // the locks the delivery itself took.
  if (s.in_flight.load(std::memory_order_acquire) == 0) return;
  // Help: run the shard ourselves. If a worker currently owns proc_mu we
  // block until it finishes, then mop up whatever is left — on return the
  // shard is empty with no event in flight.
  while (s.in_flight.load(std::memory_order_acquire) != 0) {
    run_shard(s);
  }
}

void PdesScheduler::quiesce() {
  // Events never enqueue further events (a delivery is a leaf: it deposits
  // into a matching engine and completes requests), so one pass per
  // iteration converges as soon as concurrent producers stop.
  while (pending_.load(std::memory_order_acquire) != 0) {
    for (Shard& s : shards_) {
      if (s.in_flight.load(std::memory_order_acquire) != 0) run_shard(s);
    }
  }
}

void PdesScheduler::shutdown() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    { std::scoped_lock lk(wake_mu_); }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
  quiesce();
}

void PdesScheduler::worker_loop() {
  std::size_t cursor = 0;
  int idle_scans = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::uint64_t ran = 0;
    if (pending_.load(std::memory_order_acquire) != 0) {
      // Rotating scan so workers start on different shards over time and
      // spread across independent channels instead of convoying on one.
      for (std::size_t i = 0; i < kShards; ++i) {
        Shard& s = shards_[(cursor + i) & (kShards - 1)];
        if (s.in_flight.load(std::memory_order_acquire) == 0) continue;
        if (!s.proc_mu.try_lock()) continue;  // another thread owns the shard
        s.proc_mu.unlock();
        ran += run_shard(s);
      }
      ++cursor;
    }
    if (ran != 0) {
      idle_scans = 0;
      continue;
    }
    if (++idle_scans < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park until an enqueue or shutdown. The timed wait backstops the
    // (already lock-paired) wakeup so a missed edge costs at most 1 ms.
    sleepers_.fetch_add(1, std::memory_order_release);
    {
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
        return stop_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) != 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_release);
    idle_scans = 0;
  }
}

}  // namespace tmpi::net
