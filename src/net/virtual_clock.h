#ifndef TMPI_NET_VIRTUAL_CLOCK_H
#define TMPI_NET_VIRTUAL_CLOCK_H

#include <cstdint>

/// \file virtual_clock.h
/// Per-thread virtual time.
///
/// Every worker thread in the runtime owns a VirtualClock measuring
/// nanoseconds of *simulated* time. Operations on shared resources (network
/// hardware contexts, matching engines, locks) advance the clock by the cost
/// model's charges; waiting on a request advances the clock to the request's
/// virtual completion time. Benchmarks report virtual time, which makes the
/// reproduced performance shapes independent of how many physical cores the
/// host machine has.
///
/// Not every clock is thread-bound: the transport's remote-side pipeline
/// runs on a throwaway *arrival clock* — a VirtualClock constructed at the
/// message's wire-arrival time — so receive-side charges never consume the
/// sender's virtual time. Arrival clocks are what make the parallel
/// execution mode possible (DESIGN.md §12): a scheduler worker thread has no
/// bound ThreadClock at all, and a deferred delivery replays bit-identically
/// because every timestamp it produces flows from the arrival value captured
/// at enqueue, never from the thread executing it.

namespace tmpi::net {

/// Virtual nanoseconds.
using Time = std::uint64_t;

/// A monotonically advancing virtual clock owned by exactly one thread.
///
/// Not thread-safe by design: a clock belongs to the thread it is bound to.
/// Cross-thread synchronization happens through resource timestamps
/// (HwContext::busy_until, request completion times), never by touching
/// another thread's clock.
class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(Time start) : now_(start) {}

  [[nodiscard]] Time now() const { return now_; }

  /// Advance by a duration.
  void advance(Time dt) { now_ += dt; }

  /// Advance to an absolute time; no-op if `t` is in the past.
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }

 private:
  Time now_ = 0;
};

/// Access to the calling thread's bound clock.
///
/// The runtime binds a clock when it launches a rank's main function or a
/// worker thread team; library internals charge costs through `get()`.
class ThreadClock {
 public:
  /// Bind `clock` to the calling thread (nullptr unbinds). The previous
  /// binding is returned so nested scopes can restore it.
  static VirtualClock* bind(VirtualClock* clock);

  /// The calling thread's clock. Terminates the process if unbound —
  /// an unbound thread inside the runtime is a programming error.
  static VirtualClock& get();

  /// True if the calling thread has a bound clock.
  static bool bound();

  ThreadClock() = delete;
};

/// RAII binder for a scope (used by the runtime's thread launchers).
class ScopedClockBind {
 public:
  explicit ScopedClockBind(VirtualClock* clock) : prev_(ThreadClock::bind(clock)) {}
  ~ScopedClockBind() { ThreadClock::bind(prev_); }

  ScopedClockBind(const ScopedClockBind&) = delete;
  ScopedClockBind& operator=(const ScopedClockBind&) = delete;

 private:
  VirtualClock* prev_;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_VIRTUAL_CLOCK_H
