#ifndef TMPI_NET_STATS_H
#define TMPI_NET_STATS_H

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/virtual_clock.h"

/// \file stats.h
/// Aggregate fabric statistics.
///
/// Counters are relaxed atomics: they are diagnostics, not synchronization.
/// Snapshots may be taken *while* workload threads are still counting (bench
/// sampling, the watchdog, tests), so derived-counter pairs need one rule to
/// stay invariant-consistent:
///
///   Writers bump the SOURCE counter first (relaxed), then the DERIVED
///   counter with memory_order_release; snapshot() loads every DERIVED
///   counter first with memory_order_acquire, then the source counters.
///
/// If the reader observes the k-th derived increment (released), the acquire
/// pairs with that release and the matching source increment — which
/// happened-before it on the writer thread — is visible too. Hence a
/// snapshot can never show `contended_acquisitions > lock_acquisitions`,
/// `shared_ctx_injections > injections`, `atomic_ops > rma_ops`,
/// `retransmits + timeouts > drops + corrupts` (every lost attempt counts a
/// drop/corrupt before its retransmit-or-timeout verdict), `deposits >
/// rx_ops` (every deposit follows a receive occupation), or
/// `unexpected_messages`/`rendezvous_messages` `> messages`. The last three
/// pairs matter under the parallel execution mode (DESIGN.md §12), where
/// deliveries genuinely race with the sampling thread.
/// tests/net/stats_snapshot_test.cpp hammers these invariants concurrently.
///
/// In addition to the global tallies, the fabric keeps a registry of
/// per-channel counter blocks (`ChannelStats`), one per (rank, VCI). The
/// transport layer threads the owning channel's block through every lock
/// acquisition, context occupancy, and matching-engine deposit, so a bench
/// can show exactly how traffic spread (or failed to spread) across VCIs —
/// the quantity the reproduced paper is about.

namespace tmpi::net {

/// Plain-value copy of one channel's counters.
struct ChannelStatsSnapshot {
  int rank = 0;  ///< owning world rank
  int vci = 0;   ///< pool index on that rank
  std::uint64_t injections = 0;            ///< transmit-side context occupations
  std::uint64_t rx_ops = 0;                ///< receive-side context occupations
  std::uint64_t deposits = 0;              ///< messages deposited into the matching engine
  std::uint64_t lock_acquisitions = 0;     ///< VCI lock acquisitions
  std::uint64_t contended_acquisitions = 0;
  Time busy_ns = 0;  ///< virtual busy time this channel added to its context
  // Fault layer (DESIGN.md §7); all zero unless a FaultPlan is active.
  std::uint64_t drops = 0;        ///< injected clean losses
  std::uint64_t corrupts = 0;     ///< checksum-detected corruptions (discarded)
  std::uint64_t delays = 0;       ///< injected extra-latency events
  std::uint64_t retransmits = 0;  ///< retransmissions after a loss
  std::uint64_t timeouts = 0;     ///< operations that exhausted their retries
  std::uint64_t failovers = 0;    ///< streams failed over *away from* this channel
  // Overload layer (DESIGN.md §8); all zero unless flow control is configured.
  std::uint64_t credit_stalls = 0;   ///< eager sends denied a credit (degraded to rendezvous)
  std::uint64_t overflows = 0;       ///< deposits rejected at the unexpected-queue hard cap
  std::uint64_t watchdog_trips = 0;  ///< blocked ops on this channel failed by the watchdog
  std::uint64_t unexpected_hwm = 0;  ///< unexpected-queue depth high-water mark
  // Rank-failure layer (DESIGN.md §13); all zero unless a rank died.
  std::uint64_t proc_failures = 0;   ///< ops on this channel failed with kProcFailed
  // Matching fast path (DESIGN.md §10); all zero in list mode.
  std::uint64_t bucket_hits = 0;          ///< exact-key bucket lookups that matched
  std::uint64_t bucket_misses = 0;        ///< exact-key bucket lookups that found nothing
  std::uint64_t wildcard_fallbacks = 0;   ///< ops served by the ordered-list scan
};

/// Per-(rank, VCI) counter block. Registered once at VCI creation and shared
/// by every thread that routes through the channel; all counters relaxed.
class ChannelStats {
 public:
  ChannelStats(int rank, int vci) : rank_(rank), vci_(vci) {}

  void add_injection() { injections_.fetch_add(1, std::memory_order_relaxed); }
  void add_rx() { rx_ops_.fetch_add(1, std::memory_order_relaxed); }
  // Derived from rx_ops: every deposit follows a receive-side context
  // occupation on the same thread, so release here (and acquire-first in
  // snapshot()) keeps deposits <= rx_ops even under genuinely concurrent
  // delivery (parallel execution mode, DESIGN.md §12).
  void add_deposit() { deposits_.fetch_add(1, std::memory_order_release); }
  void add_lock(bool contended) {
    // Source first, derived with release (see the snapshot-ordering rule in
    // the file comment): a snapshot that sees the contended increment must
    // also see the total it belongs to.
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (contended) contended_acquisitions_.fetch_add(1, std::memory_order_release);
  }
  void add_busy(Time ns) { busy_ns_.fetch_add(ns, std::memory_order_relaxed); }
  void add_drop() { drops_.fetch_add(1, std::memory_order_relaxed); }
  void add_corrupt() { corrupts_.fetch_add(1, std::memory_order_relaxed); }
  void add_delay() { delays_.fetch_add(1, std::memory_order_relaxed); }
  // Derived from drops/corrupts: every lost attempt counts one of those
  // before its retransmit-or-timeout verdict.
  void add_retransmit() { retransmits_.fetch_add(1, std::memory_order_release); }
  void add_timeout() { timeouts_.fetch_add(1, std::memory_order_release); }
  void add_failover() { failovers_.fetch_add(1, std::memory_order_relaxed); }
  void add_credit_stall() { credit_stalls_.fetch_add(1, std::memory_order_relaxed); }
  void add_overflow() { overflows_.fetch_add(1, std::memory_order_relaxed); }
  void add_watchdog_trip() { watchdog_trips_.fetch_add(1, std::memory_order_relaxed); }
  void add_proc_failure() { proc_failures_.fetch_add(1, std::memory_order_relaxed); }
  void add_bucket_hit() { bucket_hits_.fetch_add(1, std::memory_order_relaxed); }
  void add_bucket_miss() { bucket_misses_.fetch_add(1, std::memory_order_relaxed); }
  void add_wildcard_fallback() {
    wildcard_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_unexpected_depth(std::uint64_t depth) {
    std::uint64_t cur = unexpected_hwm_.load(std::memory_order_relaxed);
    while (depth > cur &&
           !unexpected_hwm_.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] ChannelStatsSnapshot snapshot() const {
    ChannelStatsSnapshot s;
    s.rank = rank_;
    s.vci = vci_;
    // Derived counters first, acquire; sources after (file comment). The
    // load order is what keeps contended <= total and retransmits+timeouts
    // <= drops+corrupts under concurrent counting.
    s.contended_acquisitions = contended_acquisitions_.load(std::memory_order_acquire);
    s.retransmits = retransmits_.load(std::memory_order_acquire);
    s.timeouts = timeouts_.load(std::memory_order_acquire);
    s.deposits = deposits_.load(std::memory_order_acquire);
    s.injections = injections_.load(std::memory_order_relaxed);
    s.rx_ops = rx_ops_.load(std::memory_order_relaxed);
    s.lock_acquisitions = lock_acquisitions_.load(std::memory_order_relaxed);
    s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
    s.drops = drops_.load(std::memory_order_relaxed);
    s.corrupts = corrupts_.load(std::memory_order_relaxed);
    s.delays = delays_.load(std::memory_order_relaxed);
    s.failovers = failovers_.load(std::memory_order_relaxed);
    s.credit_stalls = credit_stalls_.load(std::memory_order_relaxed);
    s.overflows = overflows_.load(std::memory_order_relaxed);
    s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
    s.unexpected_hwm = unexpected_hwm_.load(std::memory_order_relaxed);
    s.proc_failures = proc_failures_.load(std::memory_order_relaxed);
    s.bucket_hits = bucket_hits_.load(std::memory_order_relaxed);
    s.bucket_misses = bucket_misses_.load(std::memory_order_relaxed);
    s.wildcard_fallbacks = wildcard_fallbacks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  int rank_;
  int vci_;
  std::atomic<std::uint64_t> injections_{0};
  std::atomic<std::uint64_t> rx_ops_{0};
  std::atomic<std::uint64_t> deposits_{0};
  std::atomic<std::uint64_t> lock_acquisitions_{0};
  std::atomic<std::uint64_t> contended_acquisitions_{0};
  std::atomic<Time> busy_ns_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> corrupts_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> credit_stalls_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> watchdog_trips_{0};
  std::atomic<std::uint64_t> unexpected_hwm_{0};
  std::atomic<std::uint64_t> proc_failures_{0};
  std::atomic<std::uint64_t> bucket_hits_{0};
  std::atomic<std::uint64_t> bucket_misses_{0};
  std::atomic<std::uint64_t> wildcard_fallbacks_{0};
};

/// Message-size histogram bucket count: bucket i holds messages with
/// bit_width(bytes) == i (bucket 0: zero-byte messages), up to >= 2^30.
inline constexpr int kMsgSizeBuckets = 32;

/// Per-operation-family latency percentiles (virtual ns, post -> complete).
/// Filled from the trace recorder when tracing is enabled (DESIGN.md §9);
/// empty otherwise. Carried on the snapshot so bench binaries get
/// percentiles through the same World::snapshot() call they already make.
struct OpLatency {
  std::string op;             ///< family label ("Send", "Recv", "Rma", ...)
  std::uint64_t count = 0;    ///< completed spans measured
  std::uint64_t errors = 0;   ///< spans that ended in kError
  Time p50 = 0;
  Time p90 = 0;
  Time p99 = 0;
};

/// Plain-value snapshot of NetStats (safe to copy around and diff).
struct NetStatsSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t injections = 0;
  std::uint64_t shared_ctx_injections = 0;  ///< injections through a context shared by >1 VCI
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;
  std::uint64_t part_lock_acquisitions = 0;  ///< partitioned shared-request locks (Lesson 14)
  std::uint64_t match_probes = 0;
  std::uint64_t unexpected_messages = 0;
  std::uint64_t rendezvous_messages = 0;
  std::uint64_t rma_ops = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t channel_ops = 0;  ///< ops issued through rp::Channel backends
  // Fault layer aggregates (DESIGN.md §7).
  std::uint64_t drops = 0;
  std::uint64_t corrupts = 0;
  std::uint64_t delays = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failovers = 0;
  // Overload layer aggregates (DESIGN.md §8).
  std::uint64_t credit_stalls = 0;   ///< eager sends degraded to rendezvous for want of credit
  std::uint64_t overflows = 0;       ///< deposits rejected at the unexpected-queue hard cap
  std::uint64_t watchdog_trips = 0;  ///< blocked ops failed by the progress watchdog
  std::uint64_t deadlocks = 0;       ///< wait-for-graph cycles the watchdog diagnosed
  std::uint64_t unexpected_hwm = 0;  ///< max unexpected-queue depth seen on any channel
  // Rank-failure layer aggregates (DESIGN.md §13).
  std::uint64_t proc_failures = 0;  ///< operations failed with kProcFailed
  std::uint64_t revokes = 0;        ///< communicator revocations (explicit or auto)
  std::uint64_t shrinks = 0;        ///< survivor communicators built by Comm::shrink()
  // Adaptive mapping layer aggregates (DESIGN.md §15).
  std::uint64_t rebalances = 0;        ///< rebalance epochs that migrated >= 1 comm
  std::uint64_t migrated_entries = 0;  ///< matching-engine entries moved across VCIs
  // Matching fast path aggregates (DESIGN.md §10).
  std::uint64_t bucket_hits = 0;         ///< exact-key bucket lookups that matched
  std::uint64_t bucket_misses = 0;       ///< exact-key bucket lookups that found nothing
  std::uint64_t wildcard_fallbacks = 0;  ///< matching ops served by the ordered-list scan
  Time ctx_busy_ns = 0;  ///< total virtual busy time accumulated across contexts
  std::array<std::uint64_t, kMsgSizeBuckets> size_hist{};  ///< log2 message sizes
  std::vector<ChannelStatsSnapshot> channels;  ///< per-(rank, VCI), sorted by (rank, vci)
  std::vector<OpLatency> op_latency;  ///< per-op percentiles; tracing only (§9)

  NetStatsSnapshot operator-(const NetStatsSnapshot& o) const {
    NetStatsSnapshot d;
    d.messages = messages - o.messages;
    d.bytes = bytes - o.bytes;
    d.injections = injections - o.injections;
    d.shared_ctx_injections = shared_ctx_injections - o.shared_ctx_injections;
    d.lock_acquisitions = lock_acquisitions - o.lock_acquisitions;
    d.contended_acquisitions = contended_acquisitions - o.contended_acquisitions;
    d.part_lock_acquisitions = part_lock_acquisitions - o.part_lock_acquisitions;
    d.match_probes = match_probes - o.match_probes;
    d.unexpected_messages = unexpected_messages - o.unexpected_messages;
    d.rendezvous_messages = rendezvous_messages - o.rendezvous_messages;
    d.rma_ops = rma_ops - o.rma_ops;
    d.atomic_ops = atomic_ops - o.atomic_ops;
    d.channel_ops = channel_ops - o.channel_ops;
    d.drops = drops - o.drops;
    d.corrupts = corrupts - o.corrupts;
    d.delays = delays - o.delays;
    d.retransmits = retransmits - o.retransmits;
    d.timeouts = timeouts - o.timeouts;
    d.failovers = failovers - o.failovers;
    d.credit_stalls = credit_stalls - o.credit_stalls;
    d.overflows = overflows - o.overflows;
    d.watchdog_trips = watchdog_trips - o.watchdog_trips;
    d.deadlocks = deadlocks - o.deadlocks;
    d.unexpected_hwm = unexpected_hwm;  // high-water mark passes through, not a delta
    d.proc_failures = proc_failures - o.proc_failures;
    d.revokes = revokes - o.revokes;
    d.shrinks = shrinks - o.shrinks;
    d.rebalances = rebalances - o.rebalances;
    d.migrated_entries = migrated_entries - o.migrated_entries;
    d.bucket_hits = bucket_hits - o.bucket_hits;
    d.bucket_misses = bucket_misses - o.bucket_misses;
    d.wildcard_fallbacks = wildcard_fallbacks - o.wildcard_fallbacks;
    d.ctx_busy_ns = ctx_busy_ns - o.ctx_busy_ns;
    for (int i = 0; i < kMsgSizeBuckets; ++i) {
      d.size_hist[static_cast<std::size_t>(i)] = size_hist[static_cast<std::size_t>(i)] -
                                                 o.size_hist[static_cast<std::size_t>(i)];
    }
    // Channels present only on the newer side pass through unchanged.
    std::map<std::pair<int, int>, const ChannelStatsSnapshot*> old;
    for (const auto& c : o.channels) old[{c.rank, c.vci}] = &c;
    for (const auto& c : channels) {
      ChannelStatsSnapshot dc = c;
      auto it = old.find({c.rank, c.vci});
      if (it != old.end()) {
        const ChannelStatsSnapshot& b = *it->second;
        dc.injections -= b.injections;
        dc.rx_ops -= b.rx_ops;
        dc.deposits -= b.deposits;
        dc.lock_acquisitions -= b.lock_acquisitions;
        dc.contended_acquisitions -= b.contended_acquisitions;
        dc.busy_ns -= b.busy_ns;
        dc.drops -= b.drops;
        dc.corrupts -= b.corrupts;
        dc.delays -= b.delays;
        dc.retransmits -= b.retransmits;
        dc.timeouts -= b.timeouts;
        dc.failovers -= b.failovers;
        dc.credit_stalls -= b.credit_stalls;
        dc.overflows -= b.overflows;
        dc.watchdog_trips -= b.watchdog_trips;
        dc.proc_failures -= b.proc_failures;
        dc.bucket_hits -= b.bucket_hits;
        dc.bucket_misses -= b.bucket_misses;
        dc.wildcard_fallbacks -= b.wildcard_fallbacks;
        // unexpected_hwm passes through: a max, not a monotone delta.
      }
      d.channels.push_back(dc);
    }
    // Percentiles are distribution summaries, not monotone counters: the
    // newer side's rows pass through unchanged.
    d.op_latency = op_latency;
    return d;
  }
};

/// Thread-safe counter block shared by all fabric components.
class NetStats {
 public:
  void add_message(std::uint64_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const int b = bytes == 0 ? 0 : std::bit_width(bytes);
    size_hist_[static_cast<std::size_t>(b < kMsgSizeBuckets ? b : kMsgSizeBuckets - 1)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  // Derived counters (shared_ctx_injections, contended_acquisitions,
  // atomic_ops, retransmits, timeouts) are bumped with release after their
  // source counter; snapshot() loads them first with acquire (file comment).
  void add_injection(bool shared_ctx, Time busy) {
    injections_.fetch_add(1, std::memory_order_relaxed);
    if (shared_ctx) shared_ctx_injections_.fetch_add(1, std::memory_order_release);
    ctx_busy_ns_.fetch_add(busy, std::memory_order_relaxed);
  }
  void add_lock(bool contended) {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (contended) contended_acquisitions_.fetch_add(1, std::memory_order_release);
  }
  void add_part_lock() { part_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed); }
  void add_match_probes(std::uint64_t n) {
    match_probes_.fetch_add(n, std::memory_order_relaxed);
  }
  // Both derived from messages: the send was tallied (add_message) before
  // the deposit that classifies it as unexpected — on the same thread in
  // serial mode, across the scheduler's queue hand-off in parallel mode —
  // and add_rendezvous is bumped right after add_message in tally_op. Release
  // here, acquire-first in snapshot(), keeps unexpected <= messages and
  // rendezvous <= messages under genuinely concurrent delivery (§12).
  void add_unexpected() { unexpected_messages_.fetch_add(1, std::memory_order_release); }
  void add_rendezvous() { rendezvous_messages_.fetch_add(1, std::memory_order_release); }
  void add_rma(bool atomic) {
    rma_ops_.fetch_add(1, std::memory_order_relaxed);
    if (atomic) atomic_ops_.fetch_add(1, std::memory_order_release);
  }
  void add_channel_op() { channel_ops_.fetch_add(1, std::memory_order_relaxed); }
  void add_drop() { drops_.fetch_add(1, std::memory_order_relaxed); }
  void add_corrupt() { corrupts_.fetch_add(1, std::memory_order_relaxed); }
  void add_delay() { delays_.fetch_add(1, std::memory_order_relaxed); }
  void add_retransmit() { retransmits_.fetch_add(1, std::memory_order_release); }
  void add_timeout() { timeouts_.fetch_add(1, std::memory_order_release); }
  void add_failover() { failovers_.fetch_add(1, std::memory_order_relaxed); }
  void add_credit_stall() { credit_stalls_.fetch_add(1, std::memory_order_relaxed); }
  void add_overflow() { overflows_.fetch_add(1, std::memory_order_relaxed); }
  void add_watchdog_trip() { watchdog_trips_.fetch_add(1, std::memory_order_relaxed); }
  void add_deadlock() { deadlocks_.fetch_add(1, std::memory_order_relaxed); }
  void add_proc_failure() { proc_failures_.fetch_add(1, std::memory_order_relaxed); }
  void add_revoke() { revokes_.fetch_add(1, std::memory_order_relaxed); }
  void add_shrink() { shrinks_.fetch_add(1, std::memory_order_relaxed); }
  void add_rebalance() { rebalances_.fetch_add(1, std::memory_order_relaxed); }
  void add_migrated(std::uint64_t n) {
    migrated_entries_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_bucket_hit() { bucket_hits_.fetch_add(1, std::memory_order_relaxed); }
  void add_bucket_miss() { bucket_misses_.fetch_add(1, std::memory_order_relaxed); }
  void add_wildcard_fallback() {
    wildcard_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_unexpected_depth(std::uint64_t depth) {
    std::uint64_t cur = unexpected_hwm_.load(std::memory_order_relaxed);
    while (depth > cur &&
           !unexpected_hwm_.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
    }
  }

  /// Per-channel counter block for (rank, vci); created on first use. The
  /// returned reference stays valid for the NetStats lifetime. Called once
  /// per VCI at body materialization (cold path) — per-message accounting
  /// then goes straight to the block, lock-free. The registry is sharded by a
  /// (rank, vci) hash so lazy channel creation across many ranks never
  /// serializes on one global mutex (DESIGN.md §11).
  [[nodiscard]] ChannelStats& channel(int rank, int vci) {
    const std::uint64_t key = channel_key(rank, vci);
    Shard& shard = ch_shards_[shard_of(key)];
    std::scoped_lock lk(shard.mu);
    auto& slot = shard.map[key];
    if (!slot) slot = std::make_unique<ChannelStats>(rank, vci);
    return *slot;
  }

  [[nodiscard]] NetStatsSnapshot snapshot() const {
    NetStatsSnapshot s;
    // Derived counters first, acquire; sources after (file comment).
    s.shared_ctx_injections = shared_ctx_injections_.load(std::memory_order_acquire);
    s.contended_acquisitions = contended_acquisitions_.load(std::memory_order_acquire);
    s.atomic_ops = atomic_ops_.load(std::memory_order_acquire);
    s.retransmits = retransmits_.load(std::memory_order_acquire);
    s.timeouts = timeouts_.load(std::memory_order_acquire);
    s.unexpected_messages = unexpected_messages_.load(std::memory_order_acquire);
    s.rendezvous_messages = rendezvous_messages_.load(std::memory_order_acquire);
    s.messages = messages_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.injections = injections_.load(std::memory_order_relaxed);
    s.lock_acquisitions = lock_acquisitions_.load(std::memory_order_relaxed);
    s.part_lock_acquisitions = part_lock_acquisitions_.load(std::memory_order_relaxed);
    s.match_probes = match_probes_.load(std::memory_order_relaxed);
    s.rma_ops = rma_ops_.load(std::memory_order_relaxed);
    s.channel_ops = channel_ops_.load(std::memory_order_relaxed);
    s.drops = drops_.load(std::memory_order_relaxed);
    s.corrupts = corrupts_.load(std::memory_order_relaxed);
    s.delays = delays_.load(std::memory_order_relaxed);
    s.failovers = failovers_.load(std::memory_order_relaxed);
    s.credit_stalls = credit_stalls_.load(std::memory_order_relaxed);
    s.overflows = overflows_.load(std::memory_order_relaxed);
    s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
    s.deadlocks = deadlocks_.load(std::memory_order_relaxed);
    s.unexpected_hwm = unexpected_hwm_.load(std::memory_order_relaxed);
    s.proc_failures = proc_failures_.load(std::memory_order_relaxed);
    s.revokes = revokes_.load(std::memory_order_relaxed);
    s.shrinks = shrinks_.load(std::memory_order_relaxed);
    s.bucket_hits = bucket_hits_.load(std::memory_order_relaxed);
    s.bucket_misses = bucket_misses_.load(std::memory_order_relaxed);
    s.wildcard_fallbacks = wildcard_fallbacks_.load(std::memory_order_relaxed);
    s.rebalances = rebalances_.load(std::memory_order_relaxed);
    s.migrated_entries = migrated_entries_.load(std::memory_order_relaxed);
    s.ctx_busy_ns = ctx_busy_ns_.load(std::memory_order_relaxed);
    for (int i = 0; i < kMsgSizeBuckets; ++i) {
      s.size_hist[static_cast<std::size_t>(i)] =
          size_hist_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    // Only materialized channels appear; sorted by (rank, vci) so telemetry
    // output is stable regardless of lazy-materialization order.
    for (const Shard& shard : ch_shards_) {
      std::scoped_lock lk(shard.mu);
      for (const auto& [key, block] : shard.map) s.channels.push_back(block->snapshot());
    }
    std::sort(s.channels.begin(), s.channels.end(),
              [](const ChannelStatsSnapshot& a, const ChannelStatsSnapshot& b) {
                return a.rank != b.rank ? a.rank < b.rank : a.vci < b.vci;
              });
    return s;
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> injections_{0};
  std::atomic<std::uint64_t> shared_ctx_injections_{0};
  std::atomic<std::uint64_t> lock_acquisitions_{0};
  std::atomic<std::uint64_t> contended_acquisitions_{0};
  std::atomic<std::uint64_t> part_lock_acquisitions_{0};
  std::atomic<std::uint64_t> match_probes_{0};
  std::atomic<std::uint64_t> unexpected_messages_{0};
  std::atomic<std::uint64_t> rendezvous_messages_{0};
  std::atomic<std::uint64_t> rma_ops_{0};
  std::atomic<std::uint64_t> atomic_ops_{0};
  std::atomic<std::uint64_t> channel_ops_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> corrupts_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> credit_stalls_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> watchdog_trips_{0};
  std::atomic<std::uint64_t> deadlocks_{0};
  std::atomic<std::uint64_t> unexpected_hwm_{0};
  std::atomic<std::uint64_t> proc_failures_{0};
  std::atomic<std::uint64_t> revokes_{0};
  std::atomic<std::uint64_t> shrinks_{0};
  std::atomic<std::uint64_t> bucket_hits_{0};
  std::atomic<std::uint64_t> bucket_misses_{0};
  std::atomic<std::uint64_t> wildcard_fallbacks_{0};
  std::atomic<std::uint64_t> rebalances_{0};
  std::atomic<std::uint64_t> migrated_entries_{0};
  std::atomic<Time> ctx_busy_ns_{0};
  std::array<std::atomic<std::uint64_t>, kMsgSizeBuckets> size_hist_{};

  // Sharded, striped channel registry: power-of-two shard count, each shard
  // its own mutex + map, selected by a mixed (rank, vci) hash.
  static constexpr std::size_t kChannelShards = 64;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::unique_ptr<ChannelStats>> map;
  };

  [[nodiscard]] static std::uint64_t channel_key(int rank, int vci) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) |
           static_cast<std::uint32_t>(vci);
  }
  [[nodiscard]] static std::size_t shard_of(std::uint64_t key) {
    // splitmix64 finalizer: adjacent (rank, vci) keys spread across shards.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return static_cast<std::size_t>(key) & (kChannelShards - 1);
  }

  std::array<Shard, kChannelShards> ch_shards_;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_STATS_H
