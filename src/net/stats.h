#ifndef TMPI_NET_STATS_H
#define TMPI_NET_STATS_H

#include <atomic>
#include <cstdint>

#include "net/virtual_clock.h"

/// \file stats.h
/// Aggregate fabric statistics.
///
/// Counters are relaxed atomics: they are diagnostics, not synchronization.
/// `snapshot()` gives a consistent-enough copy for reporting after a
/// workload's threads have joined.

namespace tmpi::net {

/// Plain-value snapshot of NetStats (safe to copy around and diff).
struct NetStatsSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t injections = 0;
  std::uint64_t shared_ctx_injections = 0;  ///< injections through a context shared by >1 VCI
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;
  std::uint64_t part_lock_acquisitions = 0;  ///< partitioned shared-request locks (Lesson 14)
  std::uint64_t match_probes = 0;
  std::uint64_t unexpected_messages = 0;
  std::uint64_t rendezvous_messages = 0;
  std::uint64_t rma_ops = 0;
  std::uint64_t atomic_ops = 0;
  Time ctx_busy_ns = 0;  ///< total virtual busy time accumulated across contexts

  NetStatsSnapshot operator-(const NetStatsSnapshot& o) const {
    NetStatsSnapshot d;
    d.messages = messages - o.messages;
    d.bytes = bytes - o.bytes;
    d.injections = injections - o.injections;
    d.shared_ctx_injections = shared_ctx_injections - o.shared_ctx_injections;
    d.lock_acquisitions = lock_acquisitions - o.lock_acquisitions;
    d.contended_acquisitions = contended_acquisitions - o.contended_acquisitions;
    d.part_lock_acquisitions = part_lock_acquisitions - o.part_lock_acquisitions;
    d.match_probes = match_probes - o.match_probes;
    d.unexpected_messages = unexpected_messages - o.unexpected_messages;
    d.rendezvous_messages = rendezvous_messages - o.rendezvous_messages;
    d.rma_ops = rma_ops - o.rma_ops;
    d.atomic_ops = atomic_ops - o.atomic_ops;
    d.ctx_busy_ns = ctx_busy_ns - o.ctx_busy_ns;
    return d;
  }
};

/// Thread-safe counter block shared by all fabric components.
class NetStats {
 public:
  void add_message(std::uint64_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_injection(bool shared_ctx, Time busy) {
    injections_.fetch_add(1, std::memory_order_relaxed);
    if (shared_ctx) shared_ctx_injections_.fetch_add(1, std::memory_order_relaxed);
    ctx_busy_ns_.fetch_add(busy, std::memory_order_relaxed);
  }
  void add_lock(bool contended) {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (contended) contended_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_part_lock() { part_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed); }
  void add_match_probes(std::uint64_t n) {
    match_probes_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_unexpected() { unexpected_messages_.fetch_add(1, std::memory_order_relaxed); }
  void add_rendezvous() { rendezvous_messages_.fetch_add(1, std::memory_order_relaxed); }
  void add_rma(bool atomic) {
    rma_ops_.fetch_add(1, std::memory_order_relaxed);
    if (atomic) atomic_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] NetStatsSnapshot snapshot() const {
    NetStatsSnapshot s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.injections = injections_.load(std::memory_order_relaxed);
    s.shared_ctx_injections = shared_ctx_injections_.load(std::memory_order_relaxed);
    s.lock_acquisitions = lock_acquisitions_.load(std::memory_order_relaxed);
    s.contended_acquisitions = contended_acquisitions_.load(std::memory_order_relaxed);
    s.part_lock_acquisitions = part_lock_acquisitions_.load(std::memory_order_relaxed);
    s.match_probes = match_probes_.load(std::memory_order_relaxed);
    s.unexpected_messages = unexpected_messages_.load(std::memory_order_relaxed);
    s.rendezvous_messages = rendezvous_messages_.load(std::memory_order_relaxed);
    s.rma_ops = rma_ops_.load(std::memory_order_relaxed);
    s.atomic_ops = atomic_ops_.load(std::memory_order_relaxed);
    s.ctx_busy_ns = ctx_busy_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> injections_{0};
  std::atomic<std::uint64_t> shared_ctx_injections_{0};
  std::atomic<std::uint64_t> lock_acquisitions_{0};
  std::atomic<std::uint64_t> contended_acquisitions_{0};
  std::atomic<std::uint64_t> part_lock_acquisitions_{0};
  std::atomic<std::uint64_t> match_probes_{0};
  std::atomic<std::uint64_t> unexpected_messages_{0};
  std::atomic<std::uint64_t> rendezvous_messages_{0};
  std::atomic<std::uint64_t> rma_ops_{0};
  std::atomic<std::uint64_t> atomic_ops_{0};
  std::atomic<Time> ctx_busy_ns_{0};
};

}  // namespace tmpi::net

#endif  // TMPI_NET_STATS_H
