#ifndef TMPI_NET_NIC_H
#define TMPI_NET_NIC_H

#include <memory>
#include <mutex>
#include <unordered_map>

#include "net/cost_model.h"
#include "net/hw_context.h"
#include "net/stats.h"

/// \file nic.h
/// A simulated NIC: a bounded pool of hardware contexts.
///
/// VCIs acquire contexts one at a time. While the pool has room, every VCI
/// gets a dedicated context (full network parallelism). Once the pool is
/// exhausted — e.g. the 160 contexts of an Omni-Path HFI — further VCIs are
/// assigned round-robin onto existing contexts and become *sharers*,
/// reproducing the contention regime of Lesson 3.
///
/// Assignment is split into *reservation* and *materialization* so that huge
/// worlds can exist without building every context up front (DESIGN.md §11):
/// each VCI slot holds a reservation sequence number, handed out in the same
/// order the eager implementation used to call acquire_context(), and the
/// context a sequence number maps to is a pure function of that number —
/// dedicated context `seq` while `seq < max_hw_contexts`, then round-robin
/// `(seq - max) % max`. Sharer counts are likewise derived analytically from
/// the reservation count, so `contexts_in_use()`, `total_sharers()` and the
/// sharing penalty charged by HwContext::occupy are bit-identical to the
/// eager scheme whether or not a given context has been materialized yet.

namespace tmpi::net {

class Nic {
 public:
  /// `initial_reserved` pre-reserves that many sequence numbers (the world's
  /// initial per-rank VCI pools) without materializing any context.
  Nic(int node_id, const CostModel* cm, NetStats* stats, int initial_reserved = 0)
      : node_id_(node_id), cm_(cm), stats_(stats), reserved_(initial_reserved) {}

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] int node_id() const { return node_id_; }
  [[nodiscard]] NetStats* stats() const { return stats_; }

  /// Reserve the next context sequence number (a VCI slot created after the
  /// initial pools calls this at descriptor-creation time, preserving the
  /// eager acquisition order). Does not materialize the context.
  int reserve_seq() {
    std::scoped_lock lk(mu_);
    const int seq = reserved_++;
    // A context that already exists must see its sharer count grow exactly
    // when the eager scheme's acquire_context() would have bumped it.
    auto it = contexts_.find(ctx_id_of(seq));
    if (it != contexts_.end()) it->second->add_sharer();
    return seq;
  }

  /// The hardware context for a reserved sequence number, materialized on
  /// first use with its analytically derived sharer count. The returned
  /// reference stays valid for the lifetime of the Nic.
  HwContext& context_for(int seq) {
    std::scoped_lock lk(mu_);
    const int id = ctx_id_of(seq);
    auto& slot = contexts_[id];
    if (slot == nullptr) {
      slot = std::make_unique<HwContext>(id, stats_);
      for (int s = sharers_of(id, reserved_); s > 0; --s) slot->add_sharer();
    }
    return *slot;
  }

  /// Acquire a hardware context for a new VCI: reservation + materialization
  /// in one step (the eager API, kept for direct construction and tests).
  /// Dedicated while the pool has capacity; shared round-robin afterwards.
  HwContext& acquire_context() { return context_for(reserve_seq()); }

  /// Number of distinct hardware contexts allocated to reservations (whether
  /// or not they have been materialized — the eager scheme built all of them).
  [[nodiscard]] int contexts_in_use() const {
    std::scoped_lock lk(mu_);
    return reserved_ < cm_->max_hw_contexts ? reserved_ : cm_->max_hw_contexts;
  }

  /// Total VCIs mapped onto this NIC (sum of sharers over all reservations).
  [[nodiscard]] int total_sharers() const {
    std::scoped_lock lk(mu_);
    return reserved_;
  }

  /// Contexts actually built so far (lazy-materialization telemetry).
  [[nodiscard]] int contexts_materialized() const {
    std::scoped_lock lk(mu_);
    return static_cast<int>(contexts_.size());
  }

 private:
  /// Deterministic context id for a reservation: dedicated while the pool
  /// lasts, then round-robin over the full pool (matches the eager rr_ walk).
  [[nodiscard]] int ctx_id_of(int seq) const {
    const int max = cm_->max_hw_contexts;
    return seq < max ? seq : (seq - max) % max;
  }

  /// Sharer count of context `id` after `reserved` total reservations: one
  /// dedicated owner if the id has been handed out at all, plus its share of
  /// the round-robin overflow.
  [[nodiscard]] int sharers_of(int id, int reserved) const {
    const int max = cm_->max_hw_contexts;
    const int dedicated = id < (reserved < max ? reserved : max) ? 1 : 0;
    const int overflow = reserved > max ? reserved - max : 0;
    return dedicated + overflow / max + (id < overflow % max ? 1 : 0);
  }

  int node_id_;
  const CostModel* cm_;
  NetStats* stats_;
  mutable std::mutex mu_;
  int reserved_ = 0;  ///< sequence numbers handed out (== eager acquisitions)
  std::unordered_map<int, std::unique_ptr<HwContext>> contexts_;  ///< by context id
};

}  // namespace tmpi::net

#endif  // TMPI_NET_NIC_H
