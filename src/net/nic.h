#ifndef TMPI_NET_NIC_H
#define TMPI_NET_NIC_H

#include <memory>
#include <mutex>
#include <vector>

#include "net/cost_model.h"
#include "net/hw_context.h"
#include "net/stats.h"

/// \file nic.h
/// A simulated NIC: a bounded pool of hardware contexts.
///
/// VCIs acquire contexts one at a time. While the pool has room, every VCI
/// gets a dedicated context (full network parallelism). Once the pool is
/// exhausted — e.g. the 160 contexts of an Omni-Path HFI — further VCIs are
/// assigned round-robin onto existing contexts and become *sharers*,
/// reproducing the contention regime of Lesson 3.

namespace tmpi::net {

class Nic {
 public:
  Nic(int node_id, const CostModel* cm, NetStats* stats)
      : node_id_(node_id), cm_(cm), stats_(stats) {}

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] int node_id() const { return node_id_; }
  [[nodiscard]] NetStats* stats() const { return stats_; }

  /// Acquire a hardware context for a new VCI. Dedicated while the pool has
  /// capacity; shared round-robin afterwards. The returned reference stays
  /// valid for the lifetime of the Nic.
  HwContext& acquire_context() {
    std::scoped_lock lk(mu_);
    if (static_cast<int>(contexts_.size()) < cm_->max_hw_contexts) {
      contexts_.push_back(std::make_unique<HwContext>(next_id_++, stats_));
      contexts_.back()->add_sharer();
      return *contexts_.back();
    }
    HwContext& ctx = *contexts_[static_cast<std::size_t>(rr_) % contexts_.size()];
    rr_ = (rr_ + 1) % static_cast<int>(contexts_.size());
    ctx.add_sharer();
    return ctx;
  }

  /// Number of distinct hardware contexts currently allocated.
  [[nodiscard]] int contexts_in_use() const {
    std::scoped_lock lk(mu_);
    return static_cast<int>(contexts_.size());
  }

  /// Total VCIs mapped onto this NIC (sum of sharers).
  [[nodiscard]] int total_sharers() const {
    std::scoped_lock lk(mu_);
    int n = 0;
    for (const auto& c : contexts_) n += c->sharers();
    return n;
  }

 private:
  int node_id_;
  const CostModel* cm_;
  NetStats* stats_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<HwContext>> contexts_;
  int next_id_ = 0;
  int rr_ = 0;
};

}  // namespace tmpi::net

#endif  // TMPI_NET_NIC_H
