/// E11 — Table I: the design-choice summary, generated from the capability
/// matrix rather than transcribed, plus the usability numbers the lessons
/// quantify.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/capabilities.h"
#include "core/planner.h"
#include "workloads/msgrate.h"

namespace {

const char* cell(bool supported, bool defined) {
  if (!defined) return "TBD";
  return supported ? "yes" : "no";
}

void print_table1() {
  std::printf("\n=== Table I: designs for exposing logically parallel communication ===\n");
  std::printf("%-16s %-14s %-14s %-14s %-14s\n", "operation", "comms", "tags+hints",
              "endpoints", "partitioned");
  const auto c = rp::capabilities(rp::Backend::kComms);
  const auto t = rp::capabilities(rp::Backend::kTags);
  const auto e = rp::capabilities(rp::Backend::kEndpoints);
  const auto p = rp::capabilities(rp::Backend::kPartitioned);
  std::printf("%-16s %-14s %-14s %-14s %-14s\n", "point-to-point", cell(c.pt2p, true),
              cell(t.pt2p, true), cell(e.pt2p, true), cell(p.pt2p, true));
  std::printf("%-16s %-14s %-14s %-14s %-14s\n", "RMA", cell(c.rma, c.rma_defined),
              cell(t.rma, t.rma_defined), cell(e.rma, e.rma_defined),
              cell(p.rma, p.rma_defined));
  std::printf("%-16s %-14s %-14s %-14s %-14s\n", "collective",
              cell(c.collectives, c.collectives_defined),
              cell(t.collectives, t.collectives_defined),
              cell(e.collectives, e.collectives_defined),
              cell(p.collectives, p.collectives_defined));

  std::printf("\n--- qualitative rows (the lessons) ---\n");
  auto row = [&](const char* label, auto get) {
    std::printf("%-28s %-10s %-10s %-10s %-10s\n", label, get(c) ? "yes" : "no",
                get(t) ? "yes" : "no", get(e) ? "yes" : "no", get(p) ? "yes" : "no");
  };
  std::printf("%-28s %-10s %-10s %-10s %-10s\n", "", "comms", "tags", "endpoints", "part");
  row("wildcards usable", [](const rp::Capabilities& x) { return x.wildcards; });
  row("dynamic patterns", [](const rp::Capabilities& x) { return x.dynamic_patterns; });
  row("parallel atomics (L16)", [](const rp::Capabilities& x) { return x.atomics_parallel; });
  row("one-step collectives (L18)",
      [](const rp::Capabilities& x) { return x.one_step_collectives; });
  row("portable mapping (L8/L12)",
      [](const rp::Capabilities& x) { return x.portable_mapping; });
  row("standardized (MPI 4.0)", [](const rp::Capabilities& x) { return x.standardized; });
  row("overloads existing (L4)",
      [](const rp::Capabilities& x) { return x.overloads_existing; });
  row("full independence (L14)",
      [](const rp::Capabilities& x) { return x.full_thread_independence; });
  row("duplicates coll bufs (L19)",
      [](const rp::Capabilities& x) { return x.duplicates_coll_buffers; });
}

void print_usability() {
  std::printf("\n--- usability for hypre's 3D 27-pt stencil, [4,4,4] threads ---\n");
  std::printf("%-16s %-10s %-8s %-12s %-12s %-10s\n", "mechanism", "objects", "hints",
              "impl-hints", "mirroring", "intuitive");
  for (rp::Backend b : rp::all_backends()) {
    const auto u = rp::stencil27_usability(b, 4, 4, 4);
    std::printf("%-16s %-10d %-8d %-12d %-12s %-10s\n", to_string(b), u.setup_objects,
                u.hint_count, u.impl_specific_hints, u.needs_mirroring ? "yes" : "no",
                u.intuitive ? "yes" : "no");
  }
  std::printf("(paper: 808 communicators vs 56 endpoints, 14.4x — Lessons 3 and 12)\n");
}

/// A small representative run through each mechanism, reported via the
/// unified transport's per-VCI snapshot: Table I's qualitative rows, backed
/// by the channel counters the runtime now keeps on every message.
void print_transport_sample() {
  for (auto mode : {wl::MsgRateMode::kThreadsOriginal, wl::MsgRateMode::kThreadsEndpoints}) {
    wl::MsgRateParams p;
    p.mode = mode;
    p.workers = 4;
    p.msgs_per_worker = 256;
    p.window = 16;
    p.msg_bytes = 8;
    const wl::RunResult r = wl::run_msgrate(p);
    bench::print_channel_telemetry((std::string(to_string(mode)) + ", 4 workers").c_str(),
                                   r.net);
    bench::collect_stats(std::string(to_string(mode)) + "/workers=4", r.net);
  }
}

void BM_CapabilityLookup(benchmark::State& state) {
  for (auto _ : state) {
    for (rp::Backend b : rp::all_backends()) {
      benchmark::DoNotOptimize(rp::capabilities(b));
    }
  }
}
BENCHMARK(BM_CapabilityLookup);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  print_table1();
  print_usability();
  print_transport_sample();
  return 0;
}
