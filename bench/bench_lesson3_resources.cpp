/// E5 — Lesson 3: resource requirements of communicators vs endpoints, and
/// the contention they cause on a bounded fabric (Omni-Path's 160 contexts;
/// the paper cites hypre's communication running >2x slower with
/// communicators than with other mechanisms there).

#include "bench_common.h"
#include "core/planner.h"
#include "workloads/stencil.h"

namespace {

bench::FigureTable& count_table() {
  static bench::FigureTable t("Lesson 3: 3D 27-pt stencil resource counts", "threads/process",
                              "objects required");
  return t;
}

bench::FigureTable& contention_table() {
  static bench::FigureTable t(
      "Lesson 3: 3D 27-pt halo exchange on a scarce fabric (8 hw contexts/NIC)",
      "threads/process", "time per iteration (us, virtual)");
  return t;
}

constexpr int kIters = 4;

void BM_BoundedFabric(benchmark::State& state, wl::StencilMech mech) {
  const int t = static_cast<int>(state.range(0));
  wl::StencilParams p;
  p.mech = mech;
  p.px = 2;
  p.py = 2;
  p.pz = 2;
  p.tx = t;
  p.ty = t;
  p.tz = t;
  p.iters = kIters;
  p.halo_bytes = 256;
  p.diagonals = true;  // the paper's 27-point hypre pattern
  // VCI pools sized the way each mechanism actually consumes resources:
  // communicators need one VCI per plan communicator (Lesson 3's blowup);
  // tags/endpoints provision only what the pattern needs.
  if (mech == wl::StencilMech::kComms) {
    rp::StencilPlan plan(rp::Vec3{p.px, p.py, p.pz}, rp::Vec3{t, t, t}, true,
                         rp::PlanStrategy::kMirrored);
    p.num_vcis = plan.num_comms();
  } else {
    p.num_vcis = 1;  // endpoints/tags allocate their own channels on demand
  }
  p.cost.max_hw_contexts = 8;  // scarce contexts: sharing penalties bite
  wl::StencilResult r;
  for (auto _ : state) {
    r = wl::run_stencil(p);
    bench::set_virtual_time(state, r.run.elapsed_ns);
  }
  state.counters["objects"] = r.comms_used;
  state.counters["shared_ctx_injections"] = static_cast<double>(r.run.net.shared_ctx_injections);
  contention_table().add(to_string(mech), t * t * t,
                         static_cast<double>(r.run.elapsed_ns) / kIters * 1e-3);
  bench::collect_stats(std::string(to_string(mech)) + "/threads=" + std::to_string(t * t * t),
                       r.run.net);
}

void register_all() {
  for (auto mech : {wl::StencilMech::kComms, wl::StencilMech::kEndpoints,
                    wl::StencilMech::kTags}) {
    auto* b = benchmark::RegisterBenchmark((std::string("lesson3/") + to_string(mech)).c_str(),
                                           BM_BoundedFabric, mech);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 3}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();

  // Closed-form counts (the paper's [4,4,4] -> 808 vs 56 example).
  for (int t : {2, 3, 4, 5, 6}) {
    const long comms = rp::paper_comms_27pt(t, t, t);
    const long channels = rp::channels_27pt(t, t, t);
    count_table().add("communicators (paper formula)", t * t * t,
                      static_cast<double>(comms));
    count_table().add("endpoints (= channels needed)", t * t * t,
                      static_cast<double>(channels));
    count_table().add("ratio", t * t * t,
                      static_cast<double>(comms) / static_cast<double>(channels));
  }
  count_table().print();
  bench::note("paper: [4,4,4] needs 808 communicators but only 56 endpoints (14.4x)");

  contention_table().print();
  bench::note(
      "paper: on Omni-Path (160 contexts) hypre's communication was >2x slower with "
      "communicators than with other mechanisms");
  return 0;
}
