/// E13 — §III-D / Lesson 20: device-initiated communication (simulated).
///
/// "Partitioned operations provide lightweight interfaces for
/// device-initiated communication; the other two designs do not" — but the
/// control transfers back to the CPU per iteration re-introduce launch
/// overheads, which persistent-kernel + CPU-proxy techniques avoid.

#include "bench_common.h"
#include "workloads/device_comm.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Lesson 20: device-driven pairwise exchange, 2 processes",
                              "device workers", "us per iteration (virtual)");
  return t;
}

bench::FigureTable& launch_table() {
  static bench::FigureTable t("Lesson 20: sensitivity to kernel-launch overhead (8 workers)",
                              "kernel launch (us)", "us per iteration (virtual)");
  return t;
}

constexpr int kIters = 8;

void BM_Device(benchmark::State& state, wl::DeviceMech mech) {
  wl::DeviceParams p;
  p.mech = mech;
  p.device_threads = static_cast<int>(state.range(0));
  p.iters = kIters;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_device_comm(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  table().add(to_string(mech), p.device_threads,
              static_cast<double>(r.elapsed_ns) / kIters * 1e-3);
  bench::collect_stats(
      std::string(to_string(mech)) + "/threads=" + std::to_string(p.device_threads), r.net);
}

void register_all() {
  for (auto mech : {wl::DeviceMech::kHostOrchestrated, wl::DeviceMech::kDevicePartitioned,
                    wl::DeviceMech::kPersistentProxy}) {
    auto* b = benchmark::RegisterBenchmark((std::string("lesson20/") + to_string(mech)).c_str(),
                                           BM_Device, mech);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int g : {2, 8, 32}) b->Arg(g);
  }
}

void launch_sweep() {
  for (tmpi::net::Time launch : {1000u, 4000u, 16000u, 64000u}) {
    for (auto mech : {wl::DeviceMech::kHostOrchestrated, wl::DeviceMech::kDevicePartitioned,
                      wl::DeviceMech::kPersistentProxy}) {
      wl::DeviceParams p;
      p.mech = mech;
      p.device_threads = 8;
      p.iters = kIters;
      p.kernel_launch_ns = launch;
      const auto r = wl::run_device_comm(p);
      launch_table().add(to_string(mech), static_cast<double>(launch) * 1e-3,
                         static_cast<double>(r.elapsed_ns) / kIters * 1e-3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  launch_sweep();
  launch_table().print();
  bench::note(
      "paper Lesson 20: partitioned Pready/Parrived are the lightweight device-side "
      "interface, but per-iteration Wait/restart returns control to the CPU; persistent "
      "kernels with a CPU proxy avoid the relaunches entirely");
  return 0;
}
