/// E3 — Fig. 1(c): Legion-style event runtime throughput (circuit workload).
///
/// Series: MPI everywhere, MPI+threads Original, MPI+threads with endpoints.
/// Paper shape: endpoints-based logically parallel communication dominates;
/// Original collapses on its single channel.

#include "bench_common.h"
#include "workloads/event_runtime.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 1(c): event runtime, 4 processes", "task threads",
                              "events/ms (virtual)");
  return t;
}

void BM_Events(benchmark::State& state, wl::EventMech mech) {
  wl::EventParams p;
  p.mech = mech;
  p.nranks = 4;
  p.task_threads = static_cast<int>(state.range(0));
  p.events_per_thread = 255;  // divisible by nranks-1
  p.msg_bytes = 64;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_event_runtime(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  const double events_per_ms = static_cast<double>(r.aux) / (r.seconds() * 1e3);
  state.counters["events_per_ms"] = events_per_ms;
  table().add(to_string(mech), p.task_threads, events_per_ms);
  bench::collect_stats(
      std::string(to_string(mech)) + "/threads=" + std::to_string(p.task_threads), r.net);
}

void register_all() {
  for (auto mech :
       {wl::EventMech::kEverywhere, wl::EventMech::kSerial, wl::EventMech::kEndpoints}) {
    auto* b =
        benchmark::RegisterBenchmark((std::string("fig1c/") + to_string(mech)).c_str(), BM_Events, mech);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {1, 2, 4, 8}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  bench::note(
      "paper: Legion circuit on Broadwell + Omni-Path — logically parallel MPI+threads "
      "communication outperforms both everywhere and Original");
  return 0;
}
