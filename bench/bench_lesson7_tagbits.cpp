/// E7 — Lessons 7-9: tags as the parallelism mechanism.
///
/// (a) Mapping quality: one-to-one tag-bit hints vs the library's default
///     tag hash vs Original (Lesson 7: optimal mapping is "tedious" —
///     it needs implementation-specific hints; hashing leaves rate behind).
/// (b) Tag-space pressure: encoding two thread ids eats MSBs; the remaining
///     application tag space shrinks and overflows (Lesson 9).

#include "bench_common.h"
#include "core/session.h"
#include "workloads/msgrate.h"

namespace {

bench::FigureTable& rate_table() {
  static bench::FigureTable t("Lesson 7: tag-to-VCI mapping quality", "workers",
                              "million messages/s (virtual)");
  return t;
}

void BM_TagMap(benchmark::State& state, wl::MsgRateMode mode) {
  wl::MsgRateParams p;
  p.mode = mode;
  p.workers = static_cast<int>(state.range(0));
  p.msgs_per_worker = 2048;
  p.window = 64;
  p.msg_bytes = 8;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_msgrate(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  rate_table().add(to_string(mode), p.workers, r.msg_rate() * 1e-6);
  bench::collect_stats(std::string(to_string(mode)) + "/workers=" + std::to_string(p.workers),
                       r.net);
}

void register_all() {
  for (auto mode : {wl::MsgRateMode::kThreadsTags, wl::MsgRateMode::kThreadsTagsHash,
                    wl::MsgRateMode::kThreadsOriginal}) {
    auto* b =
        benchmark::RegisterBenchmark((std::string("lesson7/") + to_string(mode)).c_str(), BM_TagMap, mode);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int w : {2, 4, 8, 16}) b->Arg(w);
  }
}

void print_tag_budget() {
  bench::FigureTable t("Lesson 9: tag-space pressure (23 tag bits total)", "threads",
                       "bits / max app tag");
  for (int threads : {2, 4, 8, 16, 32, 64, 128}) {
    const int bits = rp::detail::stream_bits(threads);
    const int app_bits = 23 - 2 * bits;
    t.add("tid bits per side", threads, bits);
    t.add("app tag bits left", threads, app_bits);
    t.add("max app tag", threads, app_bits >= 1 ? (1 << app_bits) - 1 : 0);
  }
  t.print();
  // Demonstrate the overflow concretely through the session tag encoder.
  int overflow_at = -1;
  for (int threads : {2, 8, 32, 128}) {
    const int bits = rp::detail::stream_bits(threads);
    try {
      (void)rp::detail::encode_tag(0, 0, /*user_tag=*/1 << 16, bits, 23);
    } catch (const tmpi::Error&) {
      overflow_at = threads;
      break;
    }
  }
  if (overflow_at > 0) {
    bench::note("an application tag of 2^16 stops fitting at %d threads (kTagOverflow)",
                overflow_at);
  }
  bench::note(
      "paper: SNAP, Smilei and MITgcm already hit tag overflow without parallelism bits");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  rate_table().print();
  bench::note(
      "paper Lesson 7: without the one-to-one hints the library's tag hash decides the "
      "mapping; collisions keep some channels idle");
  print_tag_budget();
  return 0;
}
