/// E2 — Fig. 1(b): Uintah/hypre-style stencil halo exchange.
///
/// Series: MPI everywhere (one rank per patch, node NIC shared), MPI+threads
/// "Original" (single channel), MPI+threads with endpoints. Paper shape:
/// Original is slowest; logically parallel MPI+threads matches or beats
/// everywhere (intranode halos ride shared memory instead of the NIC).

#include "bench_common.h"
#include "workloads/stencil.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Fig 1(b): 3D 27-pt stencil halo exchange (hypre pattern), 2x2x2 process grid",
      "threads/process", "time per iteration (us, virtual)");
  return t;
}

constexpr int kIters = 6;

wl::StencilParams base(int t) {
  wl::StencilParams p;
  p.px = 2;
  p.py = 2;
  p.pz = 2;
  p.tx = t;
  p.ty = t;
  p.tz = t;
  p.iters = kIters;
  p.halo_bytes = 512;
  p.diagonals = true;  // 27-point
  p.num_vcis = t * t * t;
  return p;
}

void BM_Stencil(benchmark::State& state, const char* series) {
  const int t = static_cast<int>(state.range(0));
  wl::StencilParams p = base(t);
  if (std::string(series) == "everywhere") {
    // One rank per patch; ranks of one former process share a node (and NIC).
    p.px = 2 * t;
    p.py = 2 * t;
    p.pz = 2 * t;
    p.tx = 1;
    p.ty = 1;
    p.tz = 1;
    p.ranks_per_node = t * t * t;
    p.mech = wl::StencilMech::kSerial;
    p.num_vcis = 1;
  } else if (std::string(series) == "threads-original") {
    p.mech = wl::StencilMech::kSerial;
  } else {
    p.mech = wl::StencilMech::kEndpoints;
  }
  wl::StencilResult r;
  for (auto _ : state) {
    r = wl::run_stencil(p);
    bench::set_virtual_time(state, r.run.elapsed_ns);
  }
  const double us_per_iter = static_cast<double>(r.run.elapsed_ns) / kIters * 1e-3;
  state.counters["us_per_iter"] = us_per_iter;
  table().add(series, t * t * t, us_per_iter);
  bench::collect_stats(std::string(series) + "/threads=" + std::to_string(t * t * t),
                       r.run.net);
}

void register_all() {
  for (const char* series : {"everywhere", "threads-original", "threads-endpoints"}) {
    auto* b = benchmark::RegisterBenchmark((std::string("fig1b/") + series).c_str(), BM_Stencil, series);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 3}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  bench::note(
      "paper: Uintah/hypre on KNL + Omni-Path — MPI+threads with logically parallel "
      "communication achieves the scalability of threads AND the speed of everywhere");
  return 0;
}
