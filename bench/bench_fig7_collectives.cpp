/// E10 — Fig. 7 + Lessons 18-19: multithreaded allreduce (the VASP pattern).
///
/// Existing mechanisms: per-thread communicators + a user-driven intranode
/// step (>2x over single-threaded in the paper). Endpoints: one-step library
/// collective but duplicated result buffers. Partitioned-style: one buffer,
/// shared-request synchronization.

#include "bench_common.h"
#include "workloads/collective_workload.h"

namespace {

bench::FigureTable& time_table() {
  static bench::FigureTable t("Fig 7: allreduce of 128 KiB over 4 processes", "threads",
                              "time per allreduce (us, virtual)");
  return t;
}

bench::FigureTable& mem_table() {
  static bench::FigureTable t("Lesson 19: result-buffer memory per process", "threads",
                              "KiB of result copies");
  return t;
}

double g_single_us = 0;
double g_multi_us = 0;

void BM_Coll(benchmark::State& state, wl::CollMech mech) {
  wl::CollParams p;
  p.mech = mech;
  p.nranks = 4;
  p.threads = static_cast<int>(state.range(0));
  p.elements = 16384;  // 128 KiB of doubles
  p.iters = 2;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_collective(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  const double us = static_cast<double>(r.elapsed_ns) / p.iters * 1e-3;
  time_table().add(to_string(mech), p.threads, us);
  mem_table().add(to_string(mech), p.threads,
                  static_cast<double>(r.result_buffer_bytes) / 1024.0);
  bench::collect_stats(std::string(to_string(mech)) + "/threads=" + std::to_string(p.threads),
                       r.net);
  if (p.threads == 8) {
    if (mech == wl::CollMech::kSingleThread) g_single_us = us;
    if (mech == wl::CollMech::kPerThreadComms) g_multi_us = us;
  }
}

void register_all() {
  for (auto mech : {wl::CollMech::kSingleThread, wl::CollMech::kPerThreadComms,
                    wl::CollMech::kEndpoints, wl::CollMech::kPartitionedStyle}) {
    auto* b =
        benchmark::RegisterBenchmark((std::string("fig7/") + to_string(mech)).c_str(), BM_Coll, mech);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 4, 8}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  time_table().print();
  if (g_multi_us > 0) {
    bench::note("measured per-thread-comms speedup over single-threaded at T=8: %.2fx",
                g_single_us / g_multi_us);
  }
  bench::note("paper: VASP collectives observe >2x with the per-thread-comms approach");
  mem_table().print();
  bench::note(
      "paper Lesson 19: endpoints duplicate the collective result per endpoint; "
      "communicators and partitioned designs keep one buffer");
  return 0;
}
