/// Datacenter-shaped scaling: construction cost and idle-channel memory of
/// lazily materialized worlds (DESIGN.md §11).
///
/// The paper's testbed stopped at tens of ranks because every rank eagerly
/// built its full RankState/VciPool and every (rank, VCI) channel block at
/// World construction. With the descriptor/body split, a world sweep of
/// nranks x num_vcis — up to 10k ranks x 16 VCIs = 160k logical channels —
/// must construct in O(active) time and memory:
///
///   - construct_ms: wall time to build the World (gated < 2 s per row),
///   - rss_delta_bytes: resident-set growth across construction, gated
///     against an idle-channel budget of 64 bytes per logical channel,
///   - ops_per_sec + per-op virtual time over a small touched subset, driven
///     directly through the Transport choke point (10k OS threads would
///     measure the scheduler, not the fabric),
///   - materialization telemetry proving laziness (ranks/NICs/channels built
///     vs. configured).
///
/// Emits BENCH_scale.json for the CI scale-smoke gate (tools/bench_validate).
/// `--max-ranks N` trims the sweep for CI runners.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tmpi/tmpi.h"
#include "tmpi/transport.h"

namespace {

using namespace tmpi;

/// VmRSS from /proc/self/status, in bytes (0 if unavailable — non-Linux).
std::size_t rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoull(line.c_str() + 6, nullptr, 10)) * 1024;
    }
  }
  return 0;
}

struct Row {
  int nranks = 0;
  int num_vcis = 0;
  std::int64_t channels = 0;       ///< logical (rank, VCI) channels configured
  double construct_ms = 0;         ///< World construction wall time
  std::int64_t rss_delta = 0;      ///< RSS growth across construction (bytes)
  std::int64_t rss_touched = 0;    ///< RSS growth across the touch + op phase
  double ops_per_sec = 0;          ///< steady-state host op rate on touched channels
  net::Time virtual_ns_per_op = 0; ///< virtual cost per op (world-size independent)
  int touched_ranks = 0;
  int ranks_built = 0;             ///< RankStates materialized after the op phase
  int nics_built = 0;
  std::int64_t channels_built = 0; ///< channel bodies materialized (via snapshot)
};

/// Drive `iters` eager sends rank 2i -> 2i+1 over `pairs` rank pairs, posting
/// the matching receive before each deposit so the steady state allocates
/// nothing and the unexpected queue never grows (same direct-transport idiom
/// as the golden transport_test).
Row run_config(int nranks, int num_vcis, int pairs, int iters) {
  Row row;
  row.nranks = nranks;
  row.num_vcis = num_vcis;
  row.channels = static_cast<std::int64_t>(nranks) * num_vcis;

  const std::size_t rss0 = rss_bytes();
  const auto t0 = std::chrono::steady_clock::now();

  WorldConfig wc;
  wc.nranks = nranks;
  wc.ranks_per_node = 8;
  wc.num_vcis = num_vcis;
  World world(wc);

  const auto t1 = std::chrono::steady_clock::now();
  const std::size_t rss1 = rss_bytes();
  row.construct_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.rss_delta = static_cast<std::int64_t>(rss1) - static_cast<std::int64_t>(rss0);

  // Touch + op phase: a bounded subset of rank pairs exchanges messages
  // through the transport choke point on a caller-bound virtual clock.
  detail::Transport& tp = world.transport();
  net::VirtualClock clk;
  net::ScopedClockBind bind(&clk);

  std::uint64_t payload = 0;
  std::uint64_t sink = 0;
  const net::Time v0 = clk.now();
  const auto t2 = std::chrono::steady_clock::now();
  std::uint64_t ops = 0;
  for (int it = 0; it < iters; ++it) {
    for (int p = 0; p < pairs; ++p) {
      const int src = 2 * p;
      const int dst = 2 * p + 1;
      const int vci = p % num_vcis;

      detail::PostedRecv pr;
      pr.ctx_id = 0;
      pr.src = src;
      pr.tag = it & 0xff;
      pr.buf = reinterpret_cast<std::byte*>(&sink);
      pr.capacity = sizeof(sink);
      pr.req = detail::make_req_state();
      tp.post_recv(dst, vci, std::move(pr));

      detail::OpDesc op;
      op.kind = detail::OpKind::kEagerP2p;
      op.bytes = sizeof(payload);
      op.src_world_rank = src;
      op.dst_world_rank = dst;
      op.local_vci = vci;
      op.remote_vci = vci;
      const detail::InjectResult ir = tp.inject(op);

      detail::Envelope env;
      env.ctx_id = 0;
      env.src = src;
      env.tag = it & 0xff;
      env.bytes = sizeof(payload);
      env.payload.acquire(world.rank_state(src).vcis.at(vci).payload_pool(), sizeof(payload));
      std::memcpy(env.payload.data(), &payload, sizeof(payload));
      ++payload;
      (void)tp.deliver(op, std::move(env), ir.arrival);
      ++ops;
    }
  }
  const auto t3 = std::chrono::steady_clock::now();
  const std::size_t rss2 = rss_bytes();

  const double sec = std::chrono::duration<double>(t3 - t2).count();
  row.ops_per_sec = sec > 0 ? static_cast<double>(ops) / sec : 0.0;
  row.virtual_ns_per_op = ops > 0 ? (clk.now() - v0) / static_cast<net::Time>(ops) : 0;
  row.rss_touched = static_cast<std::int64_t>(rss2) - static_cast<std::int64_t>(rss1);
  row.touched_ranks = 2 * pairs;
  row.ranks_built = world.ranks_materialized();
  row.nics_built = world.fabric().nics_materialized();
  row.channels_built = static_cast<std::int64_t>(world.snapshot().channels.size());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_stats_flag(&argc, argv);
  int max_ranks = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--max-ranks" && i + 1 < argc) {
      max_ranks = std::atoi(argv[i + 1]);
    }
  }

  bench::FigureTable table("World construction at datacenter shape (lazy channels)", "nranks",
                           "construction ms");

  std::vector<Row> rows;
  bool gates_ok = true;
  for (int nranks : {64, 512, 4096, 10000}) {
    if (nranks > max_ranks) continue;
    for (int num_vcis : {1, 16}) {
      const int pairs = std::min(nranks / 2, 16);
      const Row row = run_config(nranks, num_vcis, pairs, /*iters=*/2000);
      table.add("construct_ms/vcis=" + std::to_string(num_vcis), nranks, row.construct_ms);
      table.add("Mops/s/vcis=" + std::to_string(num_vcis), nranks, row.ops_per_sec / 1e6);
      rows.push_back(row);

      // Gate 1: construction must be fast — O(active), not O(nranks x vcis)
      // heavy state. 2 s is the acceptance bound at 10k x 16.
      if (row.construct_ms >= 2000.0) {
        std::fprintf(stderr, "FATAL: construction took %.1f ms at nranks=%d vcis=%d (gate: < 2000)\n",
                     row.construct_ms, nranks, num_vcis);
        gates_ok = false;
      }
      // Gate 2: idle-channel overhead <= 64 B. Construction RSS growth must
      // fit the descriptor budget plus a fixed allowance for world-level
      // arrays (comm topology, rank/NIC tables, thread stacks' first touch).
      const std::int64_t budget = row.channels * 64 + (16 << 20);
      if (row.rss_delta > budget) {
        std::fprintf(stderr,
                     "FATAL: construction RSS grew %lld bytes at nranks=%d vcis=%d "
                     "(gate: <= 64 B/channel + 16 MiB = %lld)\n",
                     static_cast<long long>(row.rss_delta), nranks, num_vcis,
                     static_cast<long long>(budget));
        gates_ok = false;
      }
      // Gate 3: laziness — only touched ranks materialize heavy state.
      if (row.ranks_built > row.touched_ranks) {
        std::fprintf(stderr, "FATAL: %d RankStates built but only %d ranks touched\n",
                     row.ranks_built, row.touched_ranks);
        gates_ok = false;
      }
    }
  }

  table.print();
  bench::note("virtual ns/op is world-size independent: the op path never scans rank tables; "
              "RSS growth tracks touched channels, not the nranks x num_vcis product");

  std::ofstream out("BENCH_scale.json");
  out << "{\n  \"bench\": \"scale_ranks\",\n  \"unit\": \"ms_and_bytes\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"nranks\": " << r.nranks << ", \"num_vcis\": " << r.num_vcis
        << ", \"channels\": " << r.channels << ", \"construct_ms\": " << r.construct_ms
        << ", \"rss_delta_bytes\": " << r.rss_delta
        << ", \"rss_touched_bytes\": " << r.rss_touched
        << ", \"ops_per_sec\": " << static_cast<std::uint64_t>(r.ops_per_sec)
        << ", \"virtual_ns_per_op\": " << r.virtual_ns_per_op
        << ", \"touched_ranks\": " << r.touched_ranks
        << ", \"ranks_built\": " << r.ranks_built << ", \"nics_built\": " << r.nics_built
        << ", \"channels_built\": " << r.channels_built << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_scale.json\n");
  return gates_ok ? 0 : 1;
}
