/// E9 — Lesson 14: the shared-request cost of partitioned communication, and
/// the unstudied "partitions -> distinct network resources" mapping the paper
/// calls for (our tmpi_part_vcis ablation).

#include "bench_common.h"
#include "workloads/stencil.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Lesson 14: 9-pt stencil, 2x2 processes", "threads/process",
                              "time per iteration (us, virtual)");
  return t;
}

bench::FigureTable& lock_table() {
  static bench::FigureTable t("Lesson 14: serialization evidence", "threads/process",
                              "shared-request acquisitions per iteration");
  return t;
}

constexpr int kIters = 6;

void BM_Part(benchmark::State& state, const char* series) {
  const int t = static_cast<int>(state.range(0));
  wl::StencilParams p;
  p.px = 2;
  p.py = 2;
  p.tx = t;
  p.ty = t;
  p.iters = kIters;
  p.halo_bytes = 1024;
  p.diagonals = true;
  p.num_vcis = t * t;
  const std::string s(series);
  if (s == "partitioned/1vci") {
    p.mech = wl::StencilMech::kPartitioned;
    p.part_vcis = 1;
  } else if (s == "partitioned/Nvcis") {
    p.mech = wl::StencilMech::kPartitioned;
    p.part_vcis = t * t;
  } else {
    p.mech = wl::StencilMech::kEndpoints;
  }
  wl::StencilResult r;
  for (auto _ : state) {
    r = wl::run_stencil(p);
    bench::set_virtual_time(state, r.run.elapsed_ns);
  }
  table().add(series, t * t, static_cast<double>(r.run.elapsed_ns) / kIters * 1e-3);
  lock_table().add(series, t * t,
                   static_cast<double>(r.run.net.part_lock_acquisitions) / kIters);
  bench::collect_stats(std::string(series) + "/threads=" + std::to_string(t * t), r.run.net);
}

void register_all() {
  for (const char* series : {"partitioned/1vci", "partitioned/Nvcis", "endpoints"}) {
    auto* b = benchmark::RegisterBenchmark((std::string("lesson14/") + series).c_str(), BM_Part, series);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 3, 4}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  lock_table().print();
  bench::note(
      "paper Lesson 14: threads sharing the partitioned request contend or synchronize; "
      "endpoints keep threads fully independent");
  bench::note(
      "paper Section II-C: mapping partitions to distinct network resources had not been "
      "studied — the Nvcis series is that study on the simulated fabric");
  return 0;
}
