/// E4 — Fig. 4 + Listings 1/3 (Lessons 1, 2, 10): communicator maps for the
/// 2D 9-point stencil.
///
/// Compares the planner's ideal mirrored map against the naive intuitive map
/// (comm per sender thread) and against endpoints: exposed parallelism,
/// object counts, and measured halo-exchange time.

#include "bench_common.h"
#include "core/planner.h"
#include "workloads/stencil.h"

namespace {

bench::FigureTable& time_table() {
  static bench::FigureTable t("Fig 4: 2D 9-pt stencil, 2x2 processes — exchange time",
                              "threads/process", "time per iteration (us, virtual)");
  return t;
}

bench::FigureTable& par_table() {
  static bench::FigureTable t("Fig 4: exposed parallelism (1.0 = all, Lesson 2)",
                              "threads/process", "parallel fraction / comm count");
  return t;
}

constexpr int kIters = 8;

/// Rows accumulated for BENCH_commmap.json (the common bench JSON path).
struct MapRow {
  std::string series;
  int threads = 0;
  double us_per_iter = 0.0;
  double objects = 0.0;
  double parallel_fraction = -1.0;  ///< <0: not a comm-map series
};

std::vector<MapRow>& json_rows() {
  static std::vector<MapRow> v;
  return v;
}

void BM_Map(benchmark::State& state, const char* series) {
  const int t = static_cast<int>(state.range(0));
  wl::StencilParams p;
  p.px = 2;
  p.py = 2;
  p.tx = t;
  p.ty = t;
  p.iters = kIters;
  p.halo_bytes = 1024;
  p.diagonals = true;
  p.num_vcis = 64;
  const std::string s(series);
  if (s == "comms-mirrored") {
    p.mech = wl::StencilMech::kComms;
    p.strategy = rp::PlanStrategy::kMirrored;
  } else if (s == "comms-naive") {
    p.mech = wl::StencilMech::kComms;
    p.strategy = rp::PlanStrategy::kNaive;
  } else if (s == "endpoints") {
    p.mech = wl::StencilMech::kEndpoints;
  } else {
    p.mech = wl::StencilMech::kSerial;  // "Original" anchor
  }
  wl::StencilResult r;
  for (auto _ : state) {
    r = wl::run_stencil(p);
    bench::set_virtual_time(state, r.run.elapsed_ns);
  }
  const double us_per_iter = static_cast<double>(r.run.elapsed_ns) / kIters * 1e-3;
  time_table().add(series, t * t, us_per_iter);
  state.counters["objects"] = r.comms_used;
  bench::collect_stats(std::string(series) + "/threads=" + std::to_string(t * t), r.run.net);

  MapRow row;
  row.series = s;
  row.threads = t * t;
  row.us_per_iter = us_per_iter;
  row.objects = r.comms_used;
  if (p.mech == wl::StencilMech::kComms) {
    rp::StencilPlan plan(rp::Vec3{2, 2, 1}, rp::Vec3{t, t, 1}, true, p.strategy);
    const auto m = plan.analyze();
    par_table().add(s + "/parallel_fraction", t * t, m.parallel_fraction());
    par_table().add(s + "/comms", t * t, plan.num_comms());
    row.parallel_fraction = m.parallel_fraction();
  } else if (p.mech == wl::StencilMech::kEndpoints) {
    par_table().add("endpoints/parallel_fraction", t * t, 1.0);
    par_table().add("endpoints/objects", t * t, r.comms_used);
    row.parallel_fraction = 1.0;
  }
  json_rows().push_back(row);
}

void register_all() {
  for (const char* series : {"serial", "comms-mirrored", "comms-naive", "endpoints"}) {
    auto* b = benchmark::RegisterBenchmark((std::string("fig4/") + series).c_str(), BM_Map, series);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 3, 4}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  time_table().print();
  par_table().print();
  bench::note("paper Lesson 2: the naive map exposes 'only half of the available parallelism'");
  bench::note("paper Lesson 10: endpoints reach full parallelism with one object per thread");

  // BENCH_commmap.json: the same figure, machine-checkable (CI gates on the
  // keys below via tools/bench_validate).
  bench::BenchJson doc("fig4_commmap");
  doc.root().set("iters", kIters).set("halo_bytes", 1024).set("proc_grid", "2x2");
  double mirrored_max = 0.0;
  double naive_max = 0.0;
  int max_threads = 0;
  for (const MapRow& r : json_rows()) {
    bench::JsonObject& row = doc.add_row("rows");
    row.set("series", r.series)
        .set("threads", r.threads)
        .set("us_per_iter", r.us_per_iter)
        .set("objects", r.objects);
    if (r.parallel_fraction >= 0.0) row.set("parallel_fraction", r.parallel_fraction);
    if (r.threads >= max_threads) {
      max_threads = r.threads;
      if (r.series == "comms-mirrored") mirrored_max = r.us_per_iter;
      if (r.series == "comms-naive") naive_max = r.us_per_iter;
    }
  }
  doc.root().set("max_threads", max_threads);
  if (mirrored_max > 0.0) {
    doc.root().set("naive_over_mirrored", naive_max / mirrored_max);
  }
  doc.write_file("BENCH_commmap.json");
  return 0;
}
