/// E4 — Fig. 4 + Listings 1/3 (Lessons 1, 2, 10): communicator maps for the
/// 2D 9-point stencil.
///
/// Compares the planner's ideal mirrored map against the naive intuitive map
/// (comm per sender thread) and against endpoints: exposed parallelism,
/// object counts, and measured halo-exchange time.

#include "bench_common.h"
#include "core/planner.h"
#include "workloads/stencil.h"

namespace {

bench::FigureTable& time_table() {
  static bench::FigureTable t("Fig 4: 2D 9-pt stencil, 2x2 processes — exchange time",
                              "threads/process", "time per iteration (us, virtual)");
  return t;
}

bench::FigureTable& par_table() {
  static bench::FigureTable t("Fig 4: exposed parallelism (1.0 = all, Lesson 2)",
                              "threads/process", "parallel fraction / comm count");
  return t;
}

constexpr int kIters = 8;

void BM_Map(benchmark::State& state, const char* series) {
  const int t = static_cast<int>(state.range(0));
  wl::StencilParams p;
  p.px = 2;
  p.py = 2;
  p.tx = t;
  p.ty = t;
  p.iters = kIters;
  p.halo_bytes = 1024;
  p.diagonals = true;
  p.num_vcis = 64;
  const std::string s(series);
  if (s == "comms-mirrored") {
    p.mech = wl::StencilMech::kComms;
    p.strategy = rp::PlanStrategy::kMirrored;
  } else if (s == "comms-naive") {
    p.mech = wl::StencilMech::kComms;
    p.strategy = rp::PlanStrategy::kNaive;
  } else if (s == "endpoints") {
    p.mech = wl::StencilMech::kEndpoints;
  } else {
    p.mech = wl::StencilMech::kSerial;  // "Original" anchor
  }
  wl::StencilResult r;
  for (auto _ : state) {
    r = wl::run_stencil(p);
    bench::set_virtual_time(state, r.run.elapsed_ns);
  }
  time_table().add(series, t * t, static_cast<double>(r.run.elapsed_ns) / kIters * 1e-3);
  state.counters["objects"] = r.comms_used;
  bench::collect_stats(std::string(series) + "/threads=" + std::to_string(t * t), r.run.net);

  if (p.mech == wl::StencilMech::kComms) {
    rp::StencilPlan plan(rp::Vec3{2, 2, 1}, rp::Vec3{t, t, 1}, true, p.strategy);
    const auto m = plan.analyze();
    par_table().add(s + "/parallel_fraction", t * t, m.parallel_fraction());
    par_table().add(s + "/comms", t * t, plan.num_comms());
  } else if (p.mech == wl::StencilMech::kEndpoints) {
    par_table().add("endpoints/parallel_fraction", t * t, 1.0);
    par_table().add("endpoints/objects", t * t, r.comms_used);
  }
}

void register_all() {
  for (const char* series : {"serial", "comms-mirrored", "comms-naive", "endpoints"}) {
    auto* b = benchmark::RegisterBenchmark((std::string("fig4/") + series).c_str(), BM_Map, series);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 3, 4}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  time_table().print();
  par_table().print();
  bench::note("paper Lesson 2: the naive map exposes 'only half of the available parallelism'");
  bench::note("paper Lesson 10: endpoints reach full parallelism with one object per thread");
  return 0;
}
