/// E8 — Fig. 6 + Lesson 16: NWChem's get-compute-update over RMA.
///
/// Atomic accumulates into one window: strict ordering serializes per
/// (origin,target) channel; accumulate_ordering=none spreads by a location
/// hash but collides; endpoint windows give each thread its own channel
/// while keeping atomicity.

#include "bench_common.h"
#include "workloads/sparse_matmul.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 6: block-sparse get-compute-update, 4 processes",
                              "threads/process", "time (ms, virtual)");
  return t;
}

void BM_Rma(benchmark::State& state, wl::RmaMech mech) {
  wl::MatmulParams p;
  p.mech = mech;
  p.nranks = 4;
  p.threads = static_cast<int>(state.range(0));
  p.nb = 6;
  p.bs = 8;
  p.keep_mod = 1;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_sparse_matmul(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  state.counters["tasks"] = static_cast<double>(r.aux);
  state.counters["atomic_ops"] = static_cast<double>(r.net.atomic_ops);
  table().add(to_string(mech), p.threads, static_cast<double>(r.elapsed_ns) * 1e-6);
  bench::collect_stats(std::string(to_string(mech)) + "/threads=" + std::to_string(p.threads),
                       r.net);
}

void register_all() {
  for (auto mech :
       {wl::RmaMech::kStrictWindow, wl::RmaMech::kRelaxedHash, wl::RmaMech::kEndpointsWin}) {
    auto* b =
        benchmark::RegisterBenchmark((std::string("fig6/") + to_string(mech)).c_str(), BM_Rma, mech);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {1, 2, 4, 8}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  bench::note(
      "paper Lesson 16: relaxing ordering helps but any hash collides; endpoints expose "
      "parallel atomics within one window");
  return 0;
}
