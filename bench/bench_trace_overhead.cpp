/// Host-time observability overhead (DESIGN.md §14).
///
/// The recording discipline guarantees tracing, the flight recorder, and the
/// metrics sampler never move a virtual timestamp — the twins pin that. What
/// they cost is HOST time: ring writes, span allocation, and sampler probes
/// on every transport choke point. This benchmark runs the same two-rank
/// ping-pong under the three observability tiers and reports host ns per
/// message:
///
///   off        tmpi_flightrec=0, no tracing — the bare transport
///   flightrec  the always-on default: black-box ring only
///   full       tmpi_trace=1 + flight recorder + metrics sampler
///
/// Virtual time must be bit-identical across tiers (asserted fatal, same as
/// bench_matchrate's mode pairing). Emits BENCH_traceov.json for the CI
/// perf-smoke gate.

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tmpi/tmpi.h"

namespace {

using namespace tmpi;

struct TierResult {
  std::string name;
  double host_ns_per_msg = 0;
  std::uint64_t messages = 0;
  net::Time virtual_ns = 0;  ///< must be tier-independent
  std::uint64_t events_recorded = 0;
  net::NetStatsSnapshot stats;
};

enum class Tier { kOff, kFlightRec, kFull };

TierResult run_tier(Tier tier, int rounds) {
  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;
  wc.num_vcis = 1;
  switch (tier) {
    case Tier::kOff:
      wc.trace_info.set("tmpi_flightrec", "0");
      break;
    case Tier::kFlightRec:
      wc.trace_info.set("tmpi_flightrec_path", "");  // record, never write
      break;
    case Tier::kFull:
      wc.trace_info.set("tmpi_trace", "1");
      wc.trace_info.set("tmpi_trace_path", "");
      wc.trace_info.set("tmpi_flightrec_path", "");
      wc.trace_info.set("tmpi_metrics_window_ns", "4000");
      wc.trace_info.set("tmpi_metrics_path", "");
      break;
  }
  World world(wc);

  std::array<std::byte, 64> buf{};
  // Warm allocator pools and the trace ring's thread buffers.
  for (int r = 0; r < 64; ++r) {
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        send(buf.data(), 64, kByte, 1, 0, rank.world_comm());
      } else {
        recv(buf.data(), 64, kByte, 0, 0, rank.world_comm());
      }
    });
  }

  const net::Time v0 = world.elapsed();
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        send(buf.data(), 64, kByte, 1, 1, rank.world_comm());
      } else {
        recv(buf.data(), 64, kByte, 0, 1, rank.world_comm());
      }
    });
  }
  const auto t1 = std::chrono::steady_clock::now();

  TierResult out;
  out.name = tier == Tier::kOff ? "off" : tier == Tier::kFlightRec ? "flightrec" : "full";
  out.messages = static_cast<std::uint64_t>(rounds);
  out.virtual_ns = world.elapsed() - v0;
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  out.host_ns_per_msg = ns / static_cast<double>(rounds);
  if (world.tracer() != nullptr) {
    out.events_recorded = world.tracer()->recorded();
  } else if (world.flightrec() != nullptr) {
    out.events_recorded = world.flightrec()->recorded();
  }
  out.stats = world.snapshot();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_stats_flag(&argc, argv);

  constexpr int kRounds = 4000;
  std::vector<TierResult> tiers;
  for (Tier t : {Tier::kOff, Tier::kFlightRec, Tier::kFull}) {
    tiers.push_back(run_tier(t, kRounds));
  }

  for (const TierResult& r : tiers) {
    if (r.virtual_ns != tiers[0].virtual_ns) {
      std::fprintf(stderr,
                   "FATAL: virtual time diverged in tier %s (off=%llu %s=%llu) — "
                   "recorders must never advance virtual clocks\n",
                   r.name.c_str(), static_cast<unsigned long long>(tiers[0].virtual_ns),
                   r.name.c_str(), static_cast<unsigned long long>(r.virtual_ns));
      return 1;
    }
  }

  bench::FigureTable table("Observability host overhead: off vs flightrec vs full tracing",
                           "tier (0=off 1=flightrec 2=full)", "host ns/message");
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    table.add(tiers[i].name, static_cast<int>(i), tiers[i].host_ns_per_msg);
    bench::collect_stats(tiers[i].name, tiers[i].stats);
  }
  table.print();
  bench::print_collected_stats();
  bench::note("virtual time bit-identical across tiers (asserted); overhead is host-side "
              "ring writes + sampler probes only");

  std::ofstream out("BENCH_traceov.json");
  out << "{\n  \"bench\": \"traceov\",\n  \"unit\": \"host_ns_per_msg\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierResult& r = tiers[i];
    out << "    {\"tier\": \"" << r.name << "\", \"host_ns_per_msg\": " << r.host_ns_per_msg
        << ", \"messages\": " << r.messages << ", \"events_recorded\": " << r.events_recorded
        << ", \"virtual_ns\": " << r.virtual_ns << ", \"overhead_vs_off\": "
        << (tiers[0].host_ns_per_msg > 0 ? r.host_ns_per_msg / tiers[0].host_ns_per_msg : 0.0)
        << "}" << (i + 1 < tiers.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_traceov.json\n");
  return 0;
}
