/// Host-time matching throughput: ordered-list scan vs the hint-gated
/// exact-key buckets (DESIGN.md §10).
///
/// Unlike the figure benchmarks, this measures REAL time — the fast path's
/// whole point is that virtual time is unchanged while the library burns far
/// fewer host cycles per match. The workload keeps a posted queue of `depth`
/// distinct concrete tags and always matches the tail entry, so list mode
/// scans the full queue per message while bucket mode answers from the hash
/// index; virtual-time charges are identical by construction (asserted).
///
/// Emits BENCH_matchrate.json for the CI perf-smoke gate. `--stats` prints
/// the engine counters (bucket hits vs fallback probes) per configuration.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/cost_model.h"
#include "net/slab_pool.h"
#include "net/stats.h"
#include "tmpi/matching.h"
#include "tmpi/request.h"

namespace {

using namespace tmpi;

struct RateResult {
  double matches_per_sec = 0;
  std::uint64_t iters = 0;
  tmpi::net::Time virtual_ns = 0;  ///< must be mode-independent
  tmpi::net::NetStatsSnapshot net;
};

RateResult run_mode(detail::MatchPolicy policy, int depth) {
  detail::MatchingEngine eng;
  eng.configure(policy, nullptr);
  net::CostModel cm;
  net::NetStats stats;
  net::VirtualClock clk;
  net::SlabPool pool;

  std::uint64_t sink = 0;
  auto post = [&](Tag tag) {
    detail::PostedRecv pr;
    pr.ctx_id = 0;
    pr.src = 0;
    pr.tag = tag;
    pr.fastpath = true;
    pr.buf = reinterpret_cast<std::byte*>(&sink);
    pr.capacity = sizeof(sink);
    pr.req = detail::make_req_state();
    eng.post_recv(std::move(pr), clk, cm, &stats);
  };
  std::uint64_t msg = 0;
  auto deposit = [&](Tag tag) {
    detail::Envelope env;
    env.ctx_id = 0;
    env.src = 0;
    env.tag = tag;
    env.fastpath = true;
    env.bytes = sizeof(msg);
    env.payload.acquire(pool, sizeof(msg));
    std::memcpy(env.payload.data(), &msg, sizeof(msg));
    ++msg;
    eng.deposit(std::move(env), clk, cm, &stats);
  };

  // Preload: one posted receive per tag; the hot tag sits at the tail, so a
  // list-mode match visits every entry in front of it.
  for (int t = 0; t < depth; ++t) post(static_cast<Tag>(t));
  const Tag hot = static_cast<Tag>(depth - 1);

  // Warm the node/request/payload pools.
  for (int i = 0; i < 512; ++i) {
    deposit(hot);
    post(hot);
  }

  // Scale iterations so each configuration does comparable total scan work.
  const std::uint64_t iters =
      std::max<std::uint64_t>(4096, (std::uint64_t{1} << 22) / static_cast<unsigned>(depth));

  const net::Time v0 = clk.now();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    deposit(hot);  // matches the tail: depth probes charged, however found
    post(hot);     // refill, keeping the queue at `depth`
  }
  const auto t1 = std::chrono::steady_clock::now();

  RateResult r;
  r.iters = iters;
  r.virtual_ns = clk.now() - v0;
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  r.matches_per_sec = sec > 0 ? static_cast<double>(iters) / sec : 0.0;
  r.net = stats.snapshot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_stats_flag(&argc, argv);

  bench::FigureTable table("Matching throughput: list scan vs exact-key buckets", "queue depth",
                           "matches/s (host time)");

  struct Row {
    int depth;
    RateResult list;
    RateResult bucket;
  };
  std::vector<Row> rows;
  for (int depth : {16, 256, 1024, 4096}) {
    Row row;
    row.depth = depth;
    row.list = run_mode(tmpi::detail::MatchPolicy::kList, depth);
    row.bucket = run_mode(tmpi::detail::MatchPolicy::kBucket, depth);
    if (row.list.virtual_ns != row.bucket.virtual_ns) {
      std::fprintf(stderr,
                   "FATAL: virtual time diverged at depth %d (list=%llu bucket=%llu) — "
                   "the fast path must charge list-equivalent costs\n",
                   depth, static_cast<unsigned long long>(row.list.virtual_ns),
                   static_cast<unsigned long long>(row.bucket.virtual_ns));
      return 1;
    }
    table.add("list", depth, row.list.matches_per_sec);
    table.add("bucket", depth, row.bucket.matches_per_sec);
    table.add("speedup", depth, row.bucket.matches_per_sec / row.list.matches_per_sec);
    bench::collect_stats("list/depth=" + std::to_string(depth), row.list.net);
    bench::collect_stats("bucket/depth=" + std::to_string(depth), row.bucket.net);
    rows.push_back(row);
  }

  table.print();
  bench::print_collected_stats();
  bench::note("virtual time is bit-identical per mode pair (asserted); host-time speedup is "
              "the Lesson-7 payoff of the no-wildcard hints");

  std::ofstream out("BENCH_matchrate.json");
  out << "{\n  \"bench\": \"matchrate\",\n  \"unit\": \"matches_per_sec\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"depth\": " << r.depth << ", \"list_matches_per_sec\": "
        << static_cast<std::uint64_t>(r.list.matches_per_sec)
        << ", \"bucket_matches_per_sec\": "
        << static_cast<std::uint64_t>(r.bucket.matches_per_sec) << ", \"speedup\": "
        << (r.bucket.matches_per_sec / r.list.matches_per_sec) << ", \"virtual_ns\": "
        << r.list.virtual_ns << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_matchrate.json\n");
  return 0;
}
