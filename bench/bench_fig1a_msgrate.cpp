/// E1 — Fig. 1(a): multithreaded message rate between two nodes.
///
/// Paper shape: "MPI everywhere" and MPI+threads with logically parallel
/// communication (endpoints / tags+hints / comms over a VCI pool) scale with
/// workers; "MPI+threads (Original)" stays flat on its single channel.

#include "bench_common.h"
#include "workloads/msgrate.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 1(a): message rate, 2 nodes", "workers",
                              "million messages/s (virtual time)");
  return t;
}

/// Per-VCI transport snapshots captured at workers=4, one per mode: shows
/// 'Original' funneling everything through one channel while the parallel
/// mechanisms spread it.
std::vector<std::pair<std::string, tmpi::net::NetStatsSnapshot>>& telemetry() {
  static std::vector<std::pair<std::string, tmpi::net::NetStatsSnapshot>> v;
  return v;
}

void BM_MsgRate(benchmark::State& state, wl::MsgRateMode mode) {
  wl::MsgRateParams p;
  p.mode = mode;
  p.workers = static_cast<int>(state.range(0));
  p.msgs_per_worker = 2048;
  p.window = 64;
  p.msg_bytes = 8;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_msgrate(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  const double mrate = r.msg_rate() * 1e-6;
  state.counters["Mmsg_per_s"] = mrate;
  table().add(to_string(mode), p.workers, mrate);
  if (p.workers == 4) telemetry().emplace_back(to_string(mode), r.net);
  bench::collect_stats(std::string(to_string(mode)) + "/workers=" + std::to_string(p.workers),
                       r.net);
}

void register_all() {
  for (auto mode : {wl::MsgRateMode::kEverywhere, wl::MsgRateMode::kThreadsOriginal,
                    wl::MsgRateMode::kThreadsEndpoints, wl::MsgRateMode::kThreadsTags,
                    wl::MsgRateMode::kThreadsComms}) {
    auto* b = benchmark::RegisterBenchmark((std::string("fig1a/") + to_string(mode)).c_str(),
                                           BM_MsgRate, mode);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int workers : {1, 2, 4, 8, 16}) b->Arg(workers);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  for (const auto& [mode, snap] : telemetry()) {
    bench::print_channel_telemetry((mode + ", workers=4").c_str(), snap);
  }
  bench::note(
      "paper: 'Original' flat; everywhere/endpoints/tags/comms scale with workers "
      "(MPICH 4.0 on Skylake + Omni-Path)");
  return 0;
}
