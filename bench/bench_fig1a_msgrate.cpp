/// E1 — Fig. 1(a): multithreaded message rate between two nodes.
///
/// Paper shape: "MPI everywhere" and MPI+threads with logically parallel
/// communication (endpoints / tags+hints / comms over a VCI pool) scale with
/// workers; "MPI+threads (Original)" stays flat on its single channel.
///
/// `--pdes-compare` switches to the PDES twin-engine comparison (DESIGN.md
/// §12): the everywhere-mode run at 1/2/4/8 workers is timed in HOST
/// wall-clock under `exec_mode=serial` and `exec_mode=parallel`, the virtual
/// makespans are cross-checked (the engines must agree on simulated time),
/// and BENCH_pdes.json is emitted for the CI perf-smoke gate. The >= 2x
/// speedup gate at 8 workers is enforced only when the host actually has the
/// cores to show it (hardware_concurrency >= 8); smaller hosts record the
/// measurement with `gate_enforced: false` instead of failing spuriously.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "workloads/msgrate.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 1(a): message rate, 2 nodes", "workers",
                              "million messages/s (virtual time)");
  return t;
}

/// Per-VCI transport snapshots captured at workers=4, one per mode: shows
/// 'Original' funneling everything through one channel while the parallel
/// mechanisms spread it.
std::vector<std::pair<std::string, tmpi::net::NetStatsSnapshot>>& telemetry() {
  static std::vector<std::pair<std::string, tmpi::net::NetStatsSnapshot>> v;
  return v;
}

void BM_MsgRate(benchmark::State& state, wl::MsgRateMode mode) {
  wl::MsgRateParams p;
  p.mode = mode;
  p.workers = static_cast<int>(state.range(0));
  p.msgs_per_worker = 2048;
  p.window = 64;
  p.msg_bytes = 8;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_msgrate(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  const double mrate = r.msg_rate() * 1e-6;
  state.counters["Mmsg_per_s"] = mrate;
  table().add(to_string(mode), p.workers, mrate);
  if (p.workers == 4) telemetry().emplace_back(to_string(mode), r.net);
  bench::collect_stats(std::string(to_string(mode)) + "/workers=" + std::to_string(p.workers),
                       r.net);
}

void register_all() {
  for (auto mode : {wl::MsgRateMode::kEverywhere, wl::MsgRateMode::kThreadsOriginal,
                    wl::MsgRateMode::kThreadsEndpoints, wl::MsgRateMode::kThreadsTags,
                    wl::MsgRateMode::kThreadsComms}) {
    auto* b = benchmark::RegisterBenchmark((std::string("fig1a/") + to_string(mode)).c_str(),
                                           BM_MsgRate, mode);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int workers : {1, 2, 4, 8, 16}) b->Arg(workers);
  }
}

// ---------------------------------------------------------------------------
// PDES twin-engine comparison (`--pdes-compare`).

struct PdesRow {
  int workers = 0;
  double serial_ms = 0;
  double parallel_ms = 0;
  double speedup = 0;
  tmpi::net::Time serial_virtual_ns = 0;
  tmpi::net::Time parallel_virtual_ns = 0;
};

/// Best-of-N host wall-clock for one engine; also returns the virtual
/// makespan of the last run (identical across repeats by construction).
double time_msgrate(const wl::MsgRateParams& p, const char* mode, int repeats,
                    tmpi::net::Time* virtual_ns) {
  setenv("TMPI_EXEC_MODE", mode, 1);
  double best_ms = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const wl::RunResult res = wl::run_msgrate(p);
    const auto t1 = std::chrono::steady_clock::now();
    best_ms = std::min(best_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
    *virtual_ns = res.elapsed_ns;
  }
  unsetenv("TMPI_EXEC_MODE");
  return best_ms;
}

int run_pdes_compare() {
  const unsigned host_threads = std::thread::hardware_concurrency();
  // The speedup gate only means something when the delivery work can actually
  // spread across cores; on small hosts the run is informational.
  const bool gate_enforced = host_threads >= 8;
  constexpr double kGateSpeedup = 2.0;
  constexpr int kRepeats = 3;

  bench::FigureTable table("PDES twin-engine wall clock (everywhere mode)", "workers",
                           "host ms (best of 3)");
  std::vector<PdesRow> rows;
  bool ok = true;
  for (int workers : {1, 2, 4, 8}) {
    wl::MsgRateParams p;
    p.mode = wl::MsgRateMode::kEverywhere;
    p.workers = workers;
    p.msgs_per_worker = 2048;
    p.window = 64;
    p.msg_bytes = 8;

    PdesRow row;
    row.workers = workers;
    row.serial_ms = time_msgrate(p, "serial", kRepeats, &row.serial_virtual_ns);
    row.parallel_ms = time_msgrate(p, "parallel", kRepeats, &row.parallel_virtual_ns);
    row.speedup = row.parallel_ms > 0 ? row.serial_ms / row.parallel_ms : 0;
    rows.push_back(row);
    table.add("serial", workers, row.serial_ms);
    table.add("parallel", workers, row.parallel_ms);
    table.add("speedup", workers, row.speedup);

    // Engine-parity cross-check: the two engines must agree on simulated
    // time to within the documented host-order jitter (< 2%, DESIGN.md §6).
    const double sv = static_cast<double>(row.serial_virtual_ns);
    const double pv = static_cast<double>(row.parallel_virtual_ns);
    if (sv <= 0 || std::abs(sv - pv) / sv > 0.02) {
      std::fprintf(stderr,
                   "FATAL: virtual makespans diverge at workers=%d: serial=%llu parallel=%llu\n",
                   workers, static_cast<unsigned long long>(row.serial_virtual_ns),
                   static_cast<unsigned long long>(row.parallel_virtual_ns));
      ok = false;
    }
  }

  const double speedup_at_8 = rows.back().speedup;
  if (gate_enforced && speedup_at_8 < kGateSpeedup) {
    std::fprintf(stderr,
                 "FATAL: parallel speedup at 8 workers is %.2fx on a %u-thread host "
                 "(gate: >= %.1fx)\n",
                 speedup_at_8, host_threads, kGateSpeedup);
    ok = false;
  }

  table.print();
  bench::note(gate_enforced
                  ? "speedup gate >= 2x at 8 workers enforced (host has >= 8 hardware threads)"
                  : "speedup gate recorded but not enforced: host too small to spread delivery "
                    "work across cores");

  std::ofstream out("BENCH_pdes.json");
  out << "{\n  \"bench\": \"pdes_msgrate\",\n  \"unit\": \"ms\",\n"
      << "  \"host_threads\": " << host_threads << ",\n"
      << "  \"gate_enforced\": " << (gate_enforced ? "true" : "false") << ",\n"
      << "  \"gate_threshold\": 2.0,\n"
      << "  \"speedup_at_8\": " << speedup_at_8 << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PdesRow& r = rows[i];
    out << "    {\"workers\": " << r.workers << ", \"serial_ms\": " << r.serial_ms
        << ", \"parallel_ms\": " << r.parallel_ms << ", \"speedup\": " << r.speedup
        << ", \"serial_virtual_ns\": " << r.serial_virtual_ns
        << ", \"parallel_virtual_ns\": " << r.parallel_virtual_ns << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_pdes.json\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--pdes-compare") return run_pdes_compare();
  }
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  for (const auto& [mode, snap] : telemetry()) {
    bench::print_channel_telemetry((mode + ", workers=4").c_str(), snap);
  }
  bench::note(
      "paper: 'Original' flat; everywhere/endpoints/tags/comms scale with workers "
      "(MPICH 4.0 on Skylake + Omni-Path)");
  return 0;
}
