/// E14 — adaptive VCI rebalancing A/B harness (DESIGN.md §15).
///
/// The paper's mapping lesson (Lessons 1/2) assumes the user knows the hot
/// communicators up front. This bench measures what the runtime can recover
/// when they don't: 32 single-VCI stream communicators, one owner thread per
/// 4 streams (the communicator-per-thread idiom), carry skewed traffic — a
/// 4-stream hot plateau plus a light Zipf tail — whose hotness is
/// deliberately permuted so the naive static map (seq_no % num_vcis) lands
/// the four hot streams, owned by four DIFFERENT threads, on ONE VCI. Three
/// configurations run the identical workload:
///
///   - static-naive:  tmpi_adaptive off — today's default mapping.
///   - static-ideal:  adaptive plumbing on but the policy inert (huge
///                    window); the bench pins each comm's remap cell from
///                    the rp::lpt_assignment oracle computed on the true
///                    per-stream message counts. This is the mirrored-map
///                    upper bound a clairvoyant user would write by hand.
///   - adaptive:      the telemetry-driven policy engine with a finite
///                    window, discovering the same placement online.
///
/// Phase B re-permutes the weights mid-run (w'_h = w_{(h+16)%32}) so the
/// hot set moves to a different naive-colliding VCI — the policy must
/// re-converge, not just get lucky once. The good maps give each hot owner
/// its own channel while the naive collision funnels all four through one —
/// a wide structural gap, so the gates grade the policy's placement, not
/// its luck against host scheduling noise in any single epoch.
///
/// Self-gates (FATAL + exit 1 on failure):
///   adaptive msgrate >= 1.5x static-naive  (both phases, skewed traffic)
///   adaptive msgrate >= 0.6x static-ideal  (both phases)
///   adaptive world performed >= 1 rebalance
///
/// Emits BENCH_adaptive.json for the CI perf-smoke gate (tools/bench_validate).
/// `--quick` trims the message budget for CI runners.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/planner.h"
#include "tmpi/rebalancer.h"
#include "tmpi/tmpi.h"

namespace {

using namespace tmpi;

constexpr int kStreams = 32;
constexpr int kVcis = 8;
constexpr int kThreads = 8;
constexpr int kMsgBytes = 64;  // eager (threshold 64 KiB): rate, not bandwidth

/// Stream h -> communicator index. A bijection chosen so the four hottest
/// streams of phase A (h = 0..3) land on comms {0, 8, 16, 24} — which the
/// naive map (seq_no % 8, dup #c has seq c+1) all places on VCI 1. Phase B's
/// shifted weights make streams 16..19 hottest -> comms {4, 12, 20, 28} ->
/// all on naive VCI 5.
int comm_of_stream(int h) { return (h % 4) * kVcis + h / 4; }
int stream_of_comm(int c) { return (c % kVcis) * 4 + c / kVcis; }

/// Per-stream message counts for one phase. The four hottest streams form a
/// plateau of `base` messages each; the rest carry a light Zipf tail. The
/// plateau shape is what makes mapping quality measurable: four equally-hot
/// streams owned by four different threads are thread-parallel under a good
/// map (makespan ~ base messages) but channel-serial under the naive
/// collision (makespan ~ 4x base messages). The tail is deliberately light
/// (a quarter Zipf weight): tail streams are where different owner threads'
/// clocks couple through shared channels, and heavy coupling drags every
/// mapping toward one global serialization frontier, shrinking the very gap
/// the bench measures. Phase B rotates hotness by 16 streams so the hot set
/// moves to a different colliding VCI.
struct Counts {
  std::array<int, kStreams> per_stream{};
  std::uint64_t total = 0;
};

constexpr int kHotStreams = 4;

Counts make_counts(int phase, int base) {
  Counts c;
  for (int h = 0; h < kStreams; ++h) {
    const int r = phase == 0 ? h : (h + kStreams / 2) % kStreams;
    c.per_stream[h] =
        r < kHotStreams
            ? base
            : std::max(1, static_cast<int>(std::lround(base / (4.0 * (r + 1)))));
    c.total += static_cast<std::uint64_t>(c.per_stream[h]);
  }
  return c;
}

/// Per-thread work list: contiguous bursts of (stream, count).
struct Seg {
  int stream = 0;
  int count = 0;
};
using ThreadPlan = std::vector<Seg>;

/// Thread t owns streams h with h % kThreads == t — the paper's
/// communicator-per-thread idiom — and bursts them hottest-first.
///
/// Ownership must be disjoint. A channel charge max-syncs the caller's
/// clock with the channel's busy horizon, so two threads that share a
/// stream couple their clocks through its channel — and a CHAIN of such
/// sharings (t0~t1 on one stream, t1~t2 on another, ...) transitively
/// collapses every clock into one global frontier that serializes the run
/// identically under any mapping. With disjoint ownership the only
/// cross-thread coupling left is channel collision itself — exactly the
/// thing the mapping policy is being graded on: the naive map lands the
/// four hot owners on ONE channel horizon (4x base messages, serial), a
/// good map gives each hot owner its own channel (base messages each, in
/// parallel across threads).
std::array<ThreadPlan, kThreads> make_plan(const Counts& counts) {
  std::array<ThreadPlan, kThreads> plan;
  for (int t = 0; t < kThreads; ++t) {
    for (int h = t; h < kStreams; h += kThreads) {
      plan[static_cast<std::size_t>(t)].push_back(Seg{h, counts.per_stream[h]});
    }
    std::sort(plan[static_cast<std::size_t>(t)].begin(), plan[static_cast<std::size_t>(t)].end(),
              [](const Seg& a, const Seg& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.stream < b.stream;
              });
  }
  return plan;
}

/// Drive one phase of traffic in three epochs: rank 1's threads PREPOST
/// every receive, rank 0's threads burst all sends (eager, nothing blocks),
/// rank 1's threads then wait out the completions. Preposting is the MPI
/// idiom the paper's workloads use, and here it is also what makes the
/// measurement meaningful twice over: separating the epochs keeps virtual
/// time deterministic (racing posts against deliveries would make the
/// matched-vs-unexpected split a host-scheduling artifact), and a posted
/// match charges its queue-scan to the message's own arrival clock — unlike
/// an unexpected-queue drain, whose scans pile up on the receiving thread's
/// clock quadratically in the queue depth. The elapsed delta therefore
/// tracks the sender-side makespan — the quantity the mapping policy
/// controls — plus one wire latency of completion tail.
void drive_phase(World& w, std::array<std::vector<Comm>, 2>& comms, const Counts& counts) {
  const std::array<ThreadPlan, kThreads> plan = make_plan(counts);
  std::array<std::vector<Request>, kThreads> reqs;
  std::array<std::vector<std::array<std::byte, kMsgBytes>>, kThreads> bufs;
  w.run([&](Rank& rk) {
    if (rk.rank() != 1) return;
    auto& cv = comms[1];
    rk.parallel(kThreads, [&cv, &plan, &reqs, &bufs](int tid) {
      const ThreadPlan& mine = plan[static_cast<std::size_t>(tid)];
      std::size_t total = 0;
      for (const Seg& seg : mine) total += static_cast<std::size_t>(seg.count);
      bufs[static_cast<std::size_t>(tid)].resize(total);
      reqs[static_cast<std::size_t>(tid)].reserve(total);
      std::size_t i = 0;
      for (const Seg& seg : mine) {
        const Comm& c = cv[static_cast<std::size_t>(comm_of_stream(seg.stream))];
        for (int m = 0; m < seg.count; ++m) {
          reqs[static_cast<std::size_t>(tid)].push_back(
              irecv(bufs[static_cast<std::size_t>(tid)][i++].data(), kMsgBytes, kByte, 0, 0, c));
        }
      }
    });
  });
  const net::Time e0 = w.elapsed();
  w.run([&](Rank& rk) {
    if (rk.rank() != 0) return;
    auto& cv = comms[0];
    rk.parallel(kThreads, [&cv, &plan](int tid) {
      std::array<std::byte, kMsgBytes> buf{};
      for (const Seg& seg : plan[static_cast<std::size_t>(tid)]) {
        const Comm& c = cv[static_cast<std::size_t>(comm_of_stream(seg.stream))];
        for (int m = 0; m < seg.count; ++m) {
          (void)send(buf.data(), kMsgBytes, kByte, 1, 0, c);
        }
      }
    });
  });
  const net::Time e1 = w.elapsed();
  w.run([&](Rank& rk) {
    if (rk.rank() != 1) return;
    rk.parallel(kThreads, [&reqs](int tid) {
      for (Request& r : reqs[static_cast<std::size_t>(tid)]) (void)r.wait();
    });
  });
  const net::Time e2 = w.elapsed();
  if (std::getenv("BENCH_DEBUG_EPOCHS") != nullptr) {
    std::fprintf(stderr, "epoch dbg: send_growth=%llu wait_growth=%llu\n",
                 static_cast<unsigned long long>(e1 - e0),
                 static_cast<unsigned long long>(e2 - e1));
  }
}

/// Pin every stream comm's remap cell to the LPT oracle computed on the true
/// per-comm counts — the "mirrored map" a clairvoyant user would hand-write.
/// Called between run() calls (queues drained), so no migration is needed.
void pin_ideal(std::array<std::vector<Comm>, 2>& comms, const Counts& counts) {
  std::vector<std::uint64_t> weights(kStreams);
  for (int c = 0; c < kStreams; ++c) {
    weights[static_cast<std::size_t>(c)] =
        static_cast<std::uint64_t>(counts.per_stream[stream_of_comm(c)]);
  }
  const std::vector<int> bins = rp::lpt_assignment(weights, kVcis);
  for (int c = 0; c < kStreams; ++c) {
    detail::CommImpl* impl = comms[0][static_cast<std::size_t>(c)].impl();
    if (impl->remap == nullptr) {
      std::fprintf(stderr, "FATAL: ideal mode comm %d has no remap cell\n", c);
      std::exit(1);
    }
    impl->remap->vci.store(bins[static_cast<std::size_t>(c)], std::memory_order_release);
  }
}

enum class Mode { kNaive, kIdeal, kAdaptive };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNaive: return "static-naive";
    case Mode::kIdeal: return "static-ideal";
    default: return "adaptive";
  }
}

struct PhaseResult {
  std::uint64_t msgs = 0;
  net::Time virtual_ns = 0;
  double msgrate = 0;  ///< msgs per virtual second
};

struct ModeResult {
  PhaseResult phase[2];
  std::uint64_t rebalances = 0;
  std::uint64_t migrated_entries = 0;
  double last_imbalance = 0;
};

ModeResult run_mode(Mode mode, int base, net::Time window_ns) {
  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;  // two nodes: traffic crosses the fabric
  wc.num_vcis = kVcis;
  if (mode != Mode::kNaive) {
    wc.rebalance_info.set("tmpi_adaptive", "1");
    const net::Time w = mode == Mode::kIdeal ? net::Time{1000000000000000} : window_ns;
    wc.rebalance_info.set("tmpi_rebalance_window_ns", std::to_string(w));
    wc.rebalance_info.set("tmpi_imbalance_threshold", "2.0");
  }
  World w(wc);

  std::array<std::vector<Comm>, 2> comms;
  w.run([&comms](Rank& rk) {
    auto& v = comms[static_cast<std::size_t>(rk.rank())];
    v.reserve(kStreams);
    for (int i = 0; i < kStreams; ++i) v.push_back(rk.world_comm().dup());
  });

  ModeResult out;
  for (int phase = 0; phase < 2; ++phase) {
    const Counts warm = make_counts(phase, base / 2);
    const Counts counts = make_counts(phase, base);
    if (mode == Mode::kIdeal) pin_ideal(comms, counts);
    // Warmup: lets the adaptive policy observe the (new) skew and converge;
    // run for every mode so all three measure the same steady-state shape.
    drive_phase(w, comms, warm);
    const net::Time t0 = w.elapsed();
    drive_phase(w, comms, counts);
    const net::Time t1 = w.elapsed();
    PhaseResult& pr = out.phase[phase];
    pr.msgs = counts.total;
    pr.virtual_ns = t1 - t0;
    pr.msgrate = pr.virtual_ns > 0 ? double(pr.msgs) * 1e9 / double(pr.virtual_ns) : 0.0;
  }
  const net::NetStatsSnapshot s = w.snapshot();
  out.rebalances = s.rebalances;
  out.migrated_entries = s.migrated_entries;
  if (const detail::Rebalancer* rb = w.rebalancer()) {
    out.last_imbalance = rb->last_imbalance();
  }
  bench::collect_stats(mode_name(mode), s);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_stats_flag(&argc, argv);
  int base = 800;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) base = 200;
    if (std::strcmp(argv[i], "--base") == 0 && i + 1 < argc) base = std::atoi(argv[++i]);
  }

  // Naive first: its measured phase-A duration sizes the adaptive window so
  // ~40 policy epochs fit in a measured run regardless of --quick scaling.
  // Short windows matter at the phase flip: the policy can only react one
  // window boundary after the traffic shifts, and a window sized in the
  // tens of epochs per phase keeps that reaction inside the warmup pass.
  const ModeResult naive = run_mode(Mode::kNaive, base, 0);
  const net::Time window_ns = std::max<net::Time>(1000, naive.phase[0].virtual_ns / 40);
  const ModeResult ideal = run_mode(Mode::kIdeal, base, 0);
  const ModeResult adaptive = run_mode(Mode::kAdaptive, base, window_ns);

  std::printf("\n%-14s %8s %14s %14s\n", "mode/phase", "msgs", "virtual_us", "msgs_per_sec");
  const ModeResult* all[] = {&naive, &ideal, &adaptive};
  const Mode modes[] = {Mode::kNaive, Mode::kIdeal, Mode::kAdaptive};
  for (int i = 0; i < 3; ++i) {
    for (int p = 0; p < 2; ++p) {
      const PhaseResult& pr = all[i]->phase[p];
      std::printf("%-12s/%c %8llu %14.1f %14.0f\n", mode_name(modes[i]), 'A' + p,
                  static_cast<unsigned long long>(pr.msgs),
                  double(pr.virtual_ns) * 1e-3, pr.msgrate);
    }
  }
  std::printf("adaptive: rebalances=%llu migrated_entries=%llu last_imbalance=%.2f\n",
              static_cast<unsigned long long>(adaptive.rebalances),
              static_cast<unsigned long long>(adaptive.migrated_entries),
              adaptive.last_imbalance);
  bench::print_collected_stats();

  const double over_naive_a = adaptive.phase[0].msgrate / naive.phase[0].msgrate;
  const double over_naive_b = adaptive.phase[1].msgrate / naive.phase[1].msgrate;
  const double over_ideal_a = adaptive.phase[0].msgrate / ideal.phase[0].msgrate;
  const double over_ideal_b = adaptive.phase[1].msgrate / ideal.phase[1].msgrate;

  bool gates_ok = true;
  const auto gate = [&gates_ok](const char* what, double got, double need) {
    if (got < need) {
      std::fprintf(stderr, "FATAL: %s = %.3f, need >= %.3f\n", what, got, need);
      gates_ok = false;
    }
  };
  gate("adaptive_over_naive_A", over_naive_a, 1.5);
  gate("adaptive_over_naive_B", over_naive_b, 1.5);
  gate("adaptive_over_ideal_A", over_ideal_a, 0.6);
  gate("adaptive_over_ideal_B", over_ideal_b, 0.6);
  if (adaptive.rebalances < 1) {
    std::fprintf(stderr, "FATAL: adaptive world performed no rebalances\n");
    gates_ok = false;
  }

  bench::BenchJson doc("vci_adaptive");
  doc.root()
      .set("streams", kStreams)
      .set("vcis", kVcis)
      .set("threads", kThreads)
      .set("msg_bytes", kMsgBytes)
      .set("hot_streams", kHotStreams)
      .set("base", base)
      .set("window_ns", static_cast<std::uint64_t>(window_ns))
      .set("adaptive_over_naive_A", over_naive_a)
      .set("adaptive_over_naive_B", over_naive_b)
      .set("adaptive_over_ideal_A", over_ideal_a)
      .set("adaptive_over_ideal_B", over_ideal_b)
      .set("rebalances", adaptive.rebalances)
      .set("migrated_entries", adaptive.migrated_entries)
      .set("last_imbalance", adaptive.last_imbalance)
      .set("gates_ok", gates_ok);
  for (int i = 0; i < 3; ++i) {
    for (int p = 0; p < 2; ++p) {
      const PhaseResult& pr = all[i]->phase[p];
      doc.add_row("rows")
          .set("mode", mode_name(modes[i]))
          .set("phase", p == 0 ? "A" : "B")
          .set("msgs", pr.msgs)
          .set("virtual_ns", static_cast<std::uint64_t>(pr.virtual_ns))
          .set("msgrate_per_s", pr.msgrate);
    }
  }
  doc.write_file("BENCH_adaptive.json");

  if (!gates_ok) return 1;
  std::printf("all adaptive-mapping gates passed\n");
  return 0;
}
