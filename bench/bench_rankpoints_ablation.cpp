/// E12 — §IV ablation: the Rankpoints session abstraction over each backend.
///
/// The same all-streams pairwise exchange runs through rp::Session on every
/// backend that can express it; setup cost (objects/hints) comes from the
/// backend's own accounting. This is the paper's proposed "abstraction on
/// top of MPI", measured.

#include <atomic>

#include "bench_common.h"
#include "core/session.h"
#include "tmpi/tmpi.h"

namespace {

bench::FigureTable& time_table() {
  static bench::FigureTable t("Rankpoints session: pairwise stream exchange, 2 processes",
                              "streams", "time (us, virtual)");
  return t;
}

bench::FigureTable& cost_table() {
  static bench::FigureTable t("Rankpoints session: setup cost", "streams",
                              "objects / hints");
  return t;
}

constexpr int kMsgs = 256;
constexpr std::size_t kBytes = 64;

/// Pairwise exchange through dynamic sends (comms/tags/endpoints).
tmpi::net::Time run_dynamic(rp::Backend backend, int streams) {
  tmpi::WorldConfig wc;
  wc.nranks = 2;
  wc.num_vcis = streams;
  tmpi::World world(wc);
  world.run([&](tmpi::Rank& rank) {
    rp::SessionConfig cfg;
    cfg.backend = backend;
    cfg.streams = streams;
    rp::Session s = rp::Session::create(rank, cfg);
    if (rank.rank() == 0) {
      cost_table().add(std::string(to_string(backend)) + "/objects", streams,
                       s.setup_cost().setup_objects);
      cost_table().add(std::string(to_string(backend)) + "/impl_hints", streams,
                       s.setup_cost().impl_specific_hints);
    }
    rank.parallel(streams, [&](int tid) {
      rp::Channel ch = s.channel(tid);
      const rp::PeerAddr peer{1 - rank.rank(), tid};
      constexpr int kWindow = 16;
      std::vector<std::byte> out(kBytes, std::byte{7});
      std::vector<std::vector<std::byte>> in(kWindow, std::vector<std::byte>(kBytes));
      std::vector<tmpi::Request> reqs(2 * kWindow);
      for (int round = 0; round < kMsgs / kWindow; ++round) {
        for (int i = 0; i < kWindow; ++i) {
          reqs[static_cast<std::size_t>(i)] =
              ch.irecv(in[static_cast<std::size_t>(i)].data(), kBytes, peer, 1);
        }
        for (int i = 0; i < kWindow; ++i) {
          reqs[static_cast<std::size_t>(kWindow + i)] = ch.isend(out.data(), kBytes, peer, 1);
        }
        tmpi::wait_all(reqs.data(), reqs.size());
      }
    });
  });
  bench::collect_stats(std::string(to_string(backend)) + "/streams=" + std::to_string(streams),
                       world.snapshot());
  return world.elapsed();
}

/// The same exchange through persistent partitioned channels.
tmpi::net::Time run_partitioned(int streams) {
  tmpi::WorldConfig wc;
  wc.nranks = 2;
  wc.num_vcis = streams;
  tmpi::World world(wc);
  world.run([&](tmpi::Rank& rank) {
    rp::SessionConfig cfg;
    cfg.backend = rp::Backend::kPartitioned;
    cfg.streams = streams;
    rp::Session s = rp::Session::create(rank, cfg);
    if (rank.rank() == 0) {
      cost_table().add("partitioned/objects", streams, s.setup_cost().setup_objects);
      cost_table().add("partitioned/impl_hints", streams, s.setup_cost().impl_specific_hints);
    }
    // One partitioned channel per direction; streams partitions each.
    std::vector<std::byte> out(kBytes * static_cast<std::size_t>(streams), std::byte{7});
    std::vector<std::byte> in(out.size());
    rp::Channel ch = s.channel(0);
    const rp::PeerAddr peer{1 - rank.rank(), 0};
    tmpi::Request sreq = ch.persistent_send(out.data(), streams, kBytes, peer, 1);
    tmpi::Request rreq = ch.persistent_recv(in.data(), streams, kBytes, peer, 1);
    for (int i = 0; i < kMsgs; ++i) {
      tmpi::start(sreq);
      tmpi::start(rreq);
      rank.parallel(streams, [&](int tid) {
        tmpi::pready(tid, sreq);
        tmpi::await_partition(rreq, tid);
      });
      sreq.wait();
      rreq.wait();
    }
  });
  bench::collect_stats("partitioned/streams=" + std::to_string(streams), world.snapshot());
  return world.elapsed();
}

void BM_Session(benchmark::State& state, rp::Backend backend) {
  const int streams = static_cast<int>(state.range(0));
  tmpi::net::Time elapsed = 0;
  for (auto _ : state) {
    elapsed = (backend == rp::Backend::kPartitioned) ? run_partitioned(streams)
                                                     : run_dynamic(backend, streams);
    bench::set_virtual_time(state, elapsed);
  }
  time_table().add(to_string(backend), streams, static_cast<double>(elapsed) * 1e-3);
}

void register_all() {
  for (auto backend : {rp::Backend::kComms, rp::Backend::kTags, rp::Backend::kEndpoints,
                       rp::Backend::kPartitioned}) {
    auto* b = benchmark::RegisterBenchmark((std::string("rankpoints/") + to_string(backend)).c_str(),
                                           BM_Session, backend);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int s : {2, 4, 8}) b->Arg(s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  time_table().print();
  cost_table().print();
  bench::note(
      "paper SIV: one abstraction, pluggable MPI-4.0/endpoints backends; endpoints need "
      "linear objects and zero impl-specific hints");
  return 0;
}
