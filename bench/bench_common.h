#ifndef BENCH_COMMON_H
#define BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/virtual_clock.h"
#include "workloads/common.h"

/// \file bench_common.h
/// Shared plumbing for the per-figure benchmark binaries.
///
/// Every benchmark reports *virtual* time (google-benchmark manual time), so
/// results are deterministic and host-independent; after the benchmark run
/// each binary prints its figure/table in the layout the paper uses, plus
/// the paper-claimed numbers for side-by-side comparison (EXPERIMENTS.md
/// records both).

namespace bench {

/// Report a workload's virtual duration as the iteration time.
inline void set_virtual_time(benchmark::State& state, tmpi::net::Time ns) {
  state.SetIterationTime(static_cast<double>(ns) * 1e-9);
}

/// Collects (series, x) -> value points and prints a paper-style table:
/// rows are x values, columns are series.
class FigureTable {
 public:
  FigureTable(std::string title, std::string xlabel, std::string vlabel)
      : title_(std::move(title)), xlabel_(std::move(xlabel)), vlabel_(std::move(vlabel)) {}

  void add(const std::string& series, double x, double value) {
    if (std::find(series_.begin(), series_.end(), series) == series_.end()) {
      series_.push_back(series);
    }
    values_[{x, series}] = value;
    xs_.insert(x);
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("values: %s\n", vlabel_.c_str());
    std::printf("%-14s", xlabel_.c_str());
    for (const auto& s : series_) std::printf(" %18s", s.c_str());
    std::printf("\n");
    for (double x : xs_) {
      std::printf("%-14g", x);
      for (const auto& s : series_) {
        auto it = values_.find({x, s});
        if (it == values_.end()) {
          std::printf(" %18s", "-");
        } else {
          std::printf(" %18.4g", it->second);
        }
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::string xlabel_;
  std::string vlabel_;
  std::vector<std::string> series_;
  std::set<double> xs_;
  std::map<std::pair<double, std::string>, double> values_;
};

/// Print a free-form note line (paper-claimed comparisons).
inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  note: ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

}  // namespace bench

#endif  // BENCH_COMMON_H
