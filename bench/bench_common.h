#ifndef BENCH_COMMON_H
#define BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/virtual_clock.h"
#include "workloads/common.h"

/// \file bench_common.h
/// Shared plumbing for the per-figure benchmark binaries.
///
/// Every benchmark reports *virtual* time (google-benchmark manual time), so
/// results are deterministic and host-independent; after the benchmark run
/// each binary prints its figure/table in the layout the paper uses, plus
/// the paper-claimed numbers for side-by-side comparison (EXPERIMENTS.md
/// records both).

namespace bench {

/// Report a workload's virtual duration as the iteration time.
inline void set_virtual_time(benchmark::State& state, tmpi::net::Time ns) {
  state.SetIterationTime(static_cast<double>(ns) * 1e-9);
}

/// Collects (series, x) -> value points and prints a paper-style table:
/// rows are x values, columns are series.
class FigureTable {
 public:
  FigureTable(std::string title, std::string xlabel, std::string vlabel)
      : title_(std::move(title)), xlabel_(std::move(xlabel)), vlabel_(std::move(vlabel)) {}

  void add(const std::string& series, double x, double value) {
    if (std::find(series_.begin(), series_.end(), series) == series_.end()) {
      series_.push_back(series);
    }
    values_[{x, series}] = value;
    xs_.insert(x);
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("values: %s\n", vlabel_.c_str());
    std::printf("%-14s", xlabel_.c_str());
    for (const auto& s : series_) std::printf(" %18s", s.c_str());
    std::printf("\n");
    for (double x : xs_) {
      std::printf("%-14g", x);
      for (const auto& s : series_) {
        auto it = values_.find({x, s});
        if (it == values_.end()) {
          std::printf(" %18s", "-");
        } else {
          std::printf(" %18.4g", it->second);
        }
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::string xlabel_;
  std::string vlabel_;
  std::vector<std::string> series_;
  std::set<double> xs_;
  std::map<std::pair<double, std::string>, double> values_;
};

/// Print the transport layer's per-VCI telemetry: how traffic spread (or
/// failed to spread) across channels — the quantity the paper is about.
/// `max_rows` caps the channel listing for large worlds (busiest first).
inline void print_channel_telemetry(const char* title, const tmpi::net::NetStatsSnapshot& s,
                                    std::size_t max_rows = 16) {
  std::printf("\n--- transport telemetry: %s ---\n", title);
  std::printf("messages=%llu bytes=%llu rendezvous=%llu unexpected=%llu rma=%llu "
              "channel_ops=%llu\n",
              static_cast<unsigned long long>(s.messages),
              static_cast<unsigned long long>(s.bytes),
              static_cast<unsigned long long>(s.rendezvous_messages),
              static_cast<unsigned long long>(s.unexpected_messages),
              static_cast<unsigned long long>(s.rma_ops),
              static_cast<unsigned long long>(s.channel_ops));
  if (s.drops + s.corrupts + s.delays + s.retransmits + s.timeouts + s.failovers != 0) {
    std::printf("faults: drops=%llu corrupts=%llu delays=%llu retransmits=%llu timeouts=%llu "
                "failovers=%llu\n",
                static_cast<unsigned long long>(s.drops),
                static_cast<unsigned long long>(s.corrupts),
                static_cast<unsigned long long>(s.delays),
                static_cast<unsigned long long>(s.retransmits),
                static_cast<unsigned long long>(s.timeouts),
                static_cast<unsigned long long>(s.failovers));
  }
  if (s.proc_failures + s.revokes + s.shrinks != 0) {
    std::printf("recovery: proc_failures=%llu revokes=%llu shrinks=%llu\n",
                static_cast<unsigned long long>(s.proc_failures),
                static_cast<unsigned long long>(s.revokes),
                static_cast<unsigned long long>(s.shrinks));
  }
  if (s.credit_stalls + s.overflows + s.watchdog_trips + s.deadlocks + s.unexpected_hwm != 0) {
    std::printf("overload: credit_stalls=%llu overflows=%llu watchdog_trips=%llu "
                "deadlocks=%llu unexpected_hwm=%llu\n",
                static_cast<unsigned long long>(s.credit_stalls),
                static_cast<unsigned long long>(s.overflows),
                static_cast<unsigned long long>(s.watchdog_trips),
                static_cast<unsigned long long>(s.deadlocks),
                static_cast<unsigned long long>(s.unexpected_hwm));
  }
  if (s.bucket_hits + s.bucket_misses + s.wildcard_fallbacks != 0) {
    std::printf("matching: bucket_hits=%llu bucket_misses=%llu wildcard_fallbacks=%llu "
                "match_probes=%llu\n",
                static_cast<unsigned long long>(s.bucket_hits),
                static_cast<unsigned long long>(s.bucket_misses),
                static_cast<unsigned long long>(s.wildcard_fallbacks),
                static_cast<unsigned long long>(s.match_probes));
  }
  std::printf("message sizes (log2 histogram, non-empty buckets): ");
  for (int b = 0; b < tmpi::net::kMsgSizeBuckets; ++b) {
    const auto n = s.size_hist[static_cast<std::size_t>(b)];
    if (n != 0) {
      std::printf("[%s%dB]=%llu ", b == 0 ? "" : "<=2^", b == 0 ? 0 : b,
                  static_cast<unsigned long long>(n));
    }
  }
  std::printf("\n");

  std::vector<tmpi::net::ChannelStatsSnapshot> ch = s.channels;
  std::sort(ch.begin(), ch.end(), [](const auto& a, const auto& b) {
    return a.injections + a.rx_ops > b.injections + b.rx_ops;
  });
  std::printf("%-6s %-5s %10s %10s %10s %10s %12s %12s %8s %8s\n", "rank", "vci", "inject", "rx",
              "deposits", "locks", "contended", "busy_ns", "faults", "retx");
  std::size_t shown = 0;
  for (const auto& c : ch) {
    if (c.injections + c.rx_ops + c.lock_acquisitions == 0) continue;
    if (shown++ == max_rows) {
      std::printf("  ... %zu more active channels\n", ch.size() - max_rows);
      break;
    }
    std::printf("%-6d %-5d %10llu %10llu %10llu %10llu %12llu %12llu %8llu %8llu\n", c.rank,
                c.vci, static_cast<unsigned long long>(c.injections),
                static_cast<unsigned long long>(c.rx_ops),
                static_cast<unsigned long long>(c.deposits),
                static_cast<unsigned long long>(c.lock_acquisitions),
                static_cast<unsigned long long>(c.contended_acquisitions),
                static_cast<unsigned long long>(c.busy_ns),
                static_cast<unsigned long long>(c.drops + c.corrupts + c.delays + c.timeouts),
                static_cast<unsigned long long>(c.retransmits));
  }
  if (shown == 0) std::printf("  (no channel traffic)\n");

  // Per-op latency percentiles, present when the run traced (DESIGN.md §9:
  // World::snapshot() computes them from the recorder's spans).
  if (!s.op_latency.empty()) {
    std::printf("op latency (virtual ns, from trace spans):\n");
    std::printf("  %-12s %10s %8s %10s %10s %10s\n", "op", "count", "errors", "p50", "p90",
                "p99");
    for (const auto& ol : s.op_latency) {
      std::printf("  %-12s %10llu %8llu %10llu %10llu %10llu\n", ol.op.c_str(),
                  static_cast<unsigned long long>(ol.count),
                  static_cast<unsigned long long>(ol.errors),
                  static_cast<unsigned long long>(ol.p50),
                  static_cast<unsigned long long>(ol.p90),
                  static_cast<unsigned long long>(ol.p99));
    }
  }
}

/// --stats flag (satellite of DESIGN.md §9): every bench binary accepts
/// `--stats` and then prints the per-VCI channel table + size histogram for
/// each snapshot the benchmark handed to collect_stats(). Off by default so
/// figure output stays uncluttered.
inline bool& stats_requested() {
  static bool on = false;
  return on;
}

/// Strip `--stats` from argv before benchmark::Initialize (google-benchmark
/// rejects flags it does not know).
inline void parse_stats_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--stats") {
      stats_requested() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

namespace detail {
inline std::vector<std::pair<std::string, tmpi::net::NetStatsSnapshot>>& collected_stats() {
  static std::vector<std::pair<std::string, tmpi::net::NetStatsSnapshot>> v;
  return v;
}
}  // namespace detail

/// Stash a labelled snapshot for the end-of-run `--stats` report. No-op
/// (and no storage) when --stats was not given.
inline void collect_stats(const std::string& label, const tmpi::net::NetStatsSnapshot& s) {
  if (!stats_requested()) return;
  detail::collected_stats().emplace_back(label, s);
}

/// Print every collected snapshot. Call at the end of main(); quiet when
/// --stats was not given or nothing was collected.
inline void print_collected_stats(std::size_t max_rows = 16) {
  if (!stats_requested()) return;
  for (const auto& [label, snap] : detail::collected_stats()) {
    print_channel_telemetry(label.c_str(), snap, max_rows);
  }
  if (detail::collected_stats().empty()) {
    std::printf("\n--stats: no snapshots collected by this benchmark\n");
  }
}

// --- BENCH_*.json emission ---------------------------------------------------

/// One flat JSON object: ordered (key, pre-encoded value) pairs. Keys are
/// identifier-style and values are numbers / short labels, so no escaping.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& set(const std::string& key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& set(const std::string& key, int v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  JsonObject& set(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + v + "\"");
    return *this;
  }
  JsonObject& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }

  /// One `"k": v` line per field; `trailing_comma` also commas the last.
  void emit_fields(std::FILE* f, const char* pad, bool trailing_comma) const {
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      const bool last = i + 1 == fields_.size();
      std::fprintf(f, "%s\"%s\": %s%s\n", pad, fields_[i].first.c_str(),
                   fields_[i].second.c_str(), (!last || trailing_comma) ? "," : "");
    }
  }
  /// The whole object on one line: `{"k": v, ...}`.
  void emit_inline(std::FILE* f) const {
    std::fputc('{', f);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) std::fputs(", ", f);
      std::fprintf(f, "\"%s\": %s", fields_[i].first.c_str(), fields_[i].second.c_str());
    }
    std::fputc('}', f);
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The common BENCH_*.json path: scalar summary fields plus named arrays of
/// flat rows, written in insertion order. Every bench binary that emits a
/// machine-checkable artifact (gated by tools/bench_validate in CI) builds
/// it through this one writer, so quoting, number formatting, and layout
/// cannot drift between benches.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench_name) { root_.set("bench", bench_name); }

  /// Top-level scalar fields (gate verdicts, config echoes, ratios).
  JsonObject& root() { return root_; }

  /// Append one row to the named top-level array, creating it on first use.
  JsonObject& add_row(const std::string& array_name) {
    for (auto& [name, rows] : arrays_) {
      if (name == array_name) {
        rows.emplace_back();
        return rows.back();
      }
    }
    arrays_.emplace_back(array_name, std::vector<JsonObject>{});
    return arrays_.back().second.emplace_back();
  }

  /// Write the document; returns false (and prints to stderr) on I/O error.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fputs("{\n", f);
    root_.emit_fields(f, "  ", /*trailing_comma=*/!arrays_.empty());
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
      const auto& [name, rows] = arrays_[a];
      std::fprintf(f, "  \"%s\": [\n", name.c_str());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        std::fputs("    ", f);
        rows[i].emit_inline(f);
        std::fputs(i + 1 == rows.size() ? "\n" : ",\n", f);
      }
      std::fprintf(f, "  ]%s\n", a + 1 == arrays_.size() ? "" : ",");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  JsonObject root_;
  std::vector<std::pair<std::string, std::vector<JsonObject>>> arrays_;
};

/// Print a free-form note line (paper-claimed comparisons).
inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  note: ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

}  // namespace bench

#endif  // BENCH_COMMON_H
