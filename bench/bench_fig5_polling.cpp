/// E6 — Fig. 5 + Lesson 5: the event runtime's polling thread.
///
/// With communicators the polling thread iterates the task threads'
/// communicators (head-of-line blocking + sweep overhead); with endpoints it
/// drains one wildcard queue on its own endpoint. The paper cites Legion's
/// polling thread processing events 1.63x slower with communicators.

#include "bench_common.h"
#include "workloads/event_runtime.h"

namespace {

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 5: polling-thread event processing, 4 processes",
                              "task threads", "ns per event (virtual)");
  return t;
}

double g_comms_ns_per_event = 0;
double g_eps_ns_per_event = 0;

void BM_Polling(benchmark::State& state, wl::EventMech mech) {
  wl::EventParams p;
  p.mech = mech;
  p.nranks = 4;
  p.task_threads = static_cast<int>(state.range(0));
  p.events_per_thread = 255;
  p.msg_bytes = 64;
  wl::RunResult r;
  for (auto _ : state) {
    r = wl::run_event_runtime(p);
    bench::set_virtual_time(state, r.elapsed_ns);
  }
  const double ns_per_event =
      static_cast<double>(r.elapsed_ns) / (static_cast<double>(r.aux) / p.nranks);
  state.counters["ns_per_event"] = ns_per_event;
  table().add(to_string(mech), p.task_threads, ns_per_event);
  bench::collect_stats(
      std::string(to_string(mech)) + "/threads=" + std::to_string(p.task_threads), r.net);
  if (p.task_threads == 8) {
    if (mech == wl::EventMech::kComms) g_comms_ns_per_event = ns_per_event;
    if (mech == wl::EventMech::kEndpoints) g_eps_ns_per_event = ns_per_event;
  }
}

void register_all() {
  for (auto mech : {wl::EventMech::kComms, wl::EventMech::kTags, wl::EventMech::kEndpoints}) {
    auto* b = benchmark::RegisterBenchmark((std::string("fig5/") + to_string(mech)).c_str(), BM_Polling,
                                           mech);
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    for (int t : {2, 4, 8}) b->Arg(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench::parse_stats_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::print_collected_stats();
  table().print();
  if (g_eps_ns_per_event > 0) {
    bench::note("measured comms/endpoints slowdown at 8 task threads: %.2fx",
                g_comms_ns_per_event / g_eps_ns_per_event);
  }
  bench::note("paper: Legion's polling thread processes events 1.63x slower with comms");
  return 0;
}
