// Validate a benchmark JSON artifact: the file must parse as JSON (objects,
// arrays, strings, numbers, booleans, null — no trailing garbage) and must
// contain every required key given on the command line (anywhere in the
// document, matching how google-benchmark and the bench binaries nest their
// output). CI's perf-smoke job gates benchmark artifacts on this before
// uploading them, so schema regressions fail the build rather than shipping
// broken artifacts.
//
// Usage: bench_validate <file.json> [required_key ...]

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

/// Minimal recursive-descent JSON parser. Records every object key seen.
class Parser {
 public:
  Parser(const std::string& text, std::set<std::string>* keys) : s_(text), keys_(keys) {}

  bool parse(std::string* error) {
    skip_ws();
    if (!value(error)) return false;
    skip_ws();
    if (pos_ != s_.size()) {
      *error = "trailing characters after document at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool value(std::string* error) {
    skip_ws();
    if (pos_ >= s_.size()) {
      *error = "unexpected end of input";
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object(error);
      case '[':
        return array(error);
      case '"':
        return string(nullptr, error);
      case 't':
        return literal("true", error);
      case 'f':
        return literal("false", error);
      case 'n':
        return literal("null", error);
      default:
        return number(error);
    }
  }

  bool object(std::string* error) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key, error)) return false;
      keys_->insert(key);
      skip_ws();
      if (peek() != ':') {
        *error = "expected ':' at offset " + std::to_string(pos_);
        return false;
      }
      ++pos_;
      if (!value(error)) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      *error = "expected ',' or '}' at offset " + std::to_string(pos_);
      return false;
    }
  }

  bool array(std::string* error) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!value(error)) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      *error = "expected ',' or ']' at offset " + std::to_string(pos_);
      return false;
    }
  }

  bool string(std::string* out, std::string* error) {
    if (peek() != '"') {
      *error = "expected string at offset " + std::to_string(pos_);
      return false;
    }
    ++pos_;
    std::string result;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
      }
      result.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) {
      *error = "unterminated string";
      return false;
    }
    ++pos_;  // closing quote
    if (out != nullptr) *out = result;
    return true;
  }

  bool number(std::string* error) {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) digits = true;
      ++pos_;
    }
    if (!digits) {
      *error = "expected value at offset " + std::to_string(start);
      return false;
    }
    return true;
  }

  bool literal(const char* lit, std::string* error) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) {
      *error = "bad literal at offset " + std::to_string(pos_);
      return false;
    }
    pos_ += n;
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  const std::string& s_;
  std::set<std::string>* keys_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.json> [required_key ...]\n", argv[0]);
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) {
    std::fprintf(stderr, "%s: empty file\n", argv[1]);
    return 1;
  }

  std::set<std::string> keys;
  std::string error;
  Parser p(text, &keys);
  if (!p.parse(&error)) {
    std::fprintf(stderr, "%s: INVALID JSON: %s\n", argv[1], error.c_str());
    return 1;
  }

  int rc = 0;
  for (int i = 2; i < argc; ++i) {
    if (keys.count(argv[i]) == 0) {
      std::fprintf(stderr, "%s: MISSING required key \"%s\"\n", argv[1], argv[i]);
      rc = 1;
    }
  }
  if (rc == 0) std::fprintf(stdout, "%s: OK (%zu distinct keys)\n", argv[1], keys.size());
  return rc;
}
