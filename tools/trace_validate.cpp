// Validate a Chrome trace_event JSON file produced by the tmpi trace
// exporter (DESIGN.md §9). Exit 0 when the file parses, matches the
// trace_event schema, and every (pid, tid) track has non-decreasing
// timestamps; exit 1 with a diagnostic otherwise. CI runs this against the
// trace a TMPI_TRACE=1 benchmark run emits.
//
// With --links the causal graph is checked too (DESIGN.md §14): every
// non-root parent edge must resolve to a recorded post, journeys must be
// virtual-time monotone, and the span graph must be acyclic. Files whose
// otherData reports dropped events are checked tolerantly (a wrapped ring
// may have forgotten a parent).
//
// Usage: trace_validate [--links] <trace.json> [more.json ...]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "net/trace.h"

int main(int argc, char** argv) {
  bool links = false;
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "--links") == 0) {
    links = true;
    first = 2;
  }
  if (argc <= first) {
    std::fprintf(stderr, "usage: %s [--links] <trace.json> [more.json ...]\n", argv[0]);
    return 1;
  }
  int rc = 0;
  for (int i = first; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::string error;
    if (!tmpi::net::validate_chrome_trace_json(text, &error)) {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], error.c_str());
      rc = 1;
      continue;
    }
    if (links && !tmpi::net::validate_trace_links_json(text, &error)) {
      std::fprintf(stderr, "%s: BROKEN LINKS: %s\n", argv[i], error.c_str());
      rc = 1;
      continue;
    }
    std::fprintf(stdout, "%s: OK%s\n", argv[i], links ? " (links)" : "");
  }
  return rc;
}
