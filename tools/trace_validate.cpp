// Validate a Chrome trace_event JSON file produced by the tmpi trace
// exporter (DESIGN.md §9). Exit 0 when the file parses, matches the
// trace_event schema, and every (pid, tid) track has non-decreasing
// timestamps; exit 1 with a diagnostic otherwise. CI runs this against the
// trace a TMPI_TRACE=1 benchmark run emits.
//
// Usage: trace_validate <trace.json> [more.json ...]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "net/trace.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [more.json ...]\n", argv[0]);
    return 1;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!tmpi::net::validate_chrome_trace_json(buf.str(), &error)) {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], error.c_str());
      rc = 1;
    } else {
      std::fprintf(stdout, "%s: OK\n", argv[i]);
    }
  }
  return rc;
}
