#include "workloads/stencil.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

namespace wl {
namespace {

/// Parameter: (px, py, tx, ty, diagonals).
using StencilGrid = std::tuple<int, int, int, int, bool>;

class StencilP : public ::testing::TestWithParam<StencilGrid> {
 protected:
  [[nodiscard]] StencilParams params(StencilMech mech) const {
    const auto& [px, py, tx, ty, diag] = GetParam();
    StencilParams p;
    p.mech = mech;
    p.px = px;
    p.py = py;
    p.tx = tx;
    p.ty = ty;
    p.diagonals = diag;
    p.iters = 2;
    p.halo_bytes = 96;
    return p;
  }
};

TEST_P(StencilP, AllMechanismsMoveIdenticalHalos) {
  std::map<StencilMech, std::uint64_t> sums;
  for (auto mech : {StencilMech::kSerial, StencilMech::kComms, StencilMech::kTags,
                    StencilMech::kEndpoints, StencilMech::kPartitioned}) {
    const auto r = run_stencil(params(mech));
    sums[mech] = r.run.checksum;
    EXPECT_GT(r.run.checksum, 0u) << to_string(mech);
  }
  for (const auto& [mech, sum] : sums) {
    EXPECT_EQ(sum, sums.begin()->second) << to_string(mech);
  }
}

TEST_P(StencilP, NaiveCommPlanAlsoCorrect) {
  auto mirrored = params(StencilMech::kComms);
  auto naive = mirrored;
  naive.strategy = rp::PlanStrategy::kNaive;
  const auto rm = run_stencil(mirrored);
  const auto rn = run_stencil(naive);
  EXPECT_EQ(rm.run.checksum, rn.run.checksum);
  EXPECT_EQ(rm.plan_conflicts, 0);  // the ideal map serializes nothing
  const auto& [px, py, tx, ty, diag] = GetParam();
  if (px >= 2 && py >= 2 && tx * ty >= 2) {
    EXPECT_GT(rn.plan_conflicts, 0);  // Lesson 2's lost parallelism
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, StencilP,
                         ::testing::Values(StencilGrid{2, 2, 3, 3, true},
                                           StencilGrid{2, 2, 3, 3, false},
                                           StencilGrid{3, 2, 2, 4, true},
                                           StencilGrid{2, 3, 4, 2, false},
                                           StencilGrid{1, 4, 2, 2, true},
                                           StencilGrid{4, 1, 3, 1, false},
                                           StencilGrid{3, 3, 2, 2, true}),
                         [](const ::testing::TestParamInfo<StencilGrid>& info) {
                           return "p" + std::to_string(std::get<0>(info.param)) +
                                  std::to_string(std::get<1>(info.param)) + "t" +
                                  std::to_string(std::get<2>(info.param)) +
                                  std::to_string(std::get<3>(info.param)) +
                                  (std::get<4>(info.param) ? "nine" : "five");
                         });

TEST(Stencil, CommsUsedMatchesMechanism) {
  StencilParams p;
  p.px = 2;
  p.py = 2;
  p.tx = 3;
  p.ty = 3;
  p.iters = 1;
  p.mech = StencilMech::kSerial;
  EXPECT_EQ(run_stencil(p).comms_used, 1);
  p.mech = StencilMech::kTags;
  EXPECT_EQ(run_stencil(p).comms_used, 1);
  p.mech = StencilMech::kEndpoints;
  EXPECT_EQ(run_stencil(p).comms_used, 9);  // one endpoint per thread
  p.mech = StencilMech::kComms;
  const auto r = run_stencil(p);
  EXPECT_GT(r.comms_used, 9);  // Lesson 3: more comms than threads
}

TEST(Stencil, ParallelMechanismsBeatSerial) {
  StencilParams p;
  p.px = 2;
  p.py = 2;
  p.tx = 4;
  p.ty = 4;
  p.iters = 3;
  p.halo_bytes = 64;
  p.mech = StencilMech::kSerial;
  const auto serial = run_stencil(p);
  for (auto mech : {StencilMech::kComms, StencilMech::kTags, StencilMech::kEndpoints}) {
    p.mech = mech;
    const auto r = run_stencil(p);
    EXPECT_LT(r.run.elapsed_ns, serial.run.elapsed_ns) << to_string(mech);
  }
}

TEST(Stencil, PartitionedSpreadingHelps) {
  StencilParams p;
  p.px = 2;
  p.py = 1;
  p.tx = 8;
  p.ty = 1;
  p.iters = 3;
  p.halo_bytes = 2048;
  p.mech = StencilMech::kPartitioned;
  p.part_vcis = 1;
  const auto one = run_stencil(p);
  p.part_vcis = 8;
  const auto eight = run_stencil(p);
  EXPECT_EQ(one.run.checksum, eight.run.checksum);
  // Spreading partitions over VCIs must not be slower.
  EXPECT_LE(eight.run.elapsed_ns, one.run.elapsed_ns);
}

TEST(Stencil, BoundedFabricSlowsCommsMechanism) {
  // Lesson 3 / Omni-Path: when the plan needs more channels than the NIC has
  // contexts, the comms mechanism pays sharing penalties endpoints avoid.
  StencilParams p;
  p.px = 2;
  p.py = 2;
  p.tx = 4;
  p.ty = 4;
  p.iters = 2;
  p.num_vcis = 64;
  p.cost.max_hw_contexts = 8;  // scarce fabric
  p.mech = StencilMech::kComms;
  const auto comms = run_stencil(p);
  p.mech = StencilMech::kEndpoints;
  const auto eps = run_stencil(p);
  EXPECT_EQ(comms.run.checksum, eps.run.checksum);
  EXPECT_GT(comms.run.net.shared_ctx_injections, 0u);
}

}  // namespace
}  // namespace wl

namespace wl {
namespace {

TEST(Stencil3D, AllMechanismsAgreeOn27Point) {
  // hypre's real pattern (Lesson 3): 3D 27-point halo exchange.
  StencilParams p;
  p.px = 2;
  p.py = 2;
  p.pz = 2;
  p.tx = 2;
  p.ty = 2;
  p.tz = 2;
  p.iters = 2;
  p.halo_bytes = 64;
  p.diagonals = true;
  p.num_vcis = 8;
  std::uint64_t expect = 0;
  for (auto mech : {StencilMech::kSerial, StencilMech::kComms, StencilMech::kTags,
                    StencilMech::kEndpoints, StencilMech::kPartitioned}) {
    p.mech = mech;
    const auto r = run_stencil(p);
    if (expect == 0) expect = r.run.checksum;
    EXPECT_EQ(r.run.checksum, expect) << to_string(mech);
  }
}

TEST(Stencil3D, SevenPointAxesOnly) {
  StencilParams p;
  p.px = 3;
  p.py = 1;
  p.pz = 2;
  p.tx = 2;
  p.ty = 3;
  p.tz = 2;
  p.iters = 2;
  p.halo_bytes = 32;
  p.diagonals = false;  // 7-point
  std::uint64_t expect = 0;
  for (auto mech : {StencilMech::kEndpoints, StencilMech::kComms, StencilMech::kPartitioned}) {
    p.mech = mech;
    const auto r = run_stencil(p);
    if (expect == 0) expect = r.run.checksum;
    EXPECT_EQ(r.run.checksum, expect) << to_string(mech);
  }
}

TEST(Stencil3D, CommsNeedFarMoreObjectsThanEndpoints) {
  // Lesson 3 measured on the runnable 3D pattern (not just the formula).
  StencilParams p;
  p.px = 2;
  p.py = 2;
  p.pz = 2;
  p.tx = 3;
  p.ty = 3;
  p.tz = 3;
  p.iters = 1;
  p.halo_bytes = 16;
  p.diagonals = true;
  p.num_vcis = 4;
  p.mech = StencilMech::kComms;
  const auto comms = run_stencil(p);
  p.mech = StencilMech::kEndpoints;
  const auto eps = run_stencil(p);
  EXPECT_EQ(comms.run.checksum, eps.run.checksum);
  EXPECT_EQ(eps.comms_used, 27);
  EXPECT_GT(comms.comms_used, 3 * eps.comms_used);
}

}  // namespace
}  // namespace wl
