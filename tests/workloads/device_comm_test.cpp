#include "workloads/device_comm.h"

#include <gtest/gtest.h>

namespace wl {
namespace {

DeviceParams base_params(DeviceMech mech) {
  DeviceParams p;
  p.mech = mech;
  p.device_threads = 4;
  p.iters = 3;
  p.chunk_bytes = 256;
  return p;
}

TEST(DeviceComm, AllMechanismsMoveIdenticalChunks) {
  std::uint64_t expect = 0;
  for (auto mech : {DeviceMech::kHostOrchestrated, DeviceMech::kDevicePartitioned,
                    DeviceMech::kPersistentProxy}) {
    const auto r = run_device_comm(base_params(mech));  // throws on mismatch
    EXPECT_EQ(r.aux, 12u) << to_string(mech);
    if (expect == 0) expect = r.checksum;
    EXPECT_EQ(r.checksum, expect) << to_string(mech);
  }
}

TEST(DeviceComm, PersistentProxyAvoidsRelaunchCosts) {
  // With expensive launches, a single persistent launch must beat one
  // relaunch per iteration (Lesson 20's argument).
  DeviceParams p = base_params(DeviceMech::kDevicePartitioned);
  p.kernel_launch_ns = 50000;
  p.iters = 8;
  const auto part = run_device_comm(p);
  p.mech = DeviceMech::kPersistentProxy;
  const auto proxy = run_device_comm(p);
  EXPECT_LT(proxy.elapsed_ns + 6 * p.kernel_launch_ns, part.elapsed_ns);
}

TEST(DeviceComm, DevicePartitionedBeatsHostSerialIssueAtScale) {
  // Many workers: the host thread's serial issue loop loses to parallel
  // device-driven partitions.
  DeviceParams p = base_params(DeviceMech::kHostOrchestrated);
  p.device_threads = 32;
  p.chunk_bytes = 1024;
  const auto host = run_device_comm(p);
  p.mech = DeviceMech::kDevicePartitioned;
  const auto dev = run_device_comm(p);
  EXPECT_LT(dev.elapsed_ns, host.elapsed_ns);
}

TEST(DeviceComm, LaunchCostDominatesHostOrchestrationAtHighIters) {
  DeviceParams p = base_params(DeviceMech::kHostOrchestrated);
  p.kernel_launch_ns = 100000;
  p.iters = 4;
  const auto few = run_device_comm(p);
  p.iters = 8;
  const auto many = run_device_comm(p);
  // Per-iteration cost is launch-bound: doubling iterations ~doubles time.
  const double ratio = static_cast<double>(many.elapsed_ns) / static_cast<double>(few.elapsed_ns);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
}

}  // namespace
}  // namespace wl
