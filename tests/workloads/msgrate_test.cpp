#include "workloads/msgrate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wl {
namespace {

MsgRateParams base_params(MsgRateMode mode, int workers) {
  MsgRateParams p;
  p.mode = mode;
  p.workers = workers;
  p.msgs_per_worker = 256;
  p.window = 16;
  p.msg_bytes = 8;
  return p;
}

TEST(MsgRate, AllMessagesAccounted) {
  for (auto mode : {MsgRateMode::kEverywhere, MsgRateMode::kThreadsOriginal,
                    MsgRateMode::kThreadsEndpoints, MsgRateMode::kThreadsTags,
                    MsgRateMode::kThreadsComms}) {
    const auto r = run_msgrate(base_params(mode, 4));
    EXPECT_EQ(r.messages, 4u * 256u) << to_string(mode);
    EXPECT_GE(r.net.messages, r.messages) << to_string(mode);  // + window acks
  }
}

TEST(MsgRate, OriginalDoesNotScale) {
  // Fig. 1(a): the single-VCI "Original" mode's rate stays roughly flat as
  // workers grow (the hardware context serializes every injection); compare
  // from 2 workers so the single-stream ack latency does not skew the base.
  const auto r2 = run_msgrate(base_params(MsgRateMode::kThreadsOriginal, 2));
  const auto r8 = run_msgrate(base_params(MsgRateMode::kThreadsOriginal, 8));
  EXPECT_LT(r8.msg_rate(), r2.msg_rate() * 1.5);
  // The channel's injection overhead caps the rate regardless of workers.
  const double cap = 1e9 / static_cast<double>(r8.net.ctx_busy_ns / r8.net.injections);
  EXPECT_LT(r8.msg_rate(), cap * 1.05);
}

TEST(MsgRate, EndpointsScaleWithWorkers) {
  const auto r1 = run_msgrate(base_params(MsgRateMode::kThreadsEndpoints, 1));
  const auto r8 = run_msgrate(base_params(MsgRateMode::kThreadsEndpoints, 8));
  EXPECT_GT(r8.msg_rate(), r1.msg_rate() * 4.0);
}

TEST(MsgRate, LogicallyParallelModesBeatOriginal) {
  const int workers = 8;
  const auto original = run_msgrate(base_params(MsgRateMode::kThreadsOriginal, workers));
  for (auto mode : {MsgRateMode::kThreadsEndpoints, MsgRateMode::kThreadsTags,
                    MsgRateMode::kThreadsComms, MsgRateMode::kEverywhere}) {
    const auto r = run_msgrate(base_params(mode, workers));
    EXPECT_GT(r.msg_rate(), original.msg_rate() * 2.0) << to_string(mode);
  }
}

TEST(MsgRate, EndpointsTrackEverywhere) {
  // The paper's headline: MPI+threads with logically parallel communication
  // matches MPI everywhere.
  const int workers = 8;
  const auto everywhere = run_msgrate(base_params(MsgRateMode::kEverywhere, workers));
  const auto endpoints = run_msgrate(base_params(MsgRateMode::kThreadsEndpoints, workers));
  const double ratio = endpoints.msg_rate() / everywhere.msg_rate();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(MsgRate, LargerMessagesLowerTheRate) {
  auto small = base_params(MsgRateMode::kThreadsEndpoints, 4);
  auto large = small;
  large.msg_bytes = 16384;
  EXPECT_GT(run_msgrate(small).msg_rate(), run_msgrate(large).msg_rate());
}

TEST(MsgRate, StableAcrossRuns) {
  // Virtual time is independent of host scheduling up to the matching-path
  // asymmetry (a message matched on arrival vs. on posting charges slightly
  // different queue costs, and which path runs depends on real interleaving).
  // That asymmetry is bounded: runs agree within 2%.
  const auto a = run_msgrate(base_params(MsgRateMode::kEverywhere, 4));
  const auto b = run_msgrate(base_params(MsgRateMode::kEverywhere, 4));
  const double rel = std::abs(static_cast<double>(a.elapsed_ns) -
                              static_cast<double>(b.elapsed_ns)) /
                     static_cast<double>(a.elapsed_ns);
  EXPECT_LT(rel, 0.02);
}

}  // namespace
}  // namespace wl
