#include "workloads/collective_workload.h"

#include "tmpi/error.h"

#include <gtest/gtest.h>

namespace wl {
namespace {

CollParams base_params(CollMech mech) {
  CollParams p;
  p.mech = mech;
  p.nranks = 4;
  p.threads = 4;
  p.elements = 4096;
  p.iters = 2;
  return p;
}

TEST(CollectiveWl, AllMechanismsProduceVerifiedResult) {
  for (auto mech : {CollMech::kSingleThread, CollMech::kPerThreadComms, CollMech::kEndpoints,
                    CollMech::kPartitionedStyle}) {
    const auto r = run_collective(base_params(mech));  // throws on mismatch
    EXPECT_GT(r.elapsed_ns, 0u) << to_string(mech);
  }
}

TEST(CollectiveWl, PerThreadCommsBeatSingleThread) {
  // Fig. 7 / VASP: driving the collective from multiple threads over
  // per-thread comms gives the paper's >2x speedup at T=4+.
  const auto single = run_collective(base_params(CollMech::kSingleThread));
  const auto multi = run_collective(base_params(CollMech::kPerThreadComms));
  EXPECT_GT(static_cast<double>(single.elapsed_ns) / static_cast<double>(multi.elapsed_ns),
            2.0);
}

TEST(CollectiveWl, EndpointsDuplicateResultBuffers) {
  // Lesson 19: the endpoints one-step collective holds T result copies per
  // process; the other designs hold one.
  const auto eps = run_collective(base_params(CollMech::kEndpoints));
  const auto comms = run_collective(base_params(CollMech::kPerThreadComms));
  const auto part = run_collective(base_params(CollMech::kPartitionedStyle));
  EXPECT_EQ(eps.result_buffer_bytes, comms.result_buffer_bytes * 4);
  EXPECT_EQ(part.result_buffer_bytes, comms.result_buffer_bytes);
}

TEST(CollectiveWl, PartitionedStylePaysSharedRequestCosts) {
  const auto part = run_collective(base_params(CollMech::kPartitionedStyle));
  EXPECT_GT(part.net.lock_acquisitions, 0u);
}

TEST(CollectiveWl, RejectsIndivisibleElements) {
  CollParams p = base_params(CollMech::kSingleThread);
  p.elements = 1001;  // not divisible by threads
  EXPECT_THROW(run_collective(p), tmpi::Error);
}

TEST(CollectiveWl, SingleRankStillCombinesThreads) {
  CollParams p = base_params(CollMech::kEndpoints);
  p.nranks = 1;
  const auto r = run_collective(p);  // verification inside
  EXPECT_GT(r.elapsed_ns, 0u);
}

}  // namespace
}  // namespace wl
