#include "workloads/event_runtime.h"

#include "tmpi/error.h"

#include <gtest/gtest.h>

#include <map>

namespace wl {
namespace {

EventParams base_params(EventMech mech) {
  EventParams p;
  p.mech = mech;
  p.nranks = 3;
  p.task_threads = 4;
  p.events_per_thread = 32;
  return p;
}

TEST(EventRuntime, AllMechanismsProcessEveryEvent) {
  std::map<EventMech, std::uint64_t> sums;
  for (auto mech : {EventMech::kSerial, EventMech::kComms, EventMech::kTags,
                    EventMech::kEndpoints}) {
    const auto r = run_event_runtime(base_params(mech));
    EXPECT_EQ(r.aux, 3u * 4u * 32u) << to_string(mech);
    sums[mech] = r.checksum;
  }
  // Same events, same payloads: identical checksums across mechanisms.
  for (const auto& [mech, sum] : sums) {
    EXPECT_EQ(sum, sums.begin()->second) << to_string(mech);
  }
}

TEST(EventRuntime, EverywhereProcessesItsOwnQueue) {
  const auto r = run_event_runtime(base_params(EventMech::kEverywhere));
  EXPECT_EQ(r.aux, 3u * 4u * 32u);
}

TEST(EventRuntime, EndpointsBeatCommIteration) {
  // Lesson 5 / Fig. 5: the polling thread is slower iterating per-thread
  // communicators than draining one endpoint (the paper cites 1.63x).
  const auto comms = run_event_runtime(base_params(EventMech::kComms));
  const auto eps = run_event_runtime(base_params(EventMech::kEndpoints));
  EXPECT_GT(comms.elapsed_ns, eps.elapsed_ns);
}

TEST(EventRuntime, EndpointsBeatSerial) {
  // Needs enough task threads that the single shared channel's injection
  // serialization outweighs the polling thread's per-event work.
  EventParams p = base_params(EventMech::kSerial);
  p.task_threads = 8;
  p.events_per_thread = 64;
  p.process_ns = 100;
  const auto serial = run_event_runtime(p);
  p.mech = EventMech::kEndpoints;
  const auto eps = run_event_runtime(p);
  EXPECT_GT(serial.elapsed_ns, eps.elapsed_ns);
}

TEST(EventRuntime, RejectsBadParameters) {
  EventParams p = base_params(EventMech::kSerial);
  p.nranks = 1;
  EXPECT_THROW(run_event_runtime(p), tmpi::Error);
  p = base_params(EventMech::kSerial);
  p.events_per_thread = 33;  // not divisible by nranks-1 == 2
  EXPECT_THROW(run_event_runtime(p), tmpi::Error);
}

}  // namespace
}  // namespace wl
