#include "workloads/sparse_matmul.h"

#include <gtest/gtest.h>

#include <tuple>

namespace wl {
namespace {

/// Parameter: (nranks, threads, nb, keep_mod).
using MatmulGrid = std::tuple<int, int, int, int>;

class MatmulP : public ::testing::TestWithParam<MatmulGrid> {};

TEST_P(MatmulP, AllMechanismsMatchSerialReference) {
  const auto& [nranks, threads, nb, keep] = GetParam();
  std::uint64_t first = 0;
  bool have_first = false;
  for (auto mech :
       {RmaMech::kStrictWindow, RmaMech::kRelaxedHash, RmaMech::kEndpointsWin}) {
    MatmulParams p;
    p.mech = mech;
    p.nranks = nranks;
    p.threads = threads;
    p.nb = nb;
    p.bs = 4;
    p.keep_mod = keep;
    const auto r = run_sparse_matmul(p);  // throws on mismatch
    if (!have_first) {
      first = r.checksum;
      have_first = true;
    } else {
      EXPECT_EQ(r.checksum, first) << to_string(mech);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, MatmulP,
                         ::testing::Values(MatmulGrid{2, 2, 3, 1}, MatmulGrid{2, 4, 4, 2},
                                           MatmulGrid{4, 2, 4, 2}, MatmulGrid{3, 3, 5, 3},
                                           MatmulGrid{1, 4, 3, 1}),
                         [](const ::testing::TestParamInfo<MatmulGrid>& info) {
                           return "r" + std::to_string(std::get<0>(info.param)) + "t" +
                                  std::to_string(std::get<1>(info.param)) + "nb" +
                                  std::to_string(std::get<2>(info.param)) + "k" +
                                  std::to_string(std::get<3>(info.param));
                         });

TEST(Matmul, EndpointsNotSlowerThanStrictWindow) {
  // Lesson 16: parallel atomic channels should beat the strict single
  // channel when many threads accumulate.
  MatmulParams p;
  p.nranks = 2;
  p.threads = 8;
  p.nb = 6;
  p.bs = 8;
  p.keep_mod = 1;
  p.mech = RmaMech::kStrictWindow;
  const auto strict = run_sparse_matmul(p);
  p.mech = RmaMech::kEndpointsWin;
  const auto eps = run_sparse_matmul(p);
  EXPECT_LT(eps.elapsed_ns, strict.elapsed_ns);
}

TEST(Matmul, RelaxedHashBetweenStrictAndEndpoints) {
  MatmulParams p;
  p.nranks = 2;
  p.threads = 8;
  p.nb = 6;
  p.bs = 8;
  p.keep_mod = 1;
  p.mech = RmaMech::kStrictWindow;
  const auto strict = run_sparse_matmul(p);
  p.mech = RmaMech::kRelaxedHash;
  const auto relaxed = run_sparse_matmul(p);
  EXPECT_LT(relaxed.elapsed_ns, strict.elapsed_ns);
}

TEST(Matmul, TasksPartitionedAcrossRanksAndThreads) {
  MatmulParams p;
  p.nranks = 2;
  p.threads = 2;
  p.nb = 4;
  p.keep_mod = 1;
  const auto r = run_sparse_matmul(p);
  EXPECT_EQ(r.aux, 64u);  // nb^3 tasks, keep_mod 1 keeps all
  EXPECT_GT(r.net.rma_ops, 0u);
  EXPECT_GT(r.net.atomic_ops, 0u);
}

}  // namespace
}  // namespace wl
