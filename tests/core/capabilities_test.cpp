#include "core/capabilities.h"

#include <gtest/gtest.h>

#include "core/planner.h"

namespace rp {
namespace {

TEST(Capabilities, TableOneScope) {
  // Table I: point-to-point row.
  EXPECT_TRUE(capabilities(Backend::kComms).pt2p);
  EXPECT_TRUE(capabilities(Backend::kTags).pt2p);
  EXPECT_TRUE(capabilities(Backend::kEndpoints).pt2p);
  EXPECT_TRUE(capabilities(Backend::kPartitioned).pt2p);
  // RMA row: windows / endpoints; partitioned RMA is TBD.
  EXPECT_TRUE(capabilities(Backend::kComms).rma);
  EXPECT_TRUE(capabilities(Backend::kEndpoints).rma);
  EXPECT_FALSE(capabilities(Backend::kPartitioned).rma);
  EXPECT_FALSE(capabilities(Backend::kPartitioned).rma_defined);
  // Collective row: comms (+user intranode), endpoints; partitioned TBD.
  EXPECT_TRUE(capabilities(Backend::kComms).collectives);
  EXPECT_TRUE(capabilities(Backend::kEndpoints).collectives);
  EXPECT_FALSE(capabilities(Backend::kPartitioned).collectives_defined);
}

TEST(Capabilities, OnlyEndpointsAreFullyGeneral) {
  // Section IV: "users need to be aware of only one mechanism: endpoints,
  // which applies uniformly to all types of MPI operations."
  int fully_general = 0;
  for (Backend b : all_backends()) {
    const auto c = capabilities(b);
    if (c.pt2p && c.rma && c.collectives && c.wildcards && c.dynamic_patterns) {
      ++fully_general;
      EXPECT_EQ(b, Backend::kEndpoints);
    }
  }
  EXPECT_EQ(fully_general, 1);
}

TEST(Capabilities, LessonFourteenSharedRequest) {
  EXPECT_FALSE(capabilities(Backend::kPartitioned).full_thread_independence);
  EXPECT_TRUE(capabilities(Backend::kEndpoints).full_thread_independence);
  EXPECT_TRUE(capabilities(Backend::kComms).full_thread_independence);
}

TEST(Capabilities, LessonNineteenDuplication) {
  EXPECT_TRUE(capabilities(Backend::kEndpoints).duplicates_coll_buffers);
  EXPECT_FALSE(capabilities(Backend::kComms).duplicates_coll_buffers);
  EXPECT_FALSE(capabilities(Backend::kPartitioned).duplicates_coll_buffers);
}

TEST(Capabilities, PortabilityStory) {
  // Lessons 8 & 12-13: tags/comms need impl hints; endpoints and partitioned
  // bake mapping into the interface.
  EXPECT_FALSE(capabilities(Backend::kTags).portable_mapping);
  EXPECT_FALSE(capabilities(Backend::kComms).portable_mapping);
  EXPECT_TRUE(capabilities(Backend::kEndpoints).portable_mapping);
  EXPECT_TRUE(capabilities(Backend::kPartitioned).portable_mapping);
  // Only endpoints are not standardized (the suspended proposal).
  EXPECT_FALSE(capabilities(Backend::kEndpoints).standardized);
  EXPECT_TRUE(capabilities(Backend::kTags).standardized);
}

TEST(Capabilities, OverloadingExistingObjects) {
  // Lesson 4 vs Lessons 11/13.
  EXPECT_TRUE(capabilities(Backend::kComms).overloads_existing);
  EXPECT_TRUE(capabilities(Backend::kTags).overloads_existing);
  EXPECT_FALSE(capabilities(Backend::kEndpoints).overloads_existing);
  EXPECT_FALSE(capabilities(Backend::kPartitioned).overloads_existing);
}

TEST(Usability, Stencil27CommsBlowup) {
  const auto comms = stencil27_usability(Backend::kComms, 4, 4, 4);
  const auto eps = stencil27_usability(Backend::kEndpoints, 4, 4, 4);
  EXPECT_EQ(comms.setup_objects, 808);
  EXPECT_EQ(eps.setup_objects, 56);
  EXPECT_TRUE(comms.needs_mirroring);
  EXPECT_FALSE(eps.needs_mirroring);
  EXPECT_GT(static_cast<double>(comms.setup_objects) / eps.setup_objects, 14.0);
}

TEST(Usability, TagsNeedImplementationHints) {
  const auto tags = stencil27_usability(Backend::kTags, 4, 4, 4);
  EXPECT_EQ(tags.setup_objects, 1);
  EXPECT_GT(tags.impl_specific_hints, 0);  // Lessons 7-8
  EXPECT_TRUE(tags.intuitive);             // Lesson 6
  const auto eps = stencil27_usability(Backend::kEndpoints, 4, 4, 4);
  EXPECT_EQ(eps.impl_specific_hints, 0);  // Lesson 12
}

TEST(Usability, NamesResolve) {
  for (Backend b : all_backends()) {
    EXPECT_STRNE(to_string(b), "?");
    EXPECT_FALSE(capabilities(b).summary.empty());
  }
}

}  // namespace
}  // namespace rp
