#include "core/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rp {
namespace {

using tmpi::Rank;
using tmpi::World;
using tmpi::WorldConfig;

World make_world(int nranks) {
  WorldConfig wc;
  wc.nranks = nranks;
  wc.num_vcis = 4;
  return World(wc);
}

class SessionP : public ::testing::TestWithParam<Backend> {};

TEST_P(SessionP, StreamsExchangePointToPoint) {
  const Backend backend = GetParam();
  if (backend == Backend::kPartitioned) return;  // no dynamic sends (Lesson 15)
  World w = make_world(2);
  constexpr int kStreams = 3;
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = backend;
    cfg.streams = kStreams;
    Session s = Session::create(rank, cfg);
    EXPECT_EQ(s.streams(), kStreams);
    rank.parallel(kStreams, [&](int tid) {
      Channel ch = s.channel(tid);
      const PeerAddr peer{1 - rank.rank(), tid};
      int out = rank.rank() * 10 + tid;
      int in = -1;
      tmpi::Request rr = ch.irecv(&in, sizeof(in), peer, 2);
      tmpi::Request sr = ch.isend(&out, sizeof(out), peer, 2);
      sr.wait();
      rr.wait();
      EXPECT_EQ(in, (1 - rank.rank()) * 10 + tid);
    });
  });
}

TEST_P(SessionP, CrossStreamAddressing) {
  const Backend backend = GetParam();
  if (backend == Backend::kPartitioned) return;
  World w = make_world(2);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = backend;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    // Stream 0 of rank 0 talks to stream 1 of rank 1.
    if (rank.rank() == 0) {
      int out = 99;
      s.channel(0).isend(&out, sizeof(out), PeerAddr{1, 1}, 0).wait();
    } else {
      int in = 0;
      s.channel(1).irecv(&in, sizeof(in), PeerAddr{0, 0}, 0).wait();
      EXPECT_EQ(in, 99);
    }
  });
}

TEST_P(SessionP, PersistentChannelsWorkOnEveryBackend) {
  const Backend backend = GetParam();
  World w = make_world(2);
  constexpr int kParts = 4;
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = backend;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    std::vector<std::int32_t> buf(kParts);
    Channel ch = s.channel(0);
    if (rank.rank() == 0) {
      tmpi::Request req = ch.persistent_send(buf.data(), kParts, sizeof(std::int32_t),
                                             PeerAddr{1, 0}, 1);
      for (int it = 0; it < 2; ++it) {
        tmpi::start(req);
        for (int p = 0; p < kParts; ++p) {
          buf[static_cast<std::size_t>(p)] = it * 100 + p;
          tmpi::pready(p, req);
        }
        req.wait();
      }
    } else {
      tmpi::Request req = ch.persistent_recv(buf.data(), kParts, sizeof(std::int32_t),
                                             PeerAddr{0, 0}, 1);
      for (int it = 0; it < 2; ++it) {
        tmpi::start(req);
        req.wait();
        for (int p = 0; p < kParts; ++p) {
          EXPECT_EQ(buf[static_cast<std::size_t>(p)], it * 100 + p);
        }
      }
    }
  });
}

TEST_P(SessionP, CapabilitiesMatchBackend) {
  const Backend backend = GetParam();
  World w = make_world(1);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = backend;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    EXPECT_EQ(s.caps().backend, backend);
    EXPECT_EQ(s.backend(), backend);
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SessionP,
                         ::testing::Values(Backend::kComms, Backend::kTags,
                                           Backend::kEndpoints, Backend::kPartitioned),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '+' || c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Session, EndpointsWildcardReceive) {
  World w = make_world(2);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = Backend::kEndpoints;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    if (rank.rank() == 0) {
      int out = 5;
      s.channel(1).isend(&out, sizeof(out), PeerAddr{1, 0}, 3).wait();
    } else {
      int in = 0;
      Channel ch = s.channel(0);
      tmpi::Status st{};
      tmpi::Request r = ch.irecv_any(&in, sizeof(in));
      st = r.wait();
      EXPECT_EQ(in, 5);
      const PeerAddr from = ch.decode_source(st);
      EXPECT_EQ(from.rank, 0);
      EXPECT_EQ(from.stream, 1);
    }
  });
}

TEST(Session, CommsBackendRejectsWildcards) {
  World w = make_world(1);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = Backend::kComms;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    int v = 0;
    EXPECT_THROW((void)s.channel(0).irecv_any(&v, sizeof(v)), Unsupported);
  });
}

TEST(Session, TagsBackendWildcardsNeedConfig) {
  World w = make_world(2);
  w.run([&](Rank& rank) {
    {
      SessionConfig cfg;
      cfg.backend = Backend::kTags;
      cfg.streams = 2;
      Session s = Session::create(rank, cfg);
      int v = 0;
      EXPECT_THROW((void)s.channel(0).irecv_any(&v, sizeof(v)), Unsupported);
    }
    {
      SessionConfig cfg;
      cfg.backend = Backend::kTags;
      cfg.streams = 2;
      cfg.need_wildcards = true;
      Session s = Session::create(rank, cfg);
      if (rank.rank() == 0) {
        int out = 7;
        s.channel(0).isend(&out, sizeof(out), PeerAddr{1, 0}, 1).wait();
      } else {
        int in = 0;
        tmpi::Status st = s.channel(0).irecv_any(&in, sizeof(in)).wait();
        EXPECT_EQ(in, 7);
        EXPECT_EQ(s.channel(0).decode_source(st).rank, 0);
      }
    }
  });
}

TEST(Session, PartitionedBackendRejectsDynamicOps) {
  World w = make_world(1);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = Backend::kPartitioned;
    Session s = Session::create(rank, cfg);
    int v = 0;
    EXPECT_THROW((void)s.channel(0).isend(&v, sizeof(v), PeerAddr{0, 0}, 0), Unsupported);
    EXPECT_THROW((void)s.channel(0).irecv(&v, sizeof(v), PeerAddr{0, 0}, 0), Unsupported);
    EXPECT_THROW((void)s.channel(0).irecv_any(&v, sizeof(v)), Unsupported);
    EXPECT_THROW((void)s.channel(0).coll_comm(), Unsupported);
  });
}

TEST(Session, PartitionedBackendRejectsWildcardConfig) {
  World w = make_world(1);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = Backend::kPartitioned;
    cfg.need_wildcards = true;
    EXPECT_THROW((void)Session::create(rank, cfg), Unsupported);
  });
}

TEST(Session, CollCommPerBackend) {
  World w = make_world(2);
  w.run([&](Rank& rank) {
    {
      SessionConfig cfg;
      cfg.backend = Backend::kComms;
      cfg.streams = 2;
      Session s = Session::create(rank, cfg);
      rank.parallel(2, [&](int tid) {
        tmpi::Comm c = s.channel(tid).coll_comm();
        double x = 1.0;
        double y = 0.0;
        tmpi::allreduce(&x, &y, 1, tmpi::kDouble, tmpi::Op::kSum, c);
        EXPECT_EQ(y, 2.0);  // internode only: user combines intranode
      });
    }
    {
      SessionConfig cfg;
      cfg.backend = Backend::kEndpoints;
      cfg.streams = 2;
      Session s = Session::create(rank, cfg);
      rank.parallel(2, [&](int tid) {
        tmpi::Comm c = s.channel(tid).coll_comm();
        double x = 1.0;
        double y = 0.0;
        tmpi::allreduce(&x, &y, 1, tmpi::kDouble, tmpi::Op::kSum, c);
        EXPECT_EQ(y, 4.0);  // one step over all endpoints (Lesson 18)
      });
    }
    {
      SessionConfig cfg;
      cfg.backend = Backend::kTags;
      cfg.streams = 2;
      Session s = Session::create(rank, cfg);
      EXPECT_THROW((void)s.channel(0).coll_comm(), Unsupported);
    }
  });
}

TEST(Session, SetupCostsReflectLessons) {
  World w = make_world(2);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.streams = 4;
    cfg.backend = Backend::kComms;
    const auto comms_cost = Session::create(rank, cfg).setup_cost();
    cfg.backend = Backend::kTags;
    const auto tags_cost = Session::create(rank, cfg).setup_cost();
    cfg.backend = Backend::kEndpoints;
    const auto eps_cost = Session::create(rank, cfg).setup_cost();
    EXPECT_EQ(comms_cost.setup_objects, 4 * 4 + 4);  // quadratic (Lesson 3)
    EXPECT_EQ(eps_cost.setup_objects, 4);            // linear (Lesson 12)
    EXPECT_EQ(tags_cost.setup_objects, 1);
    EXPECT_GT(tags_cost.impl_specific_hints, 0);  // Lessons 7-8
    EXPECT_EQ(eps_cost.impl_specific_hints, 0);
  });
}

TEST(Session, TagEncodingOverflowSurfacesLessonNine) {
  World w = make_world(1);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = Backend::kTags;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    int v = 0;
    // Default world: 23 tag bits, 1 stream bit each side -> 21 app bits.
    const int too_big = 1 << 21;
    try {
      (void)s.channel(0).isend(&v, sizeof(v), PeerAddr{0, 0}, too_big);
      FAIL() << "expected tag overflow";
    } catch (const tmpi::Error& e) {
      EXPECT_EQ(e.code(), tmpi::Errc::kTagOverflow);
    }
  });
}

TEST(Session, InvalidStreamThrows) {
  World w = make_world(1);
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.streams = 2;
    Session s = Session::create(rank, cfg);
    EXPECT_THROW((void)s.channel(2), tmpi::Error);
    EXPECT_THROW((void)s.channel(-1), tmpi::Error);
  });
}

}  // namespace
}  // namespace rp
