// Integration: a halo exchange written ONCE against rp::Session runs
// unmodified over the comms, tags, and endpoints backends — the §IV
// portability argument, end to end. (The partitioned backend runs the same
// pattern through its persistent-channel API.)

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/session.h"

namespace rp {
namespace {

using tmpi::Rank;
using tmpi::World;
using tmpi::WorldConfig;

constexpr int kRanks = 4;      // 1D ring of processes
constexpr int kStreams = 3;    // threads per process
constexpr int kIters = 3;
constexpr std::size_t kHalo = 128;

std::uint8_t cell(int rank, int stream, int iter, std::size_t i) {
  return static_cast<std::uint8_t>(rank * 131 + stream * 17 + iter * 7 +
                                   static_cast<int>(i));
}

/// The backend-independent application: every (rank, stream) exchanges a
/// halo with the same stream on both ring neighbors each iteration.
std::uint64_t ring_halo_via_session(Rank& rank, Session& s) {
  std::atomic<std::uint64_t> sum{0};
  const int left = (rank.rank() - 1 + kRanks) % kRanks;
  const int right = (rank.rank() + 1) % kRanks;
  rank.parallel(kStreams, [&](int tid) {
    Channel ch = s.channel(tid);
    std::vector<std::byte> to_l(kHalo);
    std::vector<std::byte> to_r(kHalo);
    std::vector<std::byte> from_l(kHalo);
    std::vector<std::byte> from_r(kHalo);
    std::uint64_t local = 0;
    for (int it = 0; it < kIters; ++it) {
      for (std::size_t i = 0; i < kHalo; ++i) {
        to_l[i] = static_cast<std::byte>(cell(rank.rank(), tid, it, i));
        to_r[i] = static_cast<std::byte>(cell(rank.rank(), tid, it, i) + 1);
      }
      // Tag disambiguates direction; (rank, stream) addressing does the rest.
      tmpi::Request rl = ch.irecv(from_l.data(), kHalo, PeerAddr{left, tid}, 1);
      tmpi::Request rr = ch.irecv(from_r.data(), kHalo, PeerAddr{right, tid}, 0);
      tmpi::Request sl = ch.isend(to_l.data(), kHalo, PeerAddr{left, tid}, 0);
      tmpi::Request sr = ch.isend(to_r.data(), kHalo, PeerAddr{right, tid}, 1);
      sl.wait();
      sr.wait();
      rl.wait();
      rr.wait();
      for (std::size_t i = 0; i < kHalo; ++i) {
        // Left neighbor sent us its "to the right" buffer and vice versa.
        ASSERT_EQ(from_l[i], static_cast<std::byte>(cell(left, tid, it, i) + 1));
        ASSERT_EQ(from_r[i], static_cast<std::byte>(cell(right, tid, it, i)));
        local += static_cast<std::uint8_t>(from_l[i]) + static_cast<std::uint8_t>(from_r[i]);
      }
    }
    sum.fetch_add(local);
  });
  return sum.load();
}

class SessionStencil : public ::testing::TestWithParam<Backend> {};

TEST_P(SessionStencil, SameCodeEveryBackend) {
  WorldConfig wc;
  wc.nranks = kRanks;
  wc.num_vcis = kStreams;
  World w(wc);
  std::atomic<std::uint64_t> total{0};
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = GetParam();
    cfg.streams = kStreams;
    Session s = Session::create(rank, cfg);
    total.fetch_add(ring_halo_via_session(rank, s));
  });
  // All backends move identical halos: a fixed, backend-independent total.
  static std::uint64_t expected = 0;
  if (expected == 0) expected = total.load();
  EXPECT_EQ(total.load(), expected);
  EXPECT_GT(total.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SessionStencil,
                         ::testing::Values(Backend::kComms, Backend::kTags,
                                           Backend::kEndpoints),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '+' || c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SessionStencil, PartitionedBackendViaPersistentChannels) {
  WorldConfig wc;
  wc.nranks = kRanks;
  wc.num_vcis = kStreams;
  World w(wc);
  std::atomic<std::uint64_t> total{0};
  w.run([&](Rank& rank) {
    SessionConfig cfg;
    cfg.backend = Backend::kPartitioned;
    cfg.streams = kStreams;
    Session s = Session::create(rank, cfg);
    const int left = (rank.rank() - 1 + kRanks) % kRanks;
    const int right = (rank.rank() + 1) % kRanks;

    // One persistent channel per direction; streams become partitions.
    Channel ch = s.channel(0);
    std::vector<std::byte> to_l(kHalo * kStreams);
    std::vector<std::byte> to_r(kHalo * kStreams);
    std::vector<std::byte> from_l(kHalo * kStreams);
    std::vector<std::byte> from_r(kHalo * kStreams);
    tmpi::Request sl = ch.persistent_send(to_l.data(), kStreams, kHalo, PeerAddr{left, 0}, 0);
    tmpi::Request sr = ch.persistent_send(to_r.data(), kStreams, kHalo, PeerAddr{right, 0}, 1);
    tmpi::Request rl = ch.persistent_recv(from_l.data(), kStreams, kHalo, PeerAddr{left, 0}, 1);
    tmpi::Request rr = ch.persistent_recv(from_r.data(), kStreams, kHalo, PeerAddr{right, 0}, 0);

    std::uint64_t local = 0;
    for (int it = 0; it < kIters; ++it) {
      tmpi::start(sl);
      tmpi::start(sr);
      tmpi::start(rl);
      tmpi::start(rr);
      rank.parallel(kStreams, [&](int tid) {
        std::byte* l = to_l.data() + static_cast<std::size_t>(tid) * kHalo;
        std::byte* r = to_r.data() + static_cast<std::size_t>(tid) * kHalo;
        for (std::size_t i = 0; i < kHalo; ++i) {
          l[i] = static_cast<std::byte>(cell(rank.rank(), tid, it, i));
          r[i] = static_cast<std::byte>(cell(rank.rank(), tid, it, i) + 1);
        }
        tmpi::pready(tid, sl);
        tmpi::pready(tid, sr);
        tmpi::await_partition(rl, tid);
        tmpi::await_partition(rr, tid);
      });
      sl.wait();
      sr.wait();
      rl.wait();
      rr.wait();
      for (int tid = 0; tid < kStreams; ++tid) {
        for (std::size_t i = 0; i < kHalo; ++i) {
          const auto fl = from_l[static_cast<std::size_t>(tid) * kHalo + i];
          const auto fr = from_r[static_cast<std::size_t>(tid) * kHalo + i];
          ASSERT_EQ(fl, static_cast<std::byte>(cell(left, tid, it, i) + 1));
          ASSERT_EQ(fr, static_cast<std::byte>(cell(right, tid, it, i)));
          local += static_cast<std::uint8_t>(fl) + static_cast<std::uint8_t>(fr);
        }
      }
    }
    total.fetch_add(local);
  });
  EXPECT_GT(total.load(), 0u);
}

}  // namespace
}  // namespace rp
