#include "core/planner.h"

#include <gtest/gtest.h>

#include <tuple>

namespace rp {
namespace {

TEST(Formulas, PaperComms27ptReproducesThe808) {
  // Lesson 3: [4,4,4] threads need 808 communicators...
  EXPECT_EQ(paper_comms_27pt(4, 4, 4), 808);
}

TEST(Formulas, Channels27ptReproducesThe56) {
  // ...but only 56 parallel channels (communicating threads).
  EXPECT_EQ(channels_27pt(4, 4, 4), 56);
}

TEST(Formulas, RatioIsThePapers14x) {
  const double ratio = static_cast<double>(paper_comms_27pt(4, 4, 4)) /
                       static_cast<double>(channels_27pt(4, 4, 4));
  EXPECT_GT(ratio, 14.0);  // "over 14x higher"
  EXPECT_LT(ratio, 14.6);  // 14.43 (the paper quotes 14.4x for endpoints)
}

TEST(Formulas, ChannelsNeverExceedThreads) {
  for (int x = 1; x <= 6; ++x) {
    for (int y = 1; y <= 6; ++y) {
      for (int z = 1; z <= 6; ++z) {
        EXPECT_LE(channels_27pt(x, y, z), static_cast<long>(x) * y * z);
        EXPECT_GE(channels_27pt(x, y, z), 0);
      }
    }
  }
}

TEST(Formulas, SmallGridsAllThreadsCommunicate) {
  // With any dimension <= 2 there is no interior: every thread talks.
  EXPECT_EQ(channels_27pt(2, 2, 2), 8);
  EXPECT_EQ(channels_27pt(1, 4, 4), 16);
}

TEST(Dirs, CountsMatchStencilKind) {
  EXPECT_EQ(stencil_dirs(false, false).size(), 4u);   // 5-point
  EXPECT_EQ(stencil_dirs(false, true).size(), 8u);    // 9-point
  EXPECT_EQ(stencil_dirs(true, false).size(), 6u);    // 7-point
  EXPECT_EQ(stencil_dirs(true, true).size(), 26u);    // 27-point
}

/// Parameter: (proc grid, thread grid, diagonals).
using PlanParam = std::tuple<Vec3, Vec3, bool>;

class PlanP : public ::testing::TestWithParam<PlanParam> {};

TEST_P(PlanP, MatchingConstraintHolds) {
  // Property: for every exchange, the sender's communicator equals the
  // receiver's (for both strategies) — MPI's matching requirement.
  const auto& [pg, tg, diag] = GetParam();
  for (auto strategy : {PlanStrategy::kMirrored, PlanStrategy::kNaive}) {
    StencilPlan plan(pg, tg, diag, strategy);
    const auto dirs = stencil_dirs(tg.z > 1 || pg.z > 1, diag);
    for (int px = 0; px < pg.x; ++px) {
      for (int py = 0; py < pg.y; ++py) {
        for (int pz = 0; pz < pg.z; ++pz) {
          for (int tx = 0; tx < tg.x; ++tx) {
            for (int ty = 0; ty < tg.y; ++ty) {
              for (int tz = 0; tz < tg.z; ++tz) {
                const Vec3 proc{px, py, pz};
                const Vec3 thr{tx, ty, tz};
                for (const Vec3& d : dirs) {
                  const int send_comm = plan.comm_for_send(proc, thr, d);
                  Vec3 pp;
                  Vec3 pt;
                  if (send_comm < 0) continue;
                  ASSERT_TRUE(plan.partner(proc, thr, d, &pp, &pt));
                  const Vec3 back{-d.x, -d.y, -d.z};
                  const int recv_comm = plan.comm_for_recv(pp, pt, back);
                  ASSERT_EQ(send_comm, recv_comm)
                      << "proc(" << px << "," << py << "," << pz << ") thr(" << tx << ","
                      << ty << "," << tz << ") dir(" << d.x << "," << d.y << "," << d.z
                      << ")";
                }
              }
            }
          }
        }
      }
    }
  }
}

TEST_P(PlanP, MirroredPlanHasZeroConflicts) {
  // Property: the ideal plan never forces two threads of one process onto
  // one communicator (Lesson 1's goal).
  const auto& [pg, tg, diag] = GetParam();
  StencilPlan plan(pg, tg, diag, PlanStrategy::kMirrored);
  const auto m = plan.analyze();
  EXPECT_EQ(m.conflict_pairs, 0) << "comms=" << plan.num_comms();
  EXPECT_EQ(m.parallel_fraction(), 1.0);
}

TEST_P(PlanP, NaivePlanLosesRoughlyHalfTheParallelism) {
  // Lesson 2: the intuitive map exposes "only half of the available
  // parallelism" — opposite-edge threads collide on one communicator.
  const auto& [pg, tg, diag] = GetParam();
  if (pg.x < 2 || pg.y < 2) return;         // needs both axes to have neighbors
  if (tg.x * tg.y * tg.z < 2) return;       // conflicts need >= 2 threads
  StencilPlan plan(pg, tg, diag, PlanStrategy::kNaive);
  const auto m = plan.analyze();
  EXPECT_GT(m.conflict_pairs, 0);
  EXPECT_LT(m.parallel_fraction(), 1.0);
}

TEST_P(PlanP, MirroredUsesMoreCommsThanNaiveButBounded) {
  const auto& [pg, tg, diag] = GetParam();
  StencilPlan mirrored(pg, tg, diag, PlanStrategy::kMirrored);
  StencilPlan naive(pg, tg, diag, PlanStrategy::kNaive);
  EXPECT_EQ(naive.num_comms(), tg.x * tg.y * tg.z);
  EXPECT_GT(mirrored.num_comms(), 0);
  // Lesson 3's blowup: far more comms than threads for diagonal stencils on
  // multi-process grids, yet independent of the process grid size.
  StencilPlan bigger(Vec3{pg.x + 2, pg.y + 2, pg.z}, tg, diag, PlanStrategy::kMirrored);
  EXPECT_LE(mirrored.num_comms(), bigger.num_comms());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanP,
    ::testing::Values(PlanParam{Vec3{2, 2, 1}, Vec3{3, 3, 1}, true},
                      PlanParam{Vec3{2, 2, 1}, Vec3{3, 3, 1}, false},
                      PlanParam{Vec3{3, 2, 1}, Vec3{2, 4, 1}, true},
                      PlanParam{Vec3{4, 4, 1}, Vec3{1, 1, 1}, true},
                      PlanParam{Vec3{3, 3, 1}, Vec3{4, 2, 1}, true},
                      PlanParam{Vec3{2, 2, 2}, Vec3{2, 2, 2}, true},
                      PlanParam{Vec3{3, 2, 2}, Vec3{2, 3, 2}, true},
                      PlanParam{Vec3{2, 2, 2}, Vec3{4, 4, 4}, false},
                      PlanParam{Vec3{1, 3, 1}, Vec3{5, 2, 1}, true}),
    [](const ::testing::TestParamInfo<PlanParam>& info) {
      const Vec3 pg = std::get<0>(info.param);
      const Vec3 tg = std::get<1>(info.param);
      const bool diag = std::get<2>(info.param);
      return "p" + std::to_string(pg.x) + std::to_string(pg.y) + std::to_string(pg.z) + "t" +
             std::to_string(tg.x) + std::to_string(tg.y) + std::to_string(tg.z) +
             (diag ? "diag" : "axes");
    });

TEST(Plan, IntraProcessExchangesHaveNoComm) {
  StencilPlan plan(Vec3{2, 2, 1}, Vec3{3, 3, 1}, true, PlanStrategy::kMirrored);
  // The center thread of a 3x3 grid never leaves the process.
  const Vec3 center{1, 1, 0};
  for (const Vec3& d : stencil_dirs(false, true)) {
    EXPECT_EQ(plan.comm_for_send(Vec3{0, 0, 0}, center, d), -1);
  }
}

TEST(Plan, DomainEdgeHasNoExchange) {
  StencilPlan plan(Vec3{2, 1, 1}, Vec3{2, 2, 1}, false, PlanStrategy::kMirrored);
  // Westmost process, west edge thread: no W neighbor.
  EXPECT_EQ(plan.comm_for_send(Vec3{0, 0, 0}, Vec3{0, 0, 0}, Vec3{-1, 0, 0}), -1);
  // But its east edge talks to process 1.
  EXPECT_GE(plan.comm_for_send(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{1, 0, 0}), 0);
}

TEST(Plan, ListingOneMirroringStructure) {
  // Listing 1's a/b sets: adjacent processes along an axis use different
  // comms for the same thread's same-direction exchange; processes two
  // apart reuse them.
  StencilPlan plan(Vec3{1, 4, 1}, Vec3{2, 2, 1}, false, PlanStrategy::kMirrored);
  const Vec3 thr{0, 1, 0};  // top edge thread sends north
  const Vec3 north{0, 1, 0};
  const int c0 = plan.comm_for_send(Vec3{0, 0, 0}, thr, north);
  const int c1 = plan.comm_for_send(Vec3{0, 1, 0}, thr, north);
  const int c2 = plan.comm_for_send(Vec3{0, 2, 0}, thr, north);
  EXPECT_NE(c0, c1);  // boundary parity flips
  EXPECT_EQ(c0, c2);  // and repeats
}

}  // namespace
}  // namespace rp
