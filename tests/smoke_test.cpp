// End-to-end smoke: every mechanism moves correct data through the runtime.

#include <gtest/gtest.h>

#include "tmpi/tmpi.h"
#include "workloads/collective_workload.h"
#include "workloads/event_runtime.h"
#include "workloads/msgrate.h"
#include "workloads/sparse_matmul.h"
#include "workloads/stencil.h"

namespace {

TEST(Smoke, PingPong) {
  tmpi::WorldConfig wc;
  wc.nranks = 2;
  tmpi::World world(wc);
  world.run([](tmpi::Rank& rank) {
    tmpi::Comm comm = rank.world_comm();
    int x = 41;
    if (rank.rank() == 0) {
      tmpi::send(&x, 1, tmpi::kInt32, 1, 7, comm);
      tmpi::Status st = tmpi::recv(&x, 1, tmpi::kInt32, 1, 8, comm);
      EXPECT_EQ(x, 42);
      EXPECT_EQ(st.source, 1);
    } else {
      int y = 0;
      tmpi::recv(&y, 1, tmpi::kInt32, 0, 7, comm);
      y += 1;
      tmpi::send(&y, 1, tmpi::kInt32, 0, 8, comm);
    }
  });
  EXPECT_GT(world.elapsed(), 0u);
}

TEST(Smoke, MsgRateAllModes) {
  for (auto mode :
       {wl::MsgRateMode::kEverywhere, wl::MsgRateMode::kThreadsOriginal,
        wl::MsgRateMode::kThreadsEndpoints, wl::MsgRateMode::kThreadsTags,
        wl::MsgRateMode::kThreadsComms}) {
    wl::MsgRateParams p;
    p.mode = mode;
    p.workers = 3;
    p.msgs_per_worker = 64;
    p.window = 8;
    const auto r = wl::run_msgrate(p);
    EXPECT_EQ(r.messages, 3u * 64u) << wl::to_string(mode);
    EXPECT_GT(r.elapsed_ns, 0u) << wl::to_string(mode);
  }
}

TEST(Smoke, StencilAllMechanisms) {
  std::uint64_t first_checksum = 0;
  bool first = true;
  for (auto mech : {wl::StencilMech::kSerial, wl::StencilMech::kComms, wl::StencilMech::kTags,
                    wl::StencilMech::kEndpoints, wl::StencilMech::kPartitioned}) {
    wl::StencilParams p;
    p.mech = mech;
    p.px = 2;
    p.py = 2;
    p.tx = 3;
    p.ty = 3;
    p.iters = 2;
    p.halo_bytes = 128;
    const auto r = wl::run_stencil(p);
    EXPECT_GT(r.run.checksum, 0u) << wl::to_string(mech);
    if (first) {
      first_checksum = r.run.checksum;
      first = false;
    } else {
      // Every mechanism moves the same halos: identical checksums.
      EXPECT_EQ(r.run.checksum, first_checksum) << wl::to_string(mech);
    }
  }
}

TEST(Smoke, EventRuntimeAllMechanisms) {
  for (auto mech : {wl::EventMech::kSerial, wl::EventMech::kComms, wl::EventMech::kTags,
                    wl::EventMech::kEndpoints, wl::EventMech::kEverywhere}) {
    wl::EventParams p;
    p.mech = mech;
    p.nranks = 3;
    p.task_threads = 2;
    p.events_per_thread = 16;
    const auto r = wl::run_event_runtime(p);
    EXPECT_GT(r.aux, 0u) << wl::to_string(mech);
  }
}

TEST(Smoke, SparseMatmulAllMechanisms) {
  for (auto mech :
       {wl::RmaMech::kStrictWindow, wl::RmaMech::kRelaxedHash, wl::RmaMech::kEndpointsWin}) {
    wl::MatmulParams p;
    p.mech = mech;
    p.nranks = 2;
    p.threads = 2;
    p.nb = 3;
    p.bs = 4;
    const auto r = wl::run_sparse_matmul(p);
    EXPECT_GT(r.aux, 0u) << wl::to_string(mech);
  }
}

TEST(Smoke, CollectiveAllMechanisms) {
  for (auto mech : {wl::CollMech::kSingleThread, wl::CollMech::kPerThreadComms,
                    wl::CollMech::kEndpoints, wl::CollMech::kPartitionedStyle}) {
    wl::CollParams p;
    p.mech = mech;
    p.nranks = 3;
    p.threads = 2;
    p.elements = 256;
    p.iters = 1;
    const auto r = wl::run_collective(p);
    EXPECT_GT(r.elapsed_ns, 0u) << wl::to_string(mech);
  }
}

}  // namespace
