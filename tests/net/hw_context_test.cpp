#include "net/hw_context.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tmpi::net {
namespace {

TEST(HwContext, InjectionAdvancesClockByOverhead) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  cm.ctx_inject_ns = 100;
  VirtualClock clk(0);
  const Time done = ctx.inject(clk, cm);
  EXPECT_EQ(done, 100u);
  EXPECT_EQ(clk.now(), 100u);
}

TEST(HwContext, BackToBackInjectionsSerialize) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  cm.ctx_inject_ns = 100;
  VirtualClock clk(0);
  ctx.inject(clk, cm);
  ctx.inject(clk, cm);
  ctx.inject(clk, cm);
  EXPECT_EQ(clk.now(), 300u);
}

TEST(HwContext, LateArrivalStartsAtItsOwnClock) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  cm.ctx_inject_ns = 100;
  VirtualClock early(0);
  ctx.inject(early, cm);  // busy until 100
  VirtualClock late(500);
  const Time done = ctx.inject(late, cm);
  EXPECT_EQ(done, 600u);  // starts at max(500, 100)
}

TEST(HwContext, SharingAddsPenalty) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  ctx.add_sharer();  // two VCIs on one context
  CostModel cm;
  cm.ctx_inject_ns = 100;
  cm.ctx_share_penalty_ns = 50;
  VirtualClock clk(0);
  ctx.inject(clk, cm);
  EXPECT_EQ(clk.now(), 150u);
  EXPECT_EQ(stats.snapshot().shared_ctx_injections, 1u);
}

TEST(HwContext, ContendingThreadsSerializeInVirtualTime) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  cm.ctx_inject_ns = 100;
  constexpr int kThreads = 8;
  constexpr int kInjectsPerThread = 50;
  std::vector<VirtualClock> clocks(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kInjectsPerThread; ++i) clocks[t].advance_to(0), ctx.inject(clocks[t], cm);
    });
  }
  for (auto& th : threads) th.join();
  // All injections serialized: the busy horizon equals the total work.
  EXPECT_EQ(ctx.busy_until(), static_cast<Time>(kThreads * kInjectsPerThread * 100));
  Time max_clock = 0;
  for (const auto& c : clocks) max_clock = std::max(max_clock, c.now());
  EXPECT_EQ(max_clock, ctx.busy_until());
  EXPECT_EQ(stats.snapshot().injections, static_cast<std::uint64_t>(kThreads * kInjectsPerThread));
}

TEST(HwContext, StatsTrackBusyTime) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  cm.ctx_inject_ns = 70;
  VirtualClock clk;
  ctx.inject(clk, cm);
  ctx.inject(clk, cm);
  EXPECT_EQ(stats.snapshot().ctx_busy_ns, 140u);
}

}  // namespace
}  // namespace tmpi::net

namespace tmpi::net {
namespace {

TEST(HwContext, DuplexReceiveSharesTheQueue) {
  // Transmit and receive work serialize on one context: an arrival while the
  // owner injects delays whichever comes second.
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  cm.ctx_inject_ns = 100;
  cm.ctx_rx_ns = 40;
  VirtualClock tx(0);
  ctx.inject(tx, cm);  // busy until 100
  VirtualClock rx(50);
  const Time done = ctx.receive(rx, cm);
  EXPECT_EQ(done, 140u);  // starts after the injection finished
}

TEST(HwContext, OccupyGeneralizesCosts) {
  NetStats stats;
  HwContext ctx(0, &stats);
  ctx.add_sharer();
  CostModel cm;
  VirtualClock clk(0);
  const Time done = ctx.occupy(clk, cm, 333);
  EXPECT_EQ(done, 333u);
  EXPECT_EQ(clk.now(), 333u);
}

TEST(NetStats, SnapshotDifferenceIsElementwise) {
  NetStats stats;
  stats.add_message(10);
  stats.add_part_lock();
  const auto before = stats.snapshot();
  stats.add_message(5);
  stats.add_part_lock();
  stats.add_rma(true);
  const auto d = stats.snapshot() - before;
  EXPECT_EQ(d.messages, 1u);
  EXPECT_EQ(d.bytes, 5u);
  EXPECT_EQ(d.part_lock_acquisitions, 1u);
  EXPECT_EQ(d.rma_ops, 1u);
  EXPECT_EQ(d.atomic_ops, 1u);
}

}  // namespace
}  // namespace tmpi::net
