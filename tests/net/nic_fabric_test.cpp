#include <gtest/gtest.h>

#include <set>

#include "net/contention_lock.h"
#include "net/fabric.h"
#include "net/nic.h"

namespace tmpi::net {
namespace {

TEST(Nic, DedicatedContextsWhilePoolLasts) {
  CostModel cm;
  cm.max_hw_contexts = 4;
  NetStats stats;
  Nic nic(0, &cm, &stats);
  std::set<int> ids;
  for (int i = 0; i < 4; ++i) ids.insert(nic.acquire_context().id());
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(nic.contexts_in_use(), 4);
}

TEST(Nic, OverflowSharesRoundRobin) {
  CostModel cm;
  cm.max_hw_contexts = 2;
  NetStats stats;
  Nic nic(0, &cm, &stats);
  HwContext& a = nic.acquire_context();
  HwContext& b = nic.acquire_context();
  HwContext& c = nic.acquire_context();  // shared with a or b
  HwContext& d = nic.acquire_context();
  EXPECT_EQ(nic.contexts_in_use(), 2);
  EXPECT_EQ(nic.total_sharers(), 4);
  EXPECT_TRUE(&c == &a || &c == &b);
  EXPECT_TRUE(&d == &a || &d == &b);
  EXPECT_NE(&c, &d);  // round robin spreads the sharers
}

TEST(Nic, UnboundedPoolNeverShares) {
  CostModel cm;  // default: effectively unbounded
  NetStats stats;
  Nic nic(0, &cm, &stats);
  for (int i = 0; i < 200; ++i) nic.acquire_context();
  EXPECT_EQ(nic.contexts_in_use(), 200);
  for (int i = 0; i < 200; ++i) {
    // every context has exactly one sharer
  }
  EXPECT_EQ(nic.total_sharers(), 200);
}

TEST(Fabric, TransferTimePicksShmWithinNode) {
  CostModel cm;
  Fabric fabric(3, cm);
  EXPECT_EQ(fabric.transfer_time(1, 1, 1024), cm.shm_time(1024));
  EXPECT_EQ(fabric.transfer_time(0, 2, 1024), cm.wire_time(1024));
}

TEST(Fabric, NodesHaveIndependentNics) {
  Fabric fabric(2, CostModel{});
  HwContext& a = fabric.nic(0).acquire_context();
  HwContext& b = fabric.nic(1).acquire_context();
  EXPECT_NE(&a, &b);
}

TEST(ContentionLock, UncontendedChargesBaseCost) {
  CostModel cm;
  cm.lock_uncontended_ns = 30;
  NetStats stats;
  ContentionLock lock;
  VirtualClock clk(0);
  {
    ContentionLock::Guard g(lock, clk, cm, &stats);
  }
  EXPECT_EQ(clk.now(), 30u);
  EXPECT_EQ(stats.snapshot().contended_acquisitions, 0u);
}

TEST(ContentionLock, DoesNotPropagateHolderClocks) {
  // Cross-holder virtual-time serialization is deliberately absent (see the
  // header comment): a holder far in the virtual future must not stall an
  // earlier acquirer. Channel throughput serialization lives in HwContext.
  CostModel cm;
  cm.lock_uncontended_ns = 10;
  NetStats stats;
  ContentionLock lock;
  VirtualClock a(1'000'000);  // an event from the virtual future
  VirtualClock b(0);
  {
    ContentionLock::Guard g(lock, a, cm, &stats);
  }
  {
    ContentionLock::Guard g(lock, b, cm, &stats);
  }
  EXPECT_EQ(b.now(), 10u);  // only the acquisition charge
}

}  // namespace
}  // namespace tmpi::net
