#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "net/trace.h"
#include "tmpi/profiler.h"
#include "tmpi/tmpi.h"

/// Tests for the virtual-time tracing subsystem (DESIGN.md §9): knob
/// layering, bit-exact parity with tracing enabled, event-stream ordering,
/// ring wrap/drop accounting, the Chrome trace_event exporter (validated and
/// parsed back), the metrics percentiles, and the ToolHooks bridge.

namespace {

using namespace tmpi;

WorldConfig traced_config(int nranks = 2, int vcis = 1) {
  WorldConfig wc;
  wc.nranks = nranks;
  wc.ranks_per_node = 1;
  wc.num_vcis = vcis;
  wc.trace_info.set("tmpi_trace", "1");
  wc.trace_info.set("tmpi_trace_path", "");  // record only, never write files
  return wc;
}

net::Time now() { return net::ThreadClock::get().now(); }

// ---------------------------------------------------------------------------
// Knob resolution: Info keys, env overlay, env wins.

TEST(TraceConfig, InfoKeysParse) {
  net::TraceConfig tc;
  EXPECT_FALSE(tc.enabled);
  EXPECT_TRUE(tc.set("tmpi_trace", "1"));
  EXPECT_TRUE(tc.enabled);
  EXPECT_TRUE(tc.set("tmpi_trace", "0"));
  EXPECT_FALSE(tc.enabled);
  EXPECT_TRUE(tc.set("tmpi_trace", "true"));
  EXPECT_TRUE(tc.enabled);
  EXPECT_TRUE(tc.set("tmpi_trace_path", "/tmp/x.json"));
  EXPECT_EQ(tc.path, "/tmp/x.json");
  EXPECT_TRUE(tc.set("tmpi_trace_buffer_events", "128"));
  EXPECT_EQ(tc.buffer_events, 128u);
  EXPECT_FALSE(tc.set("tmpi_unrelated_key", "1"));
}

TEST(TraceConfig, EnvOverlayWins) {
  ::setenv("TMPI_TRACE", "1", 1);
  ::setenv("TMPI_TRACE_PATH", "env_path.json", 1);
  ::setenv("TMPI_TRACE_BUFFER_EVENTS", "777", 1);
  net::TraceConfig base;
  base.path = "info_path.json";
  net::TraceConfig tc = net::TraceConfig::from_env(base);
  EXPECT_TRUE(tc.enabled);
  EXPECT_EQ(tc.path, "env_path.json");
  EXPECT_EQ(tc.buffer_events, 777u);
  ::unsetenv("TMPI_TRACE");
  ::unsetenv("TMPI_TRACE_PATH");
  ::unsetenv("TMPI_TRACE_BUFFER_EVENTS");

  // Without the env, Info-provided values survive.
  net::TraceConfig tc2 = net::TraceConfig::from_env(base);
  EXPECT_FALSE(tc2.enabled);
  EXPECT_EQ(tc2.path, "info_path.json");
}

TEST(TraceConfig, WorldTracerLifecycle) {
  WorldConfig off;
  off.nranks = 1;
  World w_off(off);
  EXPECT_EQ(w_off.tracer(), nullptr);

  World w_on(traced_config(1));
  ASSERT_NE(w_on.tracer(), nullptr);
  EXPECT_TRUE(w_on.tracer()->config().enabled);
}

// ---------------------------------------------------------------------------
// Bit-exact parity: enabling the recorder must not move a single virtual
// timestamp. Golden values from the seed suite (transport_test.cpp).

TEST(TraceParity, EagerPostedFirstGoldenWithTracingOn) {
  World world(traced_config());
  ASSERT_NE(world.tracer(), nullptr);
  std::vector<std::byte> sbuf(8, std::byte{0x11});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq.wait();
      recv_done = now();
    }
  });

  EXPECT_EQ(send_done, 140u);
  EXPECT_EQ(recv_done, 1132u);
  EXPECT_GT(world.tracer()->recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Event-stream structure.

TEST(TraceEvents, MergedStreamSortedAndSpansOrdered) {
  World world(traced_config());
  std::vector<std::byte> sbuf(8, std::byte{0x33});
  std::vector<std::byte> rbuf(8);
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      send(sbuf.data(), 8, kByte, 1, 5, rank.world_comm());
    } else {
      recv(rbuf.data(), 8, kByte, 0, 5, rank.world_comm());
    }
  });

  const std::vector<net::TraceEvent> evs = world.tracer()->merged();
  ASSERT_FALSE(evs.empty());
  EXPECT_TRUE(std::is_sorted(evs.begin(), evs.end(), [](const auto& a, const auto& b) {
    return a.ts < b.ts || (a.ts == b.ts && a.seq < b.seq);
  }));

  // Every span that completes was posted first, at an earlier-or-equal ts.
  std::map<std::uint64_t, net::Time> post_ts;
  bool saw_post = false;
  bool saw_inject = false;
  bool saw_deposit = false;
  bool saw_complete = false;
  for (const auto& ev : evs) {
    switch (ev.kind) {
      case net::TraceEv::kPost:
        post_ts[ev.span] = ev.ts;
        saw_post = true;
        break;
      case net::TraceEv::kInject:
        saw_inject = true;
        break;
      case net::TraceEv::kDeposit:
        saw_deposit = true;
        break;
      case net::TraceEv::kComplete:
        if (ev.span != 0) {
          ASSERT_TRUE(post_ts.count(ev.span)) << "complete without post, span " << ev.span;
          EXPECT_LE(post_ts[ev.span], ev.ts);
          saw_complete = true;
        }
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_post);
  EXPECT_TRUE(saw_inject);
  EXPECT_TRUE(saw_deposit);
  EXPECT_TRUE(saw_complete);
}

TEST(TraceEvents, TailFiltersByChannel) {
  World world(traced_config(2, 2));
  std::vector<std::byte> sbuf(8, std::byte{0x44});
  std::vector<std::byte> rbuf(8);
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      send(sbuf.data(), 8, kByte, 1, 1, rank.world_comm());
    } else {
      recv(rbuf.data(), 8, kByte, 0, 1, rank.world_comm());
    }
  });

  const auto tail0 = world.tracer()->tail(0, 0, 4);
  ASSERT_FALSE(tail0.empty());
  EXPECT_LE(tail0.size(), 4u);
  for (const auto& ev : tail0) {
    EXPECT_EQ(ev.rank, 0);
    EXPECT_TRUE(ev.vci == 0 || ev.vci < 0);
  }
  // Oldest-first ordering within the tail.
  EXPECT_TRUE(std::is_sorted(tail0.begin(), tail0.end(), [](const auto& a, const auto& b) {
    return a.ts < b.ts || (a.ts == b.ts && a.seq < b.seq);
  }));
  // A rank with no traffic yields an empty tail.
  EXPECT_TRUE(world.tracer()->tail(17, 0, 4).empty());

  // format_trace_event is the watchdog's rendering; smoke its shape.
  const std::string line = net::format_trace_event(tail0.front());
  EXPECT_NE(line.find("rank 0"), std::string::npos);
}

TEST(TraceEvents, RingWrapAccountsDrops) {
  WorldConfig wc = traced_config();
  wc.trace_info.set("tmpi_trace_buffer_events", "32");
  World world(wc);
  std::vector<std::byte> sbuf(8, std::byte{0x55});
  std::vector<std::byte> rbuf(8);
  world.run([&](Rank& rank) {
    for (int i = 0; i < 64; ++i) {
      if (rank.rank() == 0) {
        send(sbuf.data(), 8, kByte, 1, 2, rank.world_comm());
      } else {
        recv(rbuf.data(), 8, kByte, 0, 2, rank.world_comm());
      }
    }
  });

  const net::TraceRecorder& tr = *world.tracer();
  EXPECT_GT(tr.dropped(), 0u) << "64 messages through 32-slot rings must wrap";
  EXPECT_EQ(tr.recorded(), tr.dropped() + tr.merged().size());
}

// ---------------------------------------------------------------------------
// Chrome exporter + validator.

TEST(TraceChrome, ExportValidatesAndParsesBack) {
  World world(traced_config(2, 2));
  std::vector<std::byte> sbuf(8, std::byte{0x66});
  std::vector<std::byte> rbuf(8);
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      send(sbuf.data(), 8, kByte, 1, 9, rank.world_comm());
    } else {
      recv(rbuf.data(), 8, kByte, 0, 9, rank.world_comm());
    }
  });

  std::ostringstream os;
  world.tracer()->write_chrome_trace(os);
  const std::string text = os.str();

  std::string error;
  EXPECT_TRUE(net::validate_chrome_trace_json(text, &error)) << error;

  // Parse-back spot checks on the serialized structure.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(text.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(text.find("\"vci 0\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // duration events
  EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);  // span begin
  EXPECT_NE(text.find("\"ph\":\"e\""), std::string::npos);  // span end
}

TEST(TraceChrome, ValidatorRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(net::validate_chrome_trace_json("not json at all", &error));
  EXPECT_FALSE(net::validate_chrome_trace_json("{}", &error));  // no traceEvents
  EXPECT_FALSE(net::validate_chrome_trace_json(R"({"traceEvents": 5})", &error));
  // Event missing its phase.
  EXPECT_FALSE(net::validate_chrome_trace_json(
      R"({"traceEvents":[{"pid":0,"tid":0,"ts":1,"name":"x"}]})", &error));
  // Per-track timestamps must be monotonic.
  EXPECT_FALSE(net::validate_chrome_trace_json(
      R"({"traceEvents":[
        {"ph":"i","pid":0,"tid":0,"ts":10,"name":"a"},
        {"ph":"i","pid":0,"tid":0,"ts":5,"name":"b"}]})",
      &error));
  EXPECT_NE(error.find("monoton"), std::string::npos) << error;
  // The same timestamps on different tracks are fine.
  EXPECT_TRUE(net::validate_chrome_trace_json(
      R"({"traceEvents":[
        {"ph":"i","pid":0,"tid":0,"ts":10,"name":"a"},
        {"ph":"i","pid":0,"tid":1,"ts":5,"name":"b"}]})",
      &error))
      << error;
}

// ---------------------------------------------------------------------------
// Metrics: per-op percentiles across every op family.

TEST(TraceMetrics, PercentilesCoverAllOpFamilies) {
  World world(traced_config(2, 2));
  std::vector<std::byte> sbuf(64, std::byte{0x77});
  std::vector<std::byte> rbuf(64);
  std::vector<double> win_mem(32, 1.0);
  world.run([&](Rank& rank) {
    Comm comm = rank.world_comm();
    // p2p.
    for (int i = 0; i < 8; ++i) {
      if (rank.rank() == 0) {
        send(sbuf.data(), 64, kByte, 1, 1, comm);
      } else {
        recv(rbuf.data(), 64, kByte, 0, 1, comm);
      }
    }
    // Collectives.
    double x = rank.rank();
    allreduce(&x, &x, 1, kDouble, Op::kSum, comm);
    // RMA.
    Window win = Window::create(win_mem.data(), win_mem.size() * sizeof(double), comm);
    if (rank.rank() == 0) {
      double v = 3.0;
      win.put(&v, 1, kDouble, 1, 0);
      win.flush_all();
    }
    win.fence();
    // Partitioned.
    std::vector<std::byte> pbuf(32, std::byte{0x12});
    std::vector<std::byte> prbuf(32);
    if (rank.rank() == 0) {
      Request sreq = psend_init(pbuf.data(), 4, 8, kByte, 1, 2, comm);
      start(sreq);
      for (int p = 0; p < 4; ++p) pready(p, sreq);
      sreq.wait();
    } else {
      Request rreq = precv_init(prbuf.data(), 4, 8, kByte, 0, 2, comm);
      start(rreq);
      rreq.wait();
    }
  });

  const net::NetStatsSnapshot snap = world.snapshot();
  ASSERT_FALSE(snap.op_latency.empty());
  std::set<std::string> families;
  for (const auto& ol : snap.op_latency) {
    families.insert(ol.op);
    EXPECT_LE(ol.p50, ol.p90) << ol.op;
    EXPECT_LE(ol.p90, ol.p99) << ol.op;
  }
  for (const char* fam : {"Send", "Recv", "Rma", "Partition", "Coll"}) {
    EXPECT_TRUE(families.count(fam)) << "missing family " << fam;
  }

  // The JSON metrics dump is well-formed; the CSV carries a header + rows.
  std::ostringstream js;
  write_metrics_json(*world.tracer(), js);
  std::string error;
  EXPECT_TRUE(net::validate_json_text(js.str(), &error)) << error << "\n" << js.str();
  std::ostringstream cs;
  write_metrics_csv(*world.tracer(), cs);
  EXPECT_NE(cs.str().find("op,count,errors,p50_ns,p90_ns,p99_ns"), std::string::npos);
  EXPECT_NE(cs.str().find("Send,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ToolHooks: PMPI-style synchronous callbacks.

class CountingHooks : public ToolHooks {
 public:
  std::atomic<int> events{0};
  std::atomic<int> posts{0};
  std::atomic<int> completes{0};

  void on_event(const net::TraceEvent&) override { events.fetch_add(1); }
  void on_post(const net::TraceEvent&) override { posts.fetch_add(1); }
  void on_complete(const net::TraceEvent&) override { completes.fetch_add(1); }
};

TEST(TraceHooks, AttachObserveDetach) {
  World world(traced_config());
  CountingHooks hooks;
  ASSERT_TRUE(attach_tool(world, &hooks));

  std::vector<std::byte> sbuf(8, std::byte{0x88});
  std::vector<std::byte> rbuf(8);
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      send(sbuf.data(), 8, kByte, 1, 4, rank.world_comm());
    } else {
      recv(rbuf.data(), 8, kByte, 0, 4, rank.world_comm());
    }
  });

  EXPECT_GT(hooks.events.load(), 0);
  EXPECT_GE(hooks.posts.load(), 2);      // one Send, one Recv
  EXPECT_GE(hooks.completes.load(), 2);  // both completed
  const int seen = hooks.events.load();

  detach_tool(world);
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      send(sbuf.data(), 8, kByte, 1, 4, rank.world_comm());
    } else {
      recv(rbuf.data(), 8, kByte, 0, 4, rank.world_comm());
    }
  });
  EXPECT_EQ(hooks.events.load(), seen) << "detached hooks must observe nothing";

  // attach_tool on an untraced world reports failure.
  WorldConfig off;
  off.nranks = 1;
  World w_off(off);
  EXPECT_FALSE(attach_tool(w_off, &hooks));
}

// ---------------------------------------------------------------------------
// Causal-link validation (DESIGN.md §14): the unit-level contract behind
// `trace_validate --links` and the golden-journey suite.

net::TraceEvent link_ev(net::TraceEv kind, std::uint64_t span, std::uint64_t parent,
                        net::Time ts) {
  net::TraceEvent ev;
  ev.kind = kind;
  ev.span = span;
  ev.parent = parent;
  ev.ts = ts;
  ev.rank = 0;
  return ev;
}

TEST(TraceLinks, ResolvedChainValidates) {
  // send post -> collective-child post -> cross-rank match, all after their
  // parents' posts.
  std::vector<net::TraceEvent> evs = {
      link_ev(net::TraceEv::kPost, 1, 0, 10),
      link_ev(net::TraceEv::kPost, 2, 1, 20),
      link_ev(net::TraceEv::kInject, 2, 0, 25),
      link_ev(net::TraceEv::kMatch, 3, 2, 30),
      link_ev(net::TraceEv::kComplete, 3, 0, 40),
  };
  std::string error;
  EXPECT_TRUE(net::validate_trace_links(evs, /*strict=*/true, &error)) << error;
}

TEST(TraceLinks, UnresolvedParentStrictVsTolerant) {
  // The parent's post fell off a wrapped ring: strict rejects, tolerant
  // (what the JSON validator uses when otherData.dropped > 0) accepts.
  std::vector<net::TraceEvent> evs = {
      link_ev(net::TraceEv::kMatch, 2, 99, 30),
  };
  std::string error;
  EXPECT_FALSE(net::validate_trace_links(evs, /*strict=*/true, &error));
  EXPECT_NE(error.find("unresolved"), std::string::npos) << error;
  EXPECT_TRUE(net::validate_trace_links(evs, /*strict=*/false, &error)) << error;
}

TEST(TraceLinks, CycleRejected) {
  std::vector<net::TraceEvent> evs = {
      link_ev(net::TraceEv::kPost, 1, 2, 10),
      link_ev(net::TraceEv::kPost, 2, 1, 10),
  };
  std::string error;
  EXPECT_FALSE(net::validate_trace_links(evs, /*strict=*/false, &error));
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;
}

TEST(TraceLinks, ChildBeforeParentPostRejected) {
  // A match stamped earlier than its parent's post breaks the journey's
  // virtual-time monotonicity.
  std::vector<net::TraceEvent> evs = {
      link_ev(net::TraceEv::kPost, 1, 0, 100),
      link_ev(net::TraceEv::kMatch, 2, 1, 50),
  };
  std::string error;
  EXPECT_FALSE(net::validate_trace_links(evs, /*strict=*/true, &error));
  EXPECT_NE(error.find("monotone"), std::string::npos) << error;
}

TEST(TraceLinks, LiveWorldExportPassesStrictLinkCheck) {
  // A collective inside a traced world produces parent-linked fragments;
  // both the in-memory stream and the Chrome export must survive strict
  // validation end to end.
  World world(traced_config(2));
  ASSERT_NE(world.tracer(), nullptr);
  world.run([&](Rank& rank) {
    std::array<std::int64_t, 4> sbuf{1, 2, 3, 4};
    std::array<std::int64_t, 4> rbuf{};
    allreduce(sbuf.data(), rbuf.data(), 4, kInt64, Op::kSum, rank.world_comm());
  });

  std::string error;
  ASSERT_EQ(world.tracer()->dropped(), 0u);
  EXPECT_TRUE(net::validate_trace_links(world.tracer()->merged(), /*strict=*/true, &error))
      << error;

  std::ostringstream chrome;
  world.tracer()->write_chrome_trace(chrome);
  EXPECT_TRUE(net::validate_chrome_trace_json(chrome.str(), &error)) << error;
  EXPECT_TRUE(net::validate_trace_links_json(chrome.str(), &error)) << error;
}

// ---------------------------------------------------------------------------
// Per-thread ring accounting: thread_stats() decomposes recorded()/dropped()
// exactly, one row per recording thread.

TEST(TraceThreadStats, RowsSumToRecorderTotals) {
  World world(traced_config(2));
  ASSERT_NE(world.tracer(), nullptr);
  std::vector<std::byte> sbuf(8, std::byte{0x55});
  std::vector<std::byte> rbuf(8);
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      for (int i = 0; i < 10; ++i) send(sbuf.data(), 8, kByte, 1, i, rank.world_comm());
    } else {
      for (int i = 0; i < 10; ++i) recv(rbuf.data(), 8, kByte, 0, i, rank.world_comm());
    }
  });

  const std::vector<net::TraceRecorder::ThreadStats> rows = world.tracer()->thread_stats();
  ASSERT_GE(rows.size(), 2u);  // at least one ring per rank thread
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (const auto& r : rows) {
    recorded += r.recorded;
    dropped += r.dropped;
  }
  EXPECT_EQ(recorded, world.tracer()->recorded());
  EXPECT_EQ(dropped, world.tracer()->dropped());
}

}  // namespace
