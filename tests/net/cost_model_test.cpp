#include "net/cost_model.h"

#include <gtest/gtest.h>

namespace tmpi::net {
namespace {

TEST(CostModel, WireTimeIsLatencyPlusBandwidth) {
  CostModel cm;
  cm.wire_latency_ns = 1000;
  cm.bandwidth_bytes_per_ns = 10.0;
  EXPECT_EQ(cm.wire_time(0), 1000u);
  EXPECT_EQ(cm.wire_time(100), 1010u);
  EXPECT_EQ(cm.wire_time(10000), 2000u);
}

TEST(CostModel, ShmTimeIsFasterThanWireForDefaults) {
  const CostModel cm;
  for (std::size_t bytes : {0ul, 64ul, 4096ul, 1048576ul}) {
    EXPECT_LT(cm.shm_time(bytes), cm.wire_time(bytes)) << bytes;
  }
}

TEST(CostModel, WireTimeMonotonicInSize) {
  const CostModel cm;
  Time prev = 0;
  for (std::size_t bytes = 0; bytes <= 1 << 20; bytes += 4096) {
    const Time t = cm.wire_time(bytes);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CostModel, OmnipathPresetHasBoundedContexts) {
  const CostModel cm = CostModel::omnipath();
  EXPECT_EQ(cm.max_hw_contexts, 160);  // the paper's Lesson 3 figure
  EXPECT_EQ(cm.name, "omnipath");
}

TEST(CostModel, InfinibandPresetIsEffectivelyUnbounded) {
  const CostModel cm = CostModel::infiniband();
  EXPECT_GT(cm.max_hw_contexts, 100000);
  EXPECT_GT(cm.bandwidth_bytes_per_ns, CostModel::omnipath().bandwidth_bytes_per_ns);
}

TEST(CostModel, SlowSerialPresetAmplifiesSerialization) {
  const CostModel cm = CostModel::slow_serial();
  const CostModel base;
  EXPECT_GT(cm.ctx_inject_ns, base.ctx_inject_ns);
  EXPECT_GT(cm.lock_contended_ns, base.lock_contended_ns);
}

TEST(CostModel, DefaultEagerThresholdIs64K) {
  const CostModel cm;
  EXPECT_EQ(cm.eager_threshold_bytes, 64u * 1024u);
}

}  // namespace
}  // namespace tmpi::net
