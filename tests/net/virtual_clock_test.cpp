#include "net/virtual_clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace tmpi::net {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0u);
}

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock c(42);
  EXPECT_EQ(c.now(), 42u);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.advance(10);
  c.advance(5);
  EXPECT_EQ(c.now(), 15u);
}

TEST(VirtualClock, AdvanceToIsMonotonic) {
  VirtualClock c(100);
  c.advance_to(50);  // past: no-op
  EXPECT_EQ(c.now(), 100u);
  c.advance_to(150);
  EXPECT_EQ(c.now(), 150u);
}

TEST(VirtualClock, AdvanceToSameTimeIsNoop) {
  VirtualClock c(7);
  c.advance_to(7);
  EXPECT_EQ(c.now(), 7u);
}

TEST(ThreadClock, BindAndGet) {
  VirtualClock c(5);
  ScopedClockBind bind(&c);
  EXPECT_TRUE(ThreadClock::bound());
  EXPECT_EQ(ThreadClock::get().now(), 5u);
  ThreadClock::get().advance(3);
  EXPECT_EQ(c.now(), 8u);
}

TEST(ThreadClock, ScopedBindRestoresPrevious) {
  VirtualClock outer(1);
  VirtualClock inner(2);
  ScopedClockBind b1(&outer);
  {
    ScopedClockBind b2(&inner);
    EXPECT_EQ(ThreadClock::get().now(), 2u);
  }
  EXPECT_EQ(ThreadClock::get().now(), 1u);
}

TEST(ThreadClock, BindIsPerThread) {
  VirtualClock main_clock(10);
  ScopedClockBind bind(&main_clock);
  bool other_thread_bound = true;
  std::thread t([&] { other_thread_bound = ThreadClock::bound(); });
  t.join();
  EXPECT_FALSE(other_thread_bound);
  EXPECT_TRUE(ThreadClock::bound());
}

}  // namespace
}  // namespace tmpi::net
