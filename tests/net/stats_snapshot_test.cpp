#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/stats.h"

/// Regression tests for the snapshot-ordering rule in stats.h: writers bump
/// the source counter first (relaxed) and the derived counter second
/// (release); snapshot() loads derived counters first (acquire), sources
/// after. A snapshot taken mid-flight must therefore never show a derived
/// counter ahead of its source — the torn pairs the pre-fix relaxed loads
/// allowed.

namespace {

using namespace tmpi::net;

constexpr int kWriters = 4;
constexpr int kItersPerWriter = 20000;

TEST(StatsSnapshot, DerivedNeverExceedsSourceUnderConcurrentLoad) {
  NetStats stats;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stats, w] {
      for (int i = 0; i < kItersPerWriter; ++i) {
        stats.add_lock(/*contended=*/(i & 3) == 0);
        stats.add_injection(/*shared_ctx=*/(i & 1) == 0, /*busy=*/10);
        stats.add_rma(/*atomic=*/(i & 7) == 0);
        // Fault-layer rule: every lost attempt counts a drop/corrupt before
        // its retransmit-or-timeout verdict.
        if ((i & 1) == 0) {
          stats.add_drop();
          stats.add_retransmit();
        } else {
          stats.add_corrupt();
          stats.add_timeout();
        }
        // Message-classification rule (the PR7 torn pair): the message is
        // counted first, its unexpected/rendezvous classification second.
        stats.add_message(static_cast<std::uint64_t>((w + 1) * (i % 512)));
        if ((i & 3) == 0) stats.add_unexpected();
        if ((i & 7) == 0) stats.add_rendezvous();
      }
    });
  }

  std::thread reader([&stats, &done] {
    std::uint64_t snaps = 0;
    while (!done.load(std::memory_order_acquire)) {
      const NetStatsSnapshot s = stats.snapshot();
      ASSERT_LE(s.contended_acquisitions, s.lock_acquisitions);
      ASSERT_LE(s.shared_ctx_injections, s.injections);
      ASSERT_LE(s.atomic_ops, s.rma_ops);
      ASSERT_LE(s.retransmits + s.timeouts, s.drops + s.corrupts);
      ASSERT_LE(s.unexpected_messages, s.messages);
      ASSERT_LE(s.rendezvous_messages, s.messages);
      ++snaps;
    }
    EXPECT_GT(snaps, 0u);
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiescent totals are exact.
  const NetStatsSnapshot s = stats.snapshot();
  const std::uint64_t n = static_cast<std::uint64_t>(kWriters) * kItersPerWriter;
  EXPECT_EQ(s.lock_acquisitions, n);
  EXPECT_EQ(s.contended_acquisitions, n / 4);
  EXPECT_EQ(s.injections, n);
  EXPECT_EQ(s.shared_ctx_injections, n / 2);
  EXPECT_EQ(s.rma_ops, n);
  EXPECT_EQ(s.atomic_ops, n / 8);
  EXPECT_EQ(s.drops, n / 2);
  EXPECT_EQ(s.corrupts, n / 2);
  EXPECT_EQ(s.retransmits, n / 2);
  EXPECT_EQ(s.timeouts, n / 2);
  EXPECT_EQ(s.messages, n);
  EXPECT_EQ(s.unexpected_messages, n / 4);
  EXPECT_EQ(s.rendezvous_messages, n / 8);
  EXPECT_EQ(s.ctx_busy_ns, n * 10);
  std::uint64_t hist_total = 0;
  for (std::uint64_t b : s.size_hist) hist_total += b;
  EXPECT_EQ(hist_total, n);
}

TEST(StatsSnapshot, ChannelDerivedNeverExceedsSourceUnderConcurrentLoad) {
  NetStats stats;
  ChannelStats& ch = stats.channel(0, 0);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ch] {
      for (int i = 0; i < kItersPerWriter; ++i) {
        ch.add_lock(/*contended=*/(i & 3) == 0);
        if ((i & 1) == 0) {
          ch.add_drop();
          ch.add_retransmit();
        } else {
          ch.add_corrupt();
          ch.add_timeout();
        }
        ch.note_unexpected_depth(static_cast<std::uint64_t>(i % 64));
        // Delivery rule (the PR7 torn pair): every deposit is preceded by
        // its receive-side channel op — a PDES worker bumps both.
        ch.add_rx();
        if ((i & 1) == 0) ch.add_deposit();
      }
    });
  }

  std::thread reader([&ch, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const ChannelStatsSnapshot s = ch.snapshot();
      ASSERT_LE(s.contended_acquisitions, s.lock_acquisitions);
      ASSERT_LE(s.retransmits + s.timeouts, s.drops + s.corrupts);
      ASSERT_LE(s.deposits, s.rx_ops);
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const ChannelStatsSnapshot s = ch.snapshot();
  const std::uint64_t n = static_cast<std::uint64_t>(kWriters) * kItersPerWriter;
  EXPECT_EQ(s.lock_acquisitions, n);
  EXPECT_EQ(s.contended_acquisitions, n / 4);
  EXPECT_EQ(s.drops, n / 2);
  EXPECT_EQ(s.retransmits, n / 2);
  EXPECT_EQ(s.rx_ops, n);
  EXPECT_EQ(s.deposits, n / 2);
  EXPECT_EQ(s.unexpected_hwm, 63u);
}

TEST(StatsSnapshot, ChannelsSortedByRankThenVci) {
  // The registry shards channels by a mixed (rank, vci) hash, so insertion
  // and shard order are both arbitrary; snapshot() must still present them
  // sorted by (rank, vci) for stable telemetry output.
  NetStats stats;
  stats.channel(2, 1).add_lock(false);
  stats.channel(0, 3).add_lock(false);
  stats.channel(7, 0).add_lock(false);
  stats.channel(0, 1).add_lock(false);
  stats.channel(2, 0).add_lock(false);

  const NetStatsSnapshot s = stats.snapshot();
  ASSERT_EQ(s.channels.size(), 5u);
  const std::pair<int, int> expected[] = {{0, 1}, {0, 3}, {2, 0}, {2, 1}, {7, 0}};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.channels[i].rank, expected[i].first) << "index " << i;
    EXPECT_EQ(s.channels[i].vci, expected[i].second) << "index " << i;
  }
}

}  // namespace
