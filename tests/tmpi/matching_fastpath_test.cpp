// Tests for the hint-gated exact-key matching fast path (DESIGN.md §10):
// bucket-mode matching against a list-mode twin (assignments AND virtual
// clocks must be identical — the fast path charges list-equivalent probe
// costs), probe semantics under bucket mode, the sticky bucket→list drain on
// a late wildcard post, failover absorb() of bucketed entries, and the
// world-level mode-parity guarantee.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/cost_model.h"
#include "net/stats.h"
#include "tmpi/matching.h"
#include "tmpi/tmpi.h"
#include "twin_harness.h"

namespace tmpi::detail {
namespace {

/// Drives one MatchingEngine with its own clock/stats; message payloads carry
/// the message id so assignments can be read back from completed receives.
struct Harness {
  MatchingEngine eng;
  net::CostModel cm;
  net::NetStats stats;
  net::VirtualClock clk;
  std::vector<std::shared_ptr<ReqState>> reqs;
  std::vector<std::unique_ptr<std::uint64_t>> bufs;

  explicit Harness(MatchPolicy p, net::ChannelStats* ch = nullptr) { eng.configure(p, ch); }

  void deposit(int ctx, int src, Tag tag, std::uint64_t id, bool fastpath = true) {
    Envelope env;
    env.ctx_id = ctx;
    env.src = src;
    env.tag = tag;
    env.fastpath = fastpath;
    env.bytes = sizeof(id);
    env.payload.resize(sizeof(id));
    std::memcpy(env.payload.data(), &id, sizeof(id));
    eng.deposit(std::move(env), clk, cm, &stats);
  }

  /// Posts a receive; returns its index for result().
  std::size_t post(int ctx, int src, Tag tag, bool fastpath = true) {
    reqs.push_back(std::make_shared<ReqState>());
    bufs.push_back(std::make_unique<std::uint64_t>(0));
    PostedRecv pr;
    pr.ctx_id = ctx;
    pr.src = src;
    pr.tag = tag;
    pr.fastpath = fastpath;
    pr.buf = reinterpret_cast<std::byte*>(bufs.back().get());
    pr.capacity = sizeof(std::uint64_t);
    pr.req = reqs.back();
    eng.post_recv(std::move(pr), clk, cm, &stats);
    return reqs.size() - 1;
  }

  /// Message id delivered into receive `i`, or nullopt while pending.
  std::optional<std::uint64_t> result(std::size_t i) {
    std::scoped_lock lk(reqs[i]->mu);
    if (!reqs[i]->complete) return std::nullopt;
    return *bufs[i];
  }
};

// ---------------------------------------------------------------------------
// Bucket mode must be invisible in virtual time: a kBucket engine and a kList
// engine fed the identical concrete-key sequence agree on every clock value,
// every queue depth, and every message-to-receive assignment.
TEST(MatchFastpath, BucketAgreesWithListTwinBitExact) {
  Harness bucket(MatchPolicy::kBucket);
  Harness list(MatchPolicy::kList);
  ASSERT_TRUE(bucket.eng.bucket_mode());
  ASSERT_FALSE(list.eng.bucket_mode());

  // Deterministic interleave over 2 contexts, 3 sources, 4 tags; every shape
  // shows up both posted-first and unexpected-first.
  std::uint64_t id = 1;
  for (int round = 0; round < 40; ++round) {
    const int ctx = round % 2;
    const int src = round % 3;
    const Tag tag = static_cast<Tag>((round * 7) % 4);
    if (round % 3 != 0) {
      bucket.deposit(ctx, src, tag, id);
      list.deposit(ctx, src, tag, id);
      ++id;
    } else {
      bucket.post(ctx, src, tag);
      list.post(ctx, src, tag);
    }
    ASSERT_EQ(bucket.clk.now(), list.clk.now()) << "round " << round;
    ASSERT_EQ(bucket.eng.posted_depth(), list.eng.posted_depth()) << "round " << round;
    ASSERT_EQ(bucket.eng.unexpected_depth(), list.eng.unexpected_depth()) << "round " << round;
  }
  // Drain: post the exact shape of everything still unexpected, in the same
  // order on both engines.
  for (int ctx = 0; ctx < 2; ++ctx) {
    for (int src = 0; src < 3; ++src) {
      for (Tag tag = 0; tag < 4; ++tag) {
        while (bucket.eng.unexpected_depth() > 0) {
          const bool bhit = bucket.eng.probe_unexpected(ctx, src, tag, true, bucket.clk,
                                                        bucket.cm, &bucket.stats, nullptr);
          const bool lhit = list.eng.probe_unexpected(ctx, src, tag, true, list.clk, list.cm,
                                                      &list.stats, nullptr);
          ASSERT_EQ(bhit, lhit);
          ASSERT_EQ(bucket.clk.now(), list.clk.now());
          if (!bhit) break;
          bucket.post(ctx, src, tag);
          list.post(ctx, src, tag);
          ASSERT_EQ(bucket.clk.now(), list.clk.now());
        }
      }
    }
  }
  ASSERT_EQ(bucket.eng.unexpected_depth(), 0u);

  ASSERT_EQ(bucket.reqs.size(), list.reqs.size());
  for (std::size_t i = 0; i < bucket.reqs.size(); ++i) {
    EXPECT_EQ(bucket.result(i), list.result(i)) << "receive " << i;
  }
  EXPECT_TRUE(bucket.eng.bucket_mode());  // never latched: no wildcards posted

  const auto bs = bucket.stats.snapshot();
  const auto ls = list.stats.snapshot();
  EXPECT_GT(bs.bucket_hits + bs.bucket_misses, 0u);
  EXPECT_EQ(bs.wildcard_fallbacks, 0u);
  EXPECT_EQ(ls.bucket_hits + ls.bucket_misses, 0u);
  EXPECT_GT(ls.wildcard_fallbacks, 0u);  // list mode always takes the scan
  EXPECT_EQ(bs.match_probes, ls.match_probes);  // charge parity in aggregate
}

// ---------------------------------------------------------------------------
// probe_unexpected under bucket mode: hits fill Status and advance the clock
// to the message's ready time, misses charge the full-queue scan cost; both
// charge exactly what the list twin charges, and neither consumes anything.
TEST(MatchFastpath, ProbeUnexpectedBucketMode) {
  Harness bucket(MatchPolicy::kBucket);
  Harness list(MatchPolicy::kList);

  bucket.deposit(0, 1, 5, 42);
  bucket.deposit(0, 2, 6, 43);
  list.deposit(0, 1, 5, 42);
  list.deposit(0, 2, 6, 43);

  Status bst;
  Status lst;
  EXPECT_TRUE(bucket.eng.probe_unexpected(0, 2, 6, true, bucket.clk, bucket.cm,
                                          &bucket.stats, &bst));
  EXPECT_TRUE(list.eng.probe_unexpected(0, 2, 6, true, list.clk, list.cm, &list.stats, &lst));
  EXPECT_EQ(bst.source, 2);
  EXPECT_EQ(bst.tag, 6);
  EXPECT_EQ(bst.bytes, sizeof(std::uint64_t));
  EXPECT_EQ(bucket.clk.now(), list.clk.now());

  EXPECT_FALSE(bucket.eng.probe_unexpected(0, 1, 9, true, bucket.clk, bucket.cm,
                                           &bucket.stats, nullptr));
  EXPECT_FALSE(list.eng.probe_unexpected(0, 1, 9, true, list.clk, list.cm, &list.stats, nullptr));
  EXPECT_EQ(bucket.clk.now(), list.clk.now());

  // Probes are non-consuming in both modes.
  EXPECT_EQ(bucket.eng.unexpected_depth(), 2u);
  EXPECT_EQ(list.eng.unexpected_depth(), 2u);

  const auto bs = bucket.stats.snapshot();
  EXPECT_GE(bs.bucket_hits, 1u);
  EXPECT_GE(bs.bucket_misses, 1u);
}

// A wildcard probe takes the ordered fallback but must NOT latch the engine:
// the list answers it correctly while the buckets stay live.
TEST(MatchFastpath, WildcardProbeDoesNotLatch) {
  Harness bucket(MatchPolicy::kBucket);
  bucket.deposit(0, 1, 5, 7);
  Status st;
  EXPECT_TRUE(bucket.eng.probe_unexpected(0, kAnySource, kAnyTag, false, bucket.clk,
                                          bucket.cm, &bucket.stats, &st));
  EXPECT_EQ(st.source, 1);
  EXPECT_TRUE(bucket.eng.bucket_mode());
  EXPECT_FALSE(bucket.eng.latched());
  EXPECT_GE(bucket.stats.snapshot().wildcard_fallbacks, 1u);
}

// ---------------------------------------------------------------------------
// The mode latch: the first wildcard post on a bucketed engine drains the
// index (sticky), matching stays correct, and the fallback counter records
// the event.
TEST(MatchFastpath, LateWildcardPostDrainsBuckets) {
  Harness h(MatchPolicy::kBucket);
  h.deposit(0, 0, 1, 10);
  h.deposit(0, 1, 2, 11);
  h.deposit(0, 2, 3, 12);
  ASSERT_TRUE(h.eng.bucket_mode());

  // Wildcard receive: latches first, then matches the earliest arrival.
  const std::size_t any = h.post(0, kAnySource, kAnyTag, /*fastpath=*/false);
  EXPECT_TRUE(h.eng.latched());
  EXPECT_FALSE(h.eng.bucket_mode());
  EXPECT_EQ(h.result(any), std::uint64_t{10});
  EXPECT_GE(h.stats.snapshot().wildcard_fallbacks, 1u);

  // Post-latch, concrete traffic still matches correctly through the list.
  const std::size_t r1 = h.post(0, 2, 3);
  EXPECT_EQ(h.result(r1), std::uint64_t{12});
  const std::size_t r2 = h.post(0, 1, 2);
  EXPECT_EQ(h.result(r2), std::uint64_t{11});
  h.deposit(0, 5, 9, 13);
  const std::size_t r3 = h.post(0, 5, 9);
  EXPECT_EQ(h.result(r3), std::uint64_t{13});
  EXPECT_TRUE(h.eng.latched());  // sticky: concrete traffic never unlatches
}

// ---------------------------------------------------------------------------
// Failover absorb() with bucketed entries on both sides: the merge is ordered
// by virtual enqueue time exactly as the list implementation's scan-splice,
// the merged engine stays in bucket mode, and subsequent matches observe the
// interleaved history.
TEST(MatchFastpath, AbsorbMigratesBucketedEntriesOrdered) {
  Harness dst(MatchPolicy::kBucket);
  Harness src(MatchPolicy::kBucket);

  // Same key throughout, ready times strictly interleaved across engines by
  // advancing each clock past the other's before depositing.
  src.deposit(0, 0, 1, 100);                   // ready first
  dst.clk.advance_to(src.clk.now() + 1);
  dst.deposit(0, 0, 1, 200);                   // ready later than 100
  src.clk.advance_to(dst.clk.now() + 1);
  src.deposit(0, 0, 1, 101);                   // ready later than 200
  dst.clk.advance_to(src.clk.now() + 1);
  dst.deposit(0, 0, 1, 201);                   // ready last

  dst.eng.absorb(src.eng);
  EXPECT_EQ(dst.eng.unexpected_depth(), 4u);
  EXPECT_EQ(src.eng.unexpected_depth(), 0u);
  EXPECT_TRUE(dst.eng.bucket_mode());  // neither side latched

  // Receives drain in global ready-time order: 100, 200, 101, 201.
  EXPECT_EQ(dst.result(dst.post(0, 0, 1)), std::uint64_t{100});
  EXPECT_EQ(dst.result(dst.post(0, 0, 1)), std::uint64_t{200});
  EXPECT_EQ(dst.result(dst.post(0, 0, 1)), std::uint64_t{101});
  EXPECT_EQ(dst.result(dst.post(0, 0, 1)), std::uint64_t{201});
}

// Posted-side migration: bucketed posted receives move over and a deposit
// matches the earliest-posted compatible one across both histories.
TEST(MatchFastpath, AbsorbMigratesPostedReceives) {
  Harness dst(MatchPolicy::kBucket);
  Harness src(MatchPolicy::kBucket);

  src.clk.advance_to(0);
  const std::size_t first = src.post(0, 3, 7);   // earliest post_time
  dst.clk.advance_to(src.clk.now() + 10);
  const std::size_t second = dst.post(0, 3, 7);

  dst.eng.absorb(src.eng);
  EXPECT_EQ(dst.eng.posted_depth(), 2u);
  EXPECT_TRUE(dst.eng.bucket_mode());

  dst.deposit(0, 3, 7, 500);
  EXPECT_EQ(src.result(first), std::uint64_t{500});  // src's older post wins
  EXPECT_EQ(dst.result(second), std::nullopt);
  dst.deposit(0, 3, 7, 501);
  EXPECT_EQ(dst.result(second), std::uint64_t{501});
}

// A latched source engine (it saw a wildcard) forces the merged engine onto
// the ordered path too: its queues may hold wildcard receives.
TEST(MatchFastpath, AbsorbFromLatchedEngineLatchesDestination) {
  Harness dst(MatchPolicy::kBucket);
  Harness src(MatchPolicy::kBucket);

  src.post(0, kAnySource, 4, /*fastpath=*/false);  // latches src
  ASSERT_TRUE(src.eng.latched());
  dst.deposit(0, 1, 4, 900);

  dst.eng.absorb(src.eng);
  EXPECT_TRUE(dst.eng.latched());
  EXPECT_FALSE(dst.eng.bucket_mode());
  EXPECT_EQ(dst.eng.posted_depth(), 1u);
  EXPECT_EQ(dst.eng.unexpected_depth(), 1u);

  // absorb() merges histories without cross-matching (seed semantics); the
  // queues drain through subsequent operations on the ordered path: a new
  // concrete receive takes the unexpected message, a new deposit lands on
  // the migrated wildcard.
  const std::size_t r = dst.post(0, 1, 4);
  EXPECT_EQ(dst.result(r), std::uint64_t{900});
  EXPECT_EQ(src.result(0), std::nullopt);
  dst.deposit(0, 1, 4, 901);
  EXPECT_EQ(src.result(0), std::uint64_t{901});
}

}  // namespace
}  // namespace tmpi::detail

// ---------------------------------------------------------------------------
// World-level parity: the same workload — hinted no-wildcard traffic plus
// wildcard traffic on COMM_WORLD — produces bit-identical virtual time under
// list, bucket, and auto policies, and bucket mode shows up in the channel
// telemetry.
namespace {

using namespace tmpi;

net::Time run_mixed_workload(const std::string& mode, net::NetStatsSnapshot* snap = nullptr) {
  // These tests compare explicitly-configured modes against each other, so a
  // TMPI_MATCH_MODE forced by the harness (the env overrides WorldConfig)
  // would silently collapse all three runs into one mode.
  twin::ScopedEnv pin_mode("TMPI_MATCH_MODE");
  WorldConfig wc = twin::two_rank_config(2);
  wc.match_mode = mode;
  World world(wc);

  // Each phase is a separate World::run so host scheduling can never reorder
  // deposits against posts — virtual time is then bit-exact per DESIGN.md §6
  // and comparable across matching modes.
  std::array<std::optional<Comm>, 2> hinted;
  world.run([&](Rank& rank) {
    Info info;
    info.set("mpi_assert_no_any_tag", "true");
    info.set("mpi_assert_no_any_source", "true");
    hinted[static_cast<std::size_t>(rank.rank())] = rank.world_comm().dup_with_info(info);
  });

  constexpr int kMsgs = 24;
  std::vector<std::uint32_t> sbuf(kMsgs);
  std::vector<std::uint32_t> rbuf(kMsgs);
  std::vector<Request> reqs;
  for (int i = 0; i < kMsgs; ++i) sbuf[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
  auto tag_of = [](int i) { return static_cast<Tag>(i % 6); };

  // Phase 1: posted-first hinted traffic. Receives go up out of tag order so
  // the posted queue develops depth and match position matters.
  world.run([&](Rank& rank) {
    if (rank.rank() != 1) return;
    for (int i = kMsgs - 1; i >= 0; --i) {
      reqs.push_back(irecv(&rbuf[static_cast<std::size_t>(i)], 4, kByte, 0, tag_of(i),
                           *hinted[1]));
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() != 0) return;
    for (int i = 0; i < kMsgs; ++i) {
      isend(&sbuf[static_cast<std::size_t>(i)], 4, kByte, 1, tag_of(i), *hinted[0]).wait();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() != 1) return;
    for (auto& r : reqs) r.wait();
    reqs.clear();
  });

  // Phase 2: unexpected-first hinted traffic (messages land, then receives
  // drain them in reverse arrival order).
  world.run([&](Rank& rank) {
    if (rank.rank() != 0) return;
    for (int i = 0; i < kMsgs; ++i) {
      isend(&sbuf[static_cast<std::size_t>(i)], 4, kByte, 1, tag_of(i), *hinted[0]).wait();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() != 1) return;
    for (int i = kMsgs - 1; i >= 0; --i) {
      irecv(&rbuf[static_cast<std::size_t>(i)], 4, kByte, 0, tag_of(i), *hinted[1]).wait();
    }
  });

  // Phase 3: wildcard traffic on COMM_WORLD — arrives unexpected, then a
  // wildcard receive latches those channels and drains it.
  std::uint32_t v = 7;
  std::uint32_t got = 0;
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) isend(&v, 4, kByte, 1, 99, rank.world_comm()).wait();
  });
  world.run([&](Rank& rank) {
    if (rank.rank() != 1) return;
    Status st = irecv(&got, 4, kByte, kAnySource, kAnyTag, rank.world_comm()).wait();
    EXPECT_EQ(st.tag, 99);
    EXPECT_EQ(got, 7u);
  });

  if (snap != nullptr) *snap = world.snapshot();
  return world.elapsed();
}

TEST(MatchFastpathWorld, ModesAreVirtualTimeIdentical) {
  net::NetStatsSnapshot list_snap;
  net::NetStatsSnapshot bucket_snap;
  const net::Time t_list = run_mixed_workload("list", &list_snap);
  const net::Time t_bucket = run_mixed_workload("bucket", &bucket_snap);
  const net::Time t_auto = run_mixed_workload("auto");
  EXPECT_EQ(t_list, t_bucket);
  EXPECT_EQ(t_list, t_auto);
  EXPECT_GT(t_list, 0u);

  // Same charges, different mechanism — visible in the new counters.
  EXPECT_EQ(list_snap.match_probes, bucket_snap.match_probes);
  EXPECT_EQ(list_snap.bucket_hits + list_snap.bucket_misses, 0u);
  EXPECT_GT(bucket_snap.bucket_hits, 0u);
  EXPECT_GT(bucket_snap.wildcard_fallbacks, 0u);  // phase 2 latched channels

  // Per-channel plumbing: the bucket counters reach ChannelStats snapshots.
  std::uint64_t ch_hits = 0;
  for (const auto& c : bucket_snap.channels) ch_hits += c.bucket_hits;
  EXPECT_GT(ch_hits, 0u);
}

// The auto policy buckets hinted traffic without any config knob: the
// fastpath flag derived from the communicator hints is sufficient.
TEST(MatchFastpathWorld, AutoPolicyBucketsHintedTraffic) {
  net::NetStatsSnapshot snap;
  run_mixed_workload("auto", &snap);
  EXPECT_GT(snap.bucket_hits, 0u);
}

}  // namespace
