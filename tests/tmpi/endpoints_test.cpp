#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "tmpi/tmpi.h"

namespace tmpi {
namespace {

TEST(Endpoints, ThreadsExchangeThroughOwnEndpoints) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  constexpr int kEps = 4;
  w.run([&](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(kEps);
    rank.parallel(kEps, [&](int tid) {
      const Comm& my = eps[static_cast<std::size_t>(tid)];
      const int peer_ep = (1 - rank.rank()) * kEps + tid;
      int out = rank.rank() * 100 + tid;
      int in = -1;
      sendrecv(&out, 1, kInt32, peer_ep, 0, &in, 1, kInt32, peer_ep, 0, my);
      EXPECT_EQ(in, (1 - rank.rank()) * 100 + tid);
    });
  });
}

TEST(Endpoints, MessagesBetweenEndpointsOfOneProcess) {
  WorldConfig wc;
  wc.nranks = 1;
  World w(wc);
  w.run([](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(2);
    rank.parallel(2, [&](int tid) {
      const Comm& my = eps[static_cast<std::size_t>(tid)];
      const int other = 1 - tid;
      int out = tid + 7;
      int in = -1;
      sendrecv(&out, 1, kInt32, other, 0, &in, 1, kInt32, other, 0, my);
      EXPECT_EQ(in, other + 7);
    });
  });
}

TEST(Endpoints, WildcardsConfinedToOneEndpoint) {
  // A wildcard receive on endpoint E must only match messages addressed to
  // E, not to the process's other endpoints (the Fig. 5 polling pattern).
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(2);
    if (rank.rank() == 0) {
      // Send to both endpoints of rank 1: ep 2 and ep 3.
      int to_a = 111;
      int to_b = 222;
      send(&to_a, 1, kInt32, 2, 0, eps[0]);
      send(&to_b, 1, kInt32, 3, 0, eps[0]);
    } else {
      int got_a = 0;
      int got_b = 0;
      Status sa = recv(&got_a, 1, kInt32, kAnySource, kAnyTag, eps[0]);
      Status sb = recv(&got_b, 1, kInt32, kAnySource, kAnyTag, eps[1]);
      EXPECT_EQ(got_a, 111);
      EXPECT_EQ(got_b, 222);
      EXPECT_EQ(sa.source, 0);  // sender endpoint rank
      EXPECT_EQ(sb.source, 0);
    }
  });
}

TEST(Endpoints, ThreadsNotBoundToEndpoints) {
  // Lesson 10: "a thread is free to use any endpoint at any time".
  WorldConfig wc;
  wc.nranks = 1;
  World w(wc);
  w.run([](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(3);
    // One thread drives all three endpoints.
    int v0 = 5;
    int v1 = -1;
    Request rr = irecv(&v1, 1, kInt32, 0, 0, eps[2]);  // ep 2 receives from ep 0
    Request sr = isend(&v0, 1, kInt32, 2, 0, eps[0]);
    sr.wait();
    rr.wait();
    EXPECT_EQ(v1, 5);
  });
}

TEST(Endpoints, OrderingNotGuaranteedAcrossEndpointsButDataIntact) {
  // Messages from different endpoints are logically parallel; each still
  // arrives exactly once.
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  constexpr int kEps = 3;
  constexpr int kMsgs = 8;
  std::atomic<int> sum{0};
  w.run([&](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(kEps);
    if (rank.rank() == 0) {
      rank.parallel(kEps, [&](int tid) {
        for (int i = 0; i < kMsgs; ++i) {
          const int v = tid * kMsgs + i;
          send(&v, 1, kInt32, kEps + tid, 0, eps[static_cast<std::size_t>(tid)]);
        }
      });
    } else {
      rank.parallel(kEps, [&](int tid) {
        for (int i = 0; i < kMsgs; ++i) {
          int v = -1;
          recv(&v, 1, kInt32, tid, 0, eps[static_cast<std::size_t>(tid)]);
          sum.fetch_add(v);
        }
      });
    }
  });
  EXPECT_EQ(sum.load(), kEps * kMsgs * (kEps * kMsgs - 1) / 2);
}

TEST(Endpoints, PoolOfNetworkResourcesGrowsForEndpoints) {
  // Section II-B: implementations pre-create/grow a pool of network
  // resources and map endpoints onto them.
  WorldConfig wc;
  wc.nranks = 2;
  wc.num_vcis = 1;
  World w(wc);
  w.run([&](Rank& rank) {
    (void)rank.world_comm().create_endpoints(4);
  });
  // 1 base VCI + 4 endpoint VCIs per rank, all on dedicated hw contexts.
  EXPECT_EQ(w.fabric().nic(0).contexts_in_use(), 5);
}

}  // namespace
}  // namespace tmpi

namespace tmpi {
namespace {

TEST(Endpoints, DupPreservesEndpointRouting) {
  // Duplicating an endpoints comm yields another endpoints comm: each
  // handle keeps its rank and dedicated channel.
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(2);
    rank.parallel(2, [&](int tid) {
      Comm dup = eps[static_cast<std::size_t>(tid)].dup();
      EXPECT_TRUE(dup.is_endpoints());
      EXPECT_EQ(dup.policy(), VciPolicyKind::kEndpoint);
      EXPECT_EQ(dup.rank(), eps[static_cast<std::size_t>(tid)].rank());
      const int peer_ep = (1 - rank.rank()) * 2 + tid;
      int out = dup.rank() + 50;
      int in = -1;
      sendrecv(&out, 1, kInt32, peer_ep, 0, &in, 1, kInt32, peer_ep, 0, dup);
      EXPECT_EQ(in, peer_ep + 50);
    });
  });
}

TEST(Endpoints, SplitYieldsEndpointSubcomms) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(2);
    rank.parallel(2, [&](int tid) {
      // Color by endpoint parity across the 4 endpoints (2 per rank).
      const Comm& ep = eps[static_cast<std::size_t>(tid)];
      Comm sub = ep.split(ep.rank() % 2, ep.rank());
      EXPECT_TRUE(sub.is_endpoints());
      EXPECT_EQ(sub.size(), 2);
      // Exchange within the parity group: world eps {0,2} and {1,3}.
      const int other = 1 - sub.rank();
      int out = sub.rank() + 7;
      int in = -1;
      sendrecv(&out, 1, kInt32, other, 0, &in, 1, kInt32, other, 0, sub);
      EXPECT_EQ(in, other + 7);
    });
  });
}

TEST(Endpoints, ProbeOnEndpointQueue) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    auto eps = rank.world_comm().create_endpoints(2);
    if (rank.rank() == 0) {
      int v = 3;
      send(&v, 1, kInt32, /*ep*/ 3, 6, eps[1]);  // to rank 1's second ep
    } else {
      // The message sits on ep 3's queue only; ep 2 sees nothing.
      Status st = probe(kAnySource, kAnyTag, eps[1]);
      EXPECT_EQ(st.tag, 6);
      EXPECT_FALSE(iprobe(kAnySource, kAnyTag, eps[0]));
      int v = 0;
      recv(&v, 1, kInt32, st.source, st.tag, eps[1]);
      EXPECT_EQ(v, 3);
    }
  });
}

}  // namespace
}  // namespace tmpi
