// Allocation-counting proof for the memory-pooling half of DESIGN.md §10:
// once the slab pool (eager payloads), request-block recycler, and matching
// node pools are warm, a steady-state eager ping-pong performs ZERO heap
// allocations per message — on the plain path and on the hinted bucket path.
//
// The global operator new/delete overrides below count every allocation in
// the process. The measurement window runs inside the rank threads after a
// warmup phase; nothing else runs concurrently (no watchdog, no tracer), so
// any count observed in the window is hot-path churn.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "tmpi/tmpi.h"
#include "twin_harness.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}

void* counted_aligned_alloc(std::size_t n, std::size_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (n + al - 1) / al * al;
  return std::aligned_alloc(al, rounded == 0 ? al : rounded);
}
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace tmpi;

constexpr int kWarmup = 64;
constexpr int kMeasured = 512;
constexpr int kBytes = 64;

/// Run warmup + measured eager ping-pong rounds on `comm`; returns the
/// process-wide allocation count observed during rank 0's measured window.
/// The claim holds on BOTH engines: serial delivers inline, and the parallel
/// engine's per-message delivery events come from a SlabPool while the
/// scheduler shards run on pre-grown rings — warmup fills every pool the
/// measured window can draw from.
std::uint64_t measure_pingpong_allocs(bool hinted, const char* mode) {
  twin::ScopedEnv pin_mode("TMPI_EXEC_MODE", mode);
  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;
  wc.num_vcis = 1;
  World world(wc);

  std::uint64_t during = 0;
  world.run([&](Rank& rank) {
    Comm comm = rank.world_comm();
    if (hinted) {
      Info info;
      info.set("mpi_assert_no_any_tag", "true");
      info.set("mpi_assert_no_any_source", "true");
      comm = rank.world_comm().dup_with_info(info);
    }
    std::array<std::byte, kBytes> buf{};
    auto pingpong = [&] {
      if (rank.rank() == 0) {
        isend(buf.data(), kBytes, kByte, 1, 5, comm).wait();
        irecv(buf.data(), kBytes, kByte, 1, 6, comm).wait();
      } else {
        irecv(buf.data(), kBytes, kByte, 0, 5, comm).wait();
        isend(buf.data(), kBytes, kByte, 0, 6, comm).wait();
      }
    };
    // Host scheduling decides whether a measured message lands posted-first
    // or unexpected-first, and the two paths draw on different pools (each
    // queue owns its node chunks, index table, and Fenwick window). Warm
    // BOTH paths on BOTH engines deterministically, at a depth the measured
    // ping-pong (depth <= 1) can never exceed, so no refill is reachable in
    // the window no matter how the threads interleave. Barriers order the
    // phases: a rank leaves one only after the other entered it.
    constexpr int kDepth = 8;
    std::vector<Request> warm_reqs;
    warm_reqs.reserve(kDepth);
    auto warm_paths = [&](int sender, Tag tag) {
      // Unexpected-first: sender fires kDepth messages before the receiver
      // posts anything, then the receiver drains the unexpected queue.
      if (rank.rank() == sender) {
        for (int k = 0; k < kDepth; ++k) isend(buf.data(), kBytes, kByte, 1 - sender, tag, comm).wait();
      }
      barrier(rank.world_comm());
      if (rank.rank() != sender) {
        for (int k = 0; k < kDepth; ++k) irecv(buf.data(), kBytes, kByte, sender, tag, comm).wait();
      }
      barrier(rank.world_comm());
      // Posted-first: receiver stacks kDepth receives, then the sender runs.
      if (rank.rank() != sender) {
        for (int k = 0; k < kDepth; ++k) {
          warm_reqs.push_back(irecv(buf.data(), kBytes, kByte, sender, tag, comm));
        }
      }
      barrier(rank.world_comm());
      if (rank.rank() == sender) {
        for (int k = 0; k < kDepth; ++k) isend(buf.data(), kBytes, kByte, 1 - sender, tag, comm).wait();
      } else {
        for (auto& r : warm_reqs) r.wait();
        warm_reqs.clear();
      }
      barrier(rank.world_comm());
    };
    warm_paths(/*sender=*/0, /*tag=*/5);
    warm_paths(/*sender=*/1, /*tag=*/6);
    // Then warm the steady-state shape itself: payload slabs, request
    // blocks, and the collective engines the barriers above touched.
    for (int i = 0; i < kWarmup; ++i) pingpong();
    // The ping-pong is self-synchronizing: rank 0 enters the window only
    // after rank 1's last warmup send completed, so both sides are in
    // steady state for the entire measured span.
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < kMeasured; ++i) pingpong();
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    if (rank.rank() == 0) during = after - before;
  });
  return during;
}

TEST(AllocSteadyState, EagerPingPongIsAllocationFree) {
  EXPECT_EQ(measure_pingpong_allocs(/*hinted=*/false, "serial"), 0u)
      << "heap allocations leaked into the eager steady state (list path)";
}

TEST(AllocSteadyState, HintedBucketPingPongIsAllocationFree) {
  EXPECT_EQ(measure_pingpong_allocs(/*hinted=*/true, "serial"), 0u)
      << "heap allocations leaked into the eager steady state (bucket path)";
}

TEST(AllocSteadyState, ParallelEngineEagerPingPongIsAllocationFree) {
  EXPECT_EQ(measure_pingpong_allocs(/*hinted=*/false, "parallel"), 0u)
      << "heap allocations leaked into the parallel-engine eager steady state "
         "(delivery-event pool or scheduler ring refilled mid-window)";
}

TEST(AllocSteadyState, ParallelEngineHintedBucketPingPongIsAllocationFree) {
  EXPECT_EQ(measure_pingpong_allocs(/*hinted=*/true, "parallel"), 0u)
      << "heap allocations leaked into the parallel-engine eager steady state "
         "(bucket path)";
}

}  // namespace
