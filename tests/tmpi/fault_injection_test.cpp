#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "net/fault.h"
#include "tmpi/tmpi.h"

/// Deterministic fault-injection scenarios (DESIGN.md §7).
///
/// Every scenario is phase-ordered (separate World::run calls per phase), so
/// each channel's operation stream — and therefore the counter-based fault
/// schedule — is identical on every execution. Completion times are pinned
/// exactly: recovery actions (retransmission backoff, failover lock charges,
/// injected delays) are deterministic virtual-time charges on top of the
/// golden fault-free values from transport_test.cpp.

namespace {

using namespace tmpi;

WorldConfig two_node_config() {
  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;
  wc.num_vcis = 1;
  return wc;
}

net::Time now() { return net::ThreadClock::get().now(); }

// ---------------------------------------------------------------------------
// FaultPlan parsing: grammar, Info keys, enabled() gating, env overlay.
TEST(FaultPlan, ParsesScheduledEventGrammar) {
  net::FaultPlan p;
  p.parse_plan("drop@0:1:3;corrupt@1:0:2;delay@0:0:7;down@1:2:0");
  ASSERT_EQ(p.events.size(), 4u);
  EXPECT_EQ(p.events[0].action, net::FaultAction::kDrop);
  EXPECT_EQ(p.events[0].rank, 0);
  EXPECT_EQ(p.events[0].vci, 1);
  EXPECT_EQ(p.events[0].op, 3u);
  EXPECT_EQ(p.events[1].action, net::FaultAction::kCorrupt);
  EXPECT_EQ(p.events[2].action, net::FaultAction::kDelay);
  EXPECT_TRUE(p.events[3].ctx_down);
  EXPECT_EQ(p.events[3].rank, 1);
  EXPECT_EQ(p.events[3].vci, 2);

  EXPECT_THROW(p.parse_plan("drop@0:1"), std::invalid_argument);
  EXPECT_THROW(p.parse_plan("explode@0:1:2"), std::invalid_argument);
}

TEST(FaultPlan, SetAcceptsFaultKeysAndRejectsOthers) {
  net::FaultPlan p;
  EXPECT_FALSE(p.enabled());
  EXPECT_TRUE(p.set("tmpi_fault_seed", "99"));
  EXPECT_TRUE(p.set("tmpi_fault_drop_rate", "0.25"));
  EXPECT_TRUE(p.set("tmpi_fault_corrupt_rate", "0.1"));
  EXPECT_TRUE(p.set("tmpi_fault_delay_rate", "0.5"));
  EXPECT_TRUE(p.set("tmpi_fault_delay_ns", "1234"));
  EXPECT_TRUE(p.set("tmpi_fault_max_retries", "4"));
  EXPECT_TRUE(p.set("tmpi_fault_timeout_ns", "50000"));
  EXPECT_TRUE(p.set("tmpi_fault_plan", "drop@0:0:0"));
  EXPECT_FALSE(p.set("tmpi_num_vcis", "4"));  // not a fault key: pass through
  EXPECT_EQ(p.seed, 99u);
  EXPECT_DOUBLE_EQ(p.drop_rate, 0.25);
  EXPECT_EQ(p.delay_ns, 1234u);
  EXPECT_EQ(p.max_retries, 4);
  EXPECT_EQ(p.timeout_ns, 50000u);
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, EnvOverlayWins) {
  ::setenv("TMPI_FAULT_DROP_RATE", "0.75", 1);
  ::setenv("TMPI_FAULT_SEED", "321", 1);
  net::FaultPlan base;
  base.drop_rate = 0.1;
  const net::FaultPlan p = net::FaultPlan::from_env(base);
  ::unsetenv("TMPI_FAULT_DROP_RATE");
  ::unsetenv("TMPI_FAULT_SEED");
  EXPECT_DOUBLE_EQ(p.drop_rate, 0.75);
  EXPECT_EQ(p.seed, 321u);
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, InjectorVerdictsAreAPureFunctionOfInputs) {
  net::FaultPlan p;
  p.seed = 17;
  p.drop_rate = 0.5;
  net::FaultInjector a(p);
  net::FaultInjector b(p);
  for (int op = 0; op < 64; ++op) {
    const auto va = a.verdict(0, 0, static_cast<std::uint64_t>(op), 0);
    const auto vb = b.verdict(0, 0, static_cast<std::uint64_t>(op), 0);
    EXPECT_EQ(va.action, vb.action) << "op " << op;
  }
  // The op counter is per channel and starts at zero.
  EXPECT_EQ(a.channel_op(3, 1), 0u);
  EXPECT_EQ(a.channel_op(3, 1), 1u);
  EXPECT_EQ(a.channel_op(3, 2), 0u);
}

// ---------------------------------------------------------------------------
// A single scheduled drop: the eager send retransmits once and completes,
// shifted by exactly backoff(400) + lock(20) + inject(120) = 540 ns over the
// golden fault-free values (140 / 1132). The payload arrives intact.
TEST(FaultInjection, SingleDropRetransmitCompletes) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_plan", "drop@0:0:0");
  World world(wc);
  ASSERT_NE(world.fault_injector(), nullptr);

  std::vector<std::byte> sbuf(8, std::byte{0x5A});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = rreq.wait();
      recv_done = now();
      EXPECT_EQ(st.bytes, 8u);
    }
  });

  EXPECT_EQ(send_done, 140u + 540u);
  EXPECT_EQ(recv_done, 1132u + 540u);
  EXPECT_EQ(rbuf[3], std::byte{0x5A});  // retransmission carries the payload

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.drops, 1u);
  EXPECT_EQ(s.retransmits, 1u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.corrupts, 0u);
}

// ---------------------------------------------------------------------------
// A checksum-detected corruption behaves like a drop on the timing path but
// is tallied separately.
TEST(FaultInjection, CorruptionDiscardsAndRetransmits) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_plan", "corrupt@0:0:0");
  World world(wc);

  std::vector<std::byte> sbuf(8, std::byte{0x77});
  std::vector<std::byte> rbuf(8);
  net::Time send_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      (void)irecv(rbuf.data(), 8, kByte, 0, 1, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 1, rank.world_comm()).wait();
      send_done = now();
    }
  });

  EXPECT_EQ(send_done, 140u + 540u);  // same recovery timing as a clean drop
  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.corrupts, 1u);
  EXPECT_EQ(s.drops, 0u);
  EXPECT_EQ(s.retransmits, 1u);
}

// ---------------------------------------------------------------------------
// An injected delay shifts the arrival — and only the arrival — by exactly
// delay_ns: the sender's completion stays at the golden 140.
TEST(FaultInjection, DelayShiftsArrivalExactly) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_plan", "delay@0:0:0");
  wc.fault_info.set("tmpi_fault_delay_ns", "5000");
  World world(wc);

  std::vector<std::byte> sbuf(8, std::byte{0x11});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq.wait();
      recv_done = now();
    }
  });

  EXPECT_EQ(send_done, 140u);            // golden: injection is unaffected
  EXPECT_EQ(recv_done, 1132u + 5000u);   // golden + delay_ns
  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.delays, 1u);
  EXPECT_EQ(s.retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Every attempt dropped: the sender exhausts max_retries, the request fails
// with TMPI_ERR_TIMEOUT from wait() AND test(), and nothing is delivered.
TEST(FaultInjection, RepeatedDropsTimeout) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_drop_rate", "1.0");
  wc.fault_info.set("tmpi_fault_max_retries", 2);
  World world(wc);

  std::vector<std::byte> sbuf(8, std::byte{0x42});

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      Request sreq = isend(sbuf.data(), 8, kByte, 1, 5, rank.world_comm());
      try {
        sreq.wait();
        FAIL() << "timed-out send did not throw";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), TMPI_ERR_TIMEOUT);
      }
      try {
        Status st;
        (void)sreq.test(&st);
        FAIL() << "test() after timeout did not throw";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Errc::kTimeout);
      }
    }
  });

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.drops, 3u);        // initial attempt + 2 retries, all lost
  EXPECT_EQ(s.retransmits, 2u);  // max_retries
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.messages, 1u);     // the op itself is tallied once
}

// ---------------------------------------------------------------------------
// The cumulative-backoff budget (`tmpi_fault_timeout_ns`) bounds recovery
// even when max_retries would allow more attempts.
TEST(FaultInjection, TimeoutBudgetBoundsRetries) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_drop_rate", "1.0");
  wc.fault_info.set("tmpi_fault_max_retries", 100);
  // Backoffs are 400, 800, 1600, ... ; a 1000 ns budget admits only the
  // first retransmission (400) — the second (800) would exceed it.
  wc.fault_info.set("tmpi_fault_timeout_ns", "1000");
  World world(wc);

  std::vector<std::byte> sbuf(8, std::byte{0x43});
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      try {
        isend(sbuf.data(), 8, kByte, 1, 5, rank.world_comm()).wait();
        FAIL() << "budget-bounded send did not throw";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Errc::kTimeout);
      }
    }
  });

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.retransmits, 1u);
  EXPECT_EQ(s.drops, 2u);
  EXPECT_EQ(s.timeouts, 1u);
}

// ---------------------------------------------------------------------------
// A hardware context marked down fails the stream over to the next healthy
// VCI: traffic proceeds on the fallback, the event is recorded, and the
// recovery cost (two migration lock charges) is deterministic.
TEST(FaultInjection, ContextDownFailsOverToFallback) {
  WorldConfig wc = two_node_config();
  wc.num_vcis = 2;
  wc.fault_info.set("tmpi_fault_plan", "down@0:0:0");
  World world(wc);

  std::vector<std::byte> sbuf(8, std::byte{0x66});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = rreq.wait();
      recv_done = now();
      EXPECT_EQ(st.bytes, 8u);
    }
  });

  EXPECT_EQ(rbuf[0], std::byte{0x66});
  // Failover adds the two queue-migration lock charges (2 x 20 ns) before
  // the injection proceeds on the fallback channel.
  EXPECT_EQ(send_done, 140u + 40u);
  EXPECT_EQ(recv_done, 1132u + 40u);

  const auto log = world.rank_state(0).vcis.failover_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, 0);
  EXPECT_EQ(log[0].to, 1);
  EXPECT_TRUE(world.rank_state(0).vcis.at(0).ctx().is_down());

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.failovers, 1u);
  for (const auto& c : s.channels) {
    if (c.rank == 0 && c.vci == 0) {
      EXPECT_EQ(c.injections, 0u);  // stream moved...
      EXPECT_EQ(c.failovers, 1u);
    }
    if (c.rank == 0 && c.vci == 1) {
      EXPECT_EQ(c.injections, 1u);  // ...to the fallback
    }
  }

  // Later traffic keeps using the fallback without further failover events.
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 8, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 8, rank.world_comm()).wait();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) rreq.wait();
  });
  EXPECT_EQ(world.snapshot().failovers, 1u);
  EXPECT_EQ(world.rank_state(0).vcis.failover_log().size(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism contract: identical seed => identical completion times and
// identical fault tallies across independent executions; phase-ordered
// probabilistic traffic is fully reproducible.
TEST(FaultInjection, DeterministicAcrossRuns) {
  struct Outcome {
    net::Time send_done = 0;
    net::Time recv_done = 0;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t retransmits = 0;
    bool operator==(const Outcome& o) const {
      return send_done == o.send_done && recv_done == o.recv_done && drops == o.drops &&
             delays == o.delays && retransmits == o.retransmits;
    }
  };

  auto run_once = [](int seed) {
    WorldConfig wc = two_node_config();
    wc.fault_info.set("tmpi_fault_seed", seed);
    wc.fault_info.set("tmpi_fault_drop_rate", "0.3");
    wc.fault_info.set("tmpi_fault_delay_rate", "0.2");
    wc.fault_info.set("tmpi_fault_delay_ns", "1500");
    World world(wc);

    constexpr int kMsgs = 16;
    std::vector<std::byte> sbuf(8, std::byte{0x31});
    std::vector<std::vector<std::byte>> rbufs(kMsgs, std::vector<std::byte>(8));
    std::vector<Request> rreqs(kMsgs);
    Outcome out;

    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        for (int i = 0; i < kMsgs; ++i) {
          rreqs[static_cast<std::size_t>(i)] =
              irecv(rbufs[static_cast<std::size_t>(i)].data(), 8, kByte, 0, i,
                    rank.world_comm());
        }
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        for (int i = 0; i < kMsgs; ++i) {
          isend(sbuf.data(), 8, kByte, 1, i, rank.world_comm()).wait();
        }
        out.send_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        for (auto& r : rreqs) r.wait();
        out.recv_done = now();
      }
    });

    const net::NetStatsSnapshot s = world.snapshot();
    out.drops = s.drops;
    out.delays = s.delays;
    out.retransmits = s.retransmits;
    EXPECT_EQ(s.timeouts, 0u);  // default max_retries shrugs off 30% loss
    return out;
  };

  const Outcome a1 = run_once(7);
  const Outcome a2 = run_once(7);
  EXPECT_TRUE(a1 == a2) << "identical seed must replay identically";
  EXPECT_GT(a1.drops + a1.delays, 0u) << "plan should actually fire at these rates";
  EXPECT_EQ(a1.drops, a1.retransmits);  // every loss recovered (no timeouts)

  const Outcome b = run_once(8);
  EXPECT_TRUE(run_once(8) == b);
}

}  // namespace
