#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "net/pdes.h"
#include "tmpi/tmpi.h"
#include "twin_harness.h"
#include "workloads/msgrate.h"

/// Twin-engine parity suite for the conservative PDES execution mode
/// (DESIGN.md §12). Every scenario runs the SAME phase-ordered workload twice
/// — once with `exec_mode = "serial"` (deliveries executed inline on the
/// sender thread, the historical engine) and once with `exec_mode =
/// "parallel"` (deliveries queued to the sharded scheduler and drained by
/// unbound workers) — and asserts bit-identical virtual clocks, NetStats
/// snapshots, and final payload bytes. The serial runs double as golden
/// anchors: they re-pin the transport_test.cpp values, so a parity pass here
/// proves the parallel engine reproduces the seed numbers, not merely that
/// the two engines drifted together.

namespace {

using namespace tmpi;
using twin::now;
using twin::two_node_config;

// Outcome of one twin half: completion-time marks, the stats snapshot, and
// every byte the workload received.
struct Outcome {
  std::vector<net::Time> marks;
  net::NetStatsSnapshot snap;
  std::vector<std::byte> payload;
};

void expect_outcome_parity(const Outcome& serial, const Outcome& parallel) {
  ASSERT_EQ(serial.marks.size(), parallel.marks.size());
  for (std::size_t i = 0; i < serial.marks.size(); ++i) {
    EXPECT_EQ(serial.marks[i], parallel.marks[i]) << "virtual-time mark " << i;
  }
  twin::expect_stats_parity(serial.snap, parallel.snap);
  EXPECT_EQ(serial.payload, parallel.payload);
}

// Run `scenario(world, out)` under one engine. The env knob is cleared by
// each test (it overrides WorldConfig and would collapse both twins).
template <typename Fn>
Outcome run_engine(WorldConfig wc, const std::string& mode, Fn&& scenario) {
  wc.exec_mode = mode;
  World world(wc);
  if (mode == "parallel") {
    // The gate must actually have engaged, or the "parity" below is trivial.
    EXPECT_NE(world.pdes(), nullptr) << "parallel engine did not engage";
  } else {
    EXPECT_EQ(world.pdes(), nullptr);
  }
  Outcome out;
  scenario(world, out);
  out.snap = world.snapshot();
  return out;
}

template <typename Fn>
void run_twins(const WorldConfig& wc, Fn&& scenario) {
  twin::ScopedEnv clear_mode("TMPI_EXEC_MODE");
  const Outcome serial = run_engine(wc, "serial", scenario);
  const Outcome parallel = run_engine(wc, "parallel", scenario);
  expect_outcome_parity(serial, parallel);
}

// ---------------------------------------------------------------------------
// Transport golden suite, both engines. Serial halves re-assert the seed
// goldens; the parity check then pins the parallel halves to the same values.

TEST(PdesParity, EagerBothOrders) {
  run_twins(two_node_config(), [](World& world, Outcome& out) {
    std::vector<std::byte> sbuf(8, std::byte{0x11});
    std::vector<std::byte> rbuf(8);
    Request rreq;
    net::Time send_done = 0;
    net::Time recv_done = 0;

    // Posted-first.
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
        send_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        Status st = rreq.wait();
        recv_done = now();
        EXPECT_EQ(st.bytes, 8u);
      }
    });
    EXPECT_EQ(send_done, 140u);
    EXPECT_EQ(recv_done, 1132u);
    out.marks.push_back(send_done);
    out.marks.push_back(recv_done);
    out.payload.insert(out.payload.end(), rbuf.begin(), rbuf.end());

    // Unexpected (send lands before the receive posts).
    std::vector<std::byte> ubuf(8);
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        isend(sbuf.data(), 8, kByte, 1, 3, rank.world_comm()).wait();
        send_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        recv(ubuf.data(), 8, kByte, 0, 3, rank.world_comm());
        recv_done = now();
      }
    });
    out.marks.push_back(send_done);
    out.marks.push_back(recv_done);
    out.payload.insert(out.payload.end(), ubuf.begin(), ubuf.end());
  });
}

TEST(PdesParity, RendezvousBothOrders) {
  run_twins(two_node_config(), [](World& world, Outcome& out) {
    const std::size_t kBytes = 128 * 1024;  // > 64 KiB eager threshold
    std::vector<std::byte> sbuf(kBytes, std::byte{0x33});
    std::vector<std::byte> rbuf(kBytes);
    Request rreq, sreq;
    net::Time send_done = 0;
    net::Time recv_done = 0;

    // Posted-first.
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        rreq = irecv(rbuf.data(), static_cast<int>(kBytes), kByte, 0, 1, rank.world_comm());
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        isend(sbuf.data(), static_cast<int>(kBytes), kByte, 1, 1, rank.world_comm()).wait();
        send_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        rreq.wait();
        recv_done = now();
      }
    });
    EXPECT_EQ(send_done, 13417u);
    EXPECT_EQ(recv_done, 13417u);
    out.marks.push_back(send_done);
    out.marks.push_back(recv_done);
    out.payload.push_back(rbuf[12345]);

    // Unexpected RTS (sender first).
    std::vector<std::byte> ubuf(kBytes);
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        sreq = isend(sbuf.data(), static_cast<int>(kBytes), kByte, 1, 2, rank.world_comm());
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        recv(ubuf.data(), static_cast<int>(kBytes), kByte, 0, 2, rank.world_comm());
        recv_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        sreq.wait();
        send_done = now();
      }
    });
    out.marks.push_back(send_done);
    out.marks.push_back(recv_done);
    out.payload.push_back(ubuf[54321]);
  });
}

TEST(PdesParity, RmaPipeline) {
  run_twins(two_node_config(), [](World& world, Outcome& out) {
    std::array<net::Time, 4> t{};
    world.run([&](Rank& rank) {
      std::vector<double> mem(64, rank.rank() == 0 ? 1.0 : 2.0);
      Window win = Window::create(mem.data(), mem.size() * sizeof(double), rank.world_comm());
      if (rank.rank() == 0) {
        const double v = 5.0;
        win.put(&v, 1, kDouble, 1, 3);
        win.flush_all();
        t[0] = now();

        double got = 0.0;
        win.get(&got, 1, kDouble, 1, 3);
        win.flush_all();
        t[1] = now();
        EXPECT_EQ(got, 5.0);

        win.accumulate(&v, 1, kDouble, 1, 3, Op::kSum);
        win.flush_all();
        t[2] = now();

        double fetched = 0.0;
        win.get_accumulate(&v, &fetched, 1, kDouble, 1, 3, Op::kSum);
        t[3] = now();
        EXPECT_EQ(fetched, 10.0);
      }
    });
    EXPECT_EQ(t[0], 1200u);
    EXPECT_EQ(t[1], 3300u);
    EXPECT_EQ(t[2], 4580u);
    EXPECT_EQ(t[3], 6760u);
    out.marks.assign(t.begin(), t.end());
  });
}

TEST(PdesParity, PartitionedPipeline) {
  run_twins(two_node_config(), [](World& world, Outcome& out) {
    constexpr int kParts = 4;
    constexpr int kCount = 16;
    std::vector<std::byte> sbuf(kParts * kCount, std::byte{0x55});
    std::vector<std::byte> rbuf(kParts * kCount);
    Request sreq, rreq;
    net::Time send_done = 0;
    net::Time recv_done = 0;

    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        sreq = psend_init(sbuf.data(), kParts, kCount, kByte, 1, 9, rank.world_comm());
        start(sreq);
      } else {
        rreq = precv_init(rbuf.data(), kParts, kCount, kByte, 0, 9, rank.world_comm());
        start(rreq);
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        for (int p = 0; p < kParts; ++p) pready(p, sreq);
        sreq.wait();
        send_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        for (int p = 0; p < kParts; ++p) await_partition(rreq, p);
        rreq.wait();
        recv_done = now();
      }
    });
    EXPECT_EQ(send_done, 740u);
    EXPECT_EQ(recv_done, 1701u);
    out.marks.push_back(send_done);
    out.marks.push_back(recv_done);
    out.payload.insert(out.payload.end(), rbuf.begin(), rbuf.end());
  });
}

// The collective bcast runs both ranks concurrently in one phase, so the
// leaf's match path carries host-order jitter in BOTH engines
// (transport_test.cpp pins it with a NEAR band, not EXPECT_EQ). Only the
// root's clock and the payload are deterministic twin-comparable; stats are
// checked per-engine on the deterministic counters.
TEST(PdesParity, CollectiveRootClock) {
  twin::ScopedEnv clear_mode("TMPI_EXEC_MODE");
  for (const char* mode : {"serial", "parallel"}) {
    WorldConfig wc = two_node_config();
    wc.exec_mode = mode;
    World world(wc);
    net::Time root_done = 0;
    net::Time leaf_done = 0;

    world.run([&](Rank& rank) {
      std::vector<std::int32_t> buf(16);
      if (rank.rank() == 0) {
        for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::int32_t>(i);
      }
      bcast(buf.data(), 16, kInt32, 0, rank.world_comm());
      if (rank.rank() == 0) {
        root_done = now();
      } else {
        leaf_done = now();
        EXPECT_EQ(buf[7], 7);
      }
    });

    EXPECT_EQ(root_done, 140u) << "mode=" << mode;
    EXPECT_NEAR(static_cast<double>(leaf_done), 1156.0, 100.0) << "mode=" << mode;
  }
}

// End-to-end makespans: the parallel engine must reproduce the seed golden
// bands for every msgrate routing mode (run_msgrate builds its own World, so
// the engine is selected through the environment knob here).
TEST(PdesParity, MsgrateElapsedAllModes) {
  auto elapsed = [](wl::MsgRateMode mode) {
    wl::MsgRateParams p;
    p.mode = mode;
    p.workers = 1;
    p.msgs_per_worker = 256;
    p.window = 16;
    p.msg_bytes = 8;
    return wl::run_msgrate(p).elapsed_ns;
  };

  twin::ScopedEnv pin_parallel("TMPI_EXEC_MODE", "parallel");
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kEverywhere)), 69940.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsOriginal)), 70220.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsEndpoints)), 70220.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsTags)), 70220.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsComms)), 70220.0, 400.0);
}

// ---------------------------------------------------------------------------
// Fault scenarios. Drop/corrupt/delay verdicts are drawn on the SENDER side
// at injection (net/fault.h), so a seeded probabilistic plan is deterministic
// under the async engine too: the parity covers retransmit/drop/delay tallies
// and the recovered completion times.
TEST(PdesParity, FaultDropDelayPlan) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_seed", 1234);
  wc.fault_info.set("tmpi_fault_drop_rate", "0.3");
  wc.fault_info.set("tmpi_fault_delay_rate", "0.2");
  wc.fault_info.set("tmpi_fault_delay_ns", "1500");
  wc.fault_info.set("tmpi_fault_max_retries", 8);

  run_twins(wc, [](World& world, Outcome& out) {
    constexpr int kMsgs = 16;
    std::vector<std::byte> sbuf(8, std::byte{0x31});
    std::vector<std::vector<std::byte>> rbufs(kMsgs, std::vector<std::byte>(8));
    std::vector<Request> rreqs(kMsgs);
    net::Time send_done = 0;
    net::Time recv_done = 0;

    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        for (int i = 0; i < kMsgs; ++i) {
          rreqs[static_cast<std::size_t>(i)] =
              irecv(rbufs[static_cast<std::size_t>(i)].data(), 8, kByte, 0, i, rank.world_comm());
        }
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        for (int i = 0; i < kMsgs; ++i) {
          isend(sbuf.data(), 8, kByte, 1, i, rank.world_comm()).wait();
        }
        send_done = now();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        for (auto& r : rreqs) r.wait();
        recv_done = now();
      }
    });

    out.marks.push_back(send_done);
    out.marks.push_back(recv_done);
    for (const auto& b : rbufs) out.payload.insert(out.payload.end(), b.begin(), b.end());
  });
}

// ---------------------------------------------------------------------------
// Engine-engagement contract: when the scheduler exists it is wired to the
// cost model's minimum channel latency, and the sync-only features
// (unexpected-queue cap, scheduled ctx-down faults) force the deterministic
// fallback rather than racing the async queue.
TEST(PdesEngine, EngagementAndSyncFallback) {
  twin::ScopedEnv clear_mode("TMPI_EXEC_MODE");

  {
    World world(two_node_config());  // default exec_mode = serial
    EXPECT_EQ(world.pdes(), nullptr);
  }
  {
    WorldConfig wc = two_node_config();
    wc.exec_mode = "parallel";
    World world(wc);
    ASSERT_NE(world.pdes(), nullptr);
    // min(shm_latency_ns = 150, wire_latency_ns = 900) from the default cost
    // model — the conservative lookahead bound (DESIGN.md §12).
    EXPECT_EQ(world.pdes()->lookahead_ns(), 150u);
    EXPECT_GE(world.pdes()->num_workers(), 1);

    std::vector<std::byte> sbuf(8, std::byte{0x01});
    std::vector<std::byte> rbuf(8);
    Request rreq;
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) rreq = irecv(rbuf.data(), 8, kByte, 0, 0, rank.world_comm());
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) isend(sbuf.data(), 8, kByte, 1, 0, rank.world_comm()).wait();
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) rreq.wait();
    });
    // The delivery actually flowed through the scheduler, not a bypass.
    EXPECT_GT(world.pdes()->processed(), 0u);
    EXPECT_EQ(world.pdes()->pending(), 0u);
  }
  {
    // Bounded unexpected queue: deferred deliveries could fail/overflow, so
    // the world must fall back to the synchronous engine.
    WorldConfig wc = two_node_config();
    wc.exec_mode = "parallel";
    wc.overload_info.set("tmpi_unexpected_cap", 4);
    World world(wc);
    EXPECT_EQ(world.pdes(), nullptr);
  }
  {
    // Scheduled ctx-down events redirect streams mid-flight; also sync-only.
    WorldConfig wc = two_node_config();
    wc.num_vcis = 2;
    wc.exec_mode = "parallel";
    wc.fault_info.set("tmpi_fault_plan", "down@0:0:0");
    World world(wc);
    EXPECT_EQ(world.pdes(), nullptr);
  }
  {
    // Probabilistic plans are sender-side and async-safe: engine stays on.
    WorldConfig wc = two_node_config();
    wc.exec_mode = "parallel";
    wc.fault_info.set("tmpi_fault_seed", 7);
    wc.fault_info.set("tmpi_fault_drop_rate", "0.5");
    World world(wc);
    EXPECT_NE(world.pdes(), nullptr);
  }
  {
    // Env knob overrides WorldConfig, same as the other mode knobs.
    twin::ScopedEnv pin_serial("TMPI_EXEC_MODE", "serial");
    WorldConfig wc = two_node_config();
    wc.exec_mode = "parallel";
    World world(wc);
    EXPECT_EQ(world.pdes(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Randomized-world oracle: seeded bidirectional traffic with mixed protocols
// (sizes straddle the 64 KiB rendezvous threshold), duplicate tags (FIFO
// matching), shuffled posting order, and a deliberately unexpected tail. The
// workload is shaped so the virtual timeline is deterministic in BOTH
// engines — each send phase has one sending rank (a channel's duplex ctx is
// occupied by its owner's sends AND inbound arrival processing, so
// bidirectional sends in one phase would race in host order), rendezvous
// messages live in their own tag space (5..9), are always pre-posted, and
// are completed inline (an unwaited rendezvous would let the receiver-driven
// pull race the sender's later injects on the same ctx). With that
// structure the serial engine is a valid oracle and the parallel engine
// must reproduce it bit-exactly, seed by seed. (Unexpected rendezvous
// arrival is covered deterministically by PdesParity.RendezvousBothOrders.)
struct FuzzMsg {
  int src;            // sending world rank (0 or 1)
  int tag;            // small tag space => duplicate tags => FIFO pressure
  std::size_t bytes;  // mixed eager/rendezvous
  std::byte fill;
};

constexpr std::size_t kFuzzRndvThreshold = 64 * 1024;  // cost-model default
constexpr std::size_t kFuzzTags = 10;  // 0..4 eager chains, 5..9 rendezvous

std::vector<FuzzMsg> make_fuzz_plan(std::uint32_t seed, int count) {
  std::mt19937 rng(seed);
  const std::array<std::size_t, 5> sizes{8, 96, 1024, 32 * 1024, 96 * 1024};
  std::vector<FuzzMsg> plan;
  plan.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FuzzMsg m;
    m.src = static_cast<int>(rng() % 2);
    m.tag = static_cast<int>(rng() % 5);
    m.bytes = sizes[rng() % sizes.size()];
    // Rendezvous chains get a disjoint tag space so forcing them into the
    // pre-posted set cannot break FIFO order within a (src, tag) chain that
    // also carries eager messages.
    if (m.bytes > kFuzzRndvThreshold) m.tag += 5;
    m.fill = static_cast<std::byte>(0x40 + (rng() % 64));
    plan.push_back(m);
  }
  return plan;
}

TEST(PdesParityFuzz, RandomizedWorlds) {
  constexpr int kMsgs = 32;
  for (const std::uint32_t seed : {11u, 23u, 57u}) {
    const std::vector<FuzzMsg> plan = make_fuzz_plan(seed, kMsgs);

    // Per-destination message indices, shuffled for the posting order; the
    // first `posted` of each list are pre-posted, the rest stay unexpected
    // until the drain phase.
    std::array<std::vector<std::size_t>, 2> order;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      order[static_cast<std::size_t>(1 - plan[i].src)].push_back(i);
    }
    std::mt19937 shuffle_rng(seed ^ 0x9e3779b9u);
    for (auto& o : order) std::shuffle(o.begin(), o.end(), shuffle_rng);
    // Keep FIFO-matchable: within a duplicate tag, receives must be posted
    // in send (index) order or the payload lands in the wrong buffer in BOTH
    // engines. Stable-sort the shuffled order by tag-run position: simplest
    // is to sort indices per (src,tag) back into ascending order while
    // keeping the shuffled interleave across tags.
    for (auto& o : order) {
      std::array<std::vector<std::size_t>, 2 * kFuzzTags> by_key;
      for (std::size_t idx : o) {
        by_key[static_cast<std::size_t>(plan[idx].src) * kFuzzTags +
               static_cast<std::size_t>(plan[idx].tag)]
            .push_back(idx);
      }
      for (auto& v : by_key) std::sort(v.begin(), v.end());
      std::array<std::size_t, 2 * kFuzzTags> cursor{};
      for (std::size_t& slot : o) {
        const auto key = static_cast<std::size_t>(plan[slot].src) * kFuzzTags +
                         static_cast<std::size_t>(plan[slot].tag);
        slot = by_key[key][cursor[key]++];
      }
    }

    // Split each rank's receive order into the pre-posted set and the
    // unexpected tail: every rendezvous message is pre-posted (its send is
    // completed inline in phase 2, which requires the receive to exist),
    // plus the first half of the eager messages. Both halves keep the
    // shuffled interleave, so per-(src, tag) FIFO prefixes are preserved.
    std::array<std::vector<std::size_t>, 2> pre, tail;
    for (std::size_t r = 0; r < 2; ++r) {
      std::vector<std::size_t> eager;
      for (std::size_t idx : order[r]) {
        (plan[idx].bytes > kFuzzRndvThreshold ? pre[r] : eager).push_back(idx);
      }
      const std::size_t half = eager.size() / 2;
      pre[r].insert(pre[r].end(), eager.begin(),
                    eager.begin() + static_cast<std::ptrdiff_t>(half));
      tail[r].assign(eager.begin() + static_cast<std::ptrdiff_t>(half), eager.end());
    }

    auto scenario = [&](World& world, Outcome& out) {
      std::vector<std::vector<std::byte>> sbufs(plan.size());
      std::vector<std::vector<std::byte>> rbufs(plan.size());
      std::vector<Request> rreqs(plan.size());
      std::vector<Request> sreqs(plan.size());
      for (std::size_t i = 0; i < plan.size(); ++i) {
        sbufs[i].assign(plan[i].bytes, plan[i].fill);
        rbufs[i].resize(plan[i].bytes);
      }
      std::array<net::Time, 2> done{};

      // Phase 1: pre-post each rank's pre-posted set (all rendezvous plus
      // half of the eager receives, shuffled order).
      world.run([&](Rank& rank) {
        for (const std::size_t idx : pre[static_cast<std::size_t>(rank.rank())]) {
          const FuzzMsg& m = plan[idx];
          rreqs[idx] = irecv(rbufs[idx].data(), static_cast<int>(m.bytes), kByte, m.src,
                             m.tag, rank.world_comm());
        }
      });
      // Phase 2: one sending rank per sub-phase, program-ordered; rendezvous
      // sends are completed inline (see the header comment).
      for (int sender = 0; sender < 2; ++sender) {
        world.run([&](Rank& rank) {
          if (rank.rank() != sender) return;
          for (std::size_t i = 0; i < plan.size(); ++i) {
            if (plan[i].src != sender) continue;
            sreqs[i] = isend(sbufs[i].data(), static_cast<int>(plan[i].bytes), kByte,
                             1 - plan[i].src, plan[i].tag, rank.world_comm());
            if (plan[i].bytes > kFuzzRndvThreshold) sreqs[i].wait();
          }
        });
      }
      // Phase 3: post the unexpected eager tail, drain everything.
      world.run([&](Rank& rank) {
        for (const std::size_t idx : tail[static_cast<std::size_t>(rank.rank())]) {
          const FuzzMsg& m = plan[idx];
          rreqs[idx] = irecv(rbufs[idx].data(), static_cast<int>(m.bytes), kByte, m.src,
                             m.tag, rank.world_comm());
        }
        for (std::size_t i = 0; i < plan.size(); ++i) {
          if (plan[i].src == rank.rank()) {
            sreqs[i].wait();
          } else {
            Status st = rreqs[i].wait();
            EXPECT_EQ(st.bytes, plan[i].bytes);
          }
        }
        done[static_cast<std::size_t>(rank.rank())] = now();
      });

      out.marks.assign(done.begin(), done.end());
      out.marks.push_back(world.elapsed());
      for (std::size_t i = 0; i < plan.size(); ++i) {
        // Every received byte, content-checked once here and twin-compared
        // via the outcome payload.
        for (const std::byte b : rbufs[i]) {
          ASSERT_EQ(b, plan[i].fill) << "seed " << seed << " msg " << i;
        }
        out.payload.push_back(rbufs[i].front());
        out.payload.push_back(rbufs[i].back());
      }
    };

    SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);
    run_twins(two_node_config(), scenario);
  }
}

}  // namespace
