#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "tmpi/tmpi.h"
#include "twin_harness.h"
#include "workloads/msgrate.h"

/// Virtual-time charge-parity suite for the unified transport layer.
///
/// Every scenario below pins the full inject→wire→deposit pipeline to golden
/// completion times recorded from the pre-transport (seed) implementation.
/// The scenarios are single-actor-per-channel and phase-ordered (each phase
/// is a separate World::run so host scheduling cannot reorder deposits vs
/// posts), which makes virtual times bit-exact per DESIGN.md §6 — the
/// reproducibility guarantee is the refactor's correctness oracle.

namespace {

using namespace tmpi;

// World-setup/clock boilerplate shared with the other parity suites
// (tests/tmpi/twin_harness.h).
using twin::now;
using twin::two_node_config;

// ---------------------------------------------------------------------------
// Eager point-to-point, receive posted before the message arrives.
TEST(TransportParity, EagerPostedFirst) {
  World world(two_node_config());
  std::vector<std::byte> sbuf(8, std::byte{0x11});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = rreq.wait();
      recv_done = now();
      EXPECT_EQ(st.bytes, 8u);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
    }
  });

  EXPECT_EQ(send_done, 140u);
  EXPECT_EQ(recv_done, 1132u);
}

// ---------------------------------------------------------------------------
// Eager point-to-point, message arrives before the receive is posted
// (unexpected-queue path: insert charge on the arrival clock, probe charge
// on the receiver's clock).
TEST(TransportParity, EagerUnexpected) {
  World world(two_node_config());
  std::vector<std::byte> sbuf(8, std::byte{0x22});
  std::vector<std::byte> rbuf(8);
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 3, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = recv(rbuf.data(), 8, kByte, 0, 3, rank.world_comm());
      recv_done = now();
      EXPECT_EQ(st.bytes, 8u);
    }
  });

  EXPECT_EQ(send_done, 140u);
  EXPECT_EQ(recv_done, 1150u);
}

// ---------------------------------------------------------------------------
// Rendezvous point-to-point (payload above the eager threshold), receive
// posted first: the send request completes at the match, plus the CTS round
// trip and payload wire time.
TEST(TransportParity, RendezvousPostedFirst) {
  World world(two_node_config());
  const std::size_t kBytes = 128 * 1024;  // > 64 KiB eager threshold
  std::vector<std::byte> sbuf(kBytes, std::byte{0x33});
  std::vector<std::byte> rbuf(kBytes);
  Request rreq;
  Request sreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), static_cast<int>(kBytes), kByte, 0, 1, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      sreq = isend(sbuf.data(), static_cast<int>(kBytes), kByte, 1, 1, rank.world_comm());
      sreq.wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq.wait();
      recv_done = now();
    }
  });

  EXPECT_EQ(send_done, 13417u);
  EXPECT_EQ(recv_done, 13417u);
  EXPECT_EQ(rbuf[12345], std::byte{0x33});
}

// ---------------------------------------------------------------------------
// Rendezvous, sender first (unexpected RTS; the match happens when the
// receive posts, on the receiver's thread).
TEST(TransportParity, RendezvousUnexpected) {
  World world(two_node_config());
  const std::size_t kBytes = 128 * 1024;
  std::vector<std::byte> sbuf(kBytes, std::byte{0x44});
  std::vector<std::byte> rbuf(kBytes);
  Request sreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      sreq = isend(sbuf.data(), static_cast<int>(kBytes), kByte, 1, 1, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      recv(rbuf.data(), static_cast<int>(kBytes), kByte, 0, 1, rank.world_comm());
      recv_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      sreq.wait();
      send_done = now();
    }
  });

  EXPECT_EQ(send_done, 13435u);
  EXPECT_EQ(recv_done, 13435u);
}

// ---------------------------------------------------------------------------
// RMA pipeline: put / get / accumulate / get_accumulate through one window
// channel, origin-side flush horizons.
TEST(TransportParity, RmaPipeline) {
  World world(two_node_config());
  std::array<net::Time, 4> t{};

  world.run([&](Rank& rank) {
    std::vector<double> mem(64, rank.rank() == 0 ? 1.0 : 2.0);
    Window win = Window::create(mem.data(), mem.size() * sizeof(double), rank.world_comm());
    if (rank.rank() == 0) {
      const double v = 5.0;
      win.put(&v, 1, kDouble, 1, 3);
      win.flush_all();
      t[0] = now();

      double got = 0.0;
      win.get(&got, 1, kDouble, 1, 3);
      win.flush_all();
      t[1] = now();
      EXPECT_EQ(got, 5.0);

      win.accumulate(&v, 1, kDouble, 1, 3, Op::kSum);
      win.flush_all();
      t[2] = now();

      double fetched = 0.0;
      win.get_accumulate(&v, &fetched, 1, kDouble, 1, 3, Op::kSum);
      t[3] = now();
      EXPECT_EQ(fetched, 10.0);
    }
  });

  EXPECT_EQ(t[0], 1200u);
  EXPECT_EQ(t[1], 3300u);
  EXPECT_EQ(t[2], 4580u);
  EXPECT_EQ(t[3], 6760u);
}

// ---------------------------------------------------------------------------
// Partitioned pipeline: 4 partitions through one channel, phase-ordered so
// the receive side is registered and active before the first pready.
TEST(TransportParity, PartitionedPipeline) {
  World world(two_node_config());
  constexpr int kParts = 4;
  constexpr int kCount = 16;
  std::vector<std::byte> sbuf(kParts * kCount, std::byte{0x55});
  std::vector<std::byte> rbuf(kParts * kCount);
  Request sreq, rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      sreq = psend_init(sbuf.data(), kParts, kCount, kByte, 1, 9, rank.world_comm());
      start(sreq);
    } else {
      rreq = precv_init(rbuf.data(), kParts, kCount, kByte, 0, 9, rank.world_comm());
      start(rreq);
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      for (int p = 0; p < kParts; ++p) pready(p, sreq);
      sreq.wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      for (int p = 0; p < kParts; ++p) await_partition(rreq, p);
      rreq.wait();
      recv_done = now();
    }
  });

  EXPECT_EQ(send_done, 740u);
  EXPECT_EQ(recv_done, 1701u);
  EXPECT_EQ(rbuf[17], std::byte{0x55});
}

// ---------------------------------------------------------------------------
// Collective fragments ride the same pipeline; the root's clock after a
// bcast is deterministic (only its own sends charge it).
TEST(TransportParity, CollectiveRootClock) {
  World world(two_node_config());
  net::Time root_done = 0;
  net::Time leaf_done = 0;

  world.run([&](Rank& rank) {
    std::vector<std::int32_t> buf(16);
    if (rank.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::int32_t>(i);
    }
    bcast(buf.data(), 16, kInt32, 0, rank.world_comm());
    if (rank.rank() == 0) {
      root_done = now();
    } else {
      leaf_done = now();
      EXPECT_EQ(buf[7], 7u);
    }
  });

  EXPECT_EQ(root_done, 140u);
  // The leaf's match path depends on deposit/post interleaving (host order);
  // its completion stays within one probe/insert charge of the golden value.
  EXPECT_NEAR(static_cast<double>(leaf_done), 1156.0, 100.0);
}

// ---------------------------------------------------------------------------
// End-to-end workload makespans: single-worker message-rate runs per mode.
// These cover routing through comm policies, endpoints, and tag hints.
TEST(TransportParity, MsgrateElapsed) {
  auto elapsed = [](wl::MsgRateMode mode) {
    wl::MsgRateParams p;
    p.mode = mode;
    p.workers = 1;
    p.msgs_per_worker = 256;
    p.window = 16;
    p.msg_bytes = 8;
    return wl::run_msgrate(p).elapsed_ns;
  };

  // Makespans carry a sub-0.2% host-order jitter in the match path (probe
  // vs insert charges, DESIGN.md §6); pin to the seed value with a 400 ns
  // band, far tighter than the <2% reproducibility guarantee.
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kEverywhere)), 69940.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsOriginal)), 70220.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsEndpoints)), 70220.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsTags)), 70220.0, 400.0);
  EXPECT_NEAR(static_cast<double>(elapsed(wl::MsgRateMode::kThreadsComms)), 70220.0, 400.0);
}

// ---------------------------------------------------------------------------
// Pay-for-what-you-use (DESIGN.md §7): a configured-but-empty FaultPlan (all
// rates zero, no scheduled events) must not instantiate the fault layer at
// all — the golden eager times reproduce bit-exactly, and no fault counters
// move anywhere in the fabric.
TEST(TransportParity, ZeroFaultPlanBitExact) {
  WorldConfig wc = two_node_config();
  wc.fault_info.set("tmpi_fault_seed", 42);
  wc.fault_info.set("tmpi_fault_drop_rate", "0.0");
  wc.fault_info.set("tmpi_fault_corrupt_rate", "0.0");
  wc.fault_info.set("tmpi_fault_delay_rate", "0.0");
  wc.fault_info.set("tmpi_fault_max_retries", 3);
  World world(wc);
  EXPECT_EQ(world.fault_injector(), nullptr);  // plan can't fire: no injector

  std::vector<std::byte> sbuf(8, std::byte{0x11});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = rreq.wait();
      recv_done = now();
      EXPECT_EQ(st.bytes, 8u);
    }
  });

  // Bit-exact golden values from EagerPostedFirst above.
  EXPECT_EQ(send_done, 140u);
  EXPECT_EQ(recv_done, 1132u);

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.drops, 0u);
  EXPECT_EQ(s.corrupts, 0u);
  EXPECT_EQ(s.delays, 0u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.failovers, 0u);
  for (const auto& c : s.channels) {
    EXPECT_EQ(c.drops + c.corrupts + c.delays + c.retransmits + c.timeouts + c.failovers, 0u);
  }
}

TEST(TransportParity, TracingKnobOffBitExact) {
  WorldConfig wc = two_node_config();
  wc.trace_info.set("tmpi_trace", "0");
  World world(wc);
  EXPECT_EQ(world.tracer(), nullptr);  // knob off: the recorder never exists

  std::vector<std::byte> sbuf(8, std::byte{0x11});
  std::vector<std::byte> rbuf(8);
  Request rreq;
  net::Time send_done = 0;
  net::Time recv_done = 0;

  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      rreq = irecv(rbuf.data(), 8, kByte, 0, 7, rank.world_comm());
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      isend(sbuf.data(), 8, kByte, 1, 7, rank.world_comm()).wait();
      send_done = now();
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = rreq.wait();
      recv_done = now();
      EXPECT_EQ(st.bytes, 8u);
    }
  });

  // Bit-exact golden values from EagerPostedFirst above.
  EXPECT_EQ(send_done, 140u);
  EXPECT_EQ(recv_done, 1132u);

  // And the snapshot carries no percentile rows without a recorder.
  EXPECT_TRUE(world.snapshot().op_latency.empty());
}

// ---------------------------------------------------------------------------
// Regression: truncation detected at match time must surface as kTruncate
// from wait()/test() on the receive request, for BOTH protocols and BOTH
// match orders (posted-first and unexpected).
TEST(TransportTruncation, EagerBothOrders) {
  for (const bool posted_first : {true, false}) {
    World world(two_node_config());
    std::vector<std::byte> sbuf(64, std::byte{0x66});
    std::vector<std::byte> rbuf(8);
    Request rreq, sreq;

    auto post = [&](Rank& rank) {
      if (rank.rank() == 1) {
        rreq = irecv(rbuf.data(), 8, kByte, 0, 2, rank.world_comm());
      }
    };
    auto send = [&](Rank& rank) {
      if (rank.rank() == 0) {
        sreq = isend(sbuf.data(), 64, kByte, 1, 2, rank.world_comm());
      }
    };
    if (posted_first) {
      world.run(post);
      world.run(send);
    } else {
      world.run(send);
      world.run(post);
    }
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        Status st;
        try {
          rreq.wait();
          FAIL() << "truncated eager receive did not throw (posted_first=" << posted_first
                 << ")";
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), Errc::kTruncate);
        }
        // test() must keep reporting the error, not success.
        try {
          (void)rreq.test(&st);
          FAIL() << "test() after truncation did not throw";
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), Errc::kTruncate);
        }
      } else {
        sreq.wait();  // eager send completes regardless of remote truncation
      }
    });
  }
}

TEST(TransportTruncation, RendezvousBothOrders) {
  const std::size_t kBytes = 128 * 1024;
  for (const bool posted_first : {true, false}) {
    World world(two_node_config());
    std::vector<std::byte> sbuf(kBytes, std::byte{0x77});
    std::vector<std::byte> rbuf(64);
    Request rreq, sreq;

    auto post = [&](Rank& rank) {
      if (rank.rank() == 1) {
        rreq = irecv(rbuf.data(), 64, kByte, 0, 2, rank.world_comm());
      }
    };
    auto send = [&](Rank& rank) {
      if (rank.rank() == 0) {
        sreq = isend(sbuf.data(), static_cast<int>(kBytes), kByte, 1, 2, rank.world_comm());
      }
    };
    if (posted_first) {
      world.run(post);
      world.run(send);
    } else {
      world.run(send);
      world.run(post);
    }
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        try {
          rreq.wait();
          FAIL() << "truncated rendezvous receive did not throw (posted_first=" << posted_first
                 << ")";
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), Errc::kTruncate);
        }
      } else {
        sreq.wait();  // sender still completes: the RTS matched
      }
    });
  }
}

}  // namespace
