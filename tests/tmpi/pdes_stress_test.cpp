#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "net/pdes.h"
#include "tmpi/tmpi.h"
#include "twin_harness.h"

/// PDES stress parity (`ctest -L stress`): 16 endpoint VCIs carry mixed
/// eager/rendezvous traffic from 8 concurrent host threads per send phase
/// under a seeded 5% drop plan, followed by RMA and partitioned phases —
/// first on the serial engine, then on the parallel engine. Fault verdicts
/// are pure functions of (seed, rank, vci, op index, attempt) and each
/// phase gives every channel a single writer ordering, so the per-channel
/// drop/retransmit/credit counters are deterministic even under
/// host-threaded sends; the test pins the parallel engine's tallies to the
/// serial run's, channel by channel.

namespace {

using namespace tmpi;

constexpr int kEps = 8;        // endpoints (VCIs) per rank -> 16 across the world
constexpr int kEagerMsgs = 12; // small messages per thread pair
constexpr int kRdvzMsgs = 2;   // > 64 KiB messages per thread pair
constexpr std::size_t kRdvzBytes = 96 * 1024;

struct StressOutcome {
  net::NetStatsSnapshot snap;
  net::Time elapsed = 0;
  std::vector<std::byte> payload;
};

StressOutcome run_stress(const std::string& mode) {
  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;
  wc.num_vcis = 1;  // endpoints grow the VCI pool on demand
  wc.exec_mode = mode;
  wc.fault_info.set("tmpi_fault_seed", 4242);
  wc.fault_info.set("tmpi_fault_drop_rate", "0.05");
  wc.fault_info.set("tmpi_fault_max_retries", 8);
  wc.overload_info.set("tmpi_eager_credits", 8);
  World world(wc);
  if (mode == "parallel") {
    EXPECT_NE(world.pdes(), nullptr) << "parallel engine did not engage under the drop plan";
  }

  StressOutcome out;
  std::array<std::optional<std::vector<Comm>>, 2> eps;
  // Index [rank][tid][msg]: receives this rank's thread tid posts.
  const std::size_t kPerThread = kEagerMsgs + kRdvzMsgs;
  std::array<std::vector<std::vector<std::byte>>, 2> rbufs;
  std::array<std::vector<std::vector<std::byte>>, 2> sbufs;
  std::array<std::vector<Request>, 2> rreqs;
  std::array<std::vector<Request>, 2> sreqs;
  for (int r = 0; r < 2; ++r) {
    rbufs[r].resize(kEps * kPerThread);
    sbufs[r].resize(kEps * kPerThread);
    rreqs[r].resize(kEps * kPerThread);
    sreqs[r].resize(kEps * kPerThread);
    for (int tid = 0; tid < kEps; ++tid) {
      for (std::size_t m = 0; m < kPerThread; ++m) {
        const std::size_t i = static_cast<std::size_t>(tid) * kPerThread + m;
        const std::size_t bytes = m < kEagerMsgs ? 8 : kRdvzBytes;
        sbufs[r][i].assign(bytes, static_cast<std::byte>(0x10 + r * 8 + tid));
        rbufs[r][i].resize(bytes);
      }
    }
  }

  // Phase 0: grow the endpoint pool (collective) and stash the comms.
  world.run([&](Rank& rank) {
    eps[static_cast<std::size_t>(rank.rank())] = rank.world_comm().create_endpoints(kEps);
  });

  // Phase 1: every thread pre-posts all of its receives on its own endpoint
  // (posted-first keeps the match path independent of host interleaving).
  world.run([&](Rank& rank) {
    const int r = rank.rank();
    rank.parallel(kEps, [&](int tid) {
      const Comm& my = (*eps[static_cast<std::size_t>(r)])[static_cast<std::size_t>(tid)];
      const int peer_ep = (1 - r) * kEps + tid;
      for (std::size_t m = 0; m < kPerThread; ++m) {
        const std::size_t i = static_cast<std::size_t>(tid) * kPerThread + m;
        rreqs[static_cast<std::size_t>(r)][i] =
            irecv(rbufs[static_cast<std::size_t>(r)][i].data(),
                  static_cast<int>(rbufs[static_cast<std::size_t>(r)][i].size()), kByte,
                  peer_ep, static_cast<Tag>(m), my);
      }
    });
  });

  // Phase 2: one send direction at a time. A channel's fault op-id counter
  // is shared between the owner's injects and arrival processing of its
  // peer's sends (deliver/occupy resolve fault routing on the destination
  // channel), so bidirectional traffic in one phase would interleave the two
  // bump streams host-order-dependently — in serial as much as in parallel.
  // Phase-separating the directions gives every channel a single writer
  // ordering per phase (sender program order plus FIFO arrivals from its one
  // peer), making the seeded verdict stream engine-invariant. Within a
  // phase, 8 threads fire their eager windows back-to-back (exercising the
  // 8-credit budget under the 5% drop plan) and then complete rendezvous
  // sends inline, so the payload injection occupies a fixed slot in the
  // sender channel's op-id stream (deferred delivery would otherwise shift
  // the ids the verdicts key on).
  for (int sender = 0; sender < 2; ++sender) {
    world.run([&](Rank& rank) {
      const int r = rank.rank();
      if (r != sender) return;
      rank.parallel(kEps, [&](int tid) {
        const Comm& my = (*eps[static_cast<std::size_t>(r)])[static_cast<std::size_t>(tid)];
        const int peer_ep = (1 - r) * kEps + tid;
        for (std::size_t m = 0; m < kPerThread; ++m) {
          const std::size_t i = static_cast<std::size_t>(tid) * kPerThread + m;
          sreqs[static_cast<std::size_t>(r)][i] =
              isend(sbufs[static_cast<std::size_t>(r)][i].data(),
                    static_cast<int>(sbufs[static_cast<std::size_t>(r)][i].size()), kByte,
                    peer_ep, static_cast<Tag>(m), my);
          if (m >= kEagerMsgs) sreqs[static_cast<std::size_t>(r)][i].wait();
        }
      });
    });
  }

  // Phase 3: drain — retransmits for dropped attempts are driven from the
  // senders' waits, each on its own channel's deterministic verdict stream.
  world.run([&](Rank& rank) {
    const int r = rank.rank();
    rank.parallel(kEps, [&](int tid) {
      for (std::size_t m = 0; m < kPerThread; ++m) {
        const std::size_t i = static_cast<std::size_t>(tid) * kPerThread + m;
        sreqs[static_cast<std::size_t>(r)][i].wait();
        Status st = rreqs[static_cast<std::size_t>(r)][i].wait();
        EXPECT_EQ(st.bytes, rbufs[static_cast<std::size_t>(r)][i].size());
      }
    });
  });

  // Phase 4: RMA pipeline through the same fabric (origin-ordered, one
  // actor per window channel).
  world.run([&](Rank& rank) {
    std::vector<double> mem(64, rank.rank() == 0 ? 1.0 : 2.0);
    Window win = Window::create(mem.data(), mem.size() * sizeof(double), rank.world_comm());
    if (rank.rank() == 0) {
      const double v = 3.0;
      for (int j = 0; j < 8; ++j) {
        win.put(&v, 1, kDouble, 1, j);
        win.accumulate(&v, 1, kDouble, 1, j, Op::kSum);
      }
      win.flush_all();
      double got = 0.0;
      win.get(&got, 1, kDouble, 1, 5);
      win.flush_all();
      EXPECT_EQ(got, 6.0);  // put(3) then accumulate(+3)
    }
    // Close the access epoch before the target's memory leaves scope: the
    // passive-side rank must not free `mem` while the origin is mid-put.
    win.fence();
  });

  // Phase 5: partitioned pipeline, phase-ordered like the golden scenario.
  {
    constexpr int kParts = 4;
    constexpr int kCount = 16;
    std::vector<std::byte> psbuf(kParts * kCount, std::byte{0x77});
    std::vector<std::byte> prbuf(kParts * kCount);
    Request psreq, prreq;
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        psreq = psend_init(psbuf.data(), kParts, kCount, kByte, 1, 3, rank.world_comm());
        start(psreq);
      } else {
        prreq = precv_init(prbuf.data(), kParts, kCount, kByte, 0, 3, rank.world_comm());
        start(prreq);
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 0) {
        for (int p = 0; p < kParts; ++p) pready(p, psreq);
        psreq.wait();
      }
    });
    world.run([&](Rank& rank) {
      if (rank.rank() == 1) {
        for (int p = 0; p < kParts; ++p) await_partition(prreq, p);
        prreq.wait();
      }
    });
    out.payload.insert(out.payload.end(), prbuf.begin(), prbuf.end());
  }

  for (int r = 0; r < 2; ++r) {
    for (const auto& b : rbufs[static_cast<std::size_t>(r)]) {
      out.payload.push_back(b.front());
      out.payload.push_back(b.back());
    }
  }
  out.snap = world.snapshot();
  out.elapsed = world.elapsed();
  return out;
}

TEST(PdesStress, MixedTrafficFaultParity) {
  twin::ScopedEnv clear_mode("TMPI_EXEC_MODE");
  const StressOutcome serial = run_stress("serial");
  const StressOutcome parallel = run_stress("parallel");

  // The drop plan must actually have fired, or the retransmit parity below
  // is vacuous. Seeded: same expectation on every run.
  EXPECT_GT(serial.snap.drops, 0u);
  EXPECT_GT(serial.snap.retransmits, 0u);

  // Deterministic global tallies. (Host-artifact counters — lock contention,
  // probe counts against concurrently-mutating queues, busy-time maxima —
  // are excluded; they jitter in BOTH engines under 16 host threads.)
  EXPECT_EQ(serial.snap.messages, parallel.snap.messages);
  EXPECT_EQ(serial.snap.bytes, parallel.snap.bytes);
  EXPECT_EQ(serial.snap.injections, parallel.snap.injections);
  EXPECT_EQ(serial.snap.drops, parallel.snap.drops);
  EXPECT_EQ(serial.snap.corrupts, parallel.snap.corrupts);
  EXPECT_EQ(serial.snap.delays, parallel.snap.delays);
  EXPECT_EQ(serial.snap.retransmits, parallel.snap.retransmits);
  EXPECT_EQ(serial.snap.timeouts, parallel.snap.timeouts);
  EXPECT_EQ(serial.snap.failovers, parallel.snap.failovers);
  EXPECT_EQ(serial.snap.credit_stalls, parallel.snap.credit_stalls);
  EXPECT_EQ(serial.snap.overflows, parallel.snap.overflows);
  EXPECT_EQ(serial.snap.rendezvous_messages, parallel.snap.rendezvous_messages);
  EXPECT_EQ(serial.snap.rma_ops, parallel.snap.rma_ops);
  EXPECT_EQ(serial.snap.atomic_ops, parallel.snap.atomic_ops);

  // Channel-by-channel: each endpoint channel's fault stream is keyed by
  // (seed, rank, vci, op, attempt), so its counters must agree exactly.
  ASSERT_EQ(serial.snap.channels.size(), parallel.snap.channels.size());
  for (std::size_t i = 0; i < serial.snap.channels.size(); ++i) {
    const auto& cs = serial.snap.channels[i];
    const auto& cp = parallel.snap.channels[i];
    ASSERT_EQ(cs.rank, cp.rank) << "channel " << i;
    ASSERT_EQ(cs.vci, cp.vci) << "channel " << i;
    EXPECT_EQ(cs.injections, cp.injections) << "channel " << i;
    EXPECT_EQ(cs.rx_ops, cp.rx_ops) << "channel " << i;
    EXPECT_EQ(cs.deposits, cp.deposits) << "channel " << i;
    EXPECT_EQ(cs.drops, cp.drops) << "channel " << i;
    EXPECT_EQ(cs.retransmits, cp.retransmits) << "channel " << i;
    EXPECT_EQ(cs.timeouts, cp.timeouts) << "channel " << i;
    EXPECT_EQ(cs.credit_stalls, cp.credit_stalls) << "channel " << i;
    EXPECT_EQ(cs.overflows, cp.overflows) << "channel " << i;
  }

  // Payload bytes agree bit-exactly.
  EXPECT_EQ(serial.payload, parallel.payload);

  // The virtual makespan is host-order sensitive in BOTH engines: phase
  // barriers and the RMA fence exchange control messages over the shared
  // base-VCI channels, and the order two ranks' messages occupy a duplex
  // ctx is a host scheduling artifact (the same documented jitter the
  // msgrate golden carries; serial runs alone spread ~4% here). Stats and
  // payload parity above are the deterministic claim; the makespans must
  // still land in the same band. Bit-exact makespan equality is pinned by
  // the deterministic scenarios in pdes_parity_test.
  const double sv = static_cast<double>(serial.elapsed);
  const double pv = static_cast<double>(parallel.elapsed);
  EXPECT_GT(serial.elapsed, 0u);
  EXPECT_NEAR(sv, pv, sv * 0.05);
}

}  // namespace
