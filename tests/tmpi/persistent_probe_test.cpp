// Persistent point-to-point operations and probe.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tmpi/tmpi.h"

namespace tmpi {
namespace {

TEST(Persistent, SendRecvAcrossIterations) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  constexpr int kIters = 5;
  w.run([&](Rank& rank) {
    Comm c = rank.world_comm();
    std::vector<std::int32_t> buf(4);
    Request req = rank.rank() == 0 ? send_init(buf.data(), 4, kInt32, 1, 3, c)
                                   : recv_init(buf.data(), 4, kInt32, 0, 3, c);
    for (int it = 0; it < kIters; ++it) {
      if (rank.rank() == 0) {
        std::iota(buf.begin(), buf.end(), it * 100);
        start(req);
        req.wait();
      } else {
        start(req);
        Status st = req.wait();
        EXPECT_EQ(st.source, 0);
        EXPECT_EQ(st.tag, 3);
        for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[static_cast<std::size_t>(i)], it * 100 + i);
      }
    }
  });
}

TEST(Persistent, InactiveRequestWaitsImmediately) {
  WorldConfig wc;
  wc.nranks = 1;
  World w(wc);
  w.run([](Rank& rank) {
    int v = 0;
    Request req = send_init(&v, 1, kInt32, 0, 0, rank.world_comm());
    // MPI: waiting on an inactive persistent request returns immediately.
    EXPECT_NO_THROW(req.wait());
  });
}

TEST(Persistent, StartWhileActiveThrows) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    Comm c = rank.world_comm();
    int v = 0;
    if (rank.rank() == 1) {
      Request req = recv_init(&v, 1, kInt32, 0, 2, c);
      start(req);
      // The message has not been sent yet (the peer waits for our signal),
      // so the request is active and incomplete: a second start must throw.
      EXPECT_THROW(start(req), Error);
      int go = 1;
      send(&go, 1, kInt32, 0, 8, c);
      req.wait();
      EXPECT_EQ(v, 5);
    } else {
      int go = 0;
      recv(&go, 1, kInt32, 1, 8, c);
      int s = 5;
      send(&s, 1, kInt32, 1, 2, c);
    }
  });
}

TEST(Persistent, RecvInitAcceptsWildcards) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    Comm c = rank.world_comm();
    if (rank.rank() == 0) {
      int v = 42;
      send(&v, 1, kInt32, 1, 17, c);
    } else {
      int v = 0;
      Request req = recv_init(&v, 1, kInt32, kAnySource, kAnyTag, c);
      start(req);
      Status st = req.wait();
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 17);
    }
  });
}

TEST(Persistent, StartOnPlainRequestStillThrows) {
  WorldConfig wc;
  wc.nranks = 1;
  World w(wc);
  w.run([](Rank& rank) {
    int v = 0;
    Request r = irecv(&v, 1, kInt32, 0, 0, rank.world_comm());
    EXPECT_THROW(start(r), Error);
    int s = 1;
    send(&s, 1, kInt32, 0, 0, rank.world_comm());
    r.wait();
  });
}

TEST(Probe, IprobeSeesUnreceivedMessage) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    Comm c = rank.world_comm();
    if (rank.rank() == 0) {
      std::vector<double> v(3, 1.5);
      send(v.data(), 3, kDouble, 1, 6, c);
      int sync = 1;
      send(&sync, 1, kInt32, 1, 7, c);
    } else {
      int sync = 0;
      recv(&sync, 1, kInt32, 0, 7, c);  // by now the tag-6 message arrived
      Status st;
      EXPECT_TRUE(iprobe(0, 6, c, &st));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 6);
      EXPECT_EQ(st.bytes, 3 * sizeof(double));
      // Probing does not consume: still there.
      EXPECT_TRUE(iprobe(kAnySource, kAnyTag, c, &st));
      std::vector<double> v(st.count(sizeof(double)));
      recv(v.data(), static_cast<int>(v.size()), kDouble, st.source, st.tag, c);
      EXPECT_EQ(v[0], 1.5);
      EXPECT_FALSE(iprobe(0, 6, c));
    }
  });
}

TEST(Probe, IprobeFalseWhenNothingPending) {
  WorldConfig wc;
  wc.nranks = 1;
  World w(wc);
  w.run([](Rank& rank) {
    EXPECT_FALSE(iprobe(kAnySource, kAnyTag, rank.world_comm()));
  });
}

TEST(Probe, BlockingProbeWaits) {
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    Comm c = rank.world_comm();
    if (rank.rank() == 0) {
      int v = 9;
      send(&v, 1, kInt32, 1, 4, c);
    } else {
      Status st = probe(kAnySource, kAnyTag, c);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 4);
      int v = 0;
      recv(&v, 1, kInt32, st.source, st.tag, c);
      EXPECT_EQ(v, 9);
    }
  });
}

TEST(Probe, ProbeRecvPatternSizesBuffer) {
  // The classic probe-then-allocate pattern irregular codes use.
  WorldConfig wc;
  wc.nranks = 2;
  World w(wc);
  w.run([](Rank& rank) {
    Comm c = rank.world_comm();
    if (rank.rank() == 0) {
      std::vector<std::int64_t> data(37);
      std::iota(data.begin(), data.end(), 0);
      send(data.data(), 37, kInt64, 1, 0, c);
    } else {
      Status st = probe(0, 0, c);
      std::vector<std::int64_t> data(st.count(sizeof(std::int64_t)));
      ASSERT_EQ(data.size(), 37u);
      recv(data.data(), 37, kInt64, 0, 0, c);
      EXPECT_EQ(data[36], 36);
    }
  });
}

}  // namespace
}  // namespace tmpi
