#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "tmpi/tmpi.h"
#include "workloads/msgrate.h"

/// Overload-hardening scenarios (DESIGN.md §8): credit-based flow control,
/// bounded unexpected queues, and per-communicator error handlers.
///
/// Like the fault-injection suite, every world-level scenario is
/// phase-ordered (separate World::run calls per phase) so channel operation
/// streams — and therefore credit grants and cap rejections — replay
/// identically on every execution.

namespace {

using namespace tmpi;

WorldConfig two_node_config() {
  WorldConfig wc;
  wc.nranks = 2;
  wc.ranks_per_node = 1;
  wc.num_vcis = 1;
  return wc;
}

// ---------------------------------------------------------------------------
// OverloadConfig: Info keys, enabled() gating, env overlay (mirrors FaultPlan).
TEST(OverloadConfig, SetAcceptsOverloadKeysAndRejectsOthers) {
  OverloadConfig c;
  EXPECT_FALSE(c.enabled());
  EXPECT_TRUE(c.set("tmpi_eager_credits", "16"));
  EXPECT_TRUE(c.set("tmpi_unexpected_cap", "128"));
  EXPECT_TRUE(c.set("tmpi_watchdog_ns", "500000"));
  EXPECT_FALSE(c.set("tmpi_fault_seed", "1"));  // not an overload key: pass through
  EXPECT_FALSE(c.set("tmpi_num_vcis", "4"));
  EXPECT_EQ(c.eager_credits, 16);
  EXPECT_EQ(c.unexpected_cap, 128);
  EXPECT_EQ(c.watchdog_ns, 500000u);
  EXPECT_TRUE(c.enabled());
}

TEST(OverloadConfig, EachKnobAloneEnablesTheLayer) {
  OverloadConfig a;
  a.eager_credits = 1;
  EXPECT_TRUE(a.enabled());
  OverloadConfig b;
  b.unexpected_cap = 1;
  EXPECT_TRUE(b.enabled());
  OverloadConfig c;
  c.watchdog_ns = 1;
  EXPECT_TRUE(c.enabled());
  EXPECT_FALSE(OverloadConfig{}.enabled());
}

TEST(OverloadConfig, EnvOverlayWins) {
  ::setenv("TMPI_EAGER_CREDITS", "7", 1);
  ::setenv("TMPI_WATCHDOG_NS", "123456", 1);
  OverloadConfig base;
  base.eager_credits = 2;
  base.unexpected_cap = 9;
  const OverloadConfig c = OverloadConfig::from_env(base);
  ::unsetenv("TMPI_EAGER_CREDITS");
  ::unsetenv("TMPI_WATCHDOG_NS");
  EXPECT_EQ(c.eager_credits, 7);       // env wins
  EXPECT_EQ(c.unexpected_cap, 9);      // base survives where env is silent
  EXPECT_EQ(c.watchdog_ns, 123456u);
  EXPECT_TRUE(c.enabled());
}

TEST(OverloadConfig, WorldResolvesKnobsAndSeedsChannelCredits) {
  WorldConfig wc = two_node_config();
  wc.overload_info.set("tmpi_eager_credits", 3);
  World world(wc);
  EXPECT_EQ(world.overload().eager_credits, 3);
  EXPECT_EQ(world.overload().unexpected_cap, 0);
  EXPECT_EQ(world.watchdog(), nullptr);  // no watchdog_ns => no monitor thread
  // Every channel's budget is seeded from the resolved config.
  EXPECT_EQ(world.rank_state(0).vcis.at(0).eager_credits().load(), 3);
  EXPECT_EQ(world.rank_state(1).vcis.at(0).eager_credits().load(), 3);
}

// ---------------------------------------------------------------------------
// Errc <-> int round trip and to_string exhaustiveness.
TEST(Errc, IntRoundTripCoversEveryCode) {
  for (int i = 0; i < kErrcCount; ++i) {
    const Errc code = static_cast<Errc>(i);
    EXPECT_EQ(errc_to_int(code), i);
    EXPECT_EQ(errc_from_int(i), code);
  }
  EXPECT_THROW((void)errc_from_int(-1), Error);
  EXPECT_THROW((void)errc_from_int(kErrcCount), Error);
  try {
    (void)errc_from_int(kErrcCount + 5);
    FAIL() << "out-of-range errc_from_int did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArg);
  }
}

TEST(Errc, ToStringIsExhaustiveAndDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kErrcCount; ++i) {
    const char* name = to_string(static_cast<Errc>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    EXPECT_STRNE(name, "?") << "code " << i << " missing from to_string(Errc)";
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kErrcCount));
  EXPECT_STRNE(to_string(ErrorHandler::kErrorsAreFatal), "?");
  EXPECT_STRNE(to_string(ErrorHandler::kErrorsReturn), "?");
  EXPECT_STRNE(to_string(ErrorHandler::kErrorsAreFatal), to_string(ErrorHandler::kErrorsReturn));
}

TEST(Errc, MpiStyleAliasesMatchTheEnum) {
  EXPECT_EQ(TMPI_SUCCESS, Errc::kSuccess);
  EXPECT_EQ(TMPI_ERR_TIMEOUT, Errc::kTimeout);
  EXPECT_EQ(TMPI_ERR_RESOURCE_EXHAUSTED, Errc::kResourceExhausted);
  EXPECT_EQ(TMPI_ERR_TRUNCATE, Errc::kTruncate);
  EXPECT_EQ(TMPI_ERR_INTERNAL, Errc::kInternal);
}

// ---------------------------------------------------------------------------
// Flow control: with a 2-credit budget, the third-through-sixth unmatched
// eager sends degrade to rendezvous (backpressure, not loss). Everything
// still arrives, in order, with the right payloads.
TEST(FlowControl, EagerDegradesToRendezvousWhenCreditsExhausted) {
  constexpr int kMsgs = 6;
  WorldConfig wc = two_node_config();
  wc.overload_info.set("tmpi_eager_credits", 2);
  World world(wc);

  std::vector<std::vector<std::byte>> sbufs;
  for (int i = 0; i < kMsgs; ++i) {
    sbufs.emplace_back(8, static_cast<std::byte>(0x10 + i));
  }
  std::vector<std::vector<std::byte>> rbufs(kMsgs, std::vector<std::byte>(8));
  std::vector<Request> sreqs(kMsgs);

  // Phase 1: sender issues all six without waiting; no receives are posted,
  // so the two credits are taken and never returned within this phase.
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        sreqs[static_cast<std::size_t>(i)] =
            isend(sbufs[static_cast<std::size_t>(i)].data(), 8, kByte, 1, i, rank.world_comm());
      }
    }
  });
  EXPECT_EQ(world.rank_state(1).vcis.at(0).eager_credits().load(), 0);
  EXPECT_EQ(world.rank_state(1).vcis.at(0).engine().unexpected_depth(),
            static_cast<std::size_t>(kMsgs));

  // Phase 2: receiver drains; rendezvous matches complete the stuck sends.
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      for (int i = 0; i < kMsgs; ++i) {
        Status st = recv(rbufs[static_cast<std::size_t>(i)].data(), 8, kByte, 0, i,
                         rank.world_comm());
        EXPECT_EQ(st.bytes, 8u);
      }
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) wait_all(sreqs.data(), sreqs.size());
  });

  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(rbufs[static_cast<std::size_t>(i)][0], static_cast<std::byte>(0x10 + i));
  }
  // Credits return to the full budget once the engine consumed the envelopes.
  EXPECT_EQ(world.rank_state(1).vcis.at(0).eager_credits().load(), 2);

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.messages, static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(s.credit_stalls, static_cast<std::uint64_t>(kMsgs - 2));
  EXPECT_EQ(s.rendezvous_messages, static_cast<std::uint64_t>(kMsgs - 2));
  EXPECT_EQ(s.unexpected_hwm, static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(s.overflows, 0u);  // backpressure, never rejection
}

// Messages above the eager threshold were already rendezvous; they must not
// consume credits or count as credit stalls.
TEST(FlowControl, RendezvousSizedMessagesBypassCredits) {
  WorldConfig wc = two_node_config();
  wc.overload_info.set("tmpi_eager_credits", 1);
  World world(wc);
  const auto big = static_cast<int>(world.cost().eager_threshold_bytes) + 1;

  std::vector<std::byte> sbuf(static_cast<std::size_t>(big), std::byte{0x3C});
  std::vector<std::byte> rbuf(static_cast<std::size_t>(big));
  Request sreq;

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) sreq = isend(sbuf.data(), big, kByte, 1, 4, rank.world_comm());
  });
  EXPECT_EQ(world.rank_state(1).vcis.at(0).eager_credits().load(), 1);  // untouched
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status st = recv(rbuf.data(), big, kByte, 0, 4, rank.world_comm());
      EXPECT_EQ(st.bytes, static_cast<std::size_t>(big));
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 0) sreq.wait();
  });

  EXPECT_EQ(rbuf[static_cast<std::size_t>(big) - 1], std::byte{0x3C});
  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.credit_stalls, 0u);
  EXPECT_EQ(s.rendezvous_messages, 1u);
}

// ---------------------------------------------------------------------------
// Unexpected-queue cap, errors-are-fatal: the overflowing send throws
// Errc::kResourceExhausted; accepted traffic is undisturbed.
TEST(UnexpectedCap, OverflowThrowsUnderFatalHandler) {
  WorldConfig wc = two_node_config();
  wc.overload_info.set("tmpi_unexpected_cap", 2);
  World world(wc);

  std::vector<std::byte> sbuf(8, std::byte{0x21});
  std::vector<std::byte> rbuf(8);

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      EXPECT_EQ(send(sbuf.data(), 8, kByte, 1, 0, rank.world_comm()), Errc::kSuccess);
      EXPECT_EQ(send(sbuf.data(), 8, kByte, 1, 1, rank.world_comm()), Errc::kSuccess);
      try {
        isend(sbuf.data(), 8, kByte, 1, 2, rank.world_comm()).wait();
        FAIL() << "send over the unexpected cap did not throw";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Errc::kResourceExhausted);
      }
    }
  });
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      for (Tag t = 0; t < 2; ++t) {
        Status st = recv(rbuf.data(), 8, kByte, 0, t, rank.world_comm());
        EXPECT_EQ(st.bytes, 8u);
        EXPECT_EQ(rbuf[0], std::byte{0x21});
      }
    }
  });

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.overflows, 1u);
  EXPECT_EQ(s.unexpected_hwm, 2u);
}

// Same overload, errors-return: rejections come back as Errc return values /
// Status::err and the workload keeps going.
TEST(UnexpectedCap, OverflowReturnsCodeUnderErrorsReturn) {
  constexpr int kMsgs = 6;
  constexpr int kCap = 4;
  WorldConfig wc = two_node_config();
  wc.overload_info.set("tmpi_unexpected_cap", kCap);
  World world(wc);
  Comm(world.world_comm_impl(), 0).set_errhandler(ErrorHandler::kErrorsReturn);

  std::vector<std::vector<std::byte>> sbufs;
  for (int i = 0; i < kMsgs; ++i) {
    sbufs.emplace_back(8, static_cast<std::byte>(0x40 + i));
  }
  std::vector<std::byte> rbuf(8);
  std::vector<Errc> codes(kMsgs, Errc::kInternal);

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        codes[static_cast<std::size_t>(i)] =
            send(sbufs[static_cast<std::size_t>(i)].data(), 8, kByte, 1, i, rank.world_comm());
      }
    }
  });
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(codes[static_cast<std::size_t>(i)],
              i < kCap ? Errc::kSuccess : Errc::kResourceExhausted)
        << "message " << i;
  }

  // The receiver can probe and drain exactly the accepted prefix.
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      Status pst;
      EXPECT_TRUE(iprobe(0, 0, rank.world_comm(), &pst));
      EXPECT_EQ(pst.bytes, 8u);
      EXPECT_FALSE(iprobe(0, kCap, rank.world_comm()));  // rejected: never arrived
      for (int i = 0; i < kCap; ++i) {
        Status st = recv(rbuf.data(), 8, kByte, 0, i, rank.world_comm());
        EXPECT_EQ(st.err, Errc::kSuccess);
        EXPECT_EQ(rbuf[0], static_cast<std::byte>(0x40 + i));
      }
    }
  });

  const net::NetStatsSnapshot s = world.snapshot();
  EXPECT_EQ(s.overflows, static_cast<std::uint64_t>(kMsgs - kCap));
  EXPECT_EQ(s.unexpected_hwm, static_cast<std::uint64_t>(kCap));
  EXPECT_EQ(world.rank_state(1).vcis.at(0).engine().unexpected_depth(), 0u);
}

// Concurrent producers hammering one capped channel: the cap admits exactly
// `kCap` messages regardless of interleaving; every other send reports
// kResourceExhausted, and probe/unexpected_depth agree with the tally.
TEST(UnexpectedCap, ConcurrentProducersAtTheCap) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  constexpr int kCap = 8;
  WorldConfig wc = two_node_config();
  wc.overload_info.set("tmpi_unexpected_cap", kCap);
  World world(wc);
  Comm(world.world_comm_impl(), 0).set_errhandler(ErrorHandler::kErrorsReturn);

  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};

  world.run([&](Rank& rank) {
    if (rank.rank() == 0) {
      rank.parallel(kThreads, [&](int tid) {
        std::vector<std::byte> buf(8, static_cast<std::byte>(tid));
        for (int i = 0; i < kPerThread; ++i) {
          const Errc e = send(buf.data(), 8, kByte, 1, static_cast<Tag>(tid * kPerThread + i),
                              rank.world_comm());
          if (e == Errc::kSuccess) {
            accepted.fetch_add(1);
          } else if (e == Errc::kResourceExhausted) {
            rejected.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      });
    }
  });
  EXPECT_EQ(accepted.load(), kCap);
  EXPECT_EQ(rejected.load(), kThreads * kPerThread - kCap);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(world.rank_state(1).vcis.at(0).engine().unexpected_depth(),
            static_cast<std::size_t>(kCap));

  // Drain: which kCap messages survived depends on thread interleaving, but
  // there are exactly kCap of them, each intact.
  world.run([&](Rank& rank) {
    if (rank.rank() == 1) {
      std::vector<std::byte> rbuf(8);
      EXPECT_TRUE(iprobe(kAnySource, kAnyTag, rank.world_comm()));
      for (int i = 0; i < kCap; ++i) {
        Status st = recv(rbuf.data(), 8, kByte, kAnySource, kAnyTag, rank.world_comm());
        EXPECT_EQ(st.err, Errc::kSuccess);
        EXPECT_EQ(st.bytes, 8u);
      }
      EXPECT_FALSE(iprobe(kAnySource, kAnyTag, rank.world_comm()));
    }
  });
  EXPECT_EQ(world.rank_state(1).vcis.at(0).engine().unexpected_depth(), 0u);
  EXPECT_EQ(world.snapshot().overflows,
            static_cast<std::uint64_t>(kThreads * kPerThread - kCap));
}

// ---------------------------------------------------------------------------
// Acceptance scenario from the issue: an 8-thread msgrate run under a tiny
// credit budget completes with zero loss — the eager stream degrades to
// rendezvous instead of overwhelming the receiver.
TEST(FlowControl, MsgRateCompletesUnderLowCredits) {
  wl::MsgRateParams p;
  p.mode = wl::MsgRateMode::kThreadsOriginal;
  p.workers = 8;
  p.msgs_per_worker = 64;
  p.window = 16;
  p.msg_bytes = 8;
  p.overload.set("tmpi_eager_credits", 4);
  const wl::RunResult r = wl::run_msgrate(p);

  EXPECT_EQ(r.messages, 8u * 64u);
  EXPECT_GE(r.net.messages, 8u * 64u);  // all data messages traversed the fabric
  EXPECT_GT(r.net.credit_stalls, 0u) << "a 4-credit budget must throttle 128 in-flight sends";
  EXPECT_GT(r.net.rendezvous_messages, 0u);
  EXPECT_EQ(r.net.overflows, 0u);  // flow control is lossless
  EXPECT_EQ(r.net.timeouts, 0u);
  EXPECT_GT(r.elapsed_ns, 0u);
}

}  // namespace

// ---------------------------------------------------------------------------
// Failover queue migration (satellite of DESIGN.md §7, regression for
// MatchingEngine::absorb): merged queues must interleave by virtual enqueue
// time so the surviving engine matches exactly as a single channel would.
namespace tmpi::detail {
namespace {

Envelope mk_env(int ctx, int src, Tag tag, const char* payload) {
  Envelope e;
  e.ctx_id = ctx;
  e.src = src;
  e.tag = tag;
  e.bytes = std::strlen(payload);
  e.payload.resize(e.bytes);
  std::memcpy(e.payload.data(), payload, e.bytes);
  return e;
}

struct AbsorbRecv {
  std::shared_ptr<ReqState> req = std::make_shared<ReqState>();
  char buf[64] = {};

  PostedRecv posted(int ctx, int src, Tag tag) {
    PostedRecv pr;
    pr.ctx_id = ctx;
    pr.src = src;
    pr.tag = tag;
    pr.buf = reinterpret_cast<std::byte*>(buf);
    pr.capacity = 64;
    pr.req = req;
    return pr;
  }
};

TEST(Absorb, UnexpectedQueuesMergeByArrivalTime) {
  MatchingEngine a;
  MatchingEngine b;
  net::CostModel cm;
  net::NetStats stats;
  net::VirtualClock clk;

  // Interleaved arrivals across the two engines: a0 < b0 < a1 < b1.
  a.deposit(mk_env(1, 0, 5, "a0"), clk, cm, &stats);
  clk.advance(1000);
  b.deposit(mk_env(1, 0, 5, "b0"), clk, cm, &stats);
  clk.advance(1000);
  a.deposit(mk_env(1, 0, 5, "a1"), clk, cm, &stats);
  clk.advance(1000);
  b.deposit(mk_env(1, 0, 5, "b1"), clk, cm, &stats);
  clk.advance(1000);

  a.absorb(b);
  EXPECT_EQ(a.unexpected_depth(), 4u);
  EXPECT_EQ(b.unexpected_depth(), 0u);

  const char* expected[] = {"a0", "b0", "a1", "b1"};
  for (const char* want : expected) {
    AbsorbRecv r;
    a.post_recv(r.posted(1, 0, 5), clk, cm, &stats);
    ASSERT_TRUE(r.req->complete);
    EXPECT_STREQ(r.buf, want) << "merged unexpected queue out of arrival order";
  }
}

TEST(Absorb, PostedReceivesMigrateAndMatchInPostOrder) {
  MatchingEngine a;
  MatchingEngine b;
  net::CostModel cm;
  net::NetStats stats;
  net::VirtualClock clk;

  // Interleaved posts across the two engines: ra0 < rb0 < ra1 < rb1.
  AbsorbRecv ra0;
  AbsorbRecv rb0;
  AbsorbRecv ra1;
  AbsorbRecv rb1;
  a.post_recv(ra0.posted(1, kAnySource, kAnyTag), clk, cm, &stats);
  clk.advance(1000);
  b.post_recv(rb0.posted(1, kAnySource, kAnyTag), clk, cm, &stats);
  clk.advance(1000);
  a.post_recv(ra1.posted(1, kAnySource, kAnyTag), clk, cm, &stats);
  clk.advance(1000);
  b.post_recv(rb1.posted(1, kAnySource, kAnyTag), clk, cm, &stats);
  clk.advance(1000);

  // Regression: absorb() used to drop `from`'s posted queue entirely —
  // receives posted to the dead channel would hang forever after failover.
  a.absorb(b);
  EXPECT_EQ(a.posted_depth(), 4u);
  EXPECT_EQ(b.posted_depth(), 0u);

  a.deposit(mk_env(1, 2, 9, "m1"), clk, cm, &stats);
  a.deposit(mk_env(1, 2, 9, "m2"), clk, cm, &stats);
  a.deposit(mk_env(1, 2, 9, "m3"), clk, cm, &stats);
  a.deposit(mk_env(1, 2, 9, "m4"), clk, cm, &stats);

  EXPECT_STREQ(ra0.buf, "m1");
  EXPECT_STREQ(rb0.buf, "m2") << "migrated posted receive matched out of post order";
  EXPECT_STREQ(ra1.buf, "m3");
  EXPECT_STREQ(rb1.buf, "m4");
  EXPECT_EQ(a.posted_depth(), 0u);
}

TEST(Absorb, MigratedEntriesKeepWorkingWithTheCap) {
  MatchingEngine a;
  MatchingEngine b;
  net::CostModel cm;
  net::NetStats stats;
  net::VirtualClock clk;

  a.deposit(mk_env(1, 0, 1, "x"), clk, cm, &stats);
  clk.advance(1000);
  b.deposit(mk_env(1, 0, 2, "y"), clk, cm, &stats);
  clk.advance(1000);
  a.absorb(b);

  // The merged queue counts toward the cap as one queue.
  EXPECT_FALSE(a.deposit(mk_env(1, 0, 3, "z"), clk, cm, &stats, /*unexpected_cap=*/2));
  EXPECT_EQ(a.unexpected_depth(), 2u);
  EXPECT_TRUE(a.deposit(mk_env(1, 0, 3, "z"), clk, cm, &stats, /*unexpected_cap=*/3));
  EXPECT_EQ(a.unexpected_depth(), 3u);
}

}  // namespace
}  // namespace tmpi::detail
